// ClusterAdvisor: mechanizes the paper's Section IX tuning guidance. Given a
// platform, model, and framework, it searches the (ppn, intra-op, inter-op,
// batch) space and reports the best configuration, plus the paper's rule of
// thumb for comparison.
//
//   ./cluster_advisor --cluster Stampede2 --model resnet152 --framework tensorflow
#include <iostream>

#include "core/advisor.hpp"
#include "core/presets.hpp"
#include "hw/platforms.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dnnperf;
  util::CliParser cli("cluster_advisor", "search for the best training configuration");
  cli.add_string("cluster", "cluster name", "Stampede2");
  cli.add_string("model", "DNN to train", "resnet152");
  cli.add_string("framework", "tensorflow or pytorch", "tensorflow");
  cli.add_int("nodes", "number of nodes", 1);
  cli.add_flag("show-search", "print every evaluated configuration", false);

  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto cluster = hw::cluster_by_name(cli.get_string("cluster"));
    const auto model = dnn::model_by_name(cli.get_string("model"));
    const auto fw = cli.get_string("framework") == "pytorch" ? exec::Framework::PyTorch
                                                             : exec::Framework::TensorFlow;
    core::AdvisorOptions opts;
    opts.nodes = static_cast<int>(cli.get_int("nodes"));

    std::cout << "searching configurations for " << dnn::to_string(model) << " ("
              << exec::to_string(fw) << ") on " << cluster.name << " ...\n\n";
    const auto rec = core::advise(cluster, model, fw, opts);

    std::cout << "best configuration found:\n"
              << "  ppn        = " << rec.best.ppn << "\n"
              << "  intra-op   = " << rec.best.intra_threads << "\n"
              << "  inter-op   = " << rec.best.inter_threads << "\n"
              << "  batch/rank = " << rec.best.batch_per_rank << "\n"
              << "  throughput = " << rec.images_per_sec << " img/s\n\n";

    const int rule_ppn = fw == exec::Framework::PyTorch
                             ? core::pytorch_best_ppn(cluster.node.cpu)
                             : core::tf_best_ppn(cluster.node.cpu);
    std::cout << "paper rule of thumb (Section IX): ppn = " << rule_ppn
              << ", intra-op = cores/ppn - 1, inter-op = "
              << (cluster.node.cpu.threads_per_core > 1 ? 2 : 1) << "\n";

    if (cli.get_flag("show-search"))
      std::cout << "\nfull search:\n" << rec.search_table.to_text();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
