// Real (not simulated) data-parallel training: rank threads exchanging
// actual gradients through the Horovod-style fusion engine over minimpi,
// with real conv/batchnorm/SGD numerics from refdnn — then a side-by-side
// check that the multi-process run matches single-process training on the
// combined batch (the equivalence every experiment in the paper relies on).
//
//   ./real_training --ranks 4 --batch-per-rank 4 --steps 6
//   ./real_training --trace-out=train.trace.json    # open in ui.perfetto.dev
//   ./real_training --metrics-out=train.metrics.json  # dnnperf_metrics check/diff
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "dnn/report.hpp"
#include "prof/profile.hpp"
#include "train/real_trainer.hpp"
#include "util/cli.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

int main(int argc, char** argv) {
  using namespace dnnperf;
  util::CliParser cli("real_training", "actual data-parallel SGD over minimpi + Horovod engine");
  cli.add_int("ranks", "data-parallel workers", 4);
  cli.add_int("batch-per-rank", "images per rank per step", 4);
  cli.add_int("steps", "training steps", 6);
  cli.add_flag("batch-norm", "include BatchNorm layers (breaks exact SP==MP)", false);
  cli.add_string("trace-out", "write a Chrome trace-event JSON timeline here", "");
  cli.add_string("profile-out", "profile the recorded trace and write a dnnperf-profile-v1 "
                 "JSON report here (implies tracing)", "");
  cli.add_string("metrics-out", "write a metrics snapshot here (see --metrics-format)", "");
  cli.add_string("metrics-format", "snapshot format: json|prometheus|csv", "json");

  try {
    if (!cli.parse(argc, argv)) return 0;
    train::RealTrainConfig cfg;
    cfg.ranks = static_cast<int>(cli.get_int("ranks"));
    cfg.batch_per_rank = static_cast<int>(cli.get_int("batch-per-rank"));
    cfg.steps = static_cast<int>(cli.get_int("steps"));
    cfg.batch_norm = cli.get_flag("batch-norm");
    const std::string trace_out = cli.get_string("trace-out");
    const std::string profile_out = cli.get_string("profile-out");
    if (!trace_out.empty() || !profile_out.empty()) util::trace::set_enabled(true);
    const std::string metrics_out = cli.get_string("metrics-out");
    const std::string metrics_format = cli.get_string("metrics-format");
    if (metrics_format != "json" && metrics_format != "prometheus" && metrics_format != "csv")
      throw std::invalid_argument("--metrics-format must be json|prometheus|csv");
    if (!metrics_out.empty()) util::metrics::set_enabled(true);

    std::cout << "training a small CNN on synthetic data: " << cfg.ranks << " ranks x batch "
              << cfg.batch_per_rank << " (effective " << cfg.ranks * cfg.batch_per_rank
              << "), " << cfg.steps << " steps\n\n";

    const auto mp = train::run_real_training(cfg);
    const auto sp = train::run_real_training_single(cfg);

    util::TextTable table({"step", "MP loss", "SP loss (combined batch)"});
    for (std::size_t s = 0; s < mp.losses.size(); ++s)
      table.add_row({std::to_string(s + 1), util::TextTable::num(mp.losses[s], 5),
                     util::TextTable::num(sp.losses[s], 5)});
    std::cout << table.to_text();

    float max_diff = 0.0f;
    for (std::size_t i = 0; i < mp.final_params.size(); ++i)
      max_diff = std::max(max_diff, std::fabs(mp.final_params[i] - sp.final_params[i]));
    std::cout << "\nmodel parameters: " << mp.parameters
              << "\nmax |MP - SP| over all parameters after training: " << max_diff;
    if (cfg.batch_norm)
      std::cout << "  (BatchNorm statistics are per-shard, so exact equality is not expected)";
    std::cout << "\nHorovod engine: " << mp.comm.framework_requests << " tensor submissions, "
              << mp.comm.data_allreduces << " fused data allreduces, "
              << mp.comm.engine_wakeups << " engine cycles"
              << "\nMP throughput: " << util::TextTable::num(mp.images_per_sec, 1)
              << " images/sec over " << util::TextTable::num(mp.wall_seconds, 3) << " s\n";

    std::cout << '\n'
              << dnn::stats_table({{"forward", &mp.phases.forward},
                                   {"backward", &mp.phases.backward},
                                   {"exchange", &mp.phases.exchange},
                                   {"optimizer", &mp.phases.optimizer}},
                                  /*unit_scale=*/1e3, "ms")
                     .to_text();

    if (!trace_out.empty()) {
      util::trace::write_json_file(trace_out);
      std::cout << "\nwrote " << util::trace::event_count() << " trace events to " << trace_out
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (!profile_out.empty()) {
      // Profile the trace we just recorded: where did the step time go, and
      // what bounds it? (Same analytics as tools/dnnperf_profile.)
      std::ostringstream trace_doc;
      util::trace::write_json(trace_doc);
      prof::ProfileOptions popt;
      popt.policy = &cfg.policy;
      const prof::ProfileReport report =
          prof::profile_trace_text(trace_doc.str(), "real_training", popt);
      std::ofstream out(profile_out);
      if (!out) throw std::runtime_error("cannot open " + profile_out);
      out << prof::to_json(report) << '\n';
      std::cout << "\nprofile: " << prof::to_string(report.verdict)
                << " (overlap " << util::TextTable::num(100.0 * report.overlap_fraction, 1)
                << "%, critical-path share "
                << util::TextTable::num(100.0 * report.critical_path_share, 1)
                << "%) -> " << profile_out << "\n";
    }
    if (!metrics_out.empty()) {
      util::metrics::Snapshot snap = util::metrics::snapshot();
      snap.label = "real_training ranks=" + std::to_string(cfg.ranks) +
                   " batch=" + std::to_string(cfg.batch_per_rank) +
                   " steps=" + std::to_string(cfg.steps);
      if (metrics_format == "json") {
        util::metrics::write_json_file(snap, metrics_out);
      } else {
        std::ofstream out(metrics_out);
        if (!out) throw std::runtime_error("cannot open " + metrics_out);
        out << (metrics_format == "prometheus" ? util::metrics::to_prometheus(snap)
                                               : util::metrics::to_csv(snap));
      }
      std::cout << "\nwrote " << snap.metrics.size() << " metrics to " << metrics_out
                << " (validate with dnnperf_metrics check)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
