// Quickstart: simulate distributed DNN training on one of the paper's
// clusters and print throughput, the timing breakdown, and the scaling curve.
//
//   ./quickstart --model resnet50 --cluster Stampede2 --nodes 8 --ppn 4
//                --batch 64 --framework tensorflow
//
// Models: resnet18/34/50/101/152, inception-v3/v4, alexnet, vgg16.
// Clusters: RI2-Skylake, RI2-Broadwell, Pitzer, Stampede2, AMD-Cluster,
//           RI2-K80, P100-Cluster, Pitzer-V100 (GPU clusters need --gpu).
#include <iostream>

#include "core/presets.hpp"
#include "hw/platforms.hpp"
#include "train/trainer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace dnnperf;
  util::CliParser cli("quickstart", "simulate DNN training on a modeled cluster");
  cli.add_string("model", "DNN to train", "resnet50");
  cli.add_string("cluster", "cluster name", "Stampede2");
  cli.add_string("framework", "tensorflow or pytorch", "tensorflow");
  cli.add_int("nodes", "number of nodes", 8);
  cli.add_int("ppn", "processes per node (0 = paper-tuned)", 0);
  cli.add_int("batch", "per-rank batch size (0 = paper-tuned)", 0);
  cli.add_flag("gpu", "train on the cluster's GPUs", false);

  try {
    if (!cli.parse(argc, argv)) return 0;

    const auto cluster = hw::cluster_by_name(cli.get_string("cluster"));
    const auto model = dnn::model_by_name(cli.get_string("model"));
    const bool pytorch = cli.get_string("framework") == "pytorch";
    const int nodes = static_cast<int>(cli.get_int("nodes"));

    train::TrainConfig cfg =
        pytorch ? core::pytorch_best(cluster, model, nodes) : core::tf_best(cluster, model, nodes);
    if (cli.get_flag("gpu")) {
      cfg = core::gpu_config(cluster, model,
                             pytorch ? exec::Framework::PyTorch : exec::Framework::TensorFlow,
                             nodes, cluster.node.gpu ? cluster.node.gpu->devices_per_node : 1,
                             cli.get_int("batch") > 0 ? static_cast<int>(cli.get_int("batch")) : 64);
    }
    if (cli.get_int("ppn") > 0) cfg.ppn = static_cast<int>(cli.get_int("ppn"));
    if (cli.get_int("batch") > 0) cfg.batch_per_rank = static_cast<int>(cli.get_int("batch"));
    cfg.use_horovod = cfg.nodes * cfg.ppn > 1;

    const dnn::Graph graph = dnn::build_model(model);
    std::cout << "model: " << graph.name() << "  (" << graph.total_params() / 1e6
              << "M params, " << graph.total_fwd_flops() / 2e9 << " GMACs/image, "
              << graph.size() << " ops)\n";
    std::cout << "cluster: " << cluster.name << "  (" << cluster.node.cpu.label << ", fabric "
              << hw::to_string(cluster.fabric) << ")\n\n";

    const auto r = train::run_training(cfg);
    std::cout << "config: " << cfg.nodes << " nodes x " << cfg.ppn << " ppn, intra-op "
              << r.resolved_intra << ", inter-op " << r.resolved_inter << ", batch/rank "
              << cfg.batch_per_rank << " (effective " << r.effective_batch << ")\n";
    std::cout << "throughput: " << util::TextTable::num(r.images_per_sec, 1) << " img/s\n";
    std::cout << "iteration:  " << util::format_time(r.per_iteration_s) << "  (fwd "
              << util::format_time(r.fwd_s) << ", bwd " << util::format_time(r.bwd_s)
              << ", exposed comm "
              << util::TextTable::num(r.comm_exposed_fraction * 100, 1) << "%)\n\n";

    util::TextTable scaling({"nodes", "img/s", "speedup", "efficiency"});
    double single = 0.0;
    for (int n = 1; n <= cfg.nodes; n *= 2) {
      auto c = cfg;
      c.nodes = n;
      c.use_horovod = n * c.ppn > 1;
      const double v = train::run_training(c).images_per_sec;
      if (n == 1) single = v;
      scaling.add_row({std::to_string(n), util::TextTable::num(v, 1),
                       util::TextTable::num(v / single, 2) + "x",
                       util::TextTable::num(100.0 * v / single / n, 1) + "%"});
    }
    std::cout << "scaling:\n" << scaling.to_text();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
