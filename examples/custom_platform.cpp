// Define a hypothetical CPU platform and predict its DNN-training behaviour
// before buying it: single-node SP-vs-MP, best ppn, and multi-node scaling.
// Demonstrates using the library with hardware outside the paper's Table I.
#include <iostream>

#include "core/advisor.hpp"
#include "train/trainer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dnnperf;
  util::CliParser cli("custom_platform", "predict training performance for a custom CPU");
  cli.add_int("sockets", "CPU sockets per node", 2);
  cli.add_int("cores", "cores per socket", 32);
  cli.add_int("numa", "NUMA domains per socket", 1);
  cli.add_int("smt", "hardware threads per core", 2);
  cli.add_double("clock", "clock in GHz", 2.4);
  cli.add_double("flops-per-cycle", "fp32 FLOPs/cycle/core (AVX-512 FMA = 64)", 64.0);
  cli.add_double("mem-bw", "memory bandwidth per socket, GB/s", 120.0);
  cli.add_int("nodes", "cluster size", 16);
  cli.add_string("model", "DNN to train", "resnet50");

  try {
    if (!cli.parse(argc, argv)) return 0;

    hw::CpuModel cpu;
    cpu.name = "Custom-CPU";
    cpu.label = "Custom";
    cpu.sockets = static_cast<int>(cli.get_int("sockets"));
    cpu.cores_per_socket = static_cast<int>(cli.get_int("cores"));
    cpu.numa_domains_per_socket = static_cast<int>(cli.get_int("numa"));
    cpu.threads_per_core = static_cast<int>(cli.get_int("smt"));
    cpu.clock_ghz = cli.get_double("clock");
    cpu.flops_per_cycle_fp32 = cli.get_double("flops-per-cycle");
    cpu.mem_bw_per_socket_gbps = cli.get_double("mem-bw");
    cpu.smt_speedup_fraction = cpu.threads_per_core > 1 ? 0.22 : 0.0;
    cpu.validate();

    hw::ClusterModel cluster;
    cluster.name = "Custom-Cluster";
    cluster.node.cpu = cpu;
    cluster.max_nodes = static_cast<int>(cli.get_int("nodes"));
    cluster.fabric = hw::FabricKind::InfiniBandEDR;
    cluster.validate();

    const auto model = dnn::model_by_name(cli.get_string("model"));
    std::cout << "custom platform: " << cpu.sockets << "x" << cpu.cores_per_socket
              << " cores @ " << cpu.clock_ghz << " GHz, " << cpu.numa_domains()
              << " NUMA domains, peak " << cpu.peak_gflops() / 1e3 << " TFLOP/s fp32\n\n";

    core::AdvisorOptions opts;
    const auto rec = core::advise(cluster, model, exec::Framework::TensorFlow, opts);
    std::cout << "recommended single-node config: ppn=" << rec.best.ppn << " intra-op="
              << rec.best.intra_threads << " inter-op=" << rec.best.inter_threads
              << " batch/rank=" << rec.best.batch_per_rank << " -> " << rec.images_per_sec
              << " img/s\n\n";

    util::TextTable scaling({"nodes", "img/s", "speedup"});
    double single = 0.0;
    for (int n = 1; n <= cluster.max_nodes; n *= 2) {
      auto cfg = rec.best;
      cfg.nodes = n;
      cfg.use_horovod = n * cfg.ppn > 1;
      const double v = train::run_training(cfg).images_per_sec;
      if (n == 1) single = v;
      scaling.add_row({std::to_string(n), util::TextTable::num(v, 1),
                       util::TextTable::num(v / single, 2) + "x"});
    }
    std::cout << "predicted scaling (" << dnn::to_string(model) << "):\n" << scaling.to_text();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
