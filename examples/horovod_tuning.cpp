// Horovod runtime-parameter tuning, as in paper Section VIII: sweep
// HOROVOD_CYCLE_TIME (and optionally the fusion threshold) and relate
// end-to-end throughput to the number of Allreduce operations the Horovod
// Engine actually issues.
//
//   ./horovod_tuning --framework pytorch --model resnet50 --nodes 8
#include <iostream>

#include "core/presets.hpp"
#include "hw/platforms.hpp"
#include "train/trainer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace dnnperf;
  util::CliParser cli("horovod_tuning", "sweep HOROVOD_CYCLE_TIME / fusion threshold");
  cli.add_string("framework", "tensorflow or pytorch", "pytorch");
  cli.add_string("model", "DNN to train", "resnet50");
  cli.add_int("nodes", "number of Skylake-3 nodes", 8);
  cli.add_int("iterations", "training iterations to profile", 40);

  try {
    if (!cli.parse(argc, argv)) return 0;
    const bool pytorch = cli.get_string("framework") == "pytorch";
    const auto model = dnn::model_by_name(cli.get_string("model"));
    const int nodes = static_cast<int>(cli.get_int("nodes"));

    std::cout << "Horovod cycle-time sweep: " << dnn::to_string(model) << " ("
              << (pytorch ? "PyTorch" : "TensorFlow") << ") on " << nodes
              << " Skylake-3 nodes, " << cli.get_int("iterations") << " iterations\n\n";

    util::TextTable table({"cycle time", "img/s", "vs default", "engine allreduces",
                           "framework requests", "exposed comm"});
    double base = 0.0;
    for (double ms : {3.5, 10.0, 30.0, 100.0, 300.0, 600.0}) {
      auto cfg = pytorch ? core::pytorch_best(hw::stampede2(), model, nodes)
                         : core::tf_best(hw::stampede2(), model, nodes);
      cfg.iterations = static_cast<int>(cli.get_int("iterations"));
      cfg.policy.cycle_time_s = ms * 1e-3;
      const auto r = train::run_training(cfg);
      if (base == 0.0) base = r.images_per_sec;
      table.add_row({util::TextTable::num(ms, 1) + " ms",
                     util::TextTable::num(r.images_per_sec, 1),
                     util::TextTable::num(r.images_per_sec / base, 2) + "x",
                     std::to_string(r.comm.engine_allreduces()),
                     std::to_string(r.comm.framework_requests),
                     util::TextTable::num(r.comm_exposed_fraction * 100, 2) + "%"});
    }
    std::cout << table.to_text();
    std::cout << "\n(Default HOROVOD_CYCLE_TIME is 3.5 ms. The paper found PyTorch gains up\n"
                 "to 1.25x from 600 ms while TensorFlow is insensitive — because PyTorch's\n"
                 "one-core ranks pay for every engine wake-up, Section VIII.)\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
