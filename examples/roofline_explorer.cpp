// Roofline explorer: decompose a training iteration into compute-bound,
// memory-bound, and overhead time per op kind for any platform / model /
// thread configuration — the "why" behind every figure in the paper.
//
//   ./roofline_explorer --cluster Stampede2 --model resnet50 --ppn 4 --threads 11
#include <iostream>

#include "dnn/models.hpp"
#include "dnn/report.hpp"
#include "exec/roofline.hpp"
#include "hw/platforms.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dnnperf;
  util::CliParser cli("roofline_explorer", "per-op-kind roofline decomposition");
  cli.add_string("cluster", "cluster name", "Stampede2");
  cli.add_string("model", "DNN", "resnet50");
  cli.add_string("framework", "tensorflow or pytorch", "tensorflow");
  cli.add_int("ppn", "processes per node", 4);
  cli.add_int("threads", "intra-op threads (0 = cores/ppn)", 0);
  cli.add_int("batch", "per-rank batch size", 64);
  cli.add_flag("summary", "also print the layer summary table", false);

  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto cluster = hw::cluster_by_name(cli.get_string("cluster"));
    const auto model_id = dnn::model_by_name(cli.get_string("model"));
    const dnn::Graph graph = dnn::build_model(model_id);
    const int ppn = static_cast<int>(cli.get_int("ppn"));
    int threads = static_cast<int>(cli.get_int("threads"));
    if (threads == 0) threads = std::max(1, cluster.node.cpu.total_cores() / ppn);

    exec::ExecConfig cfg;
    cfg.framework = cli.get_string("framework") == "pytorch" ? exec::Framework::PyTorch
                                                             : exec::Framework::TensorFlow;
    cfg.intra_threads = threads;
    cfg.inter_threads = 1;
    cfg.batch = static_cast<int>(cli.get_int("batch"));

    const exec::Placement placement = exec::place_rank(cluster.node.cpu, ppn, threads);
    const exec::CpuExecModel model(cluster.node.cpu);
    const auto report = exec::roofline_report(model, graph, cfg, placement);

    std::cout << graph.name() << " on " << cluster.node.cpu.label << " (" << ppn << " ppn, "
              << threads << " intra-op threads, batch " << cfg.batch << "):\n\n";
    std::cout << "forward:  flop-bound " << util::TextTable::num(report.forward.flop_bound_s, 3)
              << " s, mem-bound " << util::TextTable::num(report.forward.mem_bound_s, 3)
              << " s, overhead " << util::TextTable::num(report.forward.overhead_s, 3) << " s\n";
    std::cout << "backward: flop-bound " << util::TextTable::num(report.backward.flop_bound_s, 3)
              << " s, mem-bound " << util::TextTable::num(report.backward.mem_bound_s, 3)
              << " s, overhead " << util::TextTable::num(report.backward.overhead_s, 3)
              << " s\n";
    std::cout << "sustained FLOP utilization of this rank's cores: "
              << util::TextTable::num(report.flop_utilization * 100, 1) << "%\n\n";
    std::cout << exec::roofline_table(report).to_text();

    std::cout << "\nper-op-kind totals:\n" << dnn::kind_breakdown(graph).to_text();
    if (cli.get_flag("summary"))
      std::cout << "\nlayers:\n" << dnn::summary_table(graph).to_text();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
