#include "hvd/protocol.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <stdexcept>

namespace dnnperf::hvd {

namespace {

/// Bounds that keep a state canonically encodable in 64 bits: 8 ranks at
/// 5 bits of submitted-prefix each plus a 20-bit completion bitmap.
constexpr int kMaxRanks = 8;
constexpr int kMaxTensors = 20;

std::uint32_t submitted_bitmap(const ProtocolSpec& spec, const ProtocolState& state, int rank) {
  std::uint32_t bits = 0;
  const auto& order = spec.submit_order[static_cast<std::size_t>(rank)];
  for (int i = 0; i < state.pos[static_cast<std::size_t>(rank)]; ++i)
    bits |= 1u << order[static_cast<std::size_t>(i)];
  return bits;
}

}  // namespace

const char* to_string(EngineVariant variant) {
  switch (variant) {
    case EngineVariant::Standard: return "standard";
    case EngineVariant::MaxCoordination: return "max-coordination";
    case EngineVariant::ReissueCompleted: return "reissue-completed";
    case EngineVariant::UncappedPacking: return "uncapped-packing";
    case EngineVariant::Hierarchical: return "hierarchical";
    case EngineVariant::HierarchicalParentStall: return "hierarchical-parent-stall";
    case EngineVariant::ElasticCrashBlind: return "elastic-crash-blind";
    case EngineVariant::ElasticLostGradient: return "elastic-lost-gradient";
    case EngineVariant::ElasticGhost: return "elastic-ghost";
    case EngineVariant::ElasticDoubleCount: return "elastic-double-count";
    case EngineVariant::ElasticRegrowStall: return "elastic-regrow-stall";
  }
  return "?";
}

bool is_elastic_variant(EngineVariant variant) {
  switch (variant) {
    case EngineVariant::ElasticCrashBlind:
    case EngineVariant::ElasticLostGradient:
    case EngineVariant::ElasticGhost:
    case EngineVariant::ElasticDoubleCount:
    case EngineVariant::ElasticRegrowStall: return true;
    default: return false;
  }
}

ProtocolSpec ProtocolSpec::uniform(int ranks, std::vector<std::size_t> tensor_elements,
                                   std::size_t capacity_elems, bool rotate_by_rank) {
  ProtocolSpec spec;
  spec.ranks = ranks;
  spec.tensor_elements = std::move(tensor_elements);
  spec.capacity_elems = capacity_elems;
  const int tensors = static_cast<int>(spec.tensor_elements.size());
  for (int r = 0; r < ranks; ++r) {
    std::vector<int> order(static_cast<std::size_t>(tensors));
    for (int t = 0; t < tensors; ++t) order[static_cast<std::size_t>(t)] = t;
    if (rotate_by_rank && tensors > 0)
      std::rotate(order.begin(), order.begin() + r % tensors, order.end());
    spec.submit_order.push_back(std::move(order));
  }
  return spec;
}

void ProtocolSpec::validate() const {
  if (ranks < 1 || ranks > kMaxRanks)
    throw std::invalid_argument("ProtocolSpec: ranks outside [1, 8]");
  const std::size_t tensors = tensor_elements.size();
  if (tensors < 1 || tensors > kMaxTensors)
    throw std::invalid_argument("ProtocolSpec: tensor count outside [1, 20]");
  if (capacity_elems == 0) throw std::invalid_argument("ProtocolSpec: capacity_elems == 0");
  if (max_outstanding < 0) throw std::invalid_argument("ProtocolSpec: max_outstanding < 0");
  if (group_size < 0 || (group_size > 0 && ranks % group_size != 0))
    throw std::invalid_argument("ProtocolSpec: group_size must be 0 or a divisor of ranks");
  if ((variant == EngineVariant::Hierarchical ||
       variant == EngineVariant::HierarchicalParentStall) &&
      group_size == 0)
    throw std::invalid_argument("ProtocolSpec: hierarchical variants require group_size > 0");
  if (max_fault_events < 0) throw std::invalid_argument("ProtocolSpec: max_fault_events < 0");
  if (min_alive < 1 || min_alive > ranks)
    throw std::invalid_argument("ProtocolSpec: min_alive outside [1, ranks]");
  if (is_elastic_variant(variant) && max_fault_events == 0)
    throw std::invalid_argument("ProtocolSpec: elastic variants require max_fault_events > 0");
  if (submit_order.size() != static_cast<std::size_t>(ranks))
    throw std::invalid_argument("ProtocolSpec: one submit order required per rank");
  for (const auto& order : submit_order) {
    if (order.size() != tensors)
      throw std::invalid_argument("ProtocolSpec: submit order length != tensor count");
    std::vector<bool> seen(tensors, false);
    for (int id : order) {
      if (id < 0 || static_cast<std::size_t>(id) >= tensors || seen[static_cast<std::size_t>(id)])
        throw std::invalid_argument("ProtocolSpec: submit order is not a permutation");
      seen[static_cast<std::size_t>(id)] = true;
    }
  }
}

ProtocolState initial_state(const ProtocolSpec& spec) {
  ProtocolState state;
  state.pos.assign(static_cast<std::size_t>(spec.ranks), 0);
  state.alive = (std::uint32_t{1} << spec.ranks) - 1;
  return state;
}

bool all_complete(const ProtocolSpec& spec, const ProtocolState& state) {
  const auto all = (std::uint32_t{1} << spec.tensor_elements.size()) - 1;
  return state.completed == all;
}

bool rank_submitted(const ProtocolSpec& spec, const ProtocolState& state, int rank, int tensor) {
  return (submitted_bitmap(spec, state, rank) & (1u << tensor)) != 0;
}

bool rank_alive(const ProtocolState& state, int rank) {
  return (state.alive >> rank & 1u) != 0;
}

bool can_submit(const ProtocolSpec& spec, const ProtocolState& state, int rank) {
  if (!rank_alive(state, rank)) return false;  // crashed/pending ranks produce nothing
  const int pos = state.pos[static_cast<std::size_t>(rank)];
  if (pos >= static_cast<int>(spec.tensor_elements.size())) return false;
  if (spec.max_outstanding > 0) {
    const std::uint32_t outstanding = submitted_bitmap(spec, state, rank) & ~state.completed;
    if (std::popcount(outstanding) >= spec.max_outstanding) return false;
  }
  return true;
}

int next_submission(const ProtocolSpec& spec, const ProtocolState& state, int rank) {
  return spec.submit_order[static_cast<std::size_t>(rank)]
                          [static_cast<std::size_t>(state.pos[static_cast<std::size_t>(rank)])];
}

ProtocolState apply_submit(const ProtocolSpec& spec, const ProtocolState& state, int rank) {
  (void)spec;
  ProtocolState next = state;
  ++next.pos[static_cast<std::size_t>(rank)];
  return next;
}

CycleOutcome apply_cycle(const ProtocolSpec& spec, const ProtocolState& state) {
  CycleOutcome out;
  out.next = state;
  // The RegrowStall bug suspends the data plane while a rejoin admission is
  // "re-stabilizing" — which it never finishes, so every cycle is a no-op.
  if (spec.variant == EngineVariant::ElasticRegrowStall && state.regrow_pending != 0) return out;

  // Coordination reduce over the per-rank readiness vectors of the *alive*
  // membership set. Each rank's vector marks tensors submitted locally and
  // not yet complete — except the ReissueCompleted bug, which forgets to
  // clear completed entries. The Min-reduce intersects the vectors (a tensor
  // proceeds only when ready everywhere); the MaxCoordination bug unions
  // them instead. The ElasticCrashBlind bug keeps intersecting over every
  // rank including crashed ones; ElasticGhost ORs the crashed ranks' stale
  // vectors back in after the shrink.
  std::uint32_t ready = spec.variant == EngineVariant::MaxCoordination ? 0 : ~std::uint32_t{0};
  if (spec.variant == EngineVariant::Hierarchical ||
      spec.variant == EngineVariant::HierarchicalParentStall) {
    // Two-level negotiation: child level Min-reduces within each group of
    // `group_size` ranks, parent level combines the group bitmaps. The
    // correct parent intersects (AND is associative, so this is exactly the
    // flat Min-reduce); the ParentStall bug ships the common bitmap only
    // when every group agrees verbatim, and nothing otherwise. A crashed
    // rank drops out of its group's reduce; a fully-crashed group imposes no
    // constraint (identity bitmap) — its members are not in the sum anyway.
    const int groups = spec.ranks / spec.group_size;
    std::vector<std::uint32_t> group_bits(static_cast<std::size_t>(groups), ~std::uint32_t{0});
    for (int r = 0; r < spec.ranks; ++r) {
      if (!rank_alive(state, r)) continue;
      const std::uint32_t local = submitted_bitmap(spec, state, r) & ~state.completed;
      group_bits[static_cast<std::size_t>(r / spec.group_size)] &= local;
    }
    if (spec.variant == EngineVariant::Hierarchical) {
      for (std::uint32_t bits : group_bits) ready &= bits;
    } else {
      const bool agree = std::all_of(group_bits.begin(), group_bits.end(),
                                     [&](std::uint32_t bits) { return bits == group_bits[0]; });
      ready = agree ? group_bits[0] : 0;
    }
  } else {
    for (int r = 0; r < spec.ranks; ++r) {
      if (!rank_alive(state, r) && spec.variant != EngineVariant::ElasticCrashBlind) continue;
      std::uint32_t local = submitted_bitmap(spec, state, r);
      if (spec.variant != EngineVariant::ReissueCompleted) local &= ~state.completed;
      if (spec.variant == EngineVariant::MaxCoordination)
        ready |= local;
      else
        ready &= local;
    }
    if (spec.variant == EngineVariant::ElasticGhost) {
      for (int r = 0; r < spec.ranks; ++r)
        if (!rank_alive(state, r))
          ready |= submitted_bitmap(spec, state, r) & ~state.completed;
    }
  }
  out.ready = ready;

  std::vector<int> ready_ids;
  for (std::size_t t = 0; t < spec.tensor_elements.size(); ++t)
    if (ready & (1u << t)) ready_ids.push_back(static_cast<int>(t));

  const std::size_t capacity = spec.variant == EngineVariant::UncappedPacking
                                   ? std::numeric_limits<std::size_t>::max()
                                   : spec.capacity_elems;
  out.groups = plan_fusion(ready_ids, spec.tensor_elements, capacity, spec.allow_oversized);

  for (const auto& group : out.groups)
    for (int id : group) {
      out.next.completed |= 1u << id;
      out.next.ever_completed |= 1u << id;
    }
  return out;
}

bool can_crash(const ProtocolSpec& spec, const ProtocolState& state, int rank) {
  if (spec.max_fault_events == 0 || state.faults_used >= spec.max_fault_events) return false;
  if (!rank_alive(state, rank)) return false;
  return std::popcount(state.alive) > spec.min_alive;
}

ProtocolState apply_crash(const ProtocolSpec& spec, const ProtocolState& state, int rank) {
  ProtocolState next = state;
  next.alive &= ~(std::uint32_t{1} << rank);
  ++next.faults_used;
  // LostGradient bug: crash cleanup "drains" the victim's pending table by
  // marking its submitted-but-unreduced tensors done — no data allreduce
  // ever runs for them (the checker flags any fault that grows `completed`).
  if (spec.variant == EngineVariant::ElasticLostGradient)
    next.completed |= submitted_bitmap(spec, state, rank) & ~state.completed;
  return next;
}

bool can_rejoin(const ProtocolSpec& spec, const ProtocolState& state, int rank) {
  if (spec.max_fault_events == 0 || state.faults_used >= spec.max_fault_events) return false;
  const std::uint32_t bit = std::uint32_t{1} << rank;
  return (state.alive & bit) == 0 && (state.regrow_pending & bit) == 0;
}

ProtocolState apply_rejoin(const ProtocolSpec& spec, const ProtocolState& state, int rank) {
  ProtocolState next = state;
  const std::uint32_t bit = std::uint32_t{1} << rank;
  ++next.faults_used;
  next.rejoined |= bit;
  switch (spec.variant) {
    case EngineVariant::ElasticRegrowStall:
      // Admission never completes: the rank is parked pending, not alive.
      next.regrow_pending |= bit;
      break;
    case EngineVariant::ElasticDoubleCount:
      // Journal replay: keep the pre-crash program position and clear the
      // completion bits the rank had submitted, so they negotiate ready
      // again and ship a second time.
      next.alive |= bit;
      next.completed &= ~submitted_bitmap(spec, state, rank);
      break;
    default:
      // Correct regrow: reset the submission program (re-keying the bounded
      // window); the completion mask makes re-submissions harmless.
      next.alive |= bit;
      next.pos[static_cast<std::size_t>(rank)] = 0;
      break;
  }
  return next;
}

std::vector<int> symmetry_classes(const ProtocolSpec& spec) {
  std::vector<int> classes(static_cast<std::size_t>(spec.ranks), -1);
  int next_class = 0;
  for (int r = 0; r < spec.ranks; ++r) {
    if (classes[static_cast<std::size_t>(r)] != -1) continue;
    classes[static_cast<std::size_t>(r)] = next_class;
    for (int s = r + 1; s < spec.ranks; ++s) {
      // With grouped negotiation, cross-group swaps change the per-group
      // bitmaps, so interchangeability also requires the same group.
      if (spec.group_size > 0 && s / spec.group_size != r / spec.group_size) continue;
      if (classes[static_cast<std::size_t>(s)] == -1 &&
          spec.submit_order[static_cast<std::size_t>(s)] ==
              spec.submit_order[static_cast<std::size_t>(r)])
        classes[static_cast<std::size_t>(s)] = next_class;
    }
    ++next_class;
  }
  return classes;
}

ProtocolState canonical_state(const ProtocolSpec& spec, const ProtocolState& state) {
  // Sort the per-rank tuples (pos, alive, pending, rejoined) within each
  // symmetry class: ranks running the same program are interchangeable —
  // their whole per-rank state swaps together — and completion/budget fields
  // are global, so two states related by such a swap have identical futures.
  const std::vector<int> classes = symmetry_classes(spec);
  const int num_classes = *std::max_element(classes.begin(), classes.end()) + 1;
  ProtocolState canon = state;
  for (int c = 0; c < num_classes; ++c) {
    std::vector<std::array<int, 4>> tuples;
    for (int r = 0; r < spec.ranks; ++r)
      if (classes[static_cast<std::size_t>(r)] == c)
        tuples.push_back({state.pos[static_cast<std::size_t>(r)],
                          static_cast<int>(state.alive >> r & 1u),
                          static_cast<int>(state.regrow_pending >> r & 1u),
                          static_cast<int>(state.rejoined >> r & 1u)});
    std::sort(tuples.begin(), tuples.end());
    std::size_t k = 0;
    for (int r = 0; r < spec.ranks; ++r) {
      if (classes[static_cast<std::size_t>(r)] != c) continue;
      const auto& t = tuples[k++];
      const std::uint32_t bit = std::uint32_t{1} << r;
      canon.pos[static_cast<std::size_t>(r)] = t[0];
      canon.alive = t[1] ? canon.alive | bit : canon.alive & ~bit;
      canon.regrow_pending = t[2] ? canon.regrow_pending | bit : canon.regrow_pending & ~bit;
      canon.rejoined = t[3] ? canon.rejoined | bit : canon.rejoined & ~bit;
    }
  }
  return canon;
}

std::uint64_t canonical_key(const ProtocolSpec& spec, const ProtocolState& state) {
  const ProtocolState canon = canonical_state(spec, state);
  std::uint64_t key = 1469598103934665603ull;  // FNV-1a over the canonical fields
  const auto mix = [&key](std::uint64_t v) {
    key = (key ^ v) * 1099511628211ull;
  };
  for (int pos : canon.pos) mix(static_cast<std::uint64_t>(pos));
  mix(canon.completed);
  mix(canon.alive);
  mix(canon.regrow_pending);
  mix(canon.rejoined);
  mix(canon.ever_completed);
  mix(static_cast<std::uint64_t>(canon.faults_used));
  return key;
}

}  // namespace dnnperf::hvd
