// Horovod engine tuning knobs and profiling counters.
//
// The paper's custom profiling (Section VIII) splits Allreduce calls into
// those requested by the DL framework (one per gradient tensor per
// iteration) and those actually issued by the Horovod Engine's background
// cycle loop (one coordination allreduce per cycle wake-up plus one data
// allreduce per fused buffer). CommStats reproduces those counters.
#pragma once

#include <cstdint>

#include "util/metrics.hpp"

namespace dnnperf::hvd {

struct FusionPolicy {
  /// HOROVOD_CYCLE_TIME: period of the background progress loop, seconds.
  /// Horovod's default is 3.5 ms.
  double cycle_time_s = 3.5e-3;
  /// HOROVOD_FUSION_THRESHOLD: max bytes packed into one fusion buffer.
  /// Horovod's default is 64 MiB.
  double fusion_threshold_bytes = 64.0 * 1024 * 1024;

  void validate() const;
};

struct CommStats {
  /// Gradient tensors the framework handed to Horovod (requests).
  std::uint64_t framework_requests = 0;
  /// Engine cycle wake-ups; each issues one small coordination allreduce.
  std::uint64_t engine_wakeups = 0;
  /// Data allreduces actually issued (one per fused buffer).
  std::uint64_t data_allreduces = 0;
  /// Total engine-issued allreduce operations (coordination + data) —
  /// the "Allreduce called by Horovod Engine" series of Figs 18/19.
  std::uint64_t engine_allreduces() const { return engine_wakeups + data_allreduces; }
  double bytes_reduced = 0.0;

  CommStats& operator+=(const CommStats& other);
};

/// Registry names for the engine counters (shared by RealEngine, TimelineSim,
/// figures_profiling, and the metrics tests — one spelling, no drift).
namespace metric_names {
inline constexpr const char* kRequested = "hvd_allreduce_requested_total";
inline constexpr const char* kIssued = "hvd_allreduce_issued_total";
inline constexpr const char* kCycles = "hvd_engine_cycles_total";
inline constexpr const char* kFusionBytes = "hvd_fusion_bytes_total";
inline constexpr const char* kFusionUtil = "hvd_fusion_buffer_utilization";
inline constexpr const char* kCycleTime = "hvd_cycle_time";
}  // namespace metric_names

/// The single publication path for the paper's Sec. VIII counters: every
/// increment lands in the local CommStats struct *and* the corresponding
/// registry metric in one call, so the struct consumers (figures, tests) and
/// the registry consumers (exporters, dnnperf_metrics) can never disagree.
/// Used by both hvd::RealEngine (thread-parallel ranks) and hvd::TimelineSim
/// (the DES model). Registry writes are no-ops unless metrics are enabled.
class EngineCounters {
 public:
  EngineCounters();

  void on_framework_request(std::uint64_t n = 1);
  /// One engine cycle wake-up (always issues one coordination allreduce).
  void on_engine_wakeup();
  /// One fused-buffer data allreduce of `bytes`, with the fill fraction of
  /// the fusion buffer it shipped (bytes / fusion_threshold, capped at 1).
  void on_data_allreduce(double bytes, double fill_ratio);
  /// Wall (or virtual) duration of one busy engine cycle, seconds.
  void on_cycle_time(double seconds);

  const CommStats& stats() const { return stats_; }
  CommStats& stats() { return stats_; }

 private:
  CommStats stats_;
  util::metrics::Counter requested_;
  util::metrics::Counter issued_;
  util::metrics::Counter cycles_;
  util::metrics::Counter fusion_bytes_;
  util::metrics::Gauge fusion_util_;
  util::metrics::Histogram cycle_time_;
};

}  // namespace dnnperf::hvd
