// Horovod engine tuning knobs and profiling counters.
//
// The paper's custom profiling (Section VIII) splits Allreduce calls into
// those requested by the DL framework (one per gradient tensor per
// iteration) and those actually issued by the Horovod Engine's background
// cycle loop (one coordination allreduce per cycle wake-up plus one data
// allreduce per fused buffer). CommStats reproduces those counters.
#pragma once

#include <cstdint>

namespace dnnperf::hvd {

struct FusionPolicy {
  /// HOROVOD_CYCLE_TIME: period of the background progress loop, seconds.
  /// Horovod's default is 3.5 ms.
  double cycle_time_s = 3.5e-3;
  /// HOROVOD_FUSION_THRESHOLD: max bytes packed into one fusion buffer.
  /// Horovod's default is 64 MiB.
  double fusion_threshold_bytes = 64.0 * 1024 * 1024;

  void validate() const;
};

struct CommStats {
  /// Gradient tensors the framework handed to Horovod (requests).
  std::uint64_t framework_requests = 0;
  /// Engine cycle wake-ups; each issues one small coordination allreduce.
  std::uint64_t engine_wakeups = 0;
  /// Data allreduces actually issued (one per fused buffer).
  std::uint64_t data_allreduces = 0;
  /// Total engine-issued allreduce operations (coordination + data) —
  /// the "Allreduce called by Horovod Engine" series of Figs 18/19.
  std::uint64_t engine_allreduces() const { return engine_wakeups + data_allreduces; }
  double bytes_reduced = 0.0;

  CommStats& operator+=(const CommStats& other);
};

}  // namespace dnnperf::hvd
