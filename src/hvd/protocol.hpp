// The abstract negotiation/fusion protocol of the Horovod-style engine,
// extracted from RealEngine::process() and TimelineSim::wake() so the
// implementations and the model checker (analysis/verify) share one
// description of the transition rules instead of three private copies:
//
//  - plan_fusion() is the greedy id-order packing rule both engines execute:
//    ready tensors are packed into buffers of at most `capacity`, a buffer
//    always takes at least one tensor (Horovod ships an oversized tensor
//    alone, unfused), and one data allreduce is issued per buffer;
//  - ProtocolSpec/ProtocolState/apply_* are the small-scope abstract state
//    machine over that rule: per-rank submission programs, the collective
//    Min-reduce readiness bitmap, and the completion set. The model checker
//    in src/analysis/verify explores it exhaustively; EngineVariant seeds
//    the classic communication-engine bugs (Max instead of Min in the
//    coordination reduce, re-issuing completed tensors, uncapped packing)
//    that the checker must be able to catch.
//  - apply_crash()/apply_rejoin() are the elastic membership transitions
//    (Horovod elastic mode): a crash shrinks the coordination group to the
//    alive ranks — the crashed rank's submitted-prefix is frozen, its
//    in-flight fusion-buffer entries drain because readiness is re-formed
//    over the survivors — and a rejoin regrows it, resetting the rank's
//    submission program (re-keying its bounded window) while the global
//    completion set masks re-submissions of already-reduced tensors. The
//    Elastic* variants seed one crash/rejoin-handling bug each (V201–V205);
//    Standard with max_fault_events > 0 is the correct elastic engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dnnperf::hvd {

/// Greedy id-order fusion packing shared by RealEngine (element counts),
/// TimelineSim (byte sizes), and the protocol model. `ready` lists the
/// globally-ready tensor ids in id order; `sizes` is indexed by tensor id.
/// Returns the planned buffers as id groups, in issue order. A group only
/// grows while the total stays within `capacity`, but always takes at least
/// one tensor when `allow_oversized` (the Horovod rule: a tensor larger than
/// the fusion threshold bypasses fusion and ships alone); with
/// `allow_oversized` false an oversized tensor is skipped entirely — the
/// strict-capacity semantics whose starvation the model checker flags.
template <class Size>
std::vector<std::vector<int>> plan_fusion(const std::vector<int>& ready,
                                          const std::vector<Size>& sizes, Size capacity,
                                          bool allow_oversized = true) {
  std::vector<std::vector<int>> groups;
  std::size_t i = 0;
  while (i < ready.size()) {
    const int first = ready[i];
    if (!allow_oversized && sizes[static_cast<std::size_t>(first)] > capacity) {
      ++i;
      continue;
    }
    std::vector<int> members{first};
    Size total = sizes[static_cast<std::size_t>(first)];
    ++i;
    while (i < ready.size()) {
      const int id = ready[i];
      const Size size = sizes[static_cast<std::size_t>(id)];
      if (!allow_oversized && size > capacity) {
        ++i;
        continue;
      }
      if (total + size > capacity) break;
      members.push_back(id);
      total += size;
      ++i;
    }
    groups.push_back(std::move(members));
  }
  return groups;
}

/// Which transition rules the abstract engine runs. Standard is what
/// RealEngine implements; the others seed one classic protocol bug each so
/// negative fixtures can prove the checker detects that bug class.
enum class EngineVariant {
  Standard,          ///< Min-coordination, ready = submitted && !complete, capped packing
  MaxCoordination,   ///< bug: Max instead of Min in the readiness allreduce
  ReissueCompleted,  ///< bug: readiness ignores completion; tensors ship again
  UncappedPacking,   ///< bug: packing ignores the fusion threshold
  /// Two-level negotiation: each group of `group_size` ranks Min-reduces its
  /// readiness vectors, then the group leaders Min-reduce the group bitmaps.
  /// AND is associative, so this equals Standard — the correct staging.
  Hierarchical,
  /// bug: the parent level ships only when every group bitmap is *identical*
  /// (a naive leader that compares instead of intersecting). Groups whose
  /// members progress at different points starve the parent negotiation even
  /// though a non-empty intersection exists.
  HierarchicalParentStall,
  /// bug: the coordination reduce keeps intersecting over *all* ranks after a
  /// crash — the dead rank's frozen readiness vector vetoes every tensor it
  /// never submitted, deadlocking the survivors (V201).
  ElasticCrashBlind,
  /// bug: crash cleanup marks the dead rank's submitted-but-unreduced tensors
  /// completed without any data allreduce — the gradient is silently dropped
  /// from the sum (V202).
  ElasticLostGradient,
  /// bug: the shrink keeps the crashed rank's stale readiness bits OR'd into
  /// the negotiated set — its pre-crash bytes are counted by ranks that never
  /// agreed to the allreduce (V203).
  ElasticGhost,
  /// bug: a rejoin replays the rank's submission journal by clearing the
  /// completion bits it had submitted — those tensors negotiate ready again
  /// and are reduced a second time (V204).
  ElasticDoubleCount,
  /// bug: the regrow admission never completes — the rejoining rank stays
  /// pending forever and the engine suspends data cycles while membership is
  /// "re-stabilizing" (V205).
  ElasticRegrowStall,
};

/// True for the Elastic* seeded-bug variants (all require max_fault_events).
bool is_elastic_variant(EngineVariant variant);

const char* to_string(EngineVariant variant);

/// Small-scope instance of the protocol: world size, tensor sizes, fusion
/// capacity, and each rank's submission program (the order its backward pass
/// hands gradients to the engine — the dimension real deadlocks hide in).
struct ProtocolSpec {
  int ranks = 2;
  /// Tensor id -> element count. At most 20 tensors (completion bitmap).
  std::vector<std::size_t> tensor_elements;
  /// Fusion buffer capacity in elements (fusion_threshold / sizeof(float)).
  std::size_t capacity_elems = 0;
  bool allow_oversized = true;
  /// Max tensors a rank may have submitted-but-incomplete; 0 = unbounded
  /// (RealEngine). A bounded window models a framework that blocks on the
  /// oldest gradient before producing more.
  int max_outstanding = 0;
  /// Per-rank submission order; each must be a permutation of all tensor ids.
  std::vector<std::vector<int>> submit_order;
  /// Ranks per negotiation group for the Hierarchical* variants (rank r is in
  /// group r / group_size). 0 = flat; when non-zero it must divide `ranks`.
  int group_size = 0;
  /// Fault budget the environment may spend on crash/rejoin events during the
  /// run. 0 = rigid membership (no fault transitions are ever enabled);
  /// the Elastic* variants require a non-zero budget.
  int max_fault_events = 0;
  /// A crash is only enabled while it would leave at least this many ranks
  /// alive (an elastic deployment's minimum worker count).
  int min_alive = 1;
  EngineVariant variant = EngineVariant::Standard;
  std::string name = "engine";  ///< diagnostic object label

  /// Identity orders on every rank; `rotate_by_rank` rotates rank r's order
  /// left by r (a canonical rank-permuted submission pattern).
  static ProtocolSpec uniform(int ranks, std::vector<std::size_t> tensor_elements,
                              std::size_t capacity_elems, bool rotate_by_rank = false);

  /// Throws std::invalid_argument on malformed specs (out-of-bound ranks or
  /// tensor counts, submit orders that are not permutations).
  void validate() const;
};

/// Abstract protocol state. A rank submits in its fixed program order, so its
/// submitted set is the first `pos[r]` entries of submit_order[r]; completion
/// is collective, so one global bitmap suffices. The elastic fields track the
/// membership set: a crashed rank keeps its frozen `pos` (its stale readiness
/// vector is derivable) but leaves `alive`; a correct rejoin re-enters with
/// `pos` reset to zero.
struct ProtocolState {
  std::vector<int> pos;         ///< per-rank submitted-prefix length
  std::uint32_t completed = 0;  ///< bitmap over tensor ids
  std::uint32_t alive = 0;      ///< bitmap over ranks in the membership set
  /// Ranks stuck mid-rejoin (only the ElasticRegrowStall bug parks ranks
  /// here; a correct regrow admits atomically).
  std::uint32_t regrow_pending = 0;
  /// Ranks that have rejoined at least once (distinguishes V204 from V003).
  std::uint32_t rejoined = 0;
  /// Monotone superset of `completed`: every tensor ever shipped. The
  /// checker's double-count invariant is phrased over this, since the
  /// ElasticDoubleCount bug un-sets `completed` bits on rejoin.
  std::uint32_t ever_completed = 0;
  int faults_used = 0;  ///< crash/rejoin events consumed from the budget

  bool operator==(const ProtocolState&) const = default;
};

ProtocolState initial_state(const ProtocolSpec& spec);
bool all_complete(const ProtocolSpec& spec, const ProtocolState& state);
/// True when `tensor` is within rank `rank`'s submitted prefix.
bool rank_submitted(const ProtocolSpec& spec, const ProtocolState& state, int rank, int tensor);
/// True when `rank` is in the current membership set.
bool rank_alive(const ProtocolState& state, int rank);

/// True when rank `rank` may submit its next tensor: alive, program not
/// exhausted, and the submission window (if bounded) not full.
bool can_submit(const ProtocolSpec& spec, const ProtocolState& state, int rank);
/// The tensor id `rank` submits next; only valid when can_submit().
int next_submission(const ProtocolSpec& spec, const ProtocolState& state, int rank);
ProtocolState apply_submit(const ProtocolSpec& spec, const ProtocolState& state, int rank);

/// One engine cycle: the coordination reduce agrees on the ready set, the
/// fusion planner groups it, and each group completes in one data allreduce.
struct CycleOutcome {
  std::uint32_t ready = 0;                 ///< negotiated readiness bitmap
  std::vector<std::vector<int>> groups;    ///< planned data allreduces
  ProtocolState next;
};
CycleOutcome apply_cycle(const ProtocolSpec& spec, const ProtocolState& state);

/// Fault transitions. These are *environment* events, not protocol progress:
/// the checker interleaves them at every reachable state within the fault
/// budget, but they never count toward deadlock-enabledness.
///
/// can_crash: `rank` is alive, killing it keeps `min_alive` ranks up, and the
/// budget has an event left. apply_crash removes the rank from the membership
/// set (its `pos` freezes — the stale readiness vector stays derivable); the
/// ElasticLostGradient bug additionally "cleans up" by marking the victim's
/// submitted-but-unreduced tensors completed.
bool can_crash(const ProtocolSpec& spec, const ProtocolState& state, int rank);
ProtocolState apply_crash(const ProtocolSpec& spec, const ProtocolState& state, int rank);

/// can_rejoin: `rank` is crashed (not alive, not stuck pending) and the
/// budget has an event left. A correct apply_rejoin re-admits the rank with
/// its submission program reset — re-keying its bounded window — relying on
/// the completion mask to make re-submissions of already-reduced tensors
/// harmless. The ElasticDoubleCount bug keeps the pre-crash program position
/// and clears the completion bits it had submitted; ElasticRegrowStall parks
/// the rank in `regrow_pending` forever.
bool can_rejoin(const ProtocolSpec& spec, const ProtocolState& state, int rank);
ProtocolState apply_rejoin(const ProtocolSpec& spec, const ProtocolState& state, int rank);

/// Symmetry classes for canonical state hashing: ranks with identical
/// submission programs are interchangeable, so the checker sorts their
/// positions before hashing. With `group_size` set, classes are additionally
/// refined by group — swapping ranks across groups changes the per-group
/// bitmaps the Hierarchical* variants negotiate over, so only same-program
/// ranks *within one group* are interchangeable. Returns one class index per
/// rank.
std::vector<int> symmetry_classes(const ProtocolSpec& spec);

/// Canonical representative of `state` under the rank symmetry above: within
/// each class the per-rank tuples (pos, alive, pending, rejoined) are sorted.
/// Two states with equal canonical representatives have identical futures, so
/// the checker keys its visited set on this (exact — no hash collisions).
ProtocolState canonical_state(const ProtocolSpec& spec, const ProtocolState& state);

/// 64-bit mixing hash of canonical_state() — a hash-table key, not an
/// injective encoding (the elastic fields outgrew the old exact packing).
std::uint64_t canonical_key(const ProtocolSpec& spec, const ProtocolState& state);

}  // namespace dnnperf::hvd
