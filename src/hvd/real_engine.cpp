#include "hvd/real_engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "hvd/protocol.hpp"

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace dnnperf::hvd {

RealEngine::RealEngine(mpi::Comm& comm, FusionPolicy policy, int ranks_per_node)
    : comm_(comm), policy_(policy) {
  policy_.validate();
  if (ranks_per_node < 0 || (ranks_per_node > 0 && comm.size() % ranks_per_node != 0))
    throw std::invalid_argument("RealEngine: ranks_per_node must divide communicator size");
  if (ranks_per_node > 1 && ranks_per_node < comm.size()) {
    const int node = comm.rank() / ranks_per_node;
    const bool leader = comm.rank() % ranks_per_node == 0;
    node_comm_ = comm.split(node, comm.rank());
    leader_comm_ = comm.split(leader ? 0 : mpi::Comm::kUndefinedColor, comm.rank());
  }
}

void RealEngine::exchange(std::span<float> buffer) {
  if (!node_comm_) {
    mpi::allreduce(comm_, buffer, mpi::ReduceOp::Sum);
    return;
  }
  mpi::reduce(*node_comm_, buffer, mpi::ReduceOp::Sum, 0);
  if (leader_comm_) mpi::allreduce(*leader_comm_, buffer, mpi::ReduceOp::Sum);
  mpi::bcast(*node_comm_, buffer, 0);
}

int RealEngine::register_tensor(const std::string& name, std::size_t elements) {
  if (started_)
    throw std::logic_error("register_tensor after process(): the coordination ready vector is "
                           "sized at the first cycle and must match on every rank (" +
                           name + ")");
  if (by_name_.contains(name)) throw std::invalid_argument("tensor already registered: " + name);
  const int id = static_cast<int>(tensors_.size());
  tensors_.push_back(Tensor{name, elements, {}, false, false});
  by_name_[name] = id;
  return id;
}

void RealEngine::submit(int tensor_id, std::span<float> data) {
  auto& t = tensors_.at(static_cast<std::size_t>(tensor_id));
  if (t.submitted && !t.complete)
    throw std::logic_error("tensor submitted twice before completion: " + t.name);
  if (data.size() != t.elements)
    throw std::invalid_argument("submit: size mismatch for " + t.name);
  t.data = data;
  t.submitted = true;
  t.complete = false;
  counters_.on_framework_request();
}

int RealEngine::process() {
  started_ = true;
  DNNPERF_TRACE_SPAN_VAR(cycle_span, "hvd", "engine.cycle");
  const bool timing = util::metrics::enabled();
  const auto cycle_start = timing ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};

  // Coordination: a tensor proceeds only when ready on every rank.
  std::vector<std::int32_t> ready(tensors_.size());
  for (std::size_t i = 0; i < tensors_.size(); ++i)
    ready[i] = (tensors_[i].submitted && !tensors_[i].complete) ? 1 : 0;
  counters_.on_engine_wakeup();
  {
    DNNPERF_TRACE_SPAN_VAR(span, "hvd", "negotiate");
    if (span.active())
      span.set_args(std::move(util::trace::Args().add(
                                  "tensors", static_cast<std::int64_t>(tensors_.size())))
                        .str());
    if (!ready.empty())
      mpi::allreduce(comm_, std::span<std::int32_t>(ready), mpi::ReduceOp::Min);
  }

  // Fuse globally-ready tensors in id order into buffers of at most
  // fusion_threshold bytes, one data allreduce per buffer. The packing rule
  // lives in hvd/protocol.hpp so the model checker verifies the same plan
  // this engine executes.
  int completed = 0;
  std::vector<int> ready_ids;
  std::vector<std::size_t> elements(tensors_.size());
  for (std::size_t t = 0; t < tensors_.size(); ++t) {
    elements[t] = tensors_[t].elements;
    if (ready[t]) ready_ids.push_back(static_cast<int>(t));
  }
  const auto max_elems = static_cast<std::size_t>(policy_.fusion_threshold_bytes / sizeof(float));
  for (const auto& group : plan_fusion(ready_ids, elements, max_elems)) {
    std::vector<std::size_t> members(group.begin(), group.end());
    std::size_t buffer_elems = 0;
    for (std::size_t m : members) buffer_elems += tensors_[m].elements;

    fusion_buffer_.resize(buffer_elems);
    {
      DNNPERF_TRACE_SPAN_VAR(span, "hvd", "fusion.pack");
      if (span.active())
        span.set_args(std::move(util::trace::Args()
                                    .add("tensors", static_cast<std::int64_t>(members.size()))
                                    .add("bytes", static_cast<std::int64_t>(buffer_elems *
                                                                           sizeof(float))))
                          .str());
      std::size_t off = 0;
      for (std::size_t m : members) {
        std::copy(tensors_[m].data.begin(), tensors_[m].data.end(), fusion_buffer_.begin() + off);
        off += tensors_[m].elements;
      }
    }

    {
      DNNPERF_TRACE_SPAN_VAR(span, "hvd", "allreduce.data");
      if (span.active())
        span.set_args(std::move(util::trace::Args()
                                    .add("tensors", static_cast<std::int64_t>(members.size()))
                                    .add("bytes", static_cast<std::int64_t>(buffer_elems *
                                                                           sizeof(float))))
                          .str());
      exchange(std::span<float>(fusion_buffer_.data(), buffer_elems));
    }
    const double buffer_bytes = static_cast<double>(buffer_elems) * sizeof(float);
    counters_.on_data_allreduce(buffer_bytes,
                                std::min(1.0, buffer_bytes / policy_.fusion_threshold_bytes));

    {
      DNNPERF_TRACE_SPAN_VAR(span, "hvd", "fusion.unpack");
      const float inv = 1.0f / static_cast<float>(comm_.size());
      std::size_t off = 0;
      for (std::size_t m : members) {
        auto& t = tensors_[m];
        for (std::size_t k = 0; k < t.elements; ++k) t.data[k] = fusion_buffer_[off + k] * inv;
        off += t.elements;
        t.complete = true;
        t.submitted = false;
        ++completed;
      }
    }
  }
  if (cycle_span.active())
    cycle_span.set_args(std::move(util::trace::Args().add("completed", completed)).str());
  if (timing)
    counters_.on_cycle_time(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - cycle_start).count());
  return completed;
}

void RealEngine::synchronize() {
  auto outstanding = [this] {
    return std::any_of(tensors_.begin(), tensors_.end(),
                       [](const Tensor& t) { return t.submitted && !t.complete; });
  };
  // All ranks enter with the same submission pattern; each process() call is
  // collective, so every rank iterates the same number of times.
  std::int32_t more = outstanding() ? 1 : 0;
  mpi::allreduce(comm_, std::span<std::int32_t>(&more, 1), mpi::ReduceOp::Max);
  while (more != 0) {
    process();
    more = outstanding() ? 1 : 0;
    mpi::allreduce(comm_, std::span<std::int32_t>(&more, 1), mpi::ReduceOp::Max);
  }
}

bool RealEngine::is_complete(int tensor_id) const {
  return tensors_.at(static_cast<std::size_t>(tensor_id)).complete;
}

}  // namespace dnnperf::hvd
