#include "hvd/policy.hpp"

#include <stdexcept>

namespace dnnperf::hvd {

void FusionPolicy::validate() const {
  if (cycle_time_s <= 0.0) throw std::invalid_argument("FusionPolicy: cycle_time <= 0");
  if (fusion_threshold_bytes <= 0.0)
    throw std::invalid_argument("FusionPolicy: fusion_threshold <= 0");
}

CommStats& CommStats::operator+=(const CommStats& other) {
  framework_requests += other.framework_requests;
  engine_wakeups += other.engine_wakeups;
  data_allreduces += other.data_allreduces;
  bytes_reduced += other.bytes_reduced;
  return *this;
}

EngineCounters::EngineCounters()
    : requested_(util::metrics::counter(
          metric_names::kRequested,
          "Allreduce calls requested by the framework (one per gradient tensor)")),
      issued_(util::metrics::counter(
          metric_names::kIssued,
          "Data allreduces issued by the Horovod engine (one per fused buffer)")),
      cycles_(util::metrics::counter(
          metric_names::kCycles,
          "Engine cycle wake-ups (each issues one coordination allreduce)")),
      fusion_bytes_(util::metrics::counter(metric_names::kFusionBytes,
                                           "Bytes shipped through fusion buffers")),
      fusion_util_(util::metrics::gauge(
          metric_names::kFusionUtil,
          "Fill fraction of the most recent fusion buffer (bytes / threshold)")),
      cycle_time_(util::metrics::histogram(
          metric_names::kCycleTime, "Busy engine cycle duration, seconds")) {}

void EngineCounters::on_framework_request(std::uint64_t n) {
  stats_.framework_requests += n;
  requested_.inc(n);
}

void EngineCounters::on_engine_wakeup() {
  ++stats_.engine_wakeups;
  cycles_.inc();
}

void EngineCounters::on_data_allreduce(double bytes, double fill_ratio) {
  ++stats_.data_allreduces;
  stats_.bytes_reduced += bytes;
  issued_.inc();
  fusion_bytes_.inc(static_cast<std::uint64_t>(bytes));
  fusion_util_.set(fill_ratio);
}

void EngineCounters::on_cycle_time(double seconds) { cycle_time_.observe(seconds); }

}  // namespace dnnperf::hvd
