#include "hvd/policy.hpp"

#include <stdexcept>

namespace dnnperf::hvd {

void FusionPolicy::validate() const {
  if (cycle_time_s <= 0.0) throw std::invalid_argument("FusionPolicy: cycle_time <= 0");
  if (fusion_threshold_bytes <= 0.0)
    throw std::invalid_argument("FusionPolicy: fusion_threshold <= 0");
}

CommStats& CommStats::operator+=(const CommStats& other) {
  framework_requests += other.framework_requests;
  engine_wakeups += other.engine_wakeups;
  data_allreduces += other.data_allreduces;
  bytes_reduced += other.bytes_reduced;
  return *this;
}

}  // namespace dnnperf::hvd
