// Discrete-event simulation of data-parallel training iterations driven by a
// Horovod-style engine.
//
// Two simulation modes share one engine loop:
//
//  - Representative-rank mode (sim_ranks == 1, the default): one rank is
//    simulated; rank jitter enters through `straggler_factor`, the
//    expected-max inflation of compute times across the world.
//  - Per-rank mode (sim_ranks > 1): every rank's backward pass and gradient
//    submissions are simulated explicitly from flat per-rank arenas (a
//    jitter factor, a submission cursor, and a per-tensor submit count). A
//    gradient becomes globally negotiable only when the slowest rank has
//    submitted it — the Min-reduce the real engine computes — so stragglers
//    emerge from the simulation instead of a closed-form factor. Event
//    count grows as ranks x tensors per iteration; the pooled sim::Engine
//    keeps that allocation-free, which is what makes 4k-rank steps cheap.
//
// The engine's background loop wakes every cycle_time, issues one
// coordination allreduce per wake-up, fuses all negotiated tensors up to the
// fusion threshold, and issues one data allreduce per buffer, overlapping
// with the remaining backward compute. An iteration completes when the
// backward pass is done, every gradient is reduced, and the optimizer has
// run (synchronous SGD).
#pragma once

#include <cstdint>
#include <optional>

#include "exec/schedule.hpp"
#include "hvd/policy.hpp"
#include "mpi/cost.hpp"

namespace dnnperf::hvd {

/// Fault-scenario schedule for per-rank mode, in iteration granularity (the
/// DES models elastic membership changes at step boundaries — the point the
/// real elastic engine re-forms the ring). Plain structs so core/scenario can
/// parse them from JSON and train::TrainConfig can carry them; the *protocol*
/// legality of crash/rejoin handling is verified separately by the model
/// checker (analysis/verify), and scenario well-formedness by the F-family
/// lint passes.
struct RankSlowdown {
  int rank = 0;
  double factor = 1.0;  ///< multiplies the rank's compute time (straggler)
  int from_step = 0;    ///< first affected iteration (inclusive)
  int to_step = -1;     ///< first unaffected iteration; -1 = rest of the run

  bool operator==(const RankSlowdown&) const = default;
};

struct CrashEvent {
  int rank = 0;
  int step = 0;  ///< the rank is down from this iteration on

  bool operator==(const CrashEvent&) const = default;
};

struct RejoinEvent {
  int rank = 0;
  int step = 0;  ///< the rank is back from this iteration on

  bool operator==(const RejoinEvent&) const = default;
};

struct FaultSchedule {
  std::vector<RankSlowdown> slowdowns;
  std::vector<CrashEvent> crashes;
  std::vector<RejoinEvent> rejoins;
  /// Crash events the operator budgeted for (F003 gates schedules past it).
  int fault_budget = 2;

  bool empty() const { return slowdowns.empty() && crashes.empty() && rejoins.empty(); }
  bool operator==(const FaultSchedule&) const = default;
};

struct TimelineInput {
  double fwd_time = 0.0;            ///< per-iteration forward compute, seconds
  double bwd_time = 0.0;            ///< per-iteration backward compute, seconds
  std::vector<exec::GradEvent> grad_events;  ///< relative to backward start
  double optimizer_time = 0.0;
  double iteration_fixed = 0.0;     ///< per-iteration framework overhead
  int iterations = 3;

  FusionPolicy policy;
  /// Cost model for the communicator; nullptr disables communication
  /// entirely (single-process training).
  const mpi::CollectiveCostModel* cost = nullptr;

  /// Expected-max compute inflation across ranks (>= 1).
  double straggler_factor = 1.0;
  /// Bytes per tensor in the per-cycle coordination allreduce (Horovod
  /// negotiates with a smallish control message per registered tensor).
  double negotiation_bytes_per_tensor = 8.0;
  /// The Horovod progress thread shares a core with compute (no spare
  /// core); each wake-up then steals CPU from the workers.
  bool comm_thread_shares_core = false;
  /// Physical cores owned by one rank; when the progress thread shares a
  /// core it steals roughly one core's worth of time, i.e. a 1/cores slice
  /// of the rank's compute. PyTorch's one-core ranks lose everything during
  /// a wake-up; a 12-core TensorFlow rank barely notices.
  int cores_per_rank = 1;
  /// CPU seconds one wake-up costs the progress thread (MPI polling plus
  /// engine bookkeeping); taxes compute when sharing a core.
  double wakeup_cpu_s = 0.8e-3;
  /// Fraction of the wake-up cost that still reaches compute when the
  /// progress thread has its own core (cache/memory interference).
  double dedicated_tax_share = 0.12;

  /// Ranks simulated explicitly (per-rank mode when > 1; requires a cost
  /// model). In per-rank mode `straggler_factor` should stay 1.0 — jitter is
  /// drawn per rank per iteration from `per_rank_jitter_cv` instead of the
  /// closed-form expected max.
  int sim_ranks = 1;
  /// Coefficient of variation of the per-rank compute factor in per-rank
  /// mode; 0 makes every rank identical (useful for parity tests). Factors
  /// are redrawn every iteration from a generator reseeded by
  /// hash(jitter_seed, step), so straggler patterns vary over time yet stay
  /// fully determined by the input (cache hit ≡ cold miss).
  double per_rank_jitter_cv = 0.0;
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;
  /// Crash/rejoin/slowdown schedule; non-empty requires per-rank mode. A
  /// crashed rank submits nothing and the Min-reduce re-forms over the
  /// survivors (a tensor becomes negotiable when every *alive* rank has
  /// submitted it); each membership change charges one engine cycle plus a
  /// full-tensor-list negotiation allreduce for the ring re-form.
  FaultSchedule faults;
  /// Price data allreduces with the staged hierarchical plan
  /// (CollectiveCostModel::staged_allreduce_time) instead of the flat Auto
  /// policy. Negotiation stays on recursive doubling either way.
  bool hierarchical_allreduce = false;
  /// Per-rank mode with tracing enabled emits one virtual "compute" span per
  /// rank per iteration on a "sim rank N" track; this caps how many ranks
  /// get their own track so a 16k-rank sweep cannot swamp the document.
  int trace_rank_limit = 4096;
};

struct TimelineResult {
  double total_time = 0.0;
  double per_iteration = 0.0;
  CommStats stats;
  /// Fraction of per-iteration time not overlapped with compute.
  double comm_exposed_fraction = 0.0;
  /// Virtual seconds the engine spent busy (negotiation + data allreduces)
  /// over the whole run; with the exposed total this yields the
  /// compute-communication overlap fraction the profiler reports.
  double comm_busy_total = 0.0;
  /// Calendar totals of the underlying sim::Engine: events that ran through
  /// the slab pool, and the pool's high-water slot count (its resident
  /// footprint — slots are reused, so this stays near the in-flight peak).
  std::uint64_t events_processed = 0;
  std::uint64_t pool_slots = 0;
  /// Per-iteration wall time and contributing (alive) rank count, in step
  /// order — what scenario throughput accounting and crash-recovery asserts
  /// consume. In representative mode alive == sim_ranks every step.
  std::vector<double> iteration_seconds;
  std::vector<int> iteration_alive_ranks;
  /// Membership-set changes after the first iteration (each charged a ring
  /// re-form: one engine cycle + one negotiation allreduce).
  std::uint64_t membership_changes = 0;
};

/// Runs the event simulation. Deterministic.
TimelineResult simulate_training(const TimelineInput& input);

}  // namespace dnnperf::hvd
