// A working Horovod-style gradient-exchange engine over minimpi.
//
// Each rank submits gradient tensors as its backward pass produces them;
// process() runs one engine cycle: a coordination allreduce agrees on which
// tensors are ready on every rank, ready tensors are packed into fusion
// buffers up to the fusion threshold, and each buffer goes through one data
// allreduce (sum, then divide by world size — Horovod averages gradients).
//
// This is the mechanism whose timing the DES in hvd/timeline.cpp models;
// tests validate that fused exchange is numerically identical to per-tensor
// allreduce and that the profiling counters behave like the paper's.
//
// Collective contract: all ranks must register the same tensors in the same
// order and call process()/synchronize() collectively.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "hvd/policy.hpp"
#include "mpi/collectives.hpp"
#include "mpi/world.hpp"

namespace dnnperf::hvd {

class RealEngine {
 public:
  /// `ranks_per_node` > 0 enables hierarchical data exchange (reduce to the
  /// node leader, allreduce among leaders, broadcast back — what MVAPICH2
  /// does on multi-rank nodes); it must divide the communicator size.
  /// 0 = flat allreduce across all ranks.
  RealEngine(mpi::Comm& comm, FusionPolicy policy, int ranks_per_node = 0);

  /// Registers a tensor; must happen in the same order on all ranks, and
  /// before the first process() call — the coordination allreduce exchanges
  /// one readiness slot per registered tensor, so a rank registering late
  /// would desynchronize the vector length across ranks (silent corruption
  /// or a hang). Late registration throws std::logic_error instead.
  /// Returns the tensor id.
  int register_tensor(const std::string& name, std::size_t elements);

  /// Marks a registered tensor ready with this rank's gradient data. The
  /// span must stay valid until the tensor completes. Counts one framework
  /// request.
  void submit(int tensor_id, std::span<float> data);

  /// One engine cycle (collective). Returns tensors completed this cycle.
  int process();

  /// Collective: cycles until every submitted tensor on this rank completed.
  void synchronize();

  bool is_complete(int tensor_id) const;
  const CommStats& stats() const { return counters_.stats(); }
  int world_size() const { return comm_.size(); }

 private:
  struct Tensor {
    std::string name;
    std::size_t elements = 0;
    std::span<float> data;
    bool submitted = false;
    bool complete = false;
  };

  /// Sum-allreduce of the fusion buffer, flat or hierarchical.
  void exchange(std::span<float> buffer);

  mpi::Comm& comm_;
  FusionPolicy policy_;
  std::optional<mpi::Comm> node_comm_;    ///< hierarchical mode only
  std::optional<mpi::Comm> leader_comm_;  ///< hierarchical mode, node leaders
  std::vector<Tensor> tensors_;
  std::unordered_map<std::string, int> by_name_;
  std::vector<float> fusion_buffer_;
  EngineCounters counters_;  ///< publishes CommStats + registry metrics together
  bool started_ = false;  ///< true once process() ran; registration is closed

};

}  // namespace dnnperf::hvd
