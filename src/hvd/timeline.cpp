#include "hvd/timeline.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "hvd/protocol.hpp"
#include "sim/engine.hpp"
#include "util/trace.hpp"

namespace dnnperf::hvd {

namespace {

namespace trace = util::trace;

/// Trace tracks of the simulated rank: compute phases on one, engine
/// activity on the other — the same two-track layout the Horovod timeline
/// uses, but in virtual time under trace::kSimulatedPid so the simulated
/// process sits next to the real one in the viewer.
constexpr int kComputeTid = 1;
constexpr int kEngineTid = 2;

class TimelineSim {
 public:
  explicit TimelineSim(const TimelineInput& in) : in_(in), tracing_(trace::enabled()) {
    in_.policy.validate();
    if (in_.iterations <= 0) throw std::invalid_argument("TimelineInput: iterations <= 0");
    if (in_.straggler_factor < 1.0)
      throw std::invalid_argument("TimelineInput: straggler_factor < 1");
    // The progress thread's per-wake-up CPU cost taxes compute when it has
    // no core of its own: a fraction wakeup/cycle of every core-second goes
    // to the engine instead of the workers.
    double tax = 0.0;
    if (in_.cost != nullptr) {
      if (in_.cores_per_rank < 1)
        throw std::invalid_argument("TimelineInput: cores_per_rank < 1");
      // Sharing a core steals one core's slice of the rank; a dedicated
      // progress core only causes cache/memory interference.
      const double share = in_.comm_thread_shares_core
                               ? 1.0 / in_.cores_per_rank
                               : in_.dedicated_tax_share;
      tax = std::min(share * in_.wakeup_cpu_s / in_.policy.cycle_time_s, 0.8);
    }
    stretch_ = in_.straggler_factor / (1.0 - tax);
  }

  TimelineResult run() {
    if (tracing_) {
      trace::set_virtual_track_name(trace::kSimulatedPid, kComputeTid, "dnnperf (simulated)",
                                    "compute");
      trace::set_virtual_track_name(trace::kSimulatedPid, kEngineTid, "dnnperf (simulated)",
                                    "hvd engine");
      engine_.set_trace_track(trace::kSimulatedPid, kEngineTid);
    }
    start_iteration();
    if (in_.cost != nullptr) engine_.schedule_after(in_.policy.cycle_time_s, [this] { wake(); });
    engine_.run();
    TimelineResult result;
    result.total_time = finish_time_;
    result.per_iteration = finish_time_ / in_.iterations;
    result.stats = counters_.stats();
    result.comm_exposed_fraction =
        finish_time_ > 0.0 ? exposed_total_ / finish_time_ : 0.0;
    return result;
  }

 private:
  void emit_compute(const char* name, double start, double end) {
    if (tracing_)
      trace::emit_virtual_complete(name, "sim", trace::kSimulatedPid, kComputeTid, start,
                                   end - start,
                                   std::move(trace::Args().add("iteration", completed_)).str());
  }

  void start_iteration() {
    bwd_done_ = false;
    reduced_ = 0;
    const double fwd_start = engine_.now() + in_.iteration_fixed;
    engine_.schedule_after(in_.iteration_fixed + in_.fwd_time * stretch_,
                           [this, fwd_start] {
                             emit_compute("forward", fwd_start, engine_.now());
                             forward_done();
                           });
  }

  void forward_done() {
    // Framework requests exist only when a Horovod engine is modeled: with
    // cost == nullptr there is no engine to hand gradients to, and the real
    // path (single-process run_real_training, no RealEngine) counts zero.
    // Counting them here used to make the sim disagree with every real
    // no-comm run — the parity bug the registry metrics now guard against.
    if (in_.cost != nullptr) counters_.on_framework_request(in_.grad_events.size());
    for (const auto& e : in_.grad_events) {
      engine_.schedule_after(e.time * stretch_, [this, bytes = e.bytes] {
        if (in_.cost == nullptr) {
          ++reduced_;  // no communication: gradients are immediately "reduced"
        } else {
          pending_.push_back(bytes);
        }
      });
    }
    const double bwd_start = engine_.now();
    engine_.schedule_after(in_.bwd_time * stretch_, [this, bwd_start] {
      emit_compute("backward", bwd_start, engine_.now());
      bwd_done_ = true;
      bwd_end_time_ = engine_.now();
      maybe_finish_iteration();
    });
  }

  /// Horovod Engine background loop. Every cycle issues the coordination op
  /// (RealEngine::process() negotiates unconditionally too, and the paper's
  /// engine-issued counter includes idle cycles — that is where the ~199x
  /// ops reduction of Fig. 19 comes from), so `engine_wakeups` counts every
  /// wake-up. But an idle wake-up with nothing outstanding must not *cost*
  /// anything: previously it charged a full per-tensor negotiation over all
  /// grad_events, slowing the wake cadence (next wake at max(cycle, busy))
  /// and delaying gradient pickup whenever negotiation time exceeded the
  /// cycle time. Busy wake-ups charge one negotiation allreduce, then one
  /// data allreduce per fused buffer.
  void wake() {
    counters_.on_engine_wakeup();
    if (pending_.empty()) {
      if (!done_) engine_.schedule_after(in_.policy.cycle_time_s, [this] { wake(); });
      return;
    }

    const double wake_start = engine_.now();
    double busy = in_.cost->allreduce_time(
        static_cast<double>(in_.grad_events.size()) * in_.negotiation_bytes_per_tensor,
        mpi::AllreduceAlgo::RecursiveDoubling);
    if (tracing_)
      trace::emit_virtual_complete(
          "negotiate", "sim", trace::kSimulatedPid, kEngineTid, wake_start, busy,
          std::move(trace::Args().add("tensors",
                                      static_cast<std::int64_t>(in_.grad_events.size())))
              .str());

    // Fuse the pending gradients with the same greedy rule RealEngine
    // executes (hvd/protocol.hpp), over arrival order instead of tensor ids.
    std::vector<double> sizes(pending_.begin(), pending_.end());
    std::vector<int> ready_ids(sizes.size());
    for (std::size_t k = 0; k < ready_ids.size(); ++k) ready_ids[k] = static_cast<int>(k);
    pending_.clear();
    for (const auto& group : plan_fusion(ready_ids, sizes, in_.policy.fusion_threshold_bytes)) {
      double buffer_bytes = 0.0;
      const int fused = static_cast<int>(group.size());
      for (int id : group) buffer_bytes += sizes[static_cast<std::size_t>(id)];
      const double ar_time = in_.cost->allreduce_time(buffer_bytes);
      if (tracing_)
        trace::emit_virtual_complete(
            "allreduce.data", "sim", trace::kSimulatedPid, kEngineTid, wake_start + busy,
            ar_time,
            std::move(trace::Args().add("tensors", fused).add("bytes", buffer_bytes)).str());
      busy += ar_time;
      counters_.on_data_allreduce(
          buffer_bytes, std::min(1.0, buffer_bytes / in_.policy.fusion_threshold_bytes));
      reduced_after_busy_ += fused;
    }
    counters_.on_cycle_time(busy);  // virtual seconds of this busy cycle

    engine_.schedule_after(busy, [this, batch = reduced_after_busy_] {
      reduced_ += batch;
      maybe_finish_iteration();
    });
    reduced_after_busy_ = 0;

    if (!done_) {
      const double next = std::max(in_.policy.cycle_time_s, busy);
      engine_.schedule_after(next, [this] { wake(); });
    }
  }

  void maybe_finish_iteration() {
    if (!bwd_done_ || reduced_ < static_cast<int>(in_.grad_events.size())) return;
    bwd_done_ = false;  // guard against double entry
    exposed_total_ += std::max(0.0, engine_.now() - bwd_end_time_);
    const double opt_start = engine_.now();
    engine_.schedule_after(in_.optimizer_time * stretch_, [this, opt_start] {
      emit_compute("optimizer", opt_start, engine_.now());
      ++completed_;
      if (completed_ >= in_.iterations) {
        finish_time_ = engine_.now();
        done_ = true;  // stops the wake loop from rescheduling
      } else {
        start_iteration();
      }
    });
  }

  TimelineInput in_;
  sim::Engine engine_;
  EngineCounters counters_;
  std::deque<double> pending_;
  bool tracing_ = false;
  int reduced_ = 0;
  int reduced_after_busy_ = 0;
  bool bwd_done_ = false;
  bool done_ = false;
  int completed_ = 0;
  double bwd_end_time_ = 0.0;
  double exposed_total_ = 0.0;
  double finish_time_ = 0.0;
  double stretch_ = 1.0;
};

}  // namespace

TimelineResult simulate_training(const TimelineInput& input) {
  return TimelineSim(input).run();
}

}  // namespace dnnperf::hvd
