#include "hvd/timeline.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "hvd/protocol.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace dnnperf::hvd {

namespace {

namespace trace = util::trace;

/// Trace tracks of the simulated rank: compute phases on one, engine
/// activity on the other — the same two-track layout the Horovod timeline
/// uses, but in virtual time under trace::kSimulatedPid so the simulated
/// process sits next to the real one in the viewer. The compute track also
/// carries "step" and "exchange" scopes mirroring the real trainer's span
/// vocabulary, so the profiler reads both kinds of trace with one code
/// path. Per-rank mode adds one "sim rank N" track per rank (up to
/// TimelineInput::trace_rank_limit) with a single "compute" span per
/// iteration — enough for straggler attribution without swamping the
/// document at thousands of ranks.
constexpr int kComputeTid = 1;
constexpr int kEngineTid = 2;
constexpr int kRankTidBase = 16;

class TimelineSim {
 public:
  explicit TimelineSim(const TimelineInput& in) : in_(in), tracing_(trace::enabled()) {
    in_.policy.validate();
    if (in_.iterations <= 0) throw std::invalid_argument("TimelineInput: iterations <= 0");
    if (in_.straggler_factor < 1.0)
      throw std::invalid_argument("TimelineInput: straggler_factor < 1");
    if (in_.sim_ranks < 1) throw std::invalid_argument("TimelineInput: sim_ranks < 1");
    if (in_.per_rank_jitter_cv < 0.0)
      throw std::invalid_argument("TimelineInput: negative per_rank_jitter_cv");
    if (per_rank_mode() && in_.cost == nullptr)
      throw std::invalid_argument("TimelineInput: sim_ranks > 1 requires a cost model");
    validate_faults();
    // The progress thread's per-wake-up CPU cost taxes compute when it has
    // no core of its own: a fraction wakeup/cycle of every core-second goes
    // to the engine instead of the workers.
    double tax = 0.0;
    if (in_.cost != nullptr) {
      if (in_.cores_per_rank < 1)
        throw std::invalid_argument("TimelineInput: cores_per_rank < 1");
      // Sharing a core steals one core's slice of the rank; a dedicated
      // progress core only causes cache/memory interference.
      const double share = in_.comm_thread_shares_core
                               ? 1.0 / in_.cores_per_rank
                               : in_.dedicated_tax_share;
      tax = std::min(share * in_.wakeup_cpu_s / in_.policy.cycle_time_s, 0.8);
    }
    stretch_ = in_.straggler_factor / (1.0 - tax);
    if (per_rank_mode()) {
      rank_factor_.assign(static_cast<std::size_t>(in_.sim_ranks), 1.0);
      rank_cursor_.assign(static_cast<std::size_t>(in_.sim_ranks), 0);
      submit_count_.assign(in_.grad_events.size(), 0);
      rank_alive_.assign(static_cast<std::size_t>(in_.sim_ranks), 1);
      alive_count_ = in_.sim_ranks;
    }
  }

  TimelineResult run() {
    if (tracing_) {
      trace::set_virtual_track_name(trace::kSimulatedPid, kComputeTid, "dnnperf (simulated)",
                                    "compute");
      trace::set_virtual_track_name(trace::kSimulatedPid, kEngineTid, "dnnperf (simulated)",
                                    "hvd engine");
      engine_.set_trace_track(trace::kSimulatedPid, kEngineTid);
      for (int r = 0; r < traced_ranks(); ++r)
        trace::set_virtual_track_name(trace::kSimulatedPid, kRankTidBase + r,
                                      "dnnperf (simulated)", "sim rank " + std::to_string(r));
    }
    start_iteration();
    if (in_.cost != nullptr) engine_.schedule_after(in_.policy.cycle_time_s, [this] { wake(); });
    engine_.run();
    TimelineResult result;
    result.total_time = finish_time_;
    result.per_iteration = finish_time_ / in_.iterations;
    result.stats = counters_.stats();
    result.comm_exposed_fraction =
        finish_time_ > 0.0 ? exposed_total_ / finish_time_ : 0.0;
    result.comm_busy_total = comm_busy_total_;
    result.events_processed = engine_.events_processed();
    result.pool_slots = static_cast<std::uint64_t>(engine_.pool_slots());
    result.iteration_seconds = std::move(iteration_seconds_);
    result.iteration_alive_ranks = std::move(iteration_alive_);
    result.membership_changes = membership_changes_;
    return result;
  }

 private:
  bool per_rank_mode() const { return in_.sim_ranks > 1; }

  void validate_faults() {
    if (in_.faults.empty()) return;
    if (!per_rank_mode())
      throw std::invalid_argument("TimelineInput: fault schedule requires per-rank mode");
    for (const auto& s : in_.faults.slowdowns) {
      if (s.rank < 0 || s.rank >= in_.sim_ranks)
        throw std::invalid_argument("TimelineInput: slowdown rank out of range");
      if (s.factor <= 0.0 || s.from_step < 0)
        throw std::invalid_argument("TimelineInput: malformed slowdown");
    }
    for (const auto& c : in_.faults.crashes)
      if (c.rank < 0 || c.rank >= in_.sim_ranks || c.step < 0)
        throw std::invalid_argument("TimelineInput: malformed crash event");
    for (const auto& r : in_.faults.rejoins)
      if (r.rank < 0 || r.rank >= in_.sim_ranks || r.step < 0)
        throw std::invalid_argument("TimelineInput: malformed rejoin event");
    for (int step = 0; step < in_.iterations; ++step) {
      int alive = 0;
      for (int r = 0; r < in_.sim_ranks; ++r) alive += alive_at(r, step);
      if (alive == 0)
        throw std::invalid_argument("TimelineInput: crash schedule leaves no rank alive at step " +
                                    std::to_string(step));
    }
  }

  /// Membership at `step`: the latest crash/rejoin event at or before the
  /// step wins (ties go to the rejoin — F002 lint rejects same-step pairs
  /// anyway).
  bool alive_at(int rank, int step) const {
    int last_crash = -1, last_rejoin = -1;
    for (const auto& c : in_.faults.crashes)
      if (c.rank == rank && c.step <= step) last_crash = std::max(last_crash, c.step);
    for (const auto& r : in_.faults.rejoins)
      if (r.rank == rank && r.step <= step) last_rejoin = std::max(last_rejoin, r.step);
    return last_crash < 0 || last_rejoin >= last_crash;
  }

  /// Product of the slowdown factors covering (`rank`, `step`).
  double slowdown_at(int rank, int step) const {
    double factor = 1.0;
    for (const auto& s : in_.faults.slowdowns)
      if (s.rank == rank && step >= s.from_step && (s.to_step < 0 || step < s.to_step))
        factor *= s.factor;
    return factor;
  }

  /// splitmix64 of (jitter_seed, step): per-iteration generator seed, so the
  /// straggler pattern varies over steps but is a pure function of the input.
  std::uint64_t iteration_seed(int step) const {
    std::uint64_t z = in_.jitter_seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(step) + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Ranks that get their own "sim rank N" trace track in per-rank mode.
  int traced_ranks() const {
    if (!tracing_ || !per_rank_mode()) return 0;
    return std::min(in_.sim_ranks, std::max(0, in_.trace_rank_limit));
  }

  void emit_compute(const char* name, double start, double end) {
    if (tracing_)
      trace::emit_virtual_complete(name, "sim", trace::kSimulatedPid, kComputeTid, start,
                                   end - start,
                                   std::move(trace::Args().add("iteration", completed_)).str());
  }

  void start_iteration() {
    bwd_done_ = false;
    reduced_ = 0;
    step_start_ = engine_.now();
    if (per_rank_mode()) {
      start_iteration_per_rank();
      return;
    }
    const double fwd_start = engine_.now() + in_.iteration_fixed;
    engine_.schedule_after(in_.iteration_fixed + in_.fwd_time * stretch_,
                           [this, fwd_start] {
                             emit_compute("forward", fwd_start, engine_.now());
                             forward_done();
                           });
  }

  void forward_done() {
    // Framework requests exist only when a Horovod engine is modeled: with
    // cost == nullptr there is no engine to hand gradients to, and the real
    // path (single-process run_real_training, no RealEngine) counts zero.
    // Counting them here used to make the sim disagree with every real
    // no-comm run — the parity bug the registry metrics now guard against.
    if (in_.cost != nullptr) counters_.on_framework_request(in_.grad_events.size());
    for (const auto& e : in_.grad_events) {
      engine_.schedule_after(e.time * stretch_, [this, bytes = e.bytes] {
        if (in_.cost == nullptr) {
          ++reduced_;  // no communication: gradients are immediately "reduced"
        } else {
          pending_.push_back(bytes);
        }
      });
    }
    const double bwd_start = engine_.now();
    engine_.schedule_after(in_.bwd_time * stretch_, [this, bwd_start] {
      emit_compute("backward", bwd_start, engine_.now());
      bwd_done_ = true;
      bwd_end_time_ = engine_.now();
      maybe_finish_iteration();
    });
  }

  // -------------------------------------------------------------------------
  // Per-rank mode: flat arenas, one submission chain per rank
  // -------------------------------------------------------------------------

  void start_iteration_per_rank() {
    iter_start_ = engine_.now();
    bwd_ranks_done_ = 0;
    iter_max_factor_ = 1.0;
    std::fill(submit_count_.begin(), submit_count_.end(), 0);
    std::fill(rank_cursor_.begin(), rank_cursor_.end(), std::uint32_t{0});
    // Resolve this step's membership set; a change re-forms the ring, which
    // costs one engine cycle plus a full-tensor-list negotiation allreduce
    // before any rank's compute lands.
    iter_resync_s_ = 0.0;
    if (!in_.faults.empty()) {
      bool changed = false;
      int alive = 0;
      for (int r = 0; r < in_.sim_ranks; ++r) {
        const char a = alive_at(r, completed_) ? 1 : 0;
        changed |= a != rank_alive_[static_cast<std::size_t>(r)];
        rank_alive_[static_cast<std::size_t>(r)] = a;
        alive += a;
      }
      alive_count_ = alive;
      if (changed && completed_ > 0) {
        ++membership_changes_;
        iter_resync_s_ =
            in_.policy.cycle_time_s +
            in_.cost->allreduce_time(
                static_cast<double>(in_.grad_events.size()) * in_.negotiation_bytes_per_tensor,
                mpi::AllreduceAlgo::RecursiveDoubling);
      }
    }
    // The counters model one rank's engine view (rank 0), the same parity
    // contract the representative mode keeps with RealEngine.
    counters_.on_framework_request(in_.grad_events.size());
    // Per-step reseed: the generator is a pure function of (seed, step), so
    // straggler patterns vary across iterations while a replay — cold or
    // from the eval cache — reproduces them exactly.
    util::Rng iter_rng(iteration_seed(completed_));
    for (std::size_t r = 0; r < rank_factor_.size(); ++r) {
      double f = in_.per_rank_jitter_cv > 0.0 ? iter_rng.normal(1.0, in_.per_rank_jitter_cv) : 1.0;
      f = std::clamp(f, 0.25, 4.0);
      if (!in_.faults.empty()) f *= slowdown_at(static_cast<int>(r), completed_);
      rank_factor_[r] = f;
      if (!rank_alive_[r]) continue;  // a crashed rank computes and submits nothing
      iter_max_factor_ = std::max(iter_max_factor_, f);
      const double scale = stretch_ * f;
      if (!in_.grad_events.empty())
        engine_.schedule_at(
            rank_event_time(r, in_.grad_events.front().time, scale),
            [this, r] { advance_rank(r); });
      engine_.schedule_at(rank_event_time(r, in_.bwd_time, scale),
                          [this] { rank_backward_done(); });
      // Virtual timestamps are computed, not waited for, so the rank's whole
      // compute block for this iteration can be emitted at schedule time.
      if (static_cast<int>(r) < traced_ranks())
        trace::emit_virtual_complete(
            "compute", "sim", trace::kSimulatedPid, kRankTidBase + static_cast<int>(r),
            iter_start_, rank_event_time(r, in_.bwd_time, scale) - iter_start_,
            std::move(trace::Args().add("iteration", completed_)).str());
    }
    if (tracing_) {
      // Mirror the representative mode's forward/backward scopes on the
      // compute track at the slowest rank's pace — that is the pace the
      // collective runs at, and it keeps the step's phase structure intact
      // for the profiler.
      const double smax = stretch_ * iter_max_factor_;
      const double fwd_start = iter_start_ + in_.iteration_fixed * smax;
      const double fwd_end = fwd_start + in_.fwd_time * smax;
      trace::emit_virtual_complete("forward", "sim", trace::kSimulatedPid, kComputeTid,
                                   fwd_start, fwd_end - fwd_start,
                                   std::move(trace::Args().add("iteration", completed_)).str());
      trace::emit_virtual_complete("backward", "sim", trace::kSimulatedPid, kComputeTid,
                                   fwd_end, in_.bwd_time * smax,
                                   std::move(trace::Args().add("iteration", completed_)).str());
    }
  }

  /// Absolute time rank `r` reaches `offset` seconds into its backward pass
  /// this iteration (compute before it scaled by the rank's factor, behind
  /// any membership-resync barrier).
  double rank_event_time(std::size_t /*r*/, double offset, double scale) const {
    return iter_start_ + iter_resync_s_ + (in_.iteration_fixed + in_.fwd_time + offset) * scale;
  }

  /// One gradient submission of rank `r`: bump the tensor's submit count;
  /// when the slowest *alive* rank arrives the tensor becomes globally
  /// negotiable (the Min-reduce of the real protocol, re-formed over the
  /// surviving membership set after a crash). Then chain the rank's next
  /// submission — one in-flight event per rank, so the pool's footprint
  /// stays O(ranks) while total events grow as ranks x tensors.
  void advance_rank(std::size_t r) {
    const std::size_t k = rank_cursor_[r]++;
    if (++submit_count_[k] == alive_count_)
      pending_.push_back(in_.grad_events[k].bytes);
    const std::size_t next = k + 1;
    if (next < in_.grad_events.size()) {
      const double scale = stretch_ * rank_factor_[r];
      engine_.schedule_at(
          std::max(engine_.now(), rank_event_time(r, in_.grad_events[next].time, scale)),
          [this, r] { advance_rank(r); });
    }
  }

  void rank_backward_done() {
    if (++bwd_ranks_done_ < static_cast<std::int64_t>(alive_count_)) return;
    bwd_done_ = true;
    bwd_end_time_ = engine_.now();
    maybe_finish_iteration();
  }

  // -------------------------------------------------------------------------

  /// Horovod Engine background loop. Every cycle issues the coordination op
  /// (RealEngine::process() negotiates unconditionally too, and the paper's
  /// engine-issued counter includes idle cycles — that is where the ~199x
  /// ops reduction of Fig. 19 comes from), so `engine_wakeups` counts every
  /// wake-up. But an idle wake-up with nothing outstanding must not *cost*
  /// anything: previously it charged a full per-tensor negotiation over all
  /// grad_events, slowing the wake cadence (next wake at max(cycle, busy))
  /// and delaying gradient pickup whenever negotiation time exceeded the
  /// cycle time. Busy wake-ups charge one negotiation allreduce, then one
  /// data allreduce per fused buffer.
  void wake() {
    counters_.on_engine_wakeup();
    if (pending_.empty()) {
      if (!done_) engine_.schedule_after(in_.policy.cycle_time_s, [this] { wake(); });
      return;
    }

    const double wake_start = engine_.now();
    double busy = in_.cost->allreduce_time(
        static_cast<double>(in_.grad_events.size()) * in_.negotiation_bytes_per_tensor,
        mpi::AllreduceAlgo::RecursiveDoubling);
    if (tracing_)
      trace::emit_virtual_complete(
          "negotiate", "sim", trace::kSimulatedPid, kEngineTid, wake_start, busy,
          std::move(trace::Args().add("tensors",
                                      static_cast<std::int64_t>(in_.grad_events.size())))
              .str());

    // Fuse the pending gradients with the same greedy rule RealEngine
    // executes (hvd/protocol.hpp), over arrival order instead of tensor ids.
    std::vector<double> sizes(pending_.begin(), pending_.end());
    std::vector<int> ready_ids(sizes.size());
    for (std::size_t k = 0; k < ready_ids.size(); ++k) ready_ids[k] = static_cast<int>(k);
    pending_.clear();
    for (const auto& group : plan_fusion(ready_ids, sizes, in_.policy.fusion_threshold_bytes)) {
      double buffer_bytes = 0.0;
      const int fused = static_cast<int>(group.size());
      for (int id : group) buffer_bytes += sizes[static_cast<std::size_t>(id)];
      const double ar_time = data_allreduce_time(buffer_bytes);
      if (tracing_)
        trace::emit_virtual_complete(
            "allreduce.data", "sim", trace::kSimulatedPid, kEngineTid, wake_start + busy,
            ar_time,
            std::move(trace::Args().add("tensors", fused).add("bytes", buffer_bytes)).str());
      busy += ar_time;
      counters_.on_data_allreduce(
          buffer_bytes, std::min(1.0, buffer_bytes / in_.policy.fusion_threshold_bytes));
      reduced_after_busy_ += fused;
    }
    counters_.on_cycle_time(busy);  // virtual seconds of this busy cycle
    comm_busy_total_ += busy;

    engine_.schedule_after(busy, [this, batch = reduced_after_busy_] {
      reduced_ += batch;
      maybe_finish_iteration();
    });
    reduced_after_busy_ = 0;

    if (!done_) {
      const double next = std::max(in_.policy.cycle_time_s, busy);
      engine_.schedule_after(next, [this] { wake(); });
    }
  }

  double data_allreduce_time(double bytes) const {
    return in_.hierarchical_allreduce ? in_.cost->staged_allreduce_time(bytes)
                                      : in_.cost->allreduce_time(bytes);
  }

  void maybe_finish_iteration() {
    if (!bwd_done_ || reduced_ < static_cast<std::int64_t>(in_.grad_events.size())) return;
    bwd_done_ = false;  // guard against double entry
    const double exposed = std::max(0.0, engine_.now() - bwd_end_time_);
    exposed_total_ += exposed;
    if (exposed > 0.0)
      emit_compute("exchange", bwd_end_time_, engine_.now());
    const double opt_start = engine_.now();
    const double opt_scale = per_rank_mode() ? stretch_ * iter_max_factor_ : stretch_;
    engine_.schedule_after(in_.optimizer_time * opt_scale, [this, opt_start] {
      emit_compute("optimizer", opt_start, engine_.now());
      emit_compute("step", step_start_, engine_.now());
      iteration_seconds_.push_back(engine_.now() - step_start_);
      iteration_alive_.push_back(per_rank_mode() ? alive_count_ : in_.sim_ranks);
      ++completed_;
      if (completed_ >= in_.iterations) {
        finish_time_ = engine_.now();
        done_ = true;  // stops the wake loop from rescheduling
      } else {
        start_iteration();
      }
    });
  }

  TimelineInput in_;
  sim::Engine engine_;
  EngineCounters counters_;
  std::deque<double> pending_;
  bool tracing_ = false;
  // 64-bit accumulators throughout: per-rank mode pushes tensor and event
  // counts into ranges where 32-bit intermediates overflow (16k ranks x
  // thousands of tensors x iterations).
  std::int64_t reduced_ = 0;
  std::int64_t reduced_after_busy_ = 0;
  bool bwd_done_ = false;
  bool done_ = false;
  int completed_ = 0;
  double bwd_end_time_ = 0.0;
  double exposed_total_ = 0.0;
  double comm_busy_total_ = 0.0;
  double step_start_ = 0.0;
  double finish_time_ = 0.0;
  double stretch_ = 1.0;
  // Per-rank arenas (per-rank mode only): sized once, reset per iteration.
  std::vector<double> rank_factor_;
  std::vector<std::uint32_t> rank_cursor_;
  std::vector<std::int32_t> submit_count_;
  std::vector<char> rank_alive_;
  int alive_count_ = 1;
  std::int64_t bwd_ranks_done_ = 0;
  double iter_start_ = 0.0;
  double iter_max_factor_ = 1.0;
  double iter_resync_s_ = 0.0;
  std::uint64_t membership_changes_ = 0;
  std::vector<double> iteration_seconds_;
  std::vector<int> iteration_alive_;
};

}  // namespace

TimelineResult simulate_training(const TimelineInput& input) {
  return TimelineSim(input).run();
}

}  // namespace dnnperf::hvd
