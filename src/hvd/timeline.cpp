#include "hvd/timeline.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "sim/engine.hpp"

namespace dnnperf::hvd {

namespace {

class TimelineSim {
 public:
  explicit TimelineSim(const TimelineInput& in) : in_(in) {
    in_.policy.validate();
    if (in_.iterations <= 0) throw std::invalid_argument("TimelineInput: iterations <= 0");
    if (in_.straggler_factor < 1.0)
      throw std::invalid_argument("TimelineInput: straggler_factor < 1");
    // The progress thread's per-wake-up CPU cost taxes compute when it has
    // no core of its own: a fraction wakeup/cycle of every core-second goes
    // to the engine instead of the workers.
    double tax = 0.0;
    if (in_.cost != nullptr) {
      if (in_.cores_per_rank < 1)
        throw std::invalid_argument("TimelineInput: cores_per_rank < 1");
      // Sharing a core steals one core's slice of the rank; a dedicated
      // progress core only causes cache/memory interference.
      const double share = in_.comm_thread_shares_core
                               ? 1.0 / in_.cores_per_rank
                               : in_.dedicated_tax_share;
      tax = std::min(share * in_.wakeup_cpu_s / in_.policy.cycle_time_s, 0.8);
    }
    stretch_ = in_.straggler_factor / (1.0 - tax);
  }

  TimelineResult run() {
    start_iteration();
    if (in_.cost != nullptr) engine_.schedule_after(in_.policy.cycle_time_s, [this] { wake(); });
    engine_.run();
    TimelineResult result;
    result.total_time = finish_time_;
    result.per_iteration = finish_time_ / in_.iterations;
    result.stats = stats_;
    result.comm_exposed_fraction =
        finish_time_ > 0.0 ? exposed_total_ / finish_time_ : 0.0;
    return result;
  }

 private:
  void start_iteration() {
    bwd_done_ = false;
    reduced_ = 0;
    engine_.schedule_after(in_.iteration_fixed + in_.fwd_time * stretch_,
                           [this] { forward_done(); });
  }

  void forward_done() {
    stats_.framework_requests += in_.grad_events.size();
    for (const auto& e : in_.grad_events) {
      engine_.schedule_after(e.time * stretch_, [this, bytes = e.bytes] {
        if (in_.cost == nullptr) {
          ++reduced_;  // no communication: gradients are immediately "reduced"
        } else {
          pending_.push_back(bytes);
        }
      });
    }
    engine_.schedule_after(in_.bwd_time * stretch_, [this] {
      bwd_done_ = true;
      bwd_end_time_ = engine_.now();
      maybe_finish_iteration();
    });
  }

  /// Horovod Engine background loop: one coordination allreduce per wake-up,
  /// then one data allreduce per fused buffer of negotiated tensors.
  void wake() {
    ++stats_.engine_wakeups;
    double busy = in_.cost->allreduce_time(
        static_cast<double>(in_.grad_events.size()) * in_.negotiation_bytes_per_tensor,
        mpi::AllreduceAlgo::RecursiveDoubling);

    while (!pending_.empty()) {
      double buffer_bytes = 0.0;
      int fused = 0;
      while (!pending_.empty() &&
             (fused == 0 || buffer_bytes + pending_.front() <= in_.policy.fusion_threshold_bytes)) {
        buffer_bytes += pending_.front();
        pending_.pop_front();
        ++fused;
      }
      busy += in_.cost->allreduce_time(buffer_bytes);
      ++stats_.data_allreduces;
      stats_.bytes_reduced += buffer_bytes;
      reduced_after_busy_ += fused;
    }

    engine_.schedule_after(busy, [this, batch = reduced_after_busy_] {
      reduced_ += batch;
      maybe_finish_iteration();
    });
    reduced_after_busy_ = 0;

    if (!done_) {
      const double next = std::max(in_.policy.cycle_time_s, busy);
      engine_.schedule_after(next, [this] { wake(); });
    }
  }

  void maybe_finish_iteration() {
    if (!bwd_done_ || reduced_ < static_cast<int>(in_.grad_events.size())) return;
    bwd_done_ = false;  // guard against double entry
    exposed_total_ += std::max(0.0, engine_.now() - bwd_end_time_);
    engine_.schedule_after(in_.optimizer_time * stretch_, [this] {
      ++completed_;
      if (completed_ >= in_.iterations) {
        finish_time_ = engine_.now();
        done_ = true;  // stops the wake loop from rescheduling
      } else {
        start_iteration();
      }
    });
  }

  TimelineInput in_;
  sim::Engine engine_;
  CommStats stats_;
  std::deque<double> pending_;
  int reduced_ = 0;
  int reduced_after_busy_ = 0;
  bool bwd_done_ = false;
  bool done_ = false;
  int completed_ = 0;
  double bwd_end_time_ = 0.0;
  double exposed_total_ = 0.0;
  double finish_time_ = 0.0;
  double stretch_ = 1.0;
};

}  // namespace

TimelineResult simulate_training(const TimelineInput& input) {
  return TimelineSim(input).run();
}

}  // namespace dnnperf::hvd
