// GPU execution model for the comparison experiments (paper Section VII).
//
// Per-op roofline over the board's peak fp32 throughput and memory bandwidth
// with a batch-dependent achievable fraction and per-kernel launch overhead;
// ops execute serially on one stream (how TF 1.12 / PyTorch 1.1 ran these
// models). PyTorch's cuDNN path carries a fitted speed edge over TF's.
#pragma once

#include "dnn/graph.hpp"
#include "exec/calibration.hpp"
#include "exec/config.hpp"
#include "exec/schedule.hpp"
#include "hw/gpu.hpp"

namespace dnnperf::exec {

class GpuExecModel {
 public:
  explicit GpuExecModel(hw::GpuModel gpu);

  const hw::GpuModel& gpu() const { return gpu_; }

  PassSchedule forward(const dnn::Graph& graph, Framework fw, int batch) const;
  PassSchedule backward(const dnn::Graph& graph, Framework fw, int batch) const;
  double optimizer_time(const dnn::Graph& graph) const;
  double iteration_fixed_overhead(Framework fw) const;

  /// Sustained device throughput for `fw` at `batch`, GFLOP/s (for tests).
  double sustained_gflops(Framework fw, int batch) const;

 private:
  PassSchedule run(const dnn::Graph& graph, Framework fw, int batch, bool backward) const;

  hw::GpuModel gpu_;
};

}  // namespace dnnperf::exec
