#include "exec/calibration.hpp"

namespace dnnperf::exec {

const char* to_string(Framework fw) {
  switch (fw) {
    case Framework::TensorFlow: return "TensorFlow";
    case Framework::PyTorch: return "PyTorch";
  }
  return "?";
}

namespace {
CpuCalibration g_cpu_calibration;
}  // namespace

const CpuCalibration& cpu_calibration() { return g_cpu_calibration; }

ScopedCpuCalibration::ScopedCpuCalibration(const CpuCalibration& calibration)
    : saved_(g_cpu_calibration) {
  g_cpu_calibration = calibration;
}

ScopedCpuCalibration::~ScopedCpuCalibration() { g_cpu_calibration = saved_; }

const GpuCalibration& gpu_calibration() {
  static const GpuCalibration calib;
  return calib;
}

CpuKernelPath kernel_path(Framework fw, const hw::CpuModel& cpu) {
  if (fw == Framework::PyTorch) return CpuKernelPath::PyTorch1;
  return cpu.vendor == hw::CpuVendor::Intel ? CpuKernelPath::MklDnn : CpuKernelPath::Generic;
}

}  // namespace dnnperf::exec
