#include "exec/cpu_model.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace dnnperf::exec {

namespace {

/// Core-equivalent capacity of a rank when `demanded` threads are runnable:
/// physical cores first, then SMT siblings at fractional throughput.
double capacity(const Placement& p, int demanded) {
  const double phys = p.cores;
  if (demanded <= p.cores) return demanded;
  const double smt_slots = phys * (p.threads_per_core - 1);
  const double extra = std::min<double>(demanded - p.cores, smt_slots);
  return phys + extra * p.smt_speedup_fraction;
}

}  // namespace

CpuExecModel::CpuExecModel(hw::CpuModel cpu) : cpu_(std::move(cpu)) { cpu_.validate(); }

double CpuExecModel::kernel_eff(dnn::OpKind kind, CpuKernelPath path) const {
  const auto& c = cpu_calibration();
  const bool gemm = kind == dnn::OpKind::MatMul;
  switch (path) {
    case CpuKernelPath::MklDnn: return gemm ? c.mkl_gemm_eff : c.mkl_conv_eff;
    case CpuKernelPath::Generic: return gemm ? c.generic_gemm_eff : c.generic_conv_eff;
    case CpuKernelPath::PyTorch1:
      if (cpu_.vendor == hw::CpuVendor::Amd)
        return gemm ? c.pytorch_gemm_eff_amd : c.pytorch_conv_eff_amd;
      return gemm ? c.pytorch_gemm_eff_intel : c.pytorch_conv_eff_intel;
  }
  throw std::logic_error("kernel_eff: bad path");
}

double CpuExecModel::dispatch_overhead(Framework fw) const {
  const auto& c = cpu_calibration();
  return fw == Framework::TensorFlow ? c.tf_dispatch_s : c.pytorch_dispatch_s;
}

double CpuExecModel::iteration_fixed_overhead(Framework fw) const {
  const auto& c = cpu_calibration();
  return fw == Framework::TensorFlow ? c.tf_iteration_fixed_s : c.pytorch_iteration_fixed_s;
}

double CpuExecModel::OpCostBreakdown::total() const {
  return std::max(flop_time_s, mem_time_s) + overhead_s;
}

CpuExecModel::OpCostBreakdown CpuExecModel::op_cost_breakdown(
    const dnn::Graph& graph, const dnn::Op& op, bool is_backward, double tau, int demanded,
    const ExecConfig& cfg, const Placement& placement, double bw_share) const {
  const auto& c = cpu_calibration();
  const CpuKernelPath path = kernel_path(cfg.framework, cpu_);
  const double batch = cfg.batch;

  OpCostBreakdown cost;
  const double flops = (is_backward ? op.bwd_flops : op.fwd_flops) * batch;
  if (flops > 0.0) {
    double t_use = tau;
    if (path == CpuKernelPath::PyTorch1)
      t_use = std::min(t_use, c.pytorch_max_effective_threads);
    t_use = std::min(t_use, batch * c.chunks_per_image);
    t_use = std::max(t_use, 1.0);
    const double amdahl = 1.0 / (c.serial_fraction + (1.0 - c.serial_fraction) / t_use);
    // The kernel only creates as many parallel chunks as the batch allows;
    // granularity losses scale with the chunks actually spawned.
    const double chunks = std::min<double>(demanded, batch * c.chunks_per_image);
    const double gran = flops / (flops + chunks * c.granularity_half_flops);
    const double per_core_flops =
        cpu_.clock_ghz * 1e9 * cpu_.flops_per_cycle_fp32 * kernel_eff(op.kind, path);
    cost.flop_time_s =
        flops / (amdahl * gran * per_core_flops) * (1.0 + placement.numa_time_penalty);
  }

  // Memory traffic: activations in/out (+gradients backward) plus weights.
  double act_bytes = op.output_bytes;
  for (int in : op.inputs) act_bytes += graph.op(in).output_bytes;
  act_bytes *= batch;
  if (is_backward) act_bytes *= c.bwd_bytes_factor;
  const double bytes = act_bytes + op.params * 4.0 * (is_backward ? 2.0 : 1.0);
  cost.mem_time_s = bytes / (placement.mem_bw_gbps * 1e9 * c.mem_eff * bw_share);

  cost.overhead_s = dispatch_overhead(cfg.framework) + c.sync_cost_s * demanded;

  if (cfg.horovod_thread && cfg.intra_threads >= placement.cores) {
    const double factor = 1.0 + c.horovod_contention;
    cost.flop_time_s *= factor;
    cost.mem_time_s *= factor;
    cost.overhead_s *= factor;
  }
  return cost;
}

double CpuExecModel::op_duration(const dnn::Graph& graph, const dnn::Op& op, bool is_backward,
                                 double tau, int demanded, const ExecConfig& cfg,
                                 const Placement& placement, double bw_share) const {
  return op_cost_breakdown(graph, op, is_backward, tau, demanded, cfg, placement, bw_share)
      .total();
}

PassSchedule CpuExecModel::simulate(const dnn::Graph& graph, bool is_backward,
                                    const ExecConfig& cfg, const Placement& placement) const {
  if (cfg.intra_threads <= 0 || cfg.inter_threads <= 0 || cfg.batch <= 0)
    throw std::invalid_argument("CpuExecModel: non-positive config value");

  const int n = graph.size();
  const auto consumers = graph.consumers();
  std::vector<Node> nodes(static_cast<std::size_t>(n));

  // Forward runs the DAG as built; backward runs the reversed DAG with the
  // same structure (an op's backward waits on its consumers' backwards).
  auto deps_of = [&](int id) -> std::size_t {
    return is_backward ? consumers[static_cast<std::size_t>(id)].size()
                       : graph.op(id).inputs.size();
  };
  auto children_of = [&](int id) -> std::vector<int> {
    return is_backward ? graph.op(id).inputs : consumers[static_cast<std::size_t>(id)];
  };

  std::deque<int> ready;
  for (int i = 0; i < n; ++i) {
    nodes[static_cast<std::size_t>(i)].deps = static_cast<int>(deps_of(i));
    if (nodes[static_cast<std::size_t>(i)].deps == 0) ready.push_back(i);
  }

  PassSchedule schedule;
  std::vector<int> running;
  std::vector<double> started(static_cast<std::size_t>(n), -1.0);
  double now = 0.0;
  int done = 0;

  while (done < n) {
    while (static_cast<int>(running.size()) < cfg.inter_threads && !ready.empty()) {
      running.push_back(ready.front());
      ready.pop_front();
    }
    if (running.empty()) throw std::logic_error("CpuExecModel: deadlock (graph not a DAG?)");

    const int m = static_cast<int>(running.size());
    for (int id : running) {
      auto& t0 = started[static_cast<std::size_t>(id)];
      if (t0 < 0.0) t0 = now;
    }
    const int demanded_total = m * cfg.intra_threads;
    const double tau = capacity(placement, demanded_total) / m;
    const double bw_share = 1.0 / m;

    // Advance to the next completion under processor sharing.
    double dt = -1.0;
    std::vector<double> durations(running.size());
    for (std::size_t i = 0; i < running.size(); ++i) {
      durations[i] = op_duration(graph, graph.op(running[i]), is_backward, tau,
                                 cfg.intra_threads, cfg, placement, bw_share);
      const double until_done = nodes[static_cast<std::size_t>(running[i])].remaining * durations[i];
      if (dt < 0.0 || until_done < dt) dt = until_done;
    }
    now += dt;

    std::vector<int> still_running;
    for (std::size_t i = 0; i < running.size(); ++i) {
      const int id = running[i];
      auto& node = nodes[static_cast<std::size_t>(id)];
      node.remaining -= dt / durations[i];
      if (node.remaining > 1e-12) {
        still_running.push_back(id);
        continue;
      }
      node.done = true;
      ++done;
      schedule.trace.push_back({id, started[static_cast<std::size_t>(id)], now});
      const auto& op = graph.op(id);
      if (is_backward && op.has_params())
        schedule.grad_events.push_back({now, op.params * 4.0});
      for (int child : children_of(id)) {
        auto& cn = nodes[static_cast<std::size_t>(child)];
        if (--cn.deps == 0) ready.push_back(child);
      }
    }
    running = std::move(still_running);
  }

  schedule.duration = now;
  return schedule;
}

PassSchedule CpuExecModel::forward(const dnn::Graph& graph, const ExecConfig& cfg,
                                   const Placement& placement) const {
  return simulate(graph, /*is_backward=*/false, cfg, placement);
}

PassSchedule CpuExecModel::backward(const dnn::Graph& graph, const ExecConfig& cfg,
                                    const Placement& placement) const {
  return simulate(graph, /*is_backward=*/true, cfg, placement);
}

double CpuExecModel::optimizer_time(const dnn::Graph& graph, const Placement& placement) const {
  const auto& c = cpu_calibration();
  // Read gradient + parameter, write parameter: 12 bytes per fp32 weight.
  const double bytes = graph.total_params() * 12.0;
  return bytes / (placement.mem_bw_gbps * 1e9 * c.mem_eff);
}

}  // namespace dnnperf::exec
