// Output of a simulated forward/backward pass: its duration and, for the
// backward pass, the times at which each layer's gradient tensor becomes
// ready (what the framework hands to Horovod, in production order).
#pragma once

#include <vector>

namespace dnnperf::exec {

struct GradEvent {
  double time = 0.0;   ///< seconds from the start of the pass
  double bytes = 0.0;  ///< fp32 gradient tensor size
};

/// One op's occupancy interval in the simulated pass (processor sharing:
/// intervals of concurrently scheduled ops overlap).
struct OpInterval {
  int op_id = -1;
  double start = 0.0;
  double finish = 0.0;
};

struct PassSchedule {
  double duration = 0.0;
  std::vector<GradEvent> grad_events;  ///< sorted by time (backward pass only)
  /// Per-op schedule trace in completion order (CPU passes only).
  std::vector<OpInterval> trace;
};

/// Mean number of ops in flight over the pass: sum of interval lengths over
/// the pass duration. ~1 for a serial chain; higher when inter-op
/// parallelism is actually exploited.
double average_concurrency(const PassSchedule& schedule);

}  // namespace dnnperf::exec
