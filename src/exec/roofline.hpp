// Roofline-style decomposition of a simulated pass: how much of an
// iteration's time is compute-bound, memory-bound, or overhead (dispatch +
// thread sync), per op kind. Explains *why* a configuration performs the
// way it does — e.g. BN/ReLU saturating a socket's bandwidth is what bends
// the SP scaling curves of Figs 1-4.
#pragma once

#include "dnn/graph.hpp"
#include "exec/cpu_model.hpp"
#include "util/table.hpp"

namespace dnnperf::exec {

struct RooflineBucket {
  double flop_bound_s = 0.0;  ///< time in ops limited by compute throughput
  double mem_bound_s = 0.0;   ///< time in ops limited by memory bandwidth
  double overhead_s = 0.0;    ///< dispatch + per-op thread sync
  double total() const { return flop_bound_s + mem_bound_s + overhead_s; }
};

struct RooflineReport {
  RooflineBucket forward;
  RooflineBucket backward;
  /// Per-op-kind totals (fwd+bwd), keyed in dnn::OpKind order.
  std::vector<std::pair<dnn::OpKind, RooflineBucket>> by_kind;
  /// Fraction of the node's peak FLOP rate sustained over the iteration.
  double flop_utilization = 0.0;
};

/// Decomposes one training iteration of `graph` under `cfg` on `placement`.
/// Ops are attributed serially (no inter-op overlap) — an upper bound on
/// each bucket that still ranks bottlenecks correctly.
RooflineReport roofline_report(const CpuExecModel& model, const dnn::Graph& graph,
                               const ExecConfig& cfg, const Placement& placement);

/// Renders per-kind buckets as a table (sorted by total time, descending).
util::TextTable roofline_table(const RooflineReport& report);

}  // namespace dnnperf::exec
