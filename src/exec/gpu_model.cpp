#include "exec/gpu_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace dnnperf::exec {

GpuExecModel::GpuExecModel(hw::GpuModel gpu) : gpu_(std::move(gpu)) { gpu_.validate(); }

double GpuExecModel::sustained_gflops(Framework fw, int batch) const {
  const auto& c = gpu_calibration();
  double frac = gpu_.achievable_fraction * batch / (batch + c.batch_half);
  if (fw == Framework::PyTorch) frac *= c.pytorch_speed_boost;
  return gpu_.peak_gflops() * frac;
}

double GpuExecModel::iteration_fixed_overhead(Framework) const {
  return gpu_calibration().iteration_fixed_s;
}

PassSchedule GpuExecModel::run(const dnn::Graph& graph, Framework fw, int batch,
                               bool backward) const {
  if (batch <= 0) throw std::invalid_argument("GpuExecModel: batch <= 0");
  const auto& c = gpu_calibration();
  const double rate = sustained_gflops(fw, batch) * 1e9;
  const double launch =
      gpu_.launch_overhead_s + (fw == Framework::PyTorch ? c.pytorch_dispatch_s : c.tf_dispatch_s);

  PassSchedule schedule;
  double now = 0.0;
  auto time_op = [&](const dnn::Op& op) {
    const double flops = (backward ? op.bwd_flops : op.fwd_flops) * batch;
    double bytes = op.output_bytes * batch;
    for (int in : op.inputs) bytes += graph.op(in).output_bytes * batch;
    if (backward) bytes *= 2.0;
    bytes += op.params * 4.0;
    const double mem_time = bytes / (gpu_.mem_bw_gbps * 1e9 * 0.75);
    return std::max(flops / rate, mem_time) + launch;
  };

  if (!backward) {
    for (const auto& op : graph.ops()) now += time_op(op);
  } else {
    const auto& ops = graph.ops();
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
      now += time_op(*it);
      if (it->has_params()) schedule.grad_events.push_back({now, it->params * 4.0});
    }
  }
  schedule.duration = now;
  return schedule;
}

PassSchedule GpuExecModel::forward(const dnn::Graph& graph, Framework fw, int batch) const {
  return run(graph, fw, batch, false);
}

PassSchedule GpuExecModel::backward(const dnn::Graph& graph, Framework fw, int batch) const {
  return run(graph, fw, batch, true);
}

double GpuExecModel::optimizer_time(const dnn::Graph& graph) const {
  return graph.total_params() * 12.0 / (gpu_.mem_bw_gbps * 1e9 * 0.75);
}

}  // namespace dnnperf::exec
