// Process placement on a node: how many cores a rank owns, how many NUMA
// domains its threads span, and the memory bandwidth it can actually reach.
//
// This is where the SP-vs-MP story lives. A single process whose thread pool
// spans sockets keeps its pages on the first socket (first-touch), so remote
// threads see a fraction of local bandwidth; processes pinned inside one
// NUMA domain get full local bandwidth — which is why multi-process beats
// single-process on every platform in the paper.
#pragma once

#include "exec/calibration.hpp"
#include "hw/cpu.hpp"

namespace dnnperf::exec {

struct Placement {
  int cores = 1;              ///< physical cores owned by this rank
  int numa_domains_spanned = 1;
  int threads_per_core = 1;   ///< SMT depth of those cores
  double smt_speedup_fraction = 0.0;
  double mem_bw_gbps = 50.0;  ///< bandwidth reachable from this rank's threads
  double numa_time_penalty = 0.0;  ///< extra fractional time on compute-bound work
};

/// Placement for one of `ppn` ranks pinned block-wise on `cpu`, where the
/// rank runs up to `threads` worker threads. `ppn` must be >= 1; threads
/// beyond the rank's share of cores are allowed (they share cores / SMT).
Placement place_rank(const hw::CpuModel& cpu, int ppn, int threads);

}  // namespace dnnperf::exec
