// CPU execution model: times one forward or backward pass of a Graph on a
// placed rank, using a processor-sharing list scheduler over the op DAG.
//
// Mechanisms (each traceable to a paper observation):
//  * roofline per op: max(flop time, memory time) + dispatch overhead;
//  * intra-op thread scaling: Amdahl + granularity (FLOPs per thread) +
//    batch chunk cap + per-thread sync cost  -> Fig 1-4 knees;
//  * NUMA: remote-bandwidth and remote-compute penalties from Placement
//    -> the SP vs MP gap (Fig 6, 10);
//  * inter-op scheduling: up to `inter_threads` ops run concurrently,
//    sharing core capacity (SMT siblings add fractional capacity)
//    -> inter-op=2 helping on hyper-threaded Skylake-3, Inception > ResNet;
//  * Horovod progress-thread contention when no core is spare
//    -> the intra-op = cores-1 rule;
//  * framework profiles: MKL vs generic vs PyTorch-1.1 kernel efficiency
//    and dispatch overhead -> TF/PT and Intel/AMD gaps.
#pragma once

#include "dnn/graph.hpp"
#include "exec/calibration.hpp"
#include "exec/config.hpp"
#include "exec/placement.hpp"
#include "exec/schedule.hpp"
#include "hw/cpu.hpp"

namespace dnnperf::exec {

class CpuExecModel {
 public:
  explicit CpuExecModel(hw::CpuModel cpu);

  const hw::CpuModel& cpu() const { return cpu_; }

  /// Times the forward pass of one iteration (per-rank batch = cfg.batch).
  PassSchedule forward(const dnn::Graph& graph, const ExecConfig& cfg,
                       const Placement& placement) const;

  /// Times the backward pass; grad_events records when each parameterized
  /// layer's gradient is produced (reverse topological order).
  PassSchedule backward(const dnn::Graph& graph, const ExecConfig& cfg,
                        const Placement& placement) const;

  /// SGD parameter update (memory bound: read grad+param, write param).
  double optimizer_time(const dnn::Graph& graph, const Placement& placement) const;

  /// Fixed per-iteration framework overhead (session/feed/python loop).
  double iteration_fixed_overhead(Framework fw) const;

  /// Cost components of a single op (roofline decomposition).
  struct OpCostBreakdown {
    double flop_time_s = 0.0;
    double mem_time_s = 0.0;
    double overhead_s = 0.0;  ///< dispatch + per-thread sync (+ contention)
    double total() const;
  };

  /// Component costs of one op at `tau` effective thread-equivalents with
  /// `demanded` requested threads.
  OpCostBreakdown op_cost_breakdown(const dnn::Graph& graph, const dnn::Op& op,
                                    bool is_backward, double tau, int demanded,
                                    const ExecConfig& cfg, const Placement& placement,
                                    double bw_share) const;

  /// Duration of a single op (max(flop, mem) + overheads; exposed for tests).
  double op_duration(const dnn::Graph& graph, const dnn::Op& op, bool is_backward,
                     double tau, int demanded, const ExecConfig& cfg,
                     const Placement& placement, double bw_share) const;

 private:
  struct Node {
    double remaining = 1.0;  ///< fraction of the op left to run
    int deps = 0;
    bool done = false;
  };

  double kernel_eff(dnn::OpKind kind, CpuKernelPath path) const;
  double dispatch_overhead(Framework fw) const;

  PassSchedule simulate(const dnn::Graph& graph, bool is_backward, const ExecConfig& cfg,
                        const Placement& placement) const;

  hw::CpuModel cpu_;
};

}  // namespace dnnperf::exec
