// Calibration constants for the execution model.
//
// Every constant is either a hardware datum (documented at its definition in
// src/hw) or a value fitted to an anchor the paper reports; the anchor is
// cited next to each fitted constant. EXPERIMENTS.md records how well the
// resulting figures match the paper.
#pragma once

#include "exec/config.hpp"
#include "hw/cpu.hpp"

namespace dnnperf::exec {

struct CpuCalibration {
  // ---- kernel efficiency: fraction of the core's SIMD peak sustained -----
  // These fractions are grounded by refdnn's own measured kernels (DESIGN.md
  // §6.1): the packed AVX2 GEMM sustains ~0.9 of nominal single-core peak
  // (mkl_gemm_eff is achievable) and the naive loops ~0.25 (generic-tier).
  // Anchor: 5001 img/s for ResNet-152 on 128 Skylake-3 nodes => ~39 img/s
  // per node => ~42% of node fp32 peak end to end (Section VI-D).
  double mkl_conv_eff = 0.78;
  double mkl_gemm_eff = 0.85;
  // Anchor: Skylake-3 is 4.5x faster than EPYC under TF because the AMD
  // system runs the generic (Eigen) path (Section VI-E).
  double generic_conv_eff = 0.38;
  double generic_gemm_eff = 0.44;
  // PyTorch 1.1's CPU convs (im2col + MKL GEMM + THNN glue) exploit far
  // less of an AVX-512 machine's peak than of EPYC's narrower peak.
  // Anchors: PT-SP ResNet-50 = 2.1 img/s on Skylake-3 (Section VI-D);
  // Skylake-3 = 1.5x EPYC for PT ResNet-101; PT = 1.2x TF on 8 EPYC nodes.
  double pytorch_conv_eff_intel = 0.29;
  double pytorch_conv_eff_amd = 0.49;
  double pytorch_gemm_eff_intel = 0.35;
  double pytorch_gemm_eff_amd = 0.55;

  // ---- per-op dispatch overhead, seconds ---------------------------------
  double tf_dispatch_s = 12e-6;       // graph-mode executor per op
  double pytorch_dispatch_s = 70e-6;  // eager Python dispatch per op

  // ---- per-iteration fixed overhead, seconds (session setup, feed, hooks)
  double tf_iteration_fixed_s = 3e-3;
  double pytorch_iteration_fixed_s = 8e-3;

  // ---- intra-op thread scaling --------------------------------------------
  // Amdahl serial fraction of an op's work (im2col setup, tails).
  double serial_fraction = 0.015;
  // Per-op thread fork/join + barrier cost, seconds per demanded thread.
  double sync_cost_s = 0.8e-6;
  // Granularity: parallel efficiency factor W/(W + t*g0) where W is the
  // op's FLOPs and t the demanded threads. Small per-rank batches starve
  // wide thread pools — the BS<->threads interplay of Fig 1.
  double granularity_half_flops = 5e7;
  // MKL-DNN mines at most ~this many independent chunks per image
  // (minibatch x channel blocking); threads beyond batch*chunks idle.
  double chunks_per_image = 2.0;
  // PyTorch 1.1's intra-op pool stops helping early regardless of cores.
  // Anchor: PT-SP ResNet-50 = 2.1 img/s on a 48-core Skylake-3.
  double pytorch_max_effective_threads = 2.8;

  // ---- NUMA ----------------------------------------------------------------
  // A single process's pages live mostly on its first socket (first touch);
  // threads on remote sockets see this share of local bandwidth.
  // Anchor: SP scaling knee at 14 of 28 cores on Skylake-1 (Fig 1a) and the
  // MP-over-SP gains of Fig 6 (up to 1.35x / 1.47x).
  double remote_bw_share = 0.20;
  // Extra time on compute-bound work when a process spans NUMA domains.
  double remote_flop_penalty = 0.30;

  // ---- Horovod background thread -------------------------------------------
  // Slowdown when intra-op threads occupy every core so the Horovod progress
  // thread preempts compute. Anchor: "intra-op = cores/process - 1" guidance
  // (Section IX).
  double horovod_contention = 0.10;

  // ---- memory-bound ops ------------------------------------------------------
  // Achievable fraction of peak DRAM bandwidth for framework memory-bound ops.
  double mem_eff = 0.75;
  // Backward touches activations + gradients: bytes multiplier vs forward.
  double bwd_bytes_factor = 2.0;
};

struct GpuCalibration {
  // Achievable fraction scales with batch: f * BS / (BS + batch_half).
  double batch_half = 6.0;
  // PyTorch's cuDNN path was consistently faster than TF's on GPUs
  // (1.12x on 4 GPUs for ResNet-152, Section VII).
  double pytorch_speed_boost = 1.22;
  double pytorch_dispatch_s = 18e-6;
  double tf_dispatch_s = 8e-6;
  // Per-iteration fixed host-side overhead.
  double iteration_fixed_s = 2e-3;
};

const CpuCalibration& cpu_calibration();
const GpuCalibration& gpu_calibration();

/// Ablation/testing hook: temporarily replaces the global CPU calibration
/// for the lifetime of this object (RAII restore). Not thread-safe: intended
/// for single-threaded ablation benches and tests.
class ScopedCpuCalibration {
 public:
  explicit ScopedCpuCalibration(const CpuCalibration& calibration);
  ~ScopedCpuCalibration();
  ScopedCpuCalibration(const ScopedCpuCalibration&) = delete;
  ScopedCpuCalibration& operator=(const ScopedCpuCalibration&) = delete;

 private:
  CpuCalibration saved_;
};

/// Kernel path selected by a framework build on a CPU (Section IV-B:
/// Intel-optimized TF 1.12 on Intel, stock TF on AMD, PyTorch 1.1).
CpuKernelPath kernel_path(Framework fw, const hw::CpuModel& cpu);

}  // namespace dnnperf::exec
