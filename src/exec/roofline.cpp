#include "exec/roofline.hpp"

#include <algorithm>
#include <map>

namespace dnnperf::exec {

RooflineReport roofline_report(const CpuExecModel& model, const dnn::Graph& graph,
                               const ExecConfig& cfg, const Placement& placement) {
  RooflineReport report;
  std::map<dnn::OpKind, RooflineBucket> kinds;
  double total_flops = 0.0;

  // Serial attribution: each op runs alone at the full intra-op width.
  const double tau = std::min<double>(cfg.intra_threads, placement.cores);
  for (const bool backward : {false, true}) {
    RooflineBucket& pass = backward ? report.backward : report.forward;
    for (const auto& op : graph.ops()) {
      const auto c =
          model.op_cost_breakdown(graph, op, backward, tau, cfg.intra_threads, cfg, placement,
                                  /*bw_share=*/1.0);
      RooflineBucket& kind = kinds[op.kind];
      if (c.flop_time_s >= c.mem_time_s) {
        pass.flop_bound_s += c.flop_time_s;
        kind.flop_bound_s += c.flop_time_s;
      } else {
        pass.mem_bound_s += c.mem_time_s;
        kind.mem_bound_s += c.mem_time_s;
      }
      pass.overhead_s += c.overhead_s;
      kind.overhead_s += c.overhead_s;
      total_flops += (backward ? op.bwd_flops : op.fwd_flops) * cfg.batch;
    }
  }

  report.by_kind.assign(kinds.begin(), kinds.end());
  std::sort(report.by_kind.begin(), report.by_kind.end(),
            [](const auto& a, const auto& b) { return a.second.total() > b.second.total(); });

  const double total_time = report.forward.total() + report.backward.total();
  if (total_time > 0.0)
    report.flop_utilization =
        total_flops / total_time / (model.cpu().peak_gflops() * 1e9 * placement.cores /
                                    model.cpu().total_cores());
  return report;
}

util::TextTable roofline_table(const RooflineReport& report) {
  util::TextTable table({"op kind", "flop-bound (s)", "mem-bound (s)", "overhead (s)",
                         "share"});
  double total = 0.0;
  for (const auto& [kind, bucket] : report.by_kind) total += bucket.total();
  for (const auto& [kind, bucket] : report.by_kind) {
    table.add_row({dnn::to_string(kind), util::TextTable::num(bucket.flop_bound_s, 4),
                   util::TextTable::num(bucket.mem_bound_s, 4),
                   util::TextTable::num(bucket.overhead_s, 4),
                   util::TextTable::num(total > 0 ? 100.0 * bucket.total() / total : 0.0, 1) +
                       "%"});
  }
  return table;
}

}  // namespace dnnperf::exec
