#include "exec/schedule.hpp"

namespace dnnperf::exec {

double average_concurrency(const PassSchedule& schedule) {
  if (schedule.duration <= 0.0 || schedule.trace.empty()) return 0.0;
  double busy = 0.0;
  for (const auto& iv : schedule.trace) busy += iv.finish - iv.start;
  return busy / schedule.duration;
}

}  // namespace dnnperf::exec
