#include "exec/placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace dnnperf::exec {

Placement place_rank(const hw::CpuModel& cpu, int ppn, int threads) {
  if (ppn <= 0) throw std::invalid_argument("place_rank: ppn <= 0");
  if (threads <= 0) throw std::invalid_argument("place_rank: threads <= 0");
  const auto& calib = cpu_calibration();

  Placement p;
  p.cores = std::max(1, cpu.total_cores() / ppn);
  p.threads_per_core = cpu.threads_per_core;
  p.smt_speedup_fraction = cpu.smt_speedup_fraction;

  const int cpd = cpu.cores_per_numa_domain();
  const double domain_bw = cpu.mem_bw_gbps() / cpu.numa_domains();

  // Threads are pinned compactly starting at the rank's first core; the
  // number of domains they actually touch is bounded both by the rank's
  // core allotment and by how many cores the threads occupy.
  const int cores_touched = std::min(p.cores, threads);
  const int spans = std::min((cores_touched + cpd - 1) / cpd, cpu.numa_domains());
  p.numa_domains_spanned = std::max(1, spans);

  if (p.cores <= cpd) {
    // Rank fits in one NUMA domain: full local bandwidth for its share.
    const double share = static_cast<double>(p.cores) / cpd;
    p.mem_bw_gbps = domain_bw * std::min(1.0, share * 1.25);  // small-slice ranks
                                                              // still burst a bit
    p.numa_time_penalty = 0.0;
  } else {
    // Rank spans domains: pages concentrate on the first one (first touch);
    // remote domains contribute only a fraction of their bandwidth.
    p.mem_bw_gbps = domain_bw * (1.0 + (p.numa_domains_spanned - 1) * calib.remote_bw_share);
    p.numa_time_penalty =
        p.numa_domains_spanned > 1
            ? calib.remote_flop_penalty *
                  (static_cast<double>(p.numa_domains_spanned - 1) / p.numa_domains_spanned)
            : 0.0;
  }
  return p;
}

}  // namespace dnnperf::exec
