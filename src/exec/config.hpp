// Execution configuration: which framework profile runs the graph, with how
// many intra-op/inter-op threads, at what batch size.
//
// Framework x device selects a "profile": TensorFlow on Intel CPUs uses the
// MKL-DNN path, TensorFlow on AMD falls back to the generic (Eigen) path —
// the paper found Intel-optimized builds give AMD nothing (Section VI-E) —
// and PyTorch 1.1's CPU path has eager dispatch overhead and weak intra-op
// scaling, which is why its best configuration is one process per core.
#pragma once

namespace dnnperf::exec {

enum class Framework { TensorFlow, PyTorch };

const char* to_string(Framework fw);

/// CPU kernel code path actually used by the framework build on a platform.
enum class CpuKernelPath {
  MklDnn,    ///< Intel-optimized TF/PyTorch on Intel CPUs
  Generic,   ///< stock TF (Eigen) — what AMD EPYC ends up running
  PyTorch1,  ///< PyTorch 1.1 TH/THNN CPU path
};

struct ExecConfig {
  Framework framework = Framework::TensorFlow;
  int intra_threads = 1;  ///< threads per op (tf --num_intra_threads)
  int inter_threads = 1;  ///< concurrently scheduled ops (tf --num_inter_threads)
  int batch = 64;         ///< per-replica batch size
  /// A Horovod background thread is polling in this process (MP training).
  bool horovod_thread = false;
};

}  // namespace dnnperf::exec
