#include "sim/resource.hpp"

#include <stdexcept>
#include <utility>

namespace dnnperf::sim {

Resource::Resource(Engine& engine, int capacity) : engine_(engine), capacity_(capacity) {
  if (capacity <= 0) throw std::invalid_argument("Resource: capacity <= 0");
}

void Resource::acquire(std::function<void()> on_acquired) {
  if (in_use_ < capacity_) {
    ++in_use_;
    // Run through the engine so acquisition is always asynchronous and
    // callers cannot observe re-entrant grant ordering.
    engine_.schedule_after(0.0, std::move(on_acquired));
    return;
  }
  waiters_.push_back(std::move(on_acquired));
}

void Resource::release() {
  if (in_use_ <= 0) throw std::logic_error("Resource::release without acquire");
  if (!waiters_.empty()) {
    auto next = std::move(waiters_.front());
    waiters_.pop_front();
    engine_.schedule_after(0.0, std::move(next));
    return;  // unit transfers directly to the waiter
  }
  --in_use_;
}

}  // namespace dnnperf::sim
