// FIFO resource with integer capacity for discrete-event models
// (e.g. "a node's cores" or "one NIC"): acquire runs the continuation when
// a unit is free; release hands the unit to the next waiter at the current
// simulated time.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/engine.hpp"

namespace dnnperf::sim {

class Resource {
 public:
  Resource(Engine& engine, int capacity);

  /// Requests one unit; `on_acquired` runs (possibly immediately) once
  /// granted. FIFO order among waiters.
  void acquire(std::function<void()> on_acquired);

  /// Returns one unit; grants the head waiter, if any, at the current time.
  void release();

  int capacity() const { return capacity_; }
  int in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  Engine& engine_;
  int capacity_;
  int in_use_ = 0;
  std::deque<std::function<void()>> waiters_;
};

}  // namespace dnnperf::sim
