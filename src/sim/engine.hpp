// Discrete-event simulation engine.
//
// A single-threaded event calendar: callbacks scheduled at simulated times,
// executed in (time, insertion-order) order. The Horovod engine simulator
// (src/hvd/sim_engine) runs on top of this, as do the ablation benches.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace dnnperf::sim {

using EventId = std::uint64_t;

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time in seconds.
  double now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(double t, Callback cb);

  /// Schedules `cb` `dt` seconds from now (dt >= 0).
  EventId schedule_after(double dt, Callback cb);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs until the calendar is empty.
  void run();

  /// Runs events with time <= t, then sets now() = t.
  void run_until(double t);

  /// Executes exactly one event if any is pending; returns false when empty.
  bool step();

  /// Routes the calendar onto a virtual-time trace track: an
  /// events_processed counter is emitted at the simulated timestamp every
  /// kTraceCounterStride events (when util::trace is enabled), sketching the
  /// calendar's activity without flooding the trace. pid 0 disables.
  void set_trace_track(int pid, int tid) {
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

  static constexpr std::uint64_t kTraceCounterStride = 256;

  bool empty() const { return queue_.size() == cancelled_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    double time;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  double now_ = 0.0;
  EventId next_id_ = 1;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace dnnperf::sim
