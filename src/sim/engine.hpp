// Discrete-event simulation engine.
//
// A single-threaded event calendar: callbacks scheduled at simulated times,
// executed in (time, insertion-order) order. The Horovod engine simulator
// (src/hvd/timeline) runs on top of this, as do the ablation benches.
//
// Events live in a slab pool: a slot array with an embedded free list plus a
// binary heap of (time, seq, slot) index entries. Scheduling reuses a freed
// slot instead of allocating, cancellation flips a flag in the slot (no
// side-table), and generation counters keep stale EventIds harmless — the
// layout that lets a 4k-rank timeline push millions of events without
// touching the allocator once the pool is warm.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace dnnperf::sim {

/// Handle to a scheduled event: slot index in the low 32 bits, the slot's
/// generation at scheduling time in the high 32. A reused slot bumps its
/// generation, so ids of executed/cancelled events never alias live ones.
using EventId = std::uint64_t;

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time in seconds.
  double now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(double t, Callback cb);

  /// Schedules `cb` `dt` seconds from now (dt >= 0).
  EventId schedule_after(double dt, Callback cb);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs until the calendar is empty.
  void run();

  /// Runs events with time <= t, then sets now() = t.
  void run_until(double t);

  /// Executes exactly one event if any is pending; returns false when empty.
  bool step();

  /// Routes the calendar onto a virtual-time trace track: an
  /// events_processed counter is emitted at the simulated timestamp every
  /// kTraceCounterStride events (when util::trace is enabled), sketching the
  /// calendar's activity without flooding the trace. pid 0 disables.
  void set_trace_track(int pid, int tid) {
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

  static constexpr std::uint64_t kTraceCounterStride = 256;

  bool empty() const { return pending_live_ == 0; }
  std::uint64_t events_processed() const { return processed_; }

  /// Total events ever scheduled (== pool allocations + pool reuses).
  std::uint64_t events_scheduled() const { return scheduled_; }
  /// High-water slot count: the pool's resident footprint. Scheduling only
  /// grows the slab when every slot is in flight simultaneously.
  std::size_t pool_slots() const { return slots_.size(); }

 private:
  struct Slot {
    double time = 0.0;
    std::uint64_t seq = 0;       ///< FIFO tiebreak among simultaneous events
    std::uint32_t gen = 1;       ///< bumped on free; validates EventIds
    bool live = false;           ///< scheduled and not yet executed/freed
    bool cancelled = false;
    std::uint32_t next_free = kNoSlot;
    Callback cb;
  };
  struct HeapEntry {
    double time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Min-heap on (time, seq) via std::push_heap's max-heap with an inverted
  /// comparison.
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  /// Pops cancelled events off the heap top, freeing their slots.
  void drop_cancelled_top();

  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t pending_live_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::vector<HeapEntry> heap_;
};

}  // namespace dnnperf::sim
