#include "sim/engine.hpp"

#include <stdexcept>
#include <utility>

#include "util/trace.hpp"

namespace dnnperf::sim {

EventId Engine::schedule_at(double t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(cb)});
  return id;
}

EventId Engine::schedule_after(double dt, Callback cb) {
  if (dt < 0.0) throw std::invalid_argument("Engine::schedule_after: negative delay");
  return schedule_at(now_ + dt, std::move(cb));
}

void Engine::cancel(EventId id) { cancelled_.insert(id); }

bool Engine::step() {
  while (!queue_.empty()) {
    // priority_queue has no non-const pop-and-move; the callback is a small
    // std::function so the copy is acceptable for simulation workloads.
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++processed_;
    // Sparse by design: report_all runs hundreds of simulations through one
    // trace buffer, so per-event emission would swamp the document.
    if (trace_pid_ != 0 && processed_ % kTraceCounterStride == 0 && util::trace::enabled())
      util::trace::emit_virtual_counter("events_processed", trace_pid_, now_,
                                        static_cast<double>(processed_));
    ev.cb();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(double t) {
  if (t < now_) throw std::invalid_argument("Engine::run_until: time in the past");
  while (!queue_.empty() && queue_.top().time <= t) {
    if (!step()) break;
  }
  now_ = t;
}

}  // namespace dnnperf::sim
