#include "sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/trace.hpp"

namespace dnnperf::sim {

std::uint32_t Engine::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  if (slots_.size() >= static_cast<std::size_t>(kNoSlot))
    throw std::length_error("Engine: event pool exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = nullptr;  // drop captures eagerly; the slot may sit free for a while
  s.live = false;
  s.cancelled = false;
  ++s.gen;  // invalidate outstanding EventIds pointing here
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId Engine::schedule_at(double t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.time = t;
  s.seq = next_seq_++;
  s.live = true;
  s.cancelled = false;
  s.cb = std::move(cb);
  heap_.push_back(HeapEntry{t, s.seq, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++scheduled_;
  ++pending_live_;
  return (static_cast<EventId>(s.gen) << 32) | slot;
}

EventId Engine::schedule_after(double dt, Callback cb) {
  if (dt < 0.0) throw std::invalid_argument("Engine::schedule_after: negative delay");
  return schedule_at(now_ + dt, std::move(cb));
}

void Engine::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.gen != gen || !s.live || s.cancelled) return;  // already ran or cancelled
  s.cancelled = true;
  --pending_live_;
}

void Engine::drop_cancelled_top() {
  while (!heap_.empty() && slots_[heap_.front().slot].cancelled) {
    const std::uint32_t slot = heap_.front().slot;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    release_slot(slot);
  }
}

bool Engine::step() {
  drop_cancelled_top();
  if (heap_.empty()) return false;
  const std::uint32_t slot = heap_.front().slot;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  now_ = slots_[slot].time;
  Callback cb = std::move(slots_[slot].cb);
  --pending_live_;
  release_slot(slot);  // before the callback: it may schedule into this slot
  ++processed_;
  // Sparse by design: report_all runs hundreds of simulations through one
  // trace buffer, so per-event emission would swamp the document.
  if (trace_pid_ != 0 && processed_ % kTraceCounterStride == 0 && util::trace::enabled())
    util::trace::emit_virtual_counter("events_processed", trace_pid_, now_,
                                      static_cast<double>(processed_));
  cb();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(double t) {
  if (t < now_) throw std::invalid_argument("Engine::run_until: time in the past");
  for (;;) {
    drop_cancelled_top();
    if (heap_.empty() || heap_.front().time > t) break;
    step();
  }
  now_ = t;
}

}  // namespace dnnperf::sim
