#include "analysis/analyze.hpp"

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "analysis/graph_passes.hpp"
#include "analysis/hw_passes.hpp"
#include "analysis/metrics_passes.hpp"
#include "analysis/net_passes.hpp"
#include "analysis/policy_passes.hpp"
#include "analysis/verify/model_checker.hpp"
#include "analysis/verify/trace_verifier.hpp"
#include "net/link.hpp"
#include "opt/passes.hpp"

namespace dnnperf::analysis {

util::Diagnostics lint_graph(const dnn::Graph& graph) {
  util::Diagnostics diags;
  run_graph_passes(graph, diags);
  return diags;
}

util::Diagnostics lint_metrics(const util::metrics::Snapshot& snap, const std::string& object) {
  util::Diagnostics diags;
  run_metrics_passes(snap, object, diags);
  return diags;
}

util::Diagnostics lint_cpu(const hw::CpuModel& cpu) {
  util::Diagnostics diags;
  run_cpu_passes(cpu, diags);
  return diags;
}

util::Diagnostics lint_cluster(const hw::ClusterModel& cluster) {
  util::Diagnostics diags;
  run_cluster_passes(cluster, diags);
  return diags;
}

util::Diagnostics lint_topology(const net::Topology& topo, const std::string& object) {
  util::Diagnostics diags;
  run_topology_passes(topo, object, diags);
  return diags;
}

util::Diagnostics lint_policy(const hvd::FusionPolicy& policy, const dnn::Graph* graph,
                              const net::LinkParams* inter_node, const std::string& object) {
  util::Diagnostics diags;
  run_policy_passes(policy, graph, inter_node, object, diags);
  return diags;
}

util::Diagnostics verify_engine(const hvd::ProtocolSpec& spec) {
  return check_protocol(spec).diags;
}

util::Diagnostics verify_trace(const std::string& json_text, const std::string& object) {
  return verify_trace_text(json_text, object);
}

util::Diagnostics verify_config_engine(const train::TrainConfig& cfg) {
  util::Diagnostics diags;
  const std::string object = config_label(cfg);

  // Small-scope bounds: the fusion/negotiation interplay is driven by tensor
  // sizes relative to the threshold, so sample the extremes — the two
  // largest and two smallest gradient tensors — and check up to 3 ranks.
  std::vector<double> grad_bytes = dnn::build_model(cfg.model).gradient_tensor_bytes();
  if (grad_bytes.empty()) return diags;
  std::sort(grad_bytes.begin(), grad_bytes.end(), std::greater<>());
  std::vector<std::size_t> elements;
  const std::size_t n = grad_bytes.size();
  for (std::size_t i : n <= 4 ? std::vector<std::size_t>{0, 1, 2, 3}
                              : std::vector<std::size_t>{0, 1, n - 2, n - 1})
    if (i < n) elements.push_back(static_cast<std::size_t>(grad_bytes[i] / sizeof(float)));

  const int world = cfg.nodes * cfg.ppn;
  const int ranks = std::clamp(world, 2, 3);
  const auto capacity = static_cast<std::size_t>(
      std::max(1.0, cfg.policy.fusion_threshold_bytes / sizeof(float)));

  // Three canonical submission-order assignments: in program order on every
  // rank, rotated per rank, and reversed on odd ranks — the permuted
  // patterns real backward passes produce when layer timings differ.
  for (int pattern = 0; pattern < 3; ++pattern) {
    hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(ranks, elements, capacity,
                                                        /*rotate_by_rank=*/pattern == 1);
    if (pattern == 2)
      for (int r = 1; r < ranks; r += 2)
        std::reverse(spec.submit_order[static_cast<std::size_t>(r)].begin(),
                     spec.submit_order[static_cast<std::size_t>(r)].end());
    static const char* kPatternNames[] = {"in-order", "rotated", "odd-reversed"};
    spec.name = object + " [" + kPatternNames[pattern] + " submission]";
    diags.merge(check_protocol(spec).diags);

    // Hierarchical configs negotiate in two levels; re-check each pattern
    // under the staged variant with one group per node (up to 3 nodes x 2
    // ranks, the checker's small-scope bound for grouped specs).
    if (cfg.hierarchy != train::CommHierarchy::Flat && cfg.nodes > 1 && cfg.ppn > 1) {
      hvd::ProtocolSpec staged =
          hvd::ProtocolSpec::uniform(2 * std::clamp(cfg.nodes, 2, 3), elements, capacity,
                                     /*rotate_by_rank=*/pattern == 1);
      if (pattern == 2)
        for (std::size_t r = 1; r < staged.submit_order.size(); r += 2)
          std::reverse(staged.submit_order[r].begin(), staged.submit_order[r].end());
      staged.group_size = 2;
      staged.variant = hvd::EngineVariant::Hierarchical;
      staged.name = object + " [" + kPatternNames[pattern] + " submission, hierarchical]";
      diags.merge(check_protocol(staged).diags);
    }
  }
  return diags;
}

std::string config_label(const train::TrainConfig& cfg) {
  std::string label = dnn::to_string(cfg.model);
  label += "@";
  label += cfg.cluster.name.empty() ? "cluster" : cfg.cluster.name;
  label += " n" + std::to_string(cfg.nodes) + "xppn" + std::to_string(cfg.ppn);
  label += " (";
  label += exec::to_string(cfg.framework);
  if (cfg.device == train::DeviceKind::Gpu) label += "/GPU";
  label += ")";
  return label;
}

util::Diagnostics lint_config(const train::TrainConfig& cfg) {
  util::Diagnostics diags;
  const std::string object = config_label(cfg);

  run_cluster_passes(cfg.cluster, diags);
  const bool platform_ok = !diags.has_errors();

  const dnn::Graph graph = dnn::build_model(cfg.model);
  run_graph_passes(graph, diags);

  // Verified graph rewriting: when the config enables the optimizer, replay
  // the exact pass sequence the trainer would run and surface the
  // equivalence checker's O-codes — an unsound rewrite fails the lint gate
  // before it can reach a measurement.
  if (cfg.opt_level > 0 && cfg.opt_level <= 2) {
    opt::OptOptions oo;
    oo.level = cfg.opt_level;
    oo.pass_mask = cfg.opt_pass_mask;
    diags.merge(opt::optimize(graph, oo).diags);
  }

  // Schedule passes need a sane platform to reason about cores and memory.
  if (platform_ok) run_schedule_passes(cfg, object, diags);

  // Fault-scenario lint runs whenever the config carries a schedule; its F
  // errors gate the elastic verification below (a scenario naming ranks that
  // do not exist would only produce nonsense counterexamples).
  const bool has_scenario = !cfg.faults.empty() || !cfg.link_degrades.empty();
  if (has_scenario) diags.merge(lint_faults(cfg));

  const bool multi_rank = cfg.nodes > 0 && cfg.ppn > 0 && cfg.nodes * cfg.ppn > 1;
  if (multi_rank && cfg.use_horovod && platform_ok) {
    const net::Topology topo =
        cfg.device == train::DeviceKind::Gpu
            ? net::Topology(cfg.nodes, cfg.ppn, cfg.cluster.fabric, net::pcie3_x16_params())
            : net::Topology(cfg.nodes, cfg.ppn, cfg.cluster.fabric);
    run_topology_passes(topo, object, diags);
    run_policy_passes(cfg.policy, &graph, &topo.inter_node(), object, diags);
    // Bounded protocol model check; a nonsensical policy (H001/H002) already
    // failed above and would only produce a garbage spec here.
    if (!diags.has_code("H001") && !diags.has_code("H002")) {
      diags.merge(verify_config_engine(cfg));
      // Elastic verification: a config that runs a fault scenario must also
      // survive crash/rejoin interleavings of its protocol — skipped when
      // the scenario itself is malformed (F errors).
      if (has_scenario && !cfg.faults.crashes.empty() && !diags.has_code("F001") &&
          !diags.has_code("F002") && !diags.has_code("F003"))
        diags.merge(verify_config_elastic(cfg));
    }
  } else {
    // Single-process runs never touch the engine; only flag a policy whose
    // values are nonsense outright (H001/H002), not fusion-tuning advice.
    run_policy_passes(cfg.policy, nullptr, nullptr, object, diags);
  }
  return diags;
}

}  // namespace dnnperf::analysis
