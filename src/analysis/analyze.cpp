#include "analysis/analyze.hpp"

#include <string>

#include "analysis/graph_passes.hpp"
#include "analysis/hw_passes.hpp"
#include "analysis/metrics_passes.hpp"
#include "analysis/net_passes.hpp"
#include "analysis/policy_passes.hpp"
#include "net/link.hpp"

namespace dnnperf::analysis {

util::Diagnostics lint_graph(const dnn::Graph& graph) {
  util::Diagnostics diags;
  run_graph_passes(graph, diags);
  return diags;
}

util::Diagnostics lint_metrics(const util::metrics::Snapshot& snap, const std::string& object) {
  util::Diagnostics diags;
  run_metrics_passes(snap, object, diags);
  return diags;
}

util::Diagnostics lint_cpu(const hw::CpuModel& cpu) {
  util::Diagnostics diags;
  run_cpu_passes(cpu, diags);
  return diags;
}

util::Diagnostics lint_cluster(const hw::ClusterModel& cluster) {
  util::Diagnostics diags;
  run_cluster_passes(cluster, diags);
  return diags;
}

util::Diagnostics lint_topology(const net::Topology& topo, const std::string& object) {
  util::Diagnostics diags;
  run_topology_passes(topo, object, diags);
  return diags;
}

util::Diagnostics lint_policy(const hvd::FusionPolicy& policy, const dnn::Graph* graph,
                              const net::LinkParams* inter_node, const std::string& object) {
  util::Diagnostics diags;
  run_policy_passes(policy, graph, inter_node, object, diags);
  return diags;
}

std::string config_label(const train::TrainConfig& cfg) {
  std::string label = dnn::to_string(cfg.model);
  label += "@";
  label += cfg.cluster.name.empty() ? "cluster" : cfg.cluster.name;
  label += " n" + std::to_string(cfg.nodes) + "xppn" + std::to_string(cfg.ppn);
  label += " (";
  label += exec::to_string(cfg.framework);
  if (cfg.device == train::DeviceKind::Gpu) label += "/GPU";
  label += ")";
  return label;
}

util::Diagnostics lint_config(const train::TrainConfig& cfg) {
  util::Diagnostics diags;
  const std::string object = config_label(cfg);

  run_cluster_passes(cfg.cluster, diags);
  const bool platform_ok = !diags.has_errors();

  const dnn::Graph graph = dnn::build_model(cfg.model);
  run_graph_passes(graph, diags);

  // Schedule passes need a sane platform to reason about cores and memory.
  if (platform_ok) run_schedule_passes(cfg, object, diags);

  const bool multi_rank = cfg.nodes > 0 && cfg.ppn > 0 && cfg.nodes * cfg.ppn > 1;
  if (multi_rank && cfg.use_horovod && platform_ok) {
    const net::Topology topo =
        cfg.device == train::DeviceKind::Gpu
            ? net::Topology(cfg.nodes, cfg.ppn, cfg.cluster.fabric, net::pcie3_x16_params())
            : net::Topology(cfg.nodes, cfg.ppn, cfg.cluster.fabric);
    run_topology_passes(topo, object, diags);
    run_policy_passes(cfg.policy, &graph, &topo.inter_node(), object, diags);
  } else {
    // Single-process runs never touch the engine; only flag a policy whose
    // values are nonsense outright (H001/H002), not fusion-tuning advice.
    run_policy_passes(cfg.policy, nullptr, nullptr, object, diags);
  }
  return diags;
}

}  // namespace dnnperf::analysis
