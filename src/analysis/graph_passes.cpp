#include "analysis/graph_passes.hpp"

#include <cmath>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace dnnperf::analysis {

namespace {

using dnn::Graph;
using dnn::Op;
using dnn::OpKind;
using dnn::Shape;

bool same_shape(const Shape& a, const Shape& b) {
  return a.c == b.c && a.h == b.h && a.w == b.w;
}

std::string shape_str(const Shape& s) {
  return std::to_string(s.c) + "x" + std::to_string(s.h) + "x" + std::to_string(s.w);
}

bool kind_carries_params(OpKind kind) {
  switch (kind) {
    case OpKind::Conv2d:
    case OpKind::MatMul:
    case OpKind::BatchNorm:
      return true;
    default:
      return false;
  }
}

/// G002: dataflow structure. Returns false when the graph is too malformed
/// for the per-op shape checks to make sense (bad input ids).
bool check_dataflow(const Graph& g, util::Diagnostics& diags) {
  const std::string& obj = g.name();
  if (g.size() == 0) {
    diags.error("G002", obj, "", "graph has no ops", "build the model before linting");
    return false;
  }
  if (g.ops().front().kind != OpKind::Input)
    diags.error("G002", obj, g.ops().front().name, "first op is not an Input",
                "graphs must start with the image input");
  bool ids_ok = true;
  for (std::size_t i = 0; i < g.ops().size(); ++i) {
    const Op& op = g.ops()[i];
    if (op.id != static_cast<int>(i)) {
      diags.error("G008", obj, op.name,
                  "op id " + std::to_string(op.id) + " does not match position " +
                      std::to_string(i),
                  "Graph::from_ops requires id == index; id-indexed lookups would read "
                  "the wrong op");
      ids_ok = false;
    }
  }
  for (const Op& op : g.ops()) {
    if (op.kind == OpKind::Input && !op.inputs.empty())
      diags.error("G002", obj, op.name, "Input op has producers");
    if (op.kind != OpKind::Input && op.inputs.empty())
      diags.error("G002", obj, op.name, "non-Input op has no inputs",
                  "every layer must consume at least one producer");
    for (int in : op.inputs) {
      if (in < 0 || in >= op.id) {
        diags.error("G002", obj, op.name,
                    "input id " + std::to_string(in) + " out of range or not topological",
                    "ops may only consume earlier ops");
        ids_ok = false;
      }
    }
  }
  return ids_ok;
}

/// G001: per-kind shape inference re-check. Only what is derivable from the
/// stored ops (kernel geometry is not retained, so conv/pool spatial dims are
/// checked for positivity and channel rules only).
void check_shapes(const Graph& g, util::Diagnostics& diags) {
  const std::string& obj = g.name();
  for (const Op& op : g.ops()) {
    if (op.out.c <= 0 || op.out.h <= 0 || op.out.w <= 0) {
      diags.error("G001", obj, op.name, "non-positive output shape " + shape_str(op.out));
      continue;
    }
    if (op.inputs.empty()) continue;
    const Shape& in0 = g.op(op.inputs.front()).out;
    switch (op.kind) {
      case OpKind::BatchNorm:
      case OpKind::ReLU:
      case OpKind::Softmax:
      case OpKind::Dropout:
        if (!same_shape(op.out, in0))
          diags.error("G001", obj, op.name,
                      "elementwise op output " + shape_str(op.out) +
                          " differs from input " + shape_str(in0),
                      "elementwise ops must preserve shape");
        break;
      case OpKind::Add: {
        if (op.inputs.size() != 2)
          diags.error("G001", obj, op.name,
                      "Add has " + std::to_string(op.inputs.size()) + " inputs, expected 2");
        for (int in : op.inputs) {
          const Shape& s = g.op(in).out;
          if (!same_shape(op.out, s))
            diags.error("G001", obj, op.name,
                        "Add output " + shape_str(op.out) + " differs from input " +
                            shape_str(s),
                        "residual adds require identical shapes");
        }
        break;
      }
      case OpKind::Concat: {
        int channels = 0;
        for (int in : op.inputs) {
          const Shape& s = g.op(in).out;
          channels += s.c;
          if (s.h != op.out.h || s.w != op.out.w)
            diags.error("G001", obj, op.name,
                        "Concat input " + shape_str(s) + " spatial dims differ from output " +
                            shape_str(op.out),
                        "concat branches must agree spatially");
        }
        if (channels != op.out.c)
          diags.error("G001", obj, op.name,
                      "Concat output channels " + std::to_string(op.out.c) +
                          " != sum of input channels " + std::to_string(channels));
        break;
      }
      case OpKind::GlobalAvgPool:
        if (op.out.c != in0.c || op.out.h != 1 || op.out.w != 1)
          diags.error("G001", obj, op.name,
                      "GlobalAvgPool output " + shape_str(op.out) + " should be " +
                          std::to_string(in0.c) + "x1x1");
        break;
      case OpKind::MaxPool:
      case OpKind::AvgPool:
        if (op.out.c != in0.c)
          diags.error("G001", obj, op.name,
                      "pooling changed channel count " + std::to_string(in0.c) + " -> " +
                          std::to_string(op.out.c));
        break;
      case OpKind::MatMul:
        if (op.out.h != 1 || op.out.w != 1)
          diags.error("G001", obj, op.name,
                      "MatMul output " + shape_str(op.out) + " is not a feature vector");
        break;
      case OpKind::Conv2d:
      case OpKind::Input:
        break;  // geometry not reconstructible / no inputs to compare
    }
  }
}

/// G003 (dead ops) + G004 (unreachable ops).
void check_liveness(const Graph& g, util::Diagnostics& diags) {
  const std::string& obj = g.name();
  const auto consumers = g.consumers();
  const int last = g.size() - 1;
  for (const Op& op : g.ops()) {
    if (op.id != last && consumers[static_cast<std::size_t>(op.id)].empty())
      diags.warn("G003", obj, op.name,
                 std::string(dnn::to_string(op.kind)) + " output is never consumed",
                 "remove the layer or connect it; dead layers still cost compute and "
                 "gradient traffic");
  }
  // Reachability: an op is live if the graph input reaches it through the
  // dataflow. Ops are topological, so one forward sweep suffices.
  std::vector<char> reachable(static_cast<std::size_t>(g.size()), 0);
  if (g.size() > 0 && g.ops().front().kind == OpKind::Input) reachable[0] = 1;
  for (const Op& op : g.ops()) {
    if (op.kind == OpKind::Input) continue;
    for (int in : op.inputs)
      if (in >= 0 && in < op.id && reachable[static_cast<std::size_t>(in)]) {
        reachable[static_cast<std::size_t>(op.id)] = 1;
        break;
      }
  }
  for (const Op& op : g.ops())
    if (!reachable[static_cast<std::size_t>(op.id)] && op.kind != OpKind::Input)
      diags.error("G004", obj, op.name, "op is unreachable from the graph input",
                  "it would never execute; timing it misstates the model");
  for (const Op& op : g.ops())
    if (op.kind == OpKind::Input && op.id != 0)
      diags.warn("G003", obj, op.name, "secondary Input op", "models here are single-input");
}

/// G005: numeric sanity of the per-op accounting the cost model consumes.
void check_accounting(const Graph& g, util::Diagnostics& diags) {
  const std::string& obj = g.name();
  for (const Op& op : g.ops()) {
    const double fields[] = {op.fwd_flops, op.bwd_flops, op.params, op.output_bytes};
    const char* names[] = {"fwd_flops", "bwd_flops", "params", "output_bytes"};
    for (int i = 0; i < 4; ++i) {
      if (!std::isfinite(fields[i]) || fields[i] < 0.0)
        diags.error("G005", obj, op.name,
                    std::string(names[i]) + " is negative or non-finite");
    }
    if (op.params > 0.0 && !kind_carries_params(op.kind))
      diags.error("G005", obj, op.name,
                  std::string(dnn::to_string(op.kind)) + " cannot carry parameters",
                  "only Conv2d/MatMul/BatchNorm are trainable here");
    const double expect_bytes = op.out.elements() * 4.0;
    if (std::isfinite(op.output_bytes) &&
        std::abs(op.output_bytes - expect_bytes) > 0.5)
      diags.error("G005", obj, op.name,
                  "output_bytes " + std::to_string(op.output_bytes) +
                      " disagrees with fp32 shape bytes " + std::to_string(expect_bytes));
  }
}

/// G006: the gradient tensors handed to Horovod must add up to the model's
/// parameter bytes — a mismatch silently mis-sizes every fusion buffer.
void check_gradient_tensors(const Graph& g, util::Diagnostics& diags) {
  const std::string& obj = g.name();
  const auto tensors = g.gradient_tensor_bytes();
  double sum = 0.0;
  std::size_t trainable = 0;
  for (double b : tensors) {
    sum += b;
    if (!(b > 0.0) || !std::isfinite(b))
      diags.error("G006", obj, "gradient_tensor_bytes", "non-positive gradient tensor size");
  }
  for (const Op& op : g.ops())
    if (op.has_params()) ++trainable;
  if (tensors.size() != trainable)
    diags.error("G006", obj, "gradient_tensor_bytes",
                std::to_string(tensors.size()) + " gradient tensors for " +
                    std::to_string(trainable) + " trainable ops");
  const double expect = g.total_params() * 4.0;
  if (std::isfinite(expect) && std::abs(sum - expect) > 0.5 * static_cast<double>(trainable) + 0.5)
    diags.error("G006", obj, "gradient_tensor_bytes",
                "gradient tensor bytes " + std::to_string(sum) +
                    " != 4 x total params " + std::to_string(expect),
                "Horovod would fuse a different byte count than the optimizer updates");
}

/// G007: duplicate names make every per-layer report ambiguous.
void check_names(const Graph& g, util::Diagnostics& diags) {
  std::unordered_map<std::string, int> seen;
  for (const Op& op : g.ops()) {
    auto [it, inserted] = seen.emplace(op.name, op.id);
    if (!inserted)
      diags.warn("G007", g.name(), op.name,
                 "duplicate op name (first used by op " + std::to_string(it->second) + ")",
                 "profiles and traces key on names; make them unique");
  }
}

}  // namespace

void run_graph_passes(const dnn::Graph& graph, util::Diagnostics& diags) {
  const bool ids_ok = check_dataflow(graph, diags);
  if (!ids_ok) return;  // per-op lookups below would index out of range
  check_shapes(graph, diags);
  check_liveness(graph, diags);
  check_accounting(graph, diags);
  check_gradient_tensors(graph, diags);
  check_names(graph, diags);
}

}  // namespace dnnperf::analysis
