// Platform pass family (P-codes): invariants over hw::CpuModel, hw::GpuModel
// and hw::ClusterModel. Unlike the models' own validate() methods these never
// throw — every violation becomes a diagnostic, so one lint run reports all
// problems of a hand-built platform at once.
#pragma once

#include "hw/node.hpp"
#include "util/diag.hpp"

namespace dnnperf::analysis {

void run_cpu_passes(const hw::CpuModel& cpu, util::Diagnostics& diags);
void run_gpu_passes(const hw::GpuModel& gpu, const std::string& object,
                    util::Diagnostics& diags);
void run_cluster_passes(const hw::ClusterModel& cluster, util::Diagnostics& diags);

}  // namespace dnnperf::analysis
