// Entry points of the static-analysis subsystem.
//
// Each lint_* runs one pass family over one object; lint_config composes all
// of them for a full train::TrainConfig — the model graph, the platform, the
// derived rank topology, the Horovod policy, and the schedule — and is what
// core::Experiment and tools/dnnperf_lint call. All entry points collect
// diagnostics instead of throwing, so one run reports every problem.
#pragma once

#include <string>

#include "dnn/graph.hpp"
#include "hvd/policy.hpp"
#include "hvd/protocol.hpp"
#include "hw/node.hpp"
#include "net/topology.hpp"
#include "train/trainer.hpp"
#include "util/diag.hpp"
#include "util/metrics.hpp"

namespace dnnperf::analysis {

util::Diagnostics lint_graph(const dnn::Graph& graph);
/// Lints a metrics snapshot (live or parsed from JSON): duplicate
/// registrations (M001) and Prometheus-charset names (M002).
util::Diagnostics lint_metrics(const util::metrics::Snapshot& snap, const std::string& object);
util::Diagnostics lint_cpu(const hw::CpuModel& cpu);
util::Diagnostics lint_cluster(const hw::ClusterModel& cluster);
util::Diagnostics lint_topology(const net::Topology& topo, const std::string& object);
util::Diagnostics lint_policy(const hvd::FusionPolicy& policy, const dnn::Graph* graph,
                              const net::LinkParams* inter_node, const std::string& object);

/// Exhaustive small-scope model check of the abstract engine protocol
/// (analysis/verify/model_checker.hpp); V0xx codes.
util::Diagnostics verify_engine(const hvd::ProtocolSpec& spec);

/// Engine verification derived from a training configuration: a bounded
/// spec (<= 3 ranks, <= 4 gradient tensors sampled from the model, the
/// config's fusion threshold) explored under canonical rank-permuted
/// submission orders. Cheap enough to run inside lint_config.
util::Diagnostics verify_config_engine(const train::TrainConfig& config);

/// Elastic engine verification: the bounded spec of verify_config_engine,
/// explored with a budget of 2 crash/rejoin events interleaved at every
/// reachable state (V2xx codes). The correct elastic engine — Standard
/// coordination re-formed over the alive membership set — must verify clean
/// here for every shipped preset; the Elastic* seeded-bug variants exist so
/// tests can prove each V2xx code has teeth.
util::Diagnostics verify_config_elastic(const train::TrainConfig& config);

/// F-family lint of the config's fault scenario (crash/rejoin/slowdown
/// schedule + link degrades): F001 nonexistent rank / malformed values,
/// F002 rejoin-before-crash, F003 schedule exceeds the fault budget or
/// leaves nobody alive, F004 degraded link level absent from the topology.
util::Diagnostics lint_faults(const train::TrainConfig& config);

/// Happens-before checks over a recorded Chrome-trace document; V1xx codes.
util::Diagnostics verify_trace(const std::string& json_text, const std::string& object);

/// Full composite lint of a training configuration, including the bounded
/// engine protocol verification for multi-rank Horovod configs. Families
/// whose prerequisites already failed (e.g. a broken platform) are skipped
/// rather than reported redundantly.
util::Diagnostics lint_config(const train::TrainConfig& config);

/// Human label for a config, used as the diagnostic object name:
/// "ResNet-50@Stampede2 n8xppn4 (TensorFlow)".
std::string config_label(const train::TrainConfig& config);

}  // namespace dnnperf::analysis
