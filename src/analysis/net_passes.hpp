// Network pass family (N-codes): connectivity and hierarchy invariants over
// a net::Topology — every rank pair must resolve to a usable link, the
// rank -> node mapping must be self-consistent, and the two hierarchy levels
// (shared memory, fabric) should be latency-monotone.
#pragma once

#include <string>

#include "net/topology.hpp"
#include "util/diag.hpp"

namespace dnnperf::analysis {

void run_topology_passes(const net::Topology& topo, const std::string& object,
                         util::Diagnostics& diags);

/// Lints one link's parameters under `object:field`.
void run_link_passes(const net::LinkParams& link, const std::string& object,
                     const std::string& field, util::Diagnostics& diags);

}  // namespace dnnperf::analysis
