#include "analysis/hw_passes.hpp"

#include <cmath>
#include <string>

namespace dnnperf::analysis {

namespace {

std::string num(double v) {
  std::string s = std::to_string(v);
  return s;
}

bool positive_finite(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

void run_cpu_passes(const hw::CpuModel& cpu, util::Diagnostics& diags) {
  const std::string obj = cpu.label.empty() ? cpu.name : cpu.label;
  bool counts_ok = true;
  if (cpu.sockets <= 0) {
    diags.error("P001", obj, "sockets", "non-positive socket count");
    counts_ok = false;
  }
  if (cpu.cores_per_socket <= 0) {
    diags.error("P001", obj, "cores_per_socket", "non-positive core count");
    counts_ok = false;
  }
  if (cpu.numa_domains_per_socket <= 0) {
    diags.error("P001", obj, "numa_domains_per_socket", "non-positive NUMA domain count");
    counts_ok = false;
  }
  if (cpu.threads_per_core <= 0) {
    diags.error("P001", obj, "threads_per_core", "non-positive hardware-thread count");
    counts_ok = false;
  }

  if (counts_ok && cpu.cores_per_socket % cpu.numa_domains_per_socket != 0)
    diags.error("P002", obj, "numa_domains_per_socket",
                std::to_string(cpu.cores_per_socket) + " cores per socket do not divide into " +
                    std::to_string(cpu.numa_domains_per_socket) + " NUMA domains",
                "every domain must own an equal core share for block-wise pinning");

  if (cpu.threads_per_core > 0 && cpu.threads_per_core != 1 && cpu.threads_per_core != 2 &&
      cpu.threads_per_core != 4)
    diags.error("P003", obj, "threads_per_core",
                "SMT depth " + std::to_string(cpu.threads_per_core) +
                    " is not a real configuration",
                "x86 parts are SMT1/SMT2; POWER-style SMT4 is the ceiling modeled here");

  if (!std::isfinite(cpu.smt_speedup_fraction) || cpu.smt_speedup_fraction < 0.0 ||
      cpu.smt_speedup_fraction > 1.0)
    diags.error("P004", obj, "smt_speedup_fraction", "fraction outside [0, 1]");
  else if (cpu.threads_per_core == 1 && cpu.smt_speedup_fraction != 0.0)
    diags.error("P004", obj, "smt_speedup_fraction",
                "SMT speedup set but threads_per_core == 1",
                "either model SMT or zero the fraction");

  if (!positive_finite(cpu.clock_ghz))
    diags.error("P001", obj, "clock_ghz", "non-positive clock");
  else if (cpu.clock_ghz < 0.8 || cpu.clock_ghz > 5.0)
    diags.warn("P005", obj, "clock_ghz",
               "clock " + num(cpu.clock_ghz) + " GHz outside the sane range [0.8, 5.0]",
               "check the units: the field is GHz, not MHz");

  if (!positive_finite(cpu.mem_bw_per_socket_gbps))
    diags.error("P001", obj, "mem_bw_per_socket_gbps", "non-positive memory bandwidth");
  else if (cpu.mem_bw_per_socket_gbps < 10.0 || cpu.mem_bw_per_socket_gbps > 600.0)
    diags.warn("P006", obj, "mem_bw_per_socket_gbps",
               "per-socket bandwidth " + num(cpu.mem_bw_per_socket_gbps) +
                   " GB/s outside the sane range [10, 600]",
               "DDR4 sockets sustain ~60-150 GB/s; check the units (GB/s decimal)");

  if (!positive_finite(cpu.flops_per_cycle_fp32))
    diags.error("P001", obj, "flops_per_cycle_fp32", "non-positive SIMD throughput");
  else if (cpu.flops_per_cycle_fp32 < 1.0 || cpu.flops_per_cycle_fp32 > 256.0)
    diags.warn("P007", obj, "flops_per_cycle_fp32",
               "fp32 FLOPs/cycle/core " + num(cpu.flops_per_cycle_fp32) +
                   " outside the sane range [1, 256]",
               "AVX2+FMA = 32, 2x AVX-512 FMA = 64; counting FMA as 2 FLOPs");
}

void run_gpu_passes(const hw::GpuModel& gpu, const std::string& object,
                    util::Diagnostics& diags) {
  const std::string obj = object.empty() ? gpu.name : object;
  if (!positive_finite(gpu.peak_fp32_tflops))
    diags.error("P009", obj, "peak_fp32_tflops", "non-positive peak throughput");
  if (!positive_finite(gpu.mem_bw_gbps))
    diags.error("P009", obj, "mem_bw_gbps", "non-positive memory bandwidth");
  if (!std::isfinite(gpu.launch_overhead_s) || gpu.launch_overhead_s < 0.0)
    diags.error("P009", obj, "launch_overhead_s", "negative launch overhead");
  if (!std::isfinite(gpu.achievable_fraction) || gpu.achievable_fraction <= 0.0 ||
      gpu.achievable_fraction > 1.0)
    diags.error("P009", obj, "achievable_fraction", "fraction outside (0, 1]");
  if (!positive_finite(gpu.memory_gib))
    diags.error("P009", obj, "memory_gib", "non-positive device memory");
  if (gpu.devices_per_node < 1)
    diags.error("P009", obj, "devices_per_node", "fewer than one device per node");
}

void run_cluster_passes(const hw::ClusterModel& cluster, util::Diagnostics& diags) {
  const std::string& obj = cluster.name;
  run_cpu_passes(cluster.node.cpu, diags);
  if (cluster.node.gpu) run_gpu_passes(*cluster.node.gpu, obj + "/gpu", diags);
  if (cluster.max_nodes <= 0)
    diags.error("P008", obj, "max_nodes", "cluster has no nodes");
  if (!positive_finite(cluster.node.memory_gib))
    diags.error("P008", obj, "node.memory_gib", "non-positive node memory");
}

}  // namespace dnnperf::analysis
