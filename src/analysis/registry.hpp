// Pass registry: the catalogue of every diagnostic the analysis subsystem
// can emit — stable code, default severity, pass family, and a one-line
// summary. `dnnperf_lint --list-passes` renders this table; tests use it to
// keep codes unique and documented.
//
// Code numbering: the letter is the family (G graph, P platform, N network,
// H Horovod policy, S schedule/config, M metrics registry, V verification —
// V0xx engine protocol model checking, V1xx happens-before trace checks);
// numbers are assigned once and never reused, so CI greps for a code stay
// valid across releases.
#pragma once

#include <string>
#include <vector>

#include "util/diag.hpp"

namespace dnnperf::analysis {

struct PassInfo {
  std::string code;        ///< e.g. "G001"
  util::Severity severity; ///< default severity the pass emits at
  std::string family;      ///< "graph" | "platform" | "network" | "policy" | "schedule" |
                           ///< "metrics" | "verify-engine" | "verify-trace"
  std::string summary;     ///< one-line description of the invariant
};

/// All registered passes, ordered by code.
const std::vector<PassInfo>& pass_registry();

/// Registry entry for `code`; throws std::out_of_range if unknown.
const PassInfo& pass_info(const std::string& code);

}  // namespace dnnperf::analysis
