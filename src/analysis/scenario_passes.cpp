// F-family lint of fault scenarios and the elastic protocol verification
// (verify_config_elastic). Both operate on the schedule a TrainConfig
// carries, so the same checks gate Experiment measurements, the advisor's
// survivability() query, and `dnnperf_lint --scenario=<file>` — every
// scenario is linted and its crash/rejoin protocol path model-checked before
// a single simulated step runs.
#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/verify/model_checker.hpp"
#include "dnn/models.hpp"

namespace dnnperf::analysis {

namespace {

std::string rank_field(int rank) { return "rank " + std::to_string(rank); }

/// Mirror of TimelineSim's membership rule: the latest crash/rejoin event at
/// or before `step` wins (ties go to the rejoin, which F002 rejects anyway).
bool alive_at(const hvd::FaultSchedule& faults, int rank, int step) {
  int last_crash = -1, last_rejoin = -1;
  for (const auto& c : faults.crashes)
    if (c.rank == rank && c.step <= step) last_crash = std::max(last_crash, c.step);
  for (const auto& r : faults.rejoins)
    if (r.rank == rank && r.step <= step) last_rejoin = std::max(last_rejoin, r.step);
  return last_crash < 0 || last_rejoin >= last_crash;
}

}  // namespace

util::Diagnostics lint_faults(const train::TrainConfig& cfg) {
  util::Diagnostics diags;
  const std::string object = config_label(cfg);
  const int world = cfg.nodes * cfg.ppn;
  const auto& faults = cfg.faults;

  // F001: every event must name a real rank and carry sane values.
  const auto check_rank = [&](int rank, const char* what) {
    if (rank >= 0 && rank < world) return true;
    diags.error("F001", object, rank_field(rank),
                std::string(what) + " references rank " + std::to_string(rank) +
                    " outside the world of " + std::to_string(world) + " ranks",
                "scenario ranks are global MPI ranks in [0, nodes*ppn)");
    return false;
  };
  for (const auto& s : faults.slowdowns) {
    check_rank(s.rank, "slowdown");
    if (s.factor <= 0.0)
      diags.error("F001", object, rank_field(s.rank),
                  "slowdown factor " + std::to_string(s.factor) + " is not positive",
                  "a straggler factor multiplies compute time; 1.5 means 50% slower");
    if (s.from_step < 0 || (s.to_step >= 0 && s.to_step <= s.from_step))
      diags.error("F001", object, rank_field(s.rank),
                  "slowdown step range [" + std::to_string(s.from_step) + ", " +
                      std::to_string(s.to_step) + ") is empty or negative",
                  "use to_step = -1 for 'rest of the run'");
  }
  for (const auto& c : faults.crashes) {
    check_rank(c.rank, "crash");
    if (c.step < 0)
      diags.error("F001", object, rank_field(c.rank), "crash at negative step", "steps are >= 0");
  }
  for (const auto& r : faults.rejoins) {
    check_rank(r.rank, "rejoin");
    if (r.step < 0)
      diags.error("F001", object, rank_field(r.rank), "rejoin at negative step", "steps are >= 0");
  }

  // F002: a rejoin needs a strictly earlier crash of the same rank.
  for (const auto& r : faults.rejoins) {
    const bool crashed_before = std::any_of(
        faults.crashes.begin(), faults.crashes.end(),
        [&](const hvd::CrashEvent& c) { return c.rank == r.rank && c.step < r.step; });
    if (!crashed_before)
      diags.error("F002", object, rank_field(r.rank),
                  "rejoin at step " + std::to_string(r.step) +
                      " has no earlier crash of the same rank",
                  "a rank can only regrow into a ring it left; schedule the crash first");
  }

  // F003: the operator's fault budget caps crash events, and the schedule
  // must keep at least one rank alive at every step it covers.
  if (static_cast<int>(faults.crashes.size()) > faults.fault_budget)
    diags.error("F003", object, "crashes",
                std::to_string(faults.crashes.size()) + " crash events exceed the fault budget of " +
                    std::to_string(faults.fault_budget),
                "raise the scenario's fault_budget or split the schedule");
  if (!diags.has_code("F001") && !faults.crashes.empty() && world >= 1) {
    for (int step = 0; step < cfg.iterations; ++step) {
      int alive = 0;
      for (int rank = 0; rank < world; ++rank) alive += alive_at(faults, rank, step);
      if (alive == 0) {
        diags.error("F003", object, "crashes",
                    "crash schedule leaves no rank alive at step " + std::to_string(step),
                    "keep min_alive >= 1: stagger the crashes or schedule a rejoin earlier");
        break;
      }
    }
  }

  // F004: every degraded level must exist in the topology this run builds.
  const int numa = cfg.cluster.node.cpu.numa_domains();
  const bool numa_stage = cfg.device == train::DeviceKind::Cpu &&
                          cfg.hierarchy == train::CommHierarchy::ThreeLevel && numa > 1 &&
                          cfg.ppn % numa == 0;
  for (const auto& d : cfg.link_degrades) {
    const std::string field = "link level " + std::to_string(d.level);
    if (d.bandwidth_factor <= 0.0 || d.latency_factor <= 0.0) {
      diags.error("F004", object, field, "link degrade factors must be positive",
                  "bandwidth_factor scales bandwidth (0.5 halves it); latency_factor "
                  "scales latency and per-message overhead");
      continue;
    }
    const char* missing = nullptr;
    if (d.level < 0 || d.level > 2)
      missing = "levels are 0 = inter-node, 1 = intra-node, 2 = intra-NUMA";
    else if (d.level == 0 && cfg.nodes <= 1)
      missing = "a single-node run has no inter-node link";
    else if (d.level == 1 && cfg.ppn <= 1)
      missing = "one rank per node never exchanges over the intra-node link";
    else if (d.level == 2 && !numa_stage)
      missing = "the intra-NUMA level only exists under --hierarchy=three on a "
                "multi-NUMA CPU with ppn divisible by the domain count";
    if (missing != nullptr)
      diags.error("F004", object, field,
                  "degraded link level " + std::to_string(d.level) +
                      " is not in this run's topology",
                  missing);
  }
  return diags;
}

util::Diagnostics verify_config_elastic(const train::TrainConfig& cfg) {
  util::Diagnostics diags;
  const std::string object = config_label(cfg);

  // Same small-scope sampling rule as verify_config_engine: the extreme
  // gradient tensor sizes against the config's fusion capacity, at up to 3
  // ranks — plus a budget of 2 fault events interleaved everywhere, which is
  // what makes the crash/rejoin handling part of the verified surface.
  std::vector<double> grad_bytes = dnn::build_model(cfg.model).gradient_tensor_bytes();
  if (grad_bytes.empty()) return diags;
  std::sort(grad_bytes.begin(), grad_bytes.end(), std::greater<>());
  std::vector<std::size_t> elements;
  const std::size_t n = grad_bytes.size();
  for (std::size_t i : n <= 4 ? std::vector<std::size_t>{0, 1, 2, 3}
                              : std::vector<std::size_t>{0, 1, n - 2, n - 1})
    if (i < n) elements.push_back(static_cast<std::size_t>(grad_bytes[i] / sizeof(float)));

  const int world = cfg.nodes * cfg.ppn;
  const int ranks = std::clamp(world, 2, 3);
  const auto capacity = static_cast<std::size_t>(
      std::max(1.0, cfg.policy.fusion_threshold_bytes / sizeof(float)));

  for (int pattern = 0; pattern < 2; ++pattern) {
    hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(ranks, elements, capacity,
                                                        /*rotate_by_rank=*/pattern == 1);
    spec.max_fault_events = 2;
    spec.min_alive = 1;
    static const char* kPatternNames[] = {"in-order", "rotated"};
    spec.name = object + " [elastic, " + kPatternNames[pattern] + " submission]";
    diags.merge(check_protocol(spec).diags);
  }
  return diags;
}

}  // namespace dnnperf::analysis
