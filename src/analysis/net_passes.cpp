#include "analysis/net_passes.hpp"

#include <cmath>
#include <string>

namespace dnnperf::analysis {

namespace {

// Full pairwise reachability is O(world^2); above this world size the
// structural checks per rank plus one probe per link class cover the same
// ground (the block mapping makes all same-node / cross-node pairs alike).
constexpr int kPairwiseCap = 64;

}  // namespace

void run_link_passes(const net::LinkParams& link, const std::string& object,
                     const std::string& field, util::Diagnostics& diags) {
  if (!std::isfinite(link.latency_s) || link.latency_s < 0.0)
    diags.error("N001", object, field + ".latency_s", "negative or non-finite latency");
  if (!std::isfinite(link.bandwidth_gbps) || link.bandwidth_gbps <= 0.0)
    diags.error("N001", object, field + ".bandwidth_gbps", "non-positive bandwidth");
  if (!std::isfinite(link.per_msg_overhead_s) || link.per_msg_overhead_s < 0.0)
    diags.error("N001", object, field + ".per_msg_overhead_s",
                "negative or non-finite per-message overhead");
  if (link.bandwidth_gbps > 0.0 &&
      (link.bandwidth_gbps < 0.05 || link.bandwidth_gbps > 1000.0))
    diags.warn("N005", object, field + ".bandwidth_gbps",
               "bandwidth " + std::to_string(link.bandwidth_gbps) +
                   " GB/s outside the sane range [0.05, 1000]",
               "the field is GB/s decimal, not Gbit/s");
  if (link.latency_s > 1e-3)
    diags.warn("N005", object, field + ".latency_s",
               "latency above 1 ms; that is WAN territory, not a cluster fabric");
}

void run_topology_passes(const net::Topology& topo, const std::string& object,
                         util::Diagnostics& diags) {
  run_link_passes(topo.intra_node(), object, "intra_node", diags);
  run_link_passes(topo.inter_node(), object, "inter_node", diags);

  const int world = topo.world_size();
  // Structural mapping checks, O(world): every rank must land on a valid
  // node with a valid local rank, and node-of/leader-of must agree.
  for (int r = 0; r < world; ++r) {
    const int node = topo.node_of(r);
    const int local = topo.local_rank(r);
    if (node < 0 || node >= topo.nodes() || local < 0 || local >= topo.ppn() ||
        node * topo.ppn() + local != r) {
      diags.error("N002", object, "rank " + std::to_string(r),
                  "rank does not map to a consistent (node, local_rank) pair");
      return;  // mapping is broken; pair probing below would mislead
    }
  }

  // Reachability: a pair is reachable when its link yields a finite positive
  // transfer time. Exhaustive below the cap, one probe per link class above.
  auto probe = [&](int a, int b) {
    const double t = topo.p2p_time(a, b, 1024.0);
    if (!std::isfinite(t) || t <= 0.0)
      diags.error("N002", object,
                  "(" + std::to_string(a) + "," + std::to_string(b) + ")",
                  "rank pair has no usable link (transfer time not finite-positive)");
  };
  if (world <= kPairwiseCap) {
    for (int a = 0; a < world; ++a)
      for (int b = a + 1; b < world; ++b) probe(a, b);
  } else {
    if (topo.ppn() > 1) probe(0, 1);
    if (topo.nodes() > 1) probe(0, topo.ppn());
  }

  // Hierarchy monotonicity. Latency must not invert: a shared-memory hop
  // slower than the fabric means hierarchical (leader-based) collectives
  // would be mis-ordered. Bandwidth inversion is legitimate (CMA copy rate
  // vs IB EDR), so it is only advice.
  if (topo.nodes() > 1) {
    const auto& intra = topo.intra_node();
    const auto& inter = topo.inter_node();
    if (intra.latency_s > inter.latency_s)
      diags.warn("N003", object, "intra_node.latency_s",
                 "intra-node latency " + std::to_string(intra.latency_s) +
                     " s exceeds inter-node latency " + std::to_string(inter.latency_s) +
                     " s",
                 "shared memory should be the fast hierarchy level");
    if (topo.ppn() > 1 && intra.bandwidth_gbps < inter.bandwidth_gbps)
      diags.advice("N004", object, "intra_node.bandwidth_gbps",
                   "intra-node bandwidth below the fabric's; node-leader staging may "
                   "bottleneck hierarchical allreduce",
                   "consider larger fusion buffers to amortize the staging copies");
  }
}

}  // namespace dnnperf::analysis
