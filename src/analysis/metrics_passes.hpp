// Metrics-registry lint passes (M family): checks over a
// util::metrics::Snapshot — the names and shapes a run exported, whether
// live from the registry or parsed back from a JSON snapshot file.
//
//   M001  duplicate metric registration: one name carrying two kinds
//   M002  name outside the Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]*
//   M003  non-finite value (NaN/Inf gauge or histogram statistic)
#pragma once

#include <string>

#include "util/diag.hpp"
#include "util/metrics.hpp"

namespace dnnperf::analysis {

void run_metrics_passes(const util::metrics::Snapshot& snap, const std::string& object,
                        util::Diagnostics& diags);

}  // namespace dnnperf::analysis
