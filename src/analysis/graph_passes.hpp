// Graph pass family (G-codes): semantic checks over a dnn::Graph that
// Graph::validate() is too shallow to catch — per-kind shape inference
// re-check, dead/unreachable op detection, FLOP/parameter sanity, and
// gradient-tensor-list consistency (what Horovod is handed must add up to
// the model's parameter bytes).
#pragma once

#include "dnn/graph.hpp"
#include "util/diag.hpp"

namespace dnnperf::analysis {

/// Appends G-code findings for `graph` to `diags`. Never throws.
void run_graph_passes(const dnn::Graph& graph, util::Diagnostics& diags);

}  // namespace dnnperf::analysis
