// Happens-before verifier for recorded Chrome trace-event documents
// (util/trace) — both real-time rank tracks and DES virtual-time tracks.
// Parses the JSON through the shared prof::TraceModel (the same parsed-trace
// representation the profiler consumes) and checks the properties the
// paper's timeline analysis (Figs. 18/19) silently relies on:
//
//   V101  document well-formedness — parseable JSON, a traceEvents array,
//         and every event carrying the viewer's required fields;
//   V102  span nesting — complete events on one (pid, tid) track come from
//         scoped RAII sections, so any two must be disjoint or properly
//         nested; partial overlap means a corrupted timeline;
//   V103  cross-rank allreduce matching — engine collectives are issued in
//         lockstep, so every rank track must show the same cycle count and,
//         within the k-th cycle, the same data-allreduce sequence (count and
//         bytes); a mismatch is a desynchronized or truncated recording;
//   V104  cycle monotonicity — a rank's engine cycles (and a simulated
//         engine track's negotiations) are strictly sequential: each must
//         end before the next begins.
#pragma once

#include <string>

#include "util/diag.hpp"

namespace dnnperf::analysis {

/// Verifies a trace document given as JSON text; `object` labels the
/// diagnostics (usually the file name). Never throws on bad input — every
/// problem is reported as a diagnostic.
util::Diagnostics verify_trace_text(const std::string& json_text, const std::string& object);

/// verify_trace_text() over a file's contents; an unreadable file is a V101.
util::Diagnostics verify_trace_file(const std::string& path);

}  // namespace dnnperf::analysis
