#include "analysis/verify/model_checker.hpp"

#include <cstdint>
#include <deque>
#include <unordered_map>

namespace dnnperf::analysis {

namespace {

using hvd::ProtocolSpec;
using hvd::ProtocolState;

std::string tensor_name(int id) {
  std::string out = "t";
  out += std::to_string(id);
  return out;
}

std::string bitmap_to_string(std::uint32_t bits, std::size_t tensors) {
  std::string out = "{";
  bool first = true;
  for (std::size_t t = 0; t < tensors; ++t) {
    if (!(bits & (1u << t))) continue;
    if (!first) out += ',';
    first = false;
    out += tensor_name(static_cast<int>(t));
  }
  return out + "}";
}

std::string group_to_string(const std::vector<int>& group) {
  std::string out = "allreduce[";
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (i > 0) out += ',';
    out += tensor_name(group[i]);
  }
  return out + "]";
}

std::string cycle_action(const hvd::CycleOutcome& outcome, std::size_t tensors) {
  std::string out = "cycle: ready=" + bitmap_to_string(outcome.ready, tensors);
  for (const auto& group : outcome.groups) out += " -> " + group_to_string(group);
  return out;
}

/// BFS bookkeeping per canonical state: the representative state plus the
/// predecessor edge for counterexample reconstruction.
struct Node {
  ProtocolState state;
  std::uint64_t parent = 0;
  std::string action;
  bool root = false;
};

class Checker {
 public:
  Checker(const ProtocolSpec& spec, const ModelCheckOptions& options)
      : spec_(spec), options_(options) {}

  ModelCheckResult run() {
    spec_.validate();
    check_starvation();
    bfs();
    if (!result_.complete)
      result_.diags.warn("V006", spec_.name, "bounds",
                         "exploration truncated at " + std::to_string(result_.states_explored) +
                             " states; verification incomplete",
                         "raise ModelCheckOptions::max_states or shrink the rank/tensor bounds");
    return std::move(result_);
  }

 private:
  /// V002: tensors no interleaving can complete — statically visible from
  /// the spec, independent of scheduling (the minimal root cause; the BFS
  /// then shows a concrete trace that runs into it as V001).
  void check_starvation() {
    for (std::size_t t = 0; t < spec_.tensor_elements.size(); ++t) {
      if (!spec_.allow_oversized && spec_.tensor_elements[t] > spec_.capacity_elems)
        result_.diags.error(
            "V002", spec_.name, tensor_name(static_cast<int>(t)),
            "tensor of " + std::to_string(spec_.tensor_elements[t]) +
                " elements exceeds the strict fusion-buffer capacity of " +
                std::to_string(spec_.capacity_elems) + " elements and can never be shipped",
            "raise the fusion threshold above the largest gradient tensor, or allow "
            "oversized tensors to bypass fusion as Horovod does");
    }
  }

  void bfs() {
    const ProtocolState init = hvd::initial_state(spec_);
    const std::uint64_t init_key = hvd::canonical_key(spec_, init);
    visited_[init_key] = Node{init, 0, {}, true};
    std::deque<std::uint64_t> queue{init_key};

    while (!queue.empty()) {
      const std::uint64_t key = queue.front();
      queue.pop_front();
      const Node node = visited_[key];  // copy: visited_ may rehash below
      ++result_.states_explored;
      if (result_.states_explored > options_.max_states) {
        result_.complete = false;
        return;
      }

      if (hvd::all_complete(spec_, node.state)) {
        result_.goal_reached = true;
        continue;  // terminal: nothing left to submit or ship
      }

      bool any_submit = false;
      for (int r = 0; r < spec_.ranks; ++r) {
        if (!hvd::can_submit(spec_, node.state, r)) continue;
        any_submit = true;
        const int tensor = hvd::next_submission(spec_, node.state, r);
        std::string action = "r";
        action += std::to_string(r) + " submits " + tensor_name(tensor);
        enqueue(hvd::apply_submit(spec_, node.state, r), key, std::move(action), queue);
      }

      const hvd::CycleOutcome outcome = hvd::apply_cycle(spec_, node.state);
      if (check_cycle_invariants(key, outcome)) return;
      const bool cycle_progresses = !(outcome.next == node.state);
      if (cycle_progresses)
        enqueue(outcome.next, key, cycle_action(outcome, spec_.tensor_elements.size()), queue);

      if (!any_submit && !cycle_progresses) {
        report_deadlock(key, node.state, outcome);
        return;
      }
    }
  }

  void enqueue(const ProtocolState& state, std::uint64_t parent, std::string action,
               std::deque<std::uint64_t>& queue) {
    ++result_.transitions;
    const std::uint64_t key = hvd::canonical_key(spec_, state);
    if (visited_.contains(key)) return;
    visited_[key] = Node{state, parent, std::move(action), false};
    queue.push_back(key);
  }

  /// Safety invariants every cycle must respect regardless of variant; the
  /// seeded bug variants exist to violate exactly one each. Returns true
  /// when a violation was reported (exploration stops; the trace is minimal).
  bool check_cycle_invariants(std::uint64_t key, const hvd::CycleOutcome& outcome) {
    const Node& node = visited_[key];
    const std::size_t tensors = spec_.tensor_elements.size();
    for (const auto& group : outcome.groups) {
      std::size_t total = 0;
      for (int id : group) {
        total += spec_.tensor_elements[static_cast<std::size_t>(id)];
        if (node.state.completed & (1u << id)) {
          report(key, "V003", tensor_name(id),
                 "cycle re-issues a data allreduce for already-completed " + tensor_name(id) +
                     "; engine-issued allreduces exceed framework requests",
                 "the readiness vector must clear completed tensors before the "
                 "coordination reduce",
                 cycle_action(outcome, tensors));
          return true;
        }
        for (int r = 0; r < spec_.ranks; ++r) {
          if (!hvd::rank_submitted(spec_, node.state, r, id)) {
            report(key, "V005", tensor_name(id),
                   "data allreduce ships " + tensor_name(id) + " before rank " +
                       std::to_string(r) +
                       " submitted it (coordination must intersect per-rank readiness, "
                       "not union it)",
                   "negotiate with a Min-reduce over the readiness vectors",
                   cycle_action(outcome, tensors));
            return true;
          }
        }
      }
      if (total > spec_.capacity_elems && (group.size() > 1 || !spec_.allow_oversized)) {
        report(key, "V004", "fusion_buffer",
               "planned fusion buffer of " + std::to_string(total) +
                   " elements exceeds the capacity of " + std::to_string(spec_.capacity_elems),
               "the packer must close a buffer before the next tensor overflows it",
               cycle_action(outcome, tensors));
        return true;
      }
    }
    return false;
  }

  void report_deadlock(std::uint64_t key, const ProtocolState& state,
                       const hvd::CycleOutcome& outcome) {
    const std::size_t tensors = spec_.tensor_elements.size();
    const auto all = (std::uint32_t{1} << tensors) - 1;
    std::string message =
        "deadlock: no rank can submit, the negotiated ready set " +
        bitmap_to_string(outcome.ready, tensors) + " packs nothing, and tensors " +
        bitmap_to_string(all & ~state.completed, tensors) + " are incomplete";
    if (spec_.max_outstanding > 0)
      message += " (submission window " + std::to_string(spec_.max_outstanding) + ")";
    report(key, "V001", "protocol", message,
           "rank-permuted submission orders under a bounded window cannot form a full "
           "readiness bitmap; submit in one global order or widen the window",
           "stuck");
  }

  void report(std::uint64_t key, const char* code, const std::string& field, std::string message,
              std::string fix_hint, std::string final_action) {
    std::vector<std::string> trace{std::move(final_action)};
    for (std::uint64_t k = key; !visited_[k].root; k = visited_[k].parent)
      trace.push_back(visited_[k].action);
    result_.counterexample.assign(trace.rbegin(), trace.rend());

    std::string hint = "counterexample: ";
    for (std::size_t i = 0; i < result_.counterexample.size(); ++i) {
      if (i > 0) hint += "; ";
      hint += result_.counterexample[i];
    }
    hint += ". fix: " + fix_hint;
    result_.diags.error(code, spec_.name, field, std::move(message), std::move(hint));
  }

  ProtocolSpec spec_;
  ModelCheckOptions options_;
  ModelCheckResult result_;
  std::unordered_map<std::uint64_t, Node> visited_;
};

}  // namespace

ModelCheckResult check_protocol(const hvd::ProtocolSpec& spec, const ModelCheckOptions& options) {
  return Checker(spec, options).run();
}

}  // namespace dnnperf::analysis
