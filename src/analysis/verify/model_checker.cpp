#include "analysis/verify/model_checker.hpp"

#include <cstdint>
#include <deque>
#include <unordered_map>

namespace dnnperf::analysis {

namespace {

using hvd::ProtocolSpec;
using hvd::ProtocolState;

std::string tensor_name(int id) {
  std::string out = "t";
  out += std::to_string(id);
  return out;
}

std::string bitmap_to_string(std::uint32_t bits, std::size_t tensors) {
  std::string out = "{";
  bool first = true;
  for (std::size_t t = 0; t < tensors; ++t) {
    if (!(bits & (1u << t))) continue;
    if (!first) out += ',';
    first = false;
    out += tensor_name(static_cast<int>(t));
  }
  return out + "}";
}

std::string rank_set_to_string(std::uint32_t bits, int ranks) {
  std::string out = "{";
  bool first = true;
  for (int r = 0; r < ranks; ++r) {
    if (!(bits & (1u << r))) continue;
    if (!first) out += ',';
    first = false;
    out += "r" + std::to_string(r);
  }
  return out + "}";
}

std::string group_to_string(const std::vector<int>& group) {
  std::string out = "allreduce[";
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (i > 0) out += ',';
    out += tensor_name(group[i]);
  }
  return out + "]";
}

std::string cycle_action(const hvd::CycleOutcome& outcome, std::size_t tensors) {
  std::string out = "cycle: ready=" + bitmap_to_string(outcome.ready, tensors);
  for (const auto& group : outcome.groups) out += " -> " + group_to_string(group);
  return out;
}

/// Hash for visited-set keys. Keys are canonical states (hvd::canonical_state)
/// and equality is the state's own operator==, so the reduction stays exact —
/// a hash collision costs a probe, never a merged state.
struct StateHash {
  std::size_t operator()(const ProtocolState& s) const {
    std::uint64_t key = 1469598103934665603ull;
    const auto mix = [&key](std::uint64_t v) { key = (key ^ v) * 1099511628211ull; };
    for (int pos : s.pos) mix(static_cast<std::uint64_t>(pos));
    mix(s.completed);
    mix(s.alive);
    mix(s.regrow_pending);
    mix(s.rejoined);
    mix(s.ever_completed);
    mix(static_cast<std::uint64_t>(s.faults_used));
    return static_cast<std::size_t>(key);
  }
};

/// BFS bookkeeping per canonical state: the representative state plus the
/// predecessor edge for counterexample reconstruction.
struct Node {
  ProtocolState state;
  ProtocolState parent;  ///< canonical key of the predecessor
  std::string action;
  bool root = false;
};

class Checker {
 public:
  Checker(const ProtocolSpec& spec, const ModelCheckOptions& options)
      : spec_(spec), options_(options) {}

  ModelCheckResult run() {
    spec_.validate();
    check_starvation();
    bfs();
    if (!result_.complete)
      result_.diags.warn("V006", spec_.name, "bounds",
                         "exploration truncated at " + std::to_string(result_.states_explored) +
                             " states; verification incomplete",
                         "raise ModelCheckOptions::max_states or shrink the rank/tensor bounds");
    return std::move(result_);
  }

 private:
  /// V002: tensors no interleaving can complete — statically visible from
  /// the spec, independent of scheduling (the minimal root cause; the BFS
  /// then shows a concrete trace that runs into it as V001).
  void check_starvation() {
    for (std::size_t t = 0; t < spec_.tensor_elements.size(); ++t) {
      if (!spec_.allow_oversized && spec_.tensor_elements[t] > spec_.capacity_elems)
        result_.diags.error(
            "V002", spec_.name, tensor_name(static_cast<int>(t)),
            "tensor of " + std::to_string(spec_.tensor_elements[t]) +
                " elements exceeds the strict fusion-buffer capacity of " +
                std::to_string(spec_.capacity_elems) + " elements and can never be shipped",
            "raise the fusion threshold above the largest gradient tensor, or allow "
            "oversized tensors to bypass fusion as Horovod does");
    }
  }

  void bfs() {
    const ProtocolState init = hvd::initial_state(spec_);
    const ProtocolState init_key = hvd::canonical_state(spec_, init);
    visited_.emplace(init_key, Node{init, {}, {}, true});
    std::deque<ProtocolState> queue{init_key};

    while (!queue.empty()) {
      const ProtocolState key = queue.front();
      queue.pop_front();
      const Node node = visited_[key];  // copy: visited_ may rehash below
      ++result_.states_explored;
      if (result_.states_explored > options_.max_states) {
        result_.complete = false;
        return;
      }

      if (hvd::all_complete(spec_, node.state)) {
        result_.goal_reached = true;
        continue;  // terminal: nothing left to submit or ship
      }

      bool any_submit = false;
      for (int r = 0; r < spec_.ranks; ++r) {
        if (!hvd::can_submit(spec_, node.state, r)) continue;
        any_submit = true;
        const int tensor = hvd::next_submission(spec_, node.state, r);
        std::string action = "r";
        action += std::to_string(r) + " submits " + tensor_name(tensor);
        enqueue(hvd::apply_submit(spec_, node.state, r), key, std::move(action), queue);
      }

      const hvd::CycleOutcome outcome = hvd::apply_cycle(spec_, node.state);
      if (check_cycle_invariants(key, outcome)) return;
      const bool cycle_progresses = !(outcome.next == node.state);
      if (cycle_progresses)
        enqueue(outcome.next, key, cycle_action(outcome, spec_.tensor_elements.size()), queue);

      // Fault events are environment transitions: interleaved at every
      // reachable state within the budget, but excluded from the stuck
      // check below (a rescuing rejoin may never come, so the protocol must
      // not depend on one).
      if (explore_faults(key, node, queue)) return;

      if (!any_submit && !cycle_progresses) {
        report_stuck(key, node.state, outcome);
        return;
      }
    }
  }

  /// Enumerates crash/rejoin events from `node`. Returns true when a fault
  /// transition itself violated an invariant (V202) and was reported.
  bool explore_faults(const ProtocolState& key, const Node& node,
                      std::deque<ProtocolState>& queue) {
    if (spec_.max_fault_events == 0) return false;
    for (int r = 0; r < spec_.ranks; ++r) {
      if (hvd::can_crash(spec_, node.state, r)) {
        const ProtocolState next = hvd::apply_crash(spec_, node.state, r);
        std::string action = "r" + std::to_string(r) + " crashes";
        // Invariant: a fault never completes work. Only a data allreduce may
        // grow the completion set; a crash that does so has dropped the
        // victim's gradient from the sum without reducing it anywhere.
        if (const std::uint32_t dropped = next.completed & ~node.state.completed) {
          report(key, "V202", bitmap_to_string(dropped, spec_.tensor_elements.size()),
                 "crash of rank " + std::to_string(r) + " marks " +
                     bitmap_to_string(dropped, spec_.tensor_elements.size()) +
                     " completed without a data allreduce; the submitted gradient is "
                     "silently dropped from the sum",
                 "crash cleanup must discard the victim's pending submissions, not complete "
                 "them; the survivors re-negotiate and reduce the tensor themselves",
                 std::move(action));
          return true;
        }
        enqueue(next, key, std::move(action), queue);
      }
      if (hvd::can_rejoin(spec_, node.state, r)) {
        enqueue(hvd::apply_rejoin(spec_, node.state, r), key,
                "r" + std::to_string(r) + " rejoins", queue);
      }
    }
    return false;
  }

  void enqueue(const ProtocolState& state, const ProtocolState& parent, std::string action,
               std::deque<ProtocolState>& queue) {
    ++result_.transitions;
    ProtocolState key = hvd::canonical_state(spec_, state);
    if (visited_.contains(key)) return;
    visited_.emplace(key, Node{state, parent, std::move(action), false});
    queue.push_back(std::move(key));
  }

  /// Safety invariants every cycle must respect regardless of variant; the
  /// seeded bug variants exist to violate exactly one each. Returns true
  /// when a violation was reported (exploration stops; the trace is minimal).
  bool check_cycle_invariants(const ProtocolState& key, const hvd::CycleOutcome& outcome) {
    const Node& node = visited_[key];
    const std::size_t tensors = spec_.tensor_elements.size();
    for (const auto& group : outcome.groups) {
      std::size_t total = 0;
      for (int id : group) {
        total += spec_.tensor_elements[static_cast<std::size_t>(id)];
        // Re-shipping is checked against the monotone ever-completed set:
        // the double-count bug un-sets `completed` bits on rejoin, which
        // would otherwise hide the second allreduce from this invariant.
        if (node.state.ever_completed & (1u << id)) {
          if (node.state.rejoined != 0) {
            report(key, "V204", tensor_name(id),
                   "after rank " + rank_set_to_string(node.state.rejoined, spec_.ranks) +
                       " rejoined, a cycle re-issues a data allreduce for already-reduced " +
                       tensor_name(id) + "; the gradient is counted twice",
                   "a rejoining rank replays its submission journal, but the engine must "
                   "keep the global completion mask — re-submissions of reduced tensors "
                   "are dropped, not renegotiated",
                   cycle_action(outcome, tensors));
          } else {
            report(key, "V003", tensor_name(id),
                   "cycle re-issues a data allreduce for already-completed " + tensor_name(id) +
                       "; engine-issued allreduces exceed framework requests",
                   "the readiness vector must clear completed tensors before the "
                   "coordination reduce",
                   cycle_action(outcome, tensors));
          }
          return true;
        }
        for (int r = 0; r < spec_.ranks; ++r) {
          if (!hvd::rank_alive(node.state, r)) continue;  // the dead owe nothing
          if (hvd::rank_submitted(spec_, node.state, r, id)) continue;
          if (ghost_contributor(node.state, id) >= 0) {
            report(key, "V203", tensor_name(id),
                   "data allreduce ships " + tensor_name(id) + " that alive rank " +
                       std::to_string(r) + " never submitted — crashed rank " +
                       std::to_string(ghost_contributor(node.state, id)) +
                       "'s stale readiness bits are still counted after the shrink",
                   "re-form the readiness Min-reduce over the surviving membership set and "
                   "drop crashed ranks' stale vectors when shrinking",
                   cycle_action(outcome, tensors));
          } else {
            report(key, "V005", tensor_name(id),
                   "data allreduce ships " + tensor_name(id) + " before rank " +
                       std::to_string(r) +
                       " submitted it (coordination must intersect per-rank readiness, "
                       "not union it)",
                   "negotiate with a Min-reduce over the readiness vectors",
                   cycle_action(outcome, tensors));
          }
          return true;
        }
      }
      if (total > spec_.capacity_elems && (group.size() > 1 || !spec_.allow_oversized)) {
        report(key, "V004", "fusion_buffer",
               "planned fusion buffer of " + std::to_string(total) +
                   " elements exceeds the capacity of " + std::to_string(spec_.capacity_elems),
               "the packer must close a buffer before the next tensor overflows it",
               cycle_action(outcome, tensors));
        return true;
      }
    }
    return false;
  }

  /// The crashed rank whose frozen submitted-prefix contains `tensor`, or -1.
  int ghost_contributor(const ProtocolState& state, int tensor) const {
    for (int r = 0; r < spec_.ranks; ++r)
      if (!hvd::rank_alive(state, r) && hvd::rank_submitted(spec_, state, r, tensor)) return r;
    return -1;
  }

  void report_stuck(const ProtocolState& key, const ProtocolState& state,
                    const hvd::CycleOutcome& outcome) {
    const std::size_t tensors = spec_.tensor_elements.size();
    const auto all = (std::uint32_t{1} << tensors) - 1;
    const auto all_ranks = (std::uint32_t{1} << spec_.ranks) - 1;
    const std::string incomplete = bitmap_to_string(all & ~state.completed, tensors);
    if (state.regrow_pending != 0) {
      report(key, "V205", "membership",
             "regrow never converges: rank " +
                 rank_set_to_string(state.regrow_pending, spec_.ranks) +
                 "'s rejoin admission never completes, membership never re-stabilizes, and "
                 "data cycles stay suspended with tensors " +
                 incomplete + " incomplete",
             "rejoin admission must be a bounded barrier — admit the rank into the "
             "coordination group atomically and resume cycles",
             "stuck");
      return;
    }
    if (state.alive != all_ranks) {
      report(key, "V201", "membership",
             "deadlock after crash: with rank " +
                 rank_set_to_string(all_ranks & ~state.alive, spec_.ranks) +
                 " down, no survivor can submit, the negotiated ready set " +
                 bitmap_to_string(outcome.ready, tensors) + " packs nothing, and tensors " +
                 incomplete + " are incomplete",
             "the readiness Min-reduce must be re-formed over the surviving membership "
             "set on shrink; waiting on a crashed rank's vector stalls forever",
             "stuck");
      return;
    }
    std::string message = "deadlock: no rank can submit, the negotiated ready set " +
                          bitmap_to_string(outcome.ready, tensors) + " packs nothing, and tensors " +
                          incomplete + " are incomplete";
    if (spec_.max_outstanding > 0)
      message += " (submission window " + std::to_string(spec_.max_outstanding) + ")";
    report(key, "V001", "protocol", std::move(message),
           "rank-permuted submission orders under a bounded window cannot form a full "
           "readiness bitmap; submit in one global order or widen the window",
           "stuck");
  }

  void report(const ProtocolState& key, const char* code, const std::string& field,
              std::string message, std::string fix_hint, std::string final_action) {
    std::vector<std::string> trace{std::move(final_action)};
    for (ProtocolState k = key; !visited_[k].root; k = visited_[k].parent)
      trace.push_back(visited_[k].action);
    result_.counterexample.assign(trace.rbegin(), trace.rend());

    std::string hint = "counterexample: ";
    for (std::size_t i = 0; i < result_.counterexample.size(); ++i) {
      if (i > 0) hint += "; ";
      hint += result_.counterexample[i];
    }
    hint += ". fix: " + fix_hint;
    result_.diags.error(code, spec_.name, field, std::move(message), std::move(hint));
  }

  ProtocolSpec spec_;
  ModelCheckOptions options_;
  ModelCheckResult result_;
  std::unordered_map<ProtocolState, Node, StateHash> visited_;
};

}  // namespace

ModelCheckResult check_protocol(const hvd::ProtocolSpec& spec, const ModelCheckOptions& options) {
  return Checker(spec, options).run();
}

}  // namespace dnnperf::analysis
