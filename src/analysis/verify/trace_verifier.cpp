#include "analysis/verify/trace_verifier.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/jsonlite.hpp"

namespace dnnperf::analysis {

namespace {

namespace jl = util::jsonlite;

struct Span {
  std::string name;
  double start = 0.0;
  double end = 0.0;
  double bytes = -1.0;  ///< args.bytes when present (data allreduces)
};

struct Track {
  std::string thread_name;
  std::vector<Span> spans;
};

std::string track_label(std::pair<int, int> key, const Track& track) {
  std::string label = "pid " + std::to_string(key.first) + "/tid " + std::to_string(key.second);
  if (!track.thread_name.empty()) label += " (" + track.thread_name + ")";
  return label;
}

std::string span_label(const Span& s) {
  std::ostringstream os;
  os << s.name << " [" << s.start << ", " << s.end << ")";
  return os.str();
}

class Verifier {
 public:
  Verifier(const std::string& text, const std::string& object) : text_(text), object_(object) {}

  util::Diagnostics run() {
    if (!collect()) return std::move(diags_);
    for (auto& [key, track] : tracks_) {
      std::stable_sort(track.spans.begin(), track.spans.end(), [](const Span& a, const Span& b) {
        return a.start != b.start ? a.start < b.start : a.end > b.end;
      });
      check_nesting(key, track);
      check_cycle_monotonicity(key, track);
    }
    check_cross_rank_matching();
    return std::move(diags_);
  }

 private:
  /// Parses the document and groups complete events per (pid, tid) track.
  /// Returns false after a V101 (nothing further is checkable).
  bool collect() {
    jl::Value doc;
    try {
      doc = jl::parse(text_, "trace JSON");
    } catch (const std::exception& e) {
      diags_.error("V101", object_, "document", e.what(),
                   "is this a util/trace write_json() artifact?");
      return false;
    }
    const jl::Value* events = doc.get("traceEvents");
    if (events == nullptr || events->kind != jl::Value::Kind::Array) {
      diags_.error("V101", object_, "traceEvents",
                   "document has no traceEvents array", "");
      return false;
    }
    for (std::size_t i = 0; i < events->array.size(); ++i) {
      const jl::Value& e = events->array[i];
      const bool ok =
          e.kind == jl::Value::Kind::Object && e.has("name") && e.has("ph") && e.has("pid") &&
          e.has("tid") && e.has("ts") &&
          (e.at("ph").string != "X" || e.has("dur"));
      if (!ok) {
        diags_.error("V101", object_, "traceEvents[" + std::to_string(i) + "]",
                     "event is missing required fields (name/ph/pid/tid/ts, dur for 'X')", "");
        return false;
      }
      const auto key = std::make_pair(static_cast<int>(e.at("pid").number),
                                      static_cast<int>(e.at("tid").number));
      const std::string& ph = e.at("ph").string;
      if (ph == "M" && e.at("name").string == "thread_name" && e.has("args"))
        tracks_[key].thread_name = e.at("args").at("name").string;
      if (ph != "X") continue;
      Span span;
      span.name = e.at("name").string;
      span.start = e.at("ts").number;
      span.end = span.start + e.at("dur").number;
      if (const jl::Value* args = e.get("args"))
        if (const jl::Value* bytes = args->get("bytes")) span.bytes = bytes->number;
      tracks_[key].spans.push_back(std::move(span));
    }
    return true;
  }

  /// Spans on one track come from nested RAII scopes: any two must be
  /// disjoint or properly nested. Sweep in start order with a stack of open
  /// scope end times; ties from microsecond rounding are tolerated.
  void check_nesting(std::pair<int, int> key, const Track& track) {
    std::vector<const Span*> open;
    for (const Span& span : track.spans) {
      while (!open.empty() && open.back()->end <= span.start) open.pop_back();
      if (!open.empty() && span.end > open.back()->end) {
        diags_.error("V102", object_, track_label(key, track),
                     "spans partially overlap: " + span_label(span) + " crosses the end of " +
                         span_label(*open.back()),
                     "scoped spans must be disjoint or properly nested; a partial overlap "
                     "means the recorded timeline is corrupt");
        return;  // one finding per track; more would repeat the same corruption
      }
      open.push_back(&span);
    }
  }

  /// Engine cycles on a rank track (and negotiations on a simulated engine
  /// track) are issued by one sequential loop: each must end before the next
  /// begins.
  void check_cycle_monotonicity(std::pair<int, int> key, const Track& track) {
    for (const char* name : {"engine.cycle", "negotiate"}) {
      const Span* prev = nullptr;
      for (const Span& span : track.spans) {
        if (span.name != name) continue;
        if (prev != nullptr && span.start < prev->end) {
          diags_.error("V104", object_, track_label(key, track),
                       std::string(name) + " spans overlap: " + span_label(span) +
                           " starts before " + span_label(*prev) + " ends",
                       "the engine loop is sequential per rank; overlapping cycles mean "
                       "interleaved or re-ordered records");
          return;
        }
        prev = &span;
      }
      // Without cycle spans fall through to negotiate (DES engine tracks);
      // with them, negotiations nest inside cycles and need no separate check.
      if (std::any_of(track.spans.begin(), track.spans.end(),
                      [](const Span& s) { return s.name == "engine.cycle"; }))
        return;
    }
  }

  /// Data allreduces are collective: the k-th engine cycle must issue the
  /// same sequence (count and byte sizes) on every rank track.
  void check_cross_rank_matching() {
    struct RankView {
      std::string label;
      std::vector<std::vector<double>> per_cycle_bytes;  // cycle -> data-AR bytes, in order
    };
    std::vector<RankView> ranks;
    for (const auto& [key, track] : tracks_) {
      if (!track.thread_name.starts_with("rank ")) continue;
      RankView view;
      view.label = track.thread_name;
      std::vector<const Span*> cycles;
      for (const Span& span : track.spans)
        if (span.name == "engine.cycle") cycles.push_back(&span);
      view.per_cycle_bytes.resize(cycles.size());
      for (const Span& span : track.spans) {
        if (span.name != "allreduce.data") continue;
        for (std::size_t c = 0; c < cycles.size(); ++c) {
          if (span.start >= cycles[c]->start && span.start < cycles[c]->end) {
            view.per_cycle_bytes[c].push_back(span.bytes);
            break;
          }
        }
      }
      ranks.push_back(std::move(view));
    }
    if (ranks.size() < 2) return;  // single-process trace: nothing to match

    const RankView& ref = ranks.front();
    for (std::size_t r = 1; r < ranks.size(); ++r) {
      const RankView& other = ranks[r];
      if (other.per_cycle_bytes.size() != ref.per_cycle_bytes.size()) {
        diags_.error("V103", object_, other.label,
                     "rank shows " + std::to_string(other.per_cycle_bytes.size()) +
                         " engine cycles but " + ref.label + " shows " +
                         std::to_string(ref.per_cycle_bytes.size()) +
                         " (process() is collective)",
                     "a truncated or desynchronized recording; re-record the trace");
        continue;
      }
      for (std::size_t c = 0; c < ref.per_cycle_bytes.size(); ++c) {
        if (other.per_cycle_bytes[c] == ref.per_cycle_bytes[c]) continue;
        diags_.error("V103", object_, other.label,
                     "cycle " + std::to_string(c) + " issues " +
                         std::to_string(other.per_cycle_bytes[c].size()) +
                         " data allreduce(s) but " + ref.label + " issues " +
                         std::to_string(ref.per_cycle_bytes[c].size()) +
                         " or the fused byte counts differ (collectives must pair across "
                         "all ranks in the same cycle)",
                     "");
        break;
      }
    }
  }

  const std::string& text_;
  const std::string& object_;
  util::Diagnostics diags_;
  std::map<std::pair<int, int>, Track> tracks_;
};

}  // namespace

util::Diagnostics verify_trace_text(const std::string& json_text, const std::string& object) {
  return Verifier(json_text, object).run();
}

util::Diagnostics verify_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    util::Diagnostics diags;
    diags.error("V101", path, "file", "cannot open trace file", "");
    return diags;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return verify_trace_text(text.str(), path);
}

}  // namespace dnnperf::analysis
