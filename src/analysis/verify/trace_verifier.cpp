#include "analysis/verify/trace_verifier.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "prof/trace_model.hpp"

namespace dnnperf::analysis {

namespace {

using prof::Span;
using prof::TraceModel;
using prof::Track;

std::string span_label(const Span& s) {
  std::ostringstream os;
  os << s.name << " [" << s.start << ", " << s.end << ")";
  return os.str();
}

class Verifier {
 public:
  Verifier(const TraceModel& model, const std::string& object) : model_(model), object_(object) {}

  util::Diagnostics run() {
    for (const Track& track : model_.tracks) {
      check_nesting(track);
      check_cycle_monotonicity(track);
    }
    check_cross_rank_matching();
    return std::move(diags_);
  }

 private:
  /// Spans on one track come from nested RAII scopes: any two must be
  /// disjoint or properly nested. Sweep in start order (the model's sort)
  /// with a stack of open scope end times. Real spans share one clock, but
  /// DES parents and children quantize their (ts, dur) pairs to microseconds
  /// independently, so a child may outlive its parent by one rounding ulp —
  /// hence the 1 µs tolerance.
  void check_nesting(const Track& track) {
    std::vector<const Span*> open;
    for (const Span& span : track.spans) {
      while (!open.empty() && open.back()->end <= span.start) open.pop_back();
      if (!open.empty() && span.end > open.back()->end + 1.0) {
        diags_.error("V102", object_, track.label(),
                     "spans partially overlap: " + span_label(span) + " crosses the end of " +
                         span_label(*open.back()),
                     "scoped spans must be disjoint or properly nested; a partial overlap "
                     "means the recorded timeline is corrupt");
        return;  // one finding per track; more would repeat the same corruption
      }
      open.push_back(&span);
    }
  }

  /// Engine cycles on a rank track (and negotiations on a simulated engine
  /// track) are issued by one sequential loop: each must end before the next
  /// begins.
  void check_cycle_monotonicity(const Track& track) {
    for (const char* name : {"engine.cycle", "negotiate"}) {
      const Span* prev = nullptr;
      for (const Span& span : track.spans) {
        if (span.name != name) continue;
        if (prev != nullptr && span.start < prev->end) {
          diags_.error("V104", object_, track.label(),
                       std::string(name) + " spans overlap: " + span_label(span) +
                           " starts before " + span_label(*prev) + " ends",
                       "the engine loop is sequential per rank; overlapping cycles mean "
                       "interleaved or re-ordered records");
          return;
        }
        prev = &span;
      }
      // Without cycle spans fall through to negotiate (DES engine tracks);
      // with them, negotiations nest inside cycles and need no separate check.
      if (std::any_of(track.spans.begin(), track.spans.end(),
                      [](const Span& s) { return s.name == "engine.cycle"; }))
        return;
    }
  }

  /// Data allreduces are collective: the k-th engine cycle must issue the
  /// same sequence (count and byte sizes) on every rank track. DES "sim
  /// rank" tracks carry per-rank compute only and are exempt.
  void check_cross_rank_matching() {
    struct RankView {
      std::string label;
      std::vector<std::vector<double>> per_cycle_bytes;  // cycle -> data-AR bytes, in order
    };
    std::vector<RankView> ranks;
    for (const Track& track : model_.tracks) {
      if (!track.thread_name.starts_with("rank ")) continue;
      RankView view;
      view.label = track.thread_name;
      std::vector<const Span*> cycles;
      for (const Span& span : track.spans)
        if (span.name == "engine.cycle") cycles.push_back(&span);
      view.per_cycle_bytes.resize(cycles.size());
      for (const Span& span : track.spans) {
        if (span.name != "allreduce.data") continue;
        for (std::size_t c = 0; c < cycles.size(); ++c) {
          if (span.start >= cycles[c]->start && span.start < cycles[c]->end) {
            view.per_cycle_bytes[c].push_back(span.bytes);
            break;
          }
        }
      }
      ranks.push_back(std::move(view));
    }
    if (ranks.size() < 2) return;  // single-process trace: nothing to match

    const RankView& ref = ranks.front();
    for (std::size_t r = 1; r < ranks.size(); ++r) {
      const RankView& other = ranks[r];
      if (other.per_cycle_bytes.size() != ref.per_cycle_bytes.size()) {
        diags_.error("V103", object_, other.label,
                     "rank shows " + std::to_string(other.per_cycle_bytes.size()) +
                         " engine cycles but " + ref.label + " shows " +
                         std::to_string(ref.per_cycle_bytes.size()) +
                         " (process() is collective)",
                     "a truncated or desynchronized recording; re-record the trace");
        continue;
      }
      for (std::size_t c = 0; c < ref.per_cycle_bytes.size(); ++c) {
        if (other.per_cycle_bytes[c] == ref.per_cycle_bytes[c]) continue;
        diags_.error("V103", object_, other.label,
                     "cycle " + std::to_string(c) + " issues " +
                         std::to_string(other.per_cycle_bytes[c].size()) +
                         " data allreduce(s) but " + ref.label + " issues " +
                         std::to_string(ref.per_cycle_bytes[c].size()) +
                         " or the fused byte counts differ (collectives must pair across "
                         "all ranks in the same cycle)",
                     "");
        break;
      }
    }
  }

  const TraceModel& model_;
  const std::string& object_;
  util::Diagnostics diags_;
};

}  // namespace

util::Diagnostics verify_trace_text(const std::string& json_text, const std::string& object) {
  util::Diagnostics diags;
  const TraceModel model = prof::parse_trace(json_text, object, diags);
  if (diags.has_errors()) return diags;
  util::Diagnostics checks = Verifier(model, object).run();
  diags.merge(checks);
  return diags;
}

util::Diagnostics verify_trace_file(const std::string& path) {
  util::Diagnostics diags;
  const TraceModel model = prof::parse_trace_file(path, diags);
  if (diags.has_errors()) return diags;
  util::Diagnostics checks = Verifier(model, path).run();
  diags.merge(checks);
  return diags;
}

}  // namespace dnnperf::analysis
