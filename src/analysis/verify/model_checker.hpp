// Exhaustive small-scope model checker over the abstract Horovod engine
// protocol (hvd/protocol.hpp). BFS from the initial state over every
// interleaving of per-rank submissions, engine cycles, and — within the
// spec's fault budget — crash/rejoin events, with canonicalized states
// (rank-symmetry reduction) keying the visited set. Because submissions and
// completions are monotone and the fault budget is finite, every maximal run
// ends in either full completion or a stuck state, so the checker's verdicts
// are exact within the bounds:
//
//   V001  deadlock — reachable state where no rank can submit and the engine
//         cycle is a no-op, with tensors still incomplete (the hang mode
//         Horovod's stall detector watches for, e.g. rank-permuted
//         submission under a bounded window);
//   V002  starvation — a tensor that no interleaving can ever complete
//         (larger than a strict-capacity fusion buffer, or missing from a
//         rank's submission program);
//   V003  accounting — a cycle issues a data allreduce that ships no new
//         tensor (re-issuing completed work ⇒ issued > requested);
//   V004  overflow — a planned fusion buffer exceeds the capacity bound;
//   V005  readiness — a data allreduce ships a tensor some rank never
//         submitted (coordination unsoundness, e.g. Max- instead of
//         Min-reduce);
//   V006  (warning) exploration truncated at the state bound.
//
// Elastic verdicts (fault transitions are *environment* events: they are
// interleaved at every reachable state but never count toward a state's
// enabledness — a correct elastic engine must make progress with whatever
// membership it has, because a rescuing rejoin may never come):
//
//   V201  deadlock-on-crash — the survivors' negotiation still waits on a
//         crashed rank (e.g. the readiness Min-reduce was never re-formed
//         over the shrunk membership set);
//   V202  lost gradient — a crash/rejoin event changes the completion set
//         without a data allreduce (a crashed rank's submitted tensor is
//         silently dropped from the sum);
//   V203  ghost contribution — a data allreduce ships a tensor no alive rank
//         submitted, counting a crashed rank's stale readiness bits after
//         the shrink;
//   V204  double count — after a rejoin, a cycle re-ships a tensor that was
//         already reduced (journal replay past the completion mask);
//   V205  non-convergent regrow — a rejoin admission never completes:
//         membership never re-stabilizes and data cycles stay suspended.
//
// BFS order makes the first violation's trace minimal; it is rendered as a
// step-by-step counterexample in the diagnostic hint.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hvd/protocol.hpp"
#include "util/diag.hpp"

namespace dnnperf::analysis {

struct ModelCheckOptions {
  /// Exploration cap; hitting it emits V006 and marks the result incomplete.
  std::size_t max_states = std::size_t{1} << 20;
};

struct ModelCheckResult {
  util::Diagnostics diags;
  std::size_t states_explored = 0;
  std::size_t transitions = 0;
  /// False when max_states truncated the exploration (V006).
  bool complete = true;
  /// True when some interleaving reaches full completion.
  bool goal_reached = false;
  /// Minimal trace to the first violation, one action per step; empty when
  /// the protocol verifies clean.
  std::vector<std::string> counterexample;
};

/// Explores `spec` exhaustively. Throws std::invalid_argument on malformed
/// specs (ProtocolSpec::validate). Exploration stops at the first violation
/// (its BFS depth is minimal) or when the state space is exhausted.
ModelCheckResult check_protocol(const hvd::ProtocolSpec& spec,
                                const ModelCheckOptions& options = {});

}  // namespace dnnperf::analysis
