// Exhaustive small-scope model checker over the abstract Horovod engine
// protocol (hvd/protocol.hpp). BFS from the initial state over every
// interleaving of per-rank submissions and engine cycles, with canonical
// state hashing (rank-symmetry reduction), up to the spec's rank/tensor
// bounds. Because submissions and completions are monotone, every maximal
// run ends in either full completion or a stuck state, so the checker's
// verdicts are exact within the bounds:
//
//   V001  deadlock — reachable state where no rank can submit and the engine
//         cycle is a no-op, with tensors still incomplete (the hang mode
//         Horovod's stall detector watches for, e.g. rank-permuted
//         submission under a bounded window);
//   V002  starvation — a tensor that no interleaving can ever complete
//         (larger than a strict-capacity fusion buffer, or missing from a
//         rank's submission program);
//   V003  accounting — a cycle issues a data allreduce that ships no new
//         tensor (re-issuing completed work ⇒ issued > requested);
//   V004  overflow — a planned fusion buffer exceeds the capacity bound;
//   V005  readiness — a data allreduce ships a tensor some rank never
//         submitted (coordination unsoundness, e.g. Max- instead of
//         Min-reduce);
//   V006  (warning) exploration truncated at the state bound.
//
// BFS order makes the first violation's trace minimal; it is rendered as a
// step-by-step counterexample in the diagnostic hint.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hvd/protocol.hpp"
#include "util/diag.hpp"

namespace dnnperf::analysis {

struct ModelCheckOptions {
  /// Exploration cap; hitting it emits V006 and marks the result incomplete.
  std::size_t max_states = std::size_t{1} << 20;
};

struct ModelCheckResult {
  util::Diagnostics diags;
  std::size_t states_explored = 0;
  std::size_t transitions = 0;
  /// False when max_states truncated the exploration (V006).
  bool complete = true;
  /// True when some interleaving reaches full completion.
  bool goal_reached = false;
  /// Minimal trace to the first violation, one action per step; empty when
  /// the protocol verifies clean.
  std::vector<std::string> counterexample;
};

/// Explores `spec` exhaustively. Throws std::invalid_argument on malformed
/// specs (ProtocolSpec::validate). Exploration stops at the first violation
/// (its BFS depth is minimal) or when the state space is exhausted.
ModelCheckResult check_protocol(const hvd::ProtocolSpec& spec,
                                const ModelCheckOptions& options = {});

}  // namespace dnnperf::analysis
