// Policy and schedule pass families (H-codes, S-codes): the paper's
// Section-V/IX tuning rules as lints. H-codes check the Horovod engine knobs
// against the model's gradient tensors and the fabric; S-codes check a full
// train::TrainConfig — oversubscription, NUMA alignment, batch shape,
// memory fit, and the intra/inter thread rules.
#pragma once

#include <string>

#include "dnn/graph.hpp"
#include "hvd/policy.hpp"
#include "net/link.hpp"
#include "train/trainer.hpp"
#include "util/diag.hpp"

namespace dnnperf::analysis {

/// H-codes for `policy`. `graph` and `inter_node` refine the checks when
/// available (fusion vs largest gradient tensor, cycle time vs fabric
/// latency); pass nullptr to skip those.
void run_policy_passes(const hvd::FusionPolicy& policy, const dnn::Graph* graph,
                       const net::LinkParams* inter_node, const std::string& object,
                       util::Diagnostics& diags);

/// S-codes for `config`. Assumes cluster-level P-codes are checked
/// separately; skips checks whose prerequisites already failed.
void run_schedule_passes(const train::TrainConfig& config, const std::string& object,
                         util::Diagnostics& diags);

/// Memory-fit subset of the S-codes (S008, S013), run against an explicit
/// graph — the one the config would actually execute after optimization.
/// S008 compares the tensor-lifetime memory plan (src/opt) against the
/// per-rank budget; S013 cross-checks the plan against the legacy
/// reuse-optimistic estimate and flags a >2x divergence. Exposed separately
/// so tests can drive it with crafted graphs.
void run_memory_passes(const dnn::Graph& graph, const train::TrainConfig& config,
                       const std::string& object, util::Diagnostics& diags);

}  // namespace dnnperf::analysis
