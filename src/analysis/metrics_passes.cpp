#include "analysis/metrics_passes.hpp"

#include <cmath>
#include <map>
#include <vector>

namespace dnnperf::analysis {

namespace {

bool prometheus_name_ok(const std::string& name) {
  if (name.empty()) return false;
  const auto head_ok = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  const auto tail_ok = [&](char c) { return head_ok(c) || (c >= '0' && c <= '9'); };
  if (!head_ok(name.front())) return false;
  for (std::size_t i = 1; i < name.size(); ++i)
    if (!tail_ok(name[i])) return false;
  return true;
}

}  // namespace

void run_metrics_passes(const util::metrics::Snapshot& snap, const std::string& object,
                        util::Diagnostics& diags) {
  // M001: the registry keys metrics by (name, kind), so re-registering a name
  // under a different kind silently creates a second metric. Exporters then
  // emit two series under one name — Prometheus rejects the exposition and
  // diff tooling matches the wrong one.
  std::map<std::string, std::vector<util::metrics::Kind>> kinds_by_name;
  for (const auto& m : snap.metrics) kinds_by_name[m.name].push_back(m.kind);
  for (const auto& [name, kinds] : kinds_by_name) {
    if (kinds.size() < 2) continue;
    std::string listing;
    for (const auto& k : kinds) {
      if (!listing.empty()) listing += ", ";
      listing += util::metrics::to_string(k);
    }
    diags.error("M001", object, name,
                "metric registered under " + std::to_string(kinds.size()) + " kinds (" +
                    listing + ")",
                "pick one kind per name; rename one of the registrations");
  }

  // M002: Prometheus metric-name charset. The repo's naming scheme also wants
  // the <layer>_<what> shape, but only the charset is an invariant.
  for (const auto& m : snap.metrics) {
    if (!prometheus_name_ok(m.name))
      diags.error("M002", object, m.name,
                  "metric name outside the Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]*",
                  "use lowercase letters, digits, and underscores; start with a letter");
  }

  // M003: every exported value must be finite. The classic producer is a
  // ratio/rate gauge computed before its denominator ever ticked (0/0 NaN on
  // an idle service); NaN also breaks JSON round-tripping and diff ordering.
  for (const auto& m : snap.metrics) {
    const bool finite = std::isfinite(m.value) && std::isfinite(m.hist.sum) &&
                        std::isfinite(m.hist.min) && std::isfinite(m.hist.max);
    if (!finite)
      diags.error("M003", object, m.name, "metric carries a non-finite value",
                  "guard the computation (publish 0 until the first sample) instead of "
                  "exporting NaN/Inf");
  }
}

}  // namespace dnnperf::analysis
