#include "analysis/registry.hpp"

#include <stdexcept>
#include <unordered_map>

namespace dnnperf::analysis {

const std::vector<PassInfo>& pass_registry() {
  using util::Severity;
  static const std::vector<PassInfo> table = {
      // ---- graph passes ----------------------------------------------------
      {"G001", Severity::Error, "graph",
       "op output shape inconsistent with its inputs (shape inference re-check)"},
      {"G002", Severity::Error, "graph",
       "malformed dataflow: empty graph, non-Input op without inputs, Input with inputs, "
       "or input ids out of range / not topological"},
      {"G003", Severity::Warn, "graph",
       "dead op: output never consumed and not the terminal op"},
      {"G004", Severity::Error, "graph", "op unreachable from the graph input"},
      {"G005", Severity::Error, "graph",
       "non-finite or negative FLOP/parameter/byte counts, or parameters on an op kind "
       "that cannot carry them"},
      {"G006", Severity::Error, "graph",
       "gradient tensor list inconsistent with the graph's parameter totals"},
      {"G007", Severity::Warn, "graph", "duplicate op name"},
      {"G008", Severity::Error, "graph",
       "op id does not match its position in the op vector (Graph::from_ops contract; "
       "every id-indexed lookup would read the wrong op)"},
      // ---- platform passes -------------------------------------------------
      {"P001", Severity::Error, "platform",
       "non-positive socket, core, NUMA-domain, or hardware-thread count"},
      {"P002", Severity::Error, "platform",
       "cores per socket not divisible by NUMA domains per socket"},
      {"P003", Severity::Error, "platform", "threads per core not in {1, 2, 4}"},
      {"P004", Severity::Error, "platform",
       "SMT speedup fraction outside [0, 1] or set while SMT is off"},
      {"P005", Severity::Warn, "platform", "core clock outside the sane range [0.8, 5.0] GHz"},
      {"P006", Severity::Warn, "platform",
       "per-socket memory bandwidth outside the sane range [10, 600] GB/s"},
      {"P007", Severity::Warn, "platform",
       "fp32 FLOPs per cycle per core outside the sane range [1, 256]"},
      {"P008", Severity::Error, "platform",
       "cluster invariant violated: max_nodes <= 0 or node memory <= 0"},
      {"P009", Severity::Error, "platform",
       "GPU model invalid: non-positive rates, memory, fraction, or devices per node"},
      // ---- network passes --------------------------------------------------
      {"N001", Severity::Error, "network",
       "link parameters invalid: negative latency/overhead or non-positive bandwidth"},
      {"N002", Severity::Error, "network",
       "rank pair unreachable or node/local-rank mapping inconsistent"},
      {"N003", Severity::Warn, "network",
       "latency inversion: intra-node latency exceeds inter-node latency"},
      {"N004", Severity::Advice, "network",
       "intra-node bandwidth below inter-node bandwidth; shared-memory staging can "
       "bottleneck hierarchical collectives"},
      {"N005", Severity::Warn, "network",
       "bandwidth or latency outside sane physical ranges"},
      // ---- Horovod policy passes -------------------------------------------
      {"H001", Severity::Error, "policy", "cycle time non-positive or non-finite"},
      {"H002", Severity::Error, "policy", "fusion threshold non-positive or non-finite"},
      {"H003", Severity::Advice, "policy",
       "cycle time mismatched to the fabric: shorter than a negotiation round trip, or so "
       "long that ready gradients stall"},
      {"H004", Severity::Warn, "policy",
       "largest gradient tensor exceeds the fusion threshold and is always sent unfused"},
      {"H005", Severity::Advice, "policy",
       "fusion threshold is over 4x the model's total gradient bytes (possible unit "
       "error; fusion tuning has no effect)"},
      // ---- schedule / run-configuration passes -----------------------------
      {"S001", Severity::Error, "schedule",
       "non-positive nodes, ppn, or batch size, or optimizer level outside [0, 2]"},
      {"S002", Severity::Error, "schedule", "nodes exceed the cluster's size"},
      {"S003", Severity::Error, "schedule", "ppn exceeds the node's physical cores (CPU run)"},
      {"S004", Severity::Error, "schedule",
       "ppn x intra-op threads exceed the node's hardware threads (hard oversubscription)"},
      {"S005", Severity::Warn, "schedule",
       "ppn x intra-op threads exceed physical cores (Warn when SMT is off, Advice when "
       "SMT absorbs the extra threads)"},
      {"S006", Severity::Error, "schedule", "multi-rank run without Horovod enabled"},
      {"S007", Severity::Error, "schedule",
       "GPU run on a CPU-only cluster, or ppn exceeds GPUs per node"},
      {"S008", Severity::Warn, "schedule",
       "tensor-lifetime memory plan (weights + gradients + optimizer state + planned "
       "activation slab) exceeds the per-rank memory budget"},
      {"S009", Severity::Advice, "schedule",
       "no spare core for the Horovod progress thread (paper rule: intra-op = cores/ppn "
       "- 1)"},
      {"S010", Severity::Advice, "schedule",
       "ppn misaligned with NUMA domains; ranks span domains and pay remote-memory "
       "penalties"},
      {"S011", Severity::Advice, "schedule",
       "per-rank batch not a multiple of 8; SIMD and cache blocking run partially empty"},
      {"S012", Severity::Advice, "schedule",
       "TensorFlow inter-op threads off the paper's tuned rule (2 with SMT, 1 without)"},
      {"S013", Severity::Warn, "schedule",
       "reuse-optimistic footprint estimate diverges from the tensor-lifetime plan by "
       "more than 2x (one of the two memory models is mis-stating this graph)"},
      // ---- advisor-request validation (core::AdvisorService) ---------------
      {"A001", Severity::Error, "advisor",
       "candidate grid is empty: no batch sizes to search (a silent empty search "
       "would return a zero-throughput Recommendation)"},
      {"A002", Severity::Error, "advisor",
       "requested node count outside [1, cluster max_nodes]"},
      {"A003", Severity::Error, "advisor",
       "infeasible candidate value: non-positive batch/ppn, ppn above the GPUs per "
       "node, or a GPU search on a CPU-only cluster"},
      // ---- graph-optimizer equivalence checker (src/opt) --------------------
      {"O001", Severity::Error, "optimizer",
       "rewritten graph fails structure or shape re-inference: broken ids/topology, "
       "lost inputs, or op accounting inconsistent with its shape"},
      {"O002", Severity::Error, "optimizer",
       "declared RewriteLog deltas disagree with the actual change in graph totals "
       "(params / FLOPs / activation bytes)"},
      {"O003", Severity::Error, "optimizer",
       "folded conv+BN weights diverge from the reference BN affine transform beyond "
       "tolerance (unsound fusion; hint carries the minimal rewrite trace)"},
      {"O004", Severity::Error, "optimizer",
       "rewrite changed the model's observable interface (terminal output shape or "
       "Input op count/shapes)"},
      // ---- metrics-registry passes -----------------------------------------
      {"M001", Severity::Error, "metrics",
       "metric name registered under more than one kind (duplicate registration)"},
      {"M002", Severity::Error, "metrics",
       "metric name outside the Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]*"},
      {"M003", Severity::Error, "metrics",
       "non-finite metric value (NaN/Inf gauge or histogram statistic), typically a "
       "ratio or rate computed before its denominator ever ticked"},
      // ---- protocol model-checker verdicts (verify_engine) -----------------
      {"V001", Severity::Error, "verify-engine",
       "deadlock: a reachable state where no rank can submit and the engine cycle "
       "packs nothing, with tensors incomplete"},
      {"V002", Severity::Error, "verify-engine",
       "starvation: a tensor no interleaving can complete (e.g. larger than a "
       "strict-capacity fusion buffer)"},
      {"V003", Severity::Error, "verify-engine",
       "accounting: a cycle re-issues a completed tensor, so engine-issued "
       "allreduces exceed framework requests"},
      {"V004", Severity::Error, "verify-engine",
       "overflow: a planned fusion buffer exceeds the capacity bound"},
      {"V005", Severity::Error, "verify-engine",
       "readiness: a data allreduce ships a tensor some rank never submitted"},
      {"V006", Severity::Warn, "verify-engine",
       "exploration truncated at the state bound; verification incomplete"},
      // ---- happens-before trace verdicts (verify_trace) --------------------
      {"V101", Severity::Error, "verify-trace",
       "malformed trace document: unparseable JSON or events missing required fields"},
      {"V102", Severity::Error, "verify-trace",
       "span nesting violation: complete events on one track partially overlap"},
      {"V103", Severity::Error, "verify-trace",
       "cross-rank mismatch: engine cycles or per-cycle data-allreduce sequences "
       "differ between rank tracks"},
      {"V104", Severity::Error, "verify-trace",
       "cycle monotonicity violation: a rank's engine cycles overlap in time"},
      // ---- elastic model-checker verdicts (verify_config_elastic) ----------
      {"V201", Severity::Error, "verify-elastic",
       "deadlock-on-crash: the survivors' negotiation still waits on a crashed rank "
       "(readiness Min-reduce never re-formed over the shrunk membership set)"},
      {"V202", Severity::Error, "verify-elastic",
       "lost gradient: crash handling marks a submitted tensor completed without a "
       "data allreduce, silently dropping it from the sum"},
      {"V203", Severity::Error, "verify-elastic",
       "ghost contribution: a crashed rank's stale readiness bits are still counted "
       "after the shrink — a tensor ships that no alive rank submitted"},
      {"V204", Severity::Error, "verify-elastic",
       "double count: a rejoin replays completed tensors past the completion mask "
       "into a second data allreduce"},
      {"V205", Severity::Error, "verify-elastic",
       "non-convergent regrow: a rejoin admission never completes; membership never "
       "re-stabilizes and data cycles stay suspended"},
      // ---- profiler verdicts (src/prof) -------------------------------------
      {"T001", Severity::Warn, "profile",
       "phase accounting gap: more than the threshold fraction of step time falls "
       "outside the input/forward/backward/exchange/optimizer scopes"},
      {"T002", Severity::Advice, "profile",
       "compute-communication overlap below half the fusion policy's achievable bound "
       "(1 - cycle_time / backward_time)"},
      {"T003", Severity::Warn, "profile",
       "straggler skew: inter-rank backward completion spread exceeds the threshold "
       "fraction of step time (synchronous SGD runs at the slowest rank's pace)"},
      {"T004", Severity::Advice, "profile",
       "allreduce efficiency: a tensor-size bucket achieves under half the collective "
       "cost model's bandwidth"},
      {"T005", Severity::Error, "profile",
       "no profilable step structure: no track in the trace carries 'step' spans"},
      // ---- fault-scenario passes (lint_faults) ------------------------------
      {"F001", Severity::Error, "scenario",
       "scenario references a nonexistent rank, or carries malformed event values "
       "(non-positive slowdown factor, negative step, empty step range)"},
      {"F002", Severity::Error, "scenario",
       "rejoin scheduled at or before the rank's crash (or with no crash at all); "
       "a rank cannot regrow into a ring it never left"},
      {"F003", Severity::Error, "scenario",
       "crash schedule exceeds the fault budget, or leaves no rank alive at some step"},
      {"F004", Severity::Error, "scenario",
       "degraded link level absent from the run's topology (inter-node on one node, "
       "intra-node at ppn=1, intra-NUMA without a NUMA stage), or non-positive factors"},
  };
  return table;
}

const PassInfo& pass_info(const std::string& code) {
  // Built once: lint_config alone performs dozens of lookups per run, and a
  // linear scan per lookup made registry access quadratic in pass count.
  static const std::unordered_map<std::string, std::size_t> index = [] {
    std::unordered_map<std::string, std::size_t> m;
    const auto& table = pass_registry();
    m.reserve(table.size());
    for (std::size_t i = 0; i < table.size(); ++i) m.emplace(table[i].code, i);
    return m;
  }();
  const auto it = index.find(code);
  if (it == index.end()) throw std::out_of_range("unknown pass code: " + code);
  return pass_registry()[it->second];
}

}  // namespace dnnperf::analysis
