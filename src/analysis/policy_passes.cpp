#include "analysis/policy_passes.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "dnn/report.hpp"
#include "opt/memory_planner.hpp"
#include "opt/passes.hpp"
#include "util/units.hpp"

namespace dnnperf::analysis {

namespace {

std::string mib(double bytes) {
  return std::to_string(bytes / (1024.0 * 1024.0)) + " MiB";
}

}  // namespace

void run_policy_passes(const hvd::FusionPolicy& policy, const dnn::Graph* graph,
                       const net::LinkParams* inter_node, const std::string& object,
                       util::Diagnostics& diags) {
  bool cycle_ok = true;
  if (!std::isfinite(policy.cycle_time_s) || policy.cycle_time_s <= 0.0) {
    diags.error("H001", object, "cycle_time_s", "cycle time must be positive and finite",
                "Horovod's default is 3.5 ms");
    cycle_ok = false;
  }
  bool threshold_ok = true;
  if (!std::isfinite(policy.fusion_threshold_bytes) || policy.fusion_threshold_bytes <= 0.0) {
    diags.error("H002", object, "fusion_threshold_bytes",
                "fusion threshold must be positive and finite",
                "Horovod's default is 64 MiB");
    threshold_ok = false;
  }

  if (cycle_ok && inter_node != nullptr) {
    // A negotiation round is at least one fabric round trip; waking the
    // engine faster than that burns CPU without advancing fusion. The other
    // direction: past ~100 ms, ready gradients sit a full backward pass.
    const double rtt = 2.0 * (inter_node->latency_s + inter_node->per_msg_overhead_s);
    if (policy.cycle_time_s < 10.0 * rtt)
      diags.advice("H003", object, "cycle_time_s",
                   "cycle time " + std::to_string(policy.cycle_time_s * 1e6) +
                       " us is under 10x the fabric round trip; wake-ups outpace "
                       "negotiation",
                   "raise HOROVOD_CYCLE_TIME toward the paper's 1-5 ms band");
    else if (policy.cycle_time_s > 0.1)
      diags.advice("H003", object, "cycle_time_s",
                   "cycle time above 100 ms; gradients stall waiting for the engine",
                   "lower HOROVOD_CYCLE_TIME toward the paper's 1-5 ms band");
  }

  if (threshold_ok && graph != nullptr) {
    const auto tensors = graph->gradient_tensor_bytes();
    double largest = 0.0;
    double total = 0.0;
    for (double b : tensors) {
      largest = std::max(largest, b);
      total += b;
    }
    if (largest > policy.fusion_threshold_bytes)
      diags.warn("H004", object, "fusion_threshold_bytes",
                 "largest gradient tensor (" + mib(largest) + ") exceeds the fusion "
                     "threshold (" + mib(policy.fusion_threshold_bytes) +
                     "); it is always sent unfused",
                 "raise HOROVOD_FUSION_THRESHOLD above the largest tensor to let it "
                 "pack with neighbors");
    if (total > 0.0 && policy.fusion_threshold_bytes > 4.0 * total)
      diags.advice("H005", object, "fusion_threshold_bytes",
                   "fusion threshold (" + mib(policy.fusion_threshold_bytes) +
                       ") is over 4x the model's total gradients (" + mib(total) + ")",
                   "likely a bytes-vs-MiB unit error; fusion tuning has no effect here");
  }
}

void run_schedule_passes(const train::TrainConfig& cfg, const std::string& object,
                         util::Diagnostics& diags) {
  const auto& cpu = cfg.cluster.node.cpu;

  bool sizes_ok = true;
  if (cfg.nodes <= 0) {
    diags.error("S001", object, "nodes", "non-positive node count");
    sizes_ok = false;
  }
  if (cfg.ppn <= 0) {
    diags.error("S001", object, "ppn", "non-positive processes per node");
    sizes_ok = false;
  }
  if (cfg.batch_per_rank <= 0) {
    diags.error("S001", object, "batch_per_rank", "non-positive batch size");
    sizes_ok = false;
  }
  if (cfg.opt_level < 0 || cfg.opt_level > 2) {
    diags.error("S001", object, "opt_level",
                "optimizer level " + std::to_string(cfg.opt_level) + " outside [0, 2]",
                "0 = as built, 1 = elimination, 2 = elimination + fusion");
    sizes_ok = false;
  }
  if (!sizes_ok) return;

  if (cfg.nodes > cfg.cluster.max_nodes)
    diags.error("S002", object, "nodes",
                std::to_string(cfg.nodes) + " nodes requested on a " +
                    std::to_string(cfg.cluster.max_nodes) + "-node cluster");

  const int world = cfg.nodes * cfg.ppn;
  if (world > 1 && !cfg.use_horovod)
    diags.error("S006", object, "use_horovod",
                "multi-rank run without Horovod; ranks would never synchronize",
                "enable use_horovod or set nodes = ppn = 1");

  if (cfg.device == train::DeviceKind::Gpu) {
    if (!cfg.cluster.node.has_gpu()) {
      diags.error("S007", object, "device", "GPU run on a CPU-only cluster");
    } else if (cfg.ppn > cfg.cluster.node.gpu->devices_per_node) {
      diags.error("S007", object, "ppn",
                  std::to_string(cfg.ppn) + " ranks per node but only " +
                      std::to_string(cfg.cluster.node.gpu->devices_per_node) +
                      " GPUs per node");
    }
  } else {
    // CPU thread placement: the paper's core rules (Section V / IX).
    const int cores = cpu.total_cores();
    const int hw_threads = cpu.total_hw_threads();
    if (cores <= 0) return;  // P-codes already flagged the platform
    if (cfg.ppn > cores)
      diags.error("S003", object, "ppn",
                  std::to_string(cfg.ppn) + " ranks per node exceed " +
                      std::to_string(cores) + " physical cores",
                  "even PyTorch's one-core-per-rank best case tops out at ppn = cores");

    const auto threads = train::resolve_thread_config(cfg);
    const int demand = cfg.ppn * threads.intra;
    if (demand > hw_threads)
      diags.error("S004", object, "intra_threads",
                  "ppn x intra-op = " + std::to_string(demand) + " threads exceed " +
                      std::to_string(hw_threads) + " hardware threads",
                  "oversubscribed cores thrash; cap intra-op at cores/ppn");
    else if (demand > cores) {
      if (cpu.threads_per_core > 1)
        diags.advice("S005", object, "intra_threads",
                     "ppn x intra-op = " + std::to_string(demand) + " threads exceed " +
                         std::to_string(cores) + " physical cores; SMT absorbs them at " +
                         "a fraction of a core each",
                     "the paper's EPYC sweet spot does this deliberately (16 x 5 on 64 "
                     "cores); verify it wins on your platform");
      else
        diags.warn("S005", object, "intra_threads",
                   "ppn x intra-op = " + std::to_string(demand) + " threads exceed " +
                       std::to_string(cores) + " physical cores with SMT off",
                   "threads time-slice instead of running; expect a slowdown");
    }

    const bool horovod_active = cfg.use_horovod && world > 1;
    const int cores_per_rank = std::max(1, cores / cfg.ppn);
    // Only actionable when the rank has a core to give up; one-core ranks
    // (PyTorch's ppn = cores) share by construction and the timeline model
    // already charges the wake-up tax.
    if (horovod_active && cores_per_rank > 1 && threads.intra >= cores_per_rank &&
        demand <= hw_threads)
      diags.advice("S009", object, "intra_threads",
                   "no spare core for the Horovod progress thread; every wake-up "
                   "steals compute",
                   "the paper's rule: intra-op = cores/ppn - 1");

    const int numa = cpu.numa_domains();
    if (numa > 1 && cfg.ppn % numa != 0 && numa % cfg.ppn != 0)
      diags.advice("S010", object, "ppn",
                   "ppn " + std::to_string(cfg.ppn) + " does not align with " +
                       std::to_string(numa) + " NUMA domains; some ranks span domains",
                   "pick ppn as a multiple (or divisor) of the NUMA domain count");

    if (cfg.framework == exec::Framework::TensorFlow) {
      const int tuned_inter = cpu.threads_per_core > 1 ? 2 : 1;
      if (cfg.inter_threads != 0 && cfg.inter_threads != tuned_inter)
        diags.advice("S012", object, "inter_threads",
                     "inter-op " + std::to_string(cfg.inter_threads) +
                         " differs from the paper's tuned " + std::to_string(tuned_inter) +
                         " for this platform",
                     "Section IX: 2 inter-op threads on SMT parts, 1 otherwise");
    }
  }

  if (cfg.batch_per_rank % 8 != 0)
    diags.advice("S011", object, "batch_per_rank",
                 "batch " + std::to_string(cfg.batch_per_rank) + " is not a multiple of 8",
                 "SIMD lanes and GEMM blocking run partially empty on ragged batches");

  // Memory fit against the graph the run would actually execute: apply the
  // same optimizer passes the trainer would (equivalence diagnostics for
  // them surface through lint_config, not here).
  dnn::Graph graph = dnn::build_model(cfg.model);
  if (cfg.opt_level > 0) {
    opt::OptOptions oo;
    oo.level = cfg.opt_level;
    oo.pass_mask = cfg.opt_pass_mask;
    graph = opt::optimize(graph, oo).graph;
  }
  run_memory_passes(graph, cfg, object, diags);
}

void run_memory_passes(const dnn::Graph& graph, const train::TrainConfig& cfg,
                       const std::string& object, util::Diagnostics& diags) {
  if (cfg.batch_per_rank <= 0 || cfg.ppn <= 0) return;  // S001 already fired
  const double gib = 1024.0 * 1024.0 * 1024.0;
  const double budget = cfg.device == train::DeviceKind::Gpu && cfg.cluster.node.has_gpu()
                            ? cfg.cluster.node.gpu->memory_gib * gib
                            : cfg.cluster.node.memory_gib * gib / cfg.ppn;
  if (budget <= 0.0) return;  // P-codes already flagged the platform

  // S008: the tensor-lifetime plan is the footprint a framework that reuses
  // buffers optimally would need — weights, gradients, optimizer state, plus
  // the greedily-colored activation/gradient slab. Exceeding the budget with
  // this plan means no schedule-preserving allocator fits the run.
  const opt::MemoryPlan plan = opt::plan_memory(graph, cfg.batch_per_rank);
  if (plan.total_bytes() > budget) {
    const int max_bs = opt::max_batch_for_plan(graph, budget);
    diags.warn("S008", object, "batch_per_rank",
               "tensor-lifetime memory plan of " + std::to_string(plan.total_bytes() / gib) +
                   " GiB (" + std::to_string(plan.persistent_bytes() / gib) +
                   " GiB persistent + " + std::to_string(plan.slab_bytes / gib) +
                   " GiB activation slab) exceeds the per-rank budget " +
                   std::to_string(budget / gib) + " GiB",
               "largest per-rank batch the plan fits: " + std::to_string(max_bs));
  }

  // S013: cross-check the plan against the legacy reuse-optimistic estimate
  // (single activation copy, no per-tensor lifetimes). The two models bound
  // each other loosely; >2x divergence in either direction means one of them
  // mis-states this graph.
  const auto mem = dnn::training_memory(graph, cfg.batch_per_rank);
  const double optimistic =
      mem.weight_bytes + mem.gradient_bytes + mem.optimizer_bytes + mem.activation_bytes;
  const double exact = plan.total_bytes();
  if (optimistic > 0.0 && exact > 0.0) {
    const double ratio = exact / optimistic;
    if (ratio > 2.0 || ratio < 0.5)
      diags.warn("S013", object, "batch_per_rank",
                 "tensor-lifetime plan (" + std::to_string(exact / gib) +
                     " GiB) and reuse-optimistic estimate (" + std::to_string(optimistic / gib) +
                     " GiB) diverge " + std::to_string(ratio) + "x",
                 "one of the two memory models mis-states this graph; trust neither "
                 "until the divergence is explained");
  }
}

}  // namespace dnnperf::analysis
