#include "dnn/report.hpp"

#include <map>
#include <sstream>

#include "util/units.hpp"

namespace dnnperf::dnn {

util::TextTable stats_table(
    const std::vector<std::pair<std::string, const util::RunStats*>>& rows,
    double unit_scale, const std::string& unit, int digits) {
  util::TextTable table({"phase", "n", "mean (" + unit + ")", "CV", "p50", "p95", "p99",
                         "min", "max"});
  for (const auto& [name, s] : rows)
    table.add_row({name, std::to_string(s->count()),
                   util::TextTable::num(s->mean() * unit_scale, digits),
                   util::TextTable::num(s->coeff_of_variation(), 3),
                   util::TextTable::num(s->p50() * unit_scale, digits),
                   util::TextTable::num(s->p95() * unit_scale, digits),
                   util::TextTable::num(s->p99() * unit_scale, digits),
                   util::TextTable::num(s->min() * unit_scale, digits),
                   util::TextTable::num(s->max() * unit_scale, digits)});
  return table;
}

util::TextTable summary_table(const Graph& graph, std::size_t max_rows) {
  util::TextTable table({"#", "name", "kind", "output", "params", "fwd GFLOP/img"});
  const auto& ops = graph.ops();
  const std::size_t rows = max_rows == 0 ? ops.size() : std::min(max_rows, ops.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const Op& op = ops[i];
    std::ostringstream shape;
    shape << op.out.c << "x" << op.out.h << "x" << op.out.w;
    table.add_row({std::to_string(op.id), op.name, to_string(op.kind), shape.str(),
                   util::TextTable::num(op.params, 0),
                   util::TextTable::num(op.fwd_flops / 1e9, 4)});
  }
  return table;
}

util::TextTable kind_breakdown(const Graph& graph) {
  struct Agg {
    int count = 0;
    double params = 0.0;
    double fwd = 0.0;
    double bwd = 0.0;
    double act_bytes = 0.0;
  };
  std::map<OpKind, Agg> aggs;
  for (const auto& op : graph.ops()) {
    Agg& a = aggs[op.kind];
    ++a.count;
    a.params += op.params;
    a.fwd += op.fwd_flops;
    a.bwd += op.bwd_flops;
    a.act_bytes += op.output_bytes;
  }
  util::TextTable table({"kind", "ops", "params", "fwd GFLOP/img", "bwd GFLOP/img",
                         "activations/img"});
  for (const auto& [kind, a] : aggs)
    table.add_row({to_string(kind), std::to_string(a.count), util::TextTable::num(a.params, 0),
                   util::TextTable::num(a.fwd / 1e9, 3), util::TextTable::num(a.bwd / 1e9, 3),
                   util::format_bytes(a.act_bytes)});
  return table;
}

MemoryFootprint training_memory(const Graph& graph, int batch) {
  MemoryFootprint fp;
  fp.weight_bytes = graph.total_params() * 4.0;
  fp.gradient_bytes = fp.weight_bytes;
  fp.optimizer_bytes = fp.weight_bytes;  // one momentum slot
  fp.activation_bytes = graph.total_activation_bytes() * batch;
  return fp;
}

int max_batch_for_memory(const Graph& graph, double memory_bytes) {
  const MemoryFootprint one = training_memory(graph, 1);
  const double fixed = one.weight_bytes + one.gradient_bytes + one.optimizer_bytes;
  const double per_image = 2.0 * graph.total_activation_bytes();
  if (fixed + per_image > memory_bytes) return 0;
  return static_cast<int>((memory_bytes - fixed) / per_image);
}

std::string to_dot(const Graph& graph) {
  std::ostringstream os;
  os << "digraph \"" << graph.name() << "\" {\n  rankdir=TB;\n  node [fontsize=10];\n";
  for (const auto& op : graph.ops()) {
    const char* shape = "box";
    if (op.kind == OpKind::Concat || op.kind == OpKind::Add) shape = "diamond";
    if (op.kind == OpKind::Input) shape = "ellipse";
    os << "  n" << op.id << " [label=\"" << op.name << "\\n" << to_string(op.kind)
       << "\", shape=" << shape << "];\n";
  }
  for (const auto& op : graph.ops())
    for (int in : op.inputs) os << "  n" << in << " -> n" << op.id << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace dnnperf::dnn
