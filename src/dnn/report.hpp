// Graph inspection utilities: layer-by-layer summary tables (the
// model.summary() every framework grows), per-op-kind breakdowns, memory
// accounting for training, and Graphviz DOT export.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dnn/graph.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dnnperf::dnn {

/// Distribution table for timed series (one row per named RunStats):
/// mean, CV, p50/p95/p99, min/max — the per-phase breakdown format the
/// trainers print. `unit_scale` multiplies every value column (e.g. 1e3
/// with unit "ms" for second-series), `digits` is the printed precision.
util::TextTable stats_table(
    const std::vector<std::pair<std::string, const util::RunStats*>>& rows,
    double unit_scale = 1.0, const std::string& unit = "s", int digits = 3);

/// Layer table: name, kind, output shape, params, fwd GFLOPs (per image).
/// `max_rows` truncates long models (0 = all rows).
util::TextTable summary_table(const Graph& graph, std::size_t max_rows = 0);

/// Aggregate per-op-kind breakdown: count, params, fwd/bwd FLOPs, activation
/// bytes — shows where a model's time must go (e.g. convs carry >90% of
/// ResNet FLOPs while BN/ReLU carry most of the memory traffic).
util::TextTable kind_breakdown(const Graph& graph);

/// Training memory footprint per rank at a given batch size, bytes:
/// weights + gradients + optimizer slots + live activations (kept for
/// backward) + activation gradients.
struct MemoryFootprint {
  double weight_bytes = 0.0;
  double gradient_bytes = 0.0;
  double optimizer_bytes = 0.0;   ///< momentum slot
  double activation_bytes = 0.0;  ///< forward activations kept for backward
  double total() const {
    return weight_bytes + gradient_bytes + optimizer_bytes + 2.0 * activation_bytes;
  }
};
MemoryFootprint training_memory(const Graph& graph, int batch);

/// Largest per-rank batch whose training footprint fits in `memory_bytes`
/// (0 if even batch 1 does not fit) — e.g. what bounds K80 batch sizes.
int max_batch_for_memory(const Graph& graph, double memory_bytes);

/// Graphviz DOT of the op DAG (op kind shapes the node label).
std::string to_dot(const Graph& graph);

}  // namespace dnnperf::dnn
