// Model zoo: the five DNNs the paper evaluates (ResNet-50/101/152,
// Inception-v3/v4) plus ResNet-18/34, AlexNet, and VGG-16 for wider
// coverage. Definitions follow the canonical torchvision/timm structures;
// tests validate parameter counts against published values within 2% and
// MAC counts within 10%.
#pragma once

#include <string>
#include <vector>

#include "dnn/graph.hpp"

namespace dnnperf::dnn {

enum class ModelId {
  ResNet18,
  ResNet34,
  ResNet50,
  ResNet101,
  ResNet152,
  InceptionV3,
  InceptionV4,
  GoogLeNet,  ///< Inception-v1
  ResNext50,  ///< ResNeXt-50 32x4d (grouped convolutions)
  AlexNet,
  Vgg16,
};

const char* to_string(ModelId id);

/// Published reference numbers used by validation tests.
struct ModelRef {
  double params;  ///< trainable parameters
  double gmacs;   ///< multiply-accumulate ops per image, forward, x1e9
};

ModelRef reference(ModelId id);

/// Builds the op graph for `id` at its canonical input resolution
/// (224x224 for ResNet/AlexNet/VGG, 299x299 for Inception).
Graph build_model(ModelId id);

/// Lookup by the names used in benches/CLIs: "resnet50", "inception-v4", ...
/// Throws std::out_of_range for unknown names.
ModelId model_by_name(const std::string& name);

/// The five models of the paper's evaluation, in its order.
std::vector<ModelId> paper_models();

/// All zoo models.
std::vector<ModelId> all_models();

}  // namespace dnnperf::dnn
