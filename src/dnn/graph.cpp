#include "dnn/graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dnnperf::dnn {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::Input: return "Input";
    case OpKind::Conv2d: return "Conv2d";
    case OpKind::MatMul: return "MatMul";
    case OpKind::BatchNorm: return "BatchNorm";
    case OpKind::ReLU: return "ReLU";
    case OpKind::MaxPool: return "MaxPool";
    case OpKind::AvgPool: return "AvgPool";
    case OpKind::GlobalAvgPool: return "GlobalAvgPool";
    case OpKind::Add: return "Add";
    case OpKind::Concat: return "Concat";
    case OpKind::Softmax: return "Softmax";
    case OpKind::Dropout: return "Dropout";
  }
  return "?";
}

namespace {

int conv_out_dim(int in, int k, int stride, int pad) {
  const int out = (in + 2 * pad - k) / stride + 1;
  if (out <= 0) throw std::invalid_argument("conv/pool output dimension <= 0");
  return out;
}

// Pooling in "valid-with-partial-window" style used by TF 'SAME'/ceil modes
// differs per framework; we use floor mode (PyTorch default), which matches
// the canonical model definitions we replicate.

}  // namespace

Graph::Graph(std::string name) : name_(std::move(name)) {}

Graph Graph::from_ops(std::string name, std::vector<Op> ops) {
#ifndef NDEBUG
  // Cheap debug-build guard: the dataflow passes index ops_ by id, so a
  // mismatched id corrupts every downstream analysis. Release builds defer
  // to the G008 lint pass, which reports instead of aborting.
  for (std::size_t i = 0; i < ops.size(); ++i)
    assert(ops[i].id == static_cast<int>(i) && "Graph::from_ops: op id != position");
#endif
  Graph g(std::move(name));
  g.ops_ = std::move(ops);
  return g;
}

int Graph::push(Op op) {
  op.id = static_cast<int>(ops_.size());
  op.output_bytes = op.out.elements() * 4.0;
  for (int in : op.inputs)
    if (in < 0 || in >= op.id) throw std::invalid_argument("Graph: bad input id (not topological)");
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

const Shape& Graph::shape_of(int id) const { return op(id).out; }

int Graph::input(int c, int h, int w) {
  Op op;
  op.name = "input";
  op.kind = OpKind::Input;
  op.out = {c, h, w};
  return push(std::move(op));
}

int Graph::conv2d(const std::string& name, int in, int out_c, int kh, int kw, int stride_h,
                  int stride_w, int pad_h, int pad_w, bool bias, int groups) {
  const Shape& s = shape_of(in);
  if (groups < 1 || s.c % groups != 0 || out_c % groups != 0)
    throw std::invalid_argument("conv2d: groups must divide input and output channels at " +
                                name);
  Op op;
  op.name = name;
  op.kind = OpKind::Conv2d;
  op.inputs = {in};
  op.out = {out_c, conv_out_dim(s.h, kh, stride_h, pad_h), conv_out_dim(s.w, kw, stride_w, pad_w)};
  const double in_per_group = static_cast<double>(s.c) / groups;
  const double macs = op.out.elements() * in_per_group * kh * kw;
  op.fwd_flops = 2.0 * macs + (bias ? op.out.elements() : 0.0);
  // Backward = data gradient + weight gradient, each ~ one forward conv.
  op.bwd_flops = 2.0 * op.fwd_flops;
  op.params = in_per_group * kh * kw * out_c + (bias ? out_c : 0.0);
  op.has_bias = bias;
  return push(std::move(op));
}

int Graph::matmul(const std::string& name, int in, int out_features, bool bias) {
  const Shape& s = shape_of(in);
  const double in_features = s.elements();
  Op op;
  op.name = name;
  op.kind = OpKind::MatMul;
  op.inputs = {in};
  op.out = {out_features, 1, 1};
  op.fwd_flops = 2.0 * in_features * out_features + (bias ? out_features : 0.0);
  op.bwd_flops = 2.0 * op.fwd_flops;
  op.params = in_features * out_features + (bias ? out_features : 0.0);
  op.has_bias = bias;
  return push(std::move(op));
}

int Graph::batch_norm(const std::string& name, int in) {
  const Shape& s = shape_of(in);
  Op op;
  op.name = name;
  op.kind = OpKind::BatchNorm;
  op.inputs = {in};
  op.out = s;
  op.fwd_flops = 4.0 * s.elements();  // normalize + scale/shift
  op.bwd_flops = 4.0 * s.elements();
  op.params = 2.0 * s.c;  // gamma, beta
  return push(std::move(op));
}

int Graph::relu(const std::string& name, int in) {
  const Shape& s = shape_of(in);
  Op op;
  op.name = name;
  op.kind = OpKind::ReLU;
  op.inputs = {in};
  op.out = s;
  op.fwd_flops = s.elements();
  op.bwd_flops = s.elements();
  return push(std::move(op));
}

namespace {

Op make_pool(OpKind kind, const std::string& name, int in, const Shape& s, int k, int stride,
             int pad) {
  Op op;
  op.name = name;
  op.kind = kind;
  op.inputs = {in};
  op.out = {s.c, conv_out_dim(s.h, k, stride, pad), conv_out_dim(s.w, k, stride, pad)};
  op.fwd_flops = op.out.elements() * k * k;
  op.bwd_flops = op.out.elements() * k * k;
  return op;
}

}  // namespace

int Graph::max_pool(const std::string& name, int in, int k, int stride, int pad) {
  return push(make_pool(OpKind::MaxPool, name, in, shape_of(in), k, stride, pad));
}

int Graph::avg_pool(const std::string& name, int in, int k, int stride, int pad) {
  return push(make_pool(OpKind::AvgPool, name, in, shape_of(in), k, stride, pad));
}

int Graph::global_avg_pool(const std::string& name, int in) {
  const Shape& s = shape_of(in);
  Op op;
  op.name = name;
  op.kind = OpKind::GlobalAvgPool;
  op.inputs = {in};
  op.out = {s.c, 1, 1};
  op.fwd_flops = s.elements();
  op.bwd_flops = s.elements();
  return push(std::move(op));
}

int Graph::add(const std::string& name, int a, int b) {
  const Shape& sa = shape_of(a);
  const Shape& sb = shape_of(b);
  if (sa.c != sb.c || sa.h != sb.h || sa.w != sb.w)
    throw std::invalid_argument("add: shape mismatch at " + name);
  Op op;
  op.name = name;
  op.kind = OpKind::Add;
  op.inputs = {a, b};
  op.out = sa;
  op.fwd_flops = sa.elements();
  op.bwd_flops = sa.elements();
  return push(std::move(op));
}

int Graph::concat(const std::string& name, const std::vector<int>& ins) {
  if (ins.empty()) throw std::invalid_argument("concat: no inputs");
  const Shape& first = shape_of(ins.front());
  int channels = 0;
  for (int in : ins) {
    const Shape& s = shape_of(in);
    if (s.h != first.h || s.w != first.w)
      throw std::invalid_argument("concat: spatial mismatch at " + name);
    channels += s.c;
  }
  Op op;
  op.name = name;
  op.kind = OpKind::Concat;
  op.inputs = ins;
  op.out = {channels, first.h, first.w};
  op.fwd_flops = op.out.elements();  // copy cost proxy
  op.bwd_flops = op.out.elements();
  return push(std::move(op));
}

int Graph::softmax(const std::string& name, int in) {
  const Shape& s = shape_of(in);
  Op op;
  op.name = name;
  op.kind = OpKind::Softmax;
  op.inputs = {in};
  op.out = s;
  op.fwd_flops = 5.0 * s.elements();
  op.bwd_flops = 3.0 * s.elements();
  return push(std::move(op));
}

int Graph::dropout(const std::string& name, int in) {
  const Shape& s = shape_of(in);
  Op op;
  op.name = name;
  op.kind = OpKind::Dropout;
  op.inputs = {in};
  op.out = s;
  op.fwd_flops = 2.0 * s.elements();
  op.bwd_flops = s.elements();
  return push(std::move(op));
}

int Graph::conv_bn_relu(const std::string& name, int in, int out_c, int kh, int kw,
                        int stride_h, int stride_w, int pad_h, int pad_w) {
  const int c = conv2d(name + "/conv", in, out_c, kh, kw, stride_h, stride_w, pad_h, pad_w);
  const int b = batch_norm(name + "/bn", c);
  return relu(name + "/relu", b);
}

int Graph::conv_bn_relu(const std::string& name, int in, int out_c, int k, int stride,
                        int pad) {
  return conv_bn_relu(name, in, out_c, k, k, stride, stride, pad, pad);
}

double Graph::total_params() const {
  double sum = 0.0;
  for (const auto& op : ops_) sum += op.params;
  return sum;
}

double Graph::total_fwd_flops() const {
  double sum = 0.0;
  for (const auto& op : ops_) sum += op.fwd_flops;
  return sum;
}

double Graph::total_bwd_flops() const {
  double sum = 0.0;
  for (const auto& op : ops_) sum += op.bwd_flops;
  return sum;
}

double Graph::total_activation_bytes() const {
  double sum = 0.0;
  for (const auto& op : ops_) sum += op.output_bytes;
  return sum;
}

std::vector<double> Graph::gradient_tensor_bytes() const {
  std::vector<double> out;
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it)
    if (it->has_params()) out.push_back(it->params * 4.0);
  return out;
}

std::vector<std::vector<int>> Graph::consumers() const {
  std::vector<std::vector<int>> result(ops_.size());
  for (const auto& op : ops_)
    for (int in : op.inputs) result[static_cast<std::size_t>(in)].push_back(op.id);
  return result;
}

int Graph::max_branch_width() const {
  // Level = longest path from the input; ops sharing a level are independent
  // (inputs always have strictly smaller levels in a topological DAG built
  // from chains and branch/merge points).
  std::vector<int> level(ops_.size(), 0);
  int width = 0;
  std::vector<int> count;
  for (const auto& op : ops_) {
    int lvl = 0;
    for (int in : op.inputs) lvl = std::max(lvl, level[static_cast<std::size_t>(in)] + 1);
    level[static_cast<std::size_t>(op.id)] = lvl;
    if (lvl >= static_cast<int>(count.size())) count.resize(static_cast<std::size_t>(lvl) + 1, 0);
    width = std::max(width, ++count[static_cast<std::size_t>(lvl)]);
  }
  return width;
}

void Graph::validate() const {
  if (ops_.empty()) throw std::logic_error("Graph: empty");
  if (ops_.front().kind != OpKind::Input) throw std::logic_error("Graph: first op must be Input");
  for (const auto& op : ops_) {
    if (op.out.c <= 0 || op.out.h <= 0 || op.out.w <= 0)
      throw std::logic_error("Graph: bad shape at " + op.name);
    if (op.kind != OpKind::Input && op.inputs.empty())
      throw std::logic_error("Graph: non-input op without inputs: " + op.name);
  }
}

}  // namespace dnnperf::dnn
