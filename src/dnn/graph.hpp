// DNN graph intermediate representation.
//
// A Graph is a DAG of ops with per-image shapes, FLOP counts, parameter
// counts, and activation sizes — everything the execution model needs to
// time an iteration and everything Horovod needs to size gradient tensors.
// Batch size enters later as a multiplier (shapes are stored per image).
//
// Ops are stored in construction order, which builders keep topological.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dnnperf::dnn {

enum class OpKind {
  Input,
  Conv2d,
  MatMul,     // fully connected
  BatchNorm,
  ReLU,
  MaxPool,
  AvgPool,
  GlobalAvgPool,
  Add,        // residual elementwise add
  Concat,     // inception branch merge
  Softmax,
  Dropout,
};

const char* to_string(OpKind kind);

/// Per-image activation shape (channels, height, width).
struct Shape {
  int c = 0;
  int h = 0;
  int w = 0;
  double elements() const { return static_cast<double>(c) * h * w; }
};

struct Op {
  int id = -1;
  std::string name;
  OpKind kind = OpKind::Input;
  std::vector<int> inputs;  ///< producer op ids
  Shape out;

  double fwd_flops = 0.0;    ///< per image
  double bwd_flops = 0.0;    ///< per image
  double params = 0.0;       ///< trainable parameter count
  double output_bytes = 0.0; ///< per image, fp32
  bool has_bias = false;     ///< Conv2d/MatMul: params include a per-channel bias

  bool has_params() const { return params > 0.0; }
};

class Graph {
 public:
  explicit Graph(std::string name);

  /// Reconstructs a graph from externally produced ops (deserialization,
  /// broken-fixture tests). Ops are taken verbatim — no shape inference and
  /// no checking beyond a debug-build assert that ids match positions; run
  /// validate() or the analysis passes (G008 flags non-topological order)
  /// on the result.
  static Graph from_ops(std::string name, std::vector<Op> ops);

  const std::string& name() const { return name_; }
  const std::vector<Op>& ops() const { return ops_; }
  const Op& op(int id) const { return ops_.at(static_cast<std::size_t>(id)); }
  int size() const { return static_cast<int>(ops_.size()); }

  // ---- builder primitives (return the new op id) -------------------------
  int input(int c, int h, int w);
  /// Convolution; `bias` adds Cout parameters (models without BatchNorm);
  /// `groups` > 1 gives grouped convolution (ResNeXt-style): input and
  /// output channels must both divide by it.
  int conv2d(const std::string& name, int in, int out_c, int kh, int kw, int stride_h,
             int stride_w, int pad_h, int pad_w, bool bias = false, int groups = 1);
  int matmul(const std::string& name, int in, int out_features, bool bias = true);
  int batch_norm(const std::string& name, int in);
  int relu(const std::string& name, int in);
  int max_pool(const std::string& name, int in, int k, int stride, int pad = 0);
  int avg_pool(const std::string& name, int in, int k, int stride, int pad = 0);
  int global_avg_pool(const std::string& name, int in);
  int add(const std::string& name, int a, int b);
  int concat(const std::string& name, const std::vector<int>& ins);
  int softmax(const std::string& name, int in);
  int dropout(const std::string& name, int in);

  /// Composite: conv -> batch_norm -> relu (the BasicConv2d of Inception and
  /// the conv units of ResNet). Returns the relu's id.
  int conv_bn_relu(const std::string& name, int in, int out_c, int kh, int kw, int stride_h,
                   int stride_w, int pad_h, int pad_w);
  /// Square-kernel shorthand.
  int conv_bn_relu(const std::string& name, int in, int out_c, int k, int stride, int pad);

  // ---- aggregate statistics (per image unless noted) ---------------------
  double total_params() const;
  double total_fwd_flops() const;
  double total_bwd_flops() const;
  double total_train_flops() const { return total_fwd_flops() + total_bwd_flops(); }
  double total_activation_bytes() const;
  /// Gradient bytes exchanged per iteration (fp32 params).
  double gradient_bytes() const { return total_params() * 4.0; }

  /// Sizes (bytes) of per-layer gradient tensors in the order backward
  /// produces them (reverse topological) — what the framework hands Horovod.
  std::vector<double> gradient_tensor_bytes() const;

  /// Consumers of each op (inverse edges), index = op id.
  std::vector<std::vector<int>> consumers() const;

  /// Maximum number of ops that can run concurrently under an unlimited
  /// scheduler (DAG antichain width via level scan) — the "inherent
  /// parallelism" the paper contrasts between ResNets and Inception.
  int max_branch_width() const;

  void validate() const;

 private:
  int push(Op op);
  const Shape& shape_of(int id) const;

  std::string name_;
  std::vector<Op> ops_;
};

}  // namespace dnnperf::dnn
