#include "dnn/models.hpp"

#include <stdexcept>

namespace dnnperf::dnn {

const char* to_string(ModelId id) {
  switch (id) {
    case ModelId::ResNet18: return "ResNet-18";
    case ModelId::ResNet34: return "ResNet-34";
    case ModelId::ResNet50: return "ResNet-50";
    case ModelId::ResNet101: return "ResNet-101";
    case ModelId::ResNet152: return "ResNet-152";
    case ModelId::InceptionV3: return "Inception-v3";
    case ModelId::InceptionV4: return "Inception-v4";
    case ModelId::GoogLeNet: return "GoogLeNet";
    case ModelId::ResNext50: return "ResNeXt-50";
    case ModelId::AlexNet: return "AlexNet";
    case ModelId::Vgg16: return "VGG-16";
  }
  return "?";
}

ModelRef reference(ModelId id) {
  // params from torchvision/timm; GMACs (fwd multiply-accumulates) from the
  // standard fvcore/ptflops tallies at canonical resolution.
  switch (id) {
    case ModelId::ResNet18: return {11.69e6, 1.82};
    case ModelId::ResNet34: return {21.80e6, 3.67};
    case ModelId::ResNet50: return {25.56e6, 4.11};
    case ModelId::ResNet101: return {44.55e6, 7.83};
    case ModelId::ResNet152: return {60.19e6, 11.56};
    case ModelId::InceptionV3: return {23.83e6, 5.71};
    case ModelId::InceptionV4: return {42.68e6, 12.27};
    case ModelId::GoogLeNet: return {6.62e6, 1.50};
    case ModelId::ResNext50: return {25.03e6, 4.26};
    case ModelId::AlexNet: return {61.10e6, 0.71};
    case ModelId::Vgg16: return {138.36e6, 15.47};
  }
  throw std::logic_error("reference: bad model id");
}

namespace {

constexpr int kNumClasses = 1000;

// ---------------------------------------------------------------------------
// ResNet (v1.5: stride on the 3x3 conv of bottleneck blocks)
// ---------------------------------------------------------------------------

int bottleneck_block(Graph& g, const std::string& name, int in, int in_c, int width,
                     int stride) {
  const int out_c = width * 4;
  int x = g.conv_bn_relu(name + "/conv1", in, width, 1, 1, 0);
  x = g.conv_bn_relu(name + "/conv2", x, width, 3, stride, 1);
  x = g.conv2d(name + "/conv3", x, out_c, 1, 1, 1, 1, 0, 0);
  x = g.batch_norm(name + "/bn3", x);
  int shortcut = in;
  if (stride != 1 || in_c != out_c) {
    shortcut = g.conv2d(name + "/down", in, out_c, 1, 1, stride, stride, 0, 0);
    shortcut = g.batch_norm(name + "/down_bn", shortcut);
  }
  x = g.add(name + "/add", x, shortcut);
  return g.relu(name + "/out", x);
}

int basic_block(Graph& g, const std::string& name, int in, int in_c, int width, int stride) {
  int x = g.conv_bn_relu(name + "/conv1", in, width, 3, stride, 1);
  x = g.conv2d(name + "/conv2", x, width, 3, 3, 1, 1, 1, 1);
  x = g.batch_norm(name + "/bn2", x);
  int shortcut = in;
  if (stride != 1 || in_c != width) {
    shortcut = g.conv2d(name + "/down", in, width, 1, 1, stride, stride, 0, 0);
    shortcut = g.batch_norm(name + "/down_bn", shortcut);
  }
  x = g.add(name + "/add", x, shortcut);
  return g.relu(name + "/out", x);
}

/// ResNeXt bottleneck (32x4d): 1x1 to width, grouped 3x3, 1x1 to 2*width.
int resnext_block(Graph& g, const std::string& name, int in, int in_c, int width, int stride) {
  const int out_c = width * 2;
  int x = g.conv_bn_relu(name + "/conv1", in, width, 1, 1, 0);
  {
    const int conv = g.conv2d(name + "/conv2/conv", x, width, 3, 3, stride, stride, 1, 1,
                              /*bias=*/false, /*groups=*/32);
    const int bn = g.batch_norm(name + "/conv2/bn", conv);
    x = g.relu(name + "/conv2/relu", bn);
  }
  x = g.conv2d(name + "/conv3", x, out_c, 1, 1, 1, 1, 0, 0);
  x = g.batch_norm(name + "/bn3", x);
  int shortcut = in;
  if (stride != 1 || in_c != out_c) {
    shortcut = g.conv2d(name + "/down", in, out_c, 1, 1, stride, stride, 0, 0);
    shortcut = g.batch_norm(name + "/down_bn", shortcut);
  }
  x = g.add(name + "/add", x, shortcut);
  return g.relu(name + "/out", x);
}

Graph build_resnext50() {
  Graph g("ResNeXt-50");
  int x = g.input(3, 224, 224);
  x = g.conv_bn_relu("stem", x, 64, 7, 2, 3);
  x = g.max_pool("stem/pool", x, 3, 2, 1);
  int in_c = 64;
  const int widths[4] = {128, 256, 512, 1024};
  const int blocks[4] = {3, 4, 6, 3};
  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < blocks[stage]; ++b) {
      const int stride = (stage > 0 && b == 0) ? 2 : 1;
      const std::string bname = "s" + std::to_string(stage + 1) + "b" + std::to_string(b + 1);
      x = resnext_block(g, bname, x, in_c, widths[stage], stride);
      in_c = widths[stage] * 2;
    }
  }
  x = g.global_avg_pool("gap", x);
  x = g.matmul("fc", x, kNumClasses);
  g.softmax("prob", x);
  g.validate();
  return g;
}

Graph build_resnet(const std::string& name, const std::vector<int>& blocks, bool bottleneck) {
  Graph g(name);
  const int expansion = bottleneck ? 4 : 1;
  int x = g.input(3, 224, 224);
  x = g.conv_bn_relu("stem", x, 64, 7, 2, 3);
  x = g.max_pool("stem/pool", x, 3, 2, 1);
  int in_c = 64;
  const int widths[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    const int width = widths[stage];
    for (int b = 0; b < blocks[static_cast<std::size_t>(stage)]; ++b) {
      const int stride = (stage > 0 && b == 0) ? 2 : 1;
      const std::string bname = "s" + std::to_string(stage + 1) + "b" + std::to_string(b + 1);
      x = bottleneck ? bottleneck_block(g, bname, x, in_c, width, stride)
                     : basic_block(g, bname, x, in_c, width, stride);
      in_c = width * expansion;
    }
  }
  x = g.global_avg_pool("gap", x);
  x = g.matmul("fc", x, kNumClasses);
  g.softmax("prob", x);
  g.validate();
  return g;
}

// ---------------------------------------------------------------------------
// Inception-v3 (torchvision structure, no aux classifier)
// ---------------------------------------------------------------------------

int inception_a(Graph& g, const std::string& n, int in, int pool_c) {
  const int b1 = g.conv_bn_relu(n + "/b1_1x1", in, 64, 1, 1, 0);
  int b2 = g.conv_bn_relu(n + "/b2_1x1", in, 48, 1, 1, 0);
  b2 = g.conv_bn_relu(n + "/b2_5x5", b2, 64, 5, 1, 2);
  int b3 = g.conv_bn_relu(n + "/b3_1x1", in, 64, 1, 1, 0);
  b3 = g.conv_bn_relu(n + "/b3_3x3a", b3, 96, 3, 1, 1);
  b3 = g.conv_bn_relu(n + "/b3_3x3b", b3, 96, 3, 1, 1);
  int b4 = g.avg_pool(n + "/b4_pool", in, 3, 1, 1);
  b4 = g.conv_bn_relu(n + "/b4_1x1", b4, pool_c, 1, 1, 0);
  return g.concat(n + "/concat", {b1, b2, b3, b4});
}

int reduction_a_v3(Graph& g, const std::string& n, int in) {
  const int b1 = g.conv_bn_relu(n + "/b1_3x3", in, 384, 3, 2, 0);
  int b2 = g.conv_bn_relu(n + "/b2_1x1", in, 64, 1, 1, 0);
  b2 = g.conv_bn_relu(n + "/b2_3x3a", b2, 96, 3, 1, 1);
  b2 = g.conv_bn_relu(n + "/b2_3x3b", b2, 96, 3, 2, 0);
  const int b3 = g.max_pool(n + "/b3_pool", in, 3, 2);
  return g.concat(n + "/concat", {b1, b2, b3});
}

int inception_b_v3(Graph& g, const std::string& n, int in, int c7) {
  const int b1 = g.conv_bn_relu(n + "/b1_1x1", in, 192, 1, 1, 0);
  int b2 = g.conv_bn_relu(n + "/b2_1x1", in, c7, 1, 1, 0);
  b2 = g.conv_bn_relu(n + "/b2_1x7", b2, c7, 1, 7, 1, 1, 0, 3);
  b2 = g.conv_bn_relu(n + "/b2_7x1", b2, 192, 7, 1, 1, 1, 3, 0);
  int b3 = g.conv_bn_relu(n + "/b3_1x1", in, c7, 1, 1, 0);
  b3 = g.conv_bn_relu(n + "/b3_7x1a", b3, c7, 7, 1, 1, 1, 3, 0);
  b3 = g.conv_bn_relu(n + "/b3_1x7a", b3, c7, 1, 7, 1, 1, 0, 3);
  b3 = g.conv_bn_relu(n + "/b3_7x1b", b3, c7, 7, 1, 1, 1, 3, 0);
  b3 = g.conv_bn_relu(n + "/b3_1x7b", b3, 192, 1, 7, 1, 1, 0, 3);
  int b4 = g.avg_pool(n + "/b4_pool", in, 3, 1, 1);
  b4 = g.conv_bn_relu(n + "/b4_1x1", b4, 192, 1, 1, 0);
  return g.concat(n + "/concat", {b1, b2, b3, b4});
}

int reduction_b_v3(Graph& g, const std::string& n, int in) {
  int b1 = g.conv_bn_relu(n + "/b1_1x1", in, 192, 1, 1, 0);
  b1 = g.conv_bn_relu(n + "/b1_3x3", b1, 320, 3, 2, 0);
  int b2 = g.conv_bn_relu(n + "/b2_1x1", in, 192, 1, 1, 0);
  b2 = g.conv_bn_relu(n + "/b2_1x7", b2, 192, 1, 7, 1, 1, 0, 3);
  b2 = g.conv_bn_relu(n + "/b2_7x1", b2, 192, 7, 1, 1, 1, 3, 0);
  b2 = g.conv_bn_relu(n + "/b2_3x3", b2, 192, 3, 2, 0);
  const int b3 = g.max_pool(n + "/b3_pool", in, 3, 2);
  return g.concat(n + "/concat", {b1, b2, b3});
}

int inception_e(Graph& g, const std::string& n, int in) {
  const int b1 = g.conv_bn_relu(n + "/b1_1x1", in, 320, 1, 1, 0);
  const int b2 = g.conv_bn_relu(n + "/b2_1x1", in, 384, 1, 1, 0);
  const int b2a = g.conv_bn_relu(n + "/b2_1x3", b2, 384, 1, 3, 1, 1, 0, 1);
  const int b2b = g.conv_bn_relu(n + "/b2_3x1", b2, 384, 3, 1, 1, 1, 1, 0);
  const int b2c = g.concat(n + "/b2_concat", {b2a, b2b});
  int b3 = g.conv_bn_relu(n + "/b3_1x1", in, 448, 1, 1, 0);
  b3 = g.conv_bn_relu(n + "/b3_3x3", b3, 384, 3, 1, 1);
  const int b3a = g.conv_bn_relu(n + "/b3_1x3", b3, 384, 1, 3, 1, 1, 0, 1);
  const int b3b = g.conv_bn_relu(n + "/b3_3x1", b3, 384, 3, 1, 1, 1, 1, 0);
  const int b3c = g.concat(n + "/b3_concat", {b3a, b3b});
  int b4 = g.avg_pool(n + "/b4_pool", in, 3, 1, 1);
  b4 = g.conv_bn_relu(n + "/b4_1x1", b4, 192, 1, 1, 0);
  return g.concat(n + "/concat", {b1, b2c, b3c, b4});
}

Graph build_inception_v3() {
  Graph g("Inception-v3");
  int x = g.input(3, 299, 299);
  x = g.conv_bn_relu("stem/conv1", x, 32, 3, 2, 0);
  x = g.conv_bn_relu("stem/conv2", x, 32, 3, 1, 0);
  x = g.conv_bn_relu("stem/conv3", x, 64, 3, 1, 1);
  x = g.max_pool("stem/pool1", x, 3, 2);
  x = g.conv_bn_relu("stem/conv4", x, 80, 1, 1, 0);
  x = g.conv_bn_relu("stem/conv5", x, 192, 3, 1, 0);
  x = g.max_pool("stem/pool2", x, 3, 2);
  x = inception_a(g, "mixed5b", x, 32);
  x = inception_a(g, "mixed5c", x, 64);
  x = inception_a(g, "mixed5d", x, 64);
  x = reduction_a_v3(g, "mixed6a", x);
  x = inception_b_v3(g, "mixed6b", x, 128);
  x = inception_b_v3(g, "mixed6c", x, 160);
  x = inception_b_v3(g, "mixed6d", x, 160);
  x = inception_b_v3(g, "mixed6e", x, 192);
  x = reduction_b_v3(g, "mixed7a", x);
  x = inception_e(g, "mixed7b", x);
  x = inception_e(g, "mixed7c", x);
  x = g.global_avg_pool("gap", x);
  x = g.dropout("dropout", x);
  x = g.matmul("fc", x, kNumClasses);
  g.softmax("prob", x);
  g.validate();
  return g;
}

// ---------------------------------------------------------------------------
// Inception-v4 (timm structure)
// ---------------------------------------------------------------------------

int inception_a_v4(Graph& g, const std::string& n, int in) {
  const int b1 = g.conv_bn_relu(n + "/b1_1x1", in, 96, 1, 1, 0);
  int b2 = g.conv_bn_relu(n + "/b2_1x1", in, 64, 1, 1, 0);
  b2 = g.conv_bn_relu(n + "/b2_3x3", b2, 96, 3, 1, 1);
  int b3 = g.conv_bn_relu(n + "/b3_1x1", in, 64, 1, 1, 0);
  b3 = g.conv_bn_relu(n + "/b3_3x3a", b3, 96, 3, 1, 1);
  b3 = g.conv_bn_relu(n + "/b3_3x3b", b3, 96, 3, 1, 1);
  int b4 = g.avg_pool(n + "/b4_pool", in, 3, 1, 1);
  b4 = g.conv_bn_relu(n + "/b4_1x1", b4, 96, 1, 1, 0);
  return g.concat(n + "/concat", {b1, b2, b3, b4});
}

int reduction_a_v4(Graph& g, const std::string& n, int in) {
  const int b1 = g.conv_bn_relu(n + "/b1_3x3", in, 384, 3, 2, 0);
  int b2 = g.conv_bn_relu(n + "/b2_1x1", in, 192, 1, 1, 0);
  b2 = g.conv_bn_relu(n + "/b2_3x3a", b2, 224, 3, 1, 1);
  b2 = g.conv_bn_relu(n + "/b2_3x3b", b2, 256, 3, 2, 0);
  const int b3 = g.max_pool(n + "/b3_pool", in, 3, 2);
  return g.concat(n + "/concat", {b1, b2, b3});
}

int inception_b_v4(Graph& g, const std::string& n, int in) {
  const int b1 = g.conv_bn_relu(n + "/b1_1x1", in, 384, 1, 1, 0);
  int b2 = g.conv_bn_relu(n + "/b2_1x1", in, 192, 1, 1, 0);
  b2 = g.conv_bn_relu(n + "/b2_1x7", b2, 224, 1, 7, 1, 1, 0, 3);
  b2 = g.conv_bn_relu(n + "/b2_7x1", b2, 256, 7, 1, 1, 1, 3, 0);
  int b3 = g.conv_bn_relu(n + "/b3_1x1", in, 192, 1, 1, 0);
  b3 = g.conv_bn_relu(n + "/b3_7x1a", b3, 192, 7, 1, 1, 1, 3, 0);
  b3 = g.conv_bn_relu(n + "/b3_1x7a", b3, 224, 1, 7, 1, 1, 0, 3);
  b3 = g.conv_bn_relu(n + "/b3_7x1b", b3, 224, 7, 1, 1, 1, 3, 0);
  b3 = g.conv_bn_relu(n + "/b3_1x7b", b3, 256, 1, 7, 1, 1, 0, 3);
  int b4 = g.avg_pool(n + "/b4_pool", in, 3, 1, 1);
  b4 = g.conv_bn_relu(n + "/b4_1x1", b4, 128, 1, 1, 0);
  return g.concat(n + "/concat", {b1, b2, b3, b4});
}

int reduction_b_v4(Graph& g, const std::string& n, int in) {
  int b1 = g.conv_bn_relu(n + "/b1_1x1", in, 192, 1, 1, 0);
  b1 = g.conv_bn_relu(n + "/b1_3x3", b1, 192, 3, 2, 0);
  int b2 = g.conv_bn_relu(n + "/b2_1x1", in, 256, 1, 1, 0);
  b2 = g.conv_bn_relu(n + "/b2_1x7", b2, 256, 1, 7, 1, 1, 0, 3);
  b2 = g.conv_bn_relu(n + "/b2_7x1", b2, 320, 7, 1, 1, 1, 3, 0);
  b2 = g.conv_bn_relu(n + "/b2_3x3", b2, 320, 3, 2, 0);
  const int b3 = g.max_pool(n + "/b3_pool", in, 3, 2);
  return g.concat(n + "/concat", {b1, b2, b3});
}

int inception_c_v4(Graph& g, const std::string& n, int in) {
  const int b1 = g.conv_bn_relu(n + "/b1_1x1", in, 256, 1, 1, 0);
  const int b2 = g.conv_bn_relu(n + "/b2_1x1", in, 384, 1, 1, 0);
  const int b2a = g.conv_bn_relu(n + "/b2_1x3", b2, 256, 1, 3, 1, 1, 0, 1);
  const int b2b = g.conv_bn_relu(n + "/b2_3x1", b2, 256, 3, 1, 1, 1, 1, 0);
  const int b2c = g.concat(n + "/b2_concat", {b2a, b2b});
  int b3 = g.conv_bn_relu(n + "/b3_1x1", in, 384, 1, 1, 0);
  b3 = g.conv_bn_relu(n + "/b3_3x1", b3, 448, 3, 1, 1, 1, 1, 0);
  b3 = g.conv_bn_relu(n + "/b3_1x3", b3, 512, 1, 3, 1, 1, 0, 1);
  const int b3a = g.conv_bn_relu(n + "/b3a_1x3", b3, 256, 1, 3, 1, 1, 0, 1);
  const int b3b = g.conv_bn_relu(n + "/b3b_3x1", b3, 256, 3, 1, 1, 1, 1, 0);
  const int b3c = g.concat(n + "/b3_concat", {b3a, b3b});
  int b4 = g.avg_pool(n + "/b4_pool", in, 3, 1, 1);
  b4 = g.conv_bn_relu(n + "/b4_1x1", b4, 256, 1, 1, 0);
  return g.concat(n + "/concat", {b1, b2c, b3c, b4});
}

Graph build_inception_v4() {
  Graph g("Inception-v4");
  int x = g.input(3, 299, 299);
  x = g.conv_bn_relu("stem/conv1", x, 32, 3, 2, 0);
  x = g.conv_bn_relu("stem/conv2", x, 32, 3, 1, 0);
  x = g.conv_bn_relu("stem/conv3", x, 64, 3, 1, 1);
  // mixed_3a
  {
    const int pool = g.max_pool("stem/3a_pool", x, 3, 2);
    const int conv = g.conv_bn_relu("stem/3a_conv", x, 96, 3, 2, 0);
    x = g.concat("stem/3a_concat", {pool, conv});
  }
  // mixed_4a
  {
    int a = g.conv_bn_relu("stem/4a_b1_1x1", x, 64, 1, 1, 0);
    a = g.conv_bn_relu("stem/4a_b1_3x3", a, 96, 3, 1, 0);
    int b = g.conv_bn_relu("stem/4a_b2_1x1", x, 64, 1, 1, 0);
    b = g.conv_bn_relu("stem/4a_b2_1x7", b, 64, 1, 7, 1, 1, 0, 3);
    b = g.conv_bn_relu("stem/4a_b2_7x1", b, 64, 7, 1, 1, 1, 3, 0);
    b = g.conv_bn_relu("stem/4a_b2_3x3", b, 96, 3, 1, 0);
    x = g.concat("stem/4a_concat", {a, b});
  }
  // mixed_5a
  {
    const int conv = g.conv_bn_relu("stem/5a_conv", x, 192, 3, 2, 0);
    const int pool = g.max_pool("stem/5a_pool", x, 3, 2);
    x = g.concat("stem/5a_concat", {conv, pool});
  }
  for (int i = 0; i < 4; ++i) x = inception_a_v4(g, "inceptA" + std::to_string(i), x);
  x = reduction_a_v4(g, "reductA", x);
  for (int i = 0; i < 7; ++i) x = inception_b_v4(g, "inceptB" + std::to_string(i), x);
  x = reduction_b_v4(g, "reductB", x);
  for (int i = 0; i < 3; ++i) x = inception_c_v4(g, "inceptC" + std::to_string(i), x);
  x = g.global_avg_pool("gap", x);
  x = g.dropout("dropout", x);
  x = g.matmul("fc", x, kNumClasses);
  g.softmax("prob", x);
  g.validate();
  return g;
}

// ---------------------------------------------------------------------------
// GoogLeNet (Inception-v1, torchvision structure without aux classifiers;
// BN variant as in torchvision's googlenet with batch norm)
// ---------------------------------------------------------------------------

int inception_v1(Graph& g, const std::string& n, int in, int c1, int c3r, int c3, int c5r,
                 int c5, int pool_proj) {
  const int b1 = g.conv_bn_relu(n + "/b1_1x1", in, c1, 1, 1, 0);
  int b2 = g.conv_bn_relu(n + "/b2_1x1", in, c3r, 1, 1, 0);
  b2 = g.conv_bn_relu(n + "/b2_3x3", b2, c3, 3, 1, 1);
  int b3 = g.conv_bn_relu(n + "/b3_1x1", in, c5r, 1, 1, 0);
  b3 = g.conv_bn_relu(n + "/b3_3x3", b3, c5, 3, 1, 1);  // torchvision uses 3x3 here
  int b4 = g.max_pool(n + "/b4_pool", in, 3, 1, 1);
  b4 = g.conv_bn_relu(n + "/b4_1x1", b4, pool_proj, 1, 1, 0);
  return g.concat(n + "/concat", {b1, b2, b3, b4});
}

Graph build_googlenet() {
  Graph g("GoogLeNet");
  int x = g.input(3, 224, 224);
  x = g.conv_bn_relu("stem/conv1", x, 64, 7, 2, 3);
  x = g.max_pool("stem/pool1", x, 3, 2, 1);
  x = g.conv_bn_relu("stem/conv2", x, 64, 1, 1, 0);
  x = g.conv_bn_relu("stem/conv3", x, 192, 3, 1, 1);
  x = g.max_pool("stem/pool2", x, 3, 2, 1);
  x = inception_v1(g, "3a", x, 64, 96, 128, 16, 32, 32);
  x = inception_v1(g, "3b", x, 128, 128, 192, 32, 96, 64);
  x = g.max_pool("pool3", x, 3, 2, 1);
  x = inception_v1(g, "4a", x, 192, 96, 208, 16, 48, 64);
  x = inception_v1(g, "4b", x, 160, 112, 224, 24, 64, 64);
  x = inception_v1(g, "4c", x, 128, 128, 256, 24, 64, 64);
  x = inception_v1(g, "4d", x, 112, 144, 288, 32, 64, 64);
  x = inception_v1(g, "4e", x, 256, 160, 320, 32, 128, 128);
  x = g.max_pool("pool4", x, 3, 2, 1);
  x = inception_v1(g, "5a", x, 256, 160, 320, 32, 128, 128);
  x = inception_v1(g, "5b", x, 384, 192, 384, 48, 128, 128);
  x = g.global_avg_pool("gap", x);
  x = g.dropout("dropout", x);
  x = g.matmul("fc", x, kNumClasses);
  g.softmax("prob", x);
  g.validate();
  return g;
}

// ---------------------------------------------------------------------------
// AlexNet and VGG-16 (classic, conv+bias, no BN)
// ---------------------------------------------------------------------------

Graph build_alexnet() {
  Graph g("AlexNet");
  int x = g.input(3, 224, 224);
  x = g.conv2d("conv1", x, 64, 11, 11, 4, 4, 2, 2, /*bias=*/true);
  x = g.relu("relu1", x);
  x = g.max_pool("pool1", x, 3, 2);
  x = g.conv2d("conv2", x, 192, 5, 5, 1, 1, 2, 2, true);
  x = g.relu("relu2", x);
  x = g.max_pool("pool2", x, 3, 2);
  x = g.conv2d("conv3", x, 384, 3, 3, 1, 1, 1, 1, true);
  x = g.relu("relu3", x);
  x = g.conv2d("conv4", x, 256, 3, 3, 1, 1, 1, 1, true);
  x = g.relu("relu4", x);
  x = g.conv2d("conv5", x, 256, 3, 3, 1, 1, 1, 1, true);
  x = g.relu("relu5", x);
  x = g.max_pool("pool5", x, 3, 2);
  x = g.dropout("drop6", x);
  x = g.matmul("fc6", x, 4096);
  x = g.relu("relu6", x);
  x = g.dropout("drop7", x);
  x = g.matmul("fc7", x, 4096);
  x = g.relu("relu7", x);
  x = g.matmul("fc8", x, kNumClasses);
  g.softmax("prob", x);
  g.validate();
  return g;
}

Graph build_vgg16() {
  Graph g("VGG-16");
  int x = g.input(3, 224, 224);
  const int stage_channels[5] = {64, 128, 256, 512, 512};
  const int stage_convs[5] = {2, 2, 3, 3, 3};
  for (int s = 0; s < 5; ++s) {
    for (int c = 0; c < stage_convs[s]; ++c) {
      const std::string n = "conv" + std::to_string(s + 1) + "_" + std::to_string(c + 1);
      x = g.conv2d(n, x, stage_channels[s], 3, 3, 1, 1, 1, 1, true);
      x = g.relu(n + "/relu", x);
    }
    x = g.max_pool("pool" + std::to_string(s + 1), x, 2, 2);
  }
  x = g.matmul("fc6", x, 4096);
  x = g.relu("relu6", x);
  x = g.dropout("drop6", x);
  x = g.matmul("fc7", x, 4096);
  x = g.relu("relu7", x);
  x = g.dropout("drop7", x);
  x = g.matmul("fc8", x, kNumClasses);
  g.softmax("prob", x);
  g.validate();
  return g;
}

}  // namespace

Graph build_model(ModelId id) {
  switch (id) {
    case ModelId::ResNet18: return build_resnet("ResNet-18", {2, 2, 2, 2}, false);
    case ModelId::ResNet34: return build_resnet("ResNet-34", {3, 4, 6, 3}, false);
    case ModelId::ResNet50: return build_resnet("ResNet-50", {3, 4, 6, 3}, true);
    case ModelId::ResNet101: return build_resnet("ResNet-101", {3, 4, 23, 3}, true);
    case ModelId::ResNet152: return build_resnet("ResNet-152", {3, 8, 36, 3}, true);
    case ModelId::InceptionV3: return build_inception_v3();
    case ModelId::InceptionV4: return build_inception_v4();
    case ModelId::GoogLeNet: return build_googlenet();
    case ModelId::ResNext50: return build_resnext50();
    case ModelId::AlexNet: return build_alexnet();
    case ModelId::Vgg16: return build_vgg16();
  }
  throw std::logic_error("build_model: bad id");
}

ModelId model_by_name(const std::string& name) {
  if (name == "resnet18") return ModelId::ResNet18;
  if (name == "resnet34") return ModelId::ResNet34;
  if (name == "resnet50") return ModelId::ResNet50;
  if (name == "resnet101") return ModelId::ResNet101;
  if (name == "resnet152") return ModelId::ResNet152;
  if (name == "inception-v3" || name == "inception3") return ModelId::InceptionV3;
  if (name == "inception-v4" || name == "inception4") return ModelId::InceptionV4;
  if (name == "googlenet" || name == "inception-v1") return ModelId::GoogLeNet;
  if (name == "resnext50") return ModelId::ResNext50;
  if (name == "alexnet") return ModelId::AlexNet;
  if (name == "vgg16") return ModelId::Vgg16;
  throw std::out_of_range("unknown model: " + name);
}

std::vector<ModelId> paper_models() {
  return {ModelId::ResNet50, ModelId::ResNet101, ModelId::ResNet152, ModelId::InceptionV3,
          ModelId::InceptionV4};
}

std::vector<ModelId> all_models() {
  return {ModelId::ResNet18,    ModelId::ResNet34,  ModelId::ResNet50,
          ModelId::ResNet101,   ModelId::ResNet152, ModelId::InceptionV3,
          ModelId::InceptionV4, ModelId::GoogLeNet, ModelId::ResNext50,
          ModelId::AlexNet,     ModelId::Vgg16};
}

}  // namespace dnnperf::dnn
