// Typed metrics registry: the quantitative-observability layer the paper's
// deliverable rests on (images/sec tables, the Sec. VIII requested-vs-issued
// Allreduce counters, per-phase timings). Where util/trace answers "when did
// it happen", this layer answers "how much and how fast" — named Counters,
// Gauges, and log-scale Histograms with p50/p95/p99, snapshotted into
// machine-readable exports (Prometheus text exposition, JSON, CSV) and diffed
// across runs by tools/dnnperf_metrics.
//
// Cost model (mirrors util/trace):
//  - recording goes to a per-thread shard: a plain array add, no locks, no
//    atomics beyond one relaxed enabled() load per call site;
//  - runtime-disabled (the default): every instrumentation site is a single
//    relaxed atomic load;
//  - compiled out (-DDNNPERF_METRICS_ENABLED=0): handle methods are empty
//    inline functions the compiler removes entirely. Registration and the
//    snapshot/export machinery stay available so tools still build.
//
// Threading contract: record from any number of threads concurrently (shards
// are thread-owned); registration (counter()/gauge()/histogram()) may happen
// from any thread at any time; snapshot()/reset() must not race with threads
// that are actively recording — callers snapshot after worker threads have
// joined, as the trainers and examples do.
//
// Naming scheme (Prometheus conventions, checked by lint pass M002):
//   <layer>_<what>[_<unit>][_total]   e.g. hvd_allreduce_requested_total,
//   train_step_forward_seconds, ref_gemm_flops_total, pool_chunks_total.
// Counters end in _total; histograms of durations end in _seconds (the
// hvd_cycle_time histogram keeps the paper's name for the Sec. VIII knob).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef DNNPERF_METRICS_ENABLED
#define DNNPERF_METRICS_ENABLED 1
#endif

namespace dnnperf::util::metrics {

enum class Kind { Counter, Gauge, Histogram };

const char* to_string(Kind kind);

/// Runtime switch; metrics collection starts disabled.
bool enabled();
void set_enabled(bool on);

/// Drops every recorded value (all shards, all gauges). Registered names and
/// handles stay valid. Not to be called while other threads record.
void reset();

namespace detail {
void counter_add(int slot, std::uint64_t n);
void gauge_set(int slot, double value);
void histogram_observe(int slot, double value);
}  // namespace detail

/// Monotonic event/byte/flop count. Cross-rank merge: sum.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const {
#if DNNPERF_METRICS_ENABLED
    if (enabled() && slot_ >= 0) detail::counter_add(slot_, n);
#else
    (void)n;
#endif
  }

 private:
  friend Counter counter(const std::string&, const std::string&);
  explicit Counter(int slot) : slot_(slot) {}
  int slot_ = -1;
};

/// Last-written value (a level, not a count): utilization, images/sec.
/// Writes go to a central atomic cell — gauges are not hot-path.
/// Cross-rank merge: maximum (ranks are symmetric; max is jitter-robust).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const {
#if DNNPERF_METRICS_ENABLED
    if (enabled() && slot_ >= 0) detail::gauge_set(slot_, value);
#else
    (void)value;
#endif
  }

 private:
  friend Gauge gauge(const std::string&, const std::string&);
  explicit Gauge(int slot) : slot_(slot) {}
  int slot_ = -1;
};

/// Fixed-bucket log-scale histogram of positive values (durations, ratios).
/// Buckets are quarter-octaves — bound(i) = 2^(kHistMinExp + i/4) — so any
/// percentile estimate is within one bucket ratio (2^0.25 ~ 19%) of exact.
/// Cross-rank merge: bucket-wise sum (exact for counts/sums/percentiles).
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const {
#if DNNPERF_METRICS_ENABLED
    if (enabled() && slot_ >= 0) detail::histogram_observe(slot_, value);
#else
    (void)value;
#endif
  }

 private:
  friend Histogram histogram(const std::string&, const std::string&);
  friend class ScopedTimer;
  explicit Histogram(int slot) : slot_(slot) {}
  int slot_ = -1;
};

/// RAII duration sampler: observes elapsed wall seconds into a Histogram at
/// destruction. With metrics runtime-disabled, construction is one relaxed
/// load and no clock is read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  bool active() const { return active_; }

 private:
  Histogram h_;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
};

/// Get-or-create registration. The same (name, kind) pair always returns a
/// handle to the same metric; re-registering a name under a *different* kind
/// creates a second metric with the same name — the snapshot then carries the
/// duplicate, which lint pass M001 reports. `help` is kept from the first
/// registration. Thread-safe; not hot-path (takes the registry lock).
Counter counter(const std::string& name, const std::string& help = {});
Gauge gauge(const std::string& name, const std::string& help = {});
Histogram histogram(const std::string& name, const std::string& help = {});

/// Number of quarter-octave histogram buckets and their bounds.
inline constexpr int kHistMinExp = -34;  ///< lowest bucket lower bound: 2^-34 (~58 ps)
inline constexpr int kHistSubBuckets = 4;
inline constexpr int kHistNumBuckets = 256;  ///< covers up to 2^30 (~34 years in seconds)

/// Lower bound of bucket `i`: 2^(kHistMinExp + i/4).
double hist_bucket_bound(int i);
/// Bucket index for a value; non-positive and out-of-range values clamp to
/// the first/last bucket (count/sum/min/max stay exact regardless).
int hist_bucket_index(double value);

/// Merged histogram state: exact count/sum/min/max plus bucket counts.
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  ///< empty (all-zero) or kHistNumBuckets wide

  void observe(double value);
  void merge(const HistogramData& other);
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Estimated quantile, p in [0,1]: linear interpolation inside the bucket
  /// holding the target rank, clamped to [min, max]. Empty -> 0.
  double percentile(double p) const;
};

/// One metric's merged value at snapshot time.
struct MetricValue {
  std::string name;
  std::string help;
  Kind kind = Kind::Counter;
  std::uint64_t count = 0;   ///< counter total
  double value = 0.0;        ///< gauge value
  HistogramData hist;        ///< histogram state
};

/// Point-in-time merge of every thread shard plus the central gauges; the
/// scorecard unit that exporters serialize and dnnperf_metrics diffs.
struct Snapshot {
  std::string label;                  ///< optional: what was measured
  std::vector<MetricValue> metrics;   ///< sorted by (name, kind)

  const MetricValue* find(const std::string& name) const;
  /// Cross-rank / cross-process merge: counters sum, histograms bucket-merge,
  /// gauges take the maximum; metrics present on one side only are kept.
  void merge(const Snapshot& other);
};

/// Merges all shards (including those of exited threads). Does not clear.
Snapshot snapshot();

/// The change from `before` to `after` (both from this process's registry):
/// counters and histogram counts/sums/buckets subtract; gauges and the
/// histogram min/max keep the `after` values (interval extrema are not
/// recoverable — percentile interpolation only clamps against them, so the
/// estimate stays within bucket resolution). Metrics new in `after` are kept
/// whole. This is how core::Experiment carves one scorecard per config out
/// of the cumulative registry.
Snapshot delta(const Snapshot& before, const Snapshot& after);

// --- Exporters --------------------------------------------------------------

/// Prometheus text exposition format (# HELP/# TYPE, histogram as cumulative
/// _bucket{le=...}/_sum/_count series).
std::string to_prometheus(const Snapshot& snap);
/// JSON document ({"schema":"dnnperf-metrics-v1","metrics":[...]}) with
/// sparse histogram buckets and precomputed p50/p95/p99 for readability.
std::string to_json(const Snapshot& snap);
/// Flat CSV: name,kind,value,count,sum,min,max,mean,p50,p95,p99.
std::string to_csv(const Snapshot& snap);

/// Parses a document produced by to_json() back into a Snapshot (percentiles
/// are recomputed from the buckets). Throws std::runtime_error on malformed
/// input or an unknown schema.
Snapshot parse_json(const std::string& text);

/// to_json() to `path`; throws std::runtime_error on I/O failure.
void write_json_file(const Snapshot& snap, const std::string& path);

// --- Regression diff (the dnnperf_metrics engine) ---------------------------

/// What counts as a regression when comparing `current` against `base`:
///  - histograms are duration-like (lower is better): p50 inflated beyond
///    timer_rel fails;
///  - counters are accounting (any drift beyond counter_rel, either
///    direction, fails — a changed allreduce count means changed semantics);
///  - gauges whose name marks them as a rate (_per_sec, _gflops) are
///    higher-is-better: a drop beyond rate_rel fails; other gauges are
///    informational.
/// Per-family check_* switches let CI ignore wall-clock families while
/// keeping the deterministic counters strict.
struct DiffThresholds {
  double timer_rel = 0.10;
  double counter_rel = 0.0;
  double rate_rel = 0.10;
  bool check_timers = true;
  bool check_counters = true;
  bool check_rates = true;
};

struct DiffEntry {
  std::string name;
  Kind kind = Kind::Counter;
  double base = 0.0;      ///< counter value / gauge value / histogram p50
  double current = 0.0;
  double change_rel = 0.0;  ///< (current - base) / |base|; 0 when base is 0
  bool regression = false;
  std::string note;  ///< "p50 +12.3% > 10%", "only in base", ...
};

struct DiffResult {
  std::vector<DiffEntry> entries;  ///< one per metric in either snapshot
  bool regression() const;
  /// Human-readable table of the diff (regressions marked).
  std::string render() const;
};

DiffResult diff_snapshots(const Snapshot& base, const Snapshot& current,
                          const DiffThresholds& thresholds);

}  // namespace dnnperf::util::metrics
