// Process-wide Chrome trace-event tracing: scoped spans, counters, and
// virtual-time (simulated) events collected into per-thread buffers and
// flushed on demand as a JSON document loadable in chrome://tracing or
// Perfetto (ui.perfetto.dev). This is the observability layer the paper's
// Horovod-timeline analysis (Figs. 18/19) relies on: one track per rank
// thread showing negotiation vs data allreduces, per-step training phases,
// per-worker thread-pool chunks, and — on separate simulated-process tracks
// — the DES timeline, so real and simulated executions are visually
// comparable in the same viewer.
//
// Cost model:
//  - recording appends to a thread-local vector: no locks, no I/O, no
//    clock reads beyond one steady_clock query per span endpoint;
//  - runtime-disabled (the default): every instrumentation site is a single
//    relaxed atomic load;
//  - compiled out (-DDNNPERF_TRACE_ENABLED=0): the DNNPERF_TRACE_* macros
//    expand to an inert NullSpan whose active() is constant false, so arg
//    formatting is dead code the compiler removes.
//
// Threading contract: record from any number of threads concurrently;
// set_enabled() may be flipped at any time; reset() and write_json() must
// not race with threads that are actively recording (callers flush after
// worker threads have joined, as the examples and trainer do).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#ifndef DNNPERF_TRACE_ENABLED
#define DNNPERF_TRACE_ENABLED 1
#endif

namespace dnnperf::util::trace {

/// pid of the real process's tracks in the emitted trace.
inline constexpr int kRealPid = 1;
/// pid under which virtual-time (DES) tracks are grouped by convention.
inline constexpr int kSimulatedPid = 2;

/// Runtime switch; tracing starts disabled.
bool enabled();
void set_enabled(bool on);

/// Drops every recorded event (including buffers of exited threads) and
/// restarts the clock epoch. Not to be called while other threads record.
void reset();

/// Microseconds since the current trace epoch (steady clock).
std::uint64_t now_us();

/// Total events recorded since the last reset(), across all threads.
std::size_t event_count();

/// Builder for an event's "args" payload. Keys are emitted verbatim (use
/// JSON-safe literals); string values are escaped.
class Args {
 public:
  Args& add(const char* key, std::int64_t value);
  Args& add(const char* key, std::uint64_t value);
  Args& add(const char* key, int value) { return add(key, static_cast<std::int64_t>(value)); }
  Args& add(const char* key, double value);
  Args& add(const char* key, const char* value);
  Args& add(const char* key, const std::string& value);
  /// The accumulated `"k":v` pairs, comma-separated, without braces.
  std::string str() && { return std::move(json_); }
  const std::string& str() const& { return json_; }

 private:
  std::string json_;
};

// Low-level emitters. All are runtime-gated no-ops when tracing is
// disabled; `args_json` is an Args::str() payload (may be empty).
void emit_complete(std::string name, const char* cat, std::uint64_t ts_us,
                   std::uint64_t dur_us, std::string args_json = {});
void emit_instant(std::string name, const char* cat, std::string args_json = {});
void emit_counter(const char* name, double value);
/// Names this thread's track in the viewer (e.g. "rank 0").
void set_thread_name(const std::string& name);

// Virtual-time events for the discrete-event simulator: timestamps are
// simulated seconds, and `pid` (conventionally kSimulatedPid) keeps the
// simulated tracks in a separate process group from the real ones.
void emit_virtual_complete(std::string name, const char* cat, int pid, int tid, double ts_s,
                           double dur_s, std::string args_json = {});
void emit_virtual_instant(std::string name, const char* cat, int pid, int tid, double ts_s,
                          std::string args_json = {});
void emit_virtual_counter(const char* name, int pid, double ts_s, double value);
void set_virtual_track_name(int pid, int tid, const std::string& process_name,
                            const std::string& thread_name);

/// Serializes everything recorded since the last reset() as a Chrome
/// trace-event JSON document ({"traceEvents":[...]}), events sorted by
/// timestamp. Does not clear the buffers.
void write_json(std::ostream& os);
/// write_json() to `path`; throws std::runtime_error on I/O failure.
void write_json_file(const std::string& path);

/// RAII scoped span: one complete ("X") event on the calling thread's track
/// covering the Span's lifetime. Construction with tracing disabled records
/// the inactive state and nothing else.
class Span {
 public:
  Span(const char* cat, const char* name);
  Span(const char* cat, std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }
  /// Attaches an args payload; build it under `if (span.active())` so the
  /// formatting cost vanishes when tracing is off.
  void set_args(std::string args_json) { args_ = std::move(args_json); }
  /// FLOPs done during the span; the destructor derives a "gflops" arg from
  /// the measured duration (the per-kernel efficiency the paper tracks).
  void set_flops(double flops) { flops_ = flops; }

 private:
  bool active_;
  const char* cat_ = nullptr;
  std::string name_;
  std::string args_;
  double flops_ = 0.0;
  std::uint64_t start_ = 0;
};

/// Compile-time stand-in for Span when tracing is compiled out: active() is
/// constant false, so guarded arg formatting is removed entirely.
struct NullSpan {
  constexpr bool active() const { return false; }
  void set_args(const std::string&) {}
  void set_flops(double) {}
};

}  // namespace dnnperf::util::trace

#define DNNPERF_TRACE_CONCAT_IMPL(a, b) a##b
#define DNNPERF_TRACE_CONCAT(a, b) DNNPERF_TRACE_CONCAT_IMPL(a, b)

#if DNNPERF_TRACE_ENABLED
/// Anonymous scoped span covering the rest of the enclosing block.
#define DNNPERF_TRACE_SPAN(cat, name) \
  ::dnnperf::util::trace::Span DNNPERF_TRACE_CONCAT(dnnperf_trace_span_, __LINE__)((cat), (name))
/// Named scoped span, for attaching args/flops via `var`.
#define DNNPERF_TRACE_SPAN_VAR(var, cat, name) \
  ::dnnperf::util::trace::Span var((cat), (name))
#else
#define DNNPERF_TRACE_SPAN(cat, name) ((void)0)
#define DNNPERF_TRACE_SPAN_VAR(var, cat, name) ::dnnperf::util::trace::NullSpan var
#endif
