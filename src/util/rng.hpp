// Deterministic pseudo-random number generation.
//
// All stochastic pieces of dnnperf (compute jitter, synthetic data, property
// tests) draw from SplitMix64-seeded xoshiro256** generators so that every
// experiment is exactly reproducible from its seed.
#pragma once

#include <cstdint>

namespace dnnperf::util {

/// xoshiro256** generator with SplitMix64 seeding. Satisfies
/// UniformRandomBitGenerator so it can drive <random> distributions too.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (no cached spare; stateless per call pair).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Derives an independent child generator (e.g. one per simulated rank).
  Rng fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace dnnperf::util
