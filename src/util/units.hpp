// Unit helpers: human-readable formatting for bytes / time / rates, and the
// constants used throughout the performance model (seconds as double).
#pragma once

#include <cstdint>
#include <string>

namespace dnnperf::util {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;

inline constexpr double kGFLOP = 1e9;
inline constexpr double kGBps = 1e9;  // network vendors quote decimal GB/s

/// "1.50 GiB", "320.0 KiB", "17 B".
std::string format_bytes(double bytes);

/// "1.23 s", "45.6 ms", "7.8 us".
std::string format_time(double seconds);

/// "123.4 img/s" style rate with the given unit suffix.
std::string format_rate(double per_second, const std::string& unit);

}  // namespace dnnperf::util
