// Tiny command-line flag parser for examples and benchmark binaries.
//
// Supports --name=value and --name value forms plus boolean switches
// (--flag / --no-flag). Unknown flags are an error so typos surface.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dnnperf::util {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  void add_flag(const std::string& name, const std::string& help, bool default_value);
  void add_int(const std::string& name, const std::string& help, std::int64_t default_value);
  void add_double(const std::string& name, const std::string& help, double default_value);
  void add_string(const std::string& name, const std::string& help, std::string default_value);

  /// Parses argv. Returns false (after printing usage) for --help.
  /// Throws std::invalid_argument on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  bool get_flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  enum class Kind { Flag, Int, Double, String };
  struct Option {
    Kind kind;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  const Option& lookup(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace dnnperf::util
