#include "util/diag.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/jsonlite.hpp"

namespace dnnperf::util {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Advice: return "advice";
    case Severity::Warn: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

void Diagnostics::add(Diagnostic d) { items_.push_back(std::move(d)); }

void Diagnostics::error(std::string code, std::string object, std::string field,
                        std::string message, std::string hint) {
  add({std::move(code), Severity::Error, std::move(object), std::move(field),
       std::move(message), std::move(hint)});
}

void Diagnostics::warn(std::string code, std::string object, std::string field,
                       std::string message, std::string hint) {
  add({std::move(code), Severity::Warn, std::move(object), std::move(field),
       std::move(message), std::move(hint)});
}

void Diagnostics::advice(std::string code, std::string object, std::string field,
                         std::string message, std::string hint) {
  add({std::move(code), Severity::Advice, std::move(object), std::move(field),
       std::move(message), std::move(hint)});
}

std::size_t Diagnostics::count(Severity severity) const {
  std::size_t n = 0;
  for (const auto& d : items_)
    if (d.severity == severity) ++n;
  return n;
}

bool Diagnostics::has_code(const std::string& code) const {
  for (const auto& d : items_)
    if (d.code == code) return true;
  return false;
}

void Diagnostics::merge(const Diagnostics& other) {
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

std::string render_text(const Diagnostics& diags) {
  std::ostringstream os;
  for (const auto& d : diags.items()) {
    os << to_string(d.severity) << ' ' << d.code << " [" << d.object;
    if (!d.field.empty()) os << ':' << d.field;
    os << "] " << d.message;
    if (!d.hint.empty()) os << " (hint: " << d.hint << ')';
    os << '\n';
  }
  os << diags.count(Severity::Error) << " error(s), " << diags.count(Severity::Warn)
     << " warning(s), " << diags.count(Severity::Advice) << " advice\n";
  return os.str();
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", static_cast<unsigned>(c));
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

void append_json_field(std::string& out, const char* key, const std::string& value,
                       bool trailing_comma) {
  out += '"';
  out += key;
  out += "\":\"";
  append_json_escaped(out, value);
  out += '"';
  if (trailing_comma) out += ',';
}

}  // namespace

std::string render_json(const Diagnostics& diags) {
  std::string out = "{\"schema\":\"dnnperf-diag-v1\",\"diagnostics\":[";
  bool first = true;
  for (const auto& d : diags.items()) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_json_field(out, "code", d.code, true);
    append_json_field(out, "severity", to_string(d.severity), true);
    append_json_field(out, "object", d.object, true);
    append_json_field(out, "field", d.field, true);
    append_json_field(out, "message", d.message, true);
    append_json_field(out, "hint", d.hint, false);
    out += '}';
  }
  out += "],\"summary\":{\"errors\":";
  out += std::to_string(diags.count(Severity::Error));
  out += ",\"warnings\":";
  out += std::to_string(diags.count(Severity::Warn));
  out += ",\"advice\":";
  out += std::to_string(diags.count(Severity::Advice));
  out += "}}\n";
  return out;
}

Severity severity_from_string(const std::string& name) {
  if (name == "advice") return Severity::Advice;
  if (name == "warning") return Severity::Warn;
  if (name == "error") return Severity::Error;
  throw std::invalid_argument("unknown severity: " + name);
}

Diagnostics parse_diagnostics(const std::string& json_text) {
  const jsonlite::Value doc = jsonlite::parse(json_text, "diagnostics JSON");
  if (doc.kind != jsonlite::Value::Kind::Object)
    throw std::runtime_error("diagnostics JSON: document is not an object");
  const jsonlite::Value* schema = doc.get("schema");
  if (schema == nullptr || schema->string != "dnnperf-diag-v1")
    throw std::runtime_error(
        "diagnostics JSON: missing or unknown schema (want dnnperf-diag-v1)");
  Diagnostics out;
  for (const jsonlite::Value& jd : doc.at("diagnostics").array)
    out.add({jd.at("code").string, severity_from_string(jd.at("severity").string),
             jd.at("object").string, jd.at("field").string, jd.at("message").string,
             jd.at("hint").string});
  return out;
}

namespace {

/// GitHub workflow commands interpret %, \r, \n in the message and
/// additionally , and : in property values; they must be percent-encoded.
std::string github_escape(const std::string& s, bool property) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      case ',': out += property ? "%2C" : ","; break;
      case ':': out += property ? "%3A" : ":"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_github(const Diagnostics& diags) {
  std::string out;
  for (const auto& d : diags.items()) {
    switch (d.severity) {
      case Severity::Error: out += "::error"; break;
      case Severity::Warn: out += "::warning"; break;
      case Severity::Advice: out += "::notice"; break;
    }
    std::string title = d.code + " " + d.object;
    if (!d.field.empty()) title += ":" + d.field;
    out += " title=" + github_escape(title, true);
    out += "::" + github_escape(d.hint.empty() ? d.message : d.message + " (hint: " + d.hint + ")",
                                false);
    out += '\n';
  }
  return out;
}

}  // namespace dnnperf::util
