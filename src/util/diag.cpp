#include "util/diag.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

namespace dnnperf::util {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Advice: return "advice";
    case Severity::Warn: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

void Diagnostics::add(Diagnostic d) { items_.push_back(std::move(d)); }

void Diagnostics::error(std::string code, std::string object, std::string field,
                        std::string message, std::string hint) {
  add({std::move(code), Severity::Error, std::move(object), std::move(field),
       std::move(message), std::move(hint)});
}

void Diagnostics::warn(std::string code, std::string object, std::string field,
                       std::string message, std::string hint) {
  add({std::move(code), Severity::Warn, std::move(object), std::move(field),
       std::move(message), std::move(hint)});
}

void Diagnostics::advice(std::string code, std::string object, std::string field,
                         std::string message, std::string hint) {
  add({std::move(code), Severity::Advice, std::move(object), std::move(field),
       std::move(message), std::move(hint)});
}

std::size_t Diagnostics::count(Severity severity) const {
  std::size_t n = 0;
  for (const auto& d : items_)
    if (d.severity == severity) ++n;
  return n;
}

bool Diagnostics::has_code(const std::string& code) const {
  for (const auto& d : items_)
    if (d.code == code) return true;
  return false;
}

void Diagnostics::merge(const Diagnostics& other) {
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

std::string render_text(const Diagnostics& diags) {
  std::ostringstream os;
  for (const auto& d : diags.items()) {
    os << to_string(d.severity) << ' ' << d.code << " [" << d.object;
    if (!d.field.empty()) os << ':' << d.field;
    os << "] " << d.message;
    if (!d.hint.empty()) os << " (hint: " << d.hint << ')';
    os << '\n';
  }
  os << diags.count(Severity::Error) << " error(s), " << diags.count(Severity::Warn)
     << " warning(s), " << diags.count(Severity::Advice) << " advice\n";
  return os.str();
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", static_cast<unsigned>(c));
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

void append_json_field(std::string& out, const char* key, const std::string& value,
                       bool trailing_comma) {
  out += '"';
  out += key;
  out += "\":\"";
  append_json_escaped(out, value);
  out += '"';
  if (trailing_comma) out += ',';
}

}  // namespace

std::string render_json(const Diagnostics& diags) {
  std::string out = "{\"diagnostics\":[";
  bool first = true;
  for (const auto& d : diags.items()) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_json_field(out, "code", d.code, true);
    append_json_field(out, "severity", to_string(d.severity), true);
    append_json_field(out, "object", d.object, true);
    append_json_field(out, "field", d.field, true);
    append_json_field(out, "message", d.message, true);
    append_json_field(out, "hint", d.hint, false);
    out += '}';
  }
  out += "],\"summary\":{\"errors\":";
  out += std::to_string(diags.count(Severity::Error));
  out += ",\"warnings\":";
  out += std::to_string(diags.count(Severity::Warn));
  out += ",\"advice\":";
  out += std::to_string(diags.count(Severity::Advice));
  out += "}}\n";
  return out;
}

}  // namespace dnnperf::util
