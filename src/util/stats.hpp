// Small statistics toolkit used across the characterization harness.
//
// The paper runs every experiment three times and reports the average
// (Section IV-B); RunStats implements that aggregation plus the dispersion
// measures the tests assert on. expected_max_normal() supports the straggler
// model: a synchronous allreduce waits for the slowest of N jittered ranks.
#pragma once

#include <cstddef>
#include <vector>

#include "util/metrics.hpp"

namespace dnnperf::util {

/// Streaming mean/variance/min/max (Welford), plus estimated percentiles
/// from a metrics::HistogramData of the positive samples. Memory stays O(1):
/// the histogram is fixed-width, so RunStats still never stores the series.
class RunStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  /// stddev / |mean|; 0 when mean is 0. The absolute value keeps the CV a
  /// non-negative dispersion measure for negative-mean series.
  double coeff_of_variation() const;
  /// Estimated quantile, p in [0,1]: log-bucket interpolation clamped to
  /// [min, max], within one quarter-octave (~19%) of exact for positive
  /// series. Non-positive samples land below every positive bucket, so
  /// ranks that fall among them return min(). Empty -> 0; p outside [0,1]
  /// throws std::invalid_argument.
  double percentile(double p) const;
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::size_t nonpos_ = 0;          ///< samples <= 0 (not representable in log buckets)
  metrics::HistogramData hist_;     ///< positive samples only
};

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
/// Median; averages the middle pair for even sizes. Empty input -> 0.
double median(std::vector<double> xs);
/// p in [0,1]; linear interpolation between closest ranks. Empty input -> 0.
double percentile(std::vector<double> xs, double p);

/// E[max of n iid N(mu, sigma^2) samples], via the Blom approximation
/// mu + sigma * Phi^-1((n - 0.375) / (n + 0.25)). Exact for n = 1.
double expected_max_normal(double mu, double sigma, std::size_t n);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9 over (0,1)).
double inverse_normal_cdf(double p);

/// Geometric mean; requires all positive inputs. Empty input -> 0.
double geometric_mean(const std::vector<double>& xs);

}  // namespace dnnperf::util
