#include "util/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/jsonlite.hpp"

namespace dnnperf::util::metrics {

namespace {

/// One thread's private cells, indexed by the metric's slot. Vectors grow on
/// demand by the owning thread; snapshot() reads them under the registry
/// lock after recorders have gone quiet (see the header's threading
/// contract).
struct Shard {
  std::vector<std::uint64_t> counters;
  std::vector<std::unique_ptr<HistogramData>> hists;
};

struct MetricInfo {
  std::string name;
  std::string help;
  Kind kind;
  int slot;  ///< index into the per-kind cell arrays
};

struct Registry {
  std::mutex mu;
  std::vector<MetricInfo> infos;                  ///< registration order
  std::map<std::pair<std::string, int>, int> by_name_kind;  ///< -> index into infos
  int counter_slots = 0;
  int gauge_slots = 0;
  int hist_slots = 0;
  std::deque<std::atomic<double>> gauges;         ///< deque: grows without moving
  std::vector<std::unique_ptr<Shard>> shards;     ///< owns shards past thread exit
  std::atomic<std::uint64_t> generation{1};
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<bool> g_enabled{false};

/// The calling thread's shard, registered on first use (or first use after a
/// reset()); subsequent calls are two thread-local reads plus one relaxed
/// atomic load — the same pattern as util/trace's buffers.
Shard& local_shard() {
  thread_local Shard* cached = nullptr;
  thread_local std::uint64_t cached_gen = 0;
  Registry& reg = registry();
  const std::uint64_t gen = reg.generation.load(std::memory_order_acquire);
  if (cached == nullptr || cached_gen != gen) {
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.shards.push_back(std::make_unique<Shard>());
    cached = reg.shards.back().get();
    cached_gen = gen;
  }
  return *cached;
}

int register_metric(const std::string& name, const std::string& help, Kind kind) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto key = std::make_pair(name, static_cast<int>(kind));
  if (auto it = reg.by_name_kind.find(key); it != reg.by_name_kind.end())
    return reg.infos[static_cast<std::size_t>(it->second)].slot;
  int slot = 0;
  switch (kind) {
    case Kind::Counter: slot = reg.counter_slots++; break;
    case Kind::Gauge:
      slot = reg.gauge_slots++;
      reg.gauges.emplace_back(0.0);
      break;
    case Kind::Histogram: slot = reg.hist_slots++; break;
  }
  reg.by_name_kind[key] = static_cast<int>(reg.infos.size());
  reg.infos.push_back(MetricInfo{name, help, kind, slot});
  return slot;
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

bool is_rate_gauge(const std::string& name) {
  return name.ends_with("_per_sec") || name.ends_with("_gflops") ||
         name.find("throughput") != std::string::npos;
}

}  // namespace

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Histogram: return "histogram";
  }
  return "?";
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.shards.clear();
  for (auto& g : reg.gauges) g.store(0.0, std::memory_order_relaxed);
  reg.generation.fetch_add(1, std::memory_order_acq_rel);
}

namespace detail {

void counter_add(int slot, std::uint64_t n) {
  Shard& s = local_shard();
  const auto idx = static_cast<std::size_t>(slot);
  if (s.counters.size() <= idx) s.counters.resize(idx + 1, 0);
  s.counters[idx] += n;
}

void gauge_set(int slot, double value) {
  Registry& reg = registry();
  // The deque cell exists before the handle does; no lock needed to write.
  reg.gauges[static_cast<std::size_t>(slot)].store(value, std::memory_order_relaxed);
}

void histogram_observe(int slot, double value) {
  Shard& s = local_shard();
  const auto idx = static_cast<std::size_t>(slot);
  if (s.hists.size() <= idx) s.hists.resize(idx + 1);
  if (!s.hists[idx]) s.hists[idx] = std::make_unique<HistogramData>();
  s.hists[idx]->observe(value);
}

}  // namespace detail

Counter counter(const std::string& name, const std::string& help) {
  return Counter(register_metric(name, help, Kind::Counter));
}

Gauge gauge(const std::string& name, const std::string& help) {
  return Gauge(register_metric(name, help, Kind::Gauge));
}

Histogram histogram(const std::string& name, const std::string& help) {
  return Histogram(register_metric(name, help, Kind::Histogram));
}

ScopedTimer::ScopedTimer(Histogram h) : h_(h), active_(enabled()) {
  if (active_) start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  h_.observe(std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count());
}

// --- Histogram --------------------------------------------------------------

double hist_bucket_bound(int i) {
  return std::exp2(kHistMinExp + static_cast<double>(i) / kHistSubBuckets);
}

int hist_bucket_index(double value) {
  if (!(value > 0.0)) return 0;
  int exp = 0;
  const double m = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  // Quarter-octave sub-bucket from the mantissa: thresholds 0.5 * 2^(k/4).
  const int sub = m < 0.5946035575013605 ? 0 : m < 0.7071067811865476 ? 1
                  : m < 0.8408964152537145 ? 2 : 3;
  const int idx = (exp - 1 - kHistMinExp) * kHistSubBuckets + sub;
  return std::clamp(idx, 0, kHistNumBuckets - 1);
}

void HistogramData::observe(double value) {
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  if (buckets.empty()) buckets.assign(kHistNumBuckets, 0);
  ++buckets[static_cast<std::size_t>(hist_bucket_index(value))];
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  if (!other.buckets.empty()) {
    if (buckets.empty()) buckets.assign(kHistNumBuckets, 0);
    for (std::size_t i = 0; i < buckets.size() && i < other.buckets.size(); ++i)
      buckets[i] += other.buckets[i];
  }
}

double HistogramData::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  if (p == 0.0) return min;
  if (buckets.empty()) return min;  // parsed snapshots may carry no buckets
  // Target rank (1-based); walk the cumulative distribution to its bucket.
  const double target = std::max(1.0, p * static_cast<double>(count));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(cum + buckets[i]) >= target) {
      const double within = (target - static_cast<double>(cum)) /
                            static_cast<double>(buckets[i]);
      const double lo = hist_bucket_bound(static_cast<int>(i));
      const double hi = hist_bucket_bound(static_cast<int>(i) + 1);
      return std::clamp(lo + within * (hi - lo), min, max);
    }
    cum += buckets[i];
  }
  return max;
}

// --- Snapshot ---------------------------------------------------------------

const MetricValue* Snapshot::find(const std::string& name) const {
  for (const auto& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& om : other.metrics) {
    MetricValue* mine = nullptr;
    for (auto& m : metrics)
      if (m.name == om.name && m.kind == om.kind) {
        mine = &m;
        break;
      }
    if (mine == nullptr) {
      metrics.push_back(om);
      continue;
    }
    switch (om.kind) {
      case Kind::Counter: mine->count += om.count; break;
      case Kind::Gauge: mine->value = std::max(mine->value, om.value); break;
      case Kind::Histogram: mine->hist.merge(om.hist); break;
    }
  }
  std::sort(metrics.begin(), metrics.end(), [](const MetricValue& a, const MetricValue& b) {
    return a.name != b.name ? a.name < b.name : a.kind < b.kind;
  });
}

Snapshot snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  Snapshot snap;
  snap.metrics.reserve(reg.infos.size());
  for (const auto& info : reg.infos) {
    MetricValue mv;
    mv.name = info.name;
    mv.help = info.help;
    mv.kind = info.kind;
    const auto slot = static_cast<std::size_t>(info.slot);
    switch (info.kind) {
      case Kind::Counter:
        for (const auto& s : reg.shards)
          if (slot < s->counters.size()) mv.count += s->counters[slot];
        break;
      case Kind::Gauge:
        mv.value = reg.gauges[slot].load(std::memory_order_relaxed);
        break;
      case Kind::Histogram:
        for (const auto& s : reg.shards)
          if (slot < s->hists.size() && s->hists[slot]) mv.hist.merge(*s->hists[slot]);
        break;
    }
    snap.metrics.push_back(std::move(mv));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name != b.name ? a.name < b.name : a.kind < b.kind;
            });
  return snap;
}

Snapshot delta(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  out.label = after.label;
  for (const auto& am : after.metrics) {
    const MetricValue* bm = nullptr;
    for (const auto& m : before.metrics)
      if (m.name == am.name && m.kind == am.kind) {
        bm = &m;
        break;
      }
    MetricValue d = am;
    if (bm != nullptr) {
      switch (am.kind) {
        case Kind::Counter: d.count = am.count >= bm->count ? am.count - bm->count : 0; break;
        case Kind::Gauge: break;  // keep after's level
        case Kind::Histogram: {
          d.hist.count = am.hist.count >= bm->hist.count ? am.hist.count - bm->hist.count : 0;
          d.hist.sum = am.hist.sum - bm->hist.sum;
          if (!am.hist.buckets.empty()) {
            d.hist.buckets = am.hist.buckets;
            for (std::size_t i = 0; i < d.hist.buckets.size() && i < bm->hist.buckets.size(); ++i)
              d.hist.buckets[i] -= std::min(d.hist.buckets[i], bm->hist.buckets[i]);
          }
          break;
        }
      }
    }
    out.metrics.push_back(std::move(d));
  }
  return out;
}

// --- Exporters --------------------------------------------------------------

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  for (const auto& m : snap.metrics) {
    if (!m.help.empty()) out += "# HELP " + m.name + " " + m.help + "\n";
    out += "# TYPE " + m.name + " " + to_string(m.kind) + "\n";
    switch (m.kind) {
      case Kind::Counter:
        out += m.name + " " + std::to_string(m.count) + "\n";
        break;
      case Kind::Gauge:
        out += m.name + " " + format_double(m.value) + "\n";
        break;
      case Kind::Histogram: {
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < m.hist.buckets.size(); ++i) {
          if (m.hist.buckets[i] == 0) continue;
          cum += m.hist.buckets[i];
          out += m.name + "_bucket{le=\"" +
                 format_double(hist_bucket_bound(static_cast<int>(i) + 1)) + "\"} " +
                 std::to_string(cum) + "\n";
        }
        out += m.name + "_bucket{le=\"+Inf\"} " + std::to_string(m.hist.count) + "\n";
        out += m.name + "_sum " + format_double(m.hist.sum) + "\n";
        out += m.name + "_count " + std::to_string(m.hist.count) + "\n";
        break;
      }
    }
  }
  return out;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", static_cast<unsigned>(c));
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string to_json(const Snapshot& snap) {
  std::string out = "{\"schema\":\"dnnperf-metrics-v1\"";
  if (!snap.label.empty()) {
    out += ",\"label\":\"";
    append_json_escaped(out, snap.label);
    out += "\"";
  }
  out += ",\"metrics\":[\n";
  for (std::size_t i = 0; i < snap.metrics.size(); ++i) {
    const auto& m = snap.metrics[i];
    out += "{\"name\":\"";
    append_json_escaped(out, m.name);
    out += "\",\"kind\":\"";
    out += to_string(m.kind);
    out += "\"";
    if (!m.help.empty()) {
      out += ",\"help\":\"";
      append_json_escaped(out, m.help);
      out += "\"";
    }
    switch (m.kind) {
      case Kind::Counter: out += ",\"value\":" + std::to_string(m.count); break;
      case Kind::Gauge: out += ",\"value\":" + format_double(m.value); break;
      case Kind::Histogram:
        out += ",\"count\":" + std::to_string(m.hist.count);
        out += ",\"sum\":" + format_double(m.hist.sum);
        out += ",\"min\":" + format_double(m.hist.min);
        out += ",\"max\":" + format_double(m.hist.max);
        out += ",\"p50\":" + format_double(m.hist.percentile(0.50));
        out += ",\"p95\":" + format_double(m.hist.percentile(0.95));
        out += ",\"p99\":" + format_double(m.hist.percentile(0.99));
        out += ",\"buckets\":[";
        {
          bool first = true;
          for (std::size_t b = 0; b < m.hist.buckets.size(); ++b) {
            if (m.hist.buckets[b] == 0) continue;
            if (!first) out += ',';
            first = false;
            out += "[" + std::to_string(b) + "," + std::to_string(m.hist.buckets[b]) + "]";
          }
        }
        out += "]";
        break;
    }
    out += "}";
    if (i + 1 < snap.metrics.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

std::string to_csv(const Snapshot& snap) {
  std::string out = "name,kind,value,count,sum,min,max,mean,p50,p95,p99\n";
  for (const auto& m : snap.metrics) {
    out += m.name;
    out += ',';
    out += to_string(m.kind);
    switch (m.kind) {
      case Kind::Counter: out += "," + std::to_string(m.count) + ",,,,,,,,"; break;
      case Kind::Gauge: out += "," + format_double(m.value) + ",,,,,,,,"; break;
      case Kind::Histogram:
        out += ",," + std::to_string(m.hist.count) + "," + format_double(m.hist.sum) + "," +
               format_double(m.hist.min) + "," + format_double(m.hist.max) + "," +
               format_double(m.hist.mean()) + "," + format_double(m.hist.percentile(0.50)) +
               "," + format_double(m.hist.percentile(0.95)) + "," +
               format_double(m.hist.percentile(0.99));
        break;
    }
    out += '\n';
  }
  return out;
}

void write_json_file(const Snapshot& snap, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("metrics: cannot open " + path + " for writing");
  out << to_json(snap);
  out.flush();
  if (!out) throw std::runtime_error("metrics: failed writing " + path);
}

// --- JSON parsing (shared util/jsonlite parser) -----------------------------

namespace {

using Json = jsonlite::Value;

Kind kind_from_string(const std::string& s) {
  if (s == "counter") return Kind::Counter;
  if (s == "gauge") return Kind::Gauge;
  if (s == "histogram") return Kind::Histogram;
  throw std::runtime_error("metrics JSON: unknown metric kind '" + s + "'");
}

}  // namespace

Snapshot parse_json(const std::string& text) {
  const Json doc = jsonlite::parse(text, "metrics JSON");
  if (doc.kind != Json::Kind::Object)
    throw std::runtime_error("metrics JSON: document is not an object");
  const Json* schema = doc.get("schema");
  if (schema == nullptr || schema->string != "dnnperf-metrics-v1")
    throw std::runtime_error("metrics JSON: missing or unknown schema (want dnnperf-metrics-v1)");
  Snapshot snap;
  if (const Json* label = doc.get("label")) snap.label = label->string;
  for (const Json& jm : doc.at("metrics").array) {
    MetricValue mv;
    mv.name = jm.at("name").string;
    mv.kind = kind_from_string(jm.at("kind").string);
    if (const Json* help = jm.get("help")) mv.help = help->string;
    switch (mv.kind) {
      case Kind::Counter:
        mv.count = static_cast<std::uint64_t>(jm.at("value").number);
        break;
      case Kind::Gauge: mv.value = jm.at("value").number; break;
      case Kind::Histogram: {
        mv.hist.count = static_cast<std::uint64_t>(jm.at("count").number);
        mv.hist.sum = jm.at("sum").number;
        mv.hist.min = jm.at("min").number;
        mv.hist.max = jm.at("max").number;
        if (const Json* buckets = jm.get("buckets"); buckets != nullptr &&
                                                     !buckets->array.empty()) {
          mv.hist.buckets.assign(kHistNumBuckets, 0);
          for (const Json& pair : buckets->array) {
            if (pair.array.size() != 2)
              throw std::runtime_error("metrics JSON: bucket entries are [index,count] pairs");
            const auto idx = static_cast<std::size_t>(pair.array[0].number);
            if (idx >= mv.hist.buckets.size())
              throw std::runtime_error("metrics JSON: bucket index out of range");
            mv.hist.buckets[idx] = static_cast<std::uint64_t>(pair.array[1].number);
          }
        }
        break;
      }
    }
    snap.metrics.push_back(std::move(mv));
  }
  return snap;
}

// --- Regression diff --------------------------------------------------------

namespace {

double rel_change(double base, double current) {
  if (base == 0.0) return 0.0;
  return (current - base) / std::abs(base);
}

std::string percent(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", rel * 100.0);
  return buf;
}

}  // namespace

bool DiffResult::regression() const {
  return std::any_of(entries.begin(), entries.end(),
                     [](const DiffEntry& e) { return e.regression; });
}

std::string DiffResult::render() const {
  std::ostringstream os;
  for (const auto& e : entries) {
    if (e.note.empty() && !e.regression) continue;  // unchanged: keep output short
    os << (e.regression ? "REGRESSION " : "           ") << e.name << " [" << to_string(e.kind)
       << "] " << format_double(e.base) << " -> " << format_double(e.current);
    if (!e.note.empty()) os << "  (" << e.note << ")";
    os << '\n';
  }
  const auto regressions =
      std::count_if(entries.begin(), entries.end(), [](const DiffEntry& e) { return e.regression; });
  os << entries.size() << " metrics compared, " << regressions << " regression(s)\n";
  return os.str();
}

DiffResult diff_snapshots(const Snapshot& base, const Snapshot& current,
                          const DiffThresholds& th) {
  DiffResult out;
  for (const auto& bm : base.metrics) {
    DiffEntry e;
    e.name = bm.name;
    e.kind = bm.kind;
    const MetricValue* cm = nullptr;
    for (const auto& m : current.metrics)
      if (m.name == bm.name && m.kind == bm.kind) {
        cm = &m;
        break;
      }
    switch (bm.kind) {
      case Kind::Counter: {
        e.base = static_cast<double>(bm.count);
        if (cm == nullptr) {
          e.regression = th.check_counters;
          e.note = "only in base";
          break;
        }
        e.current = static_cast<double>(cm->count);
        e.change_rel = rel_change(e.base, e.current);
        if (th.check_counters && std::abs(e.change_rel) > th.counter_rel &&
            e.base != e.current) {
          e.regression = true;
          e.note = "count drift " + percent(e.change_rel) + " > " +
                   percent(th.counter_rel).substr(1);
        } else if (e.base != e.current) {
          e.note = "count drift " + percent(e.change_rel);
        }
        break;
      }
      case Kind::Gauge: {
        e.base = bm.value;
        if (cm == nullptr) {
          e.note = "only in base";
          break;
        }
        e.current = cm->value;
        e.change_rel = rel_change(e.base, e.current);
        if (th.check_rates && is_rate_gauge(bm.name) && e.change_rel < -th.rate_rel) {
          e.regression = true;
          e.note = "rate dropped " + percent(e.change_rel);
        }
        break;
      }
      case Kind::Histogram: {
        e.base = bm.hist.percentile(0.50);
        if (cm == nullptr) {
          e.regression = th.check_timers;
          e.note = "only in base";
          break;
        }
        e.current = cm->hist.percentile(0.50);
        e.change_rel = rel_change(e.base, e.current);
        if (th.check_timers && e.change_rel > th.timer_rel) {
          e.regression = true;
          e.note = "p50 inflated " + percent(e.change_rel) + " > " +
                   percent(th.timer_rel).substr(1);
        }
        break;
      }
    }
    out.entries.push_back(std::move(e));
  }
  for (const auto& cm : current.metrics) {
    const bool in_base = std::any_of(base.metrics.begin(), base.metrics.end(),
                                     [&](const MetricValue& m) {
                                       return m.name == cm.name && m.kind == cm.kind;
                                     });
    if (in_base) continue;
    DiffEntry e;
    e.name = cm.name;
    e.kind = cm.kind;
    e.current = cm.kind == Kind::Counter ? static_cast<double>(cm.count)
                : cm.kind == Kind::Gauge ? cm.value
                                         : cm.hist.percentile(0.50);
    e.note = "new metric";
    out.entries.push_back(std::move(e));
  }
  return out;
}

}  // namespace dnnperf::util::metrics
