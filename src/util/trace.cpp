#include "util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace dnnperf::util::trace {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Hard per-thread cap so a forgotten enabled flag cannot exhaust memory;
/// overflow is counted and reported in the emitted document.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 22;

struct Event {
  char ph;            ///< 'X' complete, 'i' instant, 'C' counter, 'M' metadata
  int pid;
  int tid;
  std::uint64_t ts_us;
  std::uint64_t dur_us;  ///< complete events only
  const char* cat;       ///< static string or nullptr
  std::string name;
  std::string args;      ///< raw `"k":v` pairs without braces, may be empty
};

struct ThreadBuffer {
  int tid = 0;
  std::size_t dropped = 0;
  std::vector<Event> events;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  ///< owns buffers past thread exit
  int next_tid = 1;
  std::atomic<std::uint64_t> generation{1};
  std::atomic<std::int64_t> epoch_ns{
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now().time_since_epoch())
          .count()};
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<bool> g_enabled{false};

/// The calling thread's buffer, registered on first use (or first use after
/// a reset()); subsequent calls are two thread-local reads plus one relaxed
/// atomic load.
ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* cached = nullptr;
  thread_local std::uint64_t cached_gen = 0;
  Registry& reg = registry();
  const std::uint64_t gen = reg.generation.load(std::memory_order_acquire);
  if (cached == nullptr || cached_gen != gen) {
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.buffers.push_back(std::make_unique<ThreadBuffer>());
    cached = reg.buffers.back().get();
    cached->tid = reg.next_tid++;
    cached_gen = gen;
  }
  return *cached;
}

void record(char ph, int pid, int tid_or_local, std::uint64_t ts_us, std::uint64_t dur_us,
            const char* cat, std::string name, std::string args) {
  ThreadBuffer& buf = local_buffer();
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(Event{ph, pid, tid_or_local < 0 ? buf.tid : tid_or_local, ts_us, dur_us,
                             cat, std::move(name), std::move(args)});
}

constexpr int kLocalTid = -1;

std::uint64_t seconds_to_us(double s) {
  return s <= 0.0 ? 0 : static_cast<std::uint64_t>(s * 1e6 + 0.5);
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", static_cast<unsigned>(c));
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

void write_event(std::ostream& os, const Event& e) {
  std::string line = "{\"name\":\"";
  append_escaped(line, e.name);
  line += "\",\"cat\":\"";
  line += (e.cat != nullptr ? e.cat : "trace");
  line += "\",\"ph\":\"";
  line += e.ph;
  line += "\",\"ts\":" + std::to_string(e.ts_us);
  if (e.ph == 'X') line += ",\"dur\":" + std::to_string(e.dur_us);
  line += ",\"pid\":" + std::to_string(e.pid) + ",\"tid\":" + std::to_string(e.tid);
  if (e.ph == 'i') line += ",\"s\":\"t\"";  // thread-scoped instant
  if (!e.args.empty()) line += ",\"args\":{" + e.args + "}";
  line += "}";
  os << line;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.buffers.clear();
  reg.next_tid = 1;
  reg.epoch_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         SteadyClock::now().time_since_epoch())
                         .count(),
                     std::memory_order_relaxed);
  reg.generation.fetch_add(1, std::memory_order_acq_rel);
}

std::uint64_t now_us() {
  const auto now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now().time_since_epoch())
          .count();
  const auto epoch = registry().epoch_ns.load(std::memory_order_relaxed);
  return now_ns <= epoch ? 0 : static_cast<std::uint64_t>(now_ns - epoch) / 1000;
}

std::size_t event_count() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::size_t n = 0;
  for (const auto& b : reg.buffers) n += b->events.size();
  return n;
}

Args& Args::add(const char* key, std::int64_t value) {
  if (!json_.empty()) json_ += ',';
  json_ += '"';
  json_ += key;
  json_ += "\":" + std::to_string(value);
  return *this;
}

Args& Args::add(const char* key, std::uint64_t value) {
  if (!json_.empty()) json_ += ',';
  json_ += '"';
  json_ += key;
  json_ += "\":" + std::to_string(value);
  return *this;
}

Args& Args::add(const char* key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  if (!json_.empty()) json_ += ',';
  json_ += '"';
  json_ += key;
  json_ += "\":";
  json_ += buf;
  return *this;
}

Args& Args::add(const char* key, const char* value) { return add(key, std::string(value)); }

Args& Args::add(const char* key, const std::string& value) {
  if (!json_.empty()) json_ += ',';
  json_ += '"';
  json_ += key;
  json_ += "\":\"";
  append_escaped(json_, value);
  json_ += '"';
  return *this;
}

void emit_complete(std::string name, const char* cat, std::uint64_t ts_us, std::uint64_t dur_us,
                   std::string args_json) {
  if (!enabled()) return;
  record('X', kRealPid, kLocalTid, ts_us, dur_us, cat, std::move(name), std::move(args_json));
}

void emit_instant(std::string name, const char* cat, std::string args_json) {
  if (!enabled()) return;
  record('i', kRealPid, kLocalTid, now_us(), 0, cat, std::move(name), std::move(args_json));
}

void emit_counter(const char* name, double value) {
  if (!enabled()) return;
  record('C', kRealPid, 0, now_us(), 0, nullptr, name,
         std::move(Args().add("value", value)).str());
}

void set_thread_name(const std::string& name) {
  if (!enabled()) return;
  record('M', kRealPid, kLocalTid, 0, 0, "__metadata", "thread_name",
         std::move(Args().add("name", name)).str());
}

void emit_virtual_complete(std::string name, const char* cat, int pid, int tid, double ts_s,
                           double dur_s, std::string args_json) {
  if (!enabled()) return;
  record('X', pid, tid, seconds_to_us(ts_s), seconds_to_us(dur_s), cat, std::move(name),
         std::move(args_json));
}

void emit_virtual_instant(std::string name, const char* cat, int pid, int tid, double ts_s,
                          std::string args_json) {
  if (!enabled()) return;
  record('i', pid, tid, seconds_to_us(ts_s), 0, cat, std::move(name), std::move(args_json));
}

void emit_virtual_counter(const char* name, int pid, double ts_s, double value) {
  if (!enabled()) return;
  record('C', pid, 0, seconds_to_us(ts_s), 0, nullptr, name,
         std::move(Args().add("value", value)).str());
}

void set_virtual_track_name(int pid, int tid, const std::string& process_name,
                            const std::string& thread_name) {
  if (!enabled()) return;
  record('M', pid, 0, 0, 0, "__metadata", "process_name",
         std::move(Args().add("name", process_name)).str());
  record('M', pid, tid, 0, 0, "__metadata", "thread_name",
         std::move(Args().add("name", thread_name)).str());
}

void write_json(std::ostream& os) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<const Event*> all;
  std::size_t dropped = 0;
  for (const auto& b : reg.buffers) {
    dropped += b->dropped;
    for (const Event& e : b->events) all.push_back(&e);
  }
  // Metadata first, then by timestamp, so viewers name tracks before any
  // span lands on them.
  std::stable_sort(all.begin(), all.end(), [](const Event* a, const Event* b) {
    if ((a->ph == 'M') != (b->ph == 'M')) return a->ph == 'M';
    return a->ts_us < b->ts_us;
  });
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    write_event(os, *all[i]);
    if (i + 1 < all.size()) os << ',';
    os << '\n';
  }
  if (dropped > 0) {
    if (!all.empty()) os << ',';
    Event note{'i', kRealPid, 0, 0, 0, "trace", "events_dropped",
               std::move(Args().add("count", static_cast<std::uint64_t>(dropped))).str()};
    write_event(os, note);
    os << '\n';
  }
  os << "]}\n";
}

void write_json_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot open " + path + " for writing");
  write_json(out);
  out.flush();
  if (!out) throw std::runtime_error("trace: failed writing " + path);
}

Span::Span(const char* cat, const char* name) : active_(enabled()) {
  if (active_) {
    cat_ = cat;
    name_ = name;
    start_ = now_us();
  }
}

Span::Span(const char* cat, std::string name) : active_(enabled()) {
  if (active_) {
    cat_ = cat;
    name_ = std::move(name);
    start_ = now_us();
  }
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end = now_us();
  const std::uint64_t dur = end > start_ ? end - start_ : 0;
  if (flops_ > 0.0 && dur > 0) {
    // GFLOP/s = flops / (dur_us * 1e-6) / 1e9.
    Args extra;
    extra.add("gflops", flops_ / (static_cast<double>(dur) * 1e3));
    if (!args_.empty()) args_ += ',';
    args_ += std::move(extra).str();
  }
  record('X', kRealPid, kLocalTid, start_, dur, cat_, std::move(name_), std::move(args_));
}

}  // namespace dnnperf::util::trace
