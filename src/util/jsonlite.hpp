// Minimal JSON parser (RFC 8259 subset: objects, arrays, strings, numbers,
// true/false/null) shared by every consumer that reads the repo's own JSON
// artifacts back in — metrics snapshots (util/metrics), diagnostic envelopes
// (util/diag), Chrome-trace documents (analysis/verify), and the tests. The
// repo deliberately has no external JSON dependency; this is just enough
// parser for the subsets our writers emit, kept in one place instead of the
// three private copies that used to exist.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace dnnperf::util::jsonlite {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool has(const std::string& key) const { return object.contains(key); }
  /// nullptr when `key` is absent (or this is not an object).
  const Value* get(const std::string& key) const;
  /// Throws std::runtime_error when `key` is absent.
  const Value& at(const std::string& key) const;
};

/// Parses one JSON document; trailing non-whitespace is an error. Throws
/// std::runtime_error on malformed input, prefixing messages with `who`
/// so callers can say which artifact was bad ("metrics JSON", "trace JSON").
Value parse(const std::string& text, const std::string& who = "JSON");

}  // namespace dnnperf::util::jsonlite
