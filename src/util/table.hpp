// Text table / CSV rendering for benchmark output.
//
// Every figure-reproduction binary prints its series through TextTable so the
// output format is uniform and machine-parsable (a CSV dump accompanies the
// aligned text form).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dnnperf::util {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Renders an aligned, pipe-separated table.
  std::string to_text() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dnnperf::util
