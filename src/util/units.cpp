#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace dnnperf::util {

namespace {

std::string printf_str(const char* fmt, double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v, suffix);
  return buf;
}

}  // namespace

std::string format_bytes(double bytes) {
  if (bytes >= kGiB) return printf_str("%.2f %s", bytes / kGiB, "GiB");
  if (bytes >= kMiB) return printf_str("%.2f %s", bytes / kMiB, "MiB");
  if (bytes >= kKiB) return printf_str("%.1f %s", bytes / kKiB, "KiB");
  return printf_str("%.0f %s", bytes, "B");
}

std::string format_time(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) return printf_str("%.3f %s", seconds, "s");
  if (abs >= 1e-3) return printf_str("%.3f %s", seconds * 1e3, "ms");
  if (abs >= 1e-6) return printf_str("%.3f %s", seconds * 1e6, "us");
  return printf_str("%.1f %s", seconds * 1e9, "ns");
}

std::string format_rate(double per_second, const std::string& unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s/s", per_second, unit.c_str());
  return buf;
}

}  // namespace dnnperf::util
