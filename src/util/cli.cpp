#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dnnperf::util {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help, bool default_value) {
  Option opt;
  opt.kind = Kind::Flag;
  opt.help = help;
  opt.flag_value = default_value;
  options_[name] = std::move(opt);
}

void CliParser::add_int(const std::string& name, const std::string& help,
                        std::int64_t default_value) {
  Option opt;
  opt.kind = Kind::Int;
  opt.help = help;
  opt.int_value = default_value;
  options_[name] = std::move(opt);
}

void CliParser::add_double(const std::string& name, const std::string& help,
                           double default_value) {
  Option opt;
  opt.kind = Kind::Double;
  opt.help = help;
  opt.double_value = default_value;
  options_[name] = std::move(opt);
}

void CliParser::add_string(const std::string& name, const std::string& help,
                           std::string default_value) {
  Option opt;
  opt.kind = Kind::String;
  opt.help = help;
  opt.string_value = std::move(default_value);
  options_[name] = std::move(opt);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    bool negated = false;
    if (options_.find(name) == options_.end() && name.rfind("no-", 0) == 0) {
      const std::string positive = name.substr(3);
      if (auto it = options_.find(positive); it != options_.end() && it->second.kind == Kind::Flag) {
        name = positive;
        negated = true;
      }
    }
    auto it = options_.find(name);
    if (it == options_.end()) throw std::invalid_argument("unknown flag: --" + name);
    Option& opt = it->second;
    if (opt.kind == Kind::Flag) {
      if (has_value)
        opt.flag_value = (value == "true" || value == "1" || value == "yes");
      else
        opt.flag_value = !negated;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) throw std::invalid_argument("flag --" + name + " expects a value");
      value = argv[++i];
    }
    try {
      switch (opt.kind) {
        case Kind::Int: opt.int_value = std::stoll(value); break;
        case Kind::Double: opt.double_value = std::stod(value); break;
        case Kind::String: opt.string_value = value; break;
        case Kind::Flag: break;
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("bad value for --" + name + ": " + value);
    }
  }
  return true;
}

const CliParser::Option& CliParser::lookup(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  if (it == options_.end()) throw std::invalid_argument("undeclared flag: --" + name);
  if (it->second.kind != kind) throw std::invalid_argument("flag type mismatch: --" + name);
  return it->second;
}

bool CliParser::get_flag(const std::string& name) const {
  return lookup(name, Kind::Flag).flag_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return lookup(name, Kind::Int).int_value;
}

double CliParser::get_double(const std::string& name) const {
  return lookup(name, Kind::Double).double_value;
}

const std::string& CliParser::get_string(const std::string& name) const {
  return lookup(name, Kind::String).string_value;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::Flag: os << " (bool, default " << (opt.flag_value ? "true" : "false") << ")"; break;
      case Kind::Int: os << " <int, default " << opt.int_value << ">"; break;
      case Kind::Double: os << " <float, default " << opt.double_value << ">"; break;
      case Kind::String: os << " <string, default \"" << opt.string_value << "\">"; break;
    }
    os << "\n      " << opt.help << "\n";
  }
  return os.str();
}

}  // namespace dnnperf::util
