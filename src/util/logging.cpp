#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace dnnperf::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const char* file, int line, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(level), basename_of(file), line,
               msg.c_str());
}

}  // namespace dnnperf::util
