// Diagnostics engine for the static-analysis passes (src/analysis).
//
// A Diagnostic is one finding: a stable code ("G001", "H003", ...), a
// severity, the object and field it refers to ("Inception-v3", "mixed5b/add"
// or "Skylake-1", "threads_per_core"), a message, and a fix hint. Passes
// append findings to a Diagnostics collector; renderers turn the collection
// into compiler-style text or a JSON array for CI.
//
// Code families: Gxxx graph, Pxxx platform, Nxxx network topology,
// Hxxx Horovod policy, Sxxx schedule/run configuration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dnnperf::util {

enum class Severity {
  Advice,  ///< tuning guidance; config runs but is likely leaving perf on the table
  Warn,    ///< suspicious but runnable; results may not mean what you think
  Error,   ///< invariant violated; running would produce garbage numbers
};

const char* to_string(Severity severity);

struct Diagnostic {
  std::string code;     ///< stable id, e.g. "G001"
  Severity severity = Severity::Error;
  std::string object;   ///< what was linted: model, platform, cluster, config name
  std::string field;    ///< offending field or sub-object ("ppn", "mixed5b/add")
  std::string message;  ///< what is wrong
  std::string hint;     ///< how to fix it (may be empty)
};

/// Append-only collector passed through every analysis pass.
class Diagnostics {
 public:
  void add(Diagnostic d);
  /// Shorthands; `hint` may be empty.
  void error(std::string code, std::string object, std::string field, std::string message,
             std::string hint = {});
  void warn(std::string code, std::string object, std::string field, std::string message,
            std::string hint = {});
  void advice(std::string code, std::string object, std::string field, std::string message,
              std::string hint = {});

  const std::vector<Diagnostic>& items() const { return items_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t count(Severity severity) const;
  bool has_errors() const { return count(Severity::Error) > 0; }
  /// True if any finding carries `code`.
  bool has_code(const std::string& code) const;

  /// Appends every finding of `other` (pass composition).
  void merge(const Diagnostics& other);

 private:
  std::vector<Diagnostic> items_;
};

/// Inverse of to_string(Severity); throws std::invalid_argument on unknown
/// names.
Severity severity_from_string(const std::string& name);

/// Compiler-style text, one line per finding plus a summary line:
///   error G001 [Inception-v3:mixed5b/add] output shape ... (hint: ...)
std::string render_text(const Diagnostics& diags);

/// Schema-versioned JSON envelope for CI consumption (stable to diff):
///   {"schema":"dnnperf-diag-v1","diagnostics":[{"code":...,...}],
///    "summary":{"errors":N,"warnings":N,"advice":N}}
std::string render_json(const Diagnostics& diags);

/// Parses a render_json() document back into a collector (CI round-trips).
/// Throws std::runtime_error on malformed input or an unknown schema.
Diagnostics parse_diagnostics(const std::string& json_text);

/// GitHub Actions workflow commands, one annotation per finding
/// (::error/::warning/::notice title=CODE::message), so lint and verify
/// findings show inline in CI logs.
std::string render_github(const Diagnostics& diags);

}  // namespace dnnperf::util
