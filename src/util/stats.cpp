#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dnnperf::util {

void RunStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x > 0.0)
    hist_.observe(x);
  else
    ++nonpos_;
}

double RunStats::percentile(double p) const {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("RunStats::percentile: p outside [0,1]");
  if (n_ == 0) return 0.0;
  // The target rank over ALL samples; the first nonpos_ ranks sit at or
  // below zero, outside the log buckets, so they resolve to min().
  const double target = std::max(1.0, p * static_cast<double>(n_));
  if (target <= static_cast<double>(nonpos_)) return min_;
  if (hist_.count == 0) return min_;
  const double p_pos = (target - static_cast<double>(nonpos_)) /
                       static_cast<double>(hist_.count);
  return std::max(min_, hist_.percentile(p_pos));
}

double RunStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunStats::stddev() const { return std::sqrt(variance()); }

double RunStats::coeff_of_variation() const {
  return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0;
}

double mean(const std::vector<double>& xs) {
  RunStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev(const std::vector<double>& xs) {
  RunStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 0.5); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("percentile: p outside [0,1]");
  std::sort(xs.begin(), xs.end());
  const double rank = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double expected_max_normal(double mu, double sigma, std::size_t n) {
  if (n <= 1) return mu;
  const double nn = static_cast<double>(n);
  const double p = (nn - 0.375) / (nn + 0.25);
  return mu + sigma * inverse_normal_cdf(p);
}

double inverse_normal_cdf(double p) {
  if (p <= 0.0 || p >= 1.0) throw std::invalid_argument("inverse_normal_cdf: p outside (0,1)");
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1.0 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geometric_mean: non-positive input");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace dnnperf::util
