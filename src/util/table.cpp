#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dnnperf::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no columns");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_text(); }

}  // namespace dnnperf::util
