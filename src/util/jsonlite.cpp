#include "util/jsonlite.hpp"

#include <cctype>
#include <stdexcept>

namespace dnnperf::util::jsonlite {

const Value* Value::get(const std::string& key) const {
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = get(key);
  if (v == nullptr) throw std::runtime_error("JSON: missing key '" + key + "'");
  return *v;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& who) : s_(text), who_(who) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(who_ + ": " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.string = string();
        return v;
      }
      case 't': literal("true"); return boolean(true);
      case 'f': literal("false"); return boolean(false);
      case 'n': literal("null"); return Value{};
      default: return number();
    }
  }

  static Value boolean(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = b;
    return v;
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) expect(*p);
  }

  Value object() {
    Value v;
    v.kind = Value::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    Value v;
    v.kind = Value::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            const unsigned code =
                static_cast<unsigned>(std::stoul(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            // Our writers only \u-escape control characters; anything outside
            // ASCII is preserved as a placeholder rather than decoded.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: fail("unknown escape");
        }
        continue;
      }
      out += c;
    }
  }

  Value number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a number");
    Value v;
    v.kind = Value::Kind::Number;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  const std::string& who_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text, const std::string& who) {
  return Parser(text, who).parse();
}

}  // namespace dnnperf::util::jsonlite
