// Minimal leveled logging for dnnperf.
//
// Logging is process-global, thread-safe, and writes to stderr. Benchmarks
// and examples default to Warn so their stdout tables stay clean; tests can
// raise the level to Debug for diagnosis.
#pragma once

#include <sstream>
#include <string>

namespace dnnperf::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global log level. Thread-safe.
void set_log_level(LogLevel level);

/// Current global log level.
LogLevel log_level();

/// Emits a single log record (used by the DNNPERF_LOG macro).
void log_message(LogLevel level, const char* file, int line, const std::string& msg);

namespace detail {

class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { log_message(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogCapture& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace dnnperf::util

#define DNNPERF_LOG(level)                                                  \
  if (static_cast<int>(level) < static_cast<int>(::dnnperf::util::log_level())) { \
  } else                                                                    \
    ::dnnperf::util::detail::LogCapture(level, __FILE__, __LINE__)

#define LOG_DEBUG DNNPERF_LOG(::dnnperf::util::LogLevel::Debug)
#define LOG_INFO DNNPERF_LOG(::dnnperf::util::LogLevel::Info)
#define LOG_WARN DNNPERF_LOG(::dnnperf::util::LogLevel::Warn)
#define LOG_ERROR DNNPERF_LOG(::dnnperf::util::LogLevel::Error)
