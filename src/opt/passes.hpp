// Grappler-style rewrite passes over dnn::Graph, each emitting a structured
// RewriteLog, each verified by the equivalence checker (opt/check.hpp)
// before its result is accepted — an unsound rewrite is discarded and
// surfaces as an O0xx diagnostic instead of reaching a measurement.
//
// Pass registry (applied in this order; a pass runs when its bit is set in
// the effective mask = pass_mask & passes_for_level(level)):
//
//   dead-code      (O1)  remove ops that do not contribute to the terminal
//                        output (dead heads and unconsumed chains);
//   identity       (O1)  bypass no-ops: single-input Concat, ReLU-of-ReLU;
//   fuse-conv-bn   (O2)  fold BatchNorm scale/shift into the preceding
//                        convolution's weights and bias (opt/fold.hpp),
//                        recording per-channel numeric evidence the checker
//                        re-derives independently;
//   fuse-conv-act  (O2)  absorb a ReLU into its producer convolution's
//                        epilogue (the activation's FLOPs move into the
//                        conv; its activation tensor disappears).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/graph.hpp"
#include "util/diag.hpp"

namespace dnnperf::opt {

enum class PassId : std::uint32_t {
  DeadCode = 1u << 0,
  Identity = 1u << 1,
  FuseConvBn = 1u << 2,
  FuseConvAct = 1u << 3,
};

constexpr std::uint32_t kAllPasses = 0xFu;

struct PassDesc {
  PassId id;
  const char* name;
  int min_level;  ///< smallest opt level that enables the pass
  const char* summary;
};

const std::vector<PassDesc>& opt_pass_registry();

/// The pass bits an optimizer level enables: 0 = none, 1 = elimination
/// passes, >= 2 = elimination + fusion.
std::uint32_t passes_for_level(int level);

/// Per-channel numeric evidence recorded by fuse-conv-bn: the BN parameters
/// the fold consumed and the (scale, bias) it produced. The equivalence
/// checker re-derives the affine composition from the inputs independently
/// and compares — folding is linear, so agreement at two probe points
/// implies agreement everywhere.
struct FoldSample {
  int channel = 0;
  double gamma = 1.0;
  double beta = 0.0;
  double mean = 0.0;
  double var = 1.0;
  double eps = 1e-5;
  double conv_bias = 0.0;  ///< 0 when the conv had no bias before the fold
  double scale = 1.0;      ///< what the pass folded
  double bias = 0.0;
};

/// One applied rewrite, with the pass's declared effect on the graph's
/// aggregate accounting (per image). The checker verifies these deltas
/// against the actual totals change — exactly.
struct Rewrite {
  std::string pass;
  std::string detail;
  std::vector<int> removed;  ///< pre-pass op ids eliminated
  std::vector<int> changed;  ///< pre-pass op ids mutated in place
  double d_params = 0.0;
  double d_fwd_flops = 0.0;
  double d_bwd_flops = 0.0;
  double d_activation_bytes = 0.0;
  std::vector<FoldSample> folds;  ///< fuse-conv-bn evidence channels
};

struct RewriteLog {
  std::string graph;
  int ops_before = 0;
  int ops_after = 0;
  std::vector<Rewrite> rewrites;

  std::size_t count(const std::string& pass) const;
  double d_params() const;
  double d_fwd_flops() const;
  double d_bwd_flops() const;
  double d_activation_bytes() const;
};

/// Test-only fault injection: makes fuse-conv-bn compute the folded bias
/// with the classic sign error on the mean, which the equivalence checker
/// must reject (O003).
enum class SeededBug { None, WrongFoldedBias };

/// Process-wide seeded bug for paths that cannot pass OptOptions through
/// (the trainer / lint / Experiment gate plumbing tests). None in
/// production; OptOptions::seeded_bug wins when set.
void set_seeded_bug_for_test(SeededBug bug);

struct OptOptions {
  int level = 2;
  std::uint32_t pass_mask = kAllPasses;  ///< intersected with passes_for_level(level)
  SeededBug seeded_bug = SeededBug::None;
  double fold_tolerance = 1e-9;
};

struct OptResult {
  /// The optimized graph — or, when a pass failed verification, the last
  /// graph that passed (the unsound stage is discarded, never applied).
  dnn::Graph graph{""};
  RewriteLog log;
  util::Diagnostics diags;  ///< O0xx findings from the equivalence checker
  bool ok() const { return !diags.has_errors(); }
};

/// Runs the enabled passes in registry order, verifying each stage with the
/// equivalence checker before accepting it. Deterministic.
OptResult optimize(const dnn::Graph& graph, const OptOptions& options = {});

}  // namespace dnnperf::opt
