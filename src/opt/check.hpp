// Equivalence checker for graph rewrites: every pass's output is verified
// against its input before the optimizer accepts it. Violations render as
// O0xx diagnostics through util/diag (dnnperf_lint --optimize, the
// core::Experiment lint gate):
//
//   O001  rewritten graph fails structural/shape re-inference — op ids out
//         of position, non-topological inputs, elementwise shape drift,
//         byte/shape accounting mismatch;
//   O002  the pass's declared accounting deltas (RewriteLog) do not match
//         the actual change in parameter/FLOP/activation totals;
//   O003  folded conv+BN weights numerically diverge from the reference
//         affine composition (the hint carries a minimal rewrite trace);
//   O004  the rewrite changed the graph's observable interface: input or
//         terminal output shapes.
//
// The structural re-check is self-contained (no dependency on
// src/analysis, which sits above this module and itself calls optimize()).
#pragma once

#include "dnn/graph.hpp"
#include "opt/passes.hpp"
#include "util/diag.hpp"

namespace dnnperf::opt {

/// Verifies one pass stage: `after` must be a sound rewrite of `before`
/// per the rewrites recorded in `stage`. Appends O0xx findings to `diags`;
/// a clean stage appends nothing.
void check_rewrite(const dnn::Graph& before, const dnn::Graph& after, const RewriteLog& stage,
                   double fold_tolerance, util::Diagnostics& diags);

}  // namespace dnnperf::opt
