#include "opt/memory_planner.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>

namespace dnnperf::opt {

namespace {

struct Slot {
  double bytes = 0.0;   // per image
  int busy_until = -1;  // inclusive tick of the last assigned interval
};

}  // namespace

MemoryPlan plan_memory(const dnn::Graph& graph, int batch) {
  MemoryPlan plan;
  plan.batch = batch;
  plan.weight_bytes = graph.total_params() * 4.0;
  plan.gradient_bytes = plan.weight_bytes;
  plan.optimizer_bytes = plan.weight_bytes;  // one momentum slot

  const UseDef ud = build_use_def(graph);
  const Liveness lv = compute_liveness(graph, ud);
  plan.peak_live_bytes = lv.peak_bytes * batch;
  plan.peak_tick = lv.peak_tick;
  plan.slot_of.assign(lv.tensors.size(), -1);

  // Liveness tensors are already in ascending def order (activations by op
  // id, then gradients by descending op id = ascending def); sort an index
  // view anyway so the scan never depends on that layout.
  std::vector<std::size_t> order(lv.tensors.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (lv.tensors[a].def != lv.tensors[b].def) return lv.tensors[a].def < lv.tensors[b].def;
    return a < b;
  });

  std::vector<Slot> slots;
  for (const std::size_t t : order) {
    const TensorLife& life = lv.tensors[t];
    if (life.aliased || life.bytes <= 0.0) continue;
    // Best fit among free slots: the smallest one that already holds the
    // tensor; failing that, the largest free slot, grown to size (growing
    // the biggest candidate wastes the least new memory).
    int best_fitting = -1;
    int best_growable = -1;
    for (int s = 0; s < static_cast<int>(slots.size()); ++s) {
      const Slot& slot = slots[static_cast<std::size_t>(s)];
      if (slot.busy_until >= life.def) continue;  // overlapping interval
      if (slot.bytes >= life.bytes) {
        if (best_fitting < 0 ||
            slot.bytes < slots[static_cast<std::size_t>(best_fitting)].bytes)
          best_fitting = s;
      } else if (best_growable < 0 ||
                 slot.bytes > slots[static_cast<std::size_t>(best_growable)].bytes) {
        best_growable = s;
      }
    }
    int chosen = best_fitting >= 0 ? best_fitting : best_growable;
    if (chosen < 0) {
      slots.push_back(Slot{});
      chosen = static_cast<int>(slots.size()) - 1;
    }
    Slot& slot = slots[static_cast<std::size_t>(chosen)];
    slot.bytes = std::max(slot.bytes, life.bytes);
    slot.busy_until = life.last_use;
    plan.slot_of[t] = chosen;
  }

  plan.slot_bytes.reserve(slots.size());
  for (const Slot& slot : slots) {
    plan.slot_bytes.push_back(slot.bytes * batch);
    plan.slab_bytes += slot.bytes * batch;
  }
  return plan;
}

int max_batch_for_plan(const dnn::Graph& graph, double memory_bytes) {
  const MemoryPlan one = plan_memory(graph, 1);
  if (one.total_bytes() > memory_bytes) return 0;
  if (one.slab_bytes <= 0.0) return std::numeric_limits<int>::max();
  return static_cast<int>((memory_bytes - one.persistent_bytes()) / one.slab_bytes);
}

}  // namespace dnnperf::opt
