#include "opt/dataflow.hpp"

#include <algorithm>
#include <cstddef>

namespace dnnperf::opt {

using dnn::Graph;
using dnn::Op;
using dnn::OpKind;

UseDef build_use_def(const Graph& g) {
  const int n = g.size();
  UseDef ud;
  ud.consumers = g.consumers();
  ud.terminal = n - 1;
  ud.from_input.assign(static_cast<std::size_t>(n), 0);
  ud.to_terminal.assign(static_cast<std::size_t>(n), 0);
  if (n == 0) return ud;

  // Forward cone: Input ops are sources; one topological sweep suffices.
  for (const Op& op : g.ops()) {
    const auto i = static_cast<std::size_t>(op.id);
    if (op.kind == OpKind::Input) {
      ud.from_input[i] = 1;
      continue;
    }
    for (int in : op.inputs)
      if (in >= 0 && in < op.id && ud.from_input[static_cast<std::size_t>(in)]) {
        ud.from_input[i] = 1;
        break;
      }
  }

  // Backward cone: ancestors of the terminal op, one reverse sweep.
  ud.to_terminal[static_cast<std::size_t>(ud.terminal)] = 1;
  for (int id = ud.terminal; id >= 0; --id) {
    if (!ud.to_terminal[static_cast<std::size_t>(id)]) continue;
    for (int in : g.op(id).inputs)
      if (in >= 0 && in < id) ud.to_terminal[static_cast<std::size_t>(in)] = 1;
  }
  return ud;
}

bool backward_reads_input(dnn::OpKind kind) {
  switch (kind) {
    case OpKind::Conv2d:     // weight gradient = dY * X
    case OpKind::MatMul:
    case OpKind::BatchNorm:  // batch statistics / x_hat
    case OpKind::MaxPool:    // argmax routing
      return true;
    default:
      return false;
  }
}

bool backward_reads_output(dnn::OpKind kind) {
  switch (kind) {
    case OpKind::ReLU:     // sign mask
    case OpKind::Softmax:  // jacobian is a function of the output
    case OpKind::Dropout:  // kept-element mask (stored with the output)
      return true;
    default:
      return false;
  }
}

Liveness compute_liveness(const Graph& g, const UseDef& ud) {
  const int n = g.size();
  Liveness lv;
  lv.ticks = 2 * n;
  if (n == 0) return lv;
  const int last_tick = 2 * n - 1;
  const auto bwd_tick = [last_tick](int id) { return last_tick - id; };

  // In-place aliasing: an elementwise op may overwrite its single producer's
  // buffer when nobody else reads that buffer afterward — the producer has
  // no other consumer and its backward does not re-read its (overwritten)
  // output. The graph input is never overwritten: the data pipeline owns
  // that batch.
  std::vector<int> buffer(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) buffer[static_cast<std::size_t>(i)] = i;
  for (const Op& op : g.ops()) {
    if (op.kind != OpKind::ReLU && op.kind != OpKind::Dropout) continue;
    if (op.inputs.size() != 1) continue;
    const int p = op.inputs.front();
    if (p < 0 || p >= op.id) continue;
    const Op& prod = g.op(p);
    if (prod.kind == OpKind::Input) continue;
    if (ud.consumers[static_cast<std::size_t>(p)].size() != 1) continue;
    if (backward_reads_output(prod.kind)) continue;
    if (op.output_bytes != prod.output_bytes) continue;
    buffer[static_cast<std::size_t>(op.id)] = buffer[static_cast<std::size_t>(p)];
  }

  // Raw last use of each op's activation on the 2n clock.
  std::vector<int> act_last(static_cast<std::size_t>(n), 0);
  for (const Op& op : g.ops()) {
    int last = op.id;
    for (int c : ud.consumers[static_cast<std::size_t>(op.id)]) {
      last = std::max(last, c);
      if (backward_reads_input(g.op(c).kind)) last = std::max(last, bwd_tick(c));
    }
    if (backward_reads_output(op.kind)) last = std::max(last, bwd_tick(op.id));
    // The loss gradient is computed from the prediction at the terminal's
    // backward tick.
    if (op.id == ud.terminal) last = std::max(last, bwd_tick(op.id));
    act_last[static_cast<std::size_t>(op.id)] = last;
  }
  // Aliased chains extend their representative buffer's interval.
  std::vector<int> rep_last = act_last;
  for (int i = 0; i < n; ++i) {
    const int rep = buffer[static_cast<std::size_t>(i)];
    if (rep != i)
      rep_last[static_cast<std::size_t>(rep)] =
          std::max(rep_last[static_cast<std::size_t>(rep)], act_last[static_cast<std::size_t>(i)]);
  }

  for (const Op& op : g.ops()) {
    TensorLife t;
    t.op = op.id;
    t.def = op.id;
    t.bytes = op.output_bytes;
    t.aliased = buffer[static_cast<std::size_t>(op.id)] != op.id;
    t.last_use = t.aliased ? act_last[static_cast<std::size_t>(op.id)]
                           : rep_last[static_cast<std::size_t>(op.id)];
    lv.tensors.push_back(t);
  }

  // Activation gradients dY_i: the backward of op i's latest consumer writes
  // the first contribution; op i's own backward consumes the accumulated
  // sum. The terminal's gradient is born at its own backward tick (loss).
  // No dX is produced for Input ops.
  for (const Op& op : g.ops()) {
    if (op.kind == OpKind::Input) continue;
    TensorLife t;
    t.op = op.id;
    t.is_gradient = true;
    t.last_use = bwd_tick(op.id);
    t.def = t.last_use;
    for (int c : ud.consumers[static_cast<std::size_t>(op.id)])
      t.def = std::min(t.def, bwd_tick(c));
    t.bytes = op.output_bytes;
    lv.tensors.push_back(t);
  }

  // Interval sweep for the live-bytes profile and its peak.
  std::vector<double> delta(static_cast<std::size_t>(2 * n + 1), 0.0);
  for (const TensorLife& t : lv.tensors) {
    if (t.aliased) continue;
    delta[static_cast<std::size_t>(t.def)] += t.bytes;
    delta[static_cast<std::size_t>(t.last_use) + 1] -= t.bytes;
  }
  lv.live_at_tick.assign(static_cast<std::size_t>(2 * n), 0.0);
  double running = 0.0;
  for (int tick = 0; tick < 2 * n; ++tick) {
    running += delta[static_cast<std::size_t>(tick)];
    lv.live_at_tick[static_cast<std::size_t>(tick)] = running;
    if (running > lv.peak_bytes) {
      lv.peak_bytes = running;
      lv.peak_tick = tick;
    }
  }
  return lv;
}

}  // namespace dnnperf::opt
