// Dataflow analyses over dnn::Graph: use-def chains, reachability cones in
// both directions, and per-tensor liveness intervals on the canonical
// training schedule. Pure analyses — the rewrite passes (opt/passes.hpp)
// and the memory planner (opt/memory_planner.hpp) consume them; nothing
// here mutates a graph.
//
// Schedule model: a training step over an n-op graph runs 2n ticks. Ops are
// stored topologically, so forward of op i executes at tick i and backward
// of op i at tick 2n-1-i (backward visits ops in reverse). Every tensor's
// lifetime is an inclusive interval [def, last_use] on this clock:
//
//   activation A_i   def at i, read by forward consumers, by backward of
//                    consumers that re-read their input (conv, BN, ...),
//                    and by op i's own backward when its kind re-reads its
//                    output (ReLU mask, softmax);
//   gradient dY_i    first written by the backward of op i's latest
//                    consumer, consumed by op i's own backward.
//
// Weight gradients are persistent (they live until the optimizer step and
// never free mid-iteration); they are accounted by the planner, not as
// intervals here.
#pragma once

#include <vector>

#include "dnn/graph.hpp"

namespace dnnperf::opt {

/// Use-def structure: consumers of every op plus both reachability cones.
struct UseDef {
  std::vector<std::vector<int>> consumers;  ///< inverse edges, index = op id
  std::vector<char> from_input;   ///< reachable from op 0 (the graph input)
  std::vector<char> to_terminal;  ///< reaches the terminal (last) op
  int terminal = -1;

  /// An op contributes to the model's output iff both cones cover it.
  bool contributes(int id) const {
    return from_input[static_cast<std::size_t>(id)] != 0 &&
           to_terminal[static_cast<std::size_t>(id)] != 0;
  }
};

UseDef build_use_def(const dnn::Graph& graph);

/// Whether the backward of `kind` re-reads its forward input (conv/matmul
/// weight gradients, BN statistics, maxpool argmax) or its forward output
/// (ReLU mask, softmax jacobian, dropout mask).
bool backward_reads_input(dnn::OpKind kind);
bool backward_reads_output(dnn::OpKind kind);

/// One tensor interval on the 2n-tick clock. Bytes are per image.
struct TensorLife {
  int op = -1;               ///< producing op (activation) or the op whose
                             ///< output gradient this is
  bool is_gradient = false;  ///< activation gradient dY_op
  int def = 0;
  int last_use = 0;
  double bytes = 0.0;
  /// In-place elementwise op whose output shares its producer's buffer
  /// (contributes no bytes of its own; it extends the producer's interval).
  bool aliased = false;
};

struct Liveness {
  int ticks = 0;
  std::vector<TensorLife> tensors;
  /// Live (non-aliased) bytes at each tick; peak across the step, per image.
  std::vector<double> live_at_tick;
  double peak_bytes = 0.0;
  int peak_tick = 0;
};

Liveness compute_liveness(const dnn::Graph& graph, const UseDef& ud);

}  // namespace dnnperf::opt
