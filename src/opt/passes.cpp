#include "opt/passes.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <numeric>
#include <utility>

#include "opt/check.hpp"
#include "opt/dataflow.hpp"
#include "opt/fold.hpp"

namespace dnnperf::opt {

namespace {

using dnn::Graph;
using dnn::Op;
using dnn::OpKind;

std::atomic<SeededBug> g_seeded_bug{SeededBug::None};

/// Rebuilds a graph after a pass marked ops for removal: dropped ops are
/// compacted out, consumers follow `redirect` chains to a kept producer,
/// and ids/input lists are remapped to the new positions. Redirect targets
/// always have smaller ids, so one forward sweep resolves everything.
Graph compact(const Graph& g, std::vector<Op> ops, const std::vector<char>& keep,
              const std::vector<int>& redirect) {
  const auto resolve = [&](int id) {
    while (redirect[static_cast<std::size_t>(id)] != id)
      id = redirect[static_cast<std::size_t>(id)];
    return id;
  };
  std::vector<int> new_id(ops.size(), -1);
  std::vector<Op> out;
  out.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!keep[i]) continue;
    Op op = std::move(ops[i]);
    for (int& in : op.inputs) in = new_id[static_cast<std::size_t>(resolve(in))];
    op.id = static_cast<int>(out.size());
    new_id[i] = op.id;
    out.push_back(std::move(op));
  }
  return Graph::from_ops(g.name(), std::move(out));
}

Graph run_dead_code(const Graph& g, RewriteLog& log) {
  const UseDef ud = build_use_def(g);
  const int n = g.size();
  std::vector<char> keep(static_cast<std::size_t>(n), 1);
  std::vector<int> redirect(static_cast<std::size_t>(n));
  std::iota(redirect.begin(), redirect.end(), 0);
  for (const Op& op : g.ops()) {
    if (op.id == ud.terminal) continue;
    if (ud.to_terminal[static_cast<std::size_t>(op.id)]) continue;
    // The primary Input stays even if the terminal is disconnected from it
    // (that graph is malformed; G004 owns the report, not a rewrite).
    if (op.id == 0 && op.kind == OpKind::Input) continue;
    keep[static_cast<std::size_t>(op.id)] = 0;
    Rewrite rw;
    rw.pass = "dead-code";
    rw.detail = std::string("removed dead ") + dnn::to_string(op.kind) + " '" + op.name +
                "' (output never reaches the terminal)";
    rw.removed = {op.id};
    rw.d_params = -op.params;
    rw.d_fwd_flops = -op.fwd_flops;
    rw.d_bwd_flops = -op.bwd_flops;
    rw.d_activation_bytes = -op.output_bytes;
    log.rewrites.push_back(std::move(rw));
  }
  if (log.rewrites.empty()) return g;
  return compact(g, g.ops(), keep, redirect);
}

Graph run_identity(const Graph& g, RewriteLog& log) {
  const int n = g.size();
  std::vector<Op> ops = g.ops();
  std::vector<char> keep(static_cast<std::size_t>(n), 1);
  std::vector<int> redirect(static_cast<std::size_t>(n));
  std::iota(redirect.begin(), redirect.end(), 0);
  const auto resolve = [&](int id) {
    while (redirect[static_cast<std::size_t>(id)] != id)
      id = redirect[static_cast<std::size_t>(id)];
    return id;
  };
  for (Op& op : ops) {
    if (op.inputs.size() != 1) continue;
    const int target = resolve(op.inputs.front());
    Rewrite rw;
    if (op.kind == OpKind::Concat) {
      rw.detail = "bypassed single-input Concat '" + op.name + "' (identity copy)";
    } else if (op.kind == OpKind::ReLU &&
               ops[static_cast<std::size_t>(target)].kind == OpKind::ReLU) {
      rw.detail = "removed '" + op.name + "' (ReLU of ReLU '" +
                  ops[static_cast<std::size_t>(target)].name + "' is a no-op)";
    } else {
      continue;
    }
    rw.pass = "identity";
    rw.removed = {op.id};
    rw.d_fwd_flops = -op.fwd_flops;
    rw.d_bwd_flops = -op.bwd_flops;
    rw.d_activation_bytes = -op.output_bytes;
    keep[static_cast<std::size_t>(op.id)] = 0;
    redirect[static_cast<std::size_t>(op.id)] = target;
    log.rewrites.push_back(std::move(rw));
  }
  if (log.rewrites.empty()) return g;
  return compact(g, std::move(ops), keep, redirect);
}

/// Deterministic per-channel BN/bias parameters standing in for trained
/// values in the fold evidence; exactly-representable fractions, so the
/// checker's independent recomputation is bit-stable.
FoldSample synth_sample(int channel, bool conv_had_bias) {
  FoldSample fs;
  fs.channel = channel;
  fs.gamma = 1.0 + 0.125 * (channel % 5);
  fs.beta = 0.5 - 0.0625 * (channel % 3);
  fs.mean = 0.25 * (channel % 4) - 0.5;
  fs.var = 1.0 + 0.25 * (channel % 3);
  fs.eps = 1e-5;
  fs.conv_bias = conv_had_bias ? 0.03125 * (channel % 8) - 0.1 : 0.0;
  return fs;
}

Graph run_fuse_conv_bn(const Graph& g, RewriteLog& log, SeededBug bug) {
  const UseDef ud = build_use_def(g);
  const int n = g.size();
  std::vector<Op> ops = g.ops();
  std::vector<char> keep(static_cast<std::size_t>(n), 1);
  std::vector<int> redirect(static_cast<std::size_t>(n));
  std::iota(redirect.begin(), redirect.end(), 0);
  for (int i = 0; i < n; ++i) {
    Op& bn = ops[static_cast<std::size_t>(i)];
    if (bn.kind != OpKind::BatchNorm || bn.inputs.size() != 1) continue;
    const int c = bn.inputs.front();
    if (c < 0 || c >= i) continue;
    Op& conv = ops[static_cast<std::size_t>(c)];
    if (conv.kind != OpKind::Conv2d) continue;
    // The conv's raw output must be private to this BN: another consumer
    // would observe unfolded values.
    if (ud.consumers[static_cast<std::size_t>(c)].size() != 1) continue;

    Rewrite rw;
    rw.pass = "fuse-conv-bn";
    rw.detail = "folded '" + bn.name + "' into '" + conv.name + "'";
    rw.removed = {i};
    rw.changed = {c};
    const bool had_bias = conv.has_bias;
    if (!had_bias) {
      // The fold materializes a per-channel bias (b' = beta - s*mu); the
      // conv gains its cost following the builder's convention: +E forward,
      // twice that backward.
      const double e = conv.out.elements();
      conv.params += conv.out.c;
      conv.fwd_flops += e;
      conv.bwd_flops += 2.0 * e;
      conv.has_bias = true;
      rw.d_params += conv.out.c;
      rw.d_fwd_flops += e;
      rw.d_bwd_flops += 2.0 * e;
    }
    rw.d_params -= bn.params;
    rw.d_fwd_flops -= bn.fwd_flops;
    rw.d_bwd_flops -= bn.bwd_flops;
    rw.d_activation_bytes -= bn.output_bytes;
    keep[static_cast<std::size_t>(i)] = 0;
    redirect[static_cast<std::size_t>(i)] = c;

    const int channels = conv.out.c;
    int samples[3] = {0, channels / 2, channels - 1};
    for (int s = 0; s < 3; ++s) {
      if (s > 0 && samples[s] == samples[s - 1]) continue;
      FoldSample fs = synth_sample(samples[s], had_bias);
      const BnFold fold = fold_bn(fs.gamma, fs.beta, fs.mean, fs.var, fs.eps, fs.conv_bias);
      fs.scale = fold.scale;
      fs.bias = bug == SeededBug::WrongFoldedBias
                    ? fs.beta + fold.scale * (fs.conv_bias + fs.mean)  // sign error on the mean
                    : fold.bias;
      rw.folds.push_back(fs);
    }
    log.rewrites.push_back(std::move(rw));
  }
  if (log.rewrites.empty()) return g;
  return compact(g, std::move(ops), keep, redirect);
}

Graph run_fuse_conv_act(const Graph& g, RewriteLog& log) {
  const UseDef ud = build_use_def(g);
  const int n = g.size();
  std::vector<Op> ops = g.ops();
  std::vector<char> keep(static_cast<std::size_t>(n), 1);
  std::vector<int> redirect(static_cast<std::size_t>(n));
  std::iota(redirect.begin(), redirect.end(), 0);
  for (int i = 0; i < n; ++i) {
    Op& relu = ops[static_cast<std::size_t>(i)];
    if (relu.kind != OpKind::ReLU || relu.inputs.size() != 1) continue;
    const int c = relu.inputs.front();
    if (c < 0 || c >= i) continue;
    Op& conv = ops[static_cast<std::size_t>(c)];
    if (conv.kind != OpKind::Conv2d) continue;
    // The pre-activation output must be private to this ReLU.
    if (ud.consumers[static_cast<std::size_t>(c)].size() != 1) continue;

    Rewrite rw;
    rw.pass = "fuse-conv-act";
    rw.detail = "fused '" + relu.name + "' into '" + conv.name + "' epilogue";
    rw.removed = {i};
    rw.changed = {c};
    // The activation's FLOPs move into the conv epilogue (net zero); its
    // activation tensor disappears.
    conv.fwd_flops += relu.fwd_flops;
    conv.bwd_flops += relu.bwd_flops;
    rw.d_activation_bytes = -relu.output_bytes;
    keep[static_cast<std::size_t>(i)] = 0;
    redirect[static_cast<std::size_t>(i)] = c;
    log.rewrites.push_back(std::move(rw));
  }
  if (log.rewrites.empty()) return g;
  return compact(g, std::move(ops), keep, redirect);
}

Graph run_pass(PassId id, const Graph& g, RewriteLog& stage, SeededBug bug) {
  switch (id) {
    case PassId::DeadCode: return run_dead_code(g, stage);
    case PassId::Identity: return run_identity(g, stage);
    case PassId::FuseConvBn: return run_fuse_conv_bn(g, stage, bug);
    case PassId::FuseConvAct: return run_fuse_conv_act(g, stage);
  }
  return g;
}

}  // namespace

const std::vector<PassDesc>& opt_pass_registry() {
  static const std::vector<PassDesc> table = {
      {PassId::DeadCode, "dead-code", 1,
       "remove ops that do not contribute to the terminal output"},
      {PassId::Identity, "identity", 1,
       "bypass no-ops: single-input Concat, ReLU of ReLU"},
      {PassId::FuseConvBn, "fuse-conv-bn", 2,
       "fold BatchNorm scale/shift into the preceding conv's weights and bias"},
      {PassId::FuseConvAct, "fuse-conv-act", 2,
       "absorb a ReLU into its producer conv's epilogue"},
  };
  return table;
}

std::uint32_t passes_for_level(int level) {
  std::uint32_t mask = 0;
  for (const PassDesc& pd : opt_pass_registry())
    if (level >= pd.min_level) mask |= static_cast<std::uint32_t>(pd.id);
  return mask;
}

std::size_t RewriteLog::count(const std::string& pass) const {
  std::size_t n = 0;
  for (const Rewrite& rw : rewrites)
    if (rw.pass == pass) ++n;
  return n;
}

double RewriteLog::d_params() const {
  double sum = 0.0;
  for (const Rewrite& rw : rewrites) sum += rw.d_params;
  return sum;
}

double RewriteLog::d_fwd_flops() const {
  double sum = 0.0;
  for (const Rewrite& rw : rewrites) sum += rw.d_fwd_flops;
  return sum;
}

double RewriteLog::d_bwd_flops() const {
  double sum = 0.0;
  for (const Rewrite& rw : rewrites) sum += rw.d_bwd_flops;
  return sum;
}

double RewriteLog::d_activation_bytes() const {
  double sum = 0.0;
  for (const Rewrite& rw : rewrites) sum += rw.d_activation_bytes;
  return sum;
}

void set_seeded_bug_for_test(SeededBug bug) { g_seeded_bug.store(bug); }

OptResult optimize(const dnn::Graph& graph, const OptOptions& options) {
  OptResult result;
  result.graph = graph;
  result.log.graph = graph.name();
  result.log.ops_before = graph.size();
  result.log.ops_after = graph.size();
  if (graph.size() == 0) return result;

  const std::uint32_t mask = options.pass_mask & passes_for_level(options.level);
  const SeededBug bug =
      options.seeded_bug != SeededBug::None ? options.seeded_bug : g_seeded_bug.load();

  for (const PassDesc& pd : opt_pass_registry()) {
    if (!(mask & static_cast<std::uint32_t>(pd.id))) continue;
    RewriteLog stage;
    stage.graph = graph.name();
    stage.ops_before = result.graph.size();
    Graph after = run_pass(pd.id, result.graph, stage, bug);
    if (stage.rewrites.empty()) continue;
    stage.ops_after = after.size();

    util::Diagnostics stage_diags;
    check_rewrite(result.graph, after, stage, options.fold_tolerance, stage_diags);
    result.diags.merge(stage_diags);
    if (stage_diags.has_errors()) break;  // discard the unsound stage; keep the verified graph

    result.graph = std::move(after);
    for (Rewrite& rw : stage.rewrites) result.log.rewrites.push_back(std::move(rw));
  }
  result.log.ops_after = result.graph.size();
  return result;
}

}  // namespace dnnperf::opt
