// BatchNorm-fold arithmetic, shared by the graph rewriter (per-channel
// evidence samples in FuseConvBn rewrites, re-derived independently by the
// equivalence checker) and by the ref-trainer fusion bench (folding real
// conv/BN tensors).
//
// BatchNorm after a convolution is an affine map per output channel:
//   BN(y) = gamma * (y - mu) / sqrt(var + eps) + beta,   y = conv(x) + b
// so it folds into the conv exactly:
//   s  = gamma / sqrt(var + eps)
//   W' = s * W
//   b' = beta + s * (b - mu)
#pragma once

namespace dnnperf::opt {

/// Per-channel fold result: every weight of the channel is multiplied by
/// `scale`, and `bias` replaces the channel's conv bias.
struct BnFold {
  double scale = 1.0;
  double bias = 0.0;
};

/// `conv_bias` is 0 when the convolution had no bias term (the fold then
/// materializes one).
BnFold fold_bn(double gamma, double beta, double mean, double var, double eps,
               double conv_bias);

}  // namespace dnnperf::opt
