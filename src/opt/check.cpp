#include "opt/check.hpp"

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace dnnperf::opt {

namespace {

using dnn::Graph;
using dnn::Op;
using dnn::OpKind;
using dnn::Shape;

bool same_shape(const Shape& a, const Shape& b) {
  return a.c == b.c && a.h == b.h && a.w == b.w;
}

std::string shape_str(const Shape& s) {
  return std::to_string(s.c) + "x" + std::to_string(s.h) + "x" + std::to_string(s.w);
}

std::string fmt(double v) { return std::to_string(v); }

/// O001 part 1: id/topology invariants. Returns false when per-op lookups
/// below would be unsafe.
bool check_structure(const Graph& g, const std::string& pass, util::Diagnostics& diags) {
  const std::string& obj = g.name();
  const std::string prefix = "after pass '" + pass + "': ";
  if (g.size() == 0) {
    diags.error("O001", obj, "", prefix + "rewritten graph has no ops");
    return false;
  }
  bool ids_ok = true;
  for (int i = 0; i < g.size(); ++i) {
    const Op& op = g.ops()[static_cast<std::size_t>(i)];
    if (op.id != i) {
      diags.error("O001", obj, op.name,
                  prefix + "op id " + std::to_string(op.id) + " does not match position " +
                      std::to_string(i),
                  "the pass's compaction remapped ids inconsistently");
      ids_ok = false;
    }
    for (int in : op.inputs)
      if (in < 0 || in >= i) {
        diags.error("O001", obj, op.name,
                    prefix + "input id " + std::to_string(in) +
                        " out of range or not topological");
        ids_ok = false;
      }
    if (op.kind == OpKind::Input && !op.inputs.empty())
      diags.error("O001", obj, op.name, prefix + "Input op has producers");
    if (op.kind != OpKind::Input && op.inputs.empty())
      diags.error("O001", obj, op.name, prefix + "non-Input op lost all of its inputs",
                  "a removed producer was not redirected");
  }
  if (g.ops().front().kind != OpKind::Input)
    diags.error("O001", obj, g.ops().front().name, prefix + "first op is not an Input");
  return ids_ok;
}

/// O001 part 2: shape-inference re-run over everything derivable from the
/// stored ops, plus numeric sanity of the per-op accounting.
void check_shapes(const Graph& g, const std::string& pass, util::Diagnostics& diags) {
  const std::string& obj = g.name();
  const std::string prefix = "after pass '" + pass + "': ";
  for (const Op& op : g.ops()) {
    if (op.out.c <= 0 || op.out.h <= 0 || op.out.w <= 0) {
      diags.error("O001", obj, op.name,
                  prefix + "non-positive output shape " + shape_str(op.out));
      continue;
    }
    const double fields[] = {op.fwd_flops, op.bwd_flops, op.params, op.output_bytes};
    const char* names[] = {"fwd_flops", "bwd_flops", "params", "output_bytes"};
    for (int i = 0; i < 4; ++i)
      if (!std::isfinite(fields[i]) || fields[i] < 0.0)
        diags.error("O001", obj, op.name,
                    prefix + std::string(names[i]) + " is negative or non-finite");
    if (std::abs(op.output_bytes - op.out.elements() * 4.0) > 0.5)
      diags.error("O001", obj, op.name,
                  prefix + "output_bytes " + fmt(op.output_bytes) +
                      " disagrees with fp32 shape bytes " + fmt(op.out.elements() * 4.0));
    if (op.inputs.empty()) continue;
    const Shape& in0 = g.op(op.inputs.front()).out;
    switch (op.kind) {
      case OpKind::BatchNorm:
      case OpKind::ReLU:
      case OpKind::Softmax:
      case OpKind::Dropout:
        if (!same_shape(op.out, in0))
          diags.error("O001", obj, op.name,
                      prefix + "elementwise op output " + shape_str(op.out) +
                          " differs from input " + shape_str(in0));
        break;
      case OpKind::Add:
        for (int in : op.inputs)
          if (!same_shape(op.out, g.op(in).out))
            diags.error("O001", obj, op.name,
                        prefix + "Add output " + shape_str(op.out) + " differs from input " +
                            shape_str(g.op(in).out));
        break;
      case OpKind::Concat: {
        int channels = 0;
        for (int in : op.inputs) {
          const Shape& s = g.op(in).out;
          channels += s.c;
          if (s.h != op.out.h || s.w != op.out.w)
            diags.error("O001", obj, op.name,
                        prefix + "Concat input " + shape_str(s) +
                            " spatial dims differ from output " + shape_str(op.out));
        }
        if (channels != op.out.c)
          diags.error("O001", obj, op.name,
                      prefix + "Concat output channels " + std::to_string(op.out.c) +
                          " != sum of input channels " + std::to_string(channels));
        break;
      }
      case OpKind::GlobalAvgPool:
        if (op.out.c != in0.c || op.out.h != 1 || op.out.w != 1)
          diags.error("O001", obj, op.name,
                      prefix + "GlobalAvgPool output " + shape_str(op.out) + " should be " +
                          std::to_string(in0.c) + "x1x1");
        break;
      case OpKind::MaxPool:
      case OpKind::AvgPool:
        if (op.out.c != in0.c)
          diags.error("O001", obj, op.name,
                      prefix + "pooling changed channel count " + std::to_string(in0.c) +
                          " -> " + std::to_string(op.out.c));
        break;
      case OpKind::MatMul:
      case OpKind::Conv2d:
      case OpKind::Input:
        break;  // geometry not reconstructible / no inputs to compare
    }
  }
}

/// O002: the actual change in every aggregate total must equal the sum of
/// the pass's declared deltas — exactly, up to fp round-off in the sums.
void check_accounting(const Graph& before, const Graph& after, const RewriteLog& stage,
                      const std::string& pass, util::Diagnostics& diags) {
  struct Metric {
    const char* name;
    double before;
    double after;
    double declared;
  };
  const Metric metrics[] = {
      {"params", before.total_params(), after.total_params(), stage.d_params()},
      {"fwd_flops", before.total_fwd_flops(), after.total_fwd_flops(), stage.d_fwd_flops()},
      {"bwd_flops", before.total_bwd_flops(), after.total_bwd_flops(), stage.d_bwd_flops()},
      {"activation_bytes", before.total_activation_bytes(), after.total_activation_bytes(),
       stage.d_activation_bytes()},
  };
  for (const Metric& m : metrics) {
    const double actual = m.after - m.before;
    const double tol = 1e-6 * std::max(1.0, std::abs(m.before));
    if (std::abs(actual - m.declared) > tol)
      diags.error("O002", after.name(), m.name,
                  "pass '" + pass + "' declared a " + m.name + " delta of " + fmt(m.declared) +
                      " but the totals changed by " + fmt(actual),
                  "the RewriteLog misstates the pass's effect; every accounting consumer "
                  "(exec model, memory planner, Horovod sizing) would drift");
  }
}

/// O003: re-derive the BN-after-conv affine composition from each fold
/// sample's inputs and compare against what the pass folded. The fold is
/// affine per channel, so agreement at two probe points implies agreement
/// at every activation value.
void check_folds(const Graph& before, const RewriteLog& stage, double tolerance,
                 util::Diagnostics& diags) {
  for (const Rewrite& rw : stage.rewrites) {
    for (const FoldSample& fs : rw.folds) {
      const double inv_std = 1.0 / std::sqrt(fs.var + fs.eps);
      bool bad = false;
      double probe_ref = 0.0;
      double probe_got = 0.0;
      for (const double y : {0.0, 1.0}) {
        const double ref = fs.gamma * ((y + fs.conv_bias) - fs.mean) * inv_std + fs.beta;
        const double got = fs.scale * y + fs.bias;
        if (std::abs(ref - got) > tolerance * std::max(1.0, std::abs(ref))) {
          bad = true;
          probe_ref = ref;
          probe_got = got;
        }
      }
      if (!bad) continue;
      std::string trace = "rewrite trace: " + rw.pass + ", " + rw.detail + ", channel " +
                          std::to_string(fs.channel) + ": folded (scale=" + fmt(fs.scale) +
                          ", bias=" + fmt(fs.bias) + ") vs reference BN(gamma=" +
                          fmt(fs.gamma) + ", beta=" + fmt(fs.beta) + ", mean=" + fmt(fs.mean) +
                          ", var=" + fmt(fs.var) + ", conv_bias=" + fmt(fs.conv_bias) + ")";
      diags.error("O003", before.name(), rw.pass,
                  "folded weights diverge from the BN reference: got " + fmt(probe_got) +
                      ", expected " + fmt(probe_ref),
                  std::move(trace));
    }
  }
}

/// O004: the rewrite must not change what the model consumes or produces.
void check_interface(const Graph& before, const Graph& after, const std::string& pass,
                     util::Diagnostics& diags) {
  const std::string prefix = "after pass '" + pass + "': ";
  if (before.size() == 0 || after.size() == 0) return;  // O001 already fired
  const Shape& tb = before.ops().back().out;
  const Shape& ta = after.ops().back().out;
  if (!same_shape(tb, ta))
    diags.error("O004", after.name(), after.ops().back().name,
                prefix + "terminal output shape changed " + shape_str(tb) + " -> " +
                    shape_str(ta),
                "a rewrite may never alter what the model predicts");
  std::vector<Shape> in_before;
  std::vector<Shape> in_after;
  for (const Op& op : before.ops())
    if (op.kind == OpKind::Input) in_before.push_back(op.out);
  for (const Op& op : after.ops())
    if (op.kind == OpKind::Input) in_after.push_back(op.out);
  if (in_before.size() != in_after.size()) {
    diags.error("O004", after.name(), "inputs",
                prefix + std::to_string(in_before.size()) + " Input ops became " +
                    std::to_string(in_after.size()));
  } else {
    for (std::size_t i = 0; i < in_before.size(); ++i)
      if (!same_shape(in_before[i], in_after[i]))
        diags.error("O004", after.name(), "inputs",
                    prefix + "Input shape changed " + shape_str(in_before[i]) + " -> " +
                        shape_str(in_after[i]));
  }
}

}  // namespace

void check_rewrite(const Graph& before, const Graph& after, const RewriteLog& stage,
                   double fold_tolerance, util::Diagnostics& diags) {
  const std::string pass = stage.rewrites.empty() ? "?" : stage.rewrites.front().pass;
  const bool ids_ok = check_structure(after, pass, diags);
  if (ids_ok) {
    check_shapes(after, pass, diags);
    check_interface(before, after, pass, diags);
  }
  check_accounting(before, after, stage, pass, diags);
  check_folds(before, stage, fold_tolerance, diags);
}

}  // namespace dnnperf::opt
