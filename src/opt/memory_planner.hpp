// Tensor-lifetime memory planner: greedy interval-graph coloring of the
// liveness intervals (opt/dataflow.hpp) over reusable activation slots —
// the exact per-rank training footprint that replaces S008's
// reuse-optimistic estimate.
//
// Two tensors may share a slot iff their [def, last_use] intervals are
// disjoint on the 2n-tick schedule. Tensors are colored in def order
// (equivalent to the optimal left-edge scan for slot COUNT; slot BYTES are
// assigned best-fit with growth, a greedy bound within a small constant of
// the peak). All per-tensor bytes scale uniformly with the batch, so the
// coloring is batch-invariant and the plan is computed per image and
// scaled.
#pragma once

#include <vector>

#include "dnn/graph.hpp"
#include "opt/dataflow.hpp"

namespace dnnperf::opt {

struct MemoryPlan {
  int batch = 1;
  /// Slot sizes in bytes, batch-scaled; slot_of[t] indexes the liveness
  /// tensor list (-1 for aliased tensors, which occupy their producer's
  /// slot).
  std::vector<double> slot_bytes;
  std::vector<int> slot_of;

  /// Bytes of the activation/gradient slab the slots add up to (what a
  /// framework arena would actually reserve), batch-scaled.
  double slab_bytes = 0.0;
  /// Liveness lower bound on any slab (peak simultaneously-live bytes).
  double peak_live_bytes = 0.0;
  int peak_tick = 0;

  /// Parameter-proportional state: fp32 weights, gradients, one momentum
  /// slot (matches dnn::training_memory's persistent terms).
  double weight_bytes = 0.0;
  double gradient_bytes = 0.0;
  double optimizer_bytes = 0.0;

  double persistent_bytes() const { return weight_bytes + gradient_bytes + optimizer_bytes; }
  double total_bytes() const { return persistent_bytes() + slab_bytes; }
  /// How tightly the greedy slots pack the liveness lower bound.
  double slab_utilization() const { return slab_bytes > 0.0 ? peak_live_bytes / slab_bytes : 1.0; }
  int slots() const { return static_cast<int>(slot_bytes.size()); }
};

MemoryPlan plan_memory(const dnn::Graph& graph, int batch);

/// Largest per-rank batch whose planned footprint fits `memory_bytes`
/// (0 if even batch 1 does not fit). Exact inverse of plan_memory: the
/// slab scales linearly with batch, the persistent terms do not.
int max_batch_for_plan(const dnn::Graph& graph, double memory_bytes);

}  // namespace dnnperf::opt
