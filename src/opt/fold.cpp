#include "opt/fold.hpp"

#include <cmath>

namespace dnnperf::opt {

BnFold fold_bn(double gamma, double beta, double mean, double var, double eps,
               double conv_bias) {
  const double inv_std = 1.0 / std::sqrt(var + eps);
  BnFold fold;
  fold.scale = gamma * inv_std;
  fold.bias = beta + fold.scale * (conv_bias - mean);
  return fold;
}

}  // namespace dnnperf::opt
