#include "core/eval_cache.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "analysis/analyze.hpp"
#include "dnn/models.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace dnnperf::core {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// advisor_cache_* counters are registered once and shared by every EvalCache
/// instance — per-instance stats live in EvalCacheStats; the registry view is
/// process-wide like every other metric family.
struct CacheCounters {
  util::metrics::Counter hits = util::metrics::counter(
      "advisor_cache_hits_total", "Eval-cache lookups served without re-simulating");
  util::metrics::Counter misses = util::metrics::counter(
      "advisor_cache_misses_total", "Eval-cache lookups that required a fresh simulation");
  util::metrics::Counter evictions = util::metrics::counter(
      "advisor_cache_evictions_total", "Eval-cache entries evicted at the capacity bound");
};

const CacheCounters& cache_counters() {
  static const CacheCounters c;
  return c;
}

struct LintCounters {
  util::metrics::Counter avoided = util::metrics::counter(
      "core_lint_memo_hits_total",
      "Config lints avoided because the verdict was memoized by config hash");
  util::metrics::Counter runs = util::metrics::counter(
      "core_lint_memo_misses_total", "Config lints actually executed (memo misses)");
};

const LintCounters& lint_counters() {
  static const LintCounters c;
  return c;
}

}  // namespace

// ---- HashStream ------------------------------------------------------------

HashStream& HashStream::mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    state_ ^= (v >> (8 * i)) & 0xffull;
    state_ *= kFnvPrime;
  }
  return *this;
}

HashStream& HashStream::mix(double v) {
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return mix(bits);
}

HashStream& HashStream::mix(const std::string& s) {
  for (const char ch : s) {
    state_ ^= static_cast<std::uint8_t>(ch);
    state_ *= kFnvPrime;
  }
  return mix(static_cast<std::uint64_t>(s.size()));
}

// ---- fingerprints ----------------------------------------------------------

std::uint64_t graph_fingerprint(const dnn::Graph& graph) {
  HashStream h;
  h.mix(graph.name());
  h.mix(graph.size());
  for (const auto& op : graph.ops()) {
    h.mix(static_cast<int>(op.kind));
    h.mix(op.out.c).mix(op.out.h).mix(op.out.w);
    h.mix(op.fwd_flops).mix(op.bwd_flops).mix(op.params).mix(op.output_bytes);
    h.mix(op.has_bias);
    h.mix(static_cast<std::uint64_t>(op.inputs.size()));
    for (const int in : op.inputs) h.mix(in);
  }
  return h.digest();
}

std::uint64_t model_fingerprint(dnn::ModelId model) {
  static std::mutex mutex;
  static std::unordered_map<int, std::uint64_t> memo;
  const int id = static_cast<int>(model);
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (const auto it = memo.find(id); it != memo.end()) return it->second;
  }
  const std::uint64_t fp = graph_fingerprint(dnn::build_model(model));
  std::lock_guard<std::mutex> lock(mutex);
  return memo.emplace(id, fp).first->second;
}

std::uint64_t platform_fingerprint(const hw::ClusterModel& cluster) {
  HashStream h;
  h.mix(cluster.name);
  h.mix(cluster.max_nodes);
  h.mix(static_cast<int>(cluster.fabric));
  h.mix(cluster.node.memory_gib);

  const hw::CpuModel& cpu = cluster.node.cpu;
  h.mix(cpu.name).mix(cpu.label);
  h.mix(static_cast<int>(cpu.vendor));
  h.mix(cpu.sockets).mix(cpu.cores_per_socket).mix(cpu.numa_domains_per_socket);
  h.mix(cpu.threads_per_core);
  h.mix(cpu.clock_ghz).mix(cpu.flops_per_cycle_fp32);
  h.mix(cpu.mem_bw_per_socket_gbps).mix(cpu.smt_speedup_fraction);

  h.mix(cluster.node.has_gpu());
  if (cluster.node.has_gpu()) {
    const hw::GpuModel& gpu = *cluster.node.gpu;
    h.mix(gpu.name);
    h.mix(gpu.peak_fp32_tflops).mix(gpu.mem_bw_gbps);
    h.mix(gpu.launch_overhead_s).mix(gpu.achievable_fraction);
    h.mix(gpu.memory_gib);
    h.mix(gpu.devices_per_node);
  }
  return h.digest();
}

std::uint64_t config_key(const train::TrainConfig& config) {
  HashStream h;
  h.mix(model_fingerprint(config.model));
  h.mix(platform_fingerprint(config.cluster));
  h.mix(static_cast<int>(config.framework));
  h.mix(static_cast<int>(config.device));
  h.mix(config.nodes).mix(config.ppn);
  h.mix(config.intra_threads).mix(config.inter_threads);
  h.mix(config.batch_per_rank);
  h.mix(config.policy.cycle_time_s).mix(config.policy.fusion_threshold_bytes);
  h.mix(config.use_horovod);
  h.mix(config.iterations);
  h.mix(config.jitter_cv);
  h.mix(config.validate_memory);
  h.mix(config.per_rank_sim);
  h.mix(static_cast<int>(config.hierarchy));
  h.mix(config.opt_level);
  h.mix(static_cast<std::uint64_t>(config.opt_pass_mask));
  // Fault scenario: every schedule entry (and the budget — it changes the
  // lint verdict the memo caches under this same key) is content-hashed, so
  // a survivability measurement can never alias the healthy run's entry.
  h.mix(static_cast<std::size_t>(config.faults.slowdowns.size()));
  for (const auto& s : config.faults.slowdowns)
    h.mix(s.rank).mix(s.factor).mix(s.from_step).mix(s.to_step);
  h.mix(static_cast<std::size_t>(config.faults.crashes.size()));
  for (const auto& c : config.faults.crashes) h.mix(c.rank).mix(c.step);
  h.mix(static_cast<std::size_t>(config.faults.rejoins.size()));
  for (const auto& r : config.faults.rejoins) h.mix(r.rank).mix(r.step);
  h.mix(config.faults.fault_budget);
  h.mix(static_cast<std::size_t>(config.link_degrades.size()));
  for (const auto& d : config.link_degrades)
    h.mix(d.level).mix(d.bandwidth_factor).mix(d.latency_factor);
  return h.digest();
}

// ---- EvalCache -------------------------------------------------------------

EvalCache::EvalCache(std::size_t capacity, int shards) : capacity_(capacity) {
  if (shards < 1) throw std::invalid_argument("EvalCache: shards < 1");
  const auto n = static_cast<std::size_t>(shards);
  per_shard_ = capacity == 0 ? 0 : std::max<std::size_t>(1, capacity / n);
  shards_ = std::vector<Shard>(n);
}

EvalCache::Shard& EvalCache::shard_for(std::uint64_t key) {
  // The low bits feed the LRU map's bucket choice; pick the shard from high
  // bits so shards do not correlate with map buckets.
  return shards_[static_cast<std::size_t>(key >> 48) % shards_.size()];
}

const EvalCache::Shard& EvalCache::shard_for(std::uint64_t key) const {
  return shards_[static_cast<std::size_t>(key >> 48) % shards_.size()];
}

std::optional<Measurement> EvalCache::lookup(std::uint64_t key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    cache_counters().misses.inc();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.stats.hits;
  cache_counters().hits.inc();
  return it->second->second;
}

void EvalCache::insert(std::uint64_t key, const Measurement& measurement) {
  if (capacity_ == 0) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->second = measurement;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, measurement);
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > per_shard_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.stats.evictions;
    cache_counters().evictions.inc();
  }
}

std::size_t EvalCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
  }
  return total;
}

void EvalCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.stats = EvalCacheStats{};
  }
}

// ---- LintMemo --------------------------------------------------------------

LintVerdict LintMemo::check(const train::TrainConfig& config, std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = memo_.find(key); it != memo_.end()) {
      ++hits_;
      lint_counters().avoided.inc();
      return it->second;
    }
  }
  // Lint outside the lock: the gate (including the bounded protocol model
  // check) is the expensive part and must not serialize concurrent misses.
  const util::Diagnostics diags = analysis::lint_config(config);
  LintVerdict verdict;
  verdict.ok = !diags.has_errors();
  verdict.warnings = diags.count(util::Severity::Warn);
  verdict.rendered = util::render_text(diags);
  for (const auto& d : diags.items()) {
    if (d.severity == util::Severity::Warn) {
      LOG_WARN << d.code << " [" << d.object << ':' << d.field << "] " << d.message;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  lint_counters().runs.inc();
  return memo_.emplace(key, std::move(verdict)).first->second;
}

std::uint64_t LintMemo::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t LintMemo::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void LintMemo::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  memo_.clear();
  hits_ = 0;
  misses_ = 0;
}

LintMemo& lint_memo() {
  static LintMemo memo;
  return memo;
}

}  // namespace dnnperf::core
