#include "core/experiment.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace dnnperf::core {

Experiment::Experiment(int repeats, double noise_cv, std::uint64_t seed)
    : repeats_(repeats), noise_cv_(noise_cv), seed_(seed) {
  if (repeats < 1) throw std::invalid_argument("Experiment: repeats < 1");
  if (noise_cv < 0.0) throw std::invalid_argument("Experiment: negative noise");
}

Measurement Experiment::measure(const train::TrainConfig& config) {
  const train::TrainResult base = train::run_training(config);
  util::Rng rng(seed_ + 0x9E37 * ++counter_);
  util::RunStats stats;
  for (int i = 0; i < repeats_; ++i)
    stats.add(base.images_per_sec * (1.0 + rng.normal(0.0, noise_cv_)));
  Measurement m;
  m.images_per_sec = stats.mean();
  m.stddev = stats.stddev();
  m.last = base;
  return m;
}

}  // namespace dnnperf::core
