#include "core/experiment.hpp"

#include <stdexcept>

#include "analysis/analyze.hpp"
#include "util/diag.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace dnnperf::core {

Experiment::Experiment(int repeats, double noise_cv, std::uint64_t seed)
    : repeats_(repeats), noise_cv_(noise_cv), seed_(seed) {
  if (repeats < 1) throw std::invalid_argument("Experiment: repeats < 1");
  if (noise_cv < 0.0) throw std::invalid_argument("Experiment: negative noise");
}

Measurement Experiment::measure(const train::TrainConfig& config) {
  if (lint_) {
    const util::Diagnostics diags = analysis::lint_config(config);
    for (const auto& d : diags.items()) {
      if (d.severity == util::Severity::Warn) {
        LOG_WARN << d.code << " [" << d.object << ':' << d.field << "] " << d.message;
      }
    }
    if (diags.has_errors())
      throw std::invalid_argument("Experiment: config failed lint\n" +
                                  util::render_text(diags));
  }
  const bool scoring = util::metrics::enabled();
  util::metrics::Snapshot before;
  if (scoring) before = util::metrics::snapshot();
  const train::TrainResult base = train::run_training(config);
  util::Rng rng(seed_ + 0x9E37 * ++counter_);
  util::RunStats stats;
  for (int i = 0; i < repeats_; ++i)
    stats.add(base.images_per_sec * (1.0 + rng.normal(0.0, noise_cv_)));
  Measurement m;
  m.images_per_sec = stats.mean();
  m.stddev = stats.stddev();
  m.last = base;
  if (scoring) {
    util::metrics::Snapshot after = util::metrics::snapshot();
    after.label = analysis::config_label(config);
    m.scorecard = util::metrics::delta(before, after);
  }
  return m;
}

}  // namespace dnnperf::core
