#include "core/experiment.hpp"

#include <stdexcept>

#include "analysis/analyze.hpp"
#include "core/eval_cache.hpp"
#include "util/rng.hpp"

namespace dnnperf::core {

Experiment::Experiment(int repeats, double noise_cv, std::uint64_t seed)
    : repeats_(repeats), noise_cv_(noise_cv), seed_(seed) {
  if (repeats < 1) throw std::invalid_argument("Experiment: repeats < 1");
  if (noise_cv < 0.0) throw std::invalid_argument("Experiment: negative noise");
}

void Experiment::lint_gate(const train::TrainConfig& config, std::uint64_t key) const {
  // The memo runs lint_config (and logs its warnings) on the first sighting
  // of this config content; every later byte-identical measure skips the
  // whole gate — including the bounded engine protocol model check, the
  // expensive part of measuring a multi-rank config.
  const LintVerdict verdict = lint_memo().check(config, key);
  if (!verdict.ok)
    throw std::invalid_argument("Experiment: config failed lint\n" + verdict.rendered);
}

Measurement Experiment::measure(const train::TrainConfig& config) {
  if (lint_) lint_gate(config, config_key(config));
  const bool scoring = util::metrics::enabled();
  util::metrics::Snapshot before;
  if (scoring) before = util::metrics::snapshot();
  const train::TrainResult base = train::run_training(config);
  util::Rng rng(seed_ + 0x9E37 * ++counter_);
  util::RunStats stats;
  for (int i = 0; i < repeats_; ++i)
    stats.add(base.images_per_sec * (1.0 + rng.normal(0.0, noise_cv_)));
  Measurement m;
  m.images_per_sec = stats.mean();
  m.stddev = stats.stddev();
  m.last = base;
  if (scoring) {
    util::metrics::Snapshot after = util::metrics::snapshot();
    after.label = analysis::config_label(config);
    m.scorecard = util::metrics::delta(before, after);
  }
  return m;
}

Measurement Experiment::measure_keyed(const train::TrainConfig& config,
                                      std::uint64_t key) const {
  if (lint_) lint_gate(config, key);
  const train::TrainResult base = train::run_training(config);
  util::Rng rng(seed_ ^ (key * 0x9E3779B97F4A7C15ull));
  util::RunStats stats;
  for (int i = 0; i < repeats_; ++i)
    stats.add(base.images_per_sec * (1.0 + rng.normal(0.0, noise_cv_)));
  Measurement m;
  m.images_per_sec = stats.mean();
  m.stddev = stats.stddev();
  m.last = base;
  return m;
}

}  // namespace dnnperf::core
