// Figures of Section V: single-node SP and MP characterization.
#include <algorithm>

#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/presets.hpp"
#include "hw/platforms.hpp"

namespace dnnperf::core {

namespace {

using util::TextTable;

/// SP throughput table: rows = thread counts, columns = batch sizes.
TextTable sp_threads_by_batch(const hw::ClusterModel& cluster, dnn::ModelId model,
                              const std::vector<int>& threads, const std::vector<int>& batches,
                              std::map<std::string, double>* anchors,
                              const std::string& anchor_prefix) {
  std::vector<std::string> header{"threads"};
  for (int bs : batches) header.push_back("BS=" + std::to_string(bs));
  TextTable table(std::move(header));
  Experiment exp;
  for (int t : threads) {
    std::vector<std::string> row{std::to_string(t)};
    for (int bs : batches) {
      auto cfg = sp_baseline(cluster, model, bs);
      cfg.intra_threads = t;
      cfg.inter_threads = 1;
      const double v = exp.measure(cfg).images_per_sec;
      row.push_back(TextTable::num(v, 1));
      if (anchors != nullptr)
        (*anchors)[anchor_prefix + "_t" + std::to_string(t) + "_bs" + std::to_string(bs)] = v;
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace

FigureResult table1_platforms() {
  FigureResult fig;
  fig.id = "table1";
  fig.title = "Evaluation platforms (paper Table I)";
  TextTable t({"Architecture", "Cluster", "Speed (GHz)", "Cores", "Threads/Core", "Label"});
  for (const auto& c :
       {hw::ri2_skylake(), hw::pitzer(), hw::stampede2(), hw::ri2_broadwell(), hw::amd_cluster()}) {
    const auto& cpu = c.node.cpu;
    t.add_row({cpu.name, c.name, TextTable::num(cpu.clock_ghz, 1),
               std::to_string(cpu.total_cores()), std::to_string(cpu.threads_per_core),
               cpu.label});
    fig.anchors["cores_" + cpu.label] = cpu.total_cores();
  }
  fig.tables.push_back(std::move(t));
  return fig;
}

FigureResult fig01_sp_skylake1() {
  FigureResult fig;
  fig.id = "fig01";
  fig.title = "ResNet-50 SP training on Skylake-1: threads (a) and batch size (b)";
  const std::vector<int> threads{1, 2, 4, 8, 14, 20, 28};
  const std::vector<int> batches{16, 32, 64, 128, 256, 512, 1024};
  fig.tables.push_back(sp_threads_by_batch(hw::ri2_skylake(), dnn::ModelId::ResNet50, threads,
                                           batches, &fig.anchors, "skx1"));
  // Scaling-knee anchors (Fig 1a): gains 1->14 threads are large, 14->28 small.
  fig.anchors["scaling_1_to_14"] = fig.anchors["skx1_t14_bs128"] / fig.anchors["skx1_t1_bs128"];
  fig.anchors["scaling_14_to_28"] = fig.anchors["skx1_t28_bs128"] / fig.anchors["skx1_t14_bs128"];
  // BS anchors (Fig 1b): 8 threads barely improve with BS; 28 threads do.
  fig.anchors["bs_gain_8t"] = fig.anchors["skx1_t8_bs512"] / fig.anchors["skx1_t8_bs16"];
  fig.anchors["bs_gain_28t"] = fig.anchors["skx1_t28_bs512"] / fig.anchors["skx1_t28_bs16"];
  return fig;
}

FigureResult fig02_sp_broadwell() {
  FigureResult fig;
  fig.id = "fig02";
  fig.title = "ResNet-50 SP training on Broadwell";
  const std::vector<int> threads{1, 2, 4, 8, 14, 20, 28};
  const std::vector<int> batches{16, 64, 128, 256, 512};
  fig.tables.push_back(sp_threads_by_batch(hw::ri2_broadwell(), dnn::ModelId::ResNet50, threads,
                                           batches, &fig.anchors, "bdw"));
  fig.anchors["scaling_1_to_14"] = fig.anchors["bdw_t14_bs128"] / fig.anchors["bdw_t1_bs128"];
  fig.anchors["scaling_14_to_28"] = fig.anchors["bdw_t28_bs128"] / fig.anchors["bdw_t14_bs128"];
  return fig;
}

FigureResult fig03_sp_skylake2() {
  FigureResult fig;
  fig.id = "fig03";
  fig.title = "ResNet-50 SP thread scaling on Skylake-2 (Pitzer)";
  const std::vector<int> threads{1, 2, 4, 8, 16, 20, 28, 32, 40};
  const std::vector<int> batches{64, 128, 256};
  fig.tables.push_back(sp_threads_by_batch(hw::pitzer(), dnn::ModelId::ResNet50, threads,
                                           batches, &fig.anchors, "skx2"));
  // Section V-A3: Skylake-2 single-thread beats Skylake-1 single-thread.
  Experiment exp;
  auto cfg1 = sp_baseline(hw::ri2_skylake(), dnn::ModelId::ResNet50, 128);
  cfg1.intra_threads = 1;
  cfg1.inter_threads = 1;
  fig.anchors["skx2_vs_skx1_1thread"] =
      fig.anchors["skx2_t1_bs128"] / exp.measure(cfg1).images_per_sec;
  return fig;
}

FigureResult fig04_sp_skylake3() {
  FigureResult fig;
  fig.id = "fig04";
  fig.title = "ResNet-50 SP thread scaling on Skylake-3 (Stampede2, SMT enabled)";
  const std::vector<int> threads{1, 2, 4, 8, 16, 24, 32, 48, 64, 96};
  const std::vector<int> batches{64, 128, 256};
  fig.tables.push_back(sp_threads_by_batch(hw::stampede2(), dnn::ModelId::ResNet50, threads,
                                           batches, &fig.anchors, "skx3"));
  // Section V-A4: 96 threads is *worse* than 48 threads.
  fig.anchors["t96_over_t48"] = fig.anchors["skx3_t96_bs128"] / fig.anchors["skx3_t48_bs128"];
  return fig;
}

FigureResult fig05_ppn_bs_rn152() {
  FigureResult fig;
  fig.id = "fig05";
  fig.title = "ResNet-152 on Skylake-3: per-rank batch size vs processes per node";
  TextTable table({"ppn", "BS=16", "BS=32", "BS=64", "BS=128"});
  Experiment exp;
  const auto cluster = hw::stampede2();
  for (int ppn : {1, 2, 4, 8}) {
    std::vector<std::string> row{std::to_string(ppn)};
    for (int bs : {16, 32, 64, 128}) {
      train::TrainConfig cfg;
      cfg.cluster = cluster;
      cfg.model = dnn::ModelId::ResNet152;
      cfg.ppn = ppn;
      cfg.batch_per_rank = bs;
      cfg.use_horovod = ppn > 1;
      const double v = exp.measure(cfg).images_per_sec;
      row.push_back(TextTable::num(v, 1));
      fig.anchors["ppn" + std::to_string(ppn) + "_bs" + std::to_string(bs)] = v;
    }
    table.add_row(std::move(row));
  }
  fig.tables.push_back(std::move(table));
  // Section V-B: the ppn <-> BS relationship is non-linear; 4 ppn wins at
  // BS=64 while 8 ppn is competitive at BS=32.
  fig.anchors["best_ppn_bs64_is_4"] =
      (fig.anchors["ppn4_bs64"] >= fig.anchors["ppn1_bs64"] &&
       fig.anchors["ppn4_bs64"] >= fig.anchors["ppn2_bs64"])
          ? 1.0
          : 0.0;
  return fig;
}

FigureResult fig06_sp_vs_mp() {
  FigureResult fig;
  fig.id = "fig06";
  fig.title = "Single-Process vs Multi-Process on Skylake-3 (same effective batch)";
  TextTable table({"model", "effective BS", "SP img/s", "MP (4ppn) img/s", "MP/SP"});
  Experiment exp;
  const auto cluster = hw::stampede2();
  for (auto model : {dnn::ModelId::ResNet152, dnn::ModelId::InceptionV4}) {
    for (int eff_bs : {128, 256}) {
      auto sp = sp_baseline(cluster, model, eff_bs);
      auto mp = tf_best(cluster, model, 1, eff_bs / 4);
      const double sp_v = exp.measure(sp).images_per_sec;
      const double mp_v = exp.measure(mp).images_per_sec;
      table.add_row({dnn::to_string(model), std::to_string(eff_bs), TextTable::num(sp_v, 1),
                     TextTable::num(mp_v, 1), TextTable::num(mp_v / sp_v, 2)});
      if (eff_bs == 256) {
        const std::string key = model == dnn::ModelId::ResNet152 ? "mp_over_sp_rn152"
                                                                 : "mp_over_sp_incv4";
        fig.anchors[key] = mp_v / sp_v;
      }
    }
  }
  fig.tables.push_back(std::move(table));
  return fig;
}

}  // namespace dnnperf::core
