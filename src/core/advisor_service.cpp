#include "core/advisor_service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "prof/profile.hpp"
#include "util/diag.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"

namespace dnnperf::core {

namespace {

/// Bottleneck attribution of one simulated measurement, via the profiler's
/// analytic classification (prof::classify_sim_point). Per-rank mode reports
/// straggler_stretch = 1 (jitter is drawn, not folded), so the closed-form
/// expected max over the world is reconstructed here either way.
prof::SimPointVerdict classify_measurement(const train::TrainConfig& cfg,
                                           const train::TrainResult& r) {
  prof::SimPointInputs in;
  in.step_s = r.per_iteration_s;
  in.forward_s = r.fwd_s;
  in.backward_s = r.bwd_s;
  in.optimizer_s = r.optimizer_s;
  in.comm_exposed_fraction = r.comm_exposed_fraction;
  in.comm_busy_s = r.comm_busy_per_iteration_s;
  const std::size_t ranks = static_cast<std::size_t>(cfg.nodes) * cfg.ppn;
  in.straggler_stretch =
      ranks > 1 ? std::max(r.straggler_stretch,
                           util::expected_max_normal(1.0, cfg.jitter_cv, ranks))
                : 1.0;
  return prof::classify_sim_point(in);
}

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Registry handles for the service-level metrics; cache hit/miss/eviction
/// counters live in EvalCache, the lint-memo counters in core/eval_cache.
struct ServiceMetrics {
  util::metrics::Counter queries = util::metrics::counter(
      "advisor_queries_total", "What-if queries answered by the advisor service");
  util::metrics::Counter batches = util::metrics::counter(
      "advisor_batches_total", "ask_many() batches dispatched");
  util::metrics::Counter grid_points = util::metrics::counter(
      "advisor_grid_points_total", "Candidate grid points enumerated across all queries");
  util::metrics::Counter deduplicated = util::metrics::counter(
      "advisor_points_deduped_total",
      "Grid points shared with an earlier query in the same batch (not re-probed)");
  util::metrics::Counter evaluations = util::metrics::counter(
      "advisor_evaluations_total", "Fresh simulations dispatched to the evaluation pool");
  util::metrics::Histogram query_seconds = util::metrics::histogram(
      "advisor_query_seconds", "Wall time to answer one advisor query, seconds");
  util::metrics::Gauge qps = util::metrics::gauge(
      "advisor_queries_per_sec", "Cumulative advisor query throughput since first query");
  util::metrics::Gauge hit_ratio = util::metrics::gauge(
      "advisor_cache_hit_ratio", "Eval-cache hit fraction over the service lifetime");
};

const ServiceMetrics& service_metrics() {
  static const ServiceMetrics m;
  return m;
}

std::vector<int> default_ppn_candidates(int units) {
  std::vector<int> out;
  for (int p = 1; p <= units; p *= 2)
    if (units % p == 0) out.push_back(p);
  if (std::find(out.begin(), out.end(), units) == out.end()) out.push_back(units);
  return out;
}

std::string request_label(const AdvisorRequest& req) {
  std::string label = dnn::to_string(req.model);
  label += "@";
  label += req.cluster.name.empty() ? "cluster" : req.cluster.name;
  label += " n" + std::to_string(req.nodes);
  label += " (";
  label += exec::to_string(req.framework);
  if (req.device == train::DeviceKind::Gpu) label += "/GPU";
  label += ")";
  return label;
}

/// A001/A002/A003 request validation. Collects every problem, then throws
/// std::invalid_argument with the rendered diagnostics if any is an Error —
/// the old advise() silently searched nothing over an empty grid and
/// returned a zero-throughput Recommendation.
void validate_request(const AdvisorRequest& req) {
  util::Diagnostics diags;
  const std::string object = request_label(req);
  if (req.nodes <= 0) {
    diags.error("A002", object, "nodes",
                "node count " + std::to_string(req.nodes) + " is not positive",
                "ask for at least one node");
  } else if (req.nodes > req.cluster.max_nodes) {
    diags.error("A002", object, "nodes",
                "node count " + std::to_string(req.nodes) + " exceeds the cluster's " +
                    std::to_string(req.cluster.max_nodes) + " nodes",
                "lower nodes or raise ClusterModel::max_nodes");
  }
  if (req.batch_candidates.empty()) {
    diags.error("A001", object, "batch_candidates",
                "candidate grid is empty: no batch sizes to search",
                "provide at least one per-rank batch size");
  }
  for (const int bs : req.batch_candidates)
    if (bs <= 0)
      diags.error("A003", object, "batch_candidates",
                  "batch candidate " + std::to_string(bs) + " is not positive");
  for (const int ppn : req.ppn_candidates)
    if (ppn <= 0)
      diags.error("A003", object, "ppn_candidates",
                  "ppn candidate " + std::to_string(ppn) + " is not positive");
  if (req.opt_levels.empty())
    diags.error("A001", object, "opt_levels",
                "candidate grid is empty: no optimizer levels to search",
                "the default {0} probes the as-built graph only");
  for (const int level : req.opt_levels)
    if (level < 0 || level > 2)
      diags.error("A003", object, "opt_levels",
                  "optimizer level " + std::to_string(level) + " outside [0, 2]");
  if (req.device == train::DeviceKind::Gpu) {
    if (!req.cluster.node.has_gpu()) {
      diags.error("A003", object, "device", "GPU search on a CPU-only cluster",
                  "pick a GPU platform or device = Cpu");
    } else {
      for (const int ppn : req.ppn_candidates)
        if (ppn > req.cluster.node.gpu->devices_per_node)
          diags.error("A003", object, "ppn_candidates",
                      "ppn candidate " + std::to_string(ppn) + " exceeds the " +
                          std::to_string(req.cluster.node.gpu->devices_per_node) +
                          " GPUs per node");
    }
  }
  if (diags.has_errors())
    throw std::invalid_argument("AdvisorService: invalid request\n" + util::render_text(diags));
}

}  // namespace

const char* to_string(Objective objective) {
  switch (objective) {
    case Objective::MaxImagesPerSec: return "max-images-per-sec";
    case Objective::MinStepTime: return "min-step-time";
  }
  return "?";
}

std::vector<train::TrainConfig> AdvisorService::plan_grid(const AdvisorRequest& req) {
  validate_request(req);
  std::vector<train::TrainConfig> grid;

  const bool gpu = req.device == train::DeviceKind::Gpu;
  const int cores = req.cluster.node.cpu.total_cores();
  const bool smt = req.cluster.node.cpu.threads_per_core > 1;
  const std::vector<int> ppns =
      !req.ppn_candidates.empty()
          ? req.ppn_candidates
          : default_ppn_candidates(gpu ? req.cluster.node.gpu->devices_per_node : cores);

  for (const int ppn : ppns) {
    // Thread candidates around the paper's intra-op rule: all of the rank's
    // cores, one fewer (spare core for the Horovod thread), and — on wide
    // ranks — one more (oversubscription probe). GPUs ignore host threads.
    std::vector<int> intras{1};
    std::vector<int> inters{1};
    if (!gpu) {
      const int cores_per_rank = std::max(1, cores / ppn);
      intras = {cores_per_rank};
      if (cores_per_rank > 1) intras.push_back(cores_per_rank - 1);
      if (cores_per_rank > 4) intras.push_back(cores_per_rank + 1);
      if (req.framework != exec::Framework::PyTorch && smt) inters = {1, 2};
    }
    for (const int intra : intras) {
      for (const int inter : inters) {
        for (const int bs : req.batch_candidates) {
          for (const int level : req.opt_levels) {
            train::TrainConfig cfg;
            cfg.cluster = req.cluster;
            cfg.model = req.model;
            cfg.framework = req.framework;
            cfg.device = req.device;
            cfg.nodes = req.nodes;
            cfg.ppn = ppn;
            cfg.intra_threads = intra;
            cfg.inter_threads = inter;
            cfg.batch_per_rank = bs;
            cfg.policy = req.policy;
            cfg.use_horovod = req.nodes * ppn > 1;
            cfg.opt_level = level;
            grid.push_back(std::move(cfg));
          }
        }
      }
    }
  }
  return grid;
}

AdvisorService::AdvisorService(AdvisorServiceOptions options)
    : options_(options),
      experiment_(options.repeats, options.noise_cv, options.seed),
      cache_(options.cache_capacity, options.cache_shards),
      pool_(options.threads > 0
                ? options.threads
                : std::max(2, static_cast<int>(std::thread::hardware_concurrency()))) {
  experiment_.set_lint(options_.lint);
  // Register the service metrics now, not lazily at the first query: a
  // snapshot of an idle service must carry the qps/hit-ratio gauges as
  // finite zeros (lint pass M003), not omit them or divide 0 by 0.
  (void)service_metrics();
}

AdvisorReply AdvisorService::ask(const AdvisorRequest& request) {
  return ask_many({request}).front();
}

std::vector<AdvisorReply> AdvisorService::ask_many(const std::vector<AdvisorRequest>& requests) {
  if (requests.empty()) return {};
  const double t0 = now_seconds();
  const ServiceMetrics& metrics = service_metrics();

  // Plan every grid first: a malformed request throws before anything runs.
  enum class Origin { CacheHit, Deduplicated, Evaluated };
  struct Point {
    train::TrainConfig config;
    std::uint64_t key = 0;
    Origin origin = Origin::CacheHit;
  };
  std::vector<std::vector<Point>> grids;
  grids.reserve(requests.size());
  for (const AdvisorRequest& req : requests) {
    std::vector<train::TrainConfig> configs = plan_grid(req);
    std::vector<Point> grid;
    grid.reserve(configs.size());
    for (auto& cfg : configs) {
      Point p;
      p.key = config_key(cfg);
      p.config = std::move(cfg);
      grid.push_back(std::move(p));
    }
    grids.push_back(std::move(grid));
  }

  // Classify: the first occurrence of a key in the batch probes the cache;
  // repeats are batch-level dedup and cost nothing. Measurements are kept in
  // a batch-local map so eviction during this very batch cannot lose them.
  std::unordered_map<std::uint64_t, Measurement> results;
  std::vector<Point*> to_eval;
  std::unordered_set<std::uint64_t> seen;
  for (auto& grid : grids) {
    for (auto& point : grid) {
      if (!seen.insert(point.key).second) {
        point.origin = Origin::Deduplicated;
        continue;
      }
      if (auto cached = cache_.lookup(point.key)) {
        point.origin = Origin::CacheHit;
        results.emplace(point.key, std::move(*cached));
      } else {
        point.origin = Origin::Evaluated;
        to_eval.push_back(&point);
      }
    }
  }

  // Fan the fresh points out across the pool. Completed evaluations go into
  // the cache from inside the worker, so a lint failure part-way through a
  // batch (lint mode) does not discard sibling results.
  if (!to_eval.empty()) {
    std::vector<Measurement> fresh(to_eval.size());
    {
      std::lock_guard<std::mutex> dispatch(dispatch_mutex_);
      pool_.parallel_for(to_eval.size(), options_.min_grain,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             fresh[i] = experiment_.measure_keyed(to_eval[i]->config,
                                                                 to_eval[i]->key);
                             cache_.insert(to_eval[i]->key, fresh[i]);
                           }
                         });
    }
    for (std::size_t i = 0; i < to_eval.size(); ++i)
      results.emplace(to_eval[i]->key, std::move(fresh[i]));
  }

  // Assemble replies in request order; winner selection walks the grid in
  // plan order with strict improvement, matching the serial advise() loop.
  std::vector<AdvisorReply> replies;
  replies.reserve(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const AdvisorRequest& req = requests[r];
    AdvisorReply reply;
    util::TextTable table({"ppn", "intra", "inter", "BS/rank", "img/s"});
    reply.grid_points = grids[r].size();
    bool have_best = false;
    const Point* best_point = nullptr;
    const Measurement* best_measurement = nullptr;
    for (const Point& point : grids[r]) {
      switch (point.origin) {
        case Origin::CacheHit: ++reply.cache_hits; break;
        case Origin::Deduplicated: ++reply.deduplicated; break;
        case Origin::Evaluated: ++reply.evaluated; break;
      }
      const Measurement& m = results.at(point.key);
      if (req.want_table)
        table.add_row({std::to_string(point.config.ppn),
                       std::to_string(point.config.intra_threads),
                       std::to_string(point.config.inter_threads),
                       std::to_string(point.config.batch_per_rank),
                       util::TextTable::num(m.images_per_sec, 1)});
      const double value = req.objective == Objective::MinStepTime
                               ? m.last.per_iteration_s
                               : m.images_per_sec;
      const bool better = !have_best || (req.objective == Objective::MinStepTime
                                             ? value < reply.objective_value
                                             : value > reply.objective_value);
      if (better) {
        have_best = true;
        reply.objective_value = value;
        reply.recommendation.best = point.config;
        reply.recommendation.images_per_sec = m.images_per_sec;
        best_point = &point;
        best_measurement = &m;
      }
    }
    if (best_point != nullptr) {
      const prof::SimPointVerdict v =
          classify_measurement(best_point->config, best_measurement->last);
      reply.verdict = v.verdict;
      reply.overlap_fraction = v.overlap_fraction;
      reply.verdict_reason = v.reason;
    }
    reply.recommendation.search_table = std::move(table);
    replies.push_back(std::move(reply));

    metrics.grid_points.inc(grids[r].size());
  }

  // Publish query economics.
  const double elapsed = now_seconds() - t0;
  metrics.batches.inc();
  metrics.queries.inc(requests.size());
  std::size_t deduped = 0;
  for (const auto& reply : replies) deduped += reply.deduplicated;
  metrics.deduplicated.inc(deduped);
  metrics.evaluations.inc(to_eval.size());
  for (std::size_t i = 0; i < requests.size(); ++i)
    metrics.query_seconds.observe(std::max(elapsed, 1e-9));
  metrics.hit_ratio.set(cache_.stats().hit_ratio());
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (first_query_time_ < 0.0) first_query_time_ = t0;
    queries_ += requests.size();
    const double span = now_seconds() - first_query_time_;
    if (span > 0.0) metrics.qps.set(static_cast<double>(queries_) / span);
  }
  return replies;
}

std::vector<ScalingPoint> AdvisorService::scaling_curve(const ScalingRequest& req) {
  util::Diagnostics diags;
  const std::string object = dnn::to_string(req.model) + std::string("@") +
                             (req.cluster.name.empty() ? "cluster" : req.cluster.name) +
                             " scaling";
  if (req.node_counts.empty())
    diags.error("A001", object, "node_counts", "scaling sweep has no node counts",
                "provide at least one node count");
  for (const int n : req.node_counts) {
    if (n <= 0)
      diags.error("A002", object, "node_counts",
                  "node count " + std::to_string(n) + " is not positive");
    else if (n > req.cluster.max_nodes)
      diags.error("A002", object, "node_counts",
                  "node count " + std::to_string(n) + " exceeds the cluster's " +
                      std::to_string(req.cluster.max_nodes) + " nodes",
                  "raise ClusterModel::max_nodes for what-if sweeps past the real machine");
  }
  if (req.ppn <= 0)
    diags.error("A003", object, "ppn", "ppn " + std::to_string(req.ppn) + " is not positive");
  if (req.batch_per_rank <= 0)
    diags.error("A003", object, "batch_per_rank",
                "batch " + std::to_string(req.batch_per_rank) + " is not positive");
  if (req.opt_level < 0 || req.opt_level > 2)
    diags.error("A003", object, "opt_level",
                "optimizer level " + std::to_string(req.opt_level) + " outside [0, 2]");
  if (diags.has_errors())
    throw std::invalid_argument("AdvisorService: invalid scaling request\n" +
                                util::render_text(diags));

  std::vector<int> nodes = req.node_counts;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  std::vector<ScalingPoint> curve(nodes.size());
  std::vector<std::uint64_t> keys(nodes.size());
  std::vector<std::size_t> to_eval;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    train::TrainConfig cfg;
    cfg.cluster = req.cluster;
    cfg.model = req.model;
    cfg.framework = req.framework;
    cfg.device = req.device;
    cfg.nodes = nodes[i];
    cfg.ppn = req.ppn;
    cfg.intra_threads = req.intra_threads;
    cfg.inter_threads = req.inter_threads;
    cfg.batch_per_rank = req.batch_per_rank;
    cfg.policy = req.policy;
    cfg.use_horovod = nodes[i] * req.ppn > 1;
    cfg.hierarchy = req.hierarchy;
    cfg.per_rank_sim = req.per_rank_sim;
    cfg.opt_level = req.opt_level;
    curve[i].config = std::move(cfg);
    curve[i].nodes = nodes[i];
    curve[i].ranks = nodes[i] * req.ppn;
    keys[i] = config_key(curve[i].config);
  }

  std::unordered_map<std::uint64_t, Measurement> results;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (results.contains(keys[i])) continue;
    if (auto cached = cache_.lookup(keys[i]))
      results.emplace(keys[i], std::move(*cached));
    else
      to_eval.push_back(i);
  }
  if (!to_eval.empty()) {
    std::vector<Measurement> fresh(to_eval.size());
    {
      std::lock_guard<std::mutex> dispatch(dispatch_mutex_);
      pool_.parallel_for(to_eval.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t at = to_eval[i];
          fresh[i] = experiment_.measure_keyed(curve[at].config, keys[at]);
          cache_.insert(keys[at], fresh[i]);
        }
      });
    }
    for (std::size_t i = 0; i < to_eval.size(); ++i)
      results.emplace(keys[to_eval[i]], std::move(fresh[i]));
  }

  const Measurement& base = results.at(keys.front());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const Measurement& m = results.at(keys[i]);
    curve[i].images_per_sec = m.images_per_sec;
    curve[i].per_iteration_s = m.last.per_iteration_s;
    curve[i].sim_events = m.last.sim_events;
    curve[i].sim_pool_slots = m.last.sim_pool_slots;
    const prof::SimPointVerdict v = classify_measurement(curve[i].config, m.last);
    curve[i].verdict = v.verdict;
    curve[i].overlap_fraction = v.overlap_fraction;
    if (base.images_per_sec > 0.0) {
      curve[i].speedup = m.images_per_sec / base.images_per_sec;
      const double rank_ratio =
          static_cast<double>(curve[i].ranks) / static_cast<double>(curve.front().ranks);
      curve[i].efficiency = rank_ratio > 0.0 ? curve[i].speedup / rank_ratio : 0.0;
    }
  }

  const ServiceMetrics& metrics = service_metrics();
  metrics.queries.inc();
  metrics.grid_points.inc(curve.size());
  metrics.evaluations.inc(to_eval.size());
  metrics.hit_ratio.set(cache_.stats().hit_ratio());
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (first_query_time_ < 0.0) first_query_time_ = now_seconds();
    ++queries_;
    const double span = now_seconds() - first_query_time_;
    if (span > 0.0) metrics.qps.set(static_cast<double>(queries_) / span);
  }
  return curve;
}

SurvivabilityReply AdvisorService::survivability(const SurvivabilityRequest& req) {
  const double t0 = now_seconds();

  // The request's config is the healthy baseline; any schedule it already
  // carries is stripped so "retention" always compares against a fault-free
  // run of the same geometry.
  train::TrainConfig healthy = req.config;
  healthy.faults = hvd::FaultSchedule{};
  healthy.link_degrades.clear();
  const train::TrainConfig faulted = apply_scenario(req.scenario, healthy);

  const std::uint64_t healthy_key = config_key(healthy);
  const std::uint64_t faulted_key = config_key(faulted);

  // Both sides pass the memoized lint gate unconditionally (not gated on
  // options.lint): the faulted verdict carries the F-family scenario lint
  // and the elastic crash/rejoin model check, which is the whole point of a
  // survivability answer. The verdict is memoized under the same content
  // key the eval cache uses, so a warm query re-checks nothing.
  const std::pair<const train::TrainConfig*, std::uint64_t> sides[] = {
      {&healthy, healthy_key}, {&faulted, faulted_key}};
  for (const auto& [cfg, key] : sides) {
    const LintVerdict verdict = lint_memo().check(*cfg, key);
    if (!verdict.ok)
      throw std::invalid_argument("AdvisorService: survivability request '" + req.scenario.name +
                                  "' failed lint\n" + verdict.rendered);
  }

  SurvivabilityReply reply;
  std::unordered_map<std::uint64_t, Measurement> results;
  std::vector<std::pair<const train::TrainConfig*, std::uint64_t>> to_eval;
  for (const auto& [cfg, key] : sides) {
    // Empty scenario: both sides alias one config key; evaluate it once.
    if (results.contains(key)) continue;
    if (std::any_of(to_eval.begin(), to_eval.end(),
                    [key = key](const auto& e) { return e.second == key; }))
      continue;
    if (auto cached = cache_.lookup(key)) {
      ++reply.cache_hits;
      results.emplace(key, std::move(*cached));
    } else {
      to_eval.emplace_back(cfg, key);
    }
  }
  if (!to_eval.empty()) {
    std::vector<Measurement> fresh(to_eval.size());
    {
      std::lock_guard<std::mutex> dispatch(dispatch_mutex_);
      pool_.parallel_for(to_eval.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          fresh[i] = experiment_.measure_keyed(*to_eval[i].first, to_eval[i].second);
          cache_.insert(to_eval[i].second, fresh[i]);
        }
      });
    }
    for (std::size_t i = 0; i < to_eval.size(); ++i)
      results.emplace(to_eval[i].second, std::move(fresh[i]));
    reply.evaluated = to_eval.size();
  }

  const Measurement& healthy_m = results.at(healthy_key);
  const Measurement& faulted_m = results.at(faulted_key);
  reply.healthy_images_per_sec = healthy_m.images_per_sec;
  reply.scenario_images_per_sec = faulted_m.images_per_sec;
  reply.throughput_retention = healthy_m.images_per_sec > 0.0
                                   ? faulted_m.images_per_sec / healthy_m.images_per_sec
                                   : 0.0;
  reply.alive_rank_fraction = faulted_m.last.alive_rank_fraction;
  reply.membership_changes = faulted_m.last.membership_changes;
  reply.iteration_seconds = faulted_m.last.iteration_seconds;
  const prof::SimPointVerdict v = classify_measurement(faulted, faulted_m.last);
  reply.verdict = v.verdict;
  reply.verdict_reason = v.reason;

  // Registered lazily at the first survivability query, not in the service
  // constructor: the advisor_load bench diffs registry snapshots around
  // pure ask() traffic and must not see gauges it never drives.
  static const auto survivability_queries = util::metrics::counter(
      "advisor_survivability_queries_total", "Fault-scenario what-if queries answered");
  static const auto retention_gauge = util::metrics::gauge(
      "advisor_throughput_retention",
      "Scenario/healthy throughput ratio of the most recent survivability query");
  survivability_queries.inc();
  retention_gauge.set(reply.throughput_retention);

  const ServiceMetrics& metrics = service_metrics();
  metrics.queries.inc();
  metrics.evaluations.inc(reply.evaluated);
  metrics.query_seconds.observe(std::max(now_seconds() - t0, 1e-9));
  metrics.hit_ratio.set(cache_.stats().hit_ratio());
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (first_query_time_ < 0.0) first_query_time_ = t0;
    ++queries_;
    const double span = now_seconds() - first_query_time_;
    if (span > 0.0) metrics.qps.set(static_cast<double>(queries_) / span);
  }
  return reply;
}

std::uint64_t AdvisorService::queries_answered() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return queries_;
}

AdvisorService& default_advisor_service() {
  static AdvisorService service;
  return service;
}

}  // namespace dnnperf::core
