#include "core/time_to_train.hpp"

#include <cmath>
#include <stdexcept>

namespace dnnperf::core {

double StatisticalEfficiency::epochs_needed(double effective_batch) const {
  if (effective_batch <= 0.0)
    throw std::invalid_argument("epochs_needed: non-positive batch");
  if (effective_batch <= critical_batch) return base_epochs;
  const double doublings = std::log2(effective_batch / critical_batch);
  return base_epochs * (1.0 + epochs_per_doubling * doublings);
}

TimeToTrain estimate_time_to_train(const train::TrainConfig& config,
                                   const StatisticalEfficiency& eff) {
  const auto r = train::run_training(config);
  TimeToTrain t;
  t.images_per_sec = r.images_per_sec;
  t.effective_batch = r.effective_batch;
  t.epochs = eff.epochs_needed(r.effective_batch);
  t.hours = t.epochs * eff.dataset_images / r.images_per_sec / 3600.0;
  return t;
}

util::TextTable batch_tradeoff_table(const train::TrainConfig& base,
                                     const std::vector<int>& batch_sizes,
                                     const StatisticalEfficiency& eff) {
  util::TextTable table({"BS/rank", "effective BS", "img/s", "epochs", "hours"});
  for (int bs : batch_sizes) {
    auto cfg = base;
    cfg.batch_per_rank = bs;
    const auto t = estimate_time_to_train(cfg, eff);
    table.add_row({std::to_string(bs), std::to_string(t.effective_batch),
                   util::TextTable::num(t.images_per_sec, 0), util::TextTable::num(t.epochs, 1),
                   util::TextTable::num(t.hours, 2)});
  }
  return table;
}

}  // namespace dnnperf::core
