#include "core/figures.hpp"

#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace dnnperf::core {

namespace {

const std::map<std::string, std::function<FigureResult()>>& registry() {
  static const std::map<std::string, std::function<FigureResult()>> reg = {
      {"table1", table1_platforms},
      {"fig01", fig01_sp_skylake1},
      {"fig02", fig02_sp_broadwell},
      {"fig03", fig03_sp_skylake2},
      {"fig04", fig04_sp_skylake3},
      {"fig05", fig05_ppn_bs_rn152},
      {"fig06", fig06_sp_vs_mp},
      {"fig07", fig07_mn_skylake1},
      {"fig08", fig08_mn_broadwell},
      {"fig09", fig09_mn_skylake2},
      {"fig10", fig10_mp_tuned_32nodes},
      {"fig11", fig11_bs_128nodes},
      {"fig12", fig12_pytorch_skylake3},
      {"fig13", fig13_epyc_tensorflow},
      {"fig14", fig14_epyc_pytorch},
      {"fig15", fig15_gpu_cpu_tensorflow},
      {"fig16", fig16_pt_vs_tf_gpu},
      {"fig17", fig17_mn_skylake3_128},
      {"fig18", fig18_hvd_profiling_tf},
      {"fig19", fig19_hvd_profiling_pt},
  };
  return reg;
}

}  // namespace

std::vector<std::string> all_figure_ids() {
  std::vector<std::string> ids;
  for (const auto& [id, fn] : registry()) ids.push_back(id);
  return ids;
}

FigureResult run_figure(const std::string& id) {
  auto it = registry().find(id);
  if (it == registry().end()) throw std::out_of_range("unknown figure id: " + id);
  return it->second();
}

std::string render(const FigureResult& figure) {
  std::ostringstream os;
  os << "=== " << figure.id << ": " << figure.title << " ===\n\n";
  for (const auto& table : figure.tables) os << table.to_text() << '\n';
  if (!figure.anchors.empty()) {
    os << "anchors:\n";
    for (const auto& [key, value] : figure.anchors)
      os << "  " << key << " = " << util::TextTable::num(value, 3) << '\n';
  }
  return os.str();
}

}  // namespace dnnperf::core
