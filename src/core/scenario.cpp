#include "core/scenario.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analysis/analyze.hpp"
#include "util/jsonlite.hpp"

namespace dnnperf::core {

namespace {

using util::jsonlite::Value;

[[noreturn]] void fail(const std::string& who, const std::string& message) {
  throw std::runtime_error(who + ": " + message);
}

double require_number(const Value& obj, const std::string& key, const std::string& who,
                      const std::string& where) {
  const Value* v = obj.get(key);
  if (v == nullptr || v->kind != Value::Kind::Number)
    fail(who, where + " needs a numeric \"" + key + "\"");
  return v->number;
}

int require_int(const Value& obj, const std::string& key, const std::string& who,
                const std::string& where) {
  const double d = require_number(obj, key, who, where);
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) fail(who, where + ": \"" + key + "\" must be an integer");
  return i;
}

const std::vector<Value>& optional_list(const Value& root, const std::string& key,
                                        const std::string& who) {
  static const std::vector<Value> kEmpty;
  const Value* v = root.get(key);
  if (v == nullptr) return kEmpty;
  if (v->kind != Value::Kind::Array) fail(who, "\"" + key + "\" must be an array");
  return v->array;
}

}  // namespace

train::TrainConfig apply_scenario(const Scenario& scenario, const train::TrainConfig& base) {
  train::TrainConfig cfg = base;
  if (scenario.empty()) return cfg;
  cfg.faults = scenario.faults;
  cfg.link_degrades = scenario.link_degrades;
  if (!cfg.faults.empty()) cfg.per_rank_sim = true;
  return cfg;
}

util::Diagnostics lint_scenario(const Scenario& scenario, const train::TrainConfig& base) {
  if (scenario.empty()) return {};
  return analysis::lint_faults(apply_scenario(scenario, base));
}

Scenario parse_scenario_text(const std::string& text, const std::string& who) {
  const Value root = util::jsonlite::parse(text, who);
  if (root.kind != Value::Kind::Object) fail(who, "top level must be a JSON object");

  Scenario s;
  if (const Value* name = root.get("name")) {
    if (name->kind != Value::Kind::String) fail(who, "\"name\" must be a string");
    s.name = name->string;
  }
  if (root.has("fault_budget"))
    s.faults.fault_budget = require_int(root, "fault_budget", who, "scenario");

  for (const Value& v : optional_list(root, "slowdowns", who)) {
    if (v.kind != Value::Kind::Object) fail(who, "slowdown entries must be objects");
    hvd::RankSlowdown slow;
    slow.rank = require_int(v, "rank", who, "slowdown");
    slow.factor = require_number(v, "factor", who, "slowdown");
    if (v.has("from_step")) slow.from_step = require_int(v, "from_step", who, "slowdown");
    if (v.has("to_step")) slow.to_step = require_int(v, "to_step", who, "slowdown");
    s.faults.slowdowns.push_back(slow);
  }
  for (const Value& v : optional_list(root, "crashes", who)) {
    if (v.kind != Value::Kind::Object) fail(who, "crash entries must be objects");
    s.faults.crashes.push_back(
        {require_int(v, "rank", who, "crash"), require_int(v, "step", who, "crash")});
  }
  for (const Value& v : optional_list(root, "rejoins", who)) {
    if (v.kind != Value::Kind::Object) fail(who, "rejoin entries must be objects");
    s.faults.rejoins.push_back(
        {require_int(v, "rank", who, "rejoin"), require_int(v, "step", who, "rejoin")});
  }
  for (const Value& v : optional_list(root, "link_degrades", who)) {
    if (v.kind != Value::Kind::Object) fail(who, "link_degrade entries must be objects");
    train::LinkDegrade d;
    d.level = require_int(v, "level", who, "link_degrade");
    if (v.has("bandwidth_factor"))
      d.bandwidth_factor = require_number(v, "bandwidth_factor", who, "link_degrade");
    if (v.has("latency_factor"))
      d.latency_factor = require_number(v, "latency_factor", who, "link_degrade");
    s.link_degrades.push_back(d);
  }
  return s;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("scenario: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario_text(buf.str(), "scenario " + path);
}

}  // namespace dnnperf::core
