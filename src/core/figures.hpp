// One generator per table/figure of the paper's evaluation. Benchmarks call
// these to print the series; integration tests assert on the named anchors
// each generator exports (e.g. "mp_over_sp" for Fig 6).
//
// All generators are deterministic and cheap (the cluster is simulated), so
// the full set reruns in seconds.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace dnnperf::core {

struct FigureResult {
  std::string id;      ///< "fig01" ... "fig19", "table1"
  std::string title;   ///< what the paper's caption says
  std::vector<util::TextTable> tables;
  /// Named scalar results the paper highlights (speedups, ratios, img/s),
  /// asserted by tests and recorded in EXPERIMENTS.md.
  std::map<std::string, double> anchors;
};

// ---- platforms ------------------------------------------------------------
FigureResult table1_platforms();

// ---- single node (Section V) ----------------------------------------------
FigureResult fig01_sp_skylake1();    ///< RN50 threads x BS on Skylake-1
FigureResult fig02_sp_broadwell();   ///< RN50 threads x BS on Broadwell
FigureResult fig03_sp_skylake2();    ///< RN50 thread sweep on Skylake-2
FigureResult fig04_sp_skylake3();    ///< RN50 thread sweep incl. SMT on Skylake-3
FigureResult fig05_ppn_bs_rn152();   ///< RN152 ppn x BS on Skylake-3
FigureResult fig06_sp_vs_mp();       ///< SP vs MP, RN152 & Inception-v4

// ---- multi node (Section VI) ----------------------------------------------
FigureResult fig07_mn_skylake1();
FigureResult fig08_mn_broadwell();
FigureResult fig09_mn_skylake2();          ///< anchor: 15.6x avg at 16 nodes
FigureResult fig10_mp_tuned_32nodes();     ///< MP-Tuned vs MP-Default vs SP
FigureResult fig11_bs_128nodes();
FigureResult fig12_pytorch_skylake3();
FigureResult fig13_epyc_tensorflow();      ///< anchor: 7.8x at 8 nodes
FigureResult fig14_epyc_pytorch();         ///< anchor: 7.98x at 8 nodes
FigureResult fig17_mn_skylake3_128();      ///< anchor: 125x, ~5000 img/s

// ---- GPU comparison (Section VII) ------------------------------------------
FigureResult fig15_gpu_cpu_tensorflow();   ///< anchors: 2.35x vs K80, 3.32x V100
FigureResult fig16_pt_vs_tf_gpu();         ///< anchor: PT 1.12x TF on 4 GPUs

// ---- Horovod profiling (Section VIII) ---------------------------------------
FigureResult fig18_hvd_profiling_tf();
FigureResult fig19_hvd_profiling_pt();     ///< anchors: 1.25x, ~10^2 fewer ops

/// All generator ids in paper order.
std::vector<std::string> all_figure_ids();

/// Dispatch by id; throws std::out_of_range for unknown ids.
FigureResult run_figure(const std::string& id);

/// Renders a FigureResult (title, tables, anchors) to stdout-ready text.
std::string render(const FigureResult& figure);

}  // namespace dnnperf::core
