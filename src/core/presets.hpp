// Best-known training configurations per platform — the paper's tuning
// outcomes (Section IX), packaged so every figure starts from the same
// settings the authors converged on:
//   TensorFlow best ppn: 2 (28-core Skylake-1/Broadwell), 4 (40/48-core
//   Skylake-2/3), 16 on EPYC (5 intra-op, 2 inter-op threads);
//   intra-op = cores/ppn - 1; inter-op = 2 on SMT systems;
//   PyTorch best ppn = number of cores (48 on Skylake-3, 32 on EPYC).
#pragma once

#include "train/trainer.hpp"

namespace dnnperf::core {

/// Tuned TensorFlow config for `cluster` (CPU training).
train::TrainConfig tf_best(const hw::ClusterModel& cluster, dnn::ModelId model, int nodes,
                           int batch_per_rank = 64);

/// Tuned PyTorch config for `cluster` (CPU training). Default batch follows
/// the paper: 16 for ResNet-50/101, 8 for larger models on Skylake-3;
/// 32 on EPYC, except ResNet-152 (16 — batch 32 at ppn=32 overcommits the
/// 256 GB node, lint S008).
train::TrainConfig pytorch_best(const hw::ClusterModel& cluster, dnn::ModelId model, int nodes);

/// Single-process baseline (no Horovod, all cores in one process).
train::TrainConfig sp_baseline(const hw::ClusterModel& cluster, dnn::ModelId model, int batch);

/// GPU config using `gpus_per_node` devices per node.
train::TrainConfig gpu_config(const hw::ClusterModel& cluster, dnn::ModelId model,
                              exec::Framework fw, int nodes, int gpus_per_node, int batch);

/// The tuned ppn for TensorFlow on this CPU (2/4/4/2/16 per the paper).
int tf_best_ppn(const hw::CpuModel& cpu);

/// The tuned ppn for PyTorch (== cores on Intel, 32 on EPYC).
int pytorch_best_ppn(const hw::CpuModel& cpu);

}  // namespace dnnperf::core
