#include "core/advisor.hpp"

#include "core/advisor_service.hpp"

namespace dnnperf::core {

Recommendation advise(const hw::ClusterModel& cluster, dnn::ModelId model,
                      exec::Framework framework, const AdvisorOptions& options) {
  AdvisorRequest req;
  req.cluster = cluster;
  req.model = model;
  req.framework = framework;
  req.nodes = options.nodes;
  req.batch_candidates = options.batch_candidates;
  req.ppn_candidates = options.ppn_candidates;
  req.want_table = true;
  return default_advisor_service().ask(req).recommendation;
}

}  // namespace dnnperf::core
