#include "core/advisor.hpp"

#include <algorithm>

namespace dnnperf::core {

namespace {

std::vector<int> default_ppn_candidates(const hw::CpuModel& cpu) {
  std::vector<int> out;
  const int cores = cpu.total_cores();
  for (int p = 1; p <= cores; p *= 2)
    if (cores % p == 0) out.push_back(p);
  if (std::find(out.begin(), out.end(), cores) == out.end()) out.push_back(cores);
  return out;
}

}  // namespace

Recommendation advise(const hw::ClusterModel& cluster, dnn::ModelId model,
                      exec::Framework framework, const AdvisorOptions& options) {
  std::vector<int> ppns = options.ppn_candidates.empty()
                              ? default_ppn_candidates(cluster.node.cpu)
                              : options.ppn_candidates;

  util::TextTable table({"ppn", "intra", "inter", "BS/rank", "img/s"});
  Recommendation rec{train::TrainConfig{}, 0.0, table};
  const int cores = cluster.node.cpu.total_cores();
  const bool smt = cluster.node.cpu.threads_per_core > 1;

  for (int ppn : ppns) {
    const int cores_per_rank = std::max(1, cores / ppn);
    std::vector<int> intras{cores_per_rank};
    if (cores_per_rank > 1) intras.push_back(cores_per_rank - 1);
    if (cores_per_rank > 4) intras.push_back(cores_per_rank + 1);
    std::vector<int> inters = framework == exec::Framework::PyTorch
                                  ? std::vector<int>{1}
                                  : (smt ? std::vector<int>{1, 2} : std::vector<int>{1});
    for (int intra : intras) {
      for (int inter : inters) {
        for (int bs : options.batch_candidates) {
          train::TrainConfig cfg;
          cfg.cluster = cluster;
          cfg.model = model;
          cfg.framework = framework;
          cfg.nodes = options.nodes;
          cfg.ppn = ppn;
          cfg.intra_threads = intra;
          cfg.inter_threads = inter;
          cfg.batch_per_rank = bs;
          cfg.use_horovod = options.nodes * ppn > 1;
          const double v = train::run_training(cfg).images_per_sec;
          table.add_row({std::to_string(ppn), std::to_string(intra), std::to_string(inter),
                         std::to_string(bs), util::TextTable::num(v, 1)});
          if (v > rec.images_per_sec) {
            rec.images_per_sec = v;
            rec.best = cfg;
          }
        }
      }
    }
  }
  rec.search_table = std::move(table);
  return rec;
}

}  // namespace dnnperf::core
