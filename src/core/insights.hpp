// Key-insights generator: recomputes each bullet of the paper's Section IX
// from the model (not hard-coded), producing a checkable summary —
// effectively the paper's conclusions as executable assertions.
#pragma once

#include <string>
#include <vector>

namespace dnnperf::core {

struct Insight {
  std::string claim;     ///< the paper's statement
  std::string measured;  ///< what the model reproduces, with numbers
  bool holds = false;    ///< whether the qualitative claim holds in the model
};

/// Evaluates all Section IX insights. Deterministic; runs in < 1 s.
std::vector<Insight> evaluate_key_insights();

/// Renders the insights as a text report.
std::string render_insights(const std::vector<Insight>& insights);

}  // namespace dnnperf::core
