// Content-addressed evaluation cache for the advisor service (§6.6).
//
// Every what-if query the advisor answers bottoms out in "simulate this
// TrainConfig" — and overlapping sweeps re-ask the same points constantly
// (every ppn sweep shares its batch candidates, every client asking about
// Stampede2 shares the whole grid). The cache keys a per-config Measurement
// on a stable 64-bit content hash of everything run_training consumes:
//
//   config_key = fnv1a( graph_fingerprint(model graph),
//                       platform_fingerprint(cluster),
//                       schedule: nodes/ppn/threads/batch/framework/device,
//                       fusion policy, iterations, jitter, memory gate )
//
// so two configs collide only if they would simulate identically. The same
// key addresses the lint memo (LintMemo below): lint_config + the bounded
// engine model check are far more expensive than the simulation itself, and
// Experiment::measure() used to re-run them on every byte-identical call.
//
// EvalCache is sharded (key bits pick the shard, each shard its own mutex +
// exact LRU list) so concurrent queries on a warm cache do not serialize on
// one lock. Capacity is bounded; eviction is LRU per shard.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/experiment.hpp"
#include "train/trainer.hpp"

namespace dnnperf::core {

// ---- stable content hashing ------------------------------------------------

/// FNV-1a 64-bit over an explicit byte/word stream. Stable across runs and
/// platforms (no pointer or container-layout dependence).
class HashStream {
 public:
  HashStream& mix(std::uint64_t v);
  HashStream& mix(std::int64_t v) { return mix(static_cast<std::uint64_t>(v)); }
  HashStream& mix(int v) { return mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  HashStream& mix(bool v) { return mix(static_cast<std::uint64_t>(v ? 1 : 0)); }
  HashStream& mix(double v);  ///< by bit pattern; all NaNs collapse to one
  HashStream& mix(const std::string& s);
  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// Content fingerprint of a DNN graph: every op's kind, shape, FLOP/param/
/// byte counts, and wiring. Two graphs with the same fingerprint cost the
/// same to the execution model.
std::uint64_t graph_fingerprint(const dnn::Graph& graph);

/// graph_fingerprint(build_model(model)), memoized per ModelId (building a
/// ResNet graph just to hash it would dominate a warm cache hit).
std::uint64_t model_fingerprint(dnn::ModelId model);

/// Content fingerprint of a cluster: CPU microarchitecture fields, optional
/// GPU, node memory, fabric, and cluster size.
std::uint64_t platform_fingerprint(const hw::ClusterModel& cluster);

/// The cache key: (graph fingerprint, platform fingerprint, TrainConfig
/// schedule + fusion policy). Everything run_training reads is mixed in.
std::uint64_t config_key(const train::TrainConfig& config);

// ---- the measurement cache -------------------------------------------------

struct EvalCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

/// Sharded, capacity-bounded, exact-LRU map from config_key to Measurement.
/// Thread-safe: every operation takes only its shard's mutex. Lookups count
/// into both the local stats and the advisor_cache_* registry counters.
class EvalCache {
 public:
  /// `capacity` entries total, spread over `shards` independent LRU shards
  /// (each holds capacity/shards, minimum 1). capacity == 0 disables caching
  /// (every lookup is a miss, nothing is stored).
  explicit EvalCache(std::size_t capacity = 1 << 16, int shards = 16);

  /// Returns the cached Measurement and refreshes its LRU position, or
  /// nullopt on miss.
  std::optional<Measurement> lookup(std::uint64_t key);

  /// Inserts (or refreshes) `key`; evicts the shard's LRU tail beyond
  /// capacity. Re-inserting an existing key overwrites — the advisor only
  /// does this with identical values (measurements are deterministic per
  /// key), so racing inserts of the same key are benign.
  void insert(std::uint64_t key, const Measurement& measurement);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  EvalCacheStats stats() const;
  void clear();  ///< drops entries and stats (not the registry counters)

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<std::uint64_t, Measurement>> lru;
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<std::uint64_t, Measurement>>::iterator>
        index;
    EvalCacheStats stats;
  };

  Shard& shard_for(std::uint64_t key);
  const Shard& shard_for(std::uint64_t key) const;

  std::size_t capacity_;
  std::size_t per_shard_;
  std::vector<Shard> shards_;
};

// ---- the lint memo ---------------------------------------------------------

/// Memoized verdict of analysis::lint_config for one config key.
struct LintVerdict {
  bool ok = true;            ///< no Error-level findings
  std::string rendered;      ///< render_text of the full diagnostics
  std::size_t warnings = 0;  ///< Warn-level findings (logged on first run only)
};

/// Process-wide memo of lint_config verdicts keyed by config_key. The gate
/// (schedule passes + the bounded engine protocol model check) costs orders
/// of magnitude more than the simulation it guards; byte-identical configs
/// get the stored verdict. Warn findings are logged only on the original
/// miss — a sweep that re-measures a warned config does not re-spam the log.
/// Unbounded by design: verdicts are a few hundred bytes and the config
/// universe of one process is the advisor grid, not user input.
class LintMemo {
 public:
  /// The memoized verdict, running analysis::lint_config on a miss.
  /// `key` must be config_key(config). Thread-safe; concurrent misses on the
  /// same key may both lint (same verdict, one is kept).
  LintVerdict check(const train::TrainConfig& config, std::uint64_t key);

  std::uint64_t hits() const;    ///< lints avoided
  std::uint64_t misses() const;  ///< lints actually run
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, LintVerdict> memo_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// The process-wide memo shared by Experiment::measure and the advisor
/// service.
LintMemo& lint_memo();

}  // namespace dnnperf::core
