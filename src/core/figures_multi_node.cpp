// Figures of Section VI: multi-node scaling on the CPU clusters.
#include <cmath>

#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/presets.hpp"
#include "hw/platforms.hpp"

namespace dnnperf::core {

namespace {

using util::TextTable;

std::vector<int> node_steps(int max_nodes) {
  std::vector<int> steps;
  for (int n = 1; n <= max_nodes; n *= 2) steps.push_back(n);
  return steps;
}

std::vector<std::string> header_copy(const std::vector<dnn::ModelId>& models);

/// Multi-node throughput table for the tuned TF (or PyTorch) config:
/// rows = node counts, one column per model, plus speedup anchors.
FigureResult multi_node_figure(const std::string& id, const std::string& title,
                               const hw::ClusterModel& cluster, exec::Framework fw,
                               const std::vector<dnn::ModelId>& models, int max_nodes) {
  FigureResult fig;
  fig.id = id;
  fig.title = title;

  std::vector<std::string> header{"nodes"};
  for (auto m : models) header.push_back(dnn::to_string(m));
  TextTable table(std::move(header));
  TextTable speedups(header_copy(models));

  Experiment exp;
  std::map<dnn::ModelId, double> single;
  for (int nodes : node_steps(max_nodes)) {
    std::vector<std::string> row{std::to_string(nodes)};
    std::vector<std::string> srow{std::to_string(nodes)};
    for (auto m : models) {
      auto cfg = fw == exec::Framework::TensorFlow ? tf_best(cluster, m, nodes)
                                                   : pytorch_best(cluster, m, nodes);
      const double v = exp.measure(cfg).images_per_sec;
      if (nodes == 1) single[m] = v;
      row.push_back(TextTable::num(v, 1));
      const double speedup = v / single[m];
      srow.push_back(TextTable::num(speedup, 2));
      fig.anchors["n" + std::to_string(nodes) + "_" + dnn::to_string(m)] = v;
      fig.anchors["speedup_n" + std::to_string(nodes) + "_" + dnn::to_string(m)] = speedup;
    }
    table.add_row(std::move(row));
    speedups.add_row(std::move(srow));
  }
  fig.tables.push_back(std::move(table));
  fig.tables.push_back(std::move(speedups));
  return fig;
}

std::vector<std::string> header_copy(const std::vector<dnn::ModelId>& models) {
  std::vector<std::string> header{"nodes (speedup)"};
  for (auto m : models) header.push_back(dnn::to_string(m));
  return header;
}

}  // namespace

FigureResult fig07_mn_skylake1() {
  return multi_node_figure("fig07", "TensorFlow multi-node scaling on Skylake-1 (RI2)",
                           hw::ri2_skylake(), exec::Framework::TensorFlow, dnn::paper_models(),
                           8);
}

FigureResult fig08_mn_broadwell() {
  // Section VI-B: 2 processes with 13 intra-op threads, BS 128 for ResNet-50
  // and 64 for the rest — which is what tf_best resolves to on Broadwell,
  // except the per-model batch.
  FigureResult fig;
  fig.id = "fig08";
  fig.title = "TensorFlow multi-node scaling on Broadwell (RI2)";
  std::vector<std::string> header{"nodes"};
  for (auto m : dnn::paper_models()) header.push_back(dnn::to_string(m));
  TextTable table(std::move(header));
  Experiment exp;
  std::map<dnn::ModelId, double> single;
  for (int nodes : node_steps(16)) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (auto m : dnn::paper_models()) {
      const int bs = m == dnn::ModelId::ResNet50 ? 128 : 64;
      auto cfg = tf_best(hw::ri2_broadwell(), m, nodes, bs);
      cfg.intra_threads = 13;
      cfg.inter_threads = 1;
      const double v = exp.measure(cfg).images_per_sec;
      if (nodes == 1) single[m] = v;
      row.push_back(TextTable::num(v, 1));
      fig.anchors["speedup_n" + std::to_string(nodes) + "_" + dnn::to_string(m)] = v / single[m];
    }
    table.add_row(std::move(row));
  }
  fig.tables.push_back(std::move(table));
  return fig;
}

FigureResult fig09_mn_skylake2() {
  FigureResult fig = multi_node_figure("fig09", "TensorFlow multi-node scaling on Skylake-2 (Pitzer)",
                                       hw::pitzer(), exec::Framework::TensorFlow,
                                       dnn::paper_models(), 16);
  // Section VI-C anchor: average speedup of 15.6x at 16 nodes.
  double sum = 0.0;
  for (auto m : dnn::paper_models())
    sum += fig.anchors["speedup_n16_" + std::string(dnn::to_string(m))];
  fig.anchors["avg_speedup_16_nodes"] = sum / static_cast<double>(dnn::paper_models().size());
  return fig;
}

FigureResult fig10_mp_tuned_32nodes() {
  FigureResult fig;
  fig.id = "fig10";
  fig.title = "MP-Tuned vs MP-Default vs SP on 32 Skylake-3 nodes";
  TextTable table({"model", "SP img/s", "MP-Default img/s", "MP-Tuned img/s",
                   "Tuned/SP", "Tuned/Default"});
  Experiment exp;
  const auto cluster = hw::stampede2();
  for (auto m : dnn::paper_models()) {
    // SP: one rank per node, all cores in one process.
    train::TrainConfig sp;
    sp.cluster = cluster;
    sp.model = m;
    sp.nodes = 32;
    sp.ppn = 1;
    sp.intra_threads = 48;
    sp.batch_per_rank = 256;

    // MP-Default: tuned ppn but TF's default threading (all cores per rank,
    // single inter-op thread, no spare core for Horovod).
    auto def = tf_best(cluster, m, 32);
    def.intra_threads = 12;
    def.inter_threads = 1;

    auto tuned = tf_best(cluster, m, 32);  // intra 11, inter 2

    const double sp_v = exp.measure(sp).images_per_sec;
    const double def_v = exp.measure(def).images_per_sec;
    const double tuned_v = exp.measure(tuned).images_per_sec;
    table.add_row({dnn::to_string(m), TextTable::num(sp_v, 0), TextTable::num(def_v, 0),
                   TextTable::num(tuned_v, 0), TextTable::num(tuned_v / sp_v, 2),
                   TextTable::num(tuned_v / def_v, 2)});
    fig.anchors[std::string("tuned_over_sp_") + dnn::to_string(m)] = tuned_v / sp_v;
    fig.anchors[std::string("tuned_over_default_") + dnn::to_string(m)] = tuned_v / def_v;
  }
  fig.tables.push_back(std::move(table));
  return fig;
}

FigureResult fig11_bs_128nodes() {
  FigureResult fig;
  fig.id = "fig11";
  fig.title = "Effect of per-rank batch size at 128 Skylake-3 nodes (TensorFlow)";
  TextTable table({"model", "BS=16", "BS=32", "BS=64"});
  Experiment exp;
  for (auto m : dnn::paper_models()) {
    std::vector<std::string> row{dnn::to_string(m)};
    double first = 0.0, last = 0.0;
    for (int bs : {16, 32, 64}) {
      auto cfg = tf_best(hw::stampede2(), m, 128, bs);
      const double v = exp.measure(cfg).images_per_sec;
      if (bs == 16) first = v;
      last = v;
      row.push_back(TextTable::num(v, 0));
    }
    table.add_row(std::move(row));
    fig.anchors[std::string("bs64_over_bs16_") + dnn::to_string(m)] = last / first;
  }
  fig.tables.push_back(std::move(table));
  return fig;
}

FigureResult fig12_pytorch_skylake3() {
  // Section VI-D: PyTorch needs 48 ppn; BS 16 (RN50/101) and 8 (RN152/Inc-v3).
  const std::vector<dnn::ModelId> models{dnn::ModelId::ResNet50, dnn::ModelId::ResNet101,
                                         dnn::ModelId::ResNet152, dnn::ModelId::InceptionV3};
  FigureResult fig = multi_node_figure("fig12", "PyTorch multi-node scaling on Skylake-3",
                                       hw::stampede2(), exec::Framework::PyTorch, models, 16);
  // Section VI-D anchor: single-process PyTorch ResNet-50 crawls at
  // ~2.1 img/s, which is what motivates the 48-ppn MP recommendation.
  train::TrainConfig sp;
  sp.cluster = hw::stampede2();
  sp.model = dnn::ModelId::ResNet50;
  sp.framework = exec::Framework::PyTorch;
  sp.ppn = 1;
  sp.use_horovod = false;
  sp.batch_per_rank = 32;
  Experiment exp;
  fig.anchors["pt_sp_rn50_img_per_sec"] = exp.measure(sp).images_per_sec;
  return fig;
}

FigureResult fig13_epyc_tensorflow() {
  FigureResult fig = multi_node_figure("fig13", "TensorFlow multi-node scaling on AMD EPYC",
                                       hw::amd_cluster(), exec::Framework::TensorFlow,
                                       dnn::paper_models(), 8);
  fig.anchors["rn152_speedup_8_nodes"] = fig.anchors["speedup_n8_ResNet-152"];
  // Section VI-E: Skylake-3 is ~4.5x EPYC under TF (generic kernels on AMD).
  Experiment exp;
  const double skx = exp.measure(tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 1)).images_per_sec;
  const double amd = exp.measure(tf_best(hw::amd_cluster(), dnn::ModelId::ResNet50, 1)).images_per_sec;
  fig.anchors["skylake3_over_epyc_rn50"] = skx / amd;
  return fig;
}

FigureResult fig14_epyc_pytorch() {
  const std::vector<dnn::ModelId> models{dnn::ModelId::ResNet50, dnn::ModelId::ResNet101,
                                         dnn::ModelId::ResNet152, dnn::ModelId::InceptionV3};
  FigureResult fig = multi_node_figure("fig14", "PyTorch multi-node scaling on AMD EPYC",
                                       hw::amd_cluster(), exec::Framework::PyTorch, models, 8);
  fig.anchors["rn50_speedup_8_nodes"] = fig.anchors["speedup_n8_ResNet-50"];
  // Section VI-E: PT is ~1.2x TF on 8 EPYC nodes (RN152); Skylake-3 is ~1.5x
  // EPYC for PT (RN101).
  Experiment exp;
  const double pt152 =
      exp.measure(pytorch_best(hw::amd_cluster(), dnn::ModelId::ResNet152, 8)).images_per_sec;
  const double tf152 =
      exp.measure(tf_best(hw::amd_cluster(), dnn::ModelId::ResNet152, 8)).images_per_sec;
  fig.anchors["pt_over_tf_rn152_8_nodes"] = pt152 / tf152;
  const double skx101 =
      exp.measure(pytorch_best(hw::stampede2(), dnn::ModelId::ResNet101, 1)).images_per_sec;
  const double amd101 =
      exp.measure(pytorch_best(hw::amd_cluster(), dnn::ModelId::ResNet101, 1)).images_per_sec;
  fig.anchors["skylake3_over_epyc_pt_rn101"] = skx101 / amd101;
  return fig;
}

FigureResult fig17_mn_skylake3_128() {
  FigureResult fig = multi_node_figure("fig17",
                                       "TensorFlow multi-node scaling on Skylake-3 up to 128 nodes",
                                       hw::stampede2(), exec::Framework::TensorFlow,
                                       dnn::paper_models(), 128);
  fig.anchors["rn152_speedup_128_nodes"] = fig.anchors["speedup_n128_ResNet-152"];
  fig.anchors["rn152_img_per_sec_128_nodes"] = fig.anchors["n128_ResNet-152"];
  return fig;
}

}  // namespace dnnperf::core
