// Measurement protocol of the paper (Section IV-B): every experiment runs
// three times and reports the average to smooth jitter. The simulation is
// deterministic, so Experiment injects seeded multiplicative measurement
// noise before averaging — the aggregate converges on the deterministic
// value while exercising the same protocol.
#pragma once

#include <cstdint>

#include "train/trainer.hpp"
#include "util/stats.hpp"

namespace dnnperf::core {

struct Measurement {
  double images_per_sec = 0.0;  ///< mean over repeats
  double stddev = 0.0;
  train::TrainResult last;      ///< full result of the final (noise-free) run
};

class Experiment {
 public:
  /// `noise_cv`: coefficient of variation of per-run measurement noise.
  explicit Experiment(int repeats = 3, double noise_cv = 0.005, std::uint64_t seed = 2019);

  /// Runs the config `repeats` times and averages throughput.
  Measurement measure(const train::TrainConfig& config);

 private:
  int repeats_;
  double noise_cv_;
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

}  // namespace dnnperf::core
