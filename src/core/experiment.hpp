// Measurement protocol of the paper (Section IV-B): every experiment runs
// three times and reports the average to smooth jitter. The simulation is
// deterministic, so Experiment injects seeded multiplicative measurement
// noise before averaging — the aggregate converges on the deterministic
// value while exercising the same protocol.
#pragma once

#include <cstdint>

#include "train/trainer.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"

namespace dnnperf::core {

struct Measurement {
  double images_per_sec = 0.0;  ///< mean over repeats
  double stddev = 0.0;
  train::TrainResult last;      ///< full result of the final (noise-free) run
  /// This config's slice of the metrics registry: the delta between the
  /// snapshots taken before and after the base run, labeled with
  /// analysis::config_label. Empty when metrics are runtime-disabled.
  util::metrics::Snapshot scorecard;
};

class Experiment {
 public:
  /// `noise_cv`: coefficient of variation of per-run measurement noise.
  explicit Experiment(int repeats = 3, double noise_cv = 0.005, std::uint64_t seed = 2019);

  /// Runs the config `repeats` times and averages throughput.
  ///
  /// Before the first run the config goes through the static-analysis lint
  /// (analysis::lint_config): Error-level findings abort with
  /// std::invalid_argument carrying the rendered diagnostics; Warn findings
  /// are logged. The verdict is memoized process-wide by config content hash
  /// (core::lint_memo) — re-measuring a byte-identical config skips the
  /// lint + engine model check entirely. Disable with set_lint(false) for
  /// deliberate what-if sweeps over configurations the lint rejects.
  Measurement measure(const train::TrainConfig& config);

  /// Deterministic variant for the advisor service: measurement noise is
  /// seeded by `key` (the config's content hash) instead of the call
  /// counter, so the same config measures bit-identically no matter how many
  /// configs were measured before it or on which thread — a cache hit is
  /// indistinguishable from a cold miss. Thread-safe (const: no counter).
  /// No scorecard is taken: registry snapshots must not race with recording
  /// threads, and this path runs fanned out across a pool.
  Measurement measure_keyed(const train::TrainConfig& config, std::uint64_t key) const;

  void set_lint(bool enabled) { lint_ = enabled; }
  bool lint_enabled() const { return lint_; }

 private:
  /// Memoized lint gate; throws std::invalid_argument on Error findings.
  void lint_gate(const train::TrainConfig& config, std::uint64_t key) const;

  int repeats_;
  double noise_cv_;
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
  bool lint_ = true;
};

}  // namespace dnnperf::core
