#include "core/presets.hpp"

namespace dnnperf::core {

int tf_best_ppn(const hw::CpuModel& cpu) {
  if (cpu.vendor == hw::CpuVendor::Amd) return 16;
  // 28-core parts -> 2 ppn; 40- and 48-core parts -> 4 ppn (Section IX).
  return cpu.total_cores() <= 28 ? 2 : 4;
}

int pytorch_best_ppn(const hw::CpuModel& cpu) {
  if (cpu.vendor == hw::CpuVendor::Amd) return 32;
  return cpu.total_cores();
}

train::TrainConfig tf_best(const hw::ClusterModel& cluster, dnn::ModelId model, int nodes,
                           int batch_per_rank) {
  train::TrainConfig cfg;
  cfg.cluster = cluster;
  cfg.model = model;
  cfg.framework = exec::Framework::TensorFlow;
  cfg.nodes = nodes;
  cfg.ppn = tf_best_ppn(cluster.node.cpu);
  if (cluster.node.cpu.vendor == hw::CpuVendor::Amd) {
    cfg.intra_threads = 5;  // the paper's tuned EPYC setting
    cfg.inter_threads = 2;
    cfg.batch_per_rank = 32;
  } else {
    cfg.intra_threads = 0;  // auto: cores/ppn - 1
    cfg.inter_threads = 0;  // auto: 2 on SMT parts
    cfg.batch_per_rank = batch_per_rank;
  }
  return cfg;
}

train::TrainConfig pytorch_best(const hw::ClusterModel& cluster, dnn::ModelId model,
                                int nodes) {
  train::TrainConfig cfg;
  cfg.cluster = cluster;
  cfg.model = model;
  cfg.framework = exec::Framework::PyTorch;
  cfg.nodes = nodes;
  cfg.ppn = pytorch_best_ppn(cluster.node.cpu);
  if (cluster.node.cpu.vendor == hw::CpuVendor::Amd) {
    // BS 32 everywhere except ResNet-152: at ppn=32 on a 256 GB node its
    // training footprint exceeds the 8 GB per-rank share even with full
    // buffer reuse (lint S008), so it gets the Skylake-style reduction.
    cfg.batch_per_rank = model == dnn::ModelId::ResNet152 ? 16 : 32;
  } else {
    // Section VI-D: BS 16 for ResNet-50/101, BS 8 for ResNet-152 and
    // Inception-v3 on Skylake-3.
    const bool small = model == dnn::ModelId::ResNet152 || model == dnn::ModelId::InceptionV3 ||
                       model == dnn::ModelId::InceptionV4;
    cfg.batch_per_rank = small ? 8 : 16;
  }
  return cfg;
}

train::TrainConfig sp_baseline(const hw::ClusterModel& cluster, dnn::ModelId model, int batch) {
  train::TrainConfig cfg;
  cfg.cluster = cluster;
  cfg.model = model;
  cfg.nodes = 1;
  cfg.ppn = 1;
  cfg.use_horovod = false;
  cfg.batch_per_rank = batch;
  return cfg;
}

train::TrainConfig gpu_config(const hw::ClusterModel& cluster, dnn::ModelId model,
                              exec::Framework fw, int nodes, int gpus_per_node, int batch) {
  train::TrainConfig cfg;
  cfg.cluster = cluster;
  cfg.model = model;
  cfg.framework = fw;
  cfg.device = train::DeviceKind::Gpu;
  cfg.nodes = nodes;
  cfg.ppn = gpus_per_node;
  cfg.batch_per_rank = batch;
  cfg.use_horovod = nodes * gpus_per_node > 1;
  return cfg;
}

}  // namespace dnnperf::core
