// Time-to-train estimation: throughput is only half the story the paper
// tells — Section V-A deliberately caps batch sizes because large effective
// batches hurt convergence (citing Goyal et al.'s large-minibatch work).
// This module combines simulated throughput (hardware efficiency) with a
// simple statistical-efficiency model to estimate wall-clock time to a
// target accuracy, exposing the ppn/BS trade-off quantitatively.
#pragma once

#include "train/trainer.hpp"
#include "util/table.hpp"

namespace dnnperf::core {

struct StatisticalEfficiency {
  /// Epochs to reach the target accuracy at small effective batches.
  double base_epochs = 90.0;
  /// Effective batch size up to which convergence is unaffected (Goyal et
  /// al. hold accuracy to ~8k for ResNet-50 with warmup + linear scaling).
  double critical_batch = 8192.0;
  /// Extra epochs (fractional) per doubling of the effective batch beyond
  /// the critical size.
  double epochs_per_doubling = 0.35;
  /// Training-set size (ImageNet-1k).
  double dataset_images = 1.281e6;

  /// Epochs needed at `effective_batch` (>= base_epochs).
  double epochs_needed(double effective_batch) const;
};

struct TimeToTrain {
  double images_per_sec = 0.0;
  double epochs = 0.0;
  double hours = 0.0;
  int effective_batch = 0;
};

/// Estimates wall-clock training time for `config` under `eff`.
TimeToTrain estimate_time_to_train(const train::TrainConfig& config,
                                   const StatisticalEfficiency& eff = {});

/// Sweeps per-rank batch sizes for a fixed config and tabulates throughput
/// vs estimated time-to-train — the crossover where bigger batches stop
/// paying (columns: BS/rank, effective BS, img/s, epochs, hours).
util::TextTable batch_tradeoff_table(const train::TrainConfig& base,
                                     const std::vector<int>& batch_sizes,
                                     const StatisticalEfficiency& eff = {});

}  // namespace dnnperf::core
