#include "core/insights.hpp"

#include <sstream>

#include "core/presets.hpp"
#include "hw/platforms.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"

namespace dnnperf::core {

namespace {

using util::TextTable;

double throughput(const train::TrainConfig& cfg) {
  return train::run_training(cfg).images_per_sec;
}

Insight insight_mp_over_sp() {
  auto sp = sp_baseline(hw::stampede2(), dnn::ModelId::ResNet152, 256);
  auto mp = tf_best(hw::stampede2(), dnn::ModelId::ResNet152, 1);
  const double ratio = throughput(mp) / throughput(sp);
  Insight i;
  i.claim = "Single-node training should use the multi-process (MP) approach; it beats "
            "single-process (SP) despite MKL-DNN multithreading.";
  std::ostringstream os;
  os << "MP(4 ppn) / SP = " << TextTable::num(ratio, 2) << "x for ResNet-152 on Skylake-3 "
     << "(paper: up to 1.35x).";
  i.measured = os.str();
  i.holds = ratio > 1.0;
  return i;
}

Insight insight_best_ppn() {
  Insight i;
  i.claim = "Best TensorFlow ppn is 2/4/4 for 28/40/48-core Intel CPUs and 16 for EPYC.";
  std::ostringstream os;
  bool holds = true;
  for (const auto& cluster :
       {hw::ri2_skylake(), hw::pitzer(), hw::stampede2(), hw::amd_cluster()}) {
    int best_ppn = 1;
    double best = 0.0;
    for (int ppn : {1, 2, 4, 8, 16, 32}) {
      if (ppn > cluster.node.cpu.total_cores()) break;
      train::TrainConfig cfg;
      cfg.cluster = cluster;
      cfg.model = dnn::ModelId::ResNet50;
      cfg.ppn = ppn;
      cfg.batch_per_rank = std::max(8, 256 / ppn);
      cfg.use_horovod = ppn > 1;
      const double v = throughput(cfg);
      if (v > best) {
        best = v;
        best_ppn = ppn;
      }
    }
    os << cluster.node.cpu.label << ":" << best_ppn << "ppn ";
    const int expected = tf_best_ppn(cluster.node.cpu);
    // Within a factor of two of the paper's pick counts as agreeing (the
    // paper itself notes 2 vs 4 ppn is marginal on 28-core parts).
    if (best_ppn > 2 * expected || expected > 2 * best_ppn) holds = false;
  }
  i.measured = os.str() + "(paper: 2/4/4/16).";
  i.holds = holds;
  return i;
}

Insight insight_pytorch_ppn() {
  Insight i;
  i.claim = "PyTorch's best ppn equals the core count, unlike TensorFlow.";
  double best = 0.0;
  int best_ppn = 1;
  for (int ppn : {1, 4, 12, 24, 48}) {
    auto cfg = pytorch_best(hw::stampede2(), dnn::ModelId::ResNet50, 1);
    cfg.ppn = ppn;
    const double v = throughput(cfg);
    if (v > best) {
      best = v;
      best_ppn = ppn;
    }
  }
  std::ostringstream os;
  os << "best PyTorch ppn on 48-core Skylake-3 = " << best_ppn << " (paper: 48).";
  i.measured = os.str();
  i.holds = best_ppn >= 24;
  return i;
}

Insight insight_intra_minus_one() {
  auto tuned = tf_best(hw::stampede2(), dnn::ModelId::ResNet152, 4);
  tuned.intra_threads = 11;
  auto greedy = tuned;
  greedy.intra_threads = 12;
  const double ratio = throughput(tuned) / throughput(greedy);
  Insight i;
  i.claim = "intra-op threads should be cores/process - 1, leaving a core for Horovod's "
            "progress thread.";
  std::ostringstream os;
  os << "11 vs 12 intra-op on 12-core ranks: " << TextTable::num(ratio, 3)
     << "x in favour of leaving the spare core.";
  i.measured = os.str();
  i.holds = ratio > 1.0;
  return i;
}

Insight insight_tf_vs_pt_cpu_gpu() {
  const double tf_cpu = throughput(tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 1));
  const double pt_cpu = throughput(pytorch_best(hw::stampede2(), dnn::ModelId::ResNet50, 1));
  const double tf_gpu = throughput(
      gpu_config(hw::pitzer_v100(), dnn::ModelId::ResNet50, exec::Framework::TensorFlow, 1, 1, 64));
  const double pt_gpu = throughput(
      gpu_config(hw::pitzer_v100(), dnn::ModelId::ResNet50, exec::Framework::PyTorch, 1, 1, 64));
  Insight i;
  i.claim = "TensorFlow is faster on CPUs; PyTorch is faster on GPUs.";
  std::ostringstream os;
  os << "CPU: TF/PT = " << TextTable::num(tf_cpu / pt_cpu, 2) << "x; GPU: PT/TF = "
     << TextTable::num(pt_gpu / tf_gpu, 2) << "x.";
  i.measured = os.str();
  i.holds = tf_cpu > pt_cpu && pt_gpu > tf_gpu;
  return i;
}

Insight insight_skylake_vs_gpus() {
  const double skx = throughput(tf_best(hw::stampede2(), dnn::ModelId::InceptionV4, 1));
  const double k80 = throughput(
      gpu_config(hw::ri2_k80(), dnn::ModelId::InceptionV4, exec::Framework::TensorFlow, 1, 1, 32));
  const double skx101 = throughput(tf_best(hw::stampede2(), dnn::ModelId::ResNet101, 1));
  const double v100 = throughput(gpu_config(hw::pitzer_v100(), dnn::ModelId::ResNet101,
                                            exec::Framework::TensorFlow, 1, 1, 128));
  Insight i;
  i.claim = "Skylake is up to 2.35x faster than K80, but V100 is up to 3.32x faster than "
            "Skylake.";
  std::ostringstream os;
  os << "Skylake-3/K80 (Inception-v4) = " << TextTable::num(skx / k80, 2)
     << "x; V100/Skylake-3 (ResNet-101) = " << TextTable::num(v100 / skx101, 2) << "x.";
  i.measured = os.str();
  i.holds = skx > k80 && v100 > skx101;
  return i;
}

Insight insight_cycle_time() {
  auto pt = pytorch_best(hw::stampede2(), dnn::ModelId::ResNet50, 8);
  const double base = throughput(pt);
  pt.policy.cycle_time_s = 600e-3;
  const double tuned = throughput(pt);
  Insight i;
  i.claim = "PyTorch needs HOROVOD_CYCLE_TIME tuning (up to 1.25x); TensorFlow does not.";
  std::ostringstream os;
  os << "PyTorch ResNet-50 at 600 ms cycle: " << TextTable::num(tuned / base, 2)
     << "x over the 3.5 ms default.";
  i.measured = os.str();
  i.holds = tuned / base > 1.1;
  return i;
}

}  // namespace

std::vector<Insight> evaluate_key_insights() {
  return {insight_mp_over_sp(),   insight_best_ppn(),       insight_pytorch_ppn(),
          insight_intra_minus_one(), insight_tf_vs_pt_cpu_gpu(), insight_skylake_vs_gpus(),
          insight_cycle_time()};
}

std::string render_insights(const std::vector<Insight>& insights) {
  std::ostringstream os;
  os << "=== Key insights (paper Section IX), recomputed from the model ===\n\n";
  int n = 1;
  for (const auto& i : insights) {
    os << n++ << ". " << (i.holds ? "[holds] " : "[FAILS] ") << i.claim << "\n   -> "
       << i.measured << "\n\n";
  }
  return os.str();
}

}  // namespace dnnperf::core
