// ConfigAdvisor: mechanizes the paper's Section IX guidance by searching the
// (ppn, intra-op, inter-op, batch) space for a platform + model + framework
// and reporting the best configuration found. Tests check that the search
// rediscovers the paper's rules (best ppn per architecture, intra-op =
// cores/ppn - 1, inter-op = 2 under SMT, PyTorch ppn = cores).
//
// advise() is a thin wrapper over core::AdvisorService (advisor_service.hpp)
// sharing the process-wide service: repeated or overlapping sweeps are
// answered from its content-addressed cache, and cold sweeps evaluate in
// parallel on its pool. Use the service directly for batched queries,
// objectives other than throughput, and query-economics stats.
#pragma once

#include "core/figures.hpp"
#include "train/trainer.hpp"

namespace dnnperf::core {

struct AdvisorOptions {
  /// Candidate per-rank batch sizes. The paper keeps batches modest for
  /// convergence (Section V-A); the default caps at 128. An empty list is an
  /// A001 diagnostic (std::invalid_argument), not a silent empty search.
  std::vector<int> batch_candidates{16, 32, 64, 128};
  /// Candidate ppn values; empty = divisors of the core count up to cores.
  std::vector<int> ppn_candidates;
  /// Must be in [1, cluster.max_nodes]; anything else is an A002 diagnostic.
  int nodes = 1;
};

struct Recommendation {
  train::TrainConfig best;
  double images_per_sec = 0.0;
  /// Every evaluated configuration. Populated by advise(); the service only
  /// fills it when AdvisorRequest::want_table is set.
  util::TextTable search_table{{"ppn", "intra", "inter", "BS/rank", "img/s"}};
};

Recommendation advise(const hw::ClusterModel& cluster, dnn::ModelId model,
                      exec::Framework framework, const AdvisorOptions& options = {});

}  // namespace dnnperf::core
