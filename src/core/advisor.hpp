// ConfigAdvisor: mechanizes the paper's Section IX guidance by searching the
// (ppn, intra-op, inter-op, batch) space for a platform + model + framework
// and reporting the best configuration found. Tests check that the search
// rediscovers the paper's rules (best ppn per architecture, intra-op =
// cores/ppn - 1, inter-op = 2 under SMT, PyTorch ppn = cores).
#pragma once

#include "core/figures.hpp"
#include "train/trainer.hpp"

namespace dnnperf::core {

struct AdvisorOptions {
  /// Candidate per-rank batch sizes. The paper keeps batches modest for
  /// convergence (Section V-A); the default caps at 128.
  std::vector<int> batch_candidates{16, 32, 64, 128};
  /// Candidate ppn values; empty = divisors of the core count up to cores.
  std::vector<int> ppn_candidates;
  int nodes = 1;
};

struct Recommendation {
  train::TrainConfig best;
  double images_per_sec = 0.0;
  util::TextTable search_table;  ///< every evaluated configuration
};

Recommendation advise(const hw::ClusterModel& cluster, dnn::ModelId model,
                      exec::Framework framework, const AdvisorOptions& options = {});

}  // namespace dnnperf::core
