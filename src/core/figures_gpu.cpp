// Figures of Section VII: GPU architectures vs the best CPU configuration.
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/presets.hpp"
#include "hw/platforms.hpp"

namespace dnnperf::core {

namespace {

using util::TextTable;

int best_gpu_batch(const hw::GpuModel& gpu) {
  // K80's 12 GB (per logical GPU) limits batch; Pascal/Volta run larger.
  return gpu.name == "K80" ? 32 : 128;
}

}  // namespace

FigureResult fig15_gpu_cpu_tensorflow() {
  FigureResult fig;
  fig.id = "fig15";
  fig.title = "TensorFlow: K80 / P100 / V100 vs the best Skylake-3 CPU configuration";
  TextTable table({"model", "K80 img/s", "P100 img/s", "V100 img/s", "Skylake-3 img/s",
                   "SKX/K80", "V100/SKX"});
  Experiment exp;
  const std::vector<hw::ClusterModel> gpu_clusters{hw::ri2_k80(), hw::p100_cluster(),
                                                   hw::pitzer_v100()};
  for (auto m : dnn::paper_models()) {
    std::vector<double> gpu_v;
    for (const auto& cluster : gpu_clusters) {
      auto cfg = gpu_config(cluster, m, exec::Framework::TensorFlow, 1, 1,
                            best_gpu_batch(*cluster.node.gpu));
      gpu_v.push_back(exp.measure(cfg).images_per_sec);
    }
    const double skx = exp.measure(tf_best(hw::stampede2(), m, 1)).images_per_sec;
    table.add_row({dnn::to_string(m), TextTable::num(gpu_v[0], 1), TextTable::num(gpu_v[1], 1),
                   TextTable::num(gpu_v[2], 1), TextTable::num(skx, 1),
                   TextTable::num(skx / gpu_v[0], 2), TextTable::num(gpu_v[2] / skx, 2)});
    fig.anchors[std::string("skx_over_k80_") + dnn::to_string(m)] = skx / gpu_v[0];
    fig.anchors[std::string("v100_over_skx_") + dnn::to_string(m)] = gpu_v[2] / skx;
    fig.anchors[std::string("p100_over_k80_") + dnn::to_string(m)] = gpu_v[1] / gpu_v[0];
  }
  fig.tables.push_back(std::move(table));
  return fig;
}

FigureResult fig16_pt_vs_tf_gpu() {
  FigureResult fig;
  fig.id = "fig16";
  fig.title = "PyTorch vs TensorFlow on V100 GPUs (1, 2, 4 devices)";
  TextTable table({"model", "1-TF", "1-PT", "2-TF", "2-PT", "4-TF", "4-PT", "PT/TF @4"});
  Experiment exp;
  const std::vector<dnn::ModelId> models{dnn::ModelId::ResNet50, dnn::ModelId::ResNet101,
                                         dnn::ModelId::ResNet152, dnn::ModelId::InceptionV3};
  for (auto m : models) {
    std::vector<std::string> row{dnn::to_string(m)};
    double tf4 = 0.0, pt4 = 0.0;
    for (int gpus : {1, 2, 4}) {
      const int nodes = gpus <= 2 ? 1 : 2;
      const int per_node = gpus <= 2 ? gpus : 2;
      auto tf = gpu_config(hw::pitzer_v100(), m, exec::Framework::TensorFlow, nodes, per_node, 64);
      auto pt = gpu_config(hw::pitzer_v100(), m, exec::Framework::PyTorch, nodes, per_node, 64);
      const double tf_v = exp.measure(tf).images_per_sec;
      const double pt_v = exp.measure(pt).images_per_sec;
      if (gpus == 4) {
        tf4 = tf_v;
        pt4 = pt_v;
      }
      row.push_back(TextTable::num(tf_v, 0));
      row.push_back(TextTable::num(pt_v, 0));
      fig.anchors["tf_" + std::to_string(gpus) + "gpu_" + dnn::to_string(m)] = tf_v;
      fig.anchors["pt_" + std::to_string(gpus) + "gpu_" + dnn::to_string(m)] = pt_v;
    }
    row.push_back(TextTable::num(pt4 / tf4, 2));
    fig.anchors[std::string("pt_over_tf_4gpu_") + dnn::to_string(m)] = pt4 / tf4;
    table.add_row(std::move(row));
  }
  fig.tables.push_back(std::move(table));
  return fig;
}

}  // namespace dnnperf::core
