// Figures of Section VIII: the relationship between end-to-end performance,
// HOROVOD_CYCLE_TIME, and the number of Allreduce operations issued by the
// Horovod Engine, measured with the paper's custom profiling counters
// (reproduced by hvd::CommStats) over 40 training iterations.
#include <stdexcept>

#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/presets.hpp"
#include "hw/platforms.hpp"
#include "util/metrics.hpp"

namespace dnnperf::core {

namespace {

using util::TextTable;

constexpr int kProfilingIterations = 40;
constexpr int kProfilingNodes = 8;

/// Engine-issued allreduce ops of one run. When the metrics registry is
/// live, the count comes from the registry delta (the same
/// hvd_engine_cycles_total + hvd_allreduce_issued_total the engine publishes
/// through hvd::EngineCounters) and is cross-checked against the CommStats
/// struct — the two share one increment path, so a mismatch means the
/// figure's accounting broke and the run aborts rather than print a number
/// that drifted from the engine's own. With metrics off, the struct is the
/// only source.
double engine_ops(const util::metrics::Snapshot& before, const train::TrainResult& r) {
  const double struct_ops = static_cast<double>(r.comm.engine_allreduces());
  if (!util::metrics::enabled()) return struct_ops;
  const auto d = util::metrics::delta(before, util::metrics::snapshot());
  const auto* cycles = d.find(hvd::metric_names::kCycles);
  const auto* issued = d.find(hvd::metric_names::kIssued);
  const double registry_ops =
      static_cast<double>((cycles != nullptr ? cycles->count : 0) +
                          (issued != nullptr ? issued->count : 0));
  if (registry_ops != struct_ops)
    throw std::logic_error("profiling figure: registry engine-op count (" +
                           std::to_string(registry_ops) + ") != CommStats count (" +
                           std::to_string(struct_ops) + ")");
  return registry_ops;
}

FigureResult profiling_figure(const std::string& id, const std::string& title,
                              exec::Framework fw, const std::vector<dnn::ModelId>& models,
                              const std::vector<double>& cycle_times_ms) {
  FigureResult fig;
  fig.id = id;
  fig.title = title;

  std::vector<std::string> header{"cycle (ms)"};
  for (auto m : models) {
    header.push_back(std::string(dnn::to_string(m)) + " img/s");
    header.push_back(std::string("HE ") + dnn::to_string(m));  // engine allreduce count
  }
  TextTable table(std::move(header));

  std::map<dnn::ModelId, double> base_perf;
  std::map<dnn::ModelId, double> base_ops;
  for (double ms : cycle_times_ms) {
    std::vector<std::string> row{TextTable::num(ms, 1)};
    for (auto m : models) {
      auto cfg = fw == exec::Framework::TensorFlow
                     ? tf_best(hw::stampede2(), m, kProfilingNodes)
                     : pytorch_best(hw::stampede2(), m, kProfilingNodes);
      cfg.iterations = kProfilingIterations;
      cfg.policy.cycle_time_s = ms * 1e-3;
      util::metrics::Snapshot before;
      if (util::metrics::enabled()) before = util::metrics::snapshot();
      const auto r = train::run_training(cfg);
      const double ops = engine_ops(before, r);
      if (ms == cycle_times_ms.front()) {
        base_perf[m] = r.images_per_sec;
        base_ops[m] = ops;
      }
      row.push_back(TextTable::num(r.images_per_sec, 1));
      row.push_back(TextTable::num(ops, 0));
      const std::string suffix =
          "_" + std::to_string(static_cast<int>(ms)) + "ms_" + dnn::to_string(m);
      fig.anchors["perf" + suffix] = r.images_per_sec;
      fig.anchors["engine_ops" + suffix] = ops;
      if (ms == cycle_times_ms.back()) {
        fig.anchors[std::string("perf_gain_") + dnn::to_string(m)] =
            r.images_per_sec / base_perf[m];
        fig.anchors[std::string("ops_reduction_") + dnn::to_string(m)] = base_ops[m] / ops;
      }
    }
    table.add_row(std::move(row));
  }
  fig.tables.push_back(std::move(table));
  return fig;
}

}  // namespace

FigureResult fig18_hvd_profiling_tf() {
  // Default HOROVOD_CYCLE_TIME is 3.5 ms; the paper sweeps up to 90 ms and
  // sees at most ~1.04x for ResNet-101.
  return profiling_figure(
      "fig18", "TensorFlow: performance and Horovod-Engine allreduce count vs cycle time",
      exec::Framework::TensorFlow,
      {dnn::ModelId::ResNet50, dnn::ModelId::ResNet101, dnn::ModelId::ResNet152},
      {3.5, 10.0, 30.0, 60.0, 90.0});
}

FigureResult fig19_hvd_profiling_pt() {
  // The paper sweeps to 600 ms for PyTorch: up to 1.25x for ResNet-50 and
  // ~199x fewer engine allreduces.
  return profiling_figure(
      "fig19", "PyTorch: performance and Horovod-Engine allreduce count vs cycle time",
      exec::Framework::PyTorch,
      {dnn::ModelId::ResNet50, dnn::ModelId::ResNet101, dnn::ModelId::ResNet152},
      {3.5, 30.0, 100.0, 300.0, 600.0});
}

}  // namespace dnnperf::core
