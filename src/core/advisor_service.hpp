// AdvisorService: the paper's Section IX advisor ("given model M on platform
// P with N nodes, which (ppn, intra-op, inter-op, batch) config?") as a
// high-throughput in-process query service (§6.6).
//
// A query is an AdvisorRequest; the planner enumerates its candidate grid
// (the same enumeration the serial core::advise() used), the evaluator fans
// the uncached grid points out across a ref::ThreadPool with grain-aware
// chunking, and every per-config Measurement lands in a sharded
// content-addressed EvalCache — repeated and overlapping sweeps reuse
// sub-results instead of re-simulating. ask_many() batches queries:
// grid points shared by the requests in one batch are deduplicated before
// dispatch, so ten clients asking about the same platform cost one sweep.
//
// Throughput model: a warm query is pure hash lookups (shard-striped, no
// global lock) and runs concurrently with anything; a cold sweep serializes
// on the pool dispatch (ThreadPool::parallel_for has one external caller at
// a time) but its evaluations run on all pool threads. qps, cache hit/miss
// counters, and the advisor_query_seconds p50/p99 histogram are published on
// the util::metrics registry; bench/advisor_load is the closed-loop load
// generator and ci/check.sh smoke-tests hit rate and qps.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/advisor.hpp"
#include "core/eval_cache.hpp"
#include "core/scenario.hpp"
#include "prof/profile.hpp"
#include "ref/threadpool.hpp"

namespace dnnperf::core {

/// What the query optimizes for over the candidate grid.
enum class Objective {
  MaxImagesPerSec,  ///< highest aggregate throughput (the paper's metric)
  MinStepTime,      ///< lowest per-iteration latency (interactive tuning)
};

const char* to_string(Objective objective);

/// One what-if query: model M on platform P (fabric/topology ride along in
/// the ClusterModel) with N nodes under a framework and an objective.
struct AdvisorRequest {
  hw::ClusterModel cluster;
  dnn::ModelId model = dnn::ModelId::ResNet50;
  exec::Framework framework = exec::Framework::TensorFlow;
  train::DeviceKind device = train::DeviceKind::Cpu;
  int nodes = 1;
  Objective objective = Objective::MaxImagesPerSec;

  /// Candidate per-rank batch sizes (paper Section V-A keeps batches modest).
  std::vector<int> batch_candidates{16, 32, 64, 128};
  /// Candidate ppn values; empty = power-of-two divisors of the core count
  /// (CPU) or of the GPUs per node (GPU), plus the full count.
  std::vector<int> ppn_candidates;
  /// Graph-optimizer levels to sweep as a grid dimension (each must be in
  /// [0, 2], A003). Default probes only the as-built graph; add 1/2 to ask
  /// "what does verified fusion buy on this platform?" alongside the thread
  /// and batch knobs.
  std::vector<int> opt_levels{0};
  /// Horovod tuning applied to every grid point.
  hvd::FusionPolicy policy;
  /// Build the full search TextTable in the reply. Off by default: rendering
  /// a few hundred rows costs more than answering a warm query.
  bool want_table = false;
};

/// The answer: best config under the objective plus query-economics stats.
struct AdvisorReply {
  Recommendation recommendation;
  double objective_value = 0.0;  ///< img/s or seconds, per the objective
  std::size_t grid_points = 0;   ///< configs the planner enumerated
  std::size_t cache_hits = 0;    ///< grid points served from the cache
  std::size_t deduplicated = 0;  ///< points shared with earlier queries in the batch
  std::size_t evaluated = 0;     ///< fresh simulations this query triggered
  /// What bounds the recommended config's step time (prof verdict rule), so
  /// the recommendation says not just "fastest" but "fastest, and here is
  /// where its remaining time goes".
  prof::Verdict verdict = prof::Verdict::ComputeBound;
  double overlap_fraction = 0.0;  ///< comm busy time overlapped with compute
  std::string verdict_reason;
};

/// One fixed per-node geometry swept across node counts — the paper's
/// Fig. 13–17 scaling curves as a service query, priced up to 16k ranks
/// (raise cluster.max_nodes for the large sweeps; a per-rank pooled DES
/// point at 4k ranks still answers in seconds).
struct ScalingRequest {
  hw::ClusterModel cluster;
  dnn::ModelId model = dnn::ModelId::ResNet50;
  exec::Framework framework = exec::Framework::TensorFlow;
  train::DeviceKind device = train::DeviceKind::Cpu;
  /// Node counts to sweep; each must be in [1, cluster.max_nodes] (A002).
  std::vector<int> node_counts{1, 2, 4, 8};
  int ppn = 1;
  int batch_per_rank = 64;
  int intra_threads = 0;  ///< 0 = the paper's auto rule
  int inter_threads = 0;
  hvd::FusionPolicy policy;
  /// Collective hierarchy priced at every point (the --hierarchy knob).
  train::CommHierarchy hierarchy = train::CommHierarchy::Flat;
  /// Graph-optimizer level applied at every point (0-2, A003).
  int opt_level = 0;
  /// Simulate every rank explicitly through the pooled event engine, which
  /// also fills the sim_events/sim_pool_slots fields of each point.
  bool per_rank_sim = false;
};

/// One point of a scaling curve, plus the derived speedup/efficiency the
/// paper's figures plot.
struct ScalingPoint {
  train::TrainConfig config;
  int nodes = 0;
  int ranks = 0;
  double images_per_sec = 0.0;
  double per_iteration_s = 0.0;
  double speedup = 0.0;     ///< vs the smallest swept node count
  double efficiency = 0.0;  ///< speedup / (ranks / base ranks)
  std::uint64_t sim_events = 0;
  std::uint64_t sim_pool_slots = 0;
  /// Bottleneck attribution for this point: why the curve bends here
  /// (exposed comm, straggler skew, ...), plus the overlap achieved.
  prof::Verdict verdict = prof::Verdict::ComputeBound;
  double overlap_fraction = 0.0;
};

/// One survivability query: how much throughput does `config` retain when
/// `scenario` plays out? ("1 rank crashes at step 10 and rejoins at step
/// 30" as a service question.)
struct SurvivabilityRequest {
  train::TrainConfig config;
  Scenario scenario;
};

/// The answer: the healthy and faulted measurements side by side, plus the
/// retention figure the operator actually wants.
struct SurvivabilityReply {
  double healthy_images_per_sec = 0.0;
  double scenario_images_per_sec = 0.0;
  /// scenario / healthy throughput; 1.0 = the fault cost nothing.
  double throughput_retention = 0.0;
  /// Mean alive-rank fraction over the faulted run's iterations.
  double alive_rank_fraction = 1.0;
  std::uint64_t membership_changes = 0;
  /// Per-iteration times of the faulted run (the recovery curve).
  std::vector<double> iteration_seconds;
  std::size_t cache_hits = 0;  ///< of the two measurements, served warm
  std::size_t evaluated = 0;   ///< fresh simulations this query triggered
  /// Bottleneck attribution of the faulted run.
  prof::Verdict verdict = prof::Verdict::ComputeBound;
  std::string verdict_reason;
};

struct AdvisorServiceOptions {
  /// Evaluation pool width; 0 = std::thread::hardware_concurrency (min 2).
  int threads = 0;
  /// EvalCache capacity (measurements) and shard count.
  std::size_t cache_capacity = 1 << 16;
  int cache_shards = 16;
  /// Measurement protocol per grid point. noise_cv = 0 keeps grid values
  /// exactly equal to the deterministic simulation (and to the old serial
  /// advise()); raise it to exercise the paper's repeat-and-average protocol.
  int repeats = 1;
  double noise_cv = 0.0;
  std::uint64_t seed = 2019;
  /// Lint every grid point through the memoized gate. Off by default —
  /// advisor sweeps are deliberate what-if exploration over configs the
  /// schedule lint may reject, exactly the Experiment::set_lint(false) case.
  bool lint = false;
  /// Minimum grid points per pool chunk; evaluations are ~0.1–1 ms each, so
  /// a small grain amortizes dispatch without starving the pool.
  std::size_t min_grain = 2;
};

/// Batched, cached, parallel what-if query engine. Thread-safe: any number
/// of threads may call ask()/ask_many() concurrently; warm queries only
/// touch the sharded cache, cold sweeps serialize on the internal pool.
class AdvisorService {
 public:
  explicit AdvisorService(AdvisorServiceOptions options = {});

  /// Answers one query. Equivalent to ask_many({request})[0].
  AdvisorReply ask(const AdvisorRequest& request);

  /// Answers a batch: candidate grids are planned per request, deduplicated
  /// across the whole batch by config content hash, probed against the
  /// cache, and only the remaining unique points are simulated (in parallel
  /// on the pool). Replies come back in request order. Throws
  /// std::invalid_argument (with rendered A-code diagnostics) if any request
  /// is malformed — nothing is evaluated in that case.
  std::vector<AdvisorReply> ask_many(const std::vector<AdvisorRequest>& requests);

  /// Sweeps one fixed per-node geometry across request.node_counts and
  /// returns the points in ascending node order with speedup/efficiency
  /// relative to the smallest count. Points share the eval cache with
  /// ask()/ask_many() — a curve overlapping an earlier sweep only simulates
  /// the new node counts. Throws std::invalid_argument (A-code diagnostics)
  /// on malformed requests.
  std::vector<ScalingPoint> scaling_curve(const ScalingRequest& request);

  /// Prices one fault scenario against the same config run healthy. Both
  /// sides go through the memoized lint gate regardless of options.lint —
  /// the faulted config's verdict includes the F-family scenario lint and
  /// the elastic crash/rejoin model check, so every survivability answer is
  /// lint-gated and model-checked by construction; Error findings throw
  /// std::invalid_argument with the rendered diagnostics. Both measurements
  /// land in (and are served from) the shared eval cache — the scenario is
  /// content-hashed into the config key, so a faulted run can never alias
  /// the healthy entry.
  SurvivabilityReply survivability(const SurvivabilityRequest& request);

  /// Grid enumeration, exposed for tests and the load generator. Validates
  /// the request (A001 empty candidate grid, A002 bad node count, A003 bad
  /// candidate value) and throws std::invalid_argument on Error findings.
  static std::vector<train::TrainConfig> plan_grid(const AdvisorRequest& request);

  const EvalCache& cache() const { return cache_; }
  EvalCache& cache() { return cache_; }
  int threads() const { return pool_.threads(); }
  std::uint64_t queries_answered() const;

 private:
  AdvisorServiceOptions options_;
  Experiment experiment_;
  EvalCache cache_;
  ref::ThreadPool pool_;
  /// ThreadPool::parallel_for admits one external caller at a time; cold
  /// sweeps from concurrent queries take turns on the pool (warm queries
  /// never touch it).
  std::mutex dispatch_mutex_;

  mutable std::mutex stats_mutex_;
  std::uint64_t queries_ = 0;
  double first_query_time_ = -1.0;  ///< seconds on a steady clock, -1 = none
};

/// Process-wide service instance backing core::advise(): one shared cache,
/// one shared pool, so every advise() caller (figures, benches, tests)
/// benefits from every other caller's sweeps.
AdvisorService& default_advisor_service();

}  // namespace dnnperf::core
