// Fault scenarios: user-facing "what breaks at step N" schedules (§6.10).
//
// A Scenario bundles the fault schedule a TimelineSim executes — rank
// slowdowns, crash/rejoin events — with the link degrades the topology
// applies, under a name. apply_scenario() stamps one onto a base
// TrainConfig (forcing per-rank simulation: membership is per-rank state),
// after which the ordinary pipeline takes over: the F-family lint and the
// elastic protocol model check gate the config inside lint_config, and the
// DES prices the run. load_scenario_file()/parse_scenario_text() read the
// JSON form `dnnperf_lint --scenario=<file>` and the tests use:
//
//   {"name": "crash-rejoin", "fault_budget": 2,
//    "slowdowns": [{"rank": 3, "factor": 1.5, "from_step": 0, "to_step": 20}],
//    "crashes":   [{"rank": 1, "step": 10}],
//    "rejoins":   [{"rank": 1, "step": 30}],
//    "link_degrades": [{"level": 0, "bandwidth_factor": 0.5,
//                       "latency_factor": 2.0}]}
//
// Every field except "name" is optional; absent lists are empty and the
// budget defaults to the FaultSchedule default.
#pragma once

#include <string>
#include <vector>

#include "hvd/timeline.hpp"
#include "train/trainer.hpp"
#include "util/diag.hpp"

namespace dnnperf::core {

struct Scenario {
  std::string name = "healthy";
  hvd::FaultSchedule faults;
  std::vector<train::LinkDegrade> link_degrades;

  bool empty() const { return faults.empty() && link_degrades.empty(); }
  bool operator==(const Scenario&) const = default;
};

/// The base config with the scenario's schedules stamped on. A non-empty
/// fault schedule forces per-rank simulation (crash/rejoin is per-rank
/// state); an empty scenario returns the base unchanged.
train::TrainConfig apply_scenario(const Scenario& scenario, const train::TrainConfig& base);

/// F-family lint of the scenario against the world the base config defines
/// (rank bounds, fault budget, topology levels) — analysis::lint_faults on
/// the applied config. Clean when the scenario is empty.
util::Diagnostics lint_scenario(const Scenario& scenario, const train::TrainConfig& base);

/// Parses the JSON form above. Throws std::runtime_error on malformed JSON
/// or mistyped fields, prefixing messages with `who`.
Scenario parse_scenario_text(const std::string& text, const std::string& who = "scenario");

/// Reads and parses a scenario file. Throws std::runtime_error when the
/// file cannot be read or fails to parse.
Scenario load_scenario_file(const std::string& path);

}  // namespace dnnperf::core
