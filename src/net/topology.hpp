// Rank placement and two-level communication topology.
//
// Ranks are laid out block-wise across nodes (rank r -> node r / ppn),
// matching mpirun's default mapping used by the paper. The topology answers
// locality questions for hierarchical collectives and supplies the right
// LinkParams for any rank pair.
#pragma once

#include <vector>

#include "net/link.hpp"

namespace dnnperf::net {

class Topology {
 public:
  /// `nodes` nodes with `ppn` ranks each, connected by `fabric`; ranks on a
  /// node exchange over shared memory.
  Topology(int nodes, int ppn, hw::FabricKind fabric);

  /// Same, with an explicit intra-node link (e.g. PCIe staging between GPUs
  /// on one node).
  Topology(int nodes, int ppn, hw::FabricKind fabric, LinkParams intra_node);

  int nodes() const { return nodes_; }
  int ppn() const { return ppn_; }
  int world_size() const { return nodes_ * ppn_; }

  int node_of(int rank) const;
  int local_rank(int rank) const;
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
  /// Node-leader (local rank 0) of the node hosting `rank`.
  int leader_of(int rank) const { return node_of(rank) * ppn_; }

  const LinkParams& intra_node() const { return intra_; }
  const LinkParams& inter_node() const { return inter_; }
  /// Link parameters between two (distinct) ranks.
  const LinkParams& link(int a, int b) const;

  /// Time for one point-to-point message of `bytes` between ranks a and b.
  double p2p_time(int a, int b, double bytes) const;

 private:
  int nodes_;
  int ppn_;
  LinkParams intra_;
  LinkParams inter_;
};

}  // namespace dnnperf::net
