// Rank placement and hierarchical communication topology.
//
// Ranks are laid out block-wise across nodes (rank r -> node r / ppn),
// matching mpirun's default mapping used by the paper, and block-wise across
// NUMA domains within a node when a NUMA level is configured. The topology
// answers locality questions for hierarchical collectives and supplies the
// right LinkParams for any rank pair.
#pragma once

#include <vector>

#include "net/link.hpp"

namespace dnnperf::net {

/// One stage of a staged hierarchical collective: `group_size` ranks
/// exchanging over `link`. Stages are listed innermost first.
struct HierarchyLevel {
  int group_size = 1;
  LinkParams link;
};

class Topology {
 public:
  /// `nodes` nodes with `ppn` ranks each, connected by `fabric`; ranks on a
  /// node exchange over shared memory.
  Topology(int nodes, int ppn, hw::FabricKind fabric);

  /// Same, with an explicit intra-node link (e.g. PCIe staging between GPUs
  /// on one node).
  Topology(int nodes, int ppn, hw::FabricKind fabric, LinkParams intra_node);

  /// Full three-level form: `numa_per_node` NUMA domains per node (must
  /// divide ppn, block rank mapping) with `intra_numa` between ranks of one
  /// domain and `intra_node` across domains of one node.
  Topology(int nodes, int ppn, hw::FabricKind fabric, LinkParams intra_node,
           int numa_per_node, LinkParams intra_numa);

  int nodes() const { return nodes_; }
  int ppn() const { return ppn_; }
  int world_size() const { return nodes_ * ppn_; }
  int numa_per_node() const { return numa_per_node_; }
  int ranks_per_numa() const { return ppn_ / numa_per_node_; }

  int node_of(int rank) const;
  int local_rank(int rank) const;
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
  /// Global NUMA-domain index of `rank` (node-major).
  int numa_of(int rank) const;
  bool same_numa(int a, int b) const { return numa_of(a) == numa_of(b); }
  /// Node-leader (local rank 0) of the node hosting `rank`.
  int leader_of(int rank) const { return node_of(rank) * ppn_; }

  const LinkParams& intra_numa() const { return intra_numa_; }
  const LinkParams& intra_node() const { return intra_; }
  const LinkParams& inter_node() const { return inter_; }
  /// Link parameters between two (distinct) ranks: intra-NUMA, intra-node,
  /// or inter-node, whichever is the tightest level containing both.
  const LinkParams& link(int a, int b) const;

  /// Time for one point-to-point message of `bytes` between ranks a and b.
  double p2p_time(int a, int b, double bytes) const;

  /// Intra-node stage widths for a staged hierarchical allreduce, innermost
  /// first ({ranks_per_numa over intra_numa, numa_per_node over intra_node});
  /// trivial width-1 stages are dropped. The inter-node level is the
  /// caller's top-level allreduce over `nodes()` groups.
  std::vector<HierarchyLevel> intra_hierarchy() const;

  /// Scenario link degradation: scales one level's parameters in place.
  /// Levels: 0 = inter-node, 1 = intra-node, 2 = intra-NUMA (requires a NUMA
  /// stage). `bandwidth_factor` multiplies bandwidth; `latency_factor`
  /// multiplies latency and per-message overhead. Throws
  /// std::invalid_argument on non-positive factors, an unknown level, or an
  /// intra-NUMA degrade without a NUMA stage — the F004 lint pass rejects
  /// such scenarios before a gated run gets here.
  void degrade(int level, double bandwidth_factor, double latency_factor);

 private:
  int nodes_;
  int ppn_;
  int numa_per_node_;
  LinkParams intra_;
  LinkParams intra_numa_;
  LinkParams inter_;
};

}  // namespace dnnperf::net
