#include "net/link.hpp"

#include <stdexcept>

namespace dnnperf::net {

double LinkParams::transfer_time(double bytes) const {
  if (bytes < 0) throw std::invalid_argument("transfer_time: negative bytes");
  return latency_s + per_msg_overhead_s + bytes / (bandwidth_gbps * 1e9);
}

void LinkParams::validate() const {
  if (latency_s < 0 || per_msg_overhead_s < 0 || bandwidth_gbps <= 0)
    throw std::invalid_argument("LinkParams: invalid parameter");
}

LinkParams fabric_params(hw::FabricKind kind) {
  LinkParams p;
  switch (kind) {
    case hw::FabricKind::InfiniBandEDR:
      // 100 Gbit/s EDR: ~12.0 GB/s sustained for large messages via MVAPICH2,
      // ~1.2 us small-message latency.
      p.latency_s = 1.2e-6;
      p.bandwidth_gbps = 12.0;
      p.per_msg_overhead_s = 4e-7;
      break;
    case hw::FabricKind::OmniPath:
      // 100 Gbit/s OPA: similar wire rate, slightly higher onload CPU cost.
      p.latency_s = 1.1e-6;
      p.bandwidth_gbps = 11.5;
      p.per_msg_overhead_s = 7e-7;
      break;
    case hw::FabricKind::Ethernet10G:
      p.latency_s = 12e-6;
      p.bandwidth_gbps = 1.1;
      p.per_msg_overhead_s = 2e-6;
      break;
  }
  p.validate();
  return p;
}

LinkParams shared_memory_params() {
  LinkParams p;
  p.latency_s = 2.5e-7;
  p.bandwidth_gbps = 6.0;  // per-pair CMA copy rate; DRAM contention-limited
  p.per_msg_overhead_s = 1e-7;
  p.validate();
  return p;
}

LinkParams numa_local_params() {
  LinkParams p;
  p.latency_s = 1.5e-7;
  p.bandwidth_gbps = 9.0;  // same-socket copy: no inter-socket hop
  p.per_msg_overhead_s = 1e-7;
  p.validate();
  return p;
}

LinkParams pcie3_x16_params() {
  LinkParams p;
  p.latency_s = 2e-6;
  p.bandwidth_gbps = 12.0;
  p.per_msg_overhead_s = 8e-7;
  p.validate();
  return p;
}

LinkParams nvlink1_params() {
  LinkParams p;
  p.latency_s = 1.5e-6;
  p.bandwidth_gbps = 18.0;
  p.per_msg_overhead_s = 5e-7;
  p.validate();
  return p;
}

}  // namespace dnnperf::net
