#include "net/topology.hpp"

#include <stdexcept>

namespace dnnperf::net {

Topology::Topology(int nodes, int ppn, hw::FabricKind fabric)
    : Topology(nodes, ppn, fabric, shared_memory_params()) {}

Topology::Topology(int nodes, int ppn, hw::FabricKind fabric, LinkParams intra_node)
    : nodes_(nodes), ppn_(ppn), intra_(intra_node), inter_(fabric_params(fabric)) {
  if (nodes <= 0 || ppn <= 0) throw std::invalid_argument("Topology: non-positive size");
  intra_.validate();
}

int Topology::node_of(int rank) const {
  if (rank < 0 || rank >= world_size()) throw std::out_of_range("Topology: rank out of range");
  return rank / ppn_;
}

int Topology::local_rank(int rank) const {
  if (rank < 0 || rank >= world_size()) throw std::out_of_range("Topology: rank out of range");
  return rank % ppn_;
}

const LinkParams& Topology::link(int a, int b) const {
  return same_node(a, b) ? intra_ : inter_;
}

double Topology::p2p_time(int a, int b, double bytes) const {
  if (a == b) return 0.0;
  return link(a, b).transfer_time(bytes);
}

}  // namespace dnnperf::net
