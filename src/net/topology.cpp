#include "net/topology.hpp"

#include <stdexcept>

namespace dnnperf::net {

Topology::Topology(int nodes, int ppn, hw::FabricKind fabric)
    : Topology(nodes, ppn, fabric, shared_memory_params()) {}

Topology::Topology(int nodes, int ppn, hw::FabricKind fabric, LinkParams intra_node)
    : Topology(nodes, ppn, fabric, intra_node, 1, intra_node) {}

Topology::Topology(int nodes, int ppn, hw::FabricKind fabric, LinkParams intra_node,
                   int numa_per_node, LinkParams intra_numa)
    : nodes_(nodes),
      ppn_(ppn),
      numa_per_node_(numa_per_node),
      intra_(intra_node),
      intra_numa_(intra_numa),
      inter_(fabric_params(fabric)) {
  if (nodes <= 0 || ppn <= 0) throw std::invalid_argument("Topology: non-positive size");
  if (numa_per_node <= 0 || ppn % numa_per_node != 0)
    throw std::invalid_argument("Topology: numa_per_node must divide ppn");
  intra_.validate();
  intra_numa_.validate();
}

int Topology::node_of(int rank) const {
  if (rank < 0 || rank >= world_size()) throw std::out_of_range("Topology: rank out of range");
  return rank / ppn_;
}

int Topology::local_rank(int rank) const {
  if (rank < 0 || rank >= world_size()) throw std::out_of_range("Topology: rank out of range");
  return rank % ppn_;
}

int Topology::numa_of(int rank) const {
  return node_of(rank) * numa_per_node_ + local_rank(rank) / ranks_per_numa();
}

const LinkParams& Topology::link(int a, int b) const {
  if (!same_node(a, b)) return inter_;
  return same_numa(a, b) ? intra_numa_ : intra_;
}

double Topology::p2p_time(int a, int b, double bytes) const {
  if (a == b) return 0.0;
  return link(a, b).transfer_time(bytes);
}

void Topology::degrade(int level, double bandwidth_factor, double latency_factor) {
  if (bandwidth_factor <= 0.0 || latency_factor <= 0.0)
    throw std::invalid_argument("Topology::degrade: non-positive factor");
  const auto scale = [&](LinkParams& p) {
    p.bandwidth_gbps *= bandwidth_factor;
    p.latency_s *= latency_factor;
    p.per_msg_overhead_s *= latency_factor;
    p.validate();
  };
  switch (level) {
    case 0: scale(inter_); break;
    case 1:
      scale(intra_);
      // Without a NUMA stage intra_numa_ is a copy of the intra-node link
      // (and the one link() actually returns for same-node pairs), so the
      // node-level degrade must cover it too.
      if (numa_per_node_ == 1) scale(intra_numa_);
      break;
    case 2:
      if (numa_per_node_ == 1)
        throw std::invalid_argument("Topology::degrade: no intra-NUMA level in this topology");
      scale(intra_numa_);
      break;
    default: throw std::invalid_argument("Topology::degrade: unknown level");
  }
}

std::vector<HierarchyLevel> Topology::intra_hierarchy() const {
  std::vector<HierarchyLevel> levels;
  if (ranks_per_numa() > 1) levels.push_back({ranks_per_numa(), intra_numa_});
  if (numa_per_node_ > 1) levels.push_back({numa_per_node_, intra_});
  return levels;
}

}  // namespace dnnperf::net
