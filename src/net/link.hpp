// Link-level cost model (alpha-beta with per-message CPU overhead, i.e. a
// simplified LogGP): time(bytes) = alpha + overhead + bytes / beta.
//
// Parameters for the fabrics in the paper's clusters (IB EDR on RI2 /
// Pitzer / AMD-Cluster, Omni-Path on Stampede2) and the intra-node levels
// (shared memory between ranks on one node, PCIe/NVLink for GPUs).
#pragma once

#include "hw/node.hpp"

namespace dnnperf::net {

struct LinkParams {
  double latency_s = 1e-6;       ///< one-way wire+switch latency (alpha)
  double bandwidth_gbps = 12.5;  ///< sustained point-to-point bandwidth (beta), GB/s decimal
  double per_msg_overhead_s = 5e-7;  ///< sender+receiver CPU/NIC overhead per message

  /// Time to move `bytes` across this link once.
  double transfer_time(double bytes) const;
  void validate() const;
};

/// Inter-node fabric parameters.
LinkParams fabric_params(hw::FabricKind kind);

/// Shared-memory "link" between two ranks on the same node (CMA copy).
LinkParams shared_memory_params();

/// Shared-memory link between two ranks pinned to the same NUMA domain:
/// no QPI/UPI hop, so lower latency and a higher copy rate than the
/// cross-socket CMA path above.
LinkParams numa_local_params();

/// Host-device / device-device links for GPU nodes.
LinkParams pcie3_x16_params();
LinkParams nvlink1_params();

}  // namespace dnnperf::net
