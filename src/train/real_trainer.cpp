#include "train/real_trainer.hpp"

#include <chrono>
#include <stdexcept>
#include <string>

#include "hvd/real_engine.hpp"
#include "mpi/collectives.hpp"
#include "mpi/world.hpp"
#include "ref/kernels.hpp"
#include "ref/network.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace dnnperf::train {

namespace {

/// Seconds elapsed on the steady clock since `t0`.
double since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Per-step phase timers + throughput, published alongside PhaseTimes so the
/// printed tables and the exported snapshots come from the same samples.
struct TrainMetrics {
  util::metrics::Histogram input = util::metrics::histogram(
      "train_step_input_seconds", "Batch synthesis + shard extraction per step, seconds");
  util::metrics::Histogram forward = util::metrics::histogram(
      "train_step_forward_seconds", "Forward pass + loss per step, seconds");
  util::metrics::Histogram backward = util::metrics::histogram(
      "train_step_backward_seconds", "Backpropagation per step, seconds");
  util::metrics::Histogram exchange = util::metrics::histogram(
      "train_step_exchange_seconds", "Exposed gradient exchange per step, seconds");
  util::metrics::Histogram optimizer = util::metrics::histogram(
      "train_step_optimizer_seconds", "SGD parameter update per step, seconds");
  util::metrics::Counter images =
      util::metrics::counter("train_images_total", "Images processed (this rank)");
  util::metrics::Gauge rate = util::metrics::gauge(
      "train_images_per_sec", "Global images/sec of the most recent training run");
};

const TrainMetrics& train_metrics() {
  static const TrainMetrics m;
  return m;
}

void check(const RealTrainConfig& cfg) {
  if (cfg.ranks <= 0 || cfg.batch_per_rank <= 0 || cfg.steps <= 0)
    throw std::invalid_argument("RealTrainConfig: non-positive size");
  if (cfg.threads_per_rank <= 0)
    throw std::invalid_argument("RealTrainConfig: threads_per_rank <= 0");
  if (cfg.ranks_per_node < 0 || (cfg.ranks_per_node > 0 && cfg.ranks % cfg.ranks_per_node != 0))
    throw std::invalid_argument("RealTrainConfig: ranks_per_node must divide ranks");
  cfg.policy.validate();
}

/// Copies one rank's shard [rank*bpr, (rank+1)*bpr) out of the global batch.
ref::SyntheticBatch shard_of(const ref::SyntheticBatch& global, int rank, int bpr) {
  const int c = global.images.dim(1);
  const int h = global.images.dim(2);
  const int w = global.images.dim(3);
  ref::SyntheticBatch shard{ref::Tensor({bpr, c, h, w}), {}};
  const std::size_t per_image = static_cast<std::size_t>(c) * h * w;
  const std::size_t offset = static_cast<std::size_t>(rank) * bpr * per_image;
  for (std::size_t i = 0; i < shard.images.size(); ++i)
    shard.images[i] = global.images[offset + i];
  shard.labels.assign(global.labels.begin() + static_cast<std::ptrdiff_t>(rank) * bpr,
                      global.labels.begin() + static_cast<std::ptrdiff_t>(rank + 1) * bpr);
  return shard;
}

std::vector<float> flatten_params(ref::Network& net) {
  std::vector<float> out;
  for (const auto& p : net.params())
    out.insert(out.end(), p.value->flat().begin(), p.value->flat().end());
  return out;
}

}  // namespace

RealTrainResult run_real_training(const RealTrainConfig& cfg) {
  check(cfg);
  RealTrainResult result;
  const int global_batch = cfg.ranks * cfg.batch_per_rank;
  const ref::ScopedGemmPath kernel_path(cfg.gemm_path);

  mpi::World::run(cfg.ranks, [&](mpi::Comm& comm) {
    util::trace::set_thread_name("rank " + std::to_string(comm.rank()));
    ref::ThreadPool pool(cfg.threads_per_rank);
    util::Rng init_rng(cfg.seed);  // identical initialization on every rank
    ref::Network net =
        ref::make_tiny_cnn(cfg.channels, cfg.image_size, cfg.classes, pool, init_rng, cfg.batch_norm);
    auto params = net.params();

    hvd::RealEngine engine(comm, cfg.policy, cfg.ranks_per_node);
    std::vector<int> tensor_ids;
    tensor_ids.reserve(params.size());
    for (const auto& p : params)
      tensor_ids.push_back(engine.register_tensor(p.name, p.grad->size()));

    ref::SgdOptimizer sgd(cfg.learning_rate);
    util::Rng data_rng(cfg.seed + 1);  // same global data stream on every rank
    std::vector<float> losses;
    PhaseTimes phases;
    const TrainMetrics& tm = train_metrics();
    const auto loop_start = std::chrono::steady_clock::now();

    for (int step = 0; step < cfg.steps; ++step) {
      const auto step_start = std::chrono::steady_clock::now();
      DNNPERF_TRACE_SPAN_VAR(step_span, "train", "step");
      if (step_span.active())
        step_span.set_args(std::move(util::trace::Args().add("step", step)).str());
      auto t0 = std::chrono::steady_clock::now();
      ref::SyntheticBatch shard;
      {
        DNNPERF_TRACE_SPAN("train", "input");
        const auto global = ref::synthetic_batch(global_batch, cfg.channels, cfg.image_size,
                                                 cfg.classes, data_rng);
        shard = shard_of(global, comm.rank(), cfg.batch_per_rank);
      }
      phases.input.add(since(t0));
      tm.input.observe(since(t0));

      // The train_step of ref::Network, phase by phase so each can be timed.
      t0 = std::chrono::steady_clock::now();
      float loss;
      ref::Tensor dlogits;
      {
        DNNPERF_TRACE_SPAN("train", "forward");
        const ref::Tensor logits = net.forward(shard.images);
        loss = ref::softmax_xent(logits, shard.labels, dlogits);
      }
      phases.forward.add(since(t0));
      tm.forward.observe(since(t0));

      t0 = std::chrono::steady_clock::now();
      {
        DNNPERF_TRACE_SPAN("train", "backward");
        net.backward(dlogits);
      }
      phases.backward.add(since(t0));
      tm.backward.observe(since(t0));

      // Hand each gradient to the engine as backward produced it, then run
      // engine cycles until all are averaged across ranks.
      t0 = std::chrono::steady_clock::now();
      {
        DNNPERF_TRACE_SPAN("train", "exchange");
        for (std::size_t i = 0; i < params.size(); ++i)
          engine.submit(tensor_ids[i], params[i].grad->flat());
        engine.synchronize();
      }
      phases.exchange.add(since(t0));
      tm.exchange.observe(since(t0));

      t0 = std::chrono::steady_clock::now();
      {
        DNNPERF_TRACE_SPAN("train", "optimizer");
        sgd.step(params);
      }
      phases.optimizer.add(since(t0));
      tm.optimizer.observe(since(t0));
      tm.images.inc(static_cast<std::uint64_t>(cfg.batch_per_rank));

      mpi::allreduce(comm, std::span<float>(&loss, 1), mpi::ReduceOp::Sum);
      losses.push_back(loss / static_cast<float>(cfg.ranks));
      phases.step.add(since(step_start));
    }

    if (comm.rank() == 0) {
      result.losses = std::move(losses);
      result.comm = engine.stats();
      result.phases = phases;
      result.parameters = net.num_parameters();
      result.final_params = flatten_params(net);
      result.wall_seconds = since(loop_start);
      result.images_per_sec =
          result.wall_seconds > 0.0
              ? static_cast<double>(global_batch) * cfg.steps / result.wall_seconds
              : 0.0;
      tm.rate.set(result.images_per_sec);
    }
  });
  return result;
}

RealTrainResult run_real_training_single(const RealTrainConfig& cfg) {
  check(cfg);
  RealTrainResult result;
  const int global_batch = cfg.ranks * cfg.batch_per_rank;
  const ref::ScopedGemmPath kernel_path(cfg.gemm_path);

  ref::ThreadPool pool(cfg.threads_per_rank);
  util::Rng init_rng(cfg.seed);
  ref::Network net = ref::make_tiny_cnn(cfg.channels, cfg.image_size, cfg.classes, pool, init_rng, cfg.batch_norm);
  ref::SgdOptimizer sgd(cfg.learning_rate);
  util::Rng data_rng(cfg.seed + 1);
  const TrainMetrics& tm = train_metrics();
  const auto loop_start = std::chrono::steady_clock::now();

  for (int step = 0; step < cfg.steps; ++step) {
    const auto step_start = std::chrono::steady_clock::now();
    DNNPERF_TRACE_SPAN_VAR(step_span, "train", "step");
    if (step_span.active())
      step_span.set_args(std::move(util::trace::Args().add("step", step)).str());
    auto t0 = std::chrono::steady_clock::now();
    ref::SyntheticBatch batch;
    {
      DNNPERF_TRACE_SPAN("train", "input");
      batch =
          ref::synthetic_batch(global_batch, cfg.channels, cfg.image_size, cfg.classes, data_rng);
    }
    result.phases.input.add(since(t0));
    tm.input.observe(since(t0));

    t0 = std::chrono::steady_clock::now();
    float loss;
    ref::Tensor dlogits;
    {
      DNNPERF_TRACE_SPAN("train", "forward");
      const ref::Tensor logits = net.forward(batch.images);
      loss = ref::softmax_xent(logits, batch.labels, dlogits);
    }
    result.phases.forward.add(since(t0));
    tm.forward.observe(since(t0));

    t0 = std::chrono::steady_clock::now();
    {
      DNNPERF_TRACE_SPAN("train", "backward");
      net.backward(dlogits);
    }
    result.phases.backward.add(since(t0));
    tm.backward.observe(since(t0));

    t0 = std::chrono::steady_clock::now();
    {
      DNNPERF_TRACE_SPAN("train", "optimizer");
      sgd.step(net.params());
    }
    result.phases.optimizer.add(since(t0));
    tm.optimizer.observe(since(t0));
    tm.images.inc(static_cast<std::uint64_t>(global_batch));

    result.losses.push_back(loss);
    result.phases.step.add(since(step_start));
  }
  result.parameters = net.num_parameters();
  result.final_params = flatten_params(net);
  result.wall_seconds = since(loop_start);
  result.images_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(global_batch) * cfg.steps / result.wall_seconds
          : 0.0;
  tm.rate.set(result.images_per_sec);
  return result;
}

}  // namespace dnnperf::train
