// RealTrainer: actually trains a small CNN with synchronous data parallelism
// — rank threads (minimpi), a Horovod-style fusion engine (hvd::RealEngine),
// and real SGD on refdnn tensors.
//
// This validates the semantics every simulated experiment assumes: sharded
// data + gradient averaging is equivalent to single-process training on the
// combined batch, independent of rank count and fusion policy.
#pragma once

#include <cstdint>
#include <vector>

#include "hvd/policy.hpp"
#include "ref/gemm.hpp"
#include "util/stats.hpp"

namespace dnnperf::train {

struct RealTrainConfig {
  int ranks = 2;            ///< data-parallel workers (threads)
  int batch_per_rank = 4;
  int steps = 3;
  int image_size = 8;
  int channels = 3;
  int classes = 4;
  float learning_rate = 0.05f;
  bool batch_norm = false;  ///< BN breaks exact SP==MP equivalence (per-shard stats)
  std::uint64_t seed = 42;
  int threads_per_rank = 1;  ///< intra-op threads in each rank's pool
  /// > 0: hierarchical gradient exchange with this many ranks per "node".
  int ranks_per_node = 0;
  /// Kernel implementation the refdnn layers run on every rank: the packed
  /// register-tiled GEMM (default) or the naive oracle loops.
  ref::GemmPath gemm_path = ref::GemmPath::packed;
  hvd::FusionPolicy policy;
};

/// Wall-clock per-step phase breakdown (seconds), one sample per step. This
/// is the executable analogue of the fwd/bwd/comm/opt decomposition the
/// timeline simulator takes as input: `exchange` is the time the framework
/// thread is blocked on gradient exchange, i.e. the *exposed* communication.
struct PhaseTimes {
  util::RunStats input;      ///< batch synthesis + shard extraction
  util::RunStats forward;    ///< forward pass + loss/gradient at the head
  util::RunStats backward;   ///< backpropagation through all layers
  util::RunStats exchange;   ///< submit + engine synchronize (allreduces)
  util::RunStats optimizer;  ///< SGD parameter update
  /// Whole-step wall time, sampled around the same loop body the phase
  /// timers partition — input+forward+backward+exchange+optimizer must
  /// reconcile with this within a small tolerance (the profiler's T001
  /// check enforces the same invariant on recorded traces).
  util::RunStats step;
};

struct RealTrainResult {
  std::vector<float> losses;  ///< global mean loss per step
  hvd::CommStats comm;        ///< rank-0 engine counters
  PhaseTimes phases;          ///< rank-0 per-step phase timings (seconds)
  std::size_t parameters = 0;
  std::vector<float> final_params;  ///< rank-0 flattened parameters after training
  double wall_seconds = 0.0;        ///< training-loop wall time (rank 0)
  double images_per_sec = 0.0;      ///< global images processed / wall_seconds
};

/// Multi-process (MP) training: `ranks` workers, per-rank batch, Horovod-style
/// gradient averaging each step.
RealTrainResult run_real_training(const RealTrainConfig& config);

/// Single-process (SP) reference: one worker on the combined batch
/// (ranks * batch_per_rank). Produces the same parameter trajectory as MP.
RealTrainResult run_real_training_single(const RealTrainConfig& config);

}  // namespace dnnperf::train
