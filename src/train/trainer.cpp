#include "train/trainer.hpp"

#include <algorithm>
#include <stdexcept>

#include "dnn/report.hpp"
#include "exec/cpu_model.hpp"
#include "opt/passes.hpp"
#include "util/diag.hpp"
#include "exec/gpu_model.hpp"
#include "exec/placement.hpp"
#include "mpi/cost.hpp"
#include "net/topology.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"

namespace dnnperf::train {

ThreadConfig resolve_thread_config(const TrainConfig& cfg) {
  const auto& cpu = cfg.cluster.node.cpu;
  const int cores_per_rank = std::max(1, cpu.total_cores() / std::max(1, cfg.ppn));
  int intra = cfg.intra_threads;
  int inter = cfg.inter_threads;
  if (intra == 0) {
    if (cfg.framework == exec::Framework::PyTorch) {
      intra = cores_per_rank;  // PyTorch's default pool spans its cores
    } else if (cfg.use_horovod && cfg.nodes * cfg.ppn > 1) {
      intra = std::max(1, cores_per_rank - 1);  // leave a core for Horovod
    } else {
      intra = cores_per_rank;
    }
  }
  if (inter == 0) {
    if (cfg.framework == exec::Framework::PyTorch)
      inter = 1;  // eager execution schedules one op at a time
    else
      inter = cpu.threads_per_core > 1 ? 2 : 1;  // the paper's tuned value
  }
  return {intra, inter};
}

namespace {

void validate(const TrainConfig& cfg) {
  cfg.cluster.validate();
  cfg.policy.validate();
  if (cfg.nodes <= 0 || cfg.ppn <= 0) throw std::invalid_argument("TrainConfig: bad nodes/ppn");
  if (cfg.nodes > cfg.cluster.max_nodes)
    throw std::invalid_argument("TrainConfig: nodes exceeds cluster size");
  if (cfg.batch_per_rank <= 0) throw std::invalid_argument("TrainConfig: bad batch");
  if (cfg.device == DeviceKind::Gpu) {
    if (!cfg.cluster.node.has_gpu())
      throw std::invalid_argument("TrainConfig: GPU run on a CPU-only cluster");
    if (cfg.ppn > cfg.cluster.node.gpu->devices_per_node)
      throw std::invalid_argument("TrainConfig: ppn exceeds GPUs per node");
  }
  if (cfg.jitter_cv < 0.0) throw std::invalid_argument("TrainConfig: negative jitter");
  if (cfg.opt_level < 0 || cfg.opt_level > 2)
    throw std::invalid_argument("TrainConfig: opt_level outside [0, 2]");
  if (!cfg.faults.empty() && (!cfg.use_horovod || cfg.nodes * cfg.ppn <= 1))
    throw std::invalid_argument("TrainConfig: fault schedule requires a multi-rank Horovod run");
  for (const auto& d : cfg.link_degrades)
    if (d.level < 0 || d.level > 2 || d.bandwidth_factor <= 0.0 || d.latency_factor <= 0.0)
      throw std::invalid_argument("TrainConfig: malformed link degrade");
}

/// Builds the graph the run executes: the model as defined, rewritten by
/// the enabled optimizer passes. Every stage is verified by the equivalence
/// checker; an unsound rewrite can never reach a measurement.
dnn::Graph build_executed_graph(const TrainConfig& cfg) {
  dnn::Graph graph = dnn::build_model(cfg.model);
  if (cfg.opt_level <= 0) return graph;
  opt::OptOptions oo;
  oo.level = cfg.opt_level;
  oo.pass_mask = cfg.opt_pass_mask;
  opt::OptResult result = opt::optimize(graph, oo);
  if (!result.ok())
    throw std::runtime_error("graph optimizer produced an unsound rewrite:\n" +
                             util::render_text(result.diags));
  return std::move(result.graph);
}

}  // namespace

TrainResult run_training(const TrainConfig& cfg) {
  validate(cfg);
  const dnn::Graph graph = build_executed_graph(cfg);
  if (cfg.validate_memory) {
    const double footprint = dnn::training_memory(graph, cfg.batch_per_rank).total();
    const double budget = cfg.device == DeviceKind::Gpu
                              ? cfg.cluster.node.gpu->memory_gib * 1024.0 * 1024.0 * 1024.0
                              : cfg.cluster.node.memory_gib * 1024.0 * 1024.0 * 1024.0 / cfg.ppn;
    if (footprint > budget) {
      const int max_bs = dnn::max_batch_for_memory(graph, budget);
      throw std::invalid_argument(
          "TrainConfig: batch " + std::to_string(cfg.batch_per_rank) +
          " does not fit in memory (max feasible per-rank batch: " + std::to_string(max_bs) +
          ")");
    }
  }
  const int world = cfg.nodes * cfg.ppn;
  const bool horovod_active = cfg.use_horovod && world > 1;
  if (world > 1 && !cfg.use_horovod)
    throw std::invalid_argument("TrainConfig: multi-rank run requires Horovod");

  // A fault scenario needs every rank simulated explicitly — membership is
  // per-rank state — so it forces per-rank mode.
  const bool per_rank = (cfg.per_rank_sim || !cfg.faults.empty()) && horovod_active;

  hvd::TimelineInput tl;
  tl.policy = cfg.policy;
  tl.iterations = cfg.iterations;
  // Per-rank mode draws jitter explicitly, so the closed-form expected-max
  // straggler factor must not double-count it.
  tl.straggler_factor =
      world > 1 && !per_rank
          ? util::expected_max_normal(1.0, cfg.jitter_cv, static_cast<std::size_t>(world))
          : 1.0;
  if (per_rank) {
    tl.sim_ranks = world;
    tl.per_rank_jitter_cv = cfg.jitter_cv;
    tl.faults = cfg.faults;
  }
  tl.hierarchical_allreduce = horovod_active && cfg.hierarchy != CommHierarchy::Flat;

  TrainResult result;
  result.world_size = world;
  result.effective_batch = world * cfg.batch_per_rank;

  std::optional<mpi::CollectiveCostModel> cost;

  if (cfg.device == DeviceKind::Cpu) {
    const auto threads = resolve_thread_config(cfg);
    result.resolved_intra = threads.intra;
    result.resolved_inter = threads.inter;

    exec::ExecConfig ec;
    ec.framework = cfg.framework;
    ec.intra_threads = threads.intra;
    ec.inter_threads = threads.inter;
    ec.batch = cfg.batch_per_rank;
    ec.horovod_thread = horovod_active;

    const exec::Placement placement =
        exec::place_rank(cfg.cluster.node.cpu, cfg.ppn, threads.intra);
    const exec::CpuExecModel model(cfg.cluster.node.cpu);

    const auto fwd = model.forward(graph, ec, placement);
    const auto bwd = model.backward(graph, ec, placement);
    tl.fwd_time = fwd.duration;
    tl.bwd_time = bwd.duration;
    tl.grad_events = bwd.grad_events;
    tl.optimizer_time = model.optimizer_time(graph, placement);
    tl.iteration_fixed = model.iteration_fixed_overhead(cfg.framework);
    tl.comm_thread_shares_core = horovod_active && threads.intra >= placement.cores;
    tl.cores_per_rank = placement.cores;

    if (horovod_active) {
      // ThreeLevel adds the NUMA stage when the CPU exposes one and ranks
      // split evenly across domains; otherwise it degrades to TwoLevel.
      const int numa = cfg.cluster.node.cpu.numa_domains();
      const int numa_per_node =
          cfg.hierarchy == CommHierarchy::ThreeLevel && numa > 1 && cfg.ppn % numa == 0
              ? numa
              : 1;
      net::Topology topo(
          cfg.nodes, cfg.ppn, cfg.cluster.fabric, net::shared_memory_params(), numa_per_node,
          numa_per_node > 1 ? net::numa_local_params() : net::shared_memory_params());
      for (const auto& d : cfg.link_degrades)
        topo.degrade(d.level, d.bandwidth_factor, d.latency_factor);
      cost.emplace(std::move(topo));
    }
  } else {
    result.resolved_intra = 1;
    result.resolved_inter = 1;
    const exec::GpuExecModel model(*cfg.cluster.node.gpu);
    const auto fwd = model.forward(graph, cfg.framework, cfg.batch_per_rank);
    const auto bwd = model.backward(graph, cfg.framework, cfg.batch_per_rank);
    tl.fwd_time = fwd.duration;
    tl.bwd_time = bwd.duration;
    tl.grad_events = bwd.grad_events;
    tl.optimizer_time = model.optimizer_time(graph);
    tl.iteration_fixed = model.iteration_fixed_overhead(cfg.framework);
    tl.comm_thread_shares_core = false;  // host cores are idle during GPU runs

    if (horovod_active) {
      net::Topology topo(cfg.nodes, cfg.ppn, cfg.cluster.fabric, net::pcie3_x16_params());
      for (const auto& d : cfg.link_degrades)
        topo.degrade(d.level, d.bandwidth_factor, d.latency_factor);
      cost.emplace(std::move(topo));
    }
  }

  tl.cost = cost ? &*cost : nullptr;

  const hvd::TimelineResult sim = hvd::simulate_training(tl);
  result.per_iteration_s = sim.per_iteration;
  // Crashed ranks train no images: throughput counts only alive ranks'
  // batches. On a healthy run every step contributes the full world and the
  // fraction is exactly 1.
  if (per_rank && !sim.iteration_alive_ranks.empty()) {
    double alive_sum = 0.0;
    for (int alive : sim.iteration_alive_ranks) alive_sum += alive;
    result.alive_rank_fraction =
        alive_sum / (static_cast<double>(sim.iteration_alive_ranks.size()) * world);
  }
  result.images_per_sec = static_cast<double>(result.effective_batch) *
                          result.alive_rank_fraction / sim.per_iteration;
  result.iteration_seconds = sim.iteration_seconds;
  result.membership_changes = sim.membership_changes;
  result.fwd_s = tl.fwd_time;
  result.bwd_s = tl.bwd_time;
  result.optimizer_s = tl.optimizer_time;
  result.comm = sim.stats;
  result.comm_exposed_fraction = sim.comm_exposed_fraction;
  result.comm_busy_per_iteration_s = sim.comm_busy_total / cfg.iterations;
  result.straggler_stretch = tl.straggler_factor;
  result.sim_ranks = tl.sim_ranks;
  result.sim_events = sim.events_processed;
  result.sim_pool_slots = sim.pool_slots;

  // Modeled-run outcome gauges (virtual time, not wall time): each measured
  // config's values land in its Experiment scorecard via snapshot deltas.
  static const auto rate_gauge = util::metrics::gauge(
      "sim_images_per_sec", "Modeled throughput of the most recent simulated config");
  static const auto iter_gauge = util::metrics::gauge(
      "sim_iteration_seconds", "Modeled per-iteration time of the most recent simulated config");
  static const auto exposed_gauge = util::metrics::gauge(
      "sim_comm_exposed_fraction", "Modeled fraction of run time exposed to communication");
  rate_gauge.set(result.images_per_sec);
  iter_gauge.set(result.per_iteration_s);
  exposed_gauge.set(result.comm_exposed_fraction);
  return result;
}

double speedup_vs_single_node(const TrainConfig& cfg) {
  TrainConfig base = cfg;
  base.nodes = 1;
  const double single = run_training(base).images_per_sec;
  const double multi = run_training(cfg).images_per_sec;
  return multi / single;
}

}  // namespace dnnperf::train
