// Trainer: composes the DNN graph, execution model, Horovod engine timeline,
// and collective cost model into one simulated training run — the equivalent
// of launching tf_cnn_benchmarks / pytorch_synthetic_benchmark under mpirun
// on one of the paper's clusters.
//
// Configurations mirror the paper's experiment types:
//   SP  — nodes=1, ppn=1, use_horovod=false, intra = all cores (or a sweep);
//   MP  — nodes=1, ppn>1 via Horovod;
//   MN  — nodes>1.
#pragma once

#include <cstdint>
#include <vector>

#include "dnn/models.hpp"
#include "exec/config.hpp"
#include "hvd/policy.hpp"
#include "hvd/timeline.hpp"
#include "hw/node.hpp"

namespace dnnperf::train {

enum class DeviceKind { Cpu, Gpu };

/// Data-allreduce hierarchy priced by the cost model (the --hierarchy knob).
enum class CommHierarchy {
  Flat,        ///< legacy MPI Auto policy (min of leader-hierarchical and RD)
  TwoLevel,    ///< staged intra-node ring/tree + inter-node allreduce
  ThreeLevel,  ///< staged intra-NUMA -> intra-node -> inter-node
};

/// Scenario link degradation: scales one topology level's link parameters
/// before the cost model is built (congestion, a flaky cable, a saturated
/// switch). Levels follow net::Topology: 0 = inter-node, 1 = intra-node,
/// 2 = intra-NUMA (F004 lints levels absent from the run's topology).
struct LinkDegrade {
  int level = 0;
  double bandwidth_factor = 1.0;  ///< multiplies link bandwidth (< 1 degrades)
  double latency_factor = 1.0;    ///< multiplies latency + per-message overhead

  bool operator==(const LinkDegrade&) const = default;
};

struct TrainConfig {
  hw::ClusterModel cluster;
  dnn::ModelId model = dnn::ModelId::ResNet50;
  exec::Framework framework = exec::Framework::TensorFlow;
  DeviceKind device = DeviceKind::Cpu;

  int nodes = 1;
  /// Processes per node (CPU) or GPUs used per node (GPU).
  int ppn = 1;
  /// 0 = auto: cores/ppn minus one when a Horovod thread runs (the paper's
  /// intra-op rule), all cores for plain SP; PyTorch uses cores/ppn.
  int intra_threads = 0;
  /// 0 = auto: 2 on SMT-enabled CPUs (the paper's tuned value), else 1;
  /// PyTorch (eager) always runs 1.
  int inter_threads = 0;
  int batch_per_rank = 64;

  hvd::FusionPolicy policy;
  /// False = plain single-process run without the Horovod engine.
  bool use_horovod = true;
  int iterations = 3;
  /// Per-rank compute jitter (coefficient of variation) feeding the
  /// expected-max straggler model.
  double jitter_cv = 0.02;
  /// When true, reject configurations whose conservative training footprint
  /// (dnn::training_memory) exceeds device/node memory. Off by default: the
  /// footprint model assumes no buffer reuse, which real frameworks do.
  bool validate_memory = false;
  /// Simulate every rank explicitly (per-rank arenas, per-rank jitter drawn
  /// from jitter_cv) instead of folding the world into one representative
  /// rank with an expected-max straggler factor. Event count grows as
  /// ranks x gradient tensors per iteration; the pooled event engine keeps
  /// 4k-rank steps in seconds.
  bool per_rank_sim = false;
  /// Collective hierarchy for pricing data allreduces.
  CommHierarchy hierarchy = CommHierarchy::Flat;
  /// Graph-optimizer level applied before execution (src/opt): 0 = run the
  /// model graph as built, 1 = elimination passes (dead code, identities),
  /// 2 = elimination + conv/BN/activation fusion. Every enabled pass is
  /// verified by the equivalence checker; an unsound rewrite throws instead
  /// of reaching a measurement.
  int opt_level = 0;
  /// Bitmask of opt::PassId restricting which passes of the level run
  /// (default: all). Hashed into the eval-cache key alongside opt_level.
  std::uint32_t opt_pass_mask = 0xffffffffu;
  /// Fault scenario driving the run (crash/rejoin/slowdown at step
  /// granularity). Non-empty forces per-rank simulation and requires a
  /// multi-rank Horovod run; the F-family lint passes validate it and the
  /// elastic model checker verifies the crash/rejoin protocol path before a
  /// gated measurement runs. Hashed into the eval-cache key, so scenario
  /// measurements never alias healthy ones.
  hvd::FaultSchedule faults;
  /// Scenario link degradations applied to the topology the cost model is
  /// built from. Also hashed into the eval-cache key.
  std::vector<LinkDegrade> link_degrades;
};

struct TrainResult {
  double images_per_sec = 0.0;  ///< aggregate across all ranks
  double per_iteration_s = 0.0;
  double fwd_s = 0.0;           ///< per-rank forward compute
  double bwd_s = 0.0;
  double optimizer_s = 0.0;
  double comm_exposed_fraction = 0.0;
  /// Engine busy seconds per iteration (negotiation + data allreduces);
  /// together with the exposed fraction this yields the compute-comm overlap
  /// the profiler's verdict classification uses.
  double comm_busy_per_iteration_s = 0.0;
  /// Expected-max compute inflation across ranks applied by the simulation
  /// (1.0 in per-rank mode, where jitter is drawn explicitly).
  double straggler_stretch = 1.0;
  hvd::CommStats comm;
  int world_size = 1;
  int effective_batch = 0;      ///< global batch = world * batch_per_rank
  int resolved_intra = 0;
  int resolved_inter = 0;
  /// Ranks simulated explicitly (1 in representative mode) and the DES
  /// calendar totals behind this run — the scale-sweep bench gauges.
  int sim_ranks = 1;
  std::uint64_t sim_events = 0;
  std::uint64_t sim_pool_slots = 0;
  /// Per-iteration wall times of the run (virtual seconds, step order) —
  /// what crash-recovery asserts and survivability replies read.
  std::vector<double> iteration_seconds;
  /// Mean fraction of the world contributing per step (1.0 on a healthy
  /// run); images_per_sec already accounts for it — crashed ranks train no
  /// images.
  double alive_rank_fraction = 1.0;
  /// Elastic membership changes the run paid a ring re-form for.
  std::uint64_t membership_changes = 0;
};

/// The intra-op/inter-op thread counts a config resolves to (0 = auto
/// replaced by the paper's rules). Used by run_training and by the
/// schedule lint passes, so both see identical placement.
struct ThreadConfig {
  int intra = 1;
  int inter = 1;
};
ThreadConfig resolve_thread_config(const TrainConfig& config);

/// Runs one simulated training experiment. Deterministic.
TrainResult run_training(const TrainConfig& config);

/// Throughput ratio vs the same config at nodes=1 (the paper's speedup
/// metric for the multi-node figures).
double speedup_vs_single_node(const TrainConfig& config);

}  // namespace dnnperf::train
