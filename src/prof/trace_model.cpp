#include "prof/trace_model.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "util/jsonlite.hpp"

namespace dnnperf::prof {

namespace jl = util::jsonlite;

int Track::rank() const {
  const std::string* tail = nullptr;
  std::string rest;
  if (thread_name.starts_with("rank ")) {
    rest = thread_name.substr(5);
    tail = &rest;
  } else if (thread_name.starts_with("sim rank ")) {
    rest = thread_name.substr(9);
    tail = &rest;
  }
  if (tail == nullptr || tail->empty()) return -1;
  for (char c : *tail)
    if (c < '0' || c > '9') return -1;
  return std::stoi(*tail);
}

std::string Track::label() const {
  std::string label = "pid " + std::to_string(pid) + "/tid " + std::to_string(tid);
  if (!thread_name.empty()) label += " (" + thread_name + ")";
  return label;
}

TraceModel parse_trace(const std::string& json_text, const std::string& object,
                       util::Diagnostics& diags) {
  TraceModel model;
  jl::Value doc;
  try {
    doc = jl::parse(json_text, "trace JSON");
  } catch (const std::exception& e) {
    diags.error("V101", object, "document", e.what(),
                "is this a util/trace write_json() artifact?");
    return model;
  }
  const jl::Value* events = doc.get("traceEvents");
  if (events == nullptr || events->kind != jl::Value::Kind::Array) {
    diags.error("V101", object, "traceEvents", "document has no traceEvents array", "");
    return model;
  }
  std::map<std::pair<int, int>, Track> tracks;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const jl::Value& e = events->array[i];
    const bool ok = e.kind == jl::Value::Kind::Object && e.has("name") && e.has("ph") &&
                    e.has("pid") && e.has("tid") && e.has("ts") &&
                    (e.at("ph").string != "X" || e.has("dur"));
    if (!ok) {
      diags.error("V101", object, "traceEvents[" + std::to_string(i) + "]",
                  "event is missing required fields (name/ph/pid/tid/ts, dur for 'X')", "");
      return TraceModel{};
    }
    const auto key = std::make_pair(static_cast<int>(e.at("pid").number),
                                    static_cast<int>(e.at("tid").number));
    Track& track = tracks[key];
    track.pid = key.first;
    track.tid = key.second;
    const std::string& ph = e.at("ph").string;
    if (ph == "M" && e.has("args")) {
      if (e.at("name").string == "thread_name")
        track.thread_name = e.at("args").at("name").string;
      else if (e.at("name").string == "process_name")
        track.process_name = e.at("args").at("name").string;
    }
    if (ph != "X") continue;
    Span span;
    span.name = e.at("name").string;
    span.start = e.at("ts").number;
    span.end = span.start + e.at("dur").number;
    if (const jl::Value* args = e.get("args")) {
      if (const jl::Value* bytes = args->get("bytes")) span.bytes = bytes->number;
      if (const jl::Value* tensors = args->get("tensors")) span.tensors = tensors->number;
      if (const jl::Value* step = args->get("step")) span.step = step->number;
      if (const jl::Value* iter = args->get("iteration")) span.step = iter->number;
    }
    track.spans.push_back(std::move(span));
  }
  model.tracks.reserve(tracks.size());
  for (auto& [key, track] : tracks) {
    std::stable_sort(track.spans.begin(), track.spans.end(), [](const Span& a, const Span& b) {
      return a.start != b.start ? a.start < b.start : a.end > b.end;
    });
    model.tracks.push_back(std::move(track));
  }
  return model;
}

TraceModel parse_trace_file(const std::string& path, util::Diagnostics& diags) {
  std::ifstream in(path);
  if (!in) {
    diags.error("V101", path, "file", "cannot open trace file", "");
    return TraceModel{};
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_trace(text.str(), path, diags);
}

}  // namespace dnnperf::prof
