#include "prof/profile.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "util/stats.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace dnnperf::prof {

namespace {

constexpr double kUsToS = 1e-6;

/// Top-level phase scopes nested in a "step" span, in pipeline order.
constexpr const char* kPhases[] = {"input", "forward", "backward", "exchange", "optimizer"};
/// Engine leaves: the spans during which the communicator is actually busy
/// (engine.cycle is their parent scope and would double-count).
constexpr const char* kCommLeaves[] = {"negotiate", "fusion.pack", "allreduce.data",
                                       "fusion.unpack"};

bool is_phase(const std::string& name) {
  for (const char* p : kPhases)
    if (name == p) return true;
  return false;
}

bool is_comm_leaf(const std::string& name) {
  for (const char* p : kCommLeaves)
    if (name == p) return true;
  return false;
}

/// One track carrying the step/phase structure, attributed to a rank.
struct PhaseView {
  int rank = 0;
  const Track* track = nullptr;
  std::vector<const Span*> steps;  ///< spans named "step", in start order
};

/// Half-open [start, end) interval in trace microseconds.
struct Interval {
  double start = 0.0;
  double end = 0.0;
};

/// Merges overlapping intervals in place; input need not be sorted.
std::vector<Interval> merge_intervals(std::vector<Interval> v) {
  std::sort(v.begin(), v.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  std::vector<Interval> out;
  for (const Interval& i : v) {
    if (i.end <= i.start) continue;
    if (!out.empty() && i.start <= out.back().end)
      out.back().end = std::max(out.back().end, i.end);
    else
      out.push_back(i);
  }
  return out;
}

/// Length of [start, end) covered by the merged interval set.
double covered(const std::vector<Interval>& merged, double start, double end) {
  double total = 0.0;
  for (const Interval& i : merged) {
    if (i.end <= start) continue;
    if (i.start >= end) break;
    total += std::min(end, i.end) - std::max(start, i.start);
  }
  return total;
}

/// Sum of durations of `name` spans starting within [w_start, w_end).
double sum_in_window(const Track& track, const std::string& name, double w_start, double w_end) {
  double total = 0.0;
  for (const Span& s : track.spans)
    if (s.name == name && s.start >= w_start && s.start < w_end) total += s.duration();
  return total;
}

/// End time of the last `name` span starting within the window; NaN if none.
double last_end_in_window(const Track& track, const std::string& name, double w_start,
                          double w_end) {
  double end = std::nan("");
  for (const Span& s : track.spans)
    if (s.name == name && s.start >= w_start && s.start < w_end)
      end = std::isnan(end) ? s.end : std::max(end, s.end);
  return end;
}

std::string percent(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << fraction * 100.0 << "%";
  return os.str();
}

Verdict pick_verdict(double compute_share, double comm_share, double input_share,
                     double skew_share, int ranks, std::string& reason) {
  std::ostringstream why;
  why << "compute " << percent(compute_share) << ", exposed comm " << percent(comm_share)
      << ", input " << percent(input_share) << ", rank skew " << percent(skew_share);
  // Skew is carried inside the exposed exchange wait (fast ranks block on the
  // straggler's gradients), so it overrides CommBound when it explains at
  // least half of that wait.
  if (ranks > 1 && skew_share >= 0.10 && skew_share >= 0.5 * comm_share) {
    reason = "inter-rank compute skew dominates the exchange wait (" + why.str() + ")";
    return Verdict::StragglerBound;
  }
  if (input_share > compute_share && input_share > comm_share) {
    reason = "batch synthesis/sharding dominates (" + why.str() + ")";
    return Verdict::InputBound;
  }
  if (comm_share > compute_share) {
    reason = "exposed gradient exchange dominates (" + why.str() + ")";
    return Verdict::CommBound;
  }
  reason = "forward/backward/optimizer compute dominates (" + why.str() + ")";
  return Verdict::ComputeBound;
}

class Profiler {
 public:
  Profiler(const TraceModel& model, const std::string& object, const ProfileOptions& options)
      : model_(model), object_(object), opt_(options) {}

  ProfileReport run() {
    report_.source = object_;
    if (!collect_views()) {
      report_.diags.error("T005", object_, "traceEvents",
                          "no profilable step structure: no track carries 'step' spans",
                          "record with tracing enabled around a training loop "
                          "(util/trace step scopes)");
      return std::move(report_);
    }
    phase_breakdown();
    per_rank_utilization();
    overlap();
    critical_path();
    stragglers();
    allreduce_buckets();
    grad_events();
    verdict();
    checks();
    return std::move(report_);
  }

 private:
  /// Picks the real rank tracks when the document has them, the DES compute
  /// + engine tracks otherwise. Returns false when neither carries steps.
  bool collect_views() {
    for (const Track& t : model_.tracks) {
      if (t.simulated()) continue;
      const int r = t.rank();
      if (r < 0) continue;
      PhaseView v{r, &t, step_spans(t)};
      if (!v.steps.empty()) views_.push_back(std::move(v));
    }
    if (!views_.empty()) {
      for (const PhaseView& v : views_) comm_tracks_.push_back(v.track);
      report_.ranks = static_cast<int>(views_.size());
      steps_ = views_.front().steps.size();
      for (const PhaseView& v : views_) steps_ = std::min(steps_, v.steps.size());
      report_.steps = static_cast<int>(steps_);
      return steps_ > 0;
    }
    // Simulated: one representative compute track, one engine track, and
    // (per-rank mode) one "sim rank N" compute span track per rank.
    report_.simulated = true;
    const Track* compute = nullptr;
    const Track* engine = nullptr;
    for (const Track& t : model_.tracks) {
      if (!t.simulated()) continue;
      if (t.thread_name == "compute") compute = &t;
      if (t.thread_name == "hvd engine") engine = &t;
      if (t.rank() >= 0) sim_rank_tracks_.push_back(&t);
    }
    if (compute == nullptr) return false;
    PhaseView v{0, compute, step_spans(*compute)};
    if (v.steps.empty()) return false;
    steps_ = v.steps.size();
    views_.push_back(std::move(v));
    if (engine != nullptr) comm_tracks_.push_back(engine);
    std::sort(sim_rank_tracks_.begin(), sim_rank_tracks_.end(),
              [](const Track* a, const Track* b) { return a->rank() < b->rank(); });
    report_.ranks = sim_rank_tracks_.empty() ? 1 : static_cast<int>(sim_rank_tracks_.size());
    report_.steps = static_cast<int>(steps_);
    return true;
  }

  static std::vector<const Span*> step_spans(const Track& t) {
    std::vector<const Span*> out;
    for (const Span& s : t.spans)
      if (s.name == "step") out.push_back(&s);
    return out;
  }

  void phase_breakdown() {
    std::map<std::string, double> totals;  // phase -> µs, summed then averaged
    double step_total = 0.0;
    for (const PhaseView& v : views_) {
      for (std::size_t s = 0; s < steps_; ++s) {
        const Span& w = *v.steps[s];
        step_total += w.duration();
        for (const char* phase : kPhases)
          totals[phase] += sum_in_window(*v.track, phase, w.start, w.end);
      }
    }
    const double nviews = static_cast<double>(views_.size());
    step_total /= nviews;
    report_.step_s = steps_ > 0 ? step_total / static_cast<double>(steps_) * kUsToS : 0.0;
    double attributed = 0.0;
    for (const char* phase : kPhases) {
      PhaseBreakdown row;
      row.phase = phase;
      row.total_s = totals[phase] / nviews * kUsToS;
      row.per_step_s = steps_ > 0 ? row.total_s / static_cast<double>(steps_) : 0.0;
      row.share = step_total > 0.0 ? totals[phase] / nviews / (step_total) * 1.0 : 0.0;
      attributed += row.total_s;
      report_.phases.push_back(row);
    }
    const double step_s_total = step_total * kUsToS;
    report_.unattributed_fraction =
        step_s_total > 0.0 ? std::max(0.0, (step_s_total - attributed) / step_s_total) : 0.0;
    PhaseBreakdown other;
    other.phase = "other";
    other.total_s = std::max(0.0, step_s_total - attributed);
    other.per_step_s = steps_ > 0 ? other.total_s / static_cast<double>(steps_) : 0.0;
    other.share = report_.unattributed_fraction;
    report_.phases.push_back(other);

    report_.input_s = phase_per_step("input");
    report_.forward_s = phase_per_step("forward");
    report_.backward_s = phase_per_step("backward");
    report_.exchange_s = phase_per_step("exchange");
    report_.optimizer_s = phase_per_step("optimizer");
  }

  double phase_per_step(const std::string& name) const {
    for (const PhaseBreakdown& p : report_.phases)
      if (p.phase == name) return p.per_step_s;
    return 0.0;
  }

  /// Sum of comm-leaf durations on a track within [w_start, w_end), µs.
  static double comm_busy_in_window(const Track& track, double w_start, double w_end) {
    double total = 0.0;
    for (const Span& s : track.spans)
      if (is_comm_leaf(s.name) && s.start >= w_start && s.start < w_end) total += s.duration();
    return total;
  }

  void per_rank_utilization() {
    if (!report_.simulated) {
      for (const PhaseView& v : views_) {
        RankUtilization u;
        u.rank = v.rank;
        for (std::size_t s = 0; s < steps_; ++s) {
          const Span& w = *v.steps[s];
          u.step_s += w.duration() * kUsToS;
          for (const char* phase : {"input", "forward", "backward", "optimizer"})
            u.compute_s += sum_in_window(*v.track, phase, w.start, w.end) * kUsToS;
          u.exposed_s += sum_in_window(*v.track, "exchange", w.start, w.end) * kUsToS;
          u.comm_busy_s += comm_busy_in_window(*v.track, w.start, w.end) * kUsToS;
        }
        u.other_s = std::max(0.0, u.step_s - u.compute_s - u.exposed_s);
        u.compute_fraction = u.step_s > 0.0 ? u.compute_s / u.step_s : 0.0;
        report_.utilization.push_back(u);
      }
      return;
    }
    // Simulated: the engine track is collective (every rank participates in
    // its allreduces), so its busy time is charged to each rank's view.
    const PhaseView& v = views_.front();
    double window_lo = v.steps.front()->start;
    double window_hi = v.steps[steps_ - 1]->end;
    double engine_busy = 0.0;
    for (const Track* t : comm_tracks_) engine_busy += comm_busy_in_window(*t, window_lo, window_hi);
    engine_busy *= kUsToS;
    double step_total = 0.0, exchange_total = 0.0;
    for (std::size_t s = 0; s < steps_; ++s) {
      const Span& w = *v.steps[s];
      step_total += w.duration() * kUsToS;
      exchange_total += sum_in_window(*v.track, "exchange", w.start, w.end) * kUsToS;
    }
    if (sim_rank_tracks_.empty()) {
      RankUtilization u;
      u.rank = 0;
      u.step_s = step_total;
      for (const char* phase : {"input", "forward", "backward", "optimizer"})
        u.compute_s += sum_in_window(*v.track, phase, window_lo, window_hi) * kUsToS;
      u.exposed_s = exchange_total;
      u.comm_busy_s = engine_busy;
      u.other_s = std::max(0.0, u.step_s - u.compute_s - u.exposed_s);
      u.compute_fraction = u.step_s > 0.0 ? u.compute_s / u.step_s : 0.0;
      report_.utilization.push_back(u);
      return;
    }
    for (const Track* t : sim_rank_tracks_) {
      RankUtilization u;
      u.rank = t->rank();
      u.step_s = step_total;
      u.compute_s = sum_in_window(*t, "compute", window_lo, window_hi) * kUsToS;
      u.exposed_s = exchange_total;
      u.comm_busy_s = engine_busy;
      u.other_s = std::max(0.0, u.step_s - u.compute_s - u.exposed_s);
      u.compute_fraction = u.step_s > 0.0 ? u.compute_s / u.step_s : 0.0;
      report_.utilization.push_back(u);
    }
  }

  /// Overlap = comm-leaf time intersecting the same rank view's compute
  /// spans. Real engines run on the framework thread inside exchange, so a
  /// real trace's overlap is structurally ~0; the DES engine track runs
  /// concurrently with the compute track.
  void overlap() {
    double busy = 0.0, overlapped = 0.0;
    if (!report_.simulated) {
      for (const PhaseView& v : views_) {
        std::vector<Interval> compute;
        for (const Span& s : v.track->spans)
          if (is_phase(s.name) && s.name != "exchange") compute.push_back({s.start, s.end});
        const auto merged = merge_intervals(std::move(compute));
        for (const Span& s : v.track->spans) {
          if (!is_comm_leaf(s.name)) continue;
          busy += s.duration();
          overlapped += covered(merged, s.start, s.end);
        }
      }
    } else {
      std::vector<Interval> compute;
      for (const Span& s : views_.front().track->spans)
        if (is_phase(s.name) && s.name != "exchange") compute.push_back({s.start, s.end});
      const auto merged = merge_intervals(std::move(compute));
      for (const Track* t : comm_tracks_) {
        for (const Span& s : t->spans) {
          if (!is_comm_leaf(s.name)) continue;
          busy += s.duration();
          overlapped += covered(merged, s.start, s.end);
        }
      }
    }
    report_.overlap_fraction = busy > 0.0 ? overlapped / busy : 0.0;
  }

  /// Backward-completion time of each rank at each step (µs); the raw
  /// material of both straggler attribution and the backward segment of the
  /// critical path. NaN marks a rank without a resolvable end.
  std::vector<std::vector<double>> backward_ends() const {
    std::vector<std::vector<double>> ends;  // [rank index][step]
    if (!report_.simulated) {
      for (const PhaseView& v : views_) {
        std::vector<double> per_step;
        for (std::size_t s = 0; s < steps_; ++s)
          per_step.push_back(
              last_end_in_window(*v.track, "backward", v.steps[s]->start, v.steps[s]->end));
        ends.push_back(std::move(per_step));
      }
      return ends;
    }
    if (!sim_rank_tracks_.empty()) {
      for (const Track* t : sim_rank_tracks_) {
        std::vector<double> per_step(steps_, std::nan(""));
        std::size_t k = 0;
        for (const Span& s : t->spans)
          if (s.name == "compute" && k < steps_) per_step[k++] = s.end;
        ends.push_back(std::move(per_step));
      }
      return ends;
    }
    const PhaseView& v = views_.front();
    std::vector<double> per_step;
    for (std::size_t s = 0; s < steps_; ++s)
      per_step.push_back(
          last_end_in_window(*v.track, "backward", v.steps[s]->start, v.steps[s]->end));
    ends.push_back(std::move(per_step));
    return ends;
  }

  int view_rank(std::size_t index) const {
    if (!report_.simulated) return views_[index].rank;
    if (!sim_rank_tracks_.empty()) return sim_rank_tracks_[index]->rank();
    return 0;
  }

  void critical_path() {
    // Checkpoints per step: the latest end of each phase across ranks; the
    // segment between consecutive checkpoints is bounded by the rank whose
    // lagging phase end defines it.
    struct Agg {
      double total_us = 0.0;
      std::map<int, int> rank_votes;
    };
    std::map<std::string, Agg> agg;
    const std::vector<std::string> chain = {"input", "forward", "backward", "exchange",
                                            "optimizer"};
    double critical_total_us = 0.0;
    for (std::size_t s = 0; s < steps_; ++s) {
      double t0 = views_.front().steps[s]->start;
      double step_end = views_.front().steps[s]->end;
      for (const PhaseView& v : views_) {
        t0 = std::min(t0, v.steps[s]->start);
        step_end = std::max(step_end, v.steps[s]->end);
      }
      double prev = t0;
      for (const std::string& phase : chain) {
        double latest = std::nan("");
        int rank = -1;
        for (const PhaseView& v : views_) {
          const double e =
              last_end_in_window(*v.track, phase, v.steps[s]->start, v.steps[s]->end);
          if (std::isnan(e)) continue;
          if (std::isnan(latest) || e > latest) {
            latest = e;
            rank = v.rank;
          }
        }
        if (std::isnan(latest) || latest <= prev) continue;
        Agg& a = agg[phase];
        a.total_us += latest - prev;
        a.rank_votes[rank]++;
        prev = latest;
      }
      if (step_end > prev) {
        Agg& a = agg["other"];
        a.total_us += step_end - prev;
        a.rank_votes[-1]++;
        prev = step_end;
      }
      critical_total_us += prev - t0;
    }
    if (critical_total_us <= 0.0) return;
    std::vector<std::string> order = chain;
    order.push_back("other");
    double best_share = 0.0;
    for (const std::string& phase : order) {
      const auto it = agg.find(phase);
      if (it == agg.end() || it->second.total_us <= 0.0) continue;
      CriticalSegment seg;
      seg.phase = phase;
      seg.total_s = it->second.total_us * kUsToS;
      seg.share = it->second.total_us / critical_total_us;
      int best_votes = 0;
      for (const auto& [rank, votes] : it->second.rank_votes)
        if (votes > best_votes) {
          best_votes = votes;
          seg.rank = rank;
        }
      if (seg.share > best_share) {
        best_share = seg.share;
        report_.critical_rank = seg.rank;
        report_.critical_path_share = seg.share;
      }
      report_.critical_path.push_back(std::move(seg));
    }
    report_.critical_path_s =
        steps_ > 0 ? critical_total_us / static_cast<double>(steps_) * kUsToS : 0.0;
  }

  void stragglers() {
    const auto ends = backward_ends();
    if (ends.size() < 2) return;
    util::RunStats slack_stats;
    std::vector<double> slack_mean(ends.size(), 0.0);
    std::vector<int> last_votes(ends.size(), 0);
    double skew_sum = 0.0;
    std::size_t skew_steps = 0;
    for (std::size_t s = 0; s < steps_; ++s) {
      double latest = std::nan(""), earliest = std::nan("");
      std::size_t latest_rank = 0;
      for (std::size_t r = 0; r < ends.size(); ++r) {
        const double e = ends[r][s];
        if (std::isnan(e)) continue;
        if (std::isnan(latest) || e > latest) {
          latest = e;
          latest_rank = r;
        }
        if (std::isnan(earliest) || e < earliest) earliest = e;
      }
      if (std::isnan(latest)) continue;
      last_votes[latest_rank]++;
      for (std::size_t r = 0; r < ends.size(); ++r) {
        if (std::isnan(ends[r][s])) continue;
        const double slack = (latest - ends[r][s]) * kUsToS;
        slack_stats.add(slack);
        slack_mean[r] += slack;
      }
      const double step_dur = views_.front().steps[s]->duration() * kUsToS;
      if (step_dur > 0.0) {
        skew_sum += (latest - earliest) * kUsToS / step_dur;
        ++skew_steps;
      }
    }
    for (std::size_t r = 0; r < report_.utilization.size() && r < slack_mean.size(); ++r)
      report_.utilization[r].slack_mean_s =
          steps_ > 0 ? slack_mean[r] / static_cast<double>(steps_) : 0.0;
    int best = 0;
    for (std::size_t r = 0; r < last_votes.size(); ++r)
      if (last_votes[r] > best) {
        best = last_votes[r];
        report_.straggler_rank = view_rank(r);
      }
    if (slack_stats.count() > 0) report_.straggler_slack_p99_s = slack_stats.percentile(0.99);
    report_.skew_fraction = skew_steps > 0 ? skew_sum / static_cast<double>(skew_steps) : 0.0;
  }

  void allreduce_buckets() {
    if (opt_.cost == nullptr) return;
    constexpr double kEdges[] = {0.0, 64.0 * 1024, 1024.0 * 1024, 16.0 * 1024 * 1024, -1.0};
    struct Acc {
      std::uint64_t count = 0;
      double bytes = 0.0, busy_us = 0.0;
    };
    Acc acc[4];
    for (const Track* t : comm_tracks_) {
      for (const Span& s : t->spans) {
        if (s.name != "allreduce.data" || s.bytes <= 0.0) continue;
        std::size_t b = 3;
        for (std::size_t i = 0; i < 3; ++i)
          if (s.bytes < kEdges[i + 1]) {
            b = i;
            break;
          }
        acc[b].count++;
        acc[b].bytes += s.bytes;
        acc[b].busy_us += s.duration();
      }
    }
    for (std::size_t b = 0; b < 4; ++b) {
      if (acc[b].count == 0) continue;
      AllreduceBucket bucket;
      bucket.lo_bytes = kEdges[b];
      bucket.hi_bytes = b < 3 ? kEdges[b + 1] : -1.0;
      bucket.count = acc[b].count;
      bucket.bytes_total = acc[b].bytes;
      bucket.busy_s = acc[b].busy_us * kUsToS;
      bucket.achieved_gbs = bucket.busy_s > 0.0 ? bucket.bytes_total / bucket.busy_s / 1e9 : 0.0;
      const double mean_bytes = bucket.bytes_total / static_cast<double>(bucket.count);
      bucket.model_s = opt_.cost->allreduce_time(mean_bytes);
      bucket.efficiency = bucket.busy_s > 0.0
                              ? bucket.model_s * static_cast<double>(bucket.count) / bucket.busy_s
                              : 0.0;
      report_.allreduce.push_back(bucket);
    }
  }

  /// Gradient arrival proxy for predicted-vs-measured comparison: rank 0's
  /// first-step data allreduces, timed relative to its backward start.
  void grad_events() {
    const PhaseView& v = views_.front();
    const Span& w = *v.steps.front();
    double bwd_start = std::nan("");
    for (const Span& s : v.track->spans)
      if (s.name == "backward" && s.start >= w.start && s.start < w.end) {
        bwd_start = s.start;
        break;
      }
    if (std::isnan(bwd_start)) bwd_start = w.start;
    const Track* comm = comm_tracks_.empty() ? v.track : comm_tracks_.front();
    for (const Span& s : comm->spans) {
      if (s.name != "allreduce.data" || s.bytes <= 0.0) continue;
      if (s.start < w.start || s.start >= w.end) continue;
      exec::GradEvent e;
      e.time = std::max(0.0, (s.start - bwd_start) * kUsToS);
      e.bytes = s.bytes;
      report_.grad_events.push_back(e);
    }
  }

  void verdict() {
    const double step = report_.step_s;
    const double compute_share =
        step > 0.0 ? (report_.forward_s + report_.backward_s + report_.optimizer_s) / step : 0.0;
    const double comm_share = step > 0.0 ? report_.exchange_s / step : 0.0;
    const double input_share = step > 0.0 ? report_.input_s / step : 0.0;
    report_.verdict = pick_verdict(compute_share, comm_share, input_share,
                                   report_.skew_fraction, report_.ranks,
                                   report_.verdict_reason);
  }

  void checks() {
    if (report_.unattributed_fraction > opt_.unattributed_warn_fraction)
      report_.diags.warn(
          "T001", object_, "phases",
          percent(report_.unattributed_fraction) +
              " of step time is outside the input/forward/backward/exchange/optimizer scopes",
          "the phase accounting no longer covers the step; re-check the trainer's "
          "span instrumentation");
    if (opt_.policy != nullptr && report_.step_s > 0.0) {
      double busy = 0.0;
      for (const RankUtilization& u : report_.utilization) busy += u.comm_busy_s;
      busy /= std::max<std::size_t>(1, report_.utilization.size());
      const double busy_share = busy / (report_.step_s * static_cast<double>(report_.steps));
      const double achievable =
          report_.backward_s > 0.0
              ? std::max(0.0, 1.0 - opt_.policy->cycle_time_s / report_.backward_s)
              : 0.0;
      if (busy_share > 0.05 && report_.overlap_fraction < 0.5 * achievable)
        report_.diags.advice(
            "T002", object_, "overlap",
            "compute-communication overlap " + percent(report_.overlap_fraction) +
                " is below half the fusion policy's achievable bound " + percent(achievable),
            "shorten the cycle time or submit gradients earlier so allreduces overlap "
            "the remaining backward pass");
    }
    if (report_.ranks > 1 && report_.skew_fraction > opt_.straggler_warn_fraction)
      report_.diags.warn(
          "T003", object_, "ranks",
          "inter-rank backward skew is " + percent(report_.skew_fraction) +
              " of step time; rank " + std::to_string(report_.straggler_rank) +
              " finishes last most often",
          "synchronous SGD runs at the slowest rank's pace; check placement/jitter on "
          "that rank");
    for (const AllreduceBucket& b : report_.allreduce)
      if (b.efficiency > 0.0 && b.efficiency < 0.5) {
        std::ostringstream os;
        os << "allreduce bucket [" << b.lo_bytes << ", "
           << (b.hi_bytes < 0 ? std::string("inf") : std::to_string(b.hi_bytes))
           << ") runs at " << percent(b.efficiency)
           << " of the cost model's bandwidth";
        report_.diags.advice("T004", object_, "allreduce", os.str(),
                             "contention or an unmodeled fabric bottleneck; compare "
                             "against the cluster preset the model was fit to");
        break;  // one finding; per-bucket detail is in the report table
      }
  }

  const TraceModel& model_;
  const std::string& object_;
  const ProfileOptions& opt_;
  ProfileReport report_;
  std::vector<PhaseView> views_;
  std::vector<const Track*> comm_tracks_;      ///< unique tracks with comm leaves
  std::vector<const Track*> sim_rank_tracks_;  ///< "sim rank N" (per-rank DES)
  std::size_t steps_ = 0;
};

}  // namespace

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::ComputeBound: return "ComputeBound";
    case Verdict::CommBound: return "CommBound";
    case Verdict::StragglerBound: return "StragglerBound";
    case Verdict::InputBound: return "InputBound";
  }
  return "?";
}

ProfileReport profile_trace(const TraceModel& model, const std::string& object,
                            const ProfileOptions& options) {
  return Profiler(model, object, options).run();
}

ProfileReport profile_trace_text(const std::string& json_text, const std::string& object,
                                 const ProfileOptions& options) {
  util::Diagnostics diags;
  const TraceModel model = parse_trace(json_text, object, diags);
  if (diags.has_errors()) {
    ProfileReport report;
    report.source = object;
    report.diags = std::move(diags);
    return report;
  }
  return profile_trace(model, object, options);
}

ProfileReport profile_trace_file(const std::string& path, const ProfileOptions& options) {
  util::Diagnostics diags;
  const TraceModel model = parse_trace_file(path, diags);
  if (diags.has_errors()) {
    ProfileReport report;
    report.source = path;
    report.diags = std::move(diags);
    return report;
  }
  return profile_trace(model, path, options);
}

std::string to_text(const ProfileReport& report) {
  std::ostringstream os;
  os << "profile: " << report.source << (report.simulated ? " (simulated)" : "") << "\n";
  os << "ranks " << report.ranks << ", steps " << report.steps << ", step time "
     << util::TextTable::num(report.step_s * 1e3, 3) << " ms\n\n";

  util::TextTable phases({"phase", "per-step ms", "share"});
  for (const PhaseBreakdown& p : report.phases)
    phases.add_row({p.phase, util::TextTable::num(p.per_step_s * 1e3, 3),
                    util::TextTable::num(p.share * 100.0, 1) + "%"});
  os << phases.to_text() << "\n";

  util::TextTable util_table(
      {"rank", "compute ms", "comm busy ms", "exposed ms", "other ms", "compute %", "slack ms"});
  for (const RankUtilization& u : report.utilization)
    util_table.add_row({std::to_string(u.rank), util::TextTable::num(u.compute_s * 1e3, 3),
                        util::TextTable::num(u.comm_busy_s * 1e3, 3),
                        util::TextTable::num(u.exposed_s * 1e3, 3),
                        util::TextTable::num(u.other_s * 1e3, 3),
                        util::TextTable::num(u.compute_fraction * 100.0, 1),
                        util::TextTable::num(u.slack_mean_s * 1e3, 3)});
  os << util_table.to_text() << "\n";

  os << "overlap: " << util::TextTable::num(report.overlap_fraction * 100.0, 1)
     << "% of comm busy time overlaps compute\n";
  os << "critical path (" << util::TextTable::num(report.critical_path_s * 1e3, 3)
     << " ms/step):";
  for (const CriticalSegment& seg : report.critical_path) {
    os << " " << seg.phase << " " << util::TextTable::num(seg.share * 100.0, 1) << "%";
    if (seg.rank >= 0) os << " (rank " << seg.rank << ")";
  }
  os << "\n";
  if (report.ranks > 1)
    os << "stragglers: rank " << report.straggler_rank << " trails most often; slack p99 "
       << util::TextTable::num(report.straggler_slack_p99_s * 1e3, 3) << " ms; skew "
       << util::TextTable::num(report.skew_fraction * 100.0, 1) << "% of step\n";
  if (!report.allreduce.empty()) {
    util::TextTable ar({"bucket bytes", "count", "achieved GB/s", "model ms", "efficiency"});
    for (const AllreduceBucket& b : report.allreduce) {
      std::string label = "[" + std::to_string(static_cast<long long>(b.lo_bytes)) + ", " +
                          (b.hi_bytes < 0.0
                               ? std::string("inf")
                               : std::to_string(static_cast<long long>(b.hi_bytes))) +
                          ")";
      ar.add_row({label, std::to_string(b.count), util::TextTable::num(b.achieved_gbs, 3),
                  util::TextTable::num(b.model_s * 1e3, 3),
                  util::TextTable::num(b.efficiency, 2)});
    }
    os << ar.to_text();
  }
  os << "verdict: " << to_string(report.verdict) << " — " << report.verdict_reason << "\n";
  if (!report.diags.empty()) os << "\n" << util::render_text(report.diags);
  return os.str();
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void json_num(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "0";
    return;
  }
  os << std::setprecision(12) << v;
}

}  // namespace

std::string to_json(const ProfileReport& report) {
  std::ostringstream os;
  os << "{\"schema\":\"dnnperf-profile-v1\",\"source\":";
  json_escape(os, report.source);
  os << ",\"simulated\":" << (report.simulated ? "true" : "false");
  os << ",\"ranks\":" << report.ranks << ",\"steps\":" << report.steps;
  os << ",\"step_seconds\":";
  json_num(os, report.step_s);
  os << ",\"phases\":[";
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    const PhaseBreakdown& p = report.phases[i];
    if (i) os << ",";
    os << "{\"phase\":";
    json_escape(os, p.phase);
    os << ",\"per_step_seconds\":";
    json_num(os, p.per_step_s);
    os << ",\"share\":";
    json_num(os, p.share);
    os << "}";
  }
  os << "],\"unattributed_fraction\":";
  json_num(os, report.unattributed_fraction);
  os << ",\"utilization\":[";
  for (std::size_t i = 0; i < report.utilization.size(); ++i) {
    const RankUtilization& u = report.utilization[i];
    if (i) os << ",";
    os << "{\"rank\":" << u.rank << ",\"step_seconds\":";
    json_num(os, u.step_s);
    os << ",\"compute_seconds\":";
    json_num(os, u.compute_s);
    os << ",\"comm_busy_seconds\":";
    json_num(os, u.comm_busy_s);
    os << ",\"exposed_seconds\":";
    json_num(os, u.exposed_s);
    os << ",\"other_seconds\":";
    json_num(os, u.other_s);
    os << ",\"compute_fraction\":";
    json_num(os, u.compute_fraction);
    os << ",\"slack_mean_seconds\":";
    json_num(os, u.slack_mean_s);
    os << "}";
  }
  os << "],\"overlap_fraction\":";
  json_num(os, report.overlap_fraction);
  os << ",\"critical_path\":{\"per_step_seconds\":";
  json_num(os, report.critical_path_s);
  os << ",\"rank\":" << report.critical_rank << ",\"dominant_share\":";
  json_num(os, report.critical_path_share);
  os << ",\"segments\":[";
  for (std::size_t i = 0; i < report.critical_path.size(); ++i) {
    const CriticalSegment& seg = report.critical_path[i];
    if (i) os << ",";
    os << "{\"phase\":";
    json_escape(os, seg.phase);
    os << ",\"rank\":" << seg.rank << ",\"total_seconds\":";
    json_num(os, seg.total_s);
    os << ",\"share\":";
    json_num(os, seg.share);
    os << "}";
  }
  os << "]},\"stragglers\":{\"rank\":" << report.straggler_rank << ",\"slack_p99_seconds\":";
  json_num(os, report.straggler_slack_p99_s);
  os << ",\"skew_fraction\":";
  json_num(os, report.skew_fraction);
  os << "},\"allreduce\":[";
  for (std::size_t i = 0; i < report.allreduce.size(); ++i) {
    const AllreduceBucket& b = report.allreduce[i];
    if (i) os << ",";
    os << "{\"lo_bytes\":";
    json_num(os, b.lo_bytes);
    os << ",\"hi_bytes\":";
    json_num(os, b.hi_bytes);
    os << ",\"count\":" << b.count << ",\"achieved_gb_per_sec\":";
    json_num(os, b.achieved_gbs);
    os << ",\"model_seconds\":";
    json_num(os, b.model_s);
    os << ",\"efficiency\":";
    json_num(os, b.efficiency);
    os << "}";
  }
  os << "],\"verdict\":";
  json_escape(os, to_string(report.verdict));
  os << ",\"verdict_reason\":";
  json_escape(os, report.verdict_reason);
  os << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diags.items().size(); ++i) {
    const util::Diagnostic& d = report.diags.items()[i];
    if (i) os << ",";
    os << "{\"code\":";
    json_escape(os, d.code);
    os << ",\"severity\":";
    json_escape(os, util::to_string(d.severity));
    os << ",\"message\":";
    json_escape(os, d.message);
    os << "}";
  }
  os << "]}";
  return os.str();
}

void publish_metrics(const ProfileReport& report) {
  util::metrics::gauge("prof_overlap_ratio",
                       "Fraction of comm busy time overlapped with compute (last profile)")
      .set(report.overlap_fraction);
  util::metrics::gauge("prof_critical_path_share",
                       "Share of the critical path taken by its dominant segment")
      .set(report.critical_path_share);
  util::metrics::gauge("prof_straggler_slack_p99_seconds",
                       "p99 of per-(rank, step) backward slack behind the last rank")
      .set(report.straggler_slack_p99_s);
  util::metrics::gauge("prof_unattributed_ratio",
                       "Fraction of step time outside the phase scopes (last profile)")
      .set(report.unattributed_fraction);
}

SimPointVerdict classify_sim_point(const SimPointInputs& in) {
  SimPointVerdict out;
  const double step = in.step_s;
  if (step <= 0.0) {
    out.reason = "zero step time";
    return out;
  }
  const double compute = in.forward_s + in.backward_s + in.optimizer_s;
  out.compute_share = std::min(1.0, compute / step);
  out.comm_share = std::clamp(in.comm_exposed_fraction, 0.0, 1.0);
  out.input_share = std::clamp(in.input_stall_fraction, 0.0, 1.0);
  // Expected-max inflation turns into per-step skew time: the slowest rank
  // stretches compute by (factor - 1) over the mean.
  out.straggler_share =
      std::min(1.0, std::max(0.0, (in.straggler_stretch - 1.0) * compute / step));
  const double exposed_s = out.comm_share * step;
  out.overlap_fraction =
      in.comm_busy_s > 0.0
          ? std::clamp((in.comm_busy_s - exposed_s) / in.comm_busy_s, 0.0, 1.0)
          : 0.0;
  out.verdict = pick_verdict(out.compute_share, out.comm_share, out.input_share,
                             out.straggler_share, in.straggler_stretch > 1.0 ? 2 : 1,
                             out.reason);
  return out;
}

}  // namespace dnnperf::prof
