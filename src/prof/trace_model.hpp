// Parsed-trace model shared by the happens-before verifier
// (analysis/verify/trace_verifier) and the profiler (prof/profile).
//
// A recorded Chrome trace-event document (util/trace write_json()) is
// flattened into per-(pid, tid) Tracks of complete-event Spans, with the
// metadata names (process_name/thread_name) attached and the span args the
// downstream passes care about (bytes, tensors, step/iteration) lifted into
// typed fields. Spans are sorted by (start asc, end desc) so a parent scope
// always precedes its children — both the verifier's nesting sweep and the
// profiler's phase attribution rely on that order.
//
// Parsing never throws on bad input: malformed documents are reported as
// V101 diagnostics (the verifier's well-formedness code) and yield an empty
// model.
#pragma once

#include <string>
#include <vector>

#include "util/diag.hpp"

namespace dnnperf::prof {

/// One complete ('X') event: a scoped section on a track. Times are in the
/// document's microsecond clock (real traces: steady-clock µs; DES traces:
/// virtual seconds * 1e6).
struct Span {
  std::string name;
  double start = 0.0;
  double end = 0.0;
  double bytes = -1.0;    ///< args.bytes (data allreduces), -1 = absent
  double tensors = -1.0;  ///< args.tensors (fused allreduces), -1 = absent
  double step = -1.0;     ///< args.step / args.iteration, -1 = absent

  double duration() const { return end - start; }
};

/// All spans recorded on one (pid, tid) pair, plus its metadata names.
struct Track {
  int pid = 0;
  int tid = 0;
  std::string process_name;
  std::string thread_name;
  std::vector<Span> spans;  ///< sorted by (start asc, end desc)

  /// True for DES virtual-time tracks (util/trace kSimulatedPid).
  bool simulated() const { return pid == 2; }
  /// Parses "rank N" / "sim rank N" thread names; -1 when not a rank track.
  int rank() const;
  /// Human label for diagnostics: "pid 1/tid 3 (rank 2)".
  std::string label() const;
};

/// A whole parsed document: tracks ordered by (pid, tid).
struct TraceModel {
  std::vector<Track> tracks;
  bool empty() const { return tracks.empty(); }
};

/// Parses trace JSON text into a TraceModel. Malformed input (unparseable
/// JSON, missing traceEvents, events without the viewer's required fields)
/// is reported as V101 on `diags` — the model returned is then empty and
/// must not be interpreted further. `object` labels the diagnostics
/// (usually the file name).
TraceModel parse_trace(const std::string& json_text, const std::string& object,
                       util::Diagnostics& diags);

/// parse_trace() over a file's contents; an unreadable file is a V101.
TraceModel parse_trace_file(const std::string& path, util::Diagnostics& diags);

}  // namespace dnnperf::prof
