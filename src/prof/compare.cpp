#include "prof/compare.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "hvd/timeline.hpp"
#include "util/table.hpp"

namespace dnnperf::prof {

namespace {

PhaseError make_row(const std::string& phase, double measured, double predicted) {
  PhaseError row;
  row.phase = phase;
  row.measured_s = measured;
  row.predicted_s = predicted;
  row.rel_error = measured > 0.0 ? (predicted - measured) / measured : 0.0;
  return row;
}

}  // namespace

CompareReport compare_with_sim(const ProfileReport& report, const hvd::FusionPolicy& policy,
                               const mpi::CollectiveCostModel* cost) {
  hvd::TimelineInput in;
  in.fwd_time = report.forward_s;
  in.bwd_time = report.backward_s;
  in.optimizer_time = report.optimizer_s;
  in.iteration_fixed = report.input_s;  // batch synthesis precedes forward
  in.iterations = std::max(1, report.steps);
  in.policy = policy;
  in.cost = cost;
  in.grad_events = report.grad_events;
  if (cost != nullptr && in.grad_events.empty()) {
    // A trace without per-buffer allreduce spans (e.g. tracing was sampled)
    // still gets a one-shot exchange at backward end sized by what the
    // engine reduced.
    double bytes = 0.0;
    for (const AllreduceBucket& b : report.allreduce) bytes += b.bytes_total;
    if (bytes > 0.0)
      in.grad_events.push_back({report.backward_s, bytes / std::max(1, report.steps)});
  }

  const hvd::TimelineResult sim = hvd::simulate_training(in);
  const double predicted_step = sim.per_iteration;
  const double predicted_exchange = predicted_step * sim.comm_exposed_fraction;

  CompareReport out;
  out.phases.push_back(make_row("forward", report.forward_s, in.fwd_time));
  out.phases.push_back(make_row("backward", report.backward_s, in.bwd_time));
  out.phases.push_back(make_row("optimizer", report.optimizer_s, in.optimizer_time));
  out.phases.push_back(make_row("exchange", report.exchange_s, predicted_exchange));
  out.phases.push_back(make_row("step", report.step_s, predicted_step));
  out.step_rel_error = out.phases.back().rel_error;
  return out;
}

std::string to_text(const CompareReport& report) {
  std::ostringstream os;
  os << "predicted vs measured (DES timeline):\n";
  util::TextTable table({"phase", "measured ms", "predicted ms", "rel error"});
  for (const PhaseError& row : report.phases) {
    std::ostringstream err;
    err << std::showpos << std::fixed << std::setprecision(1) << row.rel_error * 100.0 << "%";
    table.add_row({row.phase, util::TextTable::num(row.measured_s * 1e3, 3),
                   util::TextTable::num(row.predicted_s * 1e3, 3), err.str()});
  }
  os << table.to_text();
  return os.str();
}

std::string to_json(const CompareReport& report) {
  std::ostringstream os;
  os << "{\"phases\":[";
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    const PhaseError& row = report.phases[i];
    if (i) os << ",";
    os << "{\"phase\":\"" << row.phase << "\",\"measured_seconds\":" << std::setprecision(12)
       << row.measured_s << ",\"predicted_seconds\":" << row.predicted_s
       << ",\"rel_error\":" << (std::isfinite(row.rel_error) ? row.rel_error : 0.0) << "}";
  }
  os << "],\"step_rel_error\":"
     << (std::isfinite(report.step_rel_error) ? report.step_rel_error : 0.0) << "}";
  return os.str();
}

}  // namespace dnnperf::prof
