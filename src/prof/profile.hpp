// Trace-analytics profiler: turns a recorded Chrome trace (real rank tracks
// or DES virtual-time tracks) into the characterization outputs the paper
// plots — per-rank compute/comm/idle utilization, compute-communication
// overlap, the critical path through a training step, straggler attribution,
// and allreduce efficiency against the CollectiveCostModel — plus a single
// bottleneck verdict ("where did the step time go").
//
// Inputs are the span vocabulary util/trace records: per-rank "step" >
// {input, forward, backward, exchange, optimizer} phase scopes, and the
// engine leaves {negotiate, fusion.pack, allreduce.data, fusion.unpack}
// nested in exchange (real) or on the simulated engine track (DES).
// Pathological profiles are reported as T-family diagnostics (see
// analysis/registry).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/schedule.hpp"
#include "hvd/policy.hpp"
#include "mpi/cost.hpp"
#include "prof/trace_model.hpp"
#include "util/diag.hpp"

namespace dnnperf::prof {

/// What bounds the training step.
enum class Verdict {
  ComputeBound,    ///< forward+backward+optimizer dominate
  CommBound,       ///< exposed (non-overlapped) gradient exchange dominates
  StragglerBound,  ///< inter-rank compute skew dominates the exposed wait
  InputBound,      ///< batch synthesis / data sharding dominates
};

const char* to_string(Verdict verdict);

struct ProfileOptions {
  /// Enables the allreduce-efficiency report (achieved vs modeled time per
  /// tensor-size bucket) and the T004 efficiency check.
  const mpi::CollectiveCostModel* cost = nullptr;
  /// Enables the T002 check (overlap below the fusion policy's achievable
  /// bound).
  const hvd::FusionPolicy* policy = nullptr;
  /// T001 threshold: step time not covered by phase spans.
  double unattributed_warn_fraction = 0.05;
  /// T003 threshold: inter-rank backward skew as a fraction of step time.
  double straggler_warn_fraction = 0.10;
};

/// One phase row of the breakdown table.
struct PhaseBreakdown {
  std::string phase;
  double total_s = 0.0;     ///< summed over steps, averaged across ranks
  double per_step_s = 0.0;
  double share = 0.0;       ///< of mean step time
};

/// Where one rank's step time went. In real traces the engine runs on the
/// rank's own thread, so comm_busy is carved out of the exposed exchange; in
/// DES traces the engine track runs concurrently and comm_busy can overlap
/// compute.
struct RankUtilization {
  int rank = 0;
  double step_s = 0.0;       ///< sum of the rank's step spans
  double compute_s = 0.0;    ///< input+forward+backward+optimizer
  double comm_busy_s = 0.0;  ///< negotiate + pack + allreduce + unpack leaves
  double exposed_s = 0.0;    ///< exchange scopes (framework thread blocked)
  double other_s = 0.0;      ///< step - compute - exchange (unattributed)
  double compute_fraction = 0.0;
  /// Mean over steps of (latest rank's backward end - this rank's): how long
  /// the collective waits on slower peers because of this rank's position.
  double slack_mean_s = 0.0;
};

/// One segment of the critical path: the span chain bounding step time.
struct CriticalSegment {
  std::string phase;
  int rank = -1;      ///< rank whose lagging end bounded this segment most often
  double total_s = 0.0;
  double share = 0.0; ///< of the critical-path length
};

/// Achieved vs modeled allreduce performance for one tensor-size bucket.
struct AllreduceBucket {
  double lo_bytes = 0.0;  ///< [lo, hi)
  double hi_bytes = 0.0;
  std::uint64_t count = 0;
  double bytes_total = 0.0;
  double busy_s = 0.0;
  double achieved_gbs = 0.0;  ///< bytes_total / busy_s, GB/s
  double model_s = 0.0;       ///< cost-model time at the bucket's mean size
  double efficiency = 0.0;    ///< modeled total time / measured busy time
};

struct ProfileReport {
  std::string source;      ///< file name / label the trace came from
  bool simulated = false;  ///< profiled the DES tracks (virtual time)
  int ranks = 0;
  int steps = 0;
  double step_s = 0.0;     ///< mean step wall time (seconds)

  std::vector<PhaseBreakdown> phases;
  double unattributed_fraction = 0.0;

  std::vector<RankUtilization> utilization;
  /// Fraction of comm busy time overlapped with compute spans.
  double overlap_fraction = 0.0;

  std::vector<CriticalSegment> critical_path;
  double critical_path_s = 0.0;   ///< per-step critical-path length
  int critical_rank = -1;         ///< rank bounding the largest segment total
  /// Share of the critical path taken by its dominant segment.
  double critical_path_share = 0.0;

  int straggler_rank = -1;        ///< rank most often last out of backward
  double straggler_slack_p99_s = 0.0;  ///< p99 of per-(rank, step) slack
  /// Mean over steps of (max - min backward end) / step time.
  double skew_fraction = 0.0;

  Verdict verdict = Verdict::ComputeBound;
  std::string verdict_reason;

  std::vector<AllreduceBucket> allreduce;  ///< empty without a cost model

  // Measured per-step phase means (seconds) — the TimelineInput a
  // predicted-vs-measured comparison feeds back into the DES.
  double input_s = 0.0;
  double forward_s = 0.0;
  double backward_s = 0.0;
  double exchange_s = 0.0;
  double optimizer_s = 0.0;
  /// Gradient submission proxy extracted from rank 0's first step: one event
  /// per data allreduce, time relative to backward start.
  std::vector<exec::GradEvent> grad_events;

  util::Diagnostics diags;  ///< V101/T001.. findings
};

/// Profiles a parsed trace. Prefers real rank tracks; falls back to the
/// simulated (DES) tracks when the document has no real step structure.
/// Never throws on bad input — an unprofilable trace yields T005/V101
/// diagnostics and a zeroed report.
ProfileReport profile_trace(const TraceModel& model, const std::string& object,
                            const ProfileOptions& options = {});
ProfileReport profile_trace_text(const std::string& json_text, const std::string& object,
                                 const ProfileOptions& options = {});
ProfileReport profile_trace_file(const std::string& path, const ProfileOptions& options = {});

/// Human-readable report (tables + verdict line).
std::string to_text(const ProfileReport& report);
/// dnnperf-profile-v1 JSON envelope.
std::string to_json(const ProfileReport& report);
/// Publishes the prof_* gauges (overlap ratio, critical-path share,
/// straggler slack p99, unattributed ratio) on the metrics registry.
void publish_metrics(const ProfileReport& report);

/// Analytic classification of a simulated run (no trace): the same verdict
/// rule applied to a TrainResult-shaped summary, so scaling-curve points and
/// advisor recommendations carry bottleneck attribution.
struct SimPointInputs {
  double step_s = 0.0;
  double forward_s = 0.0;    ///< unstretched per-rank compute
  double backward_s = 0.0;
  double optimizer_s = 0.0;
  double comm_exposed_fraction = 0.0;
  double comm_busy_s = 0.0;         ///< engine busy seconds per step
  double straggler_stretch = 1.0;   ///< expected-max compute inflation
  double input_stall_fraction = 0.0;
};

struct SimPointVerdict {
  Verdict verdict = Verdict::ComputeBound;
  double overlap_fraction = 0.0;
  double compute_share = 0.0;
  double comm_share = 0.0;
  double straggler_share = 0.0;
  double input_share = 0.0;
  std::string reason;
};

SimPointVerdict classify_sim_point(const SimPointInputs& in);

}  // namespace dnnperf::prof
