// Predicted-vs-measured alignment: feeds a profiled trace's measured phase
// times and gradient-arrival events back into the DES timeline
// (hvd::simulate_training) under a cost model and reports the per-phase
// relative error — the paper's model-validation methodology, automated. The
// compute phases are fed from the measurement, so their rows are sanity
// checks (~0 error); the informative rows are the exposed exchange and the
// end-to-end step time, which the engine/collective model must predict.
#pragma once

#include <string>
#include <vector>

#include "hvd/policy.hpp"
#include "mpi/cost.hpp"
#include "prof/profile.hpp"

namespace dnnperf::prof {

struct PhaseError {
  std::string phase;
  double measured_s = 0.0;
  double predicted_s = 0.0;
  /// (predicted - measured) / measured; 0 when measured is 0.
  double rel_error = 0.0;
};

struct CompareReport {
  std::vector<PhaseError> phases;  ///< forward, backward, optimizer, exchange, step
  double step_rel_error = 0.0;     ///< the step row's error, for quick gating
};

/// Runs the DES with the report's measured inputs and compares per-phase
/// times. `cost` prices the collectives (nullptr = no communication, only
/// meaningful for single-rank traces).
CompareReport compare_with_sim(const ProfileReport& report, const hvd::FusionPolicy& policy,
                               const mpi::CollectiveCostModel* cost);

std::string to_text(const CompareReport& report);
/// JSON fragment (an object, no envelope) for embedding under
/// "compare_sim" in the dnnperf-profile-v1 document.
std::string to_json(const CompareReport& report);

}  // namespace dnnperf::prof
