#include "hw/platforms.hpp"

#include <stdexcept>

namespace dnnperf::hw {

namespace {

CpuModel make_cpu(std::string name, std::string label, CpuVendor vendor, int sockets,
                  int cores_per_socket, int numa_per_socket, int smt, double clock_ghz,
                  double flops_per_cycle, double mem_bw_socket, double smt_fraction) {
  CpuModel cpu;
  cpu.name = std::move(name);
  cpu.label = std::move(label);
  cpu.vendor = vendor;
  cpu.sockets = sockets;
  cpu.cores_per_socket = cores_per_socket;
  cpu.numa_domains_per_socket = numa_per_socket;
  cpu.threads_per_core = smt;
  cpu.clock_ghz = clock_ghz;
  cpu.flops_per_cycle_fp32 = flops_per_cycle;
  cpu.mem_bw_per_socket_gbps = mem_bw_socket;
  cpu.smt_speedup_fraction = smt_fraction;
  cpu.validate();
  return cpu;
}

}  // namespace

// Skylake-SP with two AVX-512 FMA units: 64 fp32 FLOP/cycle/core.
// Six DDR4-2666 channels per socket: ~128 GB/s peak, ~105 GB/s sustained.
CpuModel skylake1() {
  return make_cpu("Xeon Gold 6132", "Skylake-1", CpuVendor::Intel, 2, 14, 1, 1, 2.6, 64.0,
                  105.0, 0.0);
}

CpuModel skylake2() {
  return make_cpu("Xeon Gold 6148", "Skylake-2", CpuVendor::Intel, 2, 20, 1, 1, 2.4, 64.0,
                  105.0, 0.0);
}

// Stampede2 SKX nodes (Xeon Platinum 8160, 2x24 @ 2.1 GHz) run with
// hyper-threading enabled; a busy SMT sibling adds ~22% throughput.
CpuModel skylake3() {
  return make_cpu("Xeon Platinum 8160", "Skylake-3", CpuVendor::Intel, 2, 24, 1, 2, 2.1,
                  64.0, 105.0, 0.22);
}

// Broadwell AVX2 (2xFMA256): 32 fp32 FLOP/cycle/core; 4 channels DDR4-2400.
CpuModel broadwell() {
  return make_cpu("Xeon E5-2680 v4", "Broadwell", CpuVendor::Intel, 2, 14, 1, 1, 2.4, 32.0,
                  68.0, 0.0);
}

// EPYC 7551 (Zen 1): 2x128-bit FMA = 16 fp32 FLOP/cycle/core; 8 DDR4
// channels per socket but split across 4 dies. See header note about the
// Table I cores/threads wording.
CpuModel epyc() {
  return make_cpu("EPYC 7551", "EPYC", CpuVendor::Amd, 2, 32, 4, 2, 2.0, 16.0, 140.0, 0.18);
}

GpuModel k80() {
  GpuModel g;
  g.name = "K80";
  // One K80 board = 2 x GK210; the paper reports per-board numbers.
  g.peak_fp32_tflops = 5.6;
  g.mem_bw_gbps = 480.0;
  g.launch_overhead_s = 9e-6;   // Kepler-era driver + no graph launch
  g.achievable_fraction = 0.33; // pre-Tensor-Core cuDNN on Kepler is far off peak
  g.memory_gib = 12.0;          // per logical GPU (paper Section IV-A)
  g.devices_per_node = 2;
  g.validate();
  return g;
}

GpuModel p100() {
  GpuModel g;
  g.name = "P100";
  g.peak_fp32_tflops = 10.6;
  g.mem_bw_gbps = 732.0;
  g.launch_overhead_s = 6e-6;
  g.achievable_fraction = 0.55;
  g.memory_gib = 16.0;
  g.devices_per_node = 2;
  g.validate();
  return g;
}

GpuModel v100() {
  GpuModel g;
  g.name = "V100";
  g.peak_fp32_tflops = 15.7;
  g.mem_bw_gbps = 900.0;
  g.launch_overhead_s = 5e-6;
  g.achievable_fraction = 0.78;
  g.memory_gib = 16.0;          // Pitzer V100s (paper Section IV-A)
  g.devices_per_node = 2;
  g.validate();
  return g;
}

namespace {

ClusterModel make_cluster(std::string name, CpuModel cpu, std::optional<GpuModel> gpu,
                          double mem_gib, int max_nodes, FabricKind fabric) {
  ClusterModel c;
  c.name = std::move(name);
  c.node.cpu = std::move(cpu);
  c.node.gpu = std::move(gpu);
  c.node.memory_gib = mem_gib;
  c.max_nodes = max_nodes;
  c.fabric = fabric;
  c.validate();
  return c;
}

}  // namespace

ClusterModel ri2_skylake() {
  return make_cluster("RI2-Skylake", skylake1(), std::nullopt, 192.0, 12,
                      FabricKind::InfiniBandEDR);
}

ClusterModel ri2_broadwell() {
  return make_cluster("RI2-Broadwell", broadwell(), std::nullopt, 128.0, 20,
                      FabricKind::InfiniBandEDR);
}

ClusterModel pitzer() {
  return make_cluster("Pitzer", skylake2(), std::nullopt, 192.0, 16,
                      FabricKind::InfiniBandEDR);
}

ClusterModel stampede2() {
  return make_cluster("Stampede2", skylake3(), std::nullopt, 192.0, 128,
                      FabricKind::OmniPath);
}

ClusterModel amd_cluster() {
  return make_cluster("AMD-Cluster", epyc(), std::nullopt, 256.0, 8,
                      FabricKind::InfiniBandEDR);
}

ClusterModel ri2_k80() {
  return make_cluster("RI2-K80", skylake1(), k80(), 192.0, 4, FabricKind::InfiniBandEDR);
}

ClusterModel p100_cluster() {
  return make_cluster("P100-Cluster", skylake2(), p100(), 192.0, 4,
                      FabricKind::InfiniBandEDR);
}

ClusterModel pitzer_v100() {
  return make_cluster("Pitzer-V100", skylake2(), v100(), 192.0, 4,
                      FabricKind::InfiniBandEDR);
}

CpuModel cpu_by_label(const std::string& label) {
  for (const auto& cpu : all_cpus())
    if (cpu.label == label) return cpu;
  throw std::out_of_range("unknown CPU label: " + label);
}

GpuModel gpu_by_name(const std::string& name) {
  for (const auto& gpu : all_gpus())
    if (gpu.name == name) return gpu;
  throw std::out_of_range("unknown GPU: " + name);
}

ClusterModel cluster_by_name(const std::string& name) {
  for (const auto& cluster : all_clusters())
    if (cluster.name == name) return cluster;
  throw std::out_of_range("unknown cluster: " + name);
}

std::vector<CpuModel> all_cpus() {
  return {skylake1(), skylake2(), skylake3(), broadwell(), epyc()};
}

std::vector<GpuModel> all_gpus() { return {k80(), p100(), v100()}; }

std::vector<ClusterModel> all_clusters() {
  return {ri2_skylake(), ri2_broadwell(), pitzer(),        stampede2(),
          amd_cluster(), ri2_k80(),       p100_cluster(),  pitzer_v100()};
}

}  // namespace dnnperf::hw
