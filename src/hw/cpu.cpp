#include "hw/cpu.hpp"

#include <stdexcept>

namespace dnnperf::hw {

void CpuModel::validate() const {
  if (sockets <= 0 || cores_per_socket <= 0)
    throw std::invalid_argument("CpuModel: non-positive socket/core count");
  if (numa_domains_per_socket <= 0 || cores_per_socket % numa_domains_per_socket != 0)
    throw std::invalid_argument("CpuModel: cores_per_socket must divide into NUMA domains");
  if (threads_per_core <= 0) throw std::invalid_argument("CpuModel: threads_per_core <= 0");
  if (clock_ghz <= 0.0 || flops_per_cycle_fp32 <= 0.0 || mem_bw_per_socket_gbps <= 0.0)
    throw std::invalid_argument("CpuModel: non-positive rate");
  if (smt_speedup_fraction < 0.0 || smt_speedup_fraction > 1.0)
    throw std::invalid_argument("CpuModel: smt_speedup_fraction outside [0,1]");
  if (threads_per_core == 1 && smt_speedup_fraction != 0.0)
    throw std::invalid_argument("CpuModel: SMT fraction set but SMT off");
}

}  // namespace dnnperf::hw
