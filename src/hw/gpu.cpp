#include "hw/gpu.hpp"

#include <stdexcept>

namespace dnnperf::hw {

void GpuModel::validate() const {
  if (peak_fp32_tflops <= 0.0 || mem_bw_gbps <= 0.0)
    throw std::invalid_argument("GpuModel: non-positive rate");
  if (launch_overhead_s < 0.0)
    throw std::invalid_argument("GpuModel: negative launch overhead");
  if (achievable_fraction <= 0.0 || achievable_fraction > 1.0)
    throw std::invalid_argument("GpuModel: achievable_fraction outside (0,1]");
  if (memory_gib <= 0.0)
    throw std::invalid_argument("GpuModel: non-positive memory");
  if (devices_per_node <= 0)
    throw std::invalid_argument("GpuModel: devices_per_node <= 0");
}

}  // namespace dnnperf::hw
