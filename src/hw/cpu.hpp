// CPU architecture model.
//
// A CpuModel captures exactly the hardware characteristics the paper's
// single-node figures depend on: core count, socket/NUMA layout, SMT,
// clock speed, SIMD throughput, and memory bandwidth. The execution model
// (src/exec) converts these into per-op times.
#pragma once

#include <cstdint>
#include <string>

namespace dnnperf::hw {

/// Microarchitecture family; selects the SIMD path and whether the
/// MKL-DNN-optimized framework builds apply (they only help Intel parts,
/// cf. paper Section VI-E).
enum class CpuVendor { Intel, Amd };

struct CpuModel {
  std::string name;         ///< e.g. "Xeon Gold 6132"
  std::string label;        ///< paper label, e.g. "Skylake-1"
  CpuVendor vendor = CpuVendor::Intel;

  int sockets = 2;
  int cores_per_socket = 14;
  /// NUMA domains per socket (EPYC Naples has 4 dies per socket; Intel
  /// Xeons here are 1). Processes pinned within one domain avoid remote
  /// memory traffic.
  int numa_domains_per_socket = 1;
  /// Hardware threads per core (1 = SMT off).
  int threads_per_core = 1;

  double clock_ghz = 2.4;
  /// Peak fp32 FLOPs per cycle per core, counting FMA as 2
  /// (Skylake-SP 2xAVX-512 FMA = 64, Broadwell AVX2 = 32, Zen1 = 16).
  double flops_per_cycle_fp32 = 32.0;
  /// Sustained memory bandwidth per socket in GB/s (decimal).
  double mem_bw_per_socket_gbps = 100.0;
  /// Fraction of extra throughput a second SMT thread on a busy core
  /// contributes (0 when SMT is off).
  double smt_speedup_fraction = 0.0;

  int total_cores() const { return sockets * cores_per_socket; }
  int total_hw_threads() const { return total_cores() * threads_per_core; }
  int numa_domains() const { return sockets * numa_domains_per_socket; }
  int cores_per_numa_domain() const { return cores_per_socket / numa_domains_per_socket; }

  /// Peak node fp32 GFLOP/s if every physical core sustained the SIMD peak.
  double peak_gflops() const {
    return total_cores() * clock_ghz * flops_per_cycle_fp32;
  }
  /// Aggregate node memory bandwidth, GB/s.
  double mem_bw_gbps() const { return sockets * mem_bw_per_socket_gbps; }

  /// Validates internal consistency; throws std::invalid_argument otherwise.
  void validate() const;
};

}  // namespace dnnperf::hw
