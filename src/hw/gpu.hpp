// GPU architecture model for the GPU-vs-CPU comparison experiments
// (paper Section VII). A calibrated roofline: peak fp32 throughput,
// memory bandwidth, and per-kernel launch overhead.
#pragma once

#include <string>

namespace dnnperf::hw {

struct GpuModel {
  std::string name;            ///< e.g. "V100"
  double peak_fp32_tflops = 0; ///< board peak fp32 TFLOP/s
  double mem_bw_gbps = 0;      ///< HBM/GDDR bandwidth, GB/s
  /// Kernel launch + framework dispatch overhead per op, seconds.
  double launch_overhead_s = 5e-6;
  /// Fraction of peak a well-tuned cuDNN conv sustains end to end.
  double achievable_fraction = 0.33;
  /// Device memory available to the framework, GiB (bounds the batch size —
  /// the reason the paper's K80 runs use small batches).
  double memory_gib = 16.0;
  int devices_per_node = 2;

  double peak_gflops() const { return peak_fp32_tflops * 1e3; }

  void validate() const;
};

}  // namespace dnnperf::hw
