#include "hw/node.hpp"

#include <stdexcept>

namespace dnnperf::hw {

const char* to_string(FabricKind kind) {
  switch (kind) {
    case FabricKind::InfiniBandEDR: return "IB-EDR";
    case FabricKind::OmniPath: return "Omni-Path";
    case FabricKind::Ethernet10G: return "10GigE";
  }
  return "?";
}

void NodeModel::validate() const {
  cpu.validate();
  if (gpu) gpu->validate();
  if (memory_gib <= 0.0) throw std::invalid_argument("NodeModel: non-positive memory");
}

void ClusterModel::validate() const {
  node.validate();
  if (max_nodes <= 0) throw std::invalid_argument("ClusterModel: max_nodes <= 0");
}

}  // namespace dnnperf::hw
