// Registry of the evaluation platforms from paper Table I and Section IV-A,
// plus the GPU systems used in Section VII.
//
// Note on EPYC: Table I lists "Cores 32, Threads per Core 4"; the prose says
// each node has a dual-socket EPYC 7551 with 32 cores per socket. The 7551 is
// a 32-core SMT2 part with 4 dies (NUMA domains) per socket, so we model
// 2 sockets x 32 cores x SMT2 with 8 NUMA domains, which matches the prose
// and the ppn=16/32 sweet spots the paper reports.
#pragma once

#include <string>
#include <vector>

#include "hw/node.hpp"

namespace dnnperf::hw {

/// Paper CPU platforms (Table I labels).
CpuModel skylake1();    ///< RI2, Xeon Gold 6132, 2x14 @ 2.6 GHz, no SMT
CpuModel skylake2();    ///< Pitzer, Xeon Gold 6148, 2x20 @ 2.4 GHz, no SMT
CpuModel skylake3();    ///< Stampede2, Xeon Platinum 8160, 2x24 @ 2.1 GHz, SMT2
CpuModel broadwell();   ///< RI2, Xeon E5-2680 v4, 2x14 @ 2.4 GHz, no SMT
CpuModel epyc();        ///< AMD-Cluster, EPYC 7551, 2x32 @ 2.0 GHz, SMT2, 8 NUMA

/// Paper GPU architectures (Section VII).
GpuModel k80();   ///< Kepler, on RI2 Skylake-1 nodes (2 per node)
GpuModel p100();  ///< Pascal
GpuModel v100();  ///< Volta, on Pitzer GPU nodes (2 per node)

/// Paper clusters with their fabric and scale.
ClusterModel ri2_skylake();      ///< 12 Skylake-1 nodes, IB EDR
ClusterModel ri2_broadwell();    ///< 20 Broadwell nodes, IB EDR
ClusterModel pitzer();           ///< Skylake-2 nodes, IB EDR
ClusterModel stampede2();        ///< Skylake-3 nodes, Omni-Path, up to 128 used
ClusterModel amd_cluster();      ///< 8 EPYC nodes, IB EDR
ClusterModel ri2_k80();          ///< K80 GPU nodes (RI2)
ClusterModel p100_cluster();     ///< P100 GPU nodes
ClusterModel pitzer_v100();      ///< V100 GPU nodes (Pitzer)

/// Lookup by paper label ("Skylake-1", "Broadwell", "EPYC", ...).
/// Throws std::out_of_range for unknown labels.
CpuModel cpu_by_label(const std::string& label);
GpuModel gpu_by_name(const std::string& name);
ClusterModel cluster_by_name(const std::string& name);

/// All CPU platforms in Table I order (for the table1 bench).
std::vector<CpuModel> all_cpus();
std::vector<GpuModel> all_gpus();
std::vector<ClusterModel> all_clusters();

}  // namespace dnnperf::hw
