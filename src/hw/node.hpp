// Node and cluster composition: a CPU (always), optional GPUs, and the
// fabric connecting nodes. Mirrors the four clusters of paper Table I /
// Section IV-A.
#pragma once

#include <optional>
#include <string>

#include "hw/cpu.hpp"
#include "hw/gpu.hpp"

namespace dnnperf::hw {

/// Inter-node interconnect family. Parameters live in src/net.
enum class FabricKind { InfiniBandEDR, OmniPath, Ethernet10G };

const char* to_string(FabricKind kind);

struct NodeModel {
  CpuModel cpu;
  std::optional<GpuModel> gpu;  ///< present on GPU nodes
  double memory_gib = 192.0;

  bool has_gpu() const { return gpu.has_value(); }
  void validate() const;
};

struct ClusterModel {
  std::string name;  ///< e.g. "Stampede2"
  NodeModel node;
  int max_nodes = 8;
  FabricKind fabric = FabricKind::InfiniBandEDR;

  void validate() const;
};

}  // namespace dnnperf::hw
