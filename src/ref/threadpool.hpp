// Persistent thread pool with a blocking parallel_for — the intra-op
// parallelism substrate of the refdnn kernels (the real counterpart of the
// "intra-op threads" the performance model reasons about).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dnnperf::ref {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). threads == 1 runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Splits [0, n) into contiguous chunks and runs body(begin, end) on the
  /// workers; blocks until all chunks finish. Exceptions from the body
  /// propagate to the caller (first one wins). Re-entrant calls from inside
  /// a body on the same pool (a parallel kernel invoking another parallel
  /// kernel) are detected and executed serially on the calling thread — the
  /// shared dispatch state belongs to the outer loop.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body);

  /// Grain-aware variant: chunks are at least `min_grain` items so cheap
  /// per-item bodies amortize dispatch; when n <= min_grain the body runs
  /// inline on the caller with no pool round-trip at all.
  void parallel_for(std::size_t n, std::size_t min_grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t total_ = 0;
  std::size_t chunk_ = 0;
  std::size_t next_ = 0;
  int active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace dnnperf::ref
