#include "ref/layers.hpp"

#include <cmath>

#include "ref/conv_fast.hpp"
#include "ref/gemm.hpp"

namespace dnnperf::ref {

Conv2dLayer::Conv2dLayer(std::string name, int in_c, int out_c, int k, ConvSpec spec,
                         ThreadPool& pool, util::Rng& rng)
    : name_(std::move(name)), spec_(spec), pool_(pool) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_c * k * k));
  weight = Tensor::randn({out_c, in_c, k, k}, rng, stddev);
  bias = Tensor::zeros({out_c});
  dweight = Tensor::zeros(weight.shape());
  dbias = Tensor::zeros(bias.shape());
}

Tensor Conv2dLayer::forward(const Tensor& x) {
  input_ = x;
  // GemmPath::packed runs the implicit-GEMM lowering; naive keeps the direct
  // kernels (the finite-difference-validated oracle).
  if (gemm_path() == GemmPath::packed)
    return conv2d_forward_gemm(x, weight, bias, spec_, pool_);
  return conv2d_forward(x, weight, bias, spec_, pool_);
}

Tensor Conv2dLayer::backward(const Tensor& dy) {
  Tensor dx;
  if (gemm_path() == GemmPath::packed)
    conv2d_backward_gemm(input_, weight, dy, spec_, dx, dweight, dbias, pool_);
  else
    conv2d_backward(input_, weight, dy, spec_, dx, dweight, dbias, pool_);
  return dx;
}

std::vector<ParamRef> Conv2dLayer::params() {
  return {{name_ + "/w", &weight, &dweight}, {name_ + "/b", &bias, &dbias}};
}

DenseLayer::DenseLayer(std::string name, int in_f, int out_f, ThreadPool& pool, util::Rng& rng)
    : name_(std::move(name)), pool_(pool) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_f));
  weight = Tensor::randn({in_f, out_f}, rng, stddev);
  bias = Tensor::zeros({out_f});
  dweight = Tensor::zeros(weight.shape());
  dbias = Tensor::zeros(bias.shape());
}

Tensor DenseLayer::forward(const Tensor& x) {
  input_ = x;
  return dense_forward(x, weight, bias, pool_);
}

Tensor DenseLayer::backward(const Tensor& dy) {
  Tensor dx;
  dense_backward(input_, weight, dy, dx, dweight, dbias, pool_);
  return dx;
}

std::vector<ParamRef> DenseLayer::params() {
  return {{name_ + "/w", &weight, &dweight}, {name_ + "/b", &bias, &dbias}};
}

Tensor ReLULayer::forward(const Tensor& x) {
  input_ = x;
  return relu_forward(x, pool_);
}

Tensor ReLULayer::backward(const Tensor& dy) { return relu_backward(input_, dy, pool_); }

Tensor MaxPoolLayer::forward(const Tensor& x) {
  input_ = x;
  return maxpool_forward(x, k_, stride_, argmax_, pool_);
}

Tensor MaxPoolLayer::backward(const Tensor& dy) {
  return maxpool_backward(input_, dy, argmax_, pool_);
}

Tensor GlobalAvgPoolLayer::forward(const Tensor& x) {
  input_ = x;
  return global_avg_pool_forward(x);
}

Tensor GlobalAvgPoolLayer::backward(const Tensor& dy) {
  return global_avg_pool_backward(input_, dy);
}

BatchNormLayer::BatchNormLayer(std::string name, int channels, float eps)
    : name_(std::move(name)), eps_(eps) {
  gamma = Tensor::zeros({channels});
  gamma.fill(1.0f);
  beta = Tensor::zeros({channels});
  dgamma = Tensor::zeros({channels});
  dbeta = Tensor::zeros({channels});
}

Tensor BatchNormLayer::forward(const Tensor& x) {
  return batchnorm_forward(x, gamma, beta, eps_, cache_);
}

Tensor BatchNormLayer::backward(const Tensor& dy) {
  Tensor dx;
  batchnorm_backward(dy, cache_, gamma, dx, dgamma, dbeta);
  return dx;
}

std::vector<ParamRef> BatchNormLayer::params() {
  return {{name_ + "/gamma", &gamma, &dgamma}, {name_ + "/beta", &beta, &dbeta}};
}

Tensor FlattenLayer::forward(const Tensor& x) {
  input_shape_ = x.shape();
  const int n = x.dim(0);
  return x.reshaped({n, static_cast<int>(x.size()) / n});
}

Tensor FlattenLayer::backward(const Tensor& dy) { return dy.reshaped(input_shape_); }

}  // namespace dnnperf::ref
