#include "ref/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>

#include "ref/gemm_packed.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace dnnperf::ref {

namespace {

constexpr int kBlockK = 64;
constexpr int kBlockN = 128;

std::atomic<GemmPath> g_gemm_path{GemmPath::packed};

int out_dim(int in, int k, int stride, int pad) {
  const int out = (in + 2 * pad - k) / stride + 1;
  if (out <= 0) throw std::invalid_argument("gemm helpers: output dim <= 0");
  return out;
}

/// Registry instrumentation for both GEMM entry points: call/FLOP counters,
/// a duration histogram, and a most-recent-throughput gauge. The handles are
/// function-local statics so registration happens once; with metrics
/// runtime-disabled the whole scope is one relaxed load and no clock read.
class GemmMetricsScope {
 public:
  GemmMetricsScope(int m, int k, int n)
      : flops_(2.0 * m * k * n), active_(util::metrics::enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~GemmMetricsScope() {
    if (!active_) return;
    static const auto calls =
        util::metrics::counter("ref_gemm_calls_total", "GEMM kernel invocations");
    static const auto flops =
        util::metrics::counter("ref_gemm_flops_total", "Floating-point operations (2*m*k*n)");
    static const auto seconds =
        util::metrics::histogram("ref_gemm_seconds", "GEMM wall time per call, seconds");
    static const auto gflops = util::metrics::gauge(
        "ref_gemm_gflops", "Throughput of the most recent GEMM call, GFLOP/s");
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    calls.inc();
    flops.inc(static_cast<std::uint64_t>(flops_));
    seconds.observe(dt);
    if (dt > 0.0) gflops.set(flops_ / dt * 1e-9);
  }

 private:
  double flops_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

/// Shape + path args and FLOP count for a GEMM-shaped trace span.
template <typename SpanT>
void annotate_gemm_span(SpanT& span, int m, int k, int n, GemmPath path) {
  if (span.active())
    span.set_args(std::move(util::trace::Args()
                                .add("m", m)
                                .add("k", k)
                                .add("n", n)
                                .add("path", path == GemmPath::packed ? "packed" : "naive"))
                      .str());
  span.set_flops(2.0 * m * k * n);
}

void check_gemm_shapes(const Tensor& a, const Tensor& b, const Tensor& c, int m, int k, int n,
                       const char* what) {
  if (a.rank() != 2 || b.rank() != 2)
    throw std::invalid_argument(std::string(what) + ": rank-2 inputs only");
  if (b.dim(0) != k) throw std::invalid_argument(std::string(what) + ": inner dimension mismatch");
  if (c.rank() != 2 || c.dim(0) != m || c.dim(1) != n)
    throw std::invalid_argument(std::string(what) + ": bad output shape");
}

// Original loop nest: parallel over row panels, each panel walks (k, n)
// blocks for locality. Dense inner loop — no data-dependent branches, so the
// compiler can vectorize the saxpy and timing is input-independent.
void gemm_naive(const float* pa, const float* pb, float* pc, int m, int k, int n,
                ThreadPool& pool) {
  pool.parallel_for(static_cast<std::size_t>(m), [&](std::size_t row_begin, std::size_t row_end) {
    for (int k0 = 0; k0 < k; k0 += kBlockK) {
      const int k1 = std::min(k, k0 + kBlockK);
      for (int n0 = 0; n0 < n; n0 += kBlockN) {
        const int n1 = std::min(n, n0 + kBlockN);
        for (std::size_t i = row_begin; i < row_end; ++i) {
          const float* arow = pa + i * static_cast<std::size_t>(k);
          float* crow = pc + i * static_cast<std::size_t>(n);
          for (int kk = k0; kk < k1; ++kk) {
            const float av = arow[kk];
            const float* brow = pb + static_cast<std::size_t>(kk) * n;
            for (int j = n0; j < n1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  });
}

void gemm_at_naive(const float* pa, const float* pb, float* pc, int m, int k, int n,
                   ThreadPool& pool) {
  pool.parallel_for(static_cast<std::size_t>(m), [&](std::size_t row_begin, std::size_t row_end) {
    for (int kk = 0; kk < k; ++kk) {
      const float* arow = pa + static_cast<std::size_t>(kk) * m;
      const float* brow = pb + static_cast<std::size_t>(kk) * n;
      for (std::size_t i = row_begin; i < row_end; ++i) {
        const float av = arow[i];
        float* crow = pc + i * static_cast<std::size_t>(n);
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

/// Store sink for plain row-major C: overwrite on the first k-block unless
/// accumulating, add afterwards.
struct RowMajorStore {
  float* c;
  int ldc;
  bool accumulate;
  void operator()(int i, int j, int mh, int nw, const float* acc, bool first) const {
    for (int r = 0; r < mh; ++r) {
      float* crow = c + static_cast<std::size_t>(i + r) * ldc + j;
      const float* arow = acc + r * detail::kNR;
      if (first && !accumulate)
        for (int q = 0; q < nw; ++q) crow[q] = arow[q];
      else
        for (int q = 0; q < nw; ++q) crow[q] += arow[q];
    }
  }
};

void gemm_packed(const float* pa, const float* pb, float* pc, int m, int k, int n,
                 bool accumulate, ThreadPool& pool) {
  const auto pack_a = [pa, k](float* dst, int i0, int mh, int k0, int kc) {
    const int mpanels = (mh + detail::kMR - 1) / detail::kMR;
    for (int ip = 0; ip < mpanels; ++ip) {
      float* panel = dst + static_cast<std::size_t>(ip) * kc * detail::kMR;
      for (int r = 0; r < detail::kMR; ++r) {
        const int i = i0 + ip * detail::kMR + r;
        if (i < i0 + mh) {
          const float* src = pa + static_cast<std::size_t>(i) * k + k0;
          for (int kk = 0; kk < kc; ++kk) panel[kk * detail::kMR + r] = src[kk];
        } else {
          for (int kk = 0; kk < kc; ++kk) panel[kk * detail::kMR + r] = 0.0f;
        }
      }
    }
  };
  const auto pack_b = [pb, n](float* dst, int k0, int kc, int j0, int nw) {
    detail::pack_b_rowmajor(dst, pb, n, k0, kc, j0, nw);
  };
  detail::packed_gemm(m, n, k, pack_a, pack_b, RowMajorStore{pc, n, accumulate}, pool);
}

void gemm_at_packed(const float* pa, const float* pb, float* pc, int m, int k, int n,
                    bool accumulate, ThreadPool& pool) {
  // A is stored transposed [k, m]: a row of the logical A is a column of the
  // stored matrix, so the pack loops kk-outer for contiguous reads.
  const auto pack_a = [pa, m](float* dst, int i0, int mh, int k0, int kc) {
    const int mpanels = (mh + detail::kMR - 1) / detail::kMR;
    for (int ip = 0; ip < mpanels; ++ip) {
      float* panel = dst + static_cast<std::size_t>(ip) * kc * detail::kMR;
      const int ibase = i0 + ip * detail::kMR;
      const int rows = std::min(detail::kMR, i0 + mh - ibase);
      for (int kk = 0; kk < kc; ++kk) {
        const float* src = pa + static_cast<std::size_t>(k0 + kk) * m + ibase;
        float* out = panel + static_cast<std::size_t>(kk) * detail::kMR;
        for (int r = 0; r < rows; ++r) out[r] = src[r];
        for (int r = rows; r < detail::kMR; ++r) out[r] = 0.0f;
      }
    }
  };
  const auto pack_b = [pb, n](float* dst, int k0, int kc, int j0, int nw) {
    detail::pack_b_rowmajor(dst, pb, n, k0, kc, j0, nw);
  };
  detail::packed_gemm(m, n, k, pack_a, pack_b, RowMajorStore{pc, n, accumulate}, pool);
}

}  // namespace

GemmPath gemm_path() { return g_gemm_path.load(std::memory_order_relaxed); }

void set_gemm_path(GemmPath path) { g_gemm_path.store(path, std::memory_order_relaxed); }

void gemm(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool& pool, bool accumulate) {
  gemm(a, b, c, pool, accumulate, gemm_path());
}

void gemm(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool& pool, bool accumulate,
          GemmPath path) {
  const int m = a.rank() == 2 ? a.dim(0) : 0, k = a.rank() == 2 ? a.dim(1) : 0,
            n = b.rank() == 2 ? b.dim(1) : 0;
  check_gemm_shapes(a, b, c, m, k, n, "gemm");
  DNNPERF_TRACE_SPAN_VAR(span, "ref", "gemm");
  annotate_gemm_span(span, m, k, n, path);
  GemmMetricsScope metrics_scope(m, k, n);
  if (path == GemmPath::packed) {
    gemm_packed(a.data(), b.data(), c.data(), m, k, n, accumulate, pool);
    return;
  }
  if (!accumulate) c.zero();
  gemm_naive(a.data(), b.data(), c.data(), m, k, n, pool);
}

void gemm_at(const Tensor& a_t, const Tensor& b, Tensor& c, ThreadPool& pool, bool accumulate) {
  gemm_at(a_t, b, c, pool, accumulate, gemm_path());
}

void gemm_at(const Tensor& a_t, const Tensor& b, Tensor& c, ThreadPool& pool, bool accumulate,
             GemmPath path) {
  const int k = a_t.rank() == 2 ? a_t.dim(0) : 0, m = a_t.rank() == 2 ? a_t.dim(1) : 0,
            n = b.rank() == 2 ? b.dim(1) : 0;
  check_gemm_shapes(a_t, b, c, m, k, n, "gemm_at");
  DNNPERF_TRACE_SPAN_VAR(span, "ref", "gemm_at");
  annotate_gemm_span(span, m, k, n, path);
  GemmMetricsScope metrics_scope(m, k, n);
  if (path == GemmPath::packed) {
    gemm_at_packed(a_t.data(), b.data(), c.data(), m, k, n, accumulate, pool);
    return;
  }
  if (!accumulate) c.zero();
  gemm_at_naive(a_t.data(), b.data(), c.data(), m, k, n, pool);
}

Tensor im2col(const Tensor& x, int kh, int kw, int stride, int pad, ThreadPool& pool) {
  if (x.rank() != 4) throw std::invalid_argument("im2col: rank-4 input only");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = out_dim(h, kh, stride, pad);
  const int ow = out_dim(w, kw, stride, pad);
  DNNPERF_TRACE_SPAN_VAR(span, "ref", "im2col");
  if (span.active())
    span.set_args(std::move(util::trace::Args().add("rows", n * oh * ow).add("cols", c * kh * kw))
                      .str());
  Tensor cols({n * oh * ow, c * kh * kw});
  float* pc = cols.data();
  const std::size_t row_len = static_cast<std::size_t>(c) * kh * kw;

  pool.parallel_for(static_cast<std::size_t>(n) * oh * ow, /*min_grain=*/16,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t idx = begin; idx < end; ++idx) {
                        const int ni = static_cast<int>(idx / (static_cast<std::size_t>(oh) * ow));
                        const int rem = static_cast<int>(idx % (static_cast<std::size_t>(oh) * ow));
                        const int oy = rem / ow;
                        const int ox = rem % ow;
                        float* row = pc + idx * row_len;
                        std::size_t col = 0;
                        for (int ci = 0; ci < c; ++ci)
                          for (int ky = 0; ky < kh; ++ky) {
                            const int iy = oy * stride + ky - pad;
                            for (int kx = 0; kx < kw; ++kx, ++col) {
                              const int ix = ox * stride + kx - pad;
                              row[col] = (iy < 0 || iy >= h || ix < 0 || ix >= w)
                                             ? 0.0f
                                             : x.at4(ni, ci, iy, ix);
                            }
                          }
                      }
                    });
  return cols;
}

Tensor col2im(const Tensor& cols, int n, int c, int h, int w, int kh, int kw, int stride,
              int pad, ThreadPool& pool) {
  const int oh = out_dim(h, kh, stride, pad);
  const int ow = out_dim(w, kw, stride, pad);
  if (cols.rank() != 2 || cols.dim(0) != n * oh * ow || cols.dim(1) != c * kh * kw)
    throw std::invalid_argument("col2im: column shape mismatch");
  Tensor x = Tensor::zeros({n, c, h, w});
  const float* pc = cols.data();
  const std::size_t row_len = static_cast<std::size_t>(c) * kh * kw;

  // Parallel over images: rows of one image only touch that image's plane.
  pool.parallel_for(static_cast<std::size_t>(n), [&](std::size_t nb, std::size_t ne) {
    for (std::size_t ni = nb; ni < ne; ++ni) {
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          const std::size_t idx = (ni * oh + oy) * ow + ox;
          const float* row = pc + idx * row_len;
          std::size_t col = 0;
          for (int ci = 0; ci < c; ++ci)
            for (int ky = 0; ky < kh; ++ky) {
              const int iy = oy * stride + ky - pad;
              for (int kx = 0; kx < kw; ++kx, ++col) {
                const int ix = ox * stride + kx - pad;
                if (iy >= 0 && iy < h && ix >= 0 && ix < w)
                  x.at4(static_cast<int>(ni), ci, iy, ix) += row[col];
              }
            }
        }
    }
  });
  return x;
}

}  // namespace dnnperf::ref
