#include "ref/gemm.hpp"

#include <algorithm>
#include <stdexcept>

namespace dnnperf::ref {

namespace {

constexpr int kBlockK = 64;
constexpr int kBlockN = 128;

int out_dim(int in, int k, int stride, int pad) {
  const int out = (in + 2 * pad - k) / stride + 1;
  if (out <= 0) throw std::invalid_argument("gemm helpers: output dim <= 0");
  return out;
}

}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool& pool, bool accumulate) {
  if (a.rank() != 2 || b.rank() != 2) throw std::invalid_argument("gemm: rank-2 inputs only");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("gemm: inner dimension mismatch");
  if (c.rank() != 2 || c.dim(0) != m || c.dim(1) != n)
    throw std::invalid_argument("gemm: bad output shape");
  if (!accumulate) c.zero();

  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();

  // Parallel over row panels; each panel walks (k, n) blocks for locality.
  pool.parallel_for(static_cast<std::size_t>(m), [&](std::size_t row_begin, std::size_t row_end) {
    for (int k0 = 0; k0 < k; k0 += kBlockK) {
      const int k1 = std::min(k, k0 + kBlockK);
      for (int n0 = 0; n0 < n; n0 += kBlockN) {
        const int n1 = std::min(n, n0 + kBlockN);
        for (std::size_t i = row_begin; i < row_end; ++i) {
          const float* arow = pa + i * static_cast<std::size_t>(k);
          float* crow = pc + i * static_cast<std::size_t>(n);
          for (int kk = k0; kk < k1; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) continue;
            const float* brow = pb + static_cast<std::size_t>(kk) * n;
            for (int j = n0; j < n1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  });
}

void gemm_at(const Tensor& a_t, const Tensor& b, Tensor& c, ThreadPool& pool, bool accumulate) {
  if (a_t.rank() != 2 || b.rank() != 2) throw std::invalid_argument("gemm_at: rank-2 only");
  const int k = a_t.dim(0), m = a_t.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("gemm_at: inner dimension mismatch");
  if (c.rank() != 2 || c.dim(0) != m || c.dim(1) != n)
    throw std::invalid_argument("gemm_at: bad output shape");
  if (!accumulate) c.zero();

  const float* pa = a_t.data();
  const float* pb = b.data();
  float* pc = c.data();

  pool.parallel_for(static_cast<std::size_t>(m), [&](std::size_t row_begin, std::size_t row_end) {
    for (int kk = 0; kk < k; ++kk) {
      const float* arow = pa + static_cast<std::size_t>(kk) * m;
      const float* brow = pb + static_cast<std::size_t>(kk) * n;
      for (std::size_t i = row_begin; i < row_end; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = pc + i * static_cast<std::size_t>(n);
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

Tensor im2col(const Tensor& x, int kh, int kw, int stride, int pad, ThreadPool& pool) {
  if (x.rank() != 4) throw std::invalid_argument("im2col: rank-4 input only");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = out_dim(h, kh, stride, pad);
  const int ow = out_dim(w, kw, stride, pad);
  Tensor cols({n * oh * ow, c * kh * kw});
  float* pc = cols.data();
  const std::size_t row_len = static_cast<std::size_t>(c) * kh * kw;

  pool.parallel_for(static_cast<std::size_t>(n) * oh * ow,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t idx = begin; idx < end; ++idx) {
                        const int ni = static_cast<int>(idx / (static_cast<std::size_t>(oh) * ow));
                        const int rem = static_cast<int>(idx % (static_cast<std::size_t>(oh) * ow));
                        const int oy = rem / ow;
                        const int ox = rem % ow;
                        float* row = pc + idx * row_len;
                        std::size_t col = 0;
                        for (int ci = 0; ci < c; ++ci)
                          for (int ky = 0; ky < kh; ++ky) {
                            const int iy = oy * stride + ky - pad;
                            for (int kx = 0; kx < kw; ++kx, ++col) {
                              const int ix = ox * stride + kx - pad;
                              row[col] = (iy < 0 || iy >= h || ix < 0 || ix >= w)
                                             ? 0.0f
                                             : x.at4(ni, ci, iy, ix);
                            }
                          }
                      }
                    });
  return cols;
}

Tensor col2im(const Tensor& cols, int n, int c, int h, int w, int kh, int kw, int stride,
              int pad, ThreadPool& pool) {
  const int oh = out_dim(h, kh, stride, pad);
  const int ow = out_dim(w, kw, stride, pad);
  if (cols.rank() != 2 || cols.dim(0) != n * oh * ow || cols.dim(1) != c * kh * kw)
    throw std::invalid_argument("col2im: column shape mismatch");
  Tensor x = Tensor::zeros({n, c, h, w});
  const float* pc = cols.data();
  const std::size_t row_len = static_cast<std::size_t>(c) * kh * kw;

  // Parallel over images: rows of one image only touch that image's plane.
  pool.parallel_for(static_cast<std::size_t>(n), [&](std::size_t nb, std::size_t ne) {
    for (std::size_t ni = nb; ni < ne; ++ni) {
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          const std::size_t idx = (ni * oh + oy) * ow + ox;
          const float* row = pc + idx * row_len;
          std::size_t col = 0;
          for (int ci = 0; ci < c; ++ci)
            for (int ky = 0; ky < kh; ++ky) {
              const int iy = oy * stride + ky - pad;
              for (int kx = 0; kx < kw; ++kx, ++col) {
                const int ix = ox * stride + kx - pad;
                if (iy >= 0 && iy < h && ix >= 0 && ix < w)
                  x.at4(static_cast<int>(ni), ci, iy, ix) += row[col];
              }
            }
        }
    }
  });
  return x;
}

}  // namespace dnnperf::ref
