#include "ref/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ref/gemm.hpp"
#include "util/trace.hpp"

namespace dnnperf::ref {

namespace {

int out_dim(int in, int k, int stride, int pad) {
  const int out = (in + 2 * pad - k) / stride + 1;
  if (out <= 0) throw std::invalid_argument("kernel: output dim <= 0");
  return out;
}

void check_rank(const Tensor& t, int rank, const char* what) {
  if (t.rank() != rank) throw std::invalid_argument(std::string(what) + ": bad rank");
}

}  // namespace

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b, ConvSpec spec,
                      ThreadPool& pool) {
  check_rank(x, 4, "conv2d x");
  check_rank(w, 4, "conv2d w");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const int oc = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  if (w.dim(1) != c) throw std::invalid_argument("conv2d: channel mismatch");
  if (b.size() != static_cast<std::size_t>(oc)) throw std::invalid_argument("conv2d: bias size");
  const int oh = out_dim(h, kh, spec.stride, spec.pad);
  const int ow = out_dim(ww, kw, spec.stride, spec.pad);

  DNNPERF_TRACE_SPAN_VAR(span, "ref", "conv2d_fwd_direct");
  if (span.active())
    span.set_args(std::move(
                      util::trace::Args().add("n", n).add("c", c).add("oc", oc).add("k", kh))
                      .str());
  span.set_flops(2.0 * n * oh * ow * oc * c * kh * kw);

  Tensor y({n, oc, oh, ow});
  pool.parallel_for(static_cast<std::size_t>(n) * oc, [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const int ni = static_cast<int>(idx) / oc;
      const int oci = static_cast<int>(idx) % oc;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float acc = b[static_cast<std::size_t>(oci)];
          for (int ci = 0; ci < c; ++ci) {
            for (int ky = 0; ky < kh; ++ky) {
              const int iy = oy * spec.stride + ky - spec.pad;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < kw; ++kx) {
                const int ix = ox * spec.stride + kx - spec.pad;
                if (ix < 0 || ix >= ww) continue;
                acc += x.at4(ni, ci, iy, ix) * w.at4(oci, ci, ky, kx);
              }
            }
          }
          y.at4(ni, oci, oy, ox) = acc;
        }
      }
    }
  });
  return y;
}

void conv2d_backward(const Tensor& x, const Tensor& w, const Tensor& dy, ConvSpec spec,
                     Tensor& dx, Tensor& dw, Tensor& db, ThreadPool& pool) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const int oc = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int oh = dy.dim(2), ow = dy.dim(3);

  dx = Tensor::zeros(x.shape());
  dw = Tensor::zeros(w.shape());
  db = Tensor::zeros({oc});

  // db and dw: parallel over output channels (disjoint writes).
  pool.parallel_for(static_cast<std::size_t>(oc), [&](std::size_t begin, std::size_t end) {
    for (std::size_t oci = begin; oci < end; ++oci) {
      const int o = static_cast<int>(oci);
      float bias_acc = 0.0f;
      for (int ni = 0; ni < n; ++ni)
        for (int oy = 0; oy < oh; ++oy)
          for (int ox = 0; ox < ow; ++ox) {
            const float g = dy.at4(ni, o, oy, ox);
            bias_acc += g;
            for (int ci = 0; ci < c; ++ci)
              for (int ky = 0; ky < kh; ++ky) {
                const int iy = oy * spec.stride + ky - spec.pad;
                if (iy < 0 || iy >= h) continue;
                for (int kx = 0; kx < kw; ++kx) {
                  const int ix = ox * spec.stride + kx - spec.pad;
                  if (ix < 0 || ix >= ww) continue;
                  dw.at4(o, ci, ky, kx) += g * x.at4(ni, ci, iy, ix);
                }
              }
          }
      db[oci] = bias_acc;
    }
  });

  // dx: parallel over (n, c) — disjoint writes per input channel plane.
  pool.parallel_for(static_cast<std::size_t>(n) * c, [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const int ni = static_cast<int>(idx) / c;
      const int ci = static_cast<int>(idx) % c;
      for (int o = 0; o < oc; ++o)
        for (int oy = 0; oy < oh; ++oy)
          for (int ox = 0; ox < ow; ++ox) {
            const float g = dy.at4(ni, o, oy, ox);
            for (int ky = 0; ky < kh; ++ky) {
              const int iy = oy * spec.stride + ky - spec.pad;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < kw; ++kx) {
                const int ix = ox * spec.stride + kx - spec.pad;
                if (ix < 0 || ix >= ww) continue;
                dx.at4(ni, ci, iy, ix) += g * w.at4(o, ci, ky, kx);
              }
            }
          }
    }
  });
}

Tensor dense_forward(const Tensor& x, const Tensor& w, const Tensor& b, ThreadPool& pool) {
  check_rank(x, 2, "dense x");
  check_rank(w, 2, "dense w");
  const int n = x.dim(0), f = x.dim(1), o = w.dim(1);
  if (w.dim(0) != f) throw std::invalid_argument("dense: feature mismatch");
  DNNPERF_TRACE_SPAN_VAR(span, "ref", "dense_fwd");
  if (span.active())
    span.set_args(std::move(util::trace::Args().add("n", n).add("f", f).add("o", o)).str());
  span.set_flops(2.0 * n * f * o);
  Tensor y({n, o});
  if (gemm_path() == GemmPath::packed) {
    // Seed every output row with the bias, then accumulate x*w through the
    // packed GEMM.
    for (int ni = 0; ni < n; ++ni)
      for (int oi = 0; oi < o; ++oi)
        y[static_cast<std::size_t>(ni) * o + oi] = b[static_cast<std::size_t>(oi)];
    gemm(x, w, y, pool, /*accumulate=*/true);
    return y;
  }
  pool.parallel_for(static_cast<std::size_t>(n), [&](std::size_t begin, std::size_t end) {
    for (std::size_t ni = begin; ni < end; ++ni) {
      for (int oi = 0; oi < o; ++oi) {
        float acc = b[static_cast<std::size_t>(oi)];
        for (int fi = 0; fi < f; ++fi)
          acc += x[ni * f + fi] * w[static_cast<std::size_t>(fi) * o + oi];
        y[ni * o + oi] = acc;
      }
    }
  });
  return y;
}

void dense_backward(const Tensor& x, const Tensor& w, const Tensor& dy, Tensor& dx, Tensor& dw,
                    Tensor& db, ThreadPool& pool) {
  const int n = x.dim(0), f = x.dim(1), o = w.dim(1);
  dx = Tensor::zeros(x.shape());
  dw = Tensor::zeros(w.shape());
  db = Tensor::zeros({o});
  for (int ni = 0; ni < n; ++ni)
    for (int oi = 0; oi < o; ++oi)
      db[static_cast<std::size_t>(oi)] += dy[static_cast<std::size_t>(ni) * o + oi];
  if (gemm_path() == GemmPath::packed) {
    // dW [F,O] = X^T [F,N] * dY [N,O]; X is stored [N,F], i.e. already the
    // k-major transposed-A layout gemm_at packs from.
    gemm_at(x, dy, dw, pool);
  } else {
    pool.parallel_for(static_cast<std::size_t>(f), [&](std::size_t begin, std::size_t end) {
      for (std::size_t fi = begin; fi < end; ++fi)
        for (int ni = 0; ni < n; ++ni) {
          const float xv = x[static_cast<std::size_t>(ni) * f + fi];
          for (int oi = 0; oi < o; ++oi)
            dw[fi * o + oi] += xv * dy[static_cast<std::size_t>(ni) * o + oi];
        }
    });
  }
  pool.parallel_for(static_cast<std::size_t>(n), [&](std::size_t begin, std::size_t end) {
    for (std::size_t ni = begin; ni < end; ++ni)
      for (int fi = 0; fi < f; ++fi) {
        float acc = 0.0f;
        for (int oi = 0; oi < o; ++oi)
          acc += dy[ni * o + oi] * w[static_cast<std::size_t>(fi) * o + oi];
        dx[ni * f + fi] = acc;
      }
  });
}

Tensor relu_forward(const Tensor& x, ThreadPool& pool) {
  Tensor y(x.shape());
  pool.parallel_for(x.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  });
  return y;
}

Tensor relu_backward(const Tensor& x, const Tensor& dy, ThreadPool& pool) {
  Tensor dx(x.shape());
  pool.parallel_for(x.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
  });
  return dx;
}

Tensor maxpool_forward(const Tensor& x, int k, int stride, Tensor& argmax, ThreadPool& pool) {
  check_rank(x, 4, "maxpool x");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = out_dim(h, k, stride, 0);
  const int ow = out_dim(w, k, stride, 0);
  DNNPERF_TRACE_SPAN_VAR(span, "ref", "maxpool_fwd");
  if (span.active())
    span.set_args(std::move(util::trace::Args().add("n", n).add("c", c).add("k", k)).str());
  Tensor y({n, c, oh, ow});
  argmax = Tensor::zeros({n, c, oh, ow});
  pool.parallel_for(static_cast<std::size_t>(n) * c, [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const int ni = static_cast<int>(idx) / c;
      const int ci = static_cast<int>(idx) % c;
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (int ky = 0; ky < k; ++ky)
            for (int kx = 0; kx < k; ++kx) {
              const int iy = oy * stride + ky;
              const int ix = ox * stride + kx;
              const float v = x.at4(ni, ci, iy, ix);
              if (v > best) {
                best = v;
                best_idx = ((static_cast<std::size_t>(ni) * c + ci) * h + iy) * w + ix;
              }
            }
          y.at4(ni, ci, oy, ox) = best;
          argmax.at4(ni, ci, oy, ox) = static_cast<float>(best_idx);
        }
    }
  });
  return y;
}

Tensor maxpool_backward(const Tensor& x, const Tensor& dy, const Tensor& argmax,
                        ThreadPool& pool) {
  Tensor dx = Tensor::zeros(x.shape());
  // Serial scatter: argmax indices may collide across output cells only
  // within one (n,c) plane; parallelize over planes.
  const int n = x.dim(0), c = x.dim(1);
  const std::size_t plane_out = dy.size() / (static_cast<std::size_t>(n) * c);
  pool.parallel_for(static_cast<std::size_t>(n) * c, [&](std::size_t begin, std::size_t end) {
    for (std::size_t plane = begin; plane < end; ++plane)
      for (std::size_t j = 0; j < plane_out; ++j) {
        const std::size_t src = plane * plane_out + j;
        dx[static_cast<std::size_t>(argmax[src])] += dy[src];
      }
  });
  return dx;
}

Tensor global_avg_pool_forward(const Tensor& x) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor y({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int ni = 0; ni < n; ++ni)
    for (int ci = 0; ci < c; ++ci) {
      float acc = 0.0f;
      for (int hy = 0; hy < h; ++hy)
        for (int wx = 0; wx < w; ++wx) acc += x.at4(ni, ci, hy, wx);
      y[static_cast<std::size_t>(ni) * c + ci] = acc * inv;
    }
  return y;
}

Tensor global_avg_pool_backward(const Tensor& x, const Tensor& dy) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor dx(x.shape());
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int ni = 0; ni < n; ++ni)
    for (int ci = 0; ci < c; ++ci) {
      const float g = dy[static_cast<std::size_t>(ni) * c + ci] * inv;
      for (int hy = 0; hy < h; ++hy)
        for (int wx = 0; wx < w; ++wx) dx.at4(ni, ci, hy, wx) = g;
    }
  return dx;
}

Tensor batchnorm_forward(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps,
                         BatchNormCache& cache) {
  check_rank(x, 4, "batchnorm x");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const float m = static_cast<float>(n * h * w);
  Tensor y(x.shape());
  cache.x_hat = Tensor(x.shape());
  cache.inv_std.assign(static_cast<std::size_t>(c), 0.0f);
  for (int ci = 0; ci < c; ++ci) {
    float mean = 0.0f;
    for (int ni = 0; ni < n; ++ni)
      for (int hy = 0; hy < h; ++hy)
        for (int wx = 0; wx < w; ++wx) mean += x.at4(ni, ci, hy, wx);
    mean /= m;
    float var = 0.0f;
    for (int ni = 0; ni < n; ++ni)
      for (int hy = 0; hy < h; ++hy)
        for (int wx = 0; wx < w; ++wx) {
          const float d = x.at4(ni, ci, hy, wx) - mean;
          var += d * d;
        }
    var /= m;
    const float inv_std = 1.0f / std::sqrt(var + eps);
    cache.inv_std[static_cast<std::size_t>(ci)] = inv_std;
    const float g = gamma[static_cast<std::size_t>(ci)];
    const float b = beta[static_cast<std::size_t>(ci)];
    for (int ni = 0; ni < n; ++ni)
      for (int hy = 0; hy < h; ++hy)
        for (int wx = 0; wx < w; ++wx) {
          const float xh = (x.at4(ni, ci, hy, wx) - mean) * inv_std;
          cache.x_hat.at4(ni, ci, hy, wx) = xh;
          y.at4(ni, ci, hy, wx) = g * xh + b;
        }
  }
  return y;
}

void batchnorm_backward(const Tensor& dy, const BatchNormCache& cache, const Tensor& gamma,
                        Tensor& dx, Tensor& dgamma, Tensor& dbeta) {
  const int n = dy.dim(0), c = dy.dim(1), h = dy.dim(2), w = dy.dim(3);
  const float m = static_cast<float>(n * h * w);
  dx = Tensor(dy.shape());
  dgamma = Tensor::zeros({c});
  dbeta = Tensor::zeros({c});
  for (int ci = 0; ci < c; ++ci) {
    float sum_dy = 0.0f;
    float sum_dy_xhat = 0.0f;
    for (int ni = 0; ni < n; ++ni)
      for (int hy = 0; hy < h; ++hy)
        for (int wx = 0; wx < w; ++wx) {
          const float g = dy.at4(ni, ci, hy, wx);
          sum_dy += g;
          sum_dy_xhat += g * cache.x_hat.at4(ni, ci, hy, wx);
        }
    dgamma[static_cast<std::size_t>(ci)] = sum_dy_xhat;
    dbeta[static_cast<std::size_t>(ci)] = sum_dy;
    const float gam = gamma[static_cast<std::size_t>(ci)];
    const float inv_std = cache.inv_std[static_cast<std::size_t>(ci)];
    for (int ni = 0; ni < n; ++ni)
      for (int hy = 0; hy < h; ++hy)
        for (int wx = 0; wx < w; ++wx) {
          const float xh = cache.x_hat.at4(ni, ci, hy, wx);
          dx.at4(ni, ci, hy, wx) =
              gam * inv_std / m * (m * dy.at4(ni, ci, hy, wx) - sum_dy - xh * sum_dy_xhat);
        }
  }
}

float softmax_xent(const Tensor& logits, const std::vector<int>& labels, Tensor& dlogits) {
  check_rank(logits, 2, "softmax logits");
  const int n = logits.dim(0), k = logits.dim(1);
  if (labels.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("softmax_xent: labels size");
  dlogits = Tensor(logits.shape());
  float loss = 0.0f;
  for (int ni = 0; ni < n; ++ni) {
    const std::size_t base = static_cast<std::size_t>(ni) * k;
    float mx = logits[base];
    for (int ki = 1; ki < k; ++ki) mx = std::max(mx, logits[base + ki]);
    float denom = 0.0f;
    for (int ki = 0; ki < k; ++ki) denom += std::exp(logits[base + ki] - mx);
    const int label = labels[static_cast<std::size_t>(ni)];
    if (label < 0 || label >= k) throw std::invalid_argument("softmax_xent: bad label");
    loss -= (logits[base + label] - mx) - std::log(denom);
    for (int ki = 0; ki < k; ++ki) {
      const float p = std::exp(logits[base + ki] - mx) / denom;
      dlogits[base + ki] = (p - (ki == label ? 1.0f : 0.0f)) / static_cast<float>(n);
    }
  }
  return loss / static_cast<float>(n);
}

}  // namespace dnnperf::ref
