#include "ref/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace dnnperf::ref {

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  if (shape_.empty() || shape_.size() > 4) throw std::invalid_argument("Tensor: rank 1..4 only");
  std::size_t n = 1;
  for (int d : shape_) {
    if (d <= 0) throw std::invalid_argument("Tensor: non-positive dimension");
    n *= static_cast<std::size_t>(d);
  }
  data_.assign(n, 0.0f);
}

Tensor Tensor::zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::randn(std::vector<int> shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor Tensor::reshaped(std::vector<int> shape) const {
  Tensor t(std::move(shape));
  if (t.size() != size()) throw std::invalid_argument("reshaped: element count mismatch");
  std::copy(data_.begin(), data_.end(), t.data_.begin());
  return t;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) os << (i ? "," : "") << shape_[i];
  os << ']';
  return os.str();
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace dnnperf::ref
