// Internal packed-GEMM machinery shared by ref/gemm.cpp and ref/conv_fast.cpp.
//
// This is the BLIS-style decomposition MKL-DNN executes: the operand matrices
// are packed into contiguous panels sized for the cache hierarchy, and a
// register-tiled microkernel sweeps MR x NR output tiles with all
// accumulators held in registers. The driver is templated on three functors
// so the same loop nest serves plain GEMM, transposed-A GEMM, and the
// implicit-GEMM convolution (where the A "matrix" is the im2col view of the
// input and is materialized only one MC x KC panel at a time):
//
//   PackA(dst, i0, mh, k0, kc)  pack rows [i0,i0+mh) x cols [k0,k0+kc) of A
//                               into MR-interleaved micro-panels, zero-padded
//                               to a multiple of MR rows;
//   PackB(dst, k0, kc, j0, nw)  pack the KC x NC block of B into
//                               NR-interleaved micro-panels, zero-padded;
//   Store(i, j, mh, nw, acc, first_k_block)
//                               commit one MR x NR accumulator tile to the
//                               output (only the top-left mh x nw entries are
//                               valid). `first_k_block` tells the sink
//                               whether to overwrite/initialize (fused bias
//                               adds live here) or accumulate.
//
// Not a public API: everything lives in dnnperf::ref::detail.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "ref/threadpool.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace dnnperf::ref::detail {

// Register tile. 6x16 keeps 12 ymm accumulators + 2 B vectors + 1 broadcast
// in the 16 ymm registers when AVX2/FMA is available (the DNNPERF_NATIVE
// build); the portable fallback uses 8x8 which compilers vectorize well at
// 128-bit.
#if defined(__AVX2__) && defined(__FMA__)
inline constexpr int kMR = 6;
inline constexpr int kNR = 16;
#else
inline constexpr int kMR = 8;
inline constexpr int kNR = 8;
#endif

// Cache blocking: the A panel (MC x KC floats) and B panel (KC x NC floats)
// are the only scratch the driver allocates, one pair per thread.
inline constexpr int kKC = 256;
inline constexpr int kMC = (96 / kMR) * kMR;  // multiple of MR
inline constexpr int kNC = (256 / kNR) * kNR;  // multiple of NR

/// acc[MR*NR] = sum_{kk<kc} a_panel[kk*MR + i] * b_panel[kk*NR + j].
/// Overwrites acc (no read-modify-write): k-block accumulation is the
/// Store sink's business.
inline void micro_kernel(int kc, const float* a, const float* b, float* acc) {
#if defined(__AVX2__) && defined(__FMA__)
  __m256 c[kMR][2];
  for (int i = 0; i < kMR; ++i) {
    c[i][0] = _mm256_setzero_ps();
    c[i][1] = _mm256_setzero_ps();
  }
  for (int kk = 0; kk < kc; ++kk, a += kMR, b += kNR) {
    const __m256 b0 = _mm256_loadu_ps(b);
    const __m256 b1 = _mm256_loadu_ps(b + 8);
    for (int i = 0; i < kMR; ++i) {
      const __m256 av = _mm256_broadcast_ss(a + i);
      c[i][0] = _mm256_fmadd_ps(av, b0, c[i][0]);
      c[i][1] = _mm256_fmadd_ps(av, b1, c[i][1]);
    }
  }
  for (int i = 0; i < kMR; ++i) {
    _mm256_storeu_ps(acc + i * kNR, c[i][0]);
    _mm256_storeu_ps(acc + i * kNR + 8, c[i][1]);
  }
#else
  float c[kMR * kNR] = {};
  for (int kk = 0; kk < kc; ++kk, a += kMR, b += kNR)
    for (int i = 0; i < kMR; ++i) {
      const float av = a[i];
      for (int j = 0; j < kNR; ++j) c[i * kNR + j] += av * b[j];
    }
  for (int i = 0; i < kMR * kNR; ++i) acc[i] = c[i];
#endif
}

/// Blocked, packed GEMM loop nest: C[m,n] (+)= A[m,k] * B[k,n] with A/B/C
/// abstracted behind the functors above. Parallel over the MC x NC macro-tile
/// grid with grain-aware chunking so small problems run inline.
template <typename PackA, typename PackB, typename Store>
void packed_gemm(int m, int n, int k, const PackA& pack_a, const PackB& pack_b,
                 const Store& store, ThreadPool& pool) {
  const int mtiles = (m + kMC - 1) / kMC;
  const int ntiles = (n + kNC - 1) / kNC;
  const int ktiles = (k + kKC - 1) / kKC;
  const std::size_t cells = static_cast<std::size_t>(mtiles) * ntiles;

  // One macro-tile costs ~2*MC*NC*k flops; keep at least ~4 MFLOP per chunk
  // so dispatch overhead stays under ~0.1% even for skinny matrices.
  const double cell_flops = 2.0 * kMC * kNC * std::max(k, 1);
  const std::size_t grain =
      std::max<std::size_t>(1, static_cast<std::size_t>(4.0e6 / cell_flops) + 1);

  pool.parallel_for(cells, grain, [&](std::size_t cell_begin, std::size_t cell_end) {
    // Per-thread panel pair — the only scratch memory of the whole GEMM.
    thread_local std::vector<float> a_panel;
    thread_local std::vector<float> b_panel;
    a_panel.resize(static_cast<std::size_t>(kMC) * kKC);
    b_panel.resize(static_cast<std::size_t>(kKC) * kNC);

    for (std::size_t cell = cell_begin; cell < cell_end; ++cell) {
      // n-major cell order: adjacent cells in a chunk share the B column.
      const int mt = static_cast<int>(cell % mtiles);
      const int nt = static_cast<int>(cell / mtiles);
      const int i0 = mt * kMC, mh = std::min(kMC, m - i0);
      const int j0 = nt * kNC, nw = std::min(kNC, n - j0);
      const int mpanels = (mh + kMR - 1) / kMR;
      const int npanels = (nw + kNR - 1) / kNR;

      for (int kt = 0; kt < ktiles; ++kt) {
        const int k0 = kt * kKC;
        const int kc = std::min(kKC, k - k0);
        pack_b(b_panel.data(), k0, kc, j0, nw);
        pack_a(a_panel.data(), i0, mh, k0, kc);
        const bool first = (kt == 0);

        for (int jp = 0; jp < npanels; ++jp) {
          const float* bp = b_panel.data() + static_cast<std::size_t>(jp) * kc * kNR;
          for (int ip = 0; ip < mpanels; ++ip) {
            const float* ap = a_panel.data() + static_cast<std::size_t>(ip) * kc * kMR;
            float acc[kMR * kNR];
            micro_kernel(kc, ap, bp, acc);
            store(i0 + ip * kMR, j0 + jp * kNR, std::min(kMR, mh - ip * kMR),
                  std::min(kNR, nw - jp * kNR), acc, first);
          }
        }
      }
    }
  });
}

/// Packs a row-major B block [k0,k0+kc) x [j0,j0+nw) into NR-interleaved
/// panels (the standard PackB for both gemm and gemm_at).
inline void pack_b_rowmajor(float* dst, const float* b, int ldb, int k0, int kc, int j0,
                            int nw) {
  const int npanels = (nw + kNR - 1) / kNR;
  for (int jp = 0; jp < npanels; ++jp) {
    float* panel = dst + static_cast<std::size_t>(jp) * kc * kNR;
    const int jbase = j0 + jp * kNR;
    const int w = std::min(kNR, j0 + nw - jbase);
    for (int kk = 0; kk < kc; ++kk) {
      const float* src = b + static_cast<std::size_t>(k0 + kk) * ldb + jbase;
      float* out = panel + static_cast<std::size_t>(kk) * kNR;
      for (int c = 0; c < w; ++c) out[c] = src[c];
      for (int c = w; c < kNR; ++c) out[c] = 0.0f;
    }
  }
}

}  // namespace dnnperf::ref::detail
