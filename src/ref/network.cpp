#include "ref/network.hpp"

namespace dnnperf::ref {

Tensor Network::forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& layer : layers_) cur = layer->forward(cur);
  return cur;
}

void Network::backward(const Tensor& dy) {
  Tensor cur = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) cur = (*it)->backward(cur);
}

std::vector<ParamRef> Network::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_)
    for (auto& p : layer->params()) out.push_back(p);
  return out;
}

std::size_t Network::num_parameters() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.value->size();
  return n;
}

float Network::train_step(const Tensor& x, const std::vector<int>& labels) {
  const Tensor logits = forward(x);
  Tensor dlogits;
  const float loss = softmax_xent(logits, labels, dlogits);
  backward(dlogits);
  return loss;
}

void SgdOptimizer::step(const std::vector<ParamRef>& params) const {
  for (const auto& p : params)
    for (std::size_t i = 0; i < p.value->size(); ++i) (*p.value)[i] -= lr_ * (*p.grad)[i];
}

Network make_tiny_cnn(int in_c, int size, int classes, ThreadPool& pool, util::Rng& rng,
                      bool batch_norm) {
  Network net;
  net.add<Conv2dLayer>("conv1", in_c, 8, 3, ConvSpec{1, 1}, pool, rng);
  if (batch_norm) net.add<BatchNormLayer>("bn1", 8);
  net.add<ReLULayer>("relu1", pool);
  net.add<MaxPoolLayer>("pool1", 2, 2, pool);
  net.add<Conv2dLayer>("conv2", 8, 16, 3, ConvSpec{1, 1}, pool, rng);
  if (batch_norm) net.add<BatchNormLayer>("bn2", 16);
  net.add<ReLULayer>("relu2", pool);
  net.add<GlobalAvgPoolLayer>("gap");
  net.add<DenseLayer>("fc", 16, classes, pool, rng);
  (void)size;
  return net;
}

SyntheticBatch synthetic_batch(int n, int c, int size, int classes, util::Rng& rng) {
  SyntheticBatch batch{Tensor({n, c, size, size}), {}};
  for (std::size_t i = 0; i < batch.images.size(); ++i)
    batch.images[i] = static_cast<float>(rng.normal(0.0, 1.0));
  batch.labels.resize(static_cast<std::size_t>(n));
  for (auto& l : batch.labels) l = static_cast<int>(rng.uniform_int(0, classes - 1));
  return batch;
}

}  // namespace dnnperf::ref
