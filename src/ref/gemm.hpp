// Blocked single-precision GEMM and the im2col/col2im transforms — the
// standard lowering that turns convolution into matrix multiplication
// (what MKL-DNN and cuDNN-era frameworks actually execute, and the reason
// GEMM efficiency dominates the paper's kernel-efficiency calibration).
#pragma once

#include "ref/tensor.hpp"
#include "ref/threadpool.hpp"

namespace dnnperf::ref {

/// C[m,n] = A[m,k] * B[k,n] (+ C if accumulate). Cache-blocked, row-panel
/// parallel. All matrices dense row-major.
void gemm(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool& pool,
          bool accumulate = false);

/// C[m,n] = A^T[k,m]^T * B[k,n]: multiplies using A stored transposed
/// (k-major) — used for the weight-gradient GEMM.
void gemm_at(const Tensor& a_t, const Tensor& b, Tensor& c, ThreadPool& pool,
             bool accumulate = false);

/// im2col: x [N,C,H,W] -> columns [N*OH*OW, C*KH*KW] for a kh x kw kernel
/// with the given stride/pad. Out-of-bounds taps produce zeros.
Tensor im2col(const Tensor& x, int kh, int kw, int stride, int pad, ThreadPool& pool);

/// col2im: scatter-add the column gradient back to input layout (inverse of
/// im2col for backward).
Tensor col2im(const Tensor& cols, int n, int c, int h, int w, int kh, int kw, int stride,
              int pad, ThreadPool& pool);

}  // namespace dnnperf::ref
