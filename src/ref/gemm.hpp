// Single-precision GEMM and the im2col/col2im transforms — the standard
// lowering that turns convolution into matrix multiplication (what MKL-DNN
// and cuDNN-era frameworks actually execute, and the reason GEMM efficiency
// dominates the paper's kernel-efficiency calibration).
//
// Two execution paths exist:
//   GemmPath::naive  — the original cache-blocked scalar loop nest. Kept as
//                      the cross-validation oracle and as the "unoptimized
//                      framework kernel" baseline in bench/micro_kernels.
//   GemmPath::packed — BLIS-style packed panels + register-tiled microkernel
//                      (see ref/gemm_packed.hpp), parallel over the MC x NC
//                      macro-tile grid. The process-wide default.
#pragma once

#include "ref/tensor.hpp"
#include "ref/threadpool.hpp"

namespace dnnperf::ref {

/// Which GEMM implementation the refdnn kernels execute.
enum class GemmPath { naive, packed };

/// Process-wide path used by the overloads that do not take an explicit
/// GemmPath (and by the conv/dense layers). Defaults to GemmPath::packed.
GemmPath gemm_path();
void set_gemm_path(GemmPath path);

/// RAII path override for tests and benchmarks.
class ScopedGemmPath {
 public:
  explicit ScopedGemmPath(GemmPath path) : saved_(gemm_path()) { set_gemm_path(path); }
  ~ScopedGemmPath() { set_gemm_path(saved_); }
  ScopedGemmPath(const ScopedGemmPath&) = delete;
  ScopedGemmPath& operator=(const ScopedGemmPath&) = delete;

 private:
  GemmPath saved_;
};

/// C[m,n] = A[m,k] * B[k,n] (+ C if accumulate). All matrices dense
/// row-major. The 5-argument form uses gemm_path().
void gemm(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool& pool,
          bool accumulate = false);
void gemm(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool& pool, bool accumulate,
          GemmPath path);

/// C[m,n] = A^T[k,m]^T * B[k,n]: multiplies using A stored transposed
/// (k-major) — used for the weight-gradient GEMM.
void gemm_at(const Tensor& a_t, const Tensor& b, Tensor& c, ThreadPool& pool,
             bool accumulate = false);
void gemm_at(const Tensor& a_t, const Tensor& b, Tensor& c, ThreadPool& pool,
             bool accumulate, GemmPath path);

/// im2col: x [N,C,H,W] -> columns [N*OH*OW, C*KH*KW] for a kh x kw kernel
/// with the given stride/pad. Out-of-bounds taps produce zeros.
Tensor im2col(const Tensor& x, int kh, int kw, int stride, int pad, ThreadPool& pool);

/// col2im: scatter-add the column gradient back to input layout (inverse of
/// im2col for backward).
Tensor col2im(const Tensor& cols, int n, int c, int h, int w, int kh, int kw, int stride,
              int pad, ThreadPool& pool);

}  // namespace dnnperf::ref
