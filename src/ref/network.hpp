// refdnn Network: a sequential container with a training step (forward,
// softmax cross-entropy, backward) and a plain SGD optimizer — the real
// executable counterpart of the training loop the performance model times.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "ref/layers.hpp"

namespace dnnperf::ref {

class Network {
 public:
  /// Adds a layer; returns a reference for optional direct access.
  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& x);
  /// Backpropagates dy through all layers, filling parameter gradients.
  void backward(const Tensor& dy);

  std::vector<ParamRef> params();
  std::size_t num_layers() const { return layers_.size(); }
  std::size_t num_parameters();

  /// One training step: forward, mean softmax cross-entropy against labels,
  /// backward. Returns the loss; gradients are left in the layers.
  float train_step(const Tensor& x, const std::vector<int>& labels);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Plain SGD: p -= lr * g for every parameter.
class SgdOptimizer {
 public:
  explicit SgdOptimizer(float lr) : lr_(lr) {}
  void step(const std::vector<ParamRef>& params) const;
  float learning_rate() const { return lr_; }

 private:
  float lr_;
};

/// A small conv net (conv[-bn]-relu-pool x2, dense head) for tests/examples:
/// input [N, in_c, size, size], `classes` outputs. Note that with
/// batch_norm=true, data-parallel training is no longer bitwise equivalent
/// to single-process training (BN statistics are per-shard, as in the real
/// frameworks); pass false where exact SP==MP equivalence is asserted.
Network make_tiny_cnn(int in_c, int size, int classes, ThreadPool& pool, util::Rng& rng,
                      bool batch_norm = true);

/// Deterministic synthetic dataset (the pytorch_synthetic_benchmark
/// equivalent): random images and labels.
struct SyntheticBatch {
  Tensor images;
  std::vector<int> labels;
};
SyntheticBatch synthetic_batch(int n, int c, int size, int classes, util::Rng& rng);

}  // namespace dnnperf::ref
