// refdnn optimizers beyond plain SGD: momentum SGD (what the paper's
// tf_cnn_benchmarks runs use) and Adam. Stateful per-parameter slots keyed
// by the ParamRef order, which is stable for a fixed Network.
#pragma once

#include <vector>

#include "ref/layers.hpp"

namespace dnnperf::ref {

/// SGD with classical momentum: v = mu * v + g; p -= lr * v.
class MomentumSgd {
 public:
  MomentumSgd(float lr, float momentum);

  /// Applies one update. The params vector must be the same (same order,
  /// same shapes) on every call; state slots are allocated lazily.
  void step(const std::vector<ParamRef>& params);

  float learning_rate() const { return lr_; }
  float momentum() const { return momentum_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba): bias-corrected first/second moments.
class Adam {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  void step(const std::vector<ParamRef>& params);

  float learning_rate() const { return lr_; }
  int steps_taken() const { return t_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace dnnperf::ref
