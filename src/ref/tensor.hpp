// refdnn: a small, real tensor type (fp32, row-major, up to 4-D) backing the
// executable mini-framework used for correctness tests and runnable
// examples. This is the numeric ground truth for the training semantics the
// performance model assumes (e.g. MP data-parallel == SP gradients).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dnnperf::ref {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape);
  /// He-style normal init scaled by fan-in (deterministic given rng).
  static Tensor randn(std::vector<int> shape, util::Rng& rng, float stddev = 1.0f);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const { return shape_.at(static_cast<std::size_t>(i)); }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::size_t size() const { return data_.size(); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 4-D accessor (N,C,H,W); bounds checked only in debug builds.
  float& at4(int n, int c, int h, int w) {
    return data_[index4(n, c, h, w)];
  }
  float at4(int n, int c, int h, int w) const { return data_[index4(n, c, h, w)]; }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Reshape preserving element count; throws std::invalid_argument otherwise.
  Tensor reshaped(std::vector<int> shape) const;

  std::string shape_str() const;

 private:
  std::size_t index4(int n, int c, int h, int w) const {
    return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Max |a - b| over all elements; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace dnnperf::ref
