#include "ref/threadpool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace dnnperf::ref {

namespace {

/// pool_chunks_total counts chunks actually dispatched (any thread);
/// pool_inline_total counts parallel_for calls that short-circuited to a
/// serial body run (re-entrant, single-thread, or under-grain).
const util::metrics::Counter& chunk_counter() {
  static const auto c =
      util::metrics::counter("pool_chunks_total", "parallel_for chunks dispatched");
  return c;
}

const util::metrics::Counter& inline_counter() {
  static const auto c = util::metrics::counter(
      "pool_inline_total", "parallel_for calls run inline (serial short-circuit)");
  return c;
}

/// Pool whose parallel_for body is executing on this thread, if any. A
/// nested parallel_for on the same pool would interleave with the outer
/// loop's shared next_/total_/body_ dispatch state, so it must run serially;
/// dispatching to a *different* pool from inside a body stays parallel.
thread_local const ThreadPool* tl_executing_pool = nullptr;

struct ExecutingGuard {
  const ThreadPool* prev;
  explicit ExecutingGuard(const ThreadPool* pool) : prev(tl_executing_pool) {
    tl_executing_pool = pool;
  }
  ~ExecutingGuard() { tl_executing_pool = prev; }
};

void run_chunk(const ThreadPool* pool,
               const std::function<void(std::size_t, std::size_t)>& body, std::size_t begin,
               std::size_t end) {
  ExecutingGuard guard(pool);
  chunk_counter().inc();
  DNNPERF_TRACE_SPAN_VAR(span, "pool", "chunk");
  if (span.active())
    span.set_args(std::move(util::trace::Args()
                                .add("begin", static_cast<std::int64_t>(begin))
                                .add("end", static_cast<std::int64_t>(end)))
                      .str());
  body(begin, end);
}

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  if (threads < 1) throw std::invalid_argument("ThreadPool: threads < 1");
  for (int i = 1; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    std::unique_lock<std::mutex> lock(mutex_);
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    ++active_;
    while (next_ < total_) {
      const std::size_t begin = next_;
      const std::size_t end = std::min(total_, begin + chunk_);
      next_ = end;
      lock.unlock();
      try {
        run_chunk(this, *body_, begin, end);
      } catch (...) {
        lock.lock();
        if (!error_) error_ = std::current_exception();
        continue;
      }
      lock.lock();
    }
    --active_;
    if (active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(n, 1, body);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t min_grain,
                              const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  // Re-entrant call from inside one of our own chunks: the shared dispatch
  // state is owned by the outer loop, so execute serially right here.
  if (tl_executing_pool == this) {
    inline_counter().inc();
    body(0, n);
    return;
  }
  if (threads_ == 1 || n <= std::max<std::size_t>(min_grain, 1)) {
    inline_counter().inc();
    body(0, n);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  body_ = &body;
  total_ = n;
  chunk_ = std::max({std::size_t{1}, n / (static_cast<std::size_t>(threads_) * 4), min_grain});
  next_ = 0;
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();

  // The calling thread participates too.
  while (next_ < total_) {
    const std::size_t begin = next_;
    const std::size_t end = std::min(total_, begin + chunk_);
    next_ = end;
    lock.unlock();
    try {
      run_chunk(this, body, begin, end);
    } catch (...) {
      lock.lock();
      if (!error_) error_ = std::current_exception();
      continue;
    }
    lock.lock();
  }
  done_cv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
}

}  // namespace dnnperf::ref
