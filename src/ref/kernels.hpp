// refdnn numeric kernels: straightforward, correct fp32 implementations of
// the forward and backward ops the zoo models are made of. Parallelized
// over the output with ThreadPool::parallel_for. All tensors are NCHW.
//
// These are validated by finite-difference gradient checks in the tests and
// power the runnable training examples. The direct conv kernels are
// intentionally simple and serve as the numeric oracle; the matmul-shaped
// ops (dense, and conv via the layers) dispatch on ref::gemm_path() to the
// packed register-tiled GEMM in ref/gemm.hpp when it is GemmPath::packed
// (the default) — see DESIGN.md §6 for measured GFLOP/s.
#pragma once

#include "ref/tensor.hpp"
#include "ref/threadpool.hpp"

namespace dnnperf::ref {

struct ConvSpec {
  int stride = 1;
  int pad = 0;
};

/// y = conv2d(x [N,C,H,W], w [OC,C,KH,KW]) + b [OC]
Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b, ConvSpec spec,
                      ThreadPool& pool);
/// Gradients wrt x, w, b given dy; x/w are the forward inputs.
void conv2d_backward(const Tensor& x, const Tensor& w, const Tensor& dy, ConvSpec spec,
                     Tensor& dx, Tensor& dw, Tensor& db, ThreadPool& pool);

/// y = x [N,F] * w [F,O] + b [O]
Tensor dense_forward(const Tensor& x, const Tensor& w, const Tensor& b, ThreadPool& pool);
void dense_backward(const Tensor& x, const Tensor& w, const Tensor& dy, Tensor& dx, Tensor& dw,
                    Tensor& db, ThreadPool& pool);

Tensor relu_forward(const Tensor& x, ThreadPool& pool);
/// dx = dy where x > 0.
Tensor relu_backward(const Tensor& x, const Tensor& dy, ThreadPool& pool);

/// Max pooling; `argmax` (same shape as y, flat indices into x) is produced
/// for the backward pass.
Tensor maxpool_forward(const Tensor& x, int k, int stride, Tensor& argmax, ThreadPool& pool);
Tensor maxpool_backward(const Tensor& x, const Tensor& dy, const Tensor& argmax,
                        ThreadPool& pool);

/// Global average pool: [N,C,H,W] -> [N,C].
Tensor global_avg_pool_forward(const Tensor& x);
Tensor global_avg_pool_backward(const Tensor& x, const Tensor& dy);

/// Batch normalization over (N,H,W) per channel, training mode.
struct BatchNormCache {
  Tensor x_hat;  ///< normalized input
  std::vector<float> inv_std;
};
Tensor batchnorm_forward(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps,
                         BatchNormCache& cache);
void batchnorm_backward(const Tensor& dy, const BatchNormCache& cache, const Tensor& gamma,
                        Tensor& dx, Tensor& dgamma, Tensor& dbeta);

/// Mean softmax cross-entropy over the batch; logits [N,K], labels size N.
/// dlogits gets (softmax - onehot) / N.
float softmax_xent(const Tensor& logits, const std::vector<int>& labels, Tensor& dlogits);

}  // namespace dnnperf::ref
