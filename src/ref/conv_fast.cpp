#include "ref/conv_fast.hpp"

#include <stdexcept>

#include "ref/gemm.hpp"

namespace dnnperf::ref {

namespace {

int out_dim(int in, int k, int stride, int pad) {
  const int out = (in + 2 * pad - k) / stride + 1;
  if (out <= 0) throw std::invalid_argument("conv_fast: output dim <= 0");
  return out;
}

/// Weights [OC, C, KH, KW] -> W' [C*KH*KW, OC] (GEMM B operand).
Tensor repack_weights(const Tensor& w) {
  const int oc = w.dim(0), ckk = w.dim(1) * w.dim(2) * w.dim(3);
  Tensor wt({ckk, oc});
  for (int o = 0; o < oc; ++o)
    for (int j = 0; j < ckk; ++j)
      wt[static_cast<std::size_t>(j) * oc + o] =
          w[static_cast<std::size_t>(o) * ckk + j];
  return wt;
}

}  // namespace

Tensor conv2d_forward_gemm(const Tensor& x, const Tensor& w, const Tensor& b, ConvSpec spec,
                           ThreadPool& pool) {
  if (x.rank() != 4 || w.rank() != 4) throw std::invalid_argument("conv_fast: rank-4 inputs");
  if (w.dim(1) != x.dim(1)) throw std::invalid_argument("conv_fast: channel mismatch");
  const int n = x.dim(0), oc = w.dim(0);
  const int oh = out_dim(x.dim(2), w.dim(2), spec.stride, spec.pad);
  const int ow = out_dim(x.dim(3), w.dim(3), spec.stride, spec.pad);
  if (b.size() != static_cast<std::size_t>(oc))
    throw std::invalid_argument("conv_fast: bias size");

  const Tensor cols = im2col(x, w.dim(2), w.dim(3), spec.stride, spec.pad, pool);
  const Tensor wt = repack_weights(w);
  Tensor rows({n * oh * ow, oc});
  gemm(cols, wt, rows, pool);

  // rows [N*OH*OW, OC] -> y [N, OC, OH, OW], adding bias.
  Tensor y({n, oc, oh, ow});
  pool.parallel_for(static_cast<std::size_t>(n) * oh * ow,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t idx = begin; idx < end; ++idx) {
                        const int ni = static_cast<int>(idx / (static_cast<std::size_t>(oh) * ow));
                        const int rem = static_cast<int>(idx % (static_cast<std::size_t>(oh) * ow));
                        const int oy = rem / ow;
                        const int ox = rem % ow;
                        const float* row = rows.data() + idx * static_cast<std::size_t>(oc);
                        for (int o = 0; o < oc; ++o)
                          y.at4(ni, o, oy, ox) = row[o] + b[static_cast<std::size_t>(o)];
                      }
                    });
  return y;
}

void conv2d_backward_gemm(const Tensor& x, const Tensor& w, const Tensor& dy, ConvSpec spec,
                          Tensor& dx, Tensor& dw, Tensor& db, ThreadPool& pool) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const int oc = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int oh = dy.dim(2), ow = dy.dim(3);
  const int ckk = c * kh * kw;
  const std::size_t rows_n = static_cast<std::size_t>(n) * oh * ow;

  // dY [N,OC,OH,OW] -> row-major [N*OH*OW, OC].
  Tensor dy_rows({static_cast<int>(rows_n), oc});
  pool.parallel_for(rows_n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const int ni = static_cast<int>(idx / (static_cast<std::size_t>(oh) * ow));
      const int rem = static_cast<int>(idx % (static_cast<std::size_t>(oh) * ow));
      const int oy = rem / ow;
      const int ox = rem % ow;
      float* row = dy_rows.data() + idx * static_cast<std::size_t>(oc);
      for (int o = 0; o < oc; ++o) row[o] = dy.at4(ni, o, oy, ox);
    }
  });

  // db[o] = sum of dY over (n, oh, ow).
  db = Tensor::zeros({oc});
  for (std::size_t i = 0; i < rows_n; ++i)
    for (int o = 0; o < oc; ++o)
      db[static_cast<std::size_t>(o)] += dy_rows[i * static_cast<std::size_t>(oc) + o];

  // dW' [CKK, OC] = cols^T [CKK, rows] * dY_rows [rows, OC].
  const Tensor cols = im2col(x, kh, kw, spec.stride, spec.pad, pool);
  Tensor dwt({ckk, oc});
  gemm_at(cols, dy_rows, dwt, pool);
  // Repack dW' -> dW [OC, C, KH, KW].
  dw = Tensor::zeros(w.shape());
  for (int o = 0; o < oc; ++o)
    for (int j = 0; j < ckk; ++j)
      dw[static_cast<std::size_t>(o) * ckk + j] = dwt[static_cast<std::size_t>(j) * oc + o];

  // dcols [rows, CKK] = dY_rows [rows, OC] * W'^T; W'^T is W viewed [OC, CKK].
  Tensor w_flat = w.reshaped({oc, ckk});
  Tensor dcols({static_cast<int>(rows_n), ckk});
  gemm(dy_rows, w_flat, dcols, pool);
  dx = col2im(dcols, n, c, h, ww, kh, kw, spec.stride, spec.pad, pool);
}

}  // namespace dnnperf::ref
