#include "ref/conv_fast.hpp"

#include <stdexcept>
#include <vector>

#include "ref/gemm_packed.hpp"
#include "util/trace.hpp"

namespace dnnperf::ref {

namespace {

int out_dim(int in, int k, int stride, int pad) {
  const int out = (in + 2 * pad - k) / stride + 1;
  if (out <= 0) throw std::invalid_argument("conv_fast: output dim <= 0");
  return out;
}

/// Weights [OC, C, KH, KW] -> W' [C*KH*KW, OC] (GEMM B operand).
Tensor repack_weights(const Tensor& w) {
  const int oc = w.dim(0), ckk = w.dim(1) * w.dim(2) * w.dim(3);
  Tensor wt({ckk, oc});
  for (int o = 0; o < oc; ++o)
    for (int j = 0; j < ckk; ++j)
      wt[static_cast<std::size_t>(j) * oc + o] =
          w[static_cast<std::size_t>(o) * ckk + j];
  return wt;
}

/// Materialized im2col + GEMM + bias/reorder pass — the oracle path.
Tensor forward_gemm_naive(const Tensor& x, const Tensor& w, const Tensor& b, ConvSpec spec,
                          ThreadPool& pool) {
  const int n = x.dim(0), oc = w.dim(0);
  const int oh = out_dim(x.dim(2), w.dim(2), spec.stride, spec.pad);
  const int ow = out_dim(x.dim(3), w.dim(3), spec.stride, spec.pad);

  const Tensor cols = im2col(x, w.dim(2), w.dim(3), spec.stride, spec.pad, pool);
  const Tensor wt = repack_weights(w);
  Tensor rows({n * oh * ow, oc});
  gemm(cols, wt, rows, pool, /*accumulate=*/false, GemmPath::naive);

  // rows [N*OH*OW, OC] -> y [N, OC, OH, OW], adding bias.
  Tensor y({n, oc, oh, ow});
  pool.parallel_for(static_cast<std::size_t>(n) * oh * ow,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t idx = begin; idx < end; ++idx) {
                        const int ni = static_cast<int>(idx / (static_cast<std::size_t>(oh) * ow));
                        const int rem = static_cast<int>(idx % (static_cast<std::size_t>(oh) * ow));
                        const int oy = rem / ow;
                        const int ox = rem % ow;
                        const float* row = rows.data() + idx * static_cast<std::size_t>(oc);
                        for (int o = 0; o < oc; ++o)
                          y.at4(ni, o, oy, ox) = row[o] + b[static_cast<std::size_t>(o)];
                      }
                    });
  return y;
}

/// Implicit-GEMM forward: the im2col matrix exists only as the per-thread
/// MC x KC A-panel the packer fills on demand; bias is fused into the store
/// epilogue and the output is written straight into NCHW.
Tensor forward_gemm_packed(const Tensor& x, const Tensor& w, const Tensor& b, ConvSpec spec,
                           ThreadPool& pool) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), iw = x.dim(3);
  const int oc = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int oh = out_dim(h, kh, spec.stride, spec.pad);
  const int ow = out_dim(iw, kw, spec.stride, spec.pad);
  const int m = n * oh * ow;     // im2col rows (output positions)
  const int k = c * kh * kw;     // im2col columns (kernel taps)
  const int stride = spec.stride, pad = spec.pad;

  // Tap tables: column index kk -> (channel, ky, kx), computed once so the
  // packer's inner loop is divide-free.
  std::vector<int> tap_c(static_cast<std::size_t>(k)), tap_y(static_cast<std::size_t>(k)),
      tap_x(static_cast<std::size_t>(k));
  for (int kk = 0; kk < k; ++kk) {
    tap_c[static_cast<std::size_t>(kk)] = kk / (kh * kw);
    tap_y[static_cast<std::size_t>(kk)] = (kk / kw) % kh;
    tap_x[static_cast<std::size_t>(kk)] = kk % kw;
  }

  const float* px = x.data();
  const float* pw = w.data();
  const float* pb = b.data();
  Tensor y({n, oc, oh, ow});
  float* py = y.data();
  const std::size_t plane = static_cast<std::size_t>(oh) * ow;

  // A-panel packer: fused im2col. Row i is output position (ni, oy, ox);
  // element (i, kk) is the input tap x[ni, tap_c, oy*s+ky-p, ox*s+kx-p].
  const auto pack_a = [&](float* dst, int i0, int mh, int k0, int kc) {
    const int mpanels = (mh + detail::kMR - 1) / detail::kMR;
    for (int ip = 0; ip < mpanels; ++ip) {
      float* panel = dst + static_cast<std::size_t>(ip) * kc * detail::kMR;
      for (int r = 0; r < detail::kMR; ++r) {
        const int i = i0 + ip * detail::kMR + r;
        if (i >= i0 + mh) {
          for (int kk = 0; kk < kc; ++kk) panel[kk * detail::kMR + r] = 0.0f;
          continue;
        }
        const int ni = i / (oh * ow);
        const int rem = i % (oh * ow);
        const int base_y = (rem / ow) * stride - pad;
        const int base_x = (rem % ow) * stride - pad;
        const float* xn = px + static_cast<std::size_t>(ni) * c * h * iw;
        for (int kk = 0; kk < kc; ++kk) {
          const int iy = base_y + tap_y[static_cast<std::size_t>(k0 + kk)];
          const int ix = base_x + tap_x[static_cast<std::size_t>(k0 + kk)];
          const bool in = static_cast<unsigned>(iy) < static_cast<unsigned>(h) &&
                          static_cast<unsigned>(ix) < static_cast<unsigned>(iw);
          panel[kk * detail::kMR + r] =
              in ? xn[(static_cast<std::size_t>(tap_c[static_cast<std::size_t>(k0 + kk)]) * h +
                       iy) *
                          iw +
                      ix]
                 : 0.0f;
        }
      }
    }
  };

  // B-panel packer: W viewed as W'[k, oc] without materializing it —
  // W'(kk, j) = w[j, kk] in the flat [OC, CKK] layout.
  const auto pack_b = [&](float* dst, int k0, int kc, int j0, int nw) {
    const int npanels = (nw + detail::kNR - 1) / detail::kNR;
    for (int jp = 0; jp < npanels; ++jp) {
      float* panel = dst + static_cast<std::size_t>(jp) * kc * detail::kNR;
      const int jbase = j0 + jp * detail::kNR;
      const int width = std::min(detail::kNR, j0 + nw - jbase);
      for (int q = 0; q < width; ++q) {
        const float* src = pw + static_cast<std::size_t>(jbase + q) * k + k0;
        for (int kk = 0; kk < kc; ++kk) panel[kk * detail::kNR + q] = src[kk];
      }
      for (int kk = 0; kk < kc; ++kk)
        for (int q = width; q < detail::kNR; ++q) panel[kk * detail::kNR + q] = 0.0f;
    }
  };

  // Store epilogue: scatter the accumulator tile to NCHW (column j is output
  // channel j, stride one OH*OW plane) and fuse the bias add into the first
  // k-block's store.
  const auto store = [&](int i, int j, int mh, int nw, const float* acc, bool first) {
    for (int r = 0; r < mh; ++r) {
      const int row = i + r;
      const int ni = row / (oh * ow);
      const int rem = row % (oh * ow);
      float* base = py + (static_cast<std::size_t>(ni) * oc + j) * plane +
                    static_cast<std::size_t>(rem);
      const float* arow = acc + r * detail::kNR;
      if (first)
        for (int q = 0; q < nw; ++q) base[q * plane] = arow[q] + pb[j + q];
      else
        for (int q = 0; q < nw; ++q) base[q * plane] += arow[q];
    }
  };

  detail::packed_gemm(m, oc, k, pack_a, pack_b, store, pool);
  return y;
}

}  // namespace

Tensor conv2d_forward_gemm(const Tensor& x, const Tensor& w, const Tensor& b, ConvSpec spec,
                           ThreadPool& pool) {
  return conv2d_forward_gemm(x, w, b, spec, pool, gemm_path());
}

Tensor conv2d_forward_gemm(const Tensor& x, const Tensor& w, const Tensor& b, ConvSpec spec,
                           ThreadPool& pool, GemmPath path) {
  if (x.rank() != 4 || w.rank() != 4) throw std::invalid_argument("conv_fast: rank-4 inputs");
  if (w.dim(1) != x.dim(1)) throw std::invalid_argument("conv_fast: channel mismatch");
  if (b.size() != static_cast<std::size_t>(w.dim(0)))
    throw std::invalid_argument("conv_fast: bias size");
  DNNPERF_TRACE_SPAN_VAR(span, "ref", "conv2d_fwd_gemm");
  if (span.active()) {
    const int oh = out_dim(x.dim(2), w.dim(2), spec.stride, spec.pad);
    const int ow = out_dim(x.dim(3), w.dim(3), spec.stride, spec.pad);
    span.set_args(std::move(util::trace::Args()
                                .add("n", x.dim(0))
                                .add("c", x.dim(1))
                                .add("hw", x.dim(2))
                                .add("oc", w.dim(0))
                                .add("k", w.dim(2))
                                .add("path", path == GemmPath::packed ? "packed" : "naive"))
                      .str());
    span.set_flops(2.0 * x.dim(0) * oh * ow * w.dim(0) * x.dim(1) * w.dim(2) * w.dim(3));
  }
  return path == GemmPath::packed ? forward_gemm_packed(x, w, b, spec, pool)
                                  : forward_gemm_naive(x, w, b, spec, pool);
}

void conv2d_backward_gemm(const Tensor& x, const Tensor& w, const Tensor& dy, ConvSpec spec,
                          Tensor& dx, Tensor& dw, Tensor& db, ThreadPool& pool) {
  conv2d_backward_gemm(x, w, dy, spec, dx, dw, db, pool, gemm_path());
}

void conv2d_backward_gemm(const Tensor& x, const Tensor& w, const Tensor& dy, ConvSpec spec,
                          Tensor& dx, Tensor& dw, Tensor& db, ThreadPool& pool, GemmPath path) {
  DNNPERF_TRACE_SPAN_VAR(span, "ref", "conv2d_bwd_gemm");
  if (span.active())
    span.set_args(std::move(util::trace::Args()
                                .add("n", x.dim(0))
                                .add("c", x.dim(1))
                                .add("oc", w.dim(0))
                                .add("k", w.dim(2))
                                .add("path", path == GemmPath::packed ? "packed" : "naive"))
                      .str());
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const int oc = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int oh = dy.dim(2), ow = dy.dim(3);
  const int ckk = c * kh * kw;
  const std::size_t rows_n = static_cast<std::size_t>(n) * oh * ow;

  // dY [N,OC,OH,OW] -> row-major [N*OH*OW, OC].
  Tensor dy_rows({static_cast<int>(rows_n), oc});
  pool.parallel_for(rows_n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const int ni = static_cast<int>(idx / (static_cast<std::size_t>(oh) * ow));
      const int rem = static_cast<int>(idx % (static_cast<std::size_t>(oh) * ow));
      const int oy = rem / ow;
      const int ox = rem % ow;
      float* row = dy_rows.data() + idx * static_cast<std::size_t>(oc);
      for (int o = 0; o < oc; ++o) row[o] = dy.at4(ni, o, oy, ox);
    }
  });

  // db[o] = sum of dY over (n, oh, ow).
  db = Tensor::zeros({oc});
  for (std::size_t i = 0; i < rows_n; ++i)
    for (int o = 0; o < oc; ++o)
      db[static_cast<std::size_t>(o)] += dy_rows[i * static_cast<std::size_t>(oc) + o];

  // dW' [CKK, OC] = cols^T [CKK, rows] * dY_rows [rows, OC] — the packed
  // gemm_at is the weight-gradient fast path.
  const Tensor cols = im2col(x, kh, kw, spec.stride, spec.pad, pool);
  Tensor dwt({ckk, oc});
  gemm_at(cols, dy_rows, dwt, pool, /*accumulate=*/false, path);
  // Repack dW' -> dW [OC, C, KH, KW].
  dw = Tensor::zeros(w.shape());
  for (int o = 0; o < oc; ++o)
    for (int j = 0; j < ckk; ++j)
      dw[static_cast<std::size_t>(o) * ckk + j] = dwt[static_cast<std::size_t>(j) * oc + o];

  // dcols [rows, CKK] = dY_rows [rows, OC] * W'^T; W'^T is W viewed [OC, CKK].
  Tensor w_flat = w.reshaped({oc, ckk});
  Tensor dcols({static_cast<int>(rows_n), ckk});
  gemm(dy_rows, w_flat, dcols, pool, /*accumulate=*/false, path);
  dx = col2im(dcols, n, c, h, ww, kh, kw, spec.stride, spec.pad, pool);
}

}  // namespace dnnperf::ref
