// GEMM-lowered convolution: the path MKL-DNN-era frameworks execute.
// Numerically equivalent to the direct kernels in ref/kernels.hpp (tests
// enforce <= 1e-4 max deviation) but structured as matrix multiplication.
//
//   forward:  Y[N*OH*OW, OC]   = im2col(X) * W'[CKK, OC]        (+ bias)
//   dW:       dW[CKK, OC]      = im2col(X)^T * dY
//   dX:       col2im( dY * W'^T )
//
// With GemmPath::packed the forward pass is an *implicit* GEMM: the im2col
// matrix is never materialized. Each thread packs one MC x KC panel of it at
// a time straight from the NCHW input (computing the kernel-tap addressing
// on the fly), the bias add is fused into the microkernel store epilogue,
// and the output is written directly in NCHW layout — peak extra memory is
// one MC x KC + KC x NC panel pair per thread. With GemmPath::naive the
// original materialized im2col + blocked-loop GEMM runs instead (the
// cross-validation oracle).
#pragma once

#include "ref/gemm.hpp"
#include "ref/kernels.hpp"

namespace dnnperf::ref {

/// Forward convolution via (implicit) im2col + GEMM. Same contract as
/// conv2d_forward. The 5-argument form uses gemm_path().
Tensor conv2d_forward_gemm(const Tensor& x, const Tensor& w, const Tensor& b, ConvSpec spec,
                           ThreadPool& pool);
Tensor conv2d_forward_gemm(const Tensor& x, const Tensor& w, const Tensor& b, ConvSpec spec,
                           ThreadPool& pool, GemmPath path);

/// Backward convolution via GEMMs (packed or naive per `path`). Same
/// contract as conv2d_backward.
void conv2d_backward_gemm(const Tensor& x, const Tensor& w, const Tensor& dy, ConvSpec spec,
                          Tensor& dx, Tensor& dw, Tensor& db, ThreadPool& pool);
void conv2d_backward_gemm(const Tensor& x, const Tensor& w, const Tensor& dy, ConvSpec spec,
                          Tensor& dx, Tensor& dw, Tensor& db, ThreadPool& pool, GemmPath path);

}  // namespace dnnperf::ref
