// im2col + GEMM convolution: the lowering MKL-DNN-era frameworks execute.
// Numerically equivalent to the direct kernels in ref/kernels.hpp (tests
// enforce <= 1e-4 max deviation) but structured as matrix multiplication.
//
//   forward:  Y[N*OH*OW, OC]   = im2col(X) * W'[CKK, OC]        (+ bias)
//   dW:       dW[CKK, OC]      = im2col(X)^T * dY
//   dX:       col2im( dY * W'^T )
#pragma once

#include "ref/kernels.hpp"

namespace dnnperf::ref {

/// Forward convolution via im2col + GEMM. Same contract as conv2d_forward.
Tensor conv2d_forward_gemm(const Tensor& x, const Tensor& w, const Tensor& b, ConvSpec spec,
                           ThreadPool& pool);

/// Backward convolution via GEMMs. Same contract as conv2d_backward.
void conv2d_backward_gemm(const Tensor& x, const Tensor& w, const Tensor& dy, ConvSpec spec,
                          Tensor& dx, Tensor& dw, Tensor& db, ThreadPool& pool);

}  // namespace dnnperf::ref
