#include "ref/optimizers.hpp"

#include <cmath>
#include <stdexcept>

namespace dnnperf::ref {

namespace {

void check_slots(std::vector<Tensor>& slots, const std::vector<ParamRef>& params) {
  if (slots.empty()) {
    slots.reserve(params.size());
    for (const auto& p : params) slots.push_back(Tensor::zeros(p.value->shape()));
    return;
  }
  if (slots.size() != params.size())
    throw std::invalid_argument("optimizer: parameter list changed between steps");
  for (std::size_t i = 0; i < params.size(); ++i)
    if (!slots[i].same_shape(*params[i].value))
      throw std::invalid_argument("optimizer: parameter shape changed between steps");
}

}  // namespace

MomentumSgd::MomentumSgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {
  if (lr <= 0.0f) throw std::invalid_argument("MomentumSgd: lr <= 0");
  if (momentum < 0.0f || momentum >= 1.0f)
    throw std::invalid_argument("MomentumSgd: momentum outside [0,1)");
}

void MomentumSgd::step(const std::vector<ParamRef>& params) {
  check_slots(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& v = velocity_[i];
    Tensor& p = *params[i].value;
    const Tensor& g = *params[i].grad;
    for (std::size_t k = 0; k < p.size(); ++k) {
      v[k] = momentum_ * v[k] + g[k];
      p[k] -= lr_ * v[k];
    }
  }
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0.0f) throw std::invalid_argument("Adam: lr <= 0");
  if (beta1 < 0.0f || beta1 >= 1.0f || beta2 < 0.0f || beta2 >= 1.0f)
    throw std::invalid_argument("Adam: betas outside [0,1)");
}

void Adam::step(const std::vector<ParamRef>& params) {
  check_slots(m_, params);
  check_slots(v_, params);
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    Tensor& p = *params[i].value;
    const Tensor& g = *params[i].grad;
    for (std::size_t k = 0; k < p.size(); ++k) {
      m[k] = beta1_ * m[k] + (1.0f - beta1_) * g[k];
      v[k] = beta2_ * v[k] + (1.0f - beta2_) * g[k] * g[k];
      const float m_hat = m[k] / bc1;
      const float v_hat = v[k] / bc2;
      p[k] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace dnnperf::ref
