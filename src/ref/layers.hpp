// refdnn layers: stateful wrappers over the kernels with cached activations
// for backprop, exposing their parameters/gradients for the optimizer and
// for Horovod-style exchange.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ref/kernels.hpp"
#include "ref/tensor.hpp"
#include "ref/threadpool.hpp"
#include "util/rng.hpp"

namespace dnnperf::ref {

/// A named view of one parameter tensor and its gradient.
struct ParamRef {
  std::string name;
  Tensor* value;
  Tensor* grad;
};

class Layer {
 public:
  virtual ~Layer() = default;
  /// Training-mode forward; caches whatever backward needs.
  virtual Tensor forward(const Tensor& x) = 0;
  /// Gradient wrt the input; fills parameter gradients.
  virtual Tensor backward(const Tensor& dy) = 0;
  virtual std::vector<ParamRef> params() { return {}; }
  virtual std::string name() const = 0;
};

class Conv2dLayer : public Layer {
 public:
  Conv2dLayer(std::string name, int in_c, int out_c, int k, ConvSpec spec, ThreadPool& pool,
              util::Rng& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return name_; }

  Tensor weight;
  Tensor bias;
  Tensor dweight;
  Tensor dbias;

 private:
  std::string name_;
  ConvSpec spec_;
  ThreadPool& pool_;
  Tensor input_;
};

class DenseLayer : public Layer {
 public:
  DenseLayer(std::string name, int in_f, int out_f, ThreadPool& pool, util::Rng& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return name_; }

  Tensor weight;
  Tensor bias;
  Tensor dweight;
  Tensor dbias;

 private:
  std::string name_;
  ThreadPool& pool_;
  Tensor input_;
};

class ReLULayer : public Layer {
 public:
  ReLULayer(std::string name, ThreadPool& pool) : name_(std::move(name)), pool_(pool) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  ThreadPool& pool_;
  Tensor input_;
};

class MaxPoolLayer : public Layer {
 public:
  MaxPoolLayer(std::string name, int k, int stride, ThreadPool& pool)
      : name_(std::move(name)), k_(k), stride_(stride), pool_(pool) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  int k_;
  int stride_;
  ThreadPool& pool_;
  Tensor input_;
  Tensor argmax_;
};

class GlobalAvgPoolLayer : public Layer {
 public:
  explicit GlobalAvgPoolLayer(std::string name) : name_(std::move(name)) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor input_;
};

class BatchNormLayer : public Layer {
 public:
  BatchNormLayer(std::string name, int channels, float eps = 1e-5f);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return name_; }

  Tensor gamma;
  Tensor beta;
  Tensor dgamma;
  Tensor dbeta;

 private:
  std::string name_;
  float eps_;
  BatchNormCache cache_;
};

/// [N,C,H,W] -> [N, C*H*W].
class FlattenLayer : public Layer {
 public:
  explicit FlattenLayer(std::string name) : name_(std::move(name)) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<int> input_shape_;
};

}  // namespace dnnperf::ref
