#include "mpi/cost.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace dnnperf::mpi {

namespace {

double ceil_log2(int n) { return n <= 1 ? 0.0 : std::ceil(std::log2(static_cast<double>(n))); }

}  // namespace

CollectiveCostModel::CollectiveCostModel(net::Topology topology)
    : topology_(std::move(topology)) {}

double CollectiveCostModel::local_tree_time(double bytes) const {
  const int ppn = topology_.ppn();
  if (ppn <= 1) return 0.0;
  // Pipelined/segmented tree: latency per level, but the payload streams
  // through shared memory only a constant number of times.
  const auto& link = topology_.intra_node();
  return ceil_log2(ppn) * (link.latency_s + link.per_msg_overhead_s) +
         bytes / (link.bandwidth_gbps * 1e9);
}

double CollectiveCostModel::ring_allreduce_time_flat(double bytes) const {
  const int p = topology_.world_size();
  if (p <= 1) return 0.0;
  // 2(p-1) synchronized steps of one chunk each; with block rank placement
  // the slowest link in every step is the inter-node hop (if any).
  const auto& link = topology_.nodes() > 1 ? topology_.inter_node() : topology_.intra_node();
  const double chunk = bytes / p;
  return 2.0 * (p - 1) * link.transfer_time(chunk);
}

double CollectiveCostModel::recursive_doubling_time(double bytes) const {
  const int p = topology_.world_size();
  if (p <= 1) return 0.0;
  const auto& link = topology_.nodes() > 1 ? topology_.inter_node() : topology_.intra_node();
  return ceil_log2(p) * link.transfer_time(bytes);
}

double CollectiveCostModel::hierarchical_allreduce_time(double bytes) const {
  const int nodes = topology_.nodes();
  // Phase 1: shared-memory reduce to the node leader.
  double t = local_tree_time(bytes);
  // Phase 2: inter-node allreduce among leaders; ring for bandwidth, RD for
  // latency — take the cheaper, as the MPI library would.
  if (nodes > 1) {
    const auto& link = topology_.inter_node();
    const double ring = 2.0 * (nodes - 1) * link.transfer_time(bytes / nodes);
    const double rd = ceil_log2(nodes) * link.transfer_time(bytes);
    t += std::min(ring, rd);
  }
  // Phase 3: shared-memory broadcast of the result.
  t += local_tree_time(bytes);
  return t;
}

HierarchyPlan CollectiveCostModel::plan_staged_allreduce(double bytes) const {
  if (bytes < 0) throw std::invalid_argument("plan_staged_allreduce: negative bytes");
  const auto stages = topology_.intra_hierarchy();
  const int nodes = topology_.nodes();

  // Inter-node allreduce of one shard: ring for bandwidth, RD for latency.
  const auto top_cost = [&](double shard) {
    HierarchyPlan plan;
    plan.top_ranks = nodes;
    plan.top_bytes = shard;
    if (nodes > 1) {
      const auto& link = topology_.inter_node();
      const double ring = 2.0 * (nodes - 1) * link.transfer_time(shard / nodes);
      const double rd = ceil_log2(nodes) * link.transfer_time(shard);
      plan.top_algo = ring <= rd ? AllreduceAlgo::Ring : AllreduceAlgo::RecursiveDoubling;
      plan.top_s = std::min(ring, rd);
    }
    plan.total_s = plan.top_s;
    return plan;
  };

  // Each stage either ring-reduce-scatters (one shard message per step, and
  // the shard reaching the levels above shrinks by the group size) or runs a
  // segmented tree (log-latency, shard stays full). The choice at one level
  // changes the payload every level above sees, so the plan is the min over
  // the whole choice tree — tiny, at most two levels deep.
  const std::function<HierarchyPlan(std::size_t, double)> best = [&](std::size_t k,
                                                                     double shard) {
    if (k == stages.size()) return top_cost(shard);
    const int g = stages[k].group_size;
    const auto& link = stages[k].link;

    const double ring_stage = 2.0 * (g - 1) * link.transfer_time(shard / g);
    HierarchyPlan ring_plan = best(k + 1, shard / g);
    ring_plan.levels.insert(ring_plan.levels.begin(),
                            {g, StageAlgo::RingReduceScatter, ring_stage});
    ring_plan.total_s += ring_stage;

    const double tree_stage =
        2.0 * (ceil_log2(g) * (link.latency_s + link.per_msg_overhead_s) +
               shard / (link.bandwidth_gbps * 1e9));
    HierarchyPlan tree_plan = best(k + 1, shard);
    tree_plan.levels.insert(tree_plan.levels.begin(), {g, StageAlgo::Tree, tree_stage});
    tree_plan.total_s += tree_stage;

    return ring_plan.total_s <= tree_plan.total_s ? ring_plan : tree_plan;
  };

  return best(0, bytes);
}

double CollectiveCostModel::staged_allreduce_time(double bytes) const {
  return plan_staged_allreduce(bytes).total_s;
}

double CollectiveCostModel::allreduce_time(double bytes, AllreduceAlgo algo) const {
  if (bytes < 0) throw std::invalid_argument("allreduce_time: negative bytes");
  switch (algo) {
    case AllreduceAlgo::Ring: return ring_allreduce_time_flat(bytes);
    case AllreduceAlgo::RecursiveDoubling: return recursive_doubling_time(bytes);
    case AllreduceAlgo::Rabenseifner:
    // Rabenseifner's cost is within a small factor of hierarchical+ring at
    // these scales; model both via the hierarchical path.
    case AllreduceAlgo::Auto:
      return std::min(hierarchical_allreduce_time(bytes), recursive_doubling_time(bytes));
  }
  throw std::logic_error("allreduce_time: bad algorithm");
}

double CollectiveCostModel::bcast_time(double bytes) const {
  double t = 0.0;
  if (topology_.nodes() > 1)
    t += ceil_log2(topology_.nodes()) * topology_.inter_node().transfer_time(bytes);
  t += local_tree_time(bytes);
  return t;
}

double CollectiveCostModel::barrier_time() const {
  const auto& link = topology_.nodes() > 1 ? topology_.inter_node() : topology_.intra_node();
  return ceil_log2(topology_.world_size()) * link.transfer_time(1.0);
}

}  // namespace dnnperf::mpi
