// minimpi: an in-process, thread-backed MPI subset.
//
// A World is one "job": N ranks, each a std::thread, exchanging real bytes
// through per-rank mailboxes. Comm is the per-rank handle exposing the MPI
// surface the paper's stack needs (MVAPICH2 under Horovod): blocking
// send/recv, sendrecv, barrier, communicator splitting, and the collectives
// in mpi/collectives.hpp.
//
// Sends are buffered (never block), so collective algorithms written in the
// usual sendrecv style are deadlock-free.
//
// Communicators: Comm::split(color, key) forms sub-communicators (e.g. one
// per node plus a leader communicator, as hierarchical collectives need).
// Each communicator carries a context id that partitions the tag space, so
// traffic on different communicators never crosses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "mpi/mailbox.hpp"

namespace dnnperf::mpi {

class Comm;

class World {
 public:
  explicit World(int size);

  int size() const { return size_; }
  Mailbox& mailbox(int global_rank) {
    return *mailboxes_.at(static_cast<std::size_t>(global_rank));
  }

  /// Spawns `size` rank threads each running fn(comm) and joins them.
  /// The first exception thrown by any rank is rethrown after all join.
  static void run(int size, const std::function<void(Comm&)>& fn);

 private:
  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

class Comm {
 public:
  /// World communicator for `global_rank`.
  Comm(World& world, int global_rank);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }
  /// Rank in the underlying World (useful after splits).
  int global_rank() const { return group_[static_cast<std::size_t>(rank_)]; }

  /// Buffered send of `bytes` bytes to `dst` (rank in this communicator)
  /// with user tag `tag` (0 <= tag < 2^16).
  void send(const void* data, std::size_t bytes, int dst, int tag);

  /// Blocking receive of exactly `bytes` bytes from (src, tag).
  /// Throws std::length_error on size mismatch (truncation guard).
  void recv(void* data, std::size_t bytes, int src, int tag);

  /// Combined send+recv (safe because sends are buffered).
  void sendrecv(const void* send_data, std::size_t send_bytes, int dst, int send_tag,
                void* recv_data, std::size_t recv_bytes, int src, int recv_tag);

  /// Dissemination barrier over this communicator.
  void barrier();

  /// Splits this communicator (collective). Ranks passing the same `color`
  /// (>= 0) form a new communicator ordered by (key, rank); ranks passing
  /// color = kUndefinedColor get an empty optional.
  static constexpr int kUndefinedColor = -1;
  std::optional<Comm> split(int color, int key);

  /// Tag for one collective invocation, on the collective channel (disjoint
  /// from user tags). All ranks call collectives in the same order on a
  /// communicator, so per-rank counters stay aligned.
  struct CollTag {
    int wire;
  };
  CollTag next_collective_tag();

  /// Collective-channel p2p used by the algorithms in mpi/collectives.hpp.
  void send(const void* data, std::size_t bytes, int dst, CollTag tag);
  void recv(void* data, std::size_t bytes, int src, CollTag tag);
  void sendrecv(const void* send_data, std::size_t send_bytes, int dst, void* recv_data,
                std::size_t recv_bytes, int src, CollTag tag);

 private:
  Comm(World& world, std::vector<int> group, int rank, std::uint32_t context);

  /// Composes the wire tag: [context:12][channel:2][payload:16].
  int wire_tag(int channel, int payload) const;

  World* world_;  ///< non-null; pointer (not reference) so Comm is assignable
  std::vector<int> group_;    ///< global rank of each communicator rank
  int rank_;                  ///< my rank within group_
  std::uint32_t context_;     ///< tag-space partition id
  std::uint32_t collective_seq_ = 0;
  std::uint32_t split_seq_ = 0;
};

}  // namespace dnnperf::mpi
