// Analytical timing model for the collectives in mpi/collectives.hpp,
// evaluated over a net::Topology. This is the "cost backend": the real
// thread backend moves bytes, this predicts wall time at cluster scale
// (128 nodes x 4 ppn) without needing the cluster.
//
// Modeled after MVAPICH2's behaviour on the paper's systems: hierarchical
// (shared-memory + inter-node) allreduce for large payloads, recursive
// doubling for small ones, with automatic selection.
#pragma once

#include "mpi/collectives.hpp"
#include "net/topology.hpp"

namespace dnnperf::mpi {

class CollectiveCostModel {
 public:
  explicit CollectiveCostModel(net::Topology topology);

  const net::Topology& topology() const { return topology_; }

  /// Predicted wall time of one allreduce of `bytes` bytes across all ranks.
  /// Auto picks the cheapest strategy (mirrors MPI tuning tables).
  double allreduce_time(double bytes, AllreduceAlgo algo = AllreduceAlgo::Auto) const;

  /// Individual strategies (exposed for ablation benches and tests).
  double ring_allreduce_time_flat(double bytes) const;
  double recursive_doubling_time(double bytes) const;
  double hierarchical_allreduce_time(double bytes) const;

  double bcast_time(double bytes) const;
  double barrier_time() const;

 private:
  /// Tree reduce/bcast of a full payload within one node over shared memory.
  double local_tree_time(double bytes) const;

  net::Topology topology_;
};

}  // namespace dnnperf::mpi
