// Analytical timing model for the collectives in mpi/collectives.hpp,
// evaluated over a net::Topology. This is the "cost backend": the real
// thread backend moves bytes, this predicts wall time at cluster scale
// (128 nodes x 4 ppn) without needing the cluster.
//
// Modeled after MVAPICH2's behaviour on the paper's systems: hierarchical
// (shared-memory + inter-node) allreduce for large payloads, recursive
// doubling for small ones, with automatic selection.
#pragma once

#include "mpi/collectives.hpp"
#include "net/topology.hpp"

namespace dnnperf::mpi {

/// How one intra-node stage of a staged hierarchical allreduce is executed.
enum class StageAlgo {
  RingReduceScatter,  ///< ring reduce-scatter + allgather; shard shrinks by g
  Tree,               ///< segmented tree reduce + bcast; shard stays full
};

/// The per-level algorithm plan for a staged hierarchical allreduce of one
/// payload size: which algorithm each intra-node stage uses (Shi et al.'s
/// latency/bandwidth crossover, decided per level against the level's link)
/// and which algorithm the top-level inter-node allreduce runs.
struct HierarchyPlan {
  struct Level {
    int group_size = 1;
    StageAlgo algo = StageAlgo::RingReduceScatter;
    double stage_s = 0.0;  ///< both phases of this stage (down + up)
  };
  std::vector<Level> levels;  ///< innermost first; mirrors Topology::intra_hierarchy
  AllreduceAlgo top_algo = AllreduceAlgo::Ring;
  int top_ranks = 1;       ///< groups at the top level (== nodes)
  double top_bytes = 0.0;  ///< shard size reaching the inter-node allreduce
  double top_s = 0.0;
  double total_s = 0.0;
};

class CollectiveCostModel {
 public:
  explicit CollectiveCostModel(net::Topology topology);

  const net::Topology& topology() const { return topology_; }

  /// Predicted wall time of one allreduce of `bytes` bytes across all ranks.
  /// Auto picks the cheapest strategy (mirrors MPI tuning tables).
  double allreduce_time(double bytes, AllreduceAlgo algo = AllreduceAlgo::Auto) const;

  /// Individual strategies (exposed for ablation benches and tests).
  double ring_allreduce_time_flat(double bytes) const;
  double recursive_doubling_time(double bytes) const;
  double hierarchical_allreduce_time(double bytes) const;

  /// Staged hierarchical allreduce (mpi::allreduce_hierarchical_stages):
  /// reduce-scatter/tree down the topology's intra-node hierarchy, one
  /// inter-node allreduce of the surviving shard, then back up. The plan
  /// records the cheapest per-level algorithm choice for this payload.
  HierarchyPlan plan_staged_allreduce(double bytes) const;
  double staged_allreduce_time(double bytes) const;

  double bcast_time(double bytes) const;
  double barrier_time() const;

 private:
  /// Tree reduce/bcast of a full payload within one node over shared memory.
  double local_tree_time(double bytes) const;

  net::Topology topology_;
};

}  // namespace dnnperf::mpi
