// Collective algorithms over minimpi point-to-point, implemented the way an
// MPI library (MVAPICH2) implements them:
//
//  - ring allreduce          (reduce-scatter ring + allgather ring; bandwidth-optimal)
//  - recursive doubling      (latency-optimal; non-power-of-two handled by folding)
//  - Rabenseifner            (recursive-halving reduce-scatter + recursive-doubling
//                             allgather; power-of-two ranks, otherwise delegates to ring)
//  - binomial broadcast, ring allgather, binomial reduce
//
// All functions are collective: every rank of the communicator must call them
// in the same order with the same count. Data really moves between rank
// threads; these are the algorithms whose *cost* the analytical model in
// mpi/cost.hpp predicts.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "mpi/world.hpp"

namespace dnnperf::mpi {

enum class ReduceOp { Sum, Max, Min, Prod };

enum class AllreduceAlgo { Auto, Ring, RecursiveDoubling, Rabenseifner };

namespace detail {

template <typename T>
void apply_op(ReduceOp op, std::span<const T> src, std::span<T> acc) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += src[i];
      break;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = std::max(acc[i], src[i]);
      break;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = std::min(acc[i], src[i]);
      break;
    case ReduceOp::Prod:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] *= src[i];
      break;
  }
}

inline bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

/// Chunk [begin, end) of `count` elements split into `parts` near-equal parts.
struct ChunkRange {
  std::size_t begin;
  std::size_t end;
  std::size_t size() const { return end - begin; }
};

inline ChunkRange chunk_range(std::size_t count, int parts, int index) {
  const std::size_t base = count / static_cast<std::size_t>(parts);
  const std::size_t rem = count % static_cast<std::size_t>(parts);
  const auto idx = static_cast<std::size_t>(index);
  const std::size_t begin = idx * base + std::min(idx, rem);
  const std::size_t extra = idx < rem ? 1u : 0u;
  return {begin, begin + base + extra};
}

}  // namespace detail

/// In-place ring allreduce. Bandwidth-optimal: each rank moves
/// 2 (p-1)/p * count elements.
template <typename T>
void allreduce_ring(Comm& comm, std::span<T> data, ReduceOp op) {
  const int p = comm.size();
  const int r = comm.rank();
  if (p == 1) return;
  const auto tag = comm.next_collective_tag();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;

  std::vector<T> recv_buf(data.size());
  // Reduce-scatter phase: after p-1 steps, rank r owns the fully reduced
  // chunk (r+1) mod p.
  for (int step = 0; step < p - 1; ++step) {
    const auto send_c = detail::chunk_range(data.size(), p, (r - step + p) % p);
    const auto recv_c = detail::chunk_range(data.size(), p, (r - step - 1 + 2 * p) % p);
    comm.sendrecv(data.data() + send_c.begin, send_c.size() * sizeof(T), right,
                  recv_buf.data(), recv_c.size() * sizeof(T), left, tag);
    detail::apply_op<T>(op, std::span<const T>(recv_buf.data(), recv_c.size()),
                        data.subspan(recv_c.begin, recv_c.size()));
  }
  // Allgather phase: circulate owned chunks.
  for (int step = 0; step < p - 1; ++step) {
    const auto send_c = detail::chunk_range(data.size(), p, (r + 1 - step + 2 * p) % p);
    const auto recv_c = detail::chunk_range(data.size(), p, (r - step + p) % p);
    comm.sendrecv(data.data() + send_c.begin, send_c.size() * sizeof(T), right,
                  recv_buf.data(), recv_c.size() * sizeof(T), left, tag);
    std::copy_n(recv_buf.data(), recv_c.size(), data.data() + recv_c.begin);
  }
}

/// In-place recursive-doubling allreduce; folds non-power-of-two rank counts
/// onto the nearest power of two first. Latency-optimal for small messages.
template <typename T>
void allreduce_recursive_doubling(Comm& comm, std::span<T> data, ReduceOp op) {
  const int p = comm.size();
  const int r = comm.rank();
  if (p == 1) return;
  const auto tag = comm.next_collective_tag();
  const std::size_t bytes = data.size() * sizeof(T);
  std::vector<T> recv_buf(data.size());

  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int extra = p - pof2;

  // Fold: the first 2*extra ranks pair up; odd ranks hand data to even ranks
  // and sit out, even ranks act as virtual rank r/2.
  int vrank;
  if (r < 2 * extra) {
    if (r % 2 == 1) {
      comm.send(data.data(), bytes, r - 1, tag);
      comm.recv(data.data(), bytes, r - 1, tag);  // final result later
      return;
    }
    comm.recv(recv_buf.data(), bytes, r + 1, tag);
    detail::apply_op<T>(op, std::span<const T>(recv_buf), data);
    vrank = r / 2;
  } else {
    vrank = r - extra;
  }

  auto real_rank = [extra](int v) { return v < extra ? 2 * v : v + extra; };

  for (int mask = 1; mask < pof2; mask <<= 1) {
    const int partner = real_rank(vrank ^ mask);
    comm.sendrecv(data.data(), bytes, partner, recv_buf.data(), bytes, partner, tag);
    detail::apply_op<T>(op, std::span<const T>(recv_buf), data);
  }

  if (r < 2 * extra) comm.send(data.data(), bytes, r + 1, tag);
}

/// Rabenseifner's algorithm (power-of-two ranks): recursive-halving
/// reduce-scatter followed by recursive-doubling allgather. Same bandwidth
/// term as ring with log(p) latency. Falls back to ring otherwise.
template <typename T>
void allreduce_rabenseifner(Comm& comm, std::span<T> data, ReduceOp op) {
  const int p = comm.size();
  const int r = comm.rank();
  if (p == 1) return;
  if (!detail::is_power_of_two(p) || data.size() < static_cast<std::size_t>(p)) {
    allreduce_ring(comm, data, op);
    return;
  }
  const auto tag = comm.next_collective_tag();
  std::vector<T> recv_buf(data.size());

  // Recursive halving: the live window [lo, hi) of chunk indices halves each
  // step; chunks are the p-way partition of data.
  int lo = 0, hi = p;
  for (int mask = p / 2; mask >= 1; mask /= 2) {
    const int partner = r ^ mask;
    const int mid = lo + (hi - lo) / 2;
    int keep_lo, keep_hi, give_lo, give_hi;
    if ((r & mask) == 0) {
      keep_lo = lo; keep_hi = mid; give_lo = mid; give_hi = hi;
    } else {
      keep_lo = mid; keep_hi = hi; give_lo = lo; give_hi = mid;
    }
    const auto give_b = detail::chunk_range(data.size(), p, give_lo);
    const auto give_e = detail::chunk_range(data.size(), p, give_hi - 1);
    const auto keep_b = detail::chunk_range(data.size(), p, keep_lo);
    const auto keep_e = detail::chunk_range(data.size(), p, keep_hi - 1);
    const std::size_t give_off = give_b.begin, give_len = give_e.end - give_b.begin;
    const std::size_t keep_off = keep_b.begin, keep_len = keep_e.end - keep_b.begin;
    comm.sendrecv(data.data() + give_off, give_len * sizeof(T), partner,
                  recv_buf.data(), keep_len * sizeof(T), partner, tag);
    detail::apply_op<T>(op, std::span<const T>(recv_buf.data(), keep_len),
                        data.subspan(keep_off, keep_len));
    lo = keep_lo;
    hi = keep_hi;
  }

  // Allgather by recursive doubling, reversing the halving pattern.
  for (int mask = 1; mask < p; mask *= 2) {
    const int partner = r ^ mask;
    const int size_w = hi - lo;
    int other_lo, other_hi;
    if ((r & mask) == 0) {
      other_lo = lo + size_w;  // partner's window sits above ours
      other_hi = hi + size_w;
    } else {
      other_lo = lo - size_w;
      other_hi = hi - size_w;
    }
    const auto mine_b = detail::chunk_range(data.size(), p, lo);
    const auto mine_e = detail::chunk_range(data.size(), p, hi - 1);
    const auto oth_b = detail::chunk_range(data.size(), p, other_lo);
    const auto oth_e = detail::chunk_range(data.size(), p, other_hi - 1);
    comm.sendrecv(data.data() + mine_b.begin, (mine_e.end - mine_b.begin) * sizeof(T),
                  partner, data.data() + oth_b.begin,
                  (oth_e.end - oth_b.begin) * sizeof(T), partner, tag);
    lo = std::min(lo, other_lo);
    hi = std::max(hi, other_hi);
  }
}

/// In-place allreduce with algorithm selection. Auto follows the usual MPI
/// policy: latency-optimal recursive doubling for small payloads,
/// bandwidth-optimal ring/Rabenseifner for large ones.
template <typename T>
void allreduce(Comm& comm, std::span<T> data, ReduceOp op,
               AllreduceAlgo algo = AllreduceAlgo::Auto) {
  if (algo == AllreduceAlgo::Auto) {
    constexpr std::size_t kSmallBytes = 16 * 1024;
    algo = data.size() * sizeof(T) <= kSmallBytes ? AllreduceAlgo::RecursiveDoubling
                                                  : AllreduceAlgo::Rabenseifner;
  }
  switch (algo) {
    case AllreduceAlgo::Ring: allreduce_ring(comm, data, op); break;
    case AllreduceAlgo::RecursiveDoubling: allreduce_recursive_doubling(comm, data, op); break;
    case AllreduceAlgo::Rabenseifner: allreduce_rabenseifner(comm, data, op); break;
    case AllreduceAlgo::Auto: throw std::logic_error("allreduce: unresolved Auto");
  }
}

/// In-place ring reduce-scatter over the p-way near-equal partition of
/// `data`: after the call, rank r's chunk `detail::chunk_range(n, p, r)`
/// holds the fully reduced values (the other regions hold partial sums).
/// Building block for the staged hierarchical allreduce; with `data.size()`
/// below p the trailing chunks are empty and those steps move zero bytes.
template <typename T>
void reduce_scatter_ring(Comm& comm, std::span<T> data, ReduceOp op) {
  const int p = comm.size();
  const int r = comm.rank();
  if (p == 1) return;
  const auto tag = comm.next_collective_tag();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  // Chunk 0 is the largest chunk of the near-equal partition.
  std::vector<T> recv_buf(detail::chunk_range(data.size(), p, 0).size());
  // Step s sends chunk (r - s - 1) and receives chunk (r - s - 2); after
  // p-1 steps rank r has accumulated every rank's contribution to chunk r.
  for (int step = 0; step < p - 1; ++step) {
    const auto send_c = detail::chunk_range(data.size(), p, (r - step - 1 + p) % p);
    const auto recv_c = detail::chunk_range(data.size(), p, (r - step - 2 + 2 * p) % p);
    comm.sendrecv(data.data() + send_c.begin, send_c.size() * sizeof(T), right,
                  recv_buf.data(), recv_c.size() * sizeof(T), left, tag);
    detail::apply_op<T>(op, std::span<const T>(recv_buf.data(), recv_c.size()),
                        data.subspan(recv_c.begin, recv_c.size()));
  }
}

/// Ring allgather over the same partition: rank r contributes its chunk
/// `detail::chunk_range(n, p, r)` in place, and every rank ends with the
/// full vector. Pairs with reduce_scatter_ring to complete an allreduce.
template <typename T>
void allgather_ring_chunks(Comm& comm, std::span<T> data) {
  const int p = comm.size();
  const int r = comm.rank();
  if (p == 1) return;
  const auto tag = comm.next_collective_tag();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  for (int step = 0; step < p - 1; ++step) {
    const auto send_c = detail::chunk_range(data.size(), p, (r - step + p) % p);
    const auto recv_c = detail::chunk_range(data.size(), p, (r - step - 1 + 2 * p) % p);
    comm.sendrecv(data.data() + send_c.begin, send_c.size() * sizeof(T), right,
                  data.data() + recv_c.begin, recv_c.size() * sizeof(T), left, tag);
  }
}

/// Binomial-tree broadcast from `root`.
template <typename T>
void bcast(Comm& comm, std::span<T> data, int root) {
  const int p = comm.size();
  const int r = comm.rank();
  if (root < 0 || root >= p) throw std::out_of_range("bcast: bad root");
  if (p == 1) return;
  const auto tag = comm.next_collective_tag();
  const std::size_t bytes = data.size() * sizeof(T);
  const int relative = (r - root + p) % p;

  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      const int src = (relative - mask + root) % p;
      comm.recv(data.data(), bytes, src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      const int dst = (relative + mask + root) % p;
      comm.send(data.data(), bytes, dst, tag);
    }
    mask >>= 1;
  }
}

/// Ring allgather: rank r contributes send[0..count), output is size p*count
/// ordered by rank.
template <typename T>
void allgather(Comm& comm, std::span<const T> send, std::span<T> recv) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t count = send.size();
  if (recv.size() != count * static_cast<std::size_t>(p))
    throw std::invalid_argument("allgather: recv size != p * count");
  std::copy_n(send.data(), count, recv.data() + static_cast<std::size_t>(r) * count);
  if (p == 1) return;
  const auto tag = comm.next_collective_tag();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  for (int step = 0; step < p - 1; ++step) {
    const int send_block = (r - step + p) % p;
    const int recv_block = (r - step - 1 + 2 * p) % p;
    comm.sendrecv(recv.data() + static_cast<std::size_t>(send_block) * count,
                  count * sizeof(T), right,
                  recv.data() + static_cast<std::size_t>(recv_block) * count,
                  count * sizeof(T), left, tag);
  }
}

/// Gather: rank r's `send` lands at recv[r*count .. (r+1)*count) on `root`
/// (recv is ignored on non-roots but must be correctly sized there too or
/// empty).
template <typename T>
void gather(Comm& comm, std::span<const T> send, std::span<T> recv, int root) {
  const int p = comm.size();
  const int r = comm.rank();
  if (root < 0 || root >= p) throw std::out_of_range("gather: bad root");
  const std::size_t count = send.size();
  const auto tag = comm.next_collective_tag();
  if (r == root) {
    if (recv.size() != count * static_cast<std::size_t>(p))
      throw std::invalid_argument("gather: recv size != p * count");
    std::copy_n(send.data(), count, recv.data() + static_cast<std::size_t>(r) * count);
    for (int src = 0; src < p; ++src) {
      if (src == root) continue;
      comm.recv(recv.data() + static_cast<std::size_t>(src) * count, count * sizeof(T), src,
                tag);
    }
  } else {
    comm.send(send.data(), count * sizeof(T), root, tag);
  }
}

/// Scatter: root's send[r*count .. (r+1)*count) lands in rank r's `recv`.
template <typename T>
void scatter(Comm& comm, std::span<const T> send, std::span<T> recv, int root) {
  const int p = comm.size();
  const int r = comm.rank();
  if (root < 0 || root >= p) throw std::out_of_range("scatter: bad root");
  const std::size_t count = recv.size();
  const auto tag = comm.next_collective_tag();
  if (r == root) {
    if (send.size() != count * static_cast<std::size_t>(p))
      throw std::invalid_argument("scatter: send size != p * count");
    for (int dst = 0; dst < p; ++dst) {
      if (dst == root) continue;
      comm.send(send.data() + static_cast<std::size_t>(dst) * count, count * sizeof(T), dst,
                tag);
    }
    std::copy_n(send.data() + static_cast<std::size_t>(r) * count, count, recv.data());
  } else {
    comm.recv(recv.data(), count * sizeof(T), root, tag);
  }
}

/// All-to-all: send[d*count ..) goes to rank d; recv[s*count ..) comes from
/// rank s. Pairwise-exchange schedule (p rounds).
template <typename T>
void alltoall(Comm& comm, std::span<const T> send, std::span<T> recv, std::size_t count) {
  const int p = comm.size();
  const int r = comm.rank();
  if (send.size() != count * static_cast<std::size_t>(p) || recv.size() != send.size())
    throw std::invalid_argument("alltoall: buffer size != p * count");
  const auto tag = comm.next_collective_tag();
  std::copy_n(send.data() + static_cast<std::size_t>(r) * count, count,
              recv.data() + static_cast<std::size_t>(r) * count);
  if (detail::is_power_of_two(p)) {
    // Pairwise XOR exchange: every step is a perfect matching.
    for (int step = 1; step < p; ++step) {
      const int partner = r ^ step;
      comm.sendrecv(send.data() + static_cast<std::size_t>(partner) * count, count * sizeof(T),
                    partner, recv.data() + static_cast<std::size_t>(partner) * count,
                    count * sizeof(T), partner, tag);
    }
  } else {
    // Shifted-ring schedule: at step s, send to r+s and receive from r-s.
    // Every rank follows the same schedule, so sends and receives pair up.
    for (int step = 1; step < p; ++step) {
      const int dst = (r + step) % p;
      const int src = (r - step + p) % p;
      comm.send(send.data() + static_cast<std::size_t>(dst) * count, count * sizeof(T), dst,
                tag);
      comm.recv(recv.data() + static_cast<std::size_t>(src) * count, count * sizeof(T), src,
                tag);
    }
  }
}

/// Binomial-tree reduce to `root` (in-place on root; other ranks' data is
/// used as input and left unspecified afterwards).
template <typename T>
void reduce(Comm& comm, std::span<T> data, ReduceOp op, int root) {
  const int p = comm.size();
  const int r = comm.rank();
  if (root < 0 || root >= p) throw std::out_of_range("reduce: bad root");
  if (p == 1) return;
  const auto tag = comm.next_collective_tag();
  const std::size_t bytes = data.size() * sizeof(T);
  const int relative = (r - root + p) % p;
  std::vector<T> recv_buf(data.size());

  for (int mask = 1; mask < p; mask <<= 1) {
    if (relative & mask) {
      const int dst = (relative - mask + root) % p;
      comm.send(data.data(), bytes, dst, tag);
      return;
    }
    if (relative + mask < p) {
      const int src = (relative + mask + root) % p;
      comm.recv(recv_buf.data(), bytes, src, tag);
      detail::apply_op<T>(op, std::span<const T>(recv_buf), data);
    }
  }
}


/// Two-level hierarchical allreduce, the structure MVAPICH2 uses on
/// multi-rank nodes: reduce to each node's leader over the node
/// communicator, allreduce among leaders, broadcast back within the node.
/// `ranks_per_node` must divide the communicator size (block rank mapping).
template <typename T>
void allreduce_hierarchical(Comm& comm, std::span<T> data, ReduceOp op, int ranks_per_node) {
  const int p = comm.size();
  if (ranks_per_node <= 0 || p % ranks_per_node != 0)
    throw std::invalid_argument("allreduce_hierarchical: ranks_per_node must divide size");
  if (p == 1) return;
  if (ranks_per_node == 1) {
    allreduce(comm, data, op);
    return;
  }
  const int node = comm.rank() / ranks_per_node;
  const bool leader = comm.rank() % ranks_per_node == 0;

  auto node_comm = comm.split(node, comm.rank());
  auto leader_comm = comm.split(leader ? 0 : Comm::kUndefinedColor, comm.rank());

  reduce(*node_comm, data, op, 0);
  if (leader_comm) allreduce(*leader_comm, data, op);
  bcast(*node_comm, data, 0);
}

/// Multi-level hierarchical allreduce staged as reduce-scatter down the
/// hierarchy and allgather back up (the Horovod / Shi-et-al. structure:
/// intra-NUMA -> intra-node -> inter-node). `group_sizes` lists the stage
/// widths innermost first (e.g. {ranks_per_numa, numa_per_node}); each must
/// divide the rank count remaining at its level, with block rank mapping.
/// The leftover factor after all stages is handled by one allreduce with
/// `top_algo` over the shard each rank owns:
///
///   level k:  ring reduce-scatter within each contiguous group of
///             group_sizes[k] ranks; rank's owned shard shrinks by that factor
///   top:      allreduce of the owned shard across the remaining ranks
///   level k:  ring allgather within each group, unwinding the stack
///
/// With empty `group_sizes` this is exactly allreduce(comm, data, op).
template <typename T>
void allreduce_hierarchical_stages(Comm& comm, std::span<T> data, ReduceOp op,
                                   std::span<const int> group_sizes,
                                   AllreduceAlgo top_algo = AllreduceAlgo::Auto) {
  const int p = comm.size();
  if (group_sizes.empty()) {
    if (p > 1) allreduce(comm, data, op, top_algo);
    return;
  }
  const int g = group_sizes.front();
  const auto rest = group_sizes.subspan(1);
  if (g <= 0 || p % g != 0)
    throw std::invalid_argument(
        "allreduce_hierarchical_stages: group size must divide rank count");
  if (g == 1) {  // trivial level: nothing to stage
    allreduce_hierarchical_stages(comm, data, op, rest, top_algo);
    return;
  }
  const int r = comm.rank();
  // Contiguous groups of g ranks; the cross communicator links the ranks
  // holding the same shard index across groups.
  auto group = comm.split(r / g, r);
  auto cross = comm.split(r % g, r);
  reduce_scatter_ring(*group, data, op);
  const auto mine = detail::chunk_range(data.size(), g, group->rank());
  allreduce_hierarchical_stages(*cross, data.subspan(mine.begin, mine.size()), op, rest,
                                top_algo);
  allgather_ring_chunks(*group, data);
}

}  // namespace dnnperf::mpi
