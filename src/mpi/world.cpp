#include "mpi/world.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

namespace dnnperf::mpi {

namespace {

// Wire-tag layout: [context:12][channel:2][payload:16], all within a
// positive int. Channels separate user traffic, collectives, and barriers.
constexpr int kChannelUser = 0;
constexpr int kChannelCollective = 1;
constexpr int kChannelBarrier = 2;
constexpr int kChannelSplit = 3;
constexpr std::uint32_t kContextMask = 0xFFF;
constexpr int kPayloadBits = 16;
constexpr int kPayloadMask = (1 << kPayloadBits) - 1;

}  // namespace

World::World(int size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("World: size <= 0");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void World::run(int size, const std::function<void(Comm&)>& fn) {
  World world(size);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&world, &fn, &errors, r] {
      try {
        Comm comm(world, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);
}

Comm::Comm(World& world, int global_rank) : world_(&world), rank_(global_rank), context_(0) {
  if (global_rank < 0 || global_rank >= world.size()) throw std::out_of_range("Comm: bad rank");
  group_.resize(static_cast<std::size_t>(world.size()));
  for (int i = 0; i < world.size(); ++i) group_[static_cast<std::size_t>(i)] = i;
}

Comm::Comm(World& world, std::vector<int> group, int rank, std::uint32_t context)
    : world_(&world), group_(std::move(group)), rank_(rank), context_(context) {}

int Comm::wire_tag(int channel, int payload) const {
  return static_cast<int>((context_ & kContextMask) << (kPayloadBits + 2)) |
         (channel << kPayloadBits) | (payload & kPayloadMask);
}

void Comm::send(const void* data, std::size_t bytes, int dst, int tag) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("send: bad destination rank");
  if (tag < 0 || tag > kPayloadMask) throw std::invalid_argument("send: tag outside [0, 2^16)");
  std::vector<std::byte> payload(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);
  world_->mailbox(group_[static_cast<std::size_t>(dst)])
      .push(rank_, wire_tag(kChannelUser, tag), std::move(payload));
}

void Comm::recv(void* data, std::size_t bytes, int src, int tag) {
  if (src < 0 || src >= size()) throw std::out_of_range("recv: bad source rank");
  if (tag < 0 || tag > kPayloadMask) throw std::invalid_argument("recv: tag outside [0, 2^16)");
  std::vector<std::byte> payload =
      world_->mailbox(global_rank()).pop(src, wire_tag(kChannelUser, tag));
  if (payload.size() != bytes)
    throw std::length_error("recv: message size mismatch (expected " + std::to_string(bytes) +
                            ", got " + std::to_string(payload.size()) + ")");
  if (bytes > 0) std::memcpy(data, payload.data(), bytes);
}

void Comm::sendrecv(const void* send_data, std::size_t send_bytes, int dst, int send_tag,
                    void* recv_data, std::size_t recv_bytes, int src, int recv_tag) {
  send(send_data, send_bytes, dst, send_tag);
  recv(recv_data, recv_bytes, src, recv_tag);
}

void Comm::barrier() {
  const int p = size();
  const int payload = static_cast<int>(collective_seq_++ & kPayloadMask);
  for (int k = 1; k < p; k <<= 1) {
    const int to = (rank_ + k) % p;
    const int from = (rank_ - k + p) % p;
    // Barrier traffic uses its own channel so it cannot collide with user
    // sends carrying the same payload value.
    std::vector<std::byte> msg(1);
    world_->mailbox(group_[static_cast<std::size_t>(to)])
        .push(rank_, wire_tag(kChannelBarrier, payload), std::move(msg));
    (void)world_->mailbox(global_rank()).pop(from, wire_tag(kChannelBarrier, payload));
  }
}

Comm::CollTag Comm::next_collective_tag() {
  return CollTag{wire_tag(kChannelCollective, static_cast<int>(collective_seq_++ & kPayloadMask))};
}

void Comm::send(const void* data, std::size_t bytes, int dst, CollTag tag) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("send: bad destination rank");
  std::vector<std::byte> payload(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);
  world_->mailbox(group_[static_cast<std::size_t>(dst)]).push(rank_, tag.wire, std::move(payload));
}

void Comm::recv(void* data, std::size_t bytes, int src, CollTag tag) {
  if (src < 0 || src >= size()) throw std::out_of_range("recv: bad source rank");
  std::vector<std::byte> payload = world_->mailbox(global_rank()).pop(src, tag.wire);
  if (payload.size() != bytes)
    throw std::length_error("recv(coll): message size mismatch");
  if (bytes > 0) std::memcpy(data, payload.data(), bytes);
}

void Comm::sendrecv(const void* send_data, std::size_t send_bytes, int dst, void* recv_data,
                    std::size_t recv_bytes, int src, CollTag tag) {
  send(send_data, send_bytes, dst, tag);
  recv(recv_data, recv_bytes, src, tag);
}

std::optional<Comm> Comm::split(int color, int key) {
  const int p = size();
  const int seq = static_cast<int>(split_seq_++ & kPayloadMask);
  const int tag = wire_tag(kChannelSplit, seq);

  // Allgather (color, key) over this communicator via a simple root gather +
  // broadcast, using raw sends on the split channel.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  std::vector<Entry> entries(static_cast<std::size_t>(p));
  Entry mine{color, key, rank_};
  if (rank_ == 0) {
    entries[0] = mine;
    for (int r = 1; r < p; ++r) {
      std::vector<std::byte> msg = world_->mailbox(global_rank()).pop(r, tag);
      if (msg.size() != sizeof(Entry)) throw std::length_error("split: bad entry size");
      std::memcpy(&entries[static_cast<std::size_t>(r)], msg.data(), sizeof(Entry));
    }
    for (int r = 1; r < p; ++r) {
      std::vector<std::byte> msg(entries.size() * sizeof(Entry));
      std::memcpy(msg.data(), entries.data(), msg.size());
      world_->mailbox(group_[static_cast<std::size_t>(r)]).push(0, tag, std::move(msg));
    }
  } else {
    std::vector<std::byte> msg(sizeof(Entry));
    std::memcpy(msg.data(), &mine, sizeof(Entry));
    world_->mailbox(group_[0]).push(rank_, tag, std::move(msg));
    std::vector<std::byte> all = world_->mailbox(global_rank()).pop(0, tag);
    if (all.size() != entries.size() * sizeof(Entry))
      throw std::length_error("split: bad table size");
    std::memcpy(entries.data(), all.data(), all.size());
  }

  if (color == kUndefinedColor) return std::nullopt;

  std::vector<Entry> members;
  for (const auto& e : entries)
    if (e.color == color) members.push_back(e);
  std::stable_sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });

  std::vector<int> group;
  int my_new_rank = -1;
  for (const auto& m : members) {
    if (m.rank == rank_) my_new_rank = static_cast<int>(group.size());
    group.push_back(group_[static_cast<std::size_t>(m.rank)]);
  }
  if (my_new_rank < 0) throw std::logic_error("split: caller missing from its own color group");

  // Deterministic child context, identical on all members of the group:
  // mix the parent context, the split ordinal, and the color.
  const std::uint32_t child_context =
      (context_ * 1315423911u + static_cast<std::uint32_t>(seq) * 2654435761u +
       static_cast<std::uint32_t>(color) + 1u) &
      kContextMask;
  // Context 0 is reserved for the world communicator.
  const std::uint32_t safe_context = child_context == 0 ? 1u : child_context;
  return Comm(*world_, std::move(group), my_new_rank, safe_context);
}

}  // namespace dnnperf::mpi
