#include "mpi/mailbox.hpp"

namespace dnnperf::mpi {

void Mailbox::push(int source, int tag, std::vector<std::byte> payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[Key{source, tag}].push_back(std::move(payload));
    ++pending_;
  }
  cv_.notify_all();
}

std::vector<std::byte> Mailbox::pop(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key key{source, tag};
  cv_.wait(lock, [&] {
    auto it = queues_.find(key);
    return it != queues_.end() && !it->second.empty();
  });
  auto it = queues_.find(key);
  std::vector<std::byte> msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  --pending_;
  return msg;
}

bool Mailbox::probe(int source, int tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find(Key{source, tag});
  return it != queues_.end() && !it->second.empty();
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

}  // namespace dnnperf::mpi
