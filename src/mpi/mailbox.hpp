// Per-rank mailbox for the in-process MPI backend.
//
// Each rank owns one Mailbox; send() enqueues a byte message keyed by
// (source, tag), recv() blocks until a matching message arrives. Messages
// between a fixed (source, tag) pair are delivered FIFO, matching MPI's
// non-overtaking guarantee.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

namespace dnnperf::mpi {

class Mailbox {
 public:
  /// Enqueues a message from `source` with `tag`. Never blocks (buffered send).
  void push(int source, int tag, std::vector<std::byte> payload);

  /// Blocks until a message from (source, tag) is available and returns it.
  std::vector<std::byte> pop(int source, int tag);

  /// Non-blocking probe; true if a matching message is queued.
  bool probe(int source, int tag) const;

  /// Total queued messages (diagnostics).
  std::size_t pending() const;

 private:
  using Key = std::pair<int, int>;  // (source, tag)

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::deque<std::vector<std::byte>>> queues_;
  std::size_t pending_ = 0;
};

}  // namespace dnnperf::mpi
