#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace dnnperf::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(Engine, SimultaneousEventsAreFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(2.0, [&] {
    engine.schedule_after(0.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool ran = false;
  const EventId id = engine.schedule_at(1.0, [&] { ran = true; });
  engine.cancel(id);
  engine.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(engine.events_processed(), 0u);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int count = 0;
  engine.schedule_at(1.0, [&] { ++count; });
  engine.schedule_at(2.0, [&] { ++count; });
  engine.schedule_at(5.0, [&] { ++count; });
  engine.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  engine.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, PastSchedulingThrows) {
  Engine engine;
  engine.schedule_at(2.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-0.1, [] {}), std::invalid_argument);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule_at(0.0, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, PoolReusesSlotsInsteadOfGrowing) {
  // A self-rescheduling chain keeps exactly one event in flight, so the slab
  // must stay at one slot no matter how many events run through it.
  Engine engine;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 10000) engine.schedule_after(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run();
  EXPECT_EQ(fired, 10000);
  EXPECT_EQ(engine.events_scheduled(), 10000u);
  EXPECT_EQ(engine.events_processed(), 10000u);
  EXPECT_EQ(engine.pool_slots(), 1u);
}

TEST(Engine, PoolHighWaterTracksConcurrentEvents) {
  Engine engine;
  int fired = 0;
  for (int i = 0; i < 64; ++i) engine.schedule_at(static_cast<double>(i), [&] { ++fired; });
  EXPECT_EQ(engine.pool_slots(), 64u);
  engine.run();
  EXPECT_EQ(fired, 64);
  // The drained pool is reused by the next burst, not grown.
  for (int i = 0; i < 64; ++i)
    engine.schedule_at(engine.now() + i, [&] { ++fired; });
  EXPECT_EQ(engine.pool_slots(), 64u);
  engine.run();
  EXPECT_EQ(fired, 128);
}

TEST(Engine, StaleEventIdNeverCancelsAReusedSlot) {
  Engine engine;
  bool first = false, second = false;
  const EventId id = engine.schedule_at(1.0, [&] { first = true; });
  engine.run();
  // The slot is free now; the next event reuses it under a new generation.
  engine.schedule_at(2.0, [&] { second = true; });
  engine.cancel(id);  // stale: must not touch the reused slot
  engine.run();
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
}

TEST(Engine, CancelledEventsFreeTheirSlots) {
  Engine engine;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(engine.schedule_at(1.0 + i, [] {}));
  for (EventId id : ids) engine.cancel(id);
  EXPECT_TRUE(engine.empty());
  engine.run();
  EXPECT_EQ(engine.events_processed(), 0u);
  // All 8 slots drained back to the free list: a new burst fits in place.
  for (int i = 0; i < 8; ++i) engine.schedule_at(10.0 + i, [] {});
  EXPECT_EQ(engine.pool_slots(), 8u);
  engine.run();
}

TEST(Resource, GrantsUpToCapacity) {
  Engine engine;
  Resource res(engine, 2);
  int granted = 0;
  for (int i = 0; i < 3; ++i) res.acquire([&] { ++granted; });
  engine.run();
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(res.in_use(), 2);
  EXPECT_EQ(res.queue_length(), 1u);

  res.release();
  engine.run();
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(res.in_use(), 2);  // unit transferred to the waiter
}

TEST(Resource, FifoOrderAmongWaiters) {
  Engine engine;
  Resource res(engine, 1);
  std::vector<int> order;
  res.acquire([&] { order.push_back(0); });
  res.acquire([&] { order.push_back(1); });
  res.acquire([&] { order.push_back(2); });
  engine.run();
  res.release();
  engine.run();
  res.release();
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, ReleaseWithoutAcquireThrows) {
  Engine engine;
  Resource res(engine, 1);
  EXPECT_THROW(res.release(), std::logic_error);
  EXPECT_THROW(Resource(engine, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dnnperf::sim
