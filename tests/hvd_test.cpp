#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <vector>

#include "hvd/protocol.hpp"
#include "hvd/real_engine.hpp"
#include "hvd/timeline.hpp"
#include "mpi/world.hpp"
#include "util/rng.hpp"

namespace dnnperf::hvd {
namespace {

// ---------------------------------------------------------------------------
// RealEngine (threads + minimpi)
// ---------------------------------------------------------------------------

/// Builds deterministic per-rank "gradients" for tensor t, element i.
float grad_value(int rank, int tensor, std::size_t i) {
  return static_cast<float>(rank + 1) * 0.5f + tensor * 2.0f + static_cast<float>(i) * 0.25f;
}

class FusionParam : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FusionParam, FusedAverageMatchesManualAverage) {
  const auto [ranks, threshold] = GetParam();
  mpi::World::run(ranks, [&, ranks = ranks, threshold = threshold](mpi::Comm& comm) {
    FusionPolicy policy;
    policy.fusion_threshold_bytes = threshold;
    RealEngine engine(comm, policy);

    const std::vector<std::size_t> sizes{5, 128, 1, 64, 32};
    std::vector<std::vector<float>> grads;
    std::vector<int> ids;
    for (std::size_t t = 0; t < sizes.size(); ++t) {
      ids.push_back(engine.register_tensor("t" + std::to_string(t), sizes[t]));
      std::vector<float> g(sizes[t]);
      for (std::size_t i = 0; i < g.size(); ++i)
        g[i] = grad_value(comm.rank(), static_cast<int>(t), i);
      grads.push_back(std::move(g));
    }
    for (std::size_t t = 0; t < sizes.size(); ++t)
      engine.submit(ids[t], std::span<float>(grads[t]));
    engine.synchronize();

    for (std::size_t t = 0; t < sizes.size(); ++t) {
      EXPECT_TRUE(engine.is_complete(ids[t]));
      for (std::size_t i = 0; i < sizes[t]; ++i) {
        float expected = 0.0f;
        for (int r = 0; r < ranks; ++r) expected += grad_value(r, static_cast<int>(t), i);
        expected /= static_cast<float>(ranks);
        ASSERT_NEAR(grads[t][i], expected, 1e-5f) << "tensor " << t << " elem " << i;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    RanksByThreshold, FusionParam,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       // Tiny threshold -> one allreduce per tensor; huge ->
                       // everything fuses into a single buffer.
                       ::testing::Values(4.0, 600.0, 64.0 * 1024 * 1024)),
    [](const ::testing::TestParamInfo<std::tuple<int, double>>& param_info) {
      return "p" + std::to_string(std::get<0>(param_info.param)) + "_thresh" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param)));
    });

TEST(RealEngine, TinyThresholdDisablesFusion) {
  mpi::World::run(2, [](mpi::Comm& comm) {
    FusionPolicy policy;
    policy.fusion_threshold_bytes = 4.0;  // one float: nothing can fuse
    RealEngine engine(comm, policy);
    std::vector<std::vector<float>> grads(6, std::vector<float>(16, 1.0f));
    for (int t = 0; t < 6; ++t) engine.register_tensor("t" + std::to_string(t), 16);
    for (int t = 0; t < 6; ++t) engine.submit(t, std::span<float>(grads[static_cast<std::size_t>(t)]));
    engine.process();
    EXPECT_EQ(engine.stats().data_allreduces, 6u);
  });
}

TEST(RealEngine, LargeThresholdFusesToOneBuffer) {
  mpi::World::run(2, [](mpi::Comm& comm) {
    RealEngine engine(comm, FusionPolicy{});  // 64 MiB default
    std::vector<std::vector<float>> grads(6, std::vector<float>(16, 1.0f));
    for (int t = 0; t < 6; ++t) engine.register_tensor("t" + std::to_string(t), 16);
    for (int t = 0; t < 6; ++t) engine.submit(t, std::span<float>(grads[static_cast<std::size_t>(t)]));
    engine.process();
    EXPECT_EQ(engine.stats().data_allreduces, 1u);
    EXPECT_EQ(engine.stats().framework_requests, 6u);
    EXPECT_EQ(engine.stats().engine_wakeups, 1u);
  });
}

TEST(RealEngine, StragglerTensorWaitsForAllRanks) {
  // Rank 1 submits tensor 0 late: the first cycle must not reduce it.
  mpi::World::run(2, [](mpi::Comm& comm) {
    RealEngine engine(comm, FusionPolicy{});
    engine.register_tensor("a", 4);
    std::vector<float> grad(4, static_cast<float>(comm.rank()));
    if (comm.rank() == 0) engine.submit(0, std::span<float>(grad));
    const int done_first = engine.process();
    EXPECT_EQ(done_first, 0);
    if (comm.rank() == 1) engine.submit(0, std::span<float>(grad));
    const int done_second = engine.process();
    EXPECT_EQ(done_second, 1);
    EXPECT_NEAR(grad[0], 0.5f, 1e-6f);
  });
}

TEST(RealEngine, RegisterAfterProcessThrows) {
  // The coordination ready vector is sized by the registration set at the
  // first cycle; registering afterwards would desynchronize its length
  // across ranks, so the engine must reject it loudly.
  mpi::World::run(2, [](mpi::Comm& comm) {
    RealEngine engine(comm, FusionPolicy{});
    engine.register_tensor("a", 4);
    std::vector<float> g(4, 1.0f);
    engine.submit(0, std::span<float>(g));
    engine.process();
    EXPECT_THROW(engine.register_tensor("late", 4), std::logic_error);
  });
}

TEST(RealEngine, MisuseThrows) {
  mpi::World::run(1, [](mpi::Comm& comm) {
    RealEngine engine(comm, FusionPolicy{});
    engine.register_tensor("a", 4);
    EXPECT_THROW(engine.register_tensor("a", 4), std::invalid_argument);
    std::vector<float> wrong(3);
    EXPECT_THROW(engine.submit(0, std::span<float>(wrong)), std::invalid_argument);
    std::vector<float> ok(4);
    engine.submit(0, std::span<float>(ok));
    EXPECT_THROW(engine.submit(0, std::span<float>(ok)), std::logic_error);
  });
}


class HierEngineParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HierEngineParam, HierarchicalExchangeMatchesFlat) {
  const auto [nodes, rpn] = GetParam();
  const int ranks = nodes * rpn;
  mpi::World::run(ranks, [&, rpn = rpn, ranks = ranks](mpi::Comm& comm) {
    RealEngine flat(comm, FusionPolicy{});
    RealEngine hier(comm, FusionPolicy{}, rpn);
    std::vector<float> a(37), b(37);
    for (std::size_t i = 0; i < a.size(); ++i)
      a[i] = b[i] = grad_value(comm.rank(), 0, i);
    flat.register_tensor("t", a.size());
    hier.register_tensor("t", b.size());
    flat.submit(0, std::span<float>(a));
    hier.submit(0, std::span<float>(b));
    flat.synchronize();
    hier.synchronize();
    for (std::size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], b[i], 1e-5f);
    (void)ranks;
  });
}

INSTANTIATE_TEST_SUITE_P(NodesByRpn, HierEngineParam,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 4)));

TEST(RealEngine, HierarchicalRejectsBadRanksPerNode) {
  mpi::World::run(4, [](mpi::Comm& comm) {
    EXPECT_THROW(RealEngine(comm, FusionPolicy{}, 3), std::invalid_argument);
    EXPECT_THROW(RealEngine(comm, FusionPolicy{}, -1), std::invalid_argument);
  });
}

// ---------------------------------------------------------------------------
// Timeline DES
// ---------------------------------------------------------------------------

TimelineInput basic_input(const mpi::CollectiveCostModel* cost) {
  TimelineInput in;
  in.fwd_time = 0.1;
  in.bwd_time = 0.2;
  in.optimizer_time = 0.01;
  in.iteration_fixed = 0.005;
  in.iterations = 4;
  in.cost = cost;
  for (int i = 0; i < 10; ++i)
    in.grad_events.push_back({0.02 * (i + 1), 1e6});
  return in;
}

TEST(Timeline, NoCommPathIsPureCompute) {
  const auto r = simulate_training(basic_input(nullptr));
  EXPECT_NEAR(r.per_iteration, 0.005 + 0.1 + 0.2 + 0.01, 1e-9);
  EXPECT_EQ(r.stats.engine_wakeups, 0u);
  EXPECT_EQ(r.stats.data_allreduces, 0u);
  // With no cost model there is no Horovod engine, so nothing can be
  // *requested* of one — matching the real path, where single-process
  // training never constructs a RealEngine and counts zero requests.
  // (This used to report 40, diverging from every real no-comm run.)
  EXPECT_EQ(r.stats.framework_requests, 0u);
}

TEST(Timeline, CommunicationAddsTimeAndCounters) {
  mpi::CollectiveCostModel cost(net::Topology(4, 4, hw::FabricKind::InfiniBandEDR));
  const auto none = simulate_training(basic_input(nullptr));
  const auto comm = simulate_training(basic_input(&cost));
  EXPECT_GT(comm.per_iteration, none.per_iteration);
  EXPECT_GT(comm.stats.engine_wakeups, 0u);
  EXPECT_GT(comm.stats.data_allreduces, 0u);
  EXPECT_DOUBLE_EQ(comm.stats.bytes_reduced, 4 * 10 * 1e6);
}

TEST(Timeline, LargerCycleTimeMeansFewerEngineOps) {
  mpi::CollectiveCostModel cost(net::Topology(4, 4, hw::FabricKind::InfiniBandEDR));
  auto in = basic_input(&cost);
  const auto fast = simulate_training(in);
  in.policy.cycle_time_s = 50e-3;
  const auto slow = simulate_training(in);
  EXPECT_LT(slow.stats.engine_allreduces(), fast.stats.engine_allreduces());
  EXPECT_EQ(slow.stats.framework_requests, fast.stats.framework_requests);
}

TEST(Timeline, SharedCoreTaxSlowsCompute) {
  mpi::CollectiveCostModel cost(net::Topology(4, 4, hw::FabricKind::InfiniBandEDR));
  auto in = basic_input(&cost);
  in.comm_thread_shares_core = false;
  const auto dedicated = simulate_training(in);
  in.comm_thread_shares_core = true;
  const auto taxed = simulate_training(in);
  // With a 0.8 ms wakeup cost at 3.5 ms cycles, ~23% of compute is stolen
  // when the progress thread shares a core (vs ~3% interference otherwise).
  EXPECT_GT(taxed.per_iteration, dedicated.per_iteration * 1.1);
}

TEST(Timeline, StragglerFactorStretchesCompute) {
  auto in = basic_input(nullptr);
  in.straggler_factor = 1.10;
  const auto r = simulate_training(in);
  EXPECT_NEAR(r.per_iteration, 0.005 + 1.10 * (0.1 + 0.2 + 0.01), 1e-9);
  in.straggler_factor = 0.5;
  EXPECT_THROW(simulate_training(in), std::invalid_argument);
}

TEST(Timeline, IterationsScaleTotalTime) {
  auto in = basic_input(nullptr);
  const auto four = simulate_training(in);
  in.iterations = 8;
  const auto eight = simulate_training(in);
  EXPECT_NEAR(eight.total_time, 2.0 * four.total_time, 1e-9);
  in.iterations = 0;
  EXPECT_THROW(simulate_training(in), std::invalid_argument);
}

TEST(Timeline, CommExposureReportedWhenCommDominates) {
  // Gradients all land at the very end of a short backward pass over a slow
  // 10GigE fabric: communication cannot overlap and must be exposed.
  mpi::CollectiveCostModel cost(net::Topology(8, 1, hw::FabricKind::Ethernet10G));
  TimelineInput in;
  in.fwd_time = 0.01;
  in.bwd_time = 0.02;
  in.iterations = 2;
  in.cost = &cost;
  in.grad_events.push_back({0.02, 100e6});
  const auto r = simulate_training(in);
  EXPECT_GT(r.comm_exposed_fraction, 0.3);
}

TEST(Timeline, IdleWakeupsNotCharged) {
  // Make a single negotiation allreduce far more expensive than the cycle
  // time, then pad the forward pass with 5 s of comm-free compute. Idle
  // wake-ups during that padding are counted (the engine's coordination op
  // fires every cycle, as in RealEngine::process()) but must not charge the
  // negotiation cost: the padded run takes exactly the extra compute time
  // longer. The pre-fix code billed every idle wake-up, slowing the wake
  // cadence to the negotiation time and stretching iterations.
  mpi::CollectiveCostModel cost(net::Topology(4, 4, hw::FabricKind::InfiniBandEDR));
  auto in = basic_input(&cost);
  in.wakeup_cpu_s = 0.0;                   // no progress-thread tax: stretch == 1
  in.negotiation_bytes_per_tensor = 1e8;   // ~1 GB negotiation >> 3.5 ms cycle
  const auto base = simulate_training(in);
  auto padded = in;
  padded.fwd_time += 5.0;
  const auto r = simulate_training(padded);
  EXPECT_NEAR(r.total_time - base.total_time, 4 * 5.0, 0.05);
  EXPECT_GT(r.stats.engine_wakeups, base.stats.engine_wakeups + 4000);  // idle cycles counted
  EXPECT_EQ(r.stats.framework_requests, 40u);
  EXPECT_DOUBLE_EQ(r.stats.bytes_reduced, 4 * 10 * 1e6);
}

TEST(Timeline, CounterParityWithRealEngine) {
  // Same workload shape in the DES and the real engine: 10 gradients that
  // all become ready at once, default 64 MiB fusion threshold, 3 iterations.
  // Both must report one fused data allreduce per iteration and identical
  // framework/byte totals. Wake-up counts differ by construction: the real
  // engine is driven synchronously (synchronize() cycles it only while work
  // is outstanding) while the simulated engine free-runs on the cycle timer
  // and also counts idle coordination cycles.
  constexpr int kSteps = 3;
  constexpr int kTensors = 10;
  constexpr std::size_t kElems = 1024;  // 4096 bytes each

  mpi::CollectiveCostModel cost(net::Topology(2, 1, hw::FabricKind::InfiniBandEDR));
  TimelineInput in;
  in.fwd_time = 0.05;
  in.bwd_time = 0.05;
  in.iterations = kSteps;
  in.cost = &cost;
  for (int i = 0; i < kTensors; ++i)
    in.grad_events.push_back({0.0, kElems * sizeof(float)});
  const auto sim = simulate_training(in);

  CommStats real;
  mpi::World::run(2, [&](mpi::Comm& comm) {
    RealEngine engine(comm, FusionPolicy{});
    std::vector<std::vector<float>> grads(kTensors, std::vector<float>(kElems, 1.0f));
    for (int t = 0; t < kTensors; ++t) engine.register_tensor("t" + std::to_string(t), kElems);
    for (int step = 0; step < kSteps; ++step) {
      for (int t = 0; t < kTensors; ++t)
        engine.submit(t, std::span<float>(grads[static_cast<std::size_t>(t)]));
      engine.synchronize();
    }
    if (comm.rank() == 0) real = engine.stats();
  });

  EXPECT_EQ(sim.stats.data_allreduces, real.data_allreduces);
  EXPECT_EQ(sim.stats.framework_requests, real.framework_requests);
  EXPECT_DOUBLE_EQ(sim.stats.bytes_reduced, real.bytes_reduced);
  EXPECT_GE(sim.stats.engine_wakeups, real.engine_wakeups);
  EXPECT_EQ(real.engine_wakeups, static_cast<std::uint64_t>(kSteps));
  EXPECT_EQ(real.data_allreduces, static_cast<std::uint64_t>(kSteps));
}

TEST(Timeline, PerRankModeKeepsCounterParityAtFourThousandRanks) {
  // Zero jitter and zero wake-up tax (stretch == 1) make every explicit rank
  // follow the representative rank's exact virtual schedule, so per-rank mode
  // at 4096 ranks must reproduce the representative-rank engine view: same
  // framework requests, same fused data allreduces, same bytes. What changes
  // is the event volume — ranks x (tensors + 1) chains per iteration through
  // the slab pool — while the pool's resident footprint stays O(ranks)
  // because each rank keeps exactly one submission event in flight.
  mpi::CollectiveCostModel cost(net::Topology(256, 16, hw::FabricKind::OmniPath));
  auto in = basic_input(&cost);
  in.wakeup_cpu_s = 0.0;
  const auto rep = simulate_training(in);

  auto per_rank = in;
  per_rank.sim_ranks = 4096;
  per_rank.per_rank_jitter_cv = 0.0;
  const auto sim = simulate_training(per_rank);

  EXPECT_EQ(sim.stats.framework_requests, rep.stats.framework_requests);
  EXPECT_EQ(sim.stats.data_allreduces, rep.stats.data_allreduces);
  EXPECT_DOUBLE_EQ(sim.stats.bytes_reduced, rep.stats.bytes_reduced);
  EXPECT_NEAR(sim.per_iteration, rep.per_iteration, 1e-6);

  // 4096 ranks x 10 submissions x 4 iterations of submit events alone.
  EXPECT_GT(sim.events_processed, 4096u * 10u * 4u);
  EXPECT_GT(sim.events_processed, 50 * rep.events_processed);
  EXPECT_GE(sim.pool_slots, 4096u);
  EXPECT_LT(sim.pool_slots, 3u * 4096u);
}

TEST(FusionPolicy, Validation) {
  FusionPolicy p;
  p.cycle_time_s = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FusionPolicy{};
  p.fusion_threshold_bytes = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// plan_fusion: the packing rule shared by RealEngine, TimelineSim, and the
// protocol model checker
// ---------------------------------------------------------------------------

TEST(PlanFusion, GroupsRespectCapacityAndCoverEveryReadyIdOnce) {
  const std::vector<std::size_t> sizes = {3, 1, 4, 2, 2};
  const std::vector<int> ready = {0, 1, 2, 3, 4};
  const auto groups = plan_fusion(ready, sizes, std::size_t{4});

  std::vector<int> covered;
  for (const auto& group : groups) {
    ASSERT_FALSE(group.empty());
    std::size_t total = 0;
    for (int id : group) total += sizes[static_cast<std::size_t>(id)];
    EXPECT_LE(total, 4u);  // no single-tensor group is oversized here
    covered.insert(covered.end(), group.begin(), group.end());
  }
  EXPECT_EQ(covered, ready);  // id order preserved, each shipped exactly once
  // Greedy id-order packing: {3,1}, {4}, {2,2}.
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<int>{2}));
  EXPECT_EQ(groups[2], (std::vector<int>{3, 4}));
}

TEST(PlanFusion, OversizedTensorShipsAloneByDefault) {
  const std::vector<std::size_t> sizes = {10, 2};
  const auto groups = plan_fusion({0, 1}, sizes, std::size_t{4});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<int>{0}));  // bypasses fusion, still ships
  EXPECT_EQ(groups[1], (std::vector<int>{1}));
}

TEST(PlanFusion, StrictCapacitySkipsOversizedTensors) {
  const std::vector<std::size_t> sizes = {10, 2, 1};
  const auto groups = plan_fusion({0, 1, 2}, sizes, std::size_t{4},
                                  /*allow_oversized=*/false);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<int>{1, 2}));  // t0 is never planned
}

TEST(PlanFusion, EmptyReadySetPlansNothing) {
  EXPECT_TRUE(plan_fusion({}, std::vector<std::size_t>{1, 2}, std::size_t{4}).empty());
}

TEST(CommStats, Accumulate) {
  CommStats a, b;
  a.engine_wakeups = 2;
  a.data_allreduces = 3;
  b.engine_wakeups = 5;
  b.framework_requests = 7;
  a += b;
  EXPECT_EQ(a.engine_wakeups, 7u);
  EXPECT_EQ(a.engine_allreduces(), 10u);
  EXPECT_EQ(a.framework_requests, 7u);
}

}  // namespace
}  // namespace dnnperf::hvd
