#include <gtest/gtest.h>

#include "dnn/models.hpp"
#include "dnn/report.hpp"

namespace dnnperf::dnn {
namespace {

TEST(Summary, TableCoversAllOpsOrTruncates) {
  const Graph g = build_model(ModelId::AlexNet);
  EXPECT_EQ(summary_table(g).rows(), static_cast<std::size_t>(g.size()));
  EXPECT_EQ(summary_table(g, 5).rows(), 5u);
}

TEST(KindBreakdown, SumsMatchGraphTotals) {
  const Graph g = build_model(ModelId::ResNet50);
  const auto table = kind_breakdown(g);
  // One row per op kind present; count column sums to the op count.
  int ops = 0;
  for (std::size_t r = 0; r < table.rows(); ++r) ops += std::stoi(table.row(r)[1]);
  EXPECT_EQ(ops, g.size());
}

TEST(KindBreakdown, ConvsCarryMostResNetFlops) {
  const Graph g = build_model(ModelId::ResNet152);
  double conv_fwd = 0.0;
  for (const auto& op : g.ops())
    if (op.kind == OpKind::Conv2d) conv_fwd += op.fwd_flops;
  EXPECT_GT(conv_fwd / g.total_fwd_flops(), 0.9);
}

TEST(Memory, FootprintScalesWithBatch) {
  const Graph g = build_model(ModelId::ResNet50);
  const auto fp1 = training_memory(g, 1);
  const auto fp64 = training_memory(g, 64);
  EXPECT_DOUBLE_EQ(fp64.weight_bytes, fp1.weight_bytes);
  EXPECT_NEAR(fp64.activation_bytes / fp1.activation_bytes, 64.0, 1e-9);
  EXPECT_GT(fp64.total(), fp1.total());
  // ResNet-50 weights are ~102 MB in fp32.
  EXPECT_NEAR(fp1.weight_bytes, 25.56e6 * 4, 0.5e6);
}

TEST(Memory, MaxBatchMatchesFootprint) {
  const Graph g = build_model(ModelId::ResNet50);
  // A K80 logical GPU has 12 GB; the fitting batch must train within it.
  const double k80 = 12.0 * 1024 * 1024 * 1024;
  const int bs = max_batch_for_memory(g, k80);
  EXPECT_GT(bs, 8);
  EXPECT_LE(training_memory(g, bs).total(), k80);
  EXPECT_GT(training_memory(g, bs + 1).total(), k80);
  // And nothing fits in a kilobyte.
  EXPECT_EQ(max_batch_for_memory(g, 1024.0), 0);
}

TEST(Memory, BiggerModelsNeedMoreMemory) {
  const double budget = 16.0 * 1024 * 1024 * 1024;
  const int bs50 = max_batch_for_memory(build_model(ModelId::ResNet50), budget);
  const int bs152 = max_batch_for_memory(build_model(ModelId::ResNet152), budget);
  EXPECT_GT(bs50, bs152);
}

TEST(Dot, ExportsValidishGraphviz) {
  const Graph g = build_model(ModelId::AlexNet);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 ["), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Every edge in the graph appears.
  std::size_t edges = 0;
  for (const auto& op : g.ops()) edges += op.inputs.size();
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos; pos = dot.find("->", pos + 2))
    ++arrows;
  EXPECT_EQ(arrows, edges);
}

}  // namespace
}  // namespace dnnperf::dnn
