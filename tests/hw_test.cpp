#include <gtest/gtest.h>

#include "hw/platforms.hpp"

namespace dnnperf::hw {
namespace {

// Table I of the paper: label, clock (GHz), total cores, threads/core.
struct TableIRow {
  const char* label;
  double clock;
  int cores;
  int threads_per_core;
};

class TableIParam : public ::testing::TestWithParam<TableIRow> {};

TEST_P(TableIParam, MatchesPaperTableI) {
  const auto& row = GetParam();
  const CpuModel cpu = cpu_by_label(row.label);
  EXPECT_DOUBLE_EQ(cpu.clock_ghz, row.clock);
  EXPECT_EQ(cpu.total_cores(), row.cores);
  EXPECT_EQ(cpu.threads_per_core, row.threads_per_core);
}

INSTANTIATE_TEST_SUITE_P(
    PaperPlatforms, TableIParam,
    ::testing::Values(
        // Table I lists per-node totals; EPYC rows follow the prose
        // (dual-socket 7551, SMT2) — see the note in hw/platforms.hpp.
        TableIRow{"Skylake-1", 2.6, 28, 1}, TableIRow{"Skylake-2", 2.4, 40, 1},
        TableIRow{"Skylake-3", 2.1, 48, 2}, TableIRow{"Broadwell", 2.4, 28, 1},
        TableIRow{"EPYC", 2.0, 64, 2}));

TEST(CpuModel, PeakFlopsMath) {
  const CpuModel skx = skylake3();
  // 48 cores x 2.1 GHz x 64 fp32/cycle = 6451.2 GFLOP/s.
  EXPECT_NEAR(skx.peak_gflops(), 6451.2, 0.1);
  EXPECT_EQ(skx.total_hw_threads(), 96);
  EXPECT_EQ(skx.numa_domains(), 2);
  EXPECT_EQ(skx.cores_per_numa_domain(), 24);
}

TEST(CpuModel, EpycNumaLayout) {
  const CpuModel amd = epyc();
  EXPECT_EQ(amd.numa_domains(), 8);  // 4 dies per socket x 2 sockets (Naples)
  EXPECT_EQ(amd.cores_per_numa_domain(), 8);
  EXPECT_EQ(amd.vendor, CpuVendor::Amd);
}

TEST(CpuModel, ValidationRejectsBadValues) {
  CpuModel cpu = skylake1();
  cpu.cores_per_socket = 0;
  EXPECT_THROW(cpu.validate(), std::invalid_argument);

  cpu = skylake1();
  cpu.numa_domains_per_socket = 3;  // 14 cores not divisible by 3
  EXPECT_THROW(cpu.validate(), std::invalid_argument);

  cpu = skylake1();
  cpu.smt_speedup_fraction = 0.5;  // SMT fraction without SMT
  EXPECT_THROW(cpu.validate(), std::invalid_argument);
}

TEST(GpuModel, OrderingOfGenerations) {
  EXPECT_LT(k80().peak_fp32_tflops, p100().peak_fp32_tflops);
  EXPECT_LT(p100().peak_fp32_tflops, v100().peak_fp32_tflops);
  // Effective (peak x achievable) ordering must hold too.
  EXPECT_LT(k80().peak_gflops() * k80().achievable_fraction,
            p100().peak_gflops() * p100().achievable_fraction);
  EXPECT_LT(p100().peak_gflops() * p100().achievable_fraction,
            v100().peak_gflops() * v100().achievable_fraction);
}

TEST(GpuModel, ValidationRejectsBadValues) {
  GpuModel gpu = v100();
  gpu.achievable_fraction = 1.5;
  EXPECT_THROW(gpu.validate(), std::invalid_argument);
  gpu = v100();
  gpu.peak_fp32_tflops = 0.0;
  EXPECT_THROW(gpu.validate(), std::invalid_argument);
}

TEST(Registry, LookupsWork) {
  EXPECT_EQ(cpu_by_label("Broadwell").name, "Xeon E5-2680 v4");
  EXPECT_EQ(gpu_by_name("V100").devices_per_node, 2);
  EXPECT_EQ(cluster_by_name("Stampede2").max_nodes, 128);
  EXPECT_THROW(cpu_by_label("Sapphire"), std::out_of_range);
  EXPECT_THROW(gpu_by_name("H100"), std::out_of_range);
  EXPECT_THROW(cluster_by_name("Frontera"), std::out_of_range);
}

TEST(Registry, ClustersValidateAndMatchPaper) {
  for (const auto& cluster : all_clusters()) EXPECT_NO_THROW(cluster.validate());
  EXPECT_EQ(stampede2().fabric, FabricKind::OmniPath);
  EXPECT_EQ(pitzer().fabric, FabricKind::InfiniBandEDR);
  EXPECT_EQ(amd_cluster().max_nodes, 8);
  EXPECT_TRUE(pitzer_v100().node.has_gpu());
  EXPECT_FALSE(stampede2().node.has_gpu());
}

TEST(Registry, AllCpusAreTableI) {
  EXPECT_EQ(all_cpus().size(), 5u);
  EXPECT_EQ(all_gpus().size(), 3u);
}

}  // namespace
}  // namespace dnnperf::hw
