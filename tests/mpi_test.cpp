#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <tuple>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/cost.hpp"
#include "mpi/world.hpp"

namespace dnnperf::mpi {
namespace {

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

TEST(P2P, SendRecvMovesBytes) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int value = 12345;
      comm.send(&value, sizeof(value), 1, 7);
    } else {
      int got = 0;
      comm.recv(&got, sizeof(got), 0, 7);
      EXPECT_EQ(got, 12345);
    }
  });
}

TEST(P2P, MessagesAreFifoPerSourceAndTag) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send(&i, sizeof(i), 1, 3);
    } else {
      for (int i = 0; i < 10; ++i) {
        int got = -1;
        comm.recv(&got, sizeof(got), 0, 3);
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(P2P, TagsAreIndependent) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 1, b = 2;
      comm.send(&a, sizeof(a), 1, 10);
      comm.send(&b, sizeof(b), 1, 20);
    } else {
      int got = 0;
      comm.recv(&got, sizeof(got), 0, 20);  // receive the later tag first
      EXPECT_EQ(got, 2);
      comm.recv(&got, sizeof(got), 0, 10);
      EXPECT_EQ(got, 1);
    }
  });
}

TEST(P2P, SizeMismatchThrows) {
  EXPECT_THROW(World::run(2,
                          [](Comm& comm) {
                            if (comm.rank() == 0) {
                              const std::int64_t big = 7;
                              comm.send(&big, sizeof(big), 1, 1);
                            } else {
                              int small = 0;
                              comm.recv(&small, sizeof(small), 0, 1);
                            }
                          }),
               std::length_error);
}

TEST(P2P, BadRankThrows) {
  EXPECT_THROW(World::run(1,
                          [](Comm& comm) {
                            int x = 0;
                            comm.send(&x, sizeof(x), 5, 0);
                          }),
               std::out_of_range);
}

TEST(Barrier, AllRanksPass) {
  for (int p : {1, 2, 3, 5, 8}) {
    std::atomic<int> before{0};
    World::run(p, [&](Comm& comm) {
      ++before;
      comm.barrier();
      EXPECT_EQ(before.load(), p);  // nobody exits before everyone arrived
    });
  }
}

// ---------------------------------------------------------------------------
// Collectives, parameterized over (algorithm, ranks, count)
// ---------------------------------------------------------------------------

using AllreduceCase = std::tuple<AllreduceAlgo, int, int>;

class AllreduceParam : public ::testing::TestWithParam<AllreduceCase> {};

TEST_P(AllreduceParam, SumMatchesSerialReference) {
  const auto [algo, ranks, count] = GetParam();
  World::run(ranks, [&, algo = algo, ranks = ranks, count = count](Comm& comm) {
    std::vector<double> data(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
      data[static_cast<std::size_t>(i)] = comm.rank() * 1000.0 + i;
    allreduce(comm, std::span<double>(data), ReduceOp::Sum, algo);
    for (int i = 0; i < count; ++i) {
      // sum over r of (r*1000 + i) = 1000*r(r-1)/2 ... over all ranks.
      const double expected = 1000.0 * ranks * (ranks - 1) / 2.0 + i * ranks;
      ASSERT_DOUBLE_EQ(data[static_cast<std::size_t>(i)], expected) << "element " << i;
    }
  });
}

TEST_P(AllreduceParam, MaxMatchesSerialReference) {
  const auto [algo, ranks, count] = GetParam();
  World::run(ranks, [&, algo = algo, ranks = ranks, count = count](Comm& comm) {
    std::vector<double> data(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
      data[static_cast<std::size_t>(i)] = (comm.rank() * 7 + i) % 13;
    allreduce(comm, std::span<double>(data), ReduceOp::Max, algo);
    for (int i = 0; i < count; ++i) {
      double expected = 0.0;
      for (int r = 0; r < ranks; ++r) expected = std::max(expected, double((r * 7 + i) % 13));
      ASSERT_DOUBLE_EQ(data[static_cast<std::size_t>(i)], expected);
    }
  });
}

std::string allreduce_case_name(const ::testing::TestParamInfo<AllreduceCase>& info) {
  static const char* const kNames[] = {"Auto", "Ring", "RecDoubling", "Rabenseifner"};
  return std::string(kNames[static_cast<int>(std::get<0>(info.param))]) + "_p" +
         std::to_string(std::get<1>(info.param)) + "_n" + std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsByRanksBySizes, AllreduceParam,
    ::testing::Combine(::testing::Values(AllreduceAlgo::Ring, AllreduceAlgo::RecursiveDoubling,
                                         AllreduceAlgo::Rabenseifner, AllreduceAlgo::Auto),
                       ::testing::Values(1, 2, 3, 4, 5, 8),
                       ::testing::Values(1, 7, 64, 1000)),
    allreduce_case_name);

TEST(Collectives, AllreduceIntMinProd) {
  World::run(4, [](Comm& comm) {
    std::vector<std::int32_t> mins{comm.rank() + 1, 10 - comm.rank()};
    allreduce(comm, std::span<std::int32_t>(mins), ReduceOp::Min, AllreduceAlgo::RecursiveDoubling);
    EXPECT_EQ(mins[0], 1);
    EXPECT_EQ(mins[1], 7);

    std::vector<std::int32_t> prods{2};
    allreduce(comm, std::span<std::int32_t>(prods), ReduceOp::Prod, AllreduceAlgo::Ring);
    EXPECT_EQ(prods[0], 16);  // 2^4
  });
}

class BcastParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BcastParam, EveryRankGetsRootData) {
  const auto [ranks, root] = GetParam();
  if (root >= ranks) GTEST_SKIP();
  World::run(ranks, [&, root = root](Comm& comm) {
    std::vector<float> data(33, comm.rank() == root ? 42.5f : 0.0f);
    bcast(comm, std::span<float>(data), root);
    for (float v : data) ASSERT_EQ(v, 42.5f);
  });
}

INSTANTIATE_TEST_SUITE_P(RanksByRoot, BcastParam,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                                            ::testing::Values(0, 1, 4)));

TEST(Collectives, AllgatherOrdersByRank) {
  for (int ranks : {1, 2, 4, 6}) {
    World::run(ranks, [ranks](Comm& comm) {
      std::vector<int> mine{comm.rank() * 2, comm.rank() * 2 + 1};
      std::vector<int> all(static_cast<std::size_t>(2 * ranks));
      allgather(comm, std::span<const int>(mine), std::span<int>(all));
      for (int i = 0; i < 2 * ranks; ++i) ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
    });
  }
}

TEST(Collectives, ReduceToEveryRoot) {
  const int ranks = 5;
  for (int root = 0; root < ranks; ++root) {
    World::run(ranks, [root, ranks](Comm& comm) {
      std::vector<double> data{static_cast<double>(comm.rank()), 1.0};
      reduce(comm, std::span<double>(data), ReduceOp::Sum, root);
      if (comm.rank() == root) {
        EXPECT_DOUBLE_EQ(data[0], ranks * (ranks - 1) / 2.0);
        EXPECT_DOUBLE_EQ(data[1], ranks);
      }
    });
  }
}

TEST(Collectives, BackToBackCollectivesDoNotInterfere) {
  World::run(4, [](Comm& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      std::vector<double> x{1.0};
      allreduce(comm, std::span<double>(x), ReduceOp::Sum, AllreduceAlgo::Ring);
      ASSERT_DOUBLE_EQ(x[0], 4.0);
      std::vector<float> y(3, comm.rank() == 0 ? float(iter) : -1.0f);
      bcast(comm, std::span<float>(y), 0);
      ASSERT_EQ(y[2], float(iter));
      comm.barrier();
    }
  });
}

TEST(Collectives, ErrorsPropagateFromRankThreads) {
  EXPECT_THROW(World::run(3,
                          [](Comm& comm) {
                            std::vector<float> data(4);
                            bcast(comm, std::span<float>(data), 9);  // bad root
                          }),
               std::out_of_range);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(CostModel, MonotoneInBytes) {
  CollectiveCostModel cost(net::Topology(8, 4, hw::FabricKind::InfiniBandEDR));
  double prev = 0.0;
  for (double bytes : {1e3, 1e5, 1e7, 1e9}) {
    const double t = cost.allreduce_time(bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_THROW(cost.allreduce_time(-1.0), std::invalid_argument);
}

TEST(CostModel, SingleRankIsFree) {
  CollectiveCostModel cost(net::Topology(1, 1, hw::FabricKind::InfiniBandEDR));
  EXPECT_EQ(cost.allreduce_time(1e6), 0.0);
  EXPECT_EQ(cost.barrier_time(), 0.0);
}

TEST(CostModel, HierarchicalBeatsFlatRingForLatencySensitiveSizes) {
  // 8 nodes x 16 ppn: a flat ring pays 2*(127) synchronized steps, each with
  // an inter-node hop; for small/medium payloads the hierarchical scheme
  // (shared-memory reduce, ring over 8 leaders, shared-memory bcast) wins.
  CollectiveCostModel cost(net::Topology(8, 16, hw::FabricKind::InfiniBandEDR));
  for (double bytes : {1e3, 64e3, 1e6})
    EXPECT_LT(cost.hierarchical_allreduce_time(bytes), cost.ring_allreduce_time_flat(bytes))
        << bytes;
}

TEST(CostModel, RecursiveDoublingWinsForSmallMessages) {
  CollectiveCostModel cost(net::Topology(16, 4, hw::FabricKind::InfiniBandEDR));
  EXPECT_LE(cost.recursive_doubling_time(64.0), cost.ring_allreduce_time_flat(64.0));
  // Auto never exceeds either candidate strategy.
  for (double bytes : {64.0, 1e5, 1e8}) {
    EXPECT_LE(cost.allreduce_time(bytes),
              cost.hierarchical_allreduce_time(bytes) + 1e-15);
    EXPECT_LE(cost.allreduce_time(bytes), cost.recursive_doubling_time(bytes) + 1e-15);
  }
}

TEST(CostModel, BandwidthTermDominatesAtLargeSize) {
  CollectiveCostModel cost(net::Topology(4, 1, hw::FabricKind::InfiniBandEDR));
  // Ring allreduce moves ~2 * bytes per rank; at 12 GB/s, 1.2 GB takes ~0.15 s.
  const double t = cost.allreduce_time(1.2e9, AllreduceAlgo::Ring);
  EXPECT_GT(t, 0.1);
  EXPECT_LT(t, 0.5);
}

TEST(CostModel, MoreNodesCostMore) {
  const double bytes = 240e6;  // ResNet-152 gradients
  double prev = 0.0;
  for (int nodes : {2, 8, 32, 128}) {
    CollectiveCostModel cost(net::Topology(nodes, 4, hw::FabricKind::OmniPath));
    const double t = cost.allreduce_time(bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}


// ---------------------------------------------------------------------------
// Communicator splitting and the collectives built on it
// ---------------------------------------------------------------------------

TEST(Split, GroupsByColorOrderedByKey) {
  World::run(6, [](Comm& comm) {
    // Even/odd split, keyed by descending rank.
    auto sub = comm.split(comm.rank() % 2, -comm.rank());
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->size(), 3);
    // key = -rank sorts descending: global ranks {4,2,0} / {5,3,1}.
    const int expected_rank = 2 - comm.rank() / 2;
    EXPECT_EQ(sub->rank(), expected_rank);
    EXPECT_EQ(sub->global_rank(), comm.rank());
  });
}

TEST(Split, UndefinedColorGetsNoCommunicator) {
  World::run(4, [](Comm& comm) {
    auto sub = comm.split(comm.rank() == 0 ? 0 : Comm::kUndefinedColor, 0);
    EXPECT_EQ(sub.has_value(), comm.rank() == 0);
    if (sub) {
      EXPECT_EQ(sub->size(), 1);
    }
  });
}

TEST(Split, SubCommunicatorCollectivesWork) {
  World::run(8, [](Comm& comm) {
    auto sub = comm.split(comm.rank() / 4, comm.rank());  // two groups of 4
    ASSERT_TRUE(sub.has_value());
    std::vector<double> x{1.0};
    allreduce(*sub, std::span<double>(x), ReduceOp::Sum, AllreduceAlgo::Ring);
    EXPECT_DOUBLE_EQ(x[0], 4.0);  // only the 4 group members contribute
    sub->barrier();

    // Parent communicator still works concurrently with the child.
    std::vector<double> y{1.0};
    allreduce(comm, std::span<double>(y), ReduceOp::Sum, AllreduceAlgo::Ring);
    EXPECT_DOUBLE_EQ(y[0], 8.0);
  });
}

TEST(Split, NestedSplits) {
  World::run(8, [](Comm& comm) {
    auto half = comm.split(comm.rank() / 4, comm.rank());
    ASSERT_TRUE(half.has_value());
    auto quarter = half->split(half->rank() / 2, half->rank());
    ASSERT_TRUE(quarter.has_value());
    EXPECT_EQ(quarter->size(), 2);
    std::vector<int> v{1};
    allreduce(*quarter, std::span<int>(v), ReduceOp::Sum, AllreduceAlgo::RecursiveDoubling);
    EXPECT_EQ(v[0], 2);
  });
}

TEST(Collectives, GatherToEveryRoot) {
  const int ranks = 5;
  for (int root = 0; root < ranks; ++root) {
    World::run(ranks, [root, ranks](Comm& comm) {
      std::vector<int> mine{comm.rank() * 10, comm.rank() * 10 + 1};
      std::vector<int> all(comm.rank() == root ? static_cast<std::size_t>(2 * ranks) : 0u);
      if (comm.rank() == root) {
        gather(comm, std::span<const int>(mine), std::span<int>(all), root);
        for (int r = 0; r < ranks; ++r) {
          ASSERT_EQ(all[static_cast<std::size_t>(2 * r)], r * 10);
          ASSERT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10 + 1);
        }
      } else {
        gather(comm, std::span<const int>(mine), std::span<int>(all), root);
      }
    });
  }
}

TEST(Collectives, ScatterFromEveryRoot) {
  const int ranks = 4;
  for (int root = 0; root < ranks; ++root) {
    World::run(ranks, [root, ranks](Comm& comm) {
      std::vector<float> all;
      if (comm.rank() == root)
        for (int i = 0; i < 3 * ranks; ++i) all.push_back(static_cast<float>(i));
      std::vector<float> mine(3);
      scatter(comm, std::span<const float>(all), std::span<float>(mine), root);
      for (int i = 0; i < 3; ++i)
        ASSERT_EQ(mine[static_cast<std::size_t>(i)], static_cast<float>(comm.rank() * 3 + i));
    });
  }
}

TEST(Collectives, GatherScatterRoundTrip) {
  World::run(6, [](Comm& comm) {
    std::vector<int> mine{comm.rank() + 100};
    std::vector<int> all(comm.rank() == 0 ? 6u : 0u);
    gather(comm, std::span<const int>(mine), std::span<int>(all), 0);
    std::vector<int> back(1);
    scatter(comm, std::span<const int>(all), std::span<int>(back), 0);
    EXPECT_EQ(back[0], comm.rank() + 100);
  });
}

class AlltoallParam : public ::testing::TestWithParam<int> {};

TEST_P(AlltoallParam, TransposesBlocks) {
  const int ranks = GetParam();
  World::run(ranks, [ranks](Comm& comm) {
    const std::size_t count = 3;
    std::vector<int> send(count * static_cast<std::size_t>(ranks));
    for (int d = 0; d < ranks; ++d)
      for (std::size_t i = 0; i < count; ++i)
        send[static_cast<std::size_t>(d) * count + i] =
            comm.rank() * 1000 + d * 10 + static_cast<int>(i);
    std::vector<int> recv(send.size());
    alltoall(comm, std::span<const int>(send), std::span<int>(recv), count);
    for (int src = 0; src < ranks; ++src)
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(recv[static_cast<std::size_t>(src) * count + i],
                  src * 1000 + comm.rank() * 10 + static_cast<int>(i));
  });
}

INSTANTIATE_TEST_SUITE_P(PowersAndOdd, AlltoallParam, ::testing::Values(1, 2, 4, 8, 3, 6));

class HierarchicalParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HierarchicalParam, MatchesFlatAllreduce) {
  const auto [nodes, rpn] = GetParam();
  const int ranks = nodes * rpn;
  World::run(ranks, [&, rpn = rpn, ranks = ranks](Comm& comm) {
    std::vector<double> hier(32), flat(32);
    for (std::size_t i = 0; i < hier.size(); ++i)
      hier[i] = flat[i] = comm.rank() * 3.0 + static_cast<double>(i);
    allreduce_hierarchical(comm, std::span<double>(hier), ReduceOp::Sum, rpn);
    allreduce(comm, std::span<double>(flat), ReduceOp::Sum, AllreduceAlgo::Ring);
    for (std::size_t i = 0; i < hier.size(); ++i) ASSERT_DOUBLE_EQ(hier[i], flat[i]);
  });
}

INSTANTIATE_TEST_SUITE_P(NodesByPpn, HierarchicalParam,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Exhaustive small-(p, n) oracle: every algorithm vs a serial reduction
// ---------------------------------------------------------------------------

/// Deterministic per-(rank, element) test value: small integers so Sum and
/// Prod stay exact in 64 bits across 8 ranks, signed so Min/Max differ.
long long oracle_value(int rank, int i, ReduceOp /*op*/) {
  return (rank * 31 + i * 7) % 23 - 11;
}

long long serial_reduce(ReduceOp op, int ranks, int i) {
  long long acc = oracle_value(0, i, op);
  for (int r = 1; r < ranks; ++r) {
    const long long v = oracle_value(r, i, op);
    switch (op) {
      case ReduceOp::Sum: acc += v; break;
      case ReduceOp::Max: acc = std::max(acc, v); break;
      case ReduceOp::Min: acc = std::min(acc, v); break;
      case ReduceOp::Prod: acc *= v; break;
    }
  }
  return acc;
}

constexpr int kOracleSizes[] = {0, 1, 2, 3, 5, 7, 8, 13};

TEST(CollectivesOracle, EveryAllreduceAlgorithmOnDegenerateGrids) {
  // The grid deliberately covers the paths the large-payload tests never
  // exercise: size 0, size < ranks (empty ring chunks), non-power-of-two
  // rank counts through the recursive-doubling fold, and the Rabenseifner
  // ring fallback (size < p, p not a power of two).
  for (int p = 1; p <= 8; ++p) {
    for (int n : kOracleSizes) {
      World::run(p, [&, p = p, n = n](Comm& comm) {
        for (AllreduceAlgo algo : {AllreduceAlgo::Ring, AllreduceAlgo::RecursiveDoubling,
                                   AllreduceAlgo::Rabenseifner, AllreduceAlgo::Auto}) {
          for (ReduceOp op : {ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod}) {
            std::vector<long long> data(static_cast<std::size_t>(n));
            for (int i = 0; i < n; ++i)
              data[static_cast<std::size_t>(i)] = oracle_value(comm.rank(), i, op);
            allreduce(comm, std::span<long long>(data), op, algo);
            for (int i = 0; i < n; ++i)
              ASSERT_EQ(data[static_cast<std::size_t>(i)], serial_reduce(op, p, i))
                  << "p=" << p << " n=" << n << " algo=" << static_cast<int>(algo)
                  << " op=" << static_cast<int>(op) << " i=" << i;
          }
        }
      });
    }
  }
}

TEST(CollectivesOracle, ReduceScatterThenAllgatherComposeToAllreduce) {
  for (int p = 1; p <= 8; ++p) {
    for (int n : kOracleSizes) {
      World::run(p, [&, p = p, n = n](Comm& comm) {
        std::vector<long long> data(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
          data[static_cast<std::size_t>(i)] = oracle_value(comm.rank(), i, ReduceOp::Sum);
        reduce_scatter_ring(comm, std::span<long long>(data), ReduceOp::Sum);
        // After reduce-scatter, rank r owns chunk r fully reduced.
        const auto mine = detail::chunk_range(static_cast<std::size_t>(n), p, comm.rank());
        for (std::size_t i = mine.begin; i < mine.end; ++i)
          ASSERT_EQ(data[i], serial_reduce(ReduceOp::Sum, p, static_cast<int>(i)))
              << "p=" << p << " n=" << n << " owned element " << i;
        allgather_ring_chunks(comm, std::span<long long>(data));
        for (int i = 0; i < n; ++i)
          ASSERT_EQ(data[static_cast<std::size_t>(i)], serial_reduce(ReduceOp::Sum, p, i))
              << "p=" << p << " n=" << n << " i=" << i;
      });
    }
  }
}

TEST(CollectivesOracle, HierarchicalStagesMatchSerialForEveryFactorization) {
  for (int p = 1; p <= 8; ++p) {
    // Every one- and two-level stage list whose product divides p; the
    // remaining factor is the top-level allreduce.
    std::vector<std::vector<int>> stagings{{}};
    for (int g = 1; g <= p; ++g) {
      if (p % g != 0) continue;
      stagings.push_back({g});
      for (int h = 1; h <= p / g; ++h)
        if ((p / g) % h == 0) stagings.push_back({g, h});
    }
    for (const auto& stages : stagings) {
      for (int n : {0, 1, 3, 13}) {
        World::run(p, [&, p = p, n = n](Comm& comm) {
          for (ReduceOp op : {ReduceOp::Sum, ReduceOp::Max}) {
            std::vector<long long> data(static_cast<std::size_t>(n));
            for (int i = 0; i < n; ++i)
              data[static_cast<std::size_t>(i)] = oracle_value(comm.rank(), i, op);
            allreduce_hierarchical_stages(comm, std::span<long long>(data), op,
                                          std::span<const int>(stages));
            for (int i = 0; i < n; ++i)
              ASSERT_EQ(data[static_cast<std::size_t>(i)], serial_reduce(op, p, i))
                  << "p=" << p << " n=" << n << " stages=" << stages.size();
          }
        });
      }
    }
  }
}

TEST(CollectivesOracle, HierarchicalStagesRejectNonDivisorGroup) {
  World::run(6, [](Comm& comm) {
    std::vector<double> x(8, 1.0);
    const std::vector<int> bad{4};  // 4 does not divide 6
    EXPECT_THROW(allreduce_hierarchical_stages(comm, std::span<double>(x), ReduceOp::Sum,
                                               std::span<const int>(bad)),
                 std::invalid_argument);
    const std::vector<int> zero{0};
    EXPECT_THROW(allreduce_hierarchical_stages(comm, std::span<double>(x), ReduceOp::Sum,
                                               std::span<const int>(zero)),
                 std::invalid_argument);
  });
}

TEST(Collectives, BcastAndReduceRejectBadRootEvenOnSingleRank) {
  // Regression: the p == 1 early return used to precede root validation, so
  // a bad root was silently accepted on single-rank communicators only.
  World::run(1, [](Comm& comm) {
    std::vector<double> x(2, 1.0);
    EXPECT_THROW(bcast(comm, std::span<double>(x), 3), std::out_of_range);
    EXPECT_THROW(reduce(comm, std::span<double>(x), ReduceOp::Sum, -1), std::out_of_range);
  });
}

TEST(Collectives, HierarchicalRejectsBadPpn) {
  World::run(4, [](Comm& comm) {
    std::vector<double> x(4, 1.0);
    EXPECT_THROW(allreduce_hierarchical(comm, std::span<double>(x), ReduceOp::Sum, 3),
                 std::invalid_argument);
  });
}

TEST(P2P, UserTagRangeEnforced) {
  World::run(1, [](Comm& comm) {
    int x = 0;
    EXPECT_THROW(comm.send(&x, sizeof(x), 0, -1), std::invalid_argument);
    EXPECT_THROW(comm.send(&x, sizeof(x), 0, 1 << 16), std::invalid_argument);
  });
}
}  // namespace
}  // namespace dnnperf::mpi
