#include <gtest/gtest.h>

#include "dnn/models.hpp"
#include "exec/roofline.hpp"
#include "hw/platforms.hpp"

namespace dnnperf::exec {
namespace {

ExecConfig tuned_cfg() {
  ExecConfig cfg;
  cfg.intra_threads = 11;
  cfg.inter_threads = 1;
  cfg.batch = 64;
  return cfg;
}

TEST(Roofline, BreakdownTotalsMatchOpDuration) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const Placement p = place_rank(cpu, 4, 11);
  const auto cfg = tuned_cfg();
  for (const auto& op : g.ops()) {
    const auto c = model.op_cost_breakdown(g, op, false, 11.0, 11, cfg, p, 1.0);
    EXPECT_DOUBLE_EQ(c.total(), model.op_duration(g, op, false, 11.0, 11, cfg, p, 1.0))
        << op.name;
    EXPECT_GE(c.flop_time_s, 0.0);
    EXPECT_GT(c.mem_time_s, 0.0);
    EXPECT_GT(c.overhead_s, 0.0);
  }
}

TEST(Roofline, ConvsAreComputeBoundAndDominant) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const Placement p = place_rank(cpu, 4, 11);
  const auto report = roofline_report(model, g, tuned_cfg(), p);

  ASSERT_FALSE(report.by_kind.empty());
  // The top bucket is Conv2d, and it is flop-bound.
  EXPECT_EQ(report.by_kind.front().first, dnn::OpKind::Conv2d);
  EXPECT_GT(report.by_kind.front().second.flop_bound_s,
            report.by_kind.front().second.mem_bound_s);
  // Buckets are sorted descending by total.
  for (std::size_t i = 1; i < report.by_kind.size(); ++i)
    EXPECT_LE(report.by_kind[i].second.total(), report.by_kind[i - 1].second.total());
}

TEST(Roofline, MemoryBoundKindsAreMemoryBound) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const Placement p = place_rank(cpu, 4, 11);
  const auto report = roofline_report(model, g, tuned_cfg(), p);
  for (const auto& [kind, bucket] : report.by_kind) {
    if (kind == dnn::OpKind::ReLU || kind == dnn::OpKind::BatchNorm ||
        kind == dnn::OpKind::Add) {
      EXPECT_GT(bucket.mem_bound_s, bucket.flop_bound_s) << dnn::to_string(kind);
    }
  }
}

TEST(Roofline, UtilizationIsAFraction) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet152);
  const Placement p = place_rank(cpu, 4, 11);
  const auto report = roofline_report(model, g, tuned_cfg(), p);
  EXPECT_GT(report.flop_utilization, 0.1);
  EXPECT_LT(report.flop_utilization, 1.0);
  // Backward carries more time than forward.
  EXPECT_GT(report.backward.total(), report.forward.total());
}

TEST(Roofline, TableRendersAllKinds) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::AlexNet);
  const Placement p = place_rank(cpu, 1, 48);
  auto cfg = tuned_cfg();
  cfg.intra_threads = 48;
  const auto report = roofline_report(model, g, cfg, p);
  const auto table = roofline_table(report);
  EXPECT_EQ(table.rows(), report.by_kind.size());
}

TEST(Roofline, PytorchOverheadShareExceedsTensorFlow) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const Placement p = place_rank(cpu, 48, 1);
  ExecConfig tf = tuned_cfg();
  tf.intra_threads = 1;
  tf.batch = 16;
  ExecConfig pt = tf;
  pt.framework = Framework::PyTorch;
  const auto tf_report = roofline_report(model, g, tf, p);
  const auto pt_report = roofline_report(model, g, pt, p);
  const double tf_share =
      tf_report.forward.overhead_s / tf_report.forward.total();
  const double pt_share =
      pt_report.forward.overhead_s / pt_report.forward.total();
  EXPECT_GT(pt_share, tf_share);
}

}  // namespace
}  // namespace dnnperf::exec
