#include <gtest/gtest.h>

#include "core/insights.hpp"

namespace dnnperf::core {
namespace {

TEST(KeyInsights, EverySectionNineClaimHoldsInTheModel) {
  const auto insights = evaluate_key_insights();
  ASSERT_EQ(insights.size(), 7u);
  for (const auto& i : insights) {
    EXPECT_TRUE(i.holds) << i.claim << "\n measured: " << i.measured;
    EXPECT_FALSE(i.measured.empty());
  }
}

TEST(KeyInsights, RenderIncludesEveryClaim) {
  const auto insights = evaluate_key_insights();
  const std::string report = render_insights(insights);
  for (const auto& i : insights) EXPECT_NE(report.find(i.claim), std::string::npos);
  EXPECT_EQ(report.find("[FAILS]"), std::string::npos);
}

}  // namespace
}  // namespace dnnperf::core
