// Tests of the typed metrics registry (util/metrics): registration
// contract, thread-local shard merging under real ThreadPool concurrency,
// histogram percentile accuracy against exact quantiles, exporter formats,
// cross-rank merge semantics, the regression diff, and the end-to-end
// requested-vs-issued counter parity of a 2-rank real training run.
//
// Every test that records goes through ScopedMetricsState so the global
// registry is quiesced and reset between tests.
#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyze.hpp"
#include "hvd/policy.hpp"
#include "ref/threadpool.hpp"
#include "train/real_trainer.hpp"
#include "util/diag.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"

namespace dnnperf {
namespace {

namespace metrics = util::metrics;

// Tests that observe recorded values cannot pass when handle bodies are
// compiled out (-DDNNPERF_METRICS=OFF); they skip instead of failing.
#if DNNPERF_METRICS_ENABLED
#define SKIP_IF_COMPILED_OUT() (void)0
#else
#define SKIP_IF_COMPILED_OUT() GTEST_SKIP() << "metrics recording compiled out"
#endif

class ScopedMetricsState {
 public:
  ScopedMetricsState() {
    metrics::reset();
    metrics::set_enabled(true);
  }
  ~ScopedMetricsState() {
    metrics::set_enabled(false);
    metrics::reset();
  }
};

const metrics::MetricValue& require(const metrics::Snapshot& snap, const std::string& name) {
  const auto* m = snap.find(name);
  if (m == nullptr) ADD_FAILURE() << "metric not in snapshot: " << name;
  static metrics::MetricValue empty;
  return m != nullptr ? *m : empty;
}

TEST(Metrics, CounterAccumulatesAndSnapshotReads) {
  SKIP_IF_COMPILED_OUT();
  ScopedMetricsState state;
  const auto c = metrics::counter("test_counter_total", "help text");
  c.inc();
  c.inc(41);
  const auto snap = metrics::snapshot();
  const auto& m = require(snap, "test_counter_total");
  EXPECT_EQ(m.kind, metrics::Kind::Counter);
  EXPECT_EQ(m.count, 42u);
  EXPECT_EQ(m.help, "help text");
}

TEST(Metrics, SameNameAndKindSharesOneMetric) {
  SKIP_IF_COMPILED_OUT();
  ScopedMetricsState state;
  const auto a = metrics::counter("test_shared_total");
  const auto b = metrics::counter("test_shared_total");
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(require(metrics::snapshot(), "test_shared_total").count, 5u);
}

TEST(Metrics, HelpKeptFromFirstRegistration) {
  ScopedMetricsState state;
  (void)metrics::counter("test_help_total", "first");
  (void)metrics::counter("test_help_total", "second");
  EXPECT_EQ(require(metrics::snapshot(), "test_help_total").help, "first");
}

TEST(Metrics, DisabledRecordingIsDropped) {
  SKIP_IF_COMPILED_OUT();
  ScopedMetricsState state;
  const auto c = metrics::counter("test_gated_total");
  metrics::set_enabled(false);
  c.inc(100);
  metrics::set_enabled(true);
  c.inc(1);
  EXPECT_EQ(require(metrics::snapshot(), "test_gated_total").count, 1u);
}

TEST(Metrics, GaugeKeepsLastValue) {
  SKIP_IF_COMPILED_OUT();
  ScopedMetricsState state;
  const auto g = metrics::gauge("test_gauge");
  g.set(1.5);
  g.set(-2.25);
  const auto snap = metrics::snapshot();
  const auto& m = require(snap, "test_gauge");
  EXPECT_EQ(m.kind, metrics::Kind::Gauge);
  EXPECT_DOUBLE_EQ(m.value, -2.25);
}

TEST(Metrics, ResetClearsValuesButKeepsRegistrations) {
  SKIP_IF_COMPILED_OUT();
  ScopedMetricsState state;
  const auto c = metrics::counter("test_reset_total");
  c.inc(7);
  metrics::reset();
  const auto snap = metrics::snapshot();
  EXPECT_EQ(require(snap, "test_reset_total").count, 0u);
  c.inc(2);  // handle still valid after reset
  EXPECT_EQ(require(metrics::snapshot(), "test_reset_total").count, 2u);
}

TEST(Metrics, SnapshotSortedByName) {
  ScopedMetricsState state;
  (void)metrics::counter("test_zz_total");
  (void)metrics::counter("test_aa_total");
  const auto snap = metrics::snapshot();
  EXPECT_TRUE(std::is_sorted(snap.metrics.begin(), snap.metrics.end(),
                             [](const auto& a, const auto& b) { return a.name < b.name; }));
}

// --- shard merge under real concurrency -------------------------------------

TEST(Metrics, ShardMergeUnderThreadPoolConcurrency) {
  SKIP_IF_COMPILED_OUT();
  ScopedMetricsState state;
  const auto c = metrics::counter("test_pool_total");
  const auto h = metrics::histogram("test_pool_seconds");
  ref::ThreadPool pool(4);
  constexpr std::size_t kItems = 100000;
  pool.parallel_for(kItems, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      c.inc();
      h.observe(1e-3);
    }
  });
  const auto snap = metrics::snapshot();
  EXPECT_EQ(require(snap, "test_pool_total").count, kItems);
  EXPECT_EQ(require(snap, "test_pool_seconds").hist.count, kItems);
  EXPECT_NEAR(require(snap, "test_pool_seconds").hist.sum, kItems * 1e-3, 1e-6 * kItems);
}

TEST(Metrics, ShardsOfExitedThreadsSurvive) {
  SKIP_IF_COMPILED_OUT();
  ScopedMetricsState state;
  const auto c = metrics::counter("test_exited_total");
  {
    ref::ThreadPool pool(4);
    pool.parallel_for(std::size_t{1000},
                      [&](std::size_t begin, std::size_t end) { c.inc(end - begin); });
  }  // pool joins its workers here
  EXPECT_EQ(require(metrics::snapshot(), "test_exited_total").count, 1000u);
}

// --- histogram --------------------------------------------------------------

TEST(Metrics, HistogramBucketBoundsAndIndexAgree) {
  for (int i = 0; i < metrics::kHistNumBuckets; ++i) {
    const double lo = metrics::hist_bucket_bound(i);
    const double hi = metrics::hist_bucket_bound(i + 1);
    // A value strictly inside bucket i must index to i.
    EXPECT_EQ(metrics::hist_bucket_index(lo * 1.01), i) << "bucket " << i;
    EXPECT_LT(lo, hi);
  }
  EXPECT_EQ(metrics::hist_bucket_index(0.0), 0);
  EXPECT_EQ(metrics::hist_bucket_index(-5.0), 0);
  EXPECT_EQ(metrics::hist_bucket_index(1e300), metrics::kHistNumBuckets - 1);
}

TEST(Metrics, HistogramPercentilesTrackExactQuantiles) {
  // Log-uniform-ish series spanning microseconds to seconds; bucket
  // resolution guarantees <= one quarter-octave (2^0.25 - 1 ~ 19%) relative
  // error against the exact empirical quantile.
  metrics::HistogramData hist;
  std::vector<double> xs;
  double v = 1e-6;
  while (v < 2.0) {
    xs.push_back(v);
    hist.observe(v);
    v *= 1.05;
  }
  for (double p : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double exact = util::percentile(xs, p);
    const double est = hist.percentile(p);
    EXPECT_NEAR(est / exact, 1.0, 0.20) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), hist.min);
  EXPECT_DOUBLE_EQ(hist.percentile(1.0), hist.max);
}

TEST(Metrics, HistogramMergeMatchesCombinedObserve) {
  metrics::HistogramData a, b, combined;
  for (int i = 1; i <= 50; ++i) {
    a.observe(i * 1e-3);
    combined.observe(i * 1e-3);
  }
  for (int i = 51; i <= 100; ++i) {
    b.observe(i * 1e-3);
    combined.observe(i * 1e-3);
  }
  a.merge(b);
  EXPECT_EQ(a.count, combined.count);
  EXPECT_DOUBLE_EQ(a.sum, combined.sum);
  EXPECT_DOUBLE_EQ(a.min, combined.min);
  EXPECT_DOUBLE_EQ(a.max, combined.max);
  EXPECT_EQ(a.buckets, combined.buckets);
}

// --- RunStats percentiles ---------------------------------------------------

TEST(RunStatsPercentile, TracksExactQuantiles) {
  util::RunStats s;
  std::vector<double> xs;
  for (int i = 1; i <= 200; ++i) {
    s.add(i * 0.5e-3);
    xs.push_back(i * 0.5e-3);
  }
  EXPECT_NEAR(s.p50() / util::percentile(xs, 0.50), 1.0, 0.20);
  EXPECT_NEAR(s.p95() / util::percentile(xs, 0.95), 1.0, 0.20);
  EXPECT_NEAR(s.p99() / util::percentile(xs, 0.99), 1.0, 0.20);
}

TEST(RunStatsPercentile, NonPositiveSamplesResolveToMin) {
  util::RunStats s;
  s.add(-1.0);
  s.add(-0.5);
  s.add(2.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), -1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.25), -1.0);  // rank 1 of 4 sits in the non-positive region
  EXPECT_GE(s.percentile(0.99), 2.0);
  EXPECT_THROW(s.percentile(1.5), std::invalid_argument);
}

TEST(RunStatsPercentile, EmptyIsZero) {
  const util::RunStats s;
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
}

// --- exporters --------------------------------------------------------------

metrics::Snapshot golden_snapshot() {
  metrics::Snapshot snap;
  snap.label = "golden";
  metrics::MetricValue c;
  c.name = "alpha_total";
  c.help = "a counter";
  c.kind = metrics::Kind::Counter;
  c.count = 7;
  metrics::MetricValue g;
  g.name = "beta_ratio";
  g.kind = metrics::Kind::Gauge;
  g.value = 0.5;
  metrics::MetricValue h;
  h.name = "gamma_seconds";
  h.kind = metrics::Kind::Histogram;
  h.hist.observe(0.001);
  h.hist.observe(0.002);
  h.hist.observe(0.004);
  snap.metrics = {c, g, h};
  return snap;
}

TEST(MetricsExport, PrometheusGolden) {
  const std::string text = metrics::to_prometheus(golden_snapshot());
  EXPECT_NE(text.find("# HELP alpha_total a counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE alpha_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("alpha_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE beta_ratio gauge\n"), std::string::npos);
  EXPECT_NE(text.find("beta_ratio 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("gamma_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("gamma_seconds_sum 0.007\n"), std::string::npos);
  EXPECT_NE(text.find("gamma_seconds_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  // Cumulative counts: the last finite bucket line carries all 3 samples.
  EXPECT_NE(text.find("} 3\n"), std::string::npos);
}

TEST(MetricsExport, CsvGolden) {
  const std::string text = metrics::to_csv(golden_snapshot());
  EXPECT_NE(text.find("name,kind,value,count,sum,min,max,mean,p50,p95,p99\n"),
            std::string::npos);
  EXPECT_NE(text.find("alpha_total,counter,7,,,,,,,,"), std::string::npos);
  EXPECT_NE(text.find("beta_ratio,gauge,0.5,,,,,,,,"), std::string::npos);
  EXPECT_NE(text.find("gamma_seconds,histogram,,3,0.007,0.001,0.004,"), std::string::npos);
}

TEST(MetricsExport, JsonRoundTripsThroughParse) {
  const auto original = golden_snapshot();
  const auto parsed = metrics::parse_json(metrics::to_json(original));
  EXPECT_EQ(parsed.label, "golden");
  ASSERT_EQ(parsed.metrics.size(), original.metrics.size());
  EXPECT_EQ(require(parsed, "alpha_total").count, 7u);
  EXPECT_EQ(require(parsed, "alpha_total").help, "a counter");
  EXPECT_DOUBLE_EQ(require(parsed, "beta_ratio").value, 0.5);
  const auto& h = require(parsed, "gamma_seconds").hist;
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 0.007);
  EXPECT_DOUBLE_EQ(h.min, 0.001);
  EXPECT_DOUBLE_EQ(h.max, 0.004);
  EXPECT_EQ(h.buckets, require(original, "gamma_seconds").hist.buckets);
}

TEST(MetricsExport, ParseRejectsMalformedInput) {
  EXPECT_THROW(metrics::parse_json("not json"), std::runtime_error);
  EXPECT_THROW(metrics::parse_json("{\"metrics\":[]}"), std::runtime_error);  // no schema
  EXPECT_THROW(metrics::parse_json("{\"schema\":\"other\",\"metrics\":[]}"),
               std::runtime_error);
}

// --- cross-rank merge -------------------------------------------------------

TEST(MetricsMerge, CountersSumHistogramsMergeGaugesMax) {
  auto a = golden_snapshot();
  auto b = golden_snapshot();
  b.metrics[1].value = 0.75;  // beta_ratio
  metrics::MetricValue only_b;
  only_b.name = "delta_total";
  only_b.kind = metrics::Kind::Counter;
  only_b.count = 5;
  b.metrics.push_back(only_b);
  a.merge(b);
  EXPECT_EQ(require(a, "alpha_total").count, 14u);
  EXPECT_DOUBLE_EQ(require(a, "beta_ratio").value, 0.75);
  EXPECT_EQ(require(a, "gamma_seconds").hist.count, 6u);
  EXPECT_EQ(require(a, "delta_total").count, 5u);  // one-sided metrics kept
}

// --- delta ------------------------------------------------------------------

TEST(MetricsDelta, SubtractsCountersAndHistogramCounts) {
  SKIP_IF_COMPILED_OUT();
  ScopedMetricsState state;
  const auto c = metrics::counter("test_delta_total");
  const auto h = metrics::histogram("test_delta_seconds");
  c.inc(10);
  h.observe(0.001);
  const auto before = metrics::snapshot();
  c.inc(5);
  h.observe(0.002);
  const auto after = metrics::snapshot();
  const auto d = metrics::delta(before, after);
  EXPECT_EQ(require(d, "test_delta_total").count, 5u);
  EXPECT_EQ(require(d, "test_delta_seconds").hist.count, 1u);
  EXPECT_NEAR(require(d, "test_delta_seconds").hist.sum, 0.002, 1e-12);
}

// --- regression diff --------------------------------------------------------

metrics::Snapshot timer_snapshot(double scale) {
  metrics::Snapshot snap;
  metrics::MetricValue h;
  h.name = "step_seconds";
  h.kind = metrics::Kind::Histogram;
  for (int i = 0; i < 100; ++i) h.hist.observe(0.010 * scale);
  metrics::MetricValue c;
  c.name = "ops_total";
  c.kind = metrics::Kind::Counter;
  c.count = 40;
  metrics::MetricValue r;
  r.name = "images_per_sec";
  r.kind = metrics::Kind::Gauge;
  r.value = 100.0 / scale;
  snap.metrics = {h, c, r};
  return snap;
}

TEST(MetricsDiff, IdenticalSnapshotsPass) {
  const auto base = timer_snapshot(1.0);
  const auto result = metrics::diff_snapshots(base, base, metrics::DiffThresholds{});
  EXPECT_FALSE(result.regression());
}

TEST(MetricsDiff, InflatedTimerFailsThreshold) {
  const auto base = timer_snapshot(1.0);
  const auto slow = timer_snapshot(1.5);  // p50 +50% > 10% threshold
  const auto result = metrics::diff_snapshots(base, slow, metrics::DiffThresholds{});
  EXPECT_TRUE(result.regression());
  const auto it = std::find_if(result.entries.begin(), result.entries.end(),
                               [](const auto& e) { return e.name == "step_seconds"; });
  ASSERT_NE(it, result.entries.end());
  EXPECT_TRUE(it->regression);
  // Rate gauge dropped by the same scale: also flagged.
  const auto rate = std::find_if(result.entries.begin(), result.entries.end(),
                                 [](const auto& e) { return e.name == "images_per_sec"; });
  ASSERT_NE(rate, result.entries.end());
  EXPECT_TRUE(rate->regression);
}

TEST(MetricsDiff, CounterDriftFailsBothDirections) {
  const auto base = timer_snapshot(1.0);
  auto more = base;
  more.metrics[1].count = 41;
  auto fewer = base;
  fewer.metrics[1].count = 39;
  EXPECT_TRUE(metrics::diff_snapshots(base, more, metrics::DiffThresholds{}).regression());
  EXPECT_TRUE(metrics::diff_snapshots(base, fewer, metrics::DiffThresholds{}).regression());
}

TEST(MetricsDiff, IgnoredFamiliesDoNotFail) {
  const auto base = timer_snapshot(1.0);
  const auto slow = timer_snapshot(2.0);
  metrics::DiffThresholds th;
  th.check_timers = false;
  th.check_rates = false;
  EXPECT_FALSE(metrics::diff_snapshots(base, slow, th).regression());
}

TEST(MetricsDiff, FasterTimerIsNotARegression) {
  const auto base = timer_snapshot(1.0);
  const auto fast = timer_snapshot(0.5);
  metrics::DiffThresholds th;
  th.check_rates = false;  // rate rose, not dropped — but isolate the timer here
  EXPECT_FALSE(metrics::diff_snapshots(base, fast, th).regression());
}

// --- lint passes ------------------------------------------------------------

TEST(MetricsLint, CleanSnapshotHasNoFindings) {
  const auto diags = analysis::lint_metrics(golden_snapshot(), "test");
  EXPECT_TRUE(diags.empty());
}

TEST(MetricsLint, DuplicateKindIsM001) {
  auto snap = golden_snapshot();
  metrics::MetricValue dup;
  dup.name = "alpha_total";  // same name as the counter, different kind
  dup.kind = metrics::Kind::Gauge;
  snap.metrics.push_back(dup);
  const auto diags = analysis::lint_metrics(snap, "test");
  EXPECT_TRUE(diags.has_code("M001"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(MetricsLint, BadCharsetIsM002) {
  auto snap = golden_snapshot();
  metrics::MetricValue bad;
  bad.name = "9bad-name";
  bad.kind = metrics::Kind::Counter;
  snap.metrics.push_back(bad);
  const auto diags = analysis::lint_metrics(snap, "test");
  EXPECT_TRUE(diags.has_code("M002"));
}

TEST(MetricsLint, NonFiniteValueIsM003) {
  auto snap = golden_snapshot();
  metrics::MetricValue nan_gauge;
  nan_gauge.name = "broken_hit_ratio";
  nan_gauge.kind = metrics::Kind::Gauge;
  nan_gauge.value = std::numeric_limits<double>::quiet_NaN();  // 0/0 before first query
  snap.metrics.push_back(nan_gauge);
  const auto diags = analysis::lint_metrics(snap, "test");
  EXPECT_TRUE(diags.has_code("M003"));
  EXPECT_TRUE(diags.has_errors());

  auto inf_snap = golden_snapshot();
  metrics::MetricValue inf_hist;
  inf_hist.name = "broken_seconds";
  inf_hist.kind = metrics::Kind::Histogram;
  inf_hist.hist.observe(1.0);
  inf_hist.hist.sum = std::numeric_limits<double>::infinity();
  inf_snap.metrics.push_back(inf_hist);
  EXPECT_TRUE(analysis::lint_metrics(inf_snap, "test").has_code("M003"));
}

TEST(MetricsLint, LiveRegistryNamesLintClean) {
  // Every name the instrumented layers register must satisfy M001/M002:
  // run a real training step to populate the registry, then lint it.
  ScopedMetricsState state;
  train::RealTrainConfig cfg;
  cfg.ranks = 2;
  cfg.batch_per_rank = 2;
  cfg.steps = 1;
  cfg.image_size = 6;
  (void)train::run_real_training(cfg);
  const auto diags = analysis::lint_metrics(metrics::snapshot(), "live registry");
  EXPECT_TRUE(diags.empty()) << util::render_text(diags);
}

// --- end-to-end: 2-rank requested-vs-issued parity --------------------------

TEST(MetricsTraining, TwoRankRequestedVsIssuedParity) {
  SKIP_IF_COMPILED_OUT();
  ScopedMetricsState state;
  train::RealTrainConfig cfg;
  cfg.ranks = 2;
  cfg.batch_per_rank = 2;
  cfg.steps = 3;
  cfg.image_size = 6;
  const auto result = train::run_real_training(cfg);
  const auto snap = metrics::snapshot();

  const auto& requested = require(snap, hvd::metric_names::kRequested);
  const auto& issued = require(snap, hvd::metric_names::kIssued);
  const auto& cycles = require(snap, hvd::metric_names::kCycles);
  // Registry counters aggregate over both ranks; CommStats is rank 0 only.
  EXPECT_EQ(requested.count, result.comm.framework_requests * cfg.ranks);
  EXPECT_EQ(issued.count, result.comm.data_allreduces * cfg.ranks);
  EXPECT_EQ(cycles.count, result.comm.engine_wakeups * cfg.ranks);
  // The paper's Sec. VIII fusion behaviour: every tensor is requested, but
  // fusion means strictly fewer data allreduces are issued.
  EXPECT_GT(requested.count, 0u);
  EXPECT_LE(issued.count, requested.count);
  // Per-step phase timers and the cycle-time histogram came along.
  EXPECT_EQ(require(snap, "train_step_forward_seconds").hist.count,
            static_cast<std::uint64_t>(cfg.steps) * cfg.ranks);
  EXPECT_GT(require(snap, hvd::metric_names::kCycleTime).hist.count, 0u);
  EXPECT_GT(require(snap, "train_images_total").count, 0u);
}

TEST(MetricsTraining, NoCommSingleProcessRequestsNothing) {
  // The satellite parity fix: a run with no Horovod engine must report zero
  // framework requests — real and simulated paths agree on this now.
  ScopedMetricsState state;
  train::RealTrainConfig cfg;
  cfg.ranks = 1;
  cfg.batch_per_rank = 2;
  cfg.steps = 2;
  cfg.image_size = 6;
  (void)train::run_real_training_single(cfg);
  const auto* requested = metrics::snapshot().find(hvd::metric_names::kRequested);
  if (requested != nullptr) EXPECT_EQ(requested->count, 0u);
}

}  // namespace
}  // namespace dnnperf
