// Tests for the advisor query engine (§6.6): the content-addressed
// EvalCache (hit == miss determinism, key uniqueness, bounded eviction), the
// memoized lint gate, AdvisorService request validation (A-codes), batching
// semantics, and thread-safety of concurrent ask()/ask_many() — the
// *Concurrent* fixtures run under the tsan preset's test filter.
#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyze.hpp"
#include "core/advisor_service.hpp"
#include "core/eval_cache.hpp"
#include "hw/platforms.hpp"
#include "train/trainer.hpp"
#include "util/metrics.hpp"

namespace {

using namespace dnnperf;

core::AdvisorRequest small_request() {
  core::AdvisorRequest req;
  req.cluster = hw::stampede2();
  req.nodes = 2;
  req.batch_candidates = {32, 64};
  req.ppn_candidates = {4, 8};
  return req;
}

void expect_same_best(const core::Recommendation& a, const core::Recommendation& b) {
  EXPECT_DOUBLE_EQ(a.images_per_sec, b.images_per_sec);
  EXPECT_EQ(a.best.ppn, b.best.ppn);
  EXPECT_EQ(a.best.nodes, b.best.nodes);
  EXPECT_EQ(a.best.batch_per_rank, b.best.batch_per_rank);
  EXPECT_EQ(a.best.intra_threads, b.best.intra_threads);
  EXPECT_EQ(a.best.inter_threads, b.best.inter_threads);
}

// ---- EvalCache -------------------------------------------------------------

TEST(EvalCache, LookupMissThenHit) {
  core::EvalCache cache(64, 4);
  EXPECT_FALSE(cache.lookup(42).has_value());
  core::Measurement m;
  m.images_per_sec = 123.5;
  cache.insert(42, m);
  const auto got = cache.lookup(42);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->images_per_sec, 123.5);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 0.5);
}

TEST(EvalCache, EvictsLruAtCapacityBound) {
  // One shard so the LRU order is global and the bound is exact.
  core::EvalCache cache(4, 1);
  core::Measurement m;
  for (std::uint64_t k = 0; k < 10; ++k) {
    m.images_per_sec = static_cast<double>(k);
    cache.insert(k, m);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 6u);
  // The four most recent keys survive; the oldest are gone.
  EXPECT_FALSE(cache.lookup(0).has_value());
  EXPECT_FALSE(cache.lookup(5).has_value());
  ASSERT_TRUE(cache.lookup(9).has_value());
  EXPECT_DOUBLE_EQ(cache.lookup(9)->images_per_sec, 9.0);
}

TEST(EvalCache, LookupRefreshesLruPosition) {
  core::EvalCache cache(2, 1);
  core::Measurement m;
  cache.insert(1, m);
  cache.insert(2, m);
  ASSERT_TRUE(cache.lookup(1).has_value());  // 1 becomes most recent
  cache.insert(3, m);                        // evicts 2, not 1
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
}

TEST(EvalCache, ZeroCapacityDisablesCaching) {
  core::EvalCache cache(0, 4);
  core::Measurement m;
  cache.insert(7, m);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(7).has_value());
}

TEST(EvalCache, ConfigKeysUniqueAcrossPlannedGrids) {
  // Every grid point the planner can enumerate across models, frameworks,
  // and node counts must hash to a distinct key — a collision would silently
  // serve one config's measurement for another.
  std::unordered_set<std::uint64_t> keys;
  std::size_t total = 0;
  for (const auto model : {dnn::ModelId::ResNet50, dnn::ModelId::ResNet152}) {
    for (const auto fw : {exec::Framework::TensorFlow, exec::Framework::PyTorch}) {
      for (const int nodes : {1, 2, 4}) {
        core::AdvisorRequest req;
        req.cluster = hw::stampede2();
        req.model = model;
        req.framework = fw;
        req.nodes = nodes;
        for (const auto& cfg : core::AdvisorService::plan_grid(req)) {
          keys.insert(core::config_key(cfg));
          ++total;
        }
      }
    }
  }
  EXPECT_GT(total, 100u);
  EXPECT_EQ(keys.size(), total);
}

TEST(EvalCache, ConfigKeySensitiveToEveryScheduleField) {
  const auto grid = core::AdvisorService::plan_grid(small_request());
  ASSERT_FALSE(grid.empty());
  const train::TrainConfig base = grid.front();
  const std::uint64_t k0 = core::config_key(base);
  EXPECT_EQ(core::config_key(base), k0);  // stable

  auto mutate = [&](auto&& f) {
    train::TrainConfig c = base;
    f(c);
    return core::config_key(c);
  };
  EXPECT_NE(mutate([](auto& c) { c.batch_per_rank += 1; }), k0);
  EXPECT_NE(mutate([](auto& c) { c.ppn += 1; }), k0);
  EXPECT_NE(mutate([](auto& c) { c.nodes += 1; }), k0);
  EXPECT_NE(mutate([](auto& c) { c.intra_threads += 1; }), k0);
  EXPECT_NE(mutate([](auto& c) { c.framework = exec::Framework::PyTorch; }), k0);
  EXPECT_NE(mutate([](auto& c) { c.model = dnn::ModelId::ResNet101; }), k0);
  EXPECT_NE(mutate([](auto& c) { c.iterations += 1; }), k0);
  EXPECT_NE(mutate([](auto& c) { c.jitter_cv += 0.01; }), k0);
  EXPECT_NE(mutate([](auto& c) { c.policy.cycle_time_s *= 2.0; }), k0);
  EXPECT_NE(mutate([](auto& c) { c.cluster.max_nodes += 1; }), k0);
  EXPECT_NE(mutate([](auto& c) { c.per_rank_sim = !c.per_rank_sim; }), k0);
  EXPECT_NE(mutate([](auto& c) { c.hierarchy = train::CommHierarchy::TwoLevel; }), k0);
}

// ---- lint memo -------------------------------------------------------------

TEST(EvalCache, LintMemoAvoidsRepeatedLint) {
  auto grid = core::AdvisorService::plan_grid(small_request());
  ASSERT_FALSE(grid.empty());
  train::TrainConfig cfg = grid.front();
  cfg.iterations = 7;  // fresh content hash: no other test measures this config

  core::Experiment exp(/*repeats=*/1, /*noise_cv=*/0.0);
  const auto hits0 = core::lint_memo().hits();
  const auto misses0 = core::lint_memo().misses();
  const auto a = exp.measure(cfg);
  EXPECT_EQ(core::lint_memo().misses(), misses0 + 1);  // first sight: linted
  const auto b = exp.measure(cfg);
  EXPECT_EQ(core::lint_memo().misses(), misses0 + 1);  // memoized: no re-lint
  EXPECT_GE(core::lint_memo().hits(), hits0 + 1);
  EXPECT_DOUBLE_EQ(a.images_per_sec, b.images_per_sec);
}

// ---- request validation ----------------------------------------------------

TEST(AdvisorService, EmptyBatchCandidatesIsA001) {
  auto req = small_request();
  req.batch_candidates.clear();
  try {
    core::AdvisorService::plan_grid(req);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("A001"), std::string::npos) << e.what();
  }
}

TEST(AdvisorService, BadNodeCountIsA002) {
  auto req = small_request();
  req.nodes = 0;
  try {
    core::AdvisorService::plan_grid(req);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("A002"), std::string::npos) << e.what();
  }
  req.nodes = req.cluster.max_nodes + 1;
  EXPECT_THROW(core::AdvisorService::plan_grid(req), std::invalid_argument);
}

TEST(AdvisorService, InfeasibleCandidatesAreA003) {
  auto req = small_request();
  req.batch_candidates = {32, -4};
  try {
    core::AdvisorService::plan_grid(req);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("A003"), std::string::npos) << e.what();
  }

  auto gpu_req = small_request();
  gpu_req.device = train::DeviceKind::Gpu;  // stampede2 is CPU-only
  EXPECT_THROW(core::AdvisorService::plan_grid(gpu_req), std::invalid_argument);
}

TEST(AdvisorService, AdviseWrapperValidatesToo) {
  core::AdvisorOptions opts;
  opts.batch_candidates.clear();
  EXPECT_THROW(core::advise(hw::stampede2(), dnn::ModelId::ResNet50,
                            exec::Framework::TensorFlow, opts),
               std::invalid_argument);
  opts = core::AdvisorOptions{};
  opts.nodes = -3;
  EXPECT_THROW(core::advise(hw::stampede2(), dnn::ModelId::ResNet50,
                            exec::Framework::TensorFlow, opts),
               std::invalid_argument);
}

// ---- service semantics -----------------------------------------------------

TEST(AdvisorService, WarmHitIdenticalToColdMiss) {
  core::AdvisorService service({.threads = 2});
  const auto req = small_request();

  const auto cold = service.ask(req);
  EXPECT_GT(cold.grid_points, 0u);
  EXPECT_EQ(cold.evaluated, cold.grid_points);
  EXPECT_EQ(cold.cache_hits, 0u);

  const auto warm = service.ask(req);
  EXPECT_EQ(warm.grid_points, cold.grid_points);
  EXPECT_EQ(warm.cache_hits, warm.grid_points);
  EXPECT_EQ(warm.evaluated, 0u);
  expect_same_best(cold.recommendation, warm.recommendation);
  EXPECT_DOUBLE_EQ(cold.objective_value, warm.objective_value);
}

TEST(AdvisorService, MatchesSerialSweepExactly) {
  core::AdvisorService service({.threads = 2});
  const auto req = small_request();
  const auto reply = service.ask(req);

  double best = 0.0;
  for (const auto& cfg : core::AdvisorService::plan_grid(req))
    best = std::max(best, train::run_training(cfg).images_per_sec);
  EXPECT_DOUBLE_EQ(reply.recommendation.images_per_sec, best);
  EXPECT_DOUBLE_EQ(reply.objective_value, best);
}

TEST(AdvisorService, AskManyDeduplicatesSharedPoints) {
  core::AdvisorService service({.threads = 2});
  const auto req = small_request();
  const auto replies = service.ask_many({req, req, req});
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].evaluated, replies[0].grid_points);
  EXPECT_EQ(replies[1].deduplicated, replies[1].grid_points);
  EXPECT_EQ(replies[2].deduplicated, replies[2].grid_points);
  expect_same_best(replies[0].recommendation, replies[1].recommendation);
  expect_same_best(replies[0].recommendation, replies[2].recommendation);
  EXPECT_EQ(service.queries_answered(), 3u);
}

TEST(AdvisorService, MinStepTimeObjective) {
  core::AdvisorService service({.threads = 2});
  auto req = small_request();
  req.objective = core::Objective::MinStepTime;
  const auto reply = service.ask(req);

  double best = std::numeric_limits<double>::infinity();
  for (const auto& cfg : core::AdvisorService::plan_grid(req))
    best = std::min(best, train::run_training(cfg).per_iteration_s);
  EXPECT_GT(reply.objective_value, 0.0);
  EXPECT_DOUBLE_EQ(reply.objective_value, best);
}

TEST(AdvisorService, WantTableFillsSearchTable) {
  core::AdvisorService service({.threads = 2});
  auto req = small_request();
  req.want_table = true;
  const auto reply = service.ask(req);
  EXPECT_EQ(reply.recommendation.search_table.rows(), reply.grid_points);
}

TEST(AdvisorService, EvictionBoundedCacheStillAnswersCorrectly) {
  core::AdvisorServiceOptions opts;
  opts.threads = 2;
  opts.cache_capacity = 4;  // far below the grid size
  opts.cache_shards = 2;
  core::AdvisorService service(opts);
  const auto req = small_request();

  const auto first = service.ask(req);
  const auto second = service.ask(req);
  EXPECT_LE(service.cache().size(), service.cache().capacity());
  EXPECT_GT(service.cache().stats().evictions, 0u);
  // Most points were evicted and re-simulated; the answer is unchanged.
  EXPECT_GT(second.evaluated, 0u);
  expect_same_best(first.recommendation, second.recommendation);
}

TEST(AdvisorService, IdleServiceSnapshotCarriesFiniteGaugesAndLintsClean) {
  // Constructing the service must register the qps/hit-ratio gauges with
  // finite zero values — a metrics snapshot taken before any query (the
  // dnnperf_metrics check path) must not carry NaN or omit them.
  core::AdvisorService service({.threads = 2});
  const util::metrics::Snapshot snap = util::metrics::snapshot();
  for (const char* name : {"advisor_cache_hit_ratio", "advisor_queries_per_sec"}) {
    const auto* m = snap.find(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_TRUE(std::isfinite(m->value)) << name;
  }
  const util::Diagnostics diags = analysis::lint_metrics(snap, "idle-service");
  EXPECT_FALSE(diags.has_errors()) << util::render_text(diags);
}

// ---- scaling curves (node-count sweeps, §ISSUE-7) --------------------------

core::ScalingRequest scaling_request(int max_nodes) {
  core::ScalingRequest req;
  req.cluster = hw::stampede2();
  req.cluster.max_nodes = max_nodes;
  req.ppn = 4;
  req.batch_per_rank = 64;
  return req;
}

TEST(AdvisorScaling, CurveIsSortedMonotoneAndEfficiencyBounded) {
  core::AdvisorService service({.threads = 2});
  auto req = scaling_request(128);
  req.node_counts = {128, 2, 8, 32, 4, 16, 64};  // unsorted on purpose
  const auto curve = service.scaling_curve(req);
  ASSERT_EQ(curve.size(), 7u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i - 1].nodes, curve[i].nodes);
    // The paper's Fig. 13-17 shape: more nodes never lose aggregate
    // throughput, while efficiency can only decay as comm grows.
    EXPECT_GE(curve[i].images_per_sec, curve[i - 1].images_per_sec);
    EXPECT_LE(curve[i].efficiency, curve[i - 1].efficiency + 1e-9);
  }
  EXPECT_DOUBLE_EQ(curve.front().speedup, 1.0);
  EXPECT_DOUBLE_EQ(curve.front().efficiency, 1.0);
  for (const auto& p : curve) {
    EXPECT_GT(p.images_per_sec, 0.0);
    EXPECT_LE(p.efficiency, 1.0 + 1e-9);
    EXPECT_EQ(p.ranks, p.nodes * 4);
  }
}

TEST(AdvisorScaling, SecondSweepIsServedFromCache) {
  core::AdvisorService service({.threads = 2});
  auto req = scaling_request(16);
  req.node_counts = {2, 4, 8, 16};
  const auto first = service.scaling_curve(req);
  const auto evals_after_first = service.cache().stats().misses;
  const auto second = service.scaling_curve(req);
  EXPECT_EQ(service.cache().stats().misses, evals_after_first);  // warm: no new sims
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_DOUBLE_EQ(first[i].images_per_sec, second[i].images_per_sec);
}

TEST(AdvisorScaling, SweepsReachSixteenThousandRanks) {
  core::AdvisorService service({.threads = 2});
  auto req = scaling_request(1024);
  req.ppn = 16;
  req.node_counts = {256, 1024};  // 4096 and 16384 ranks
  const auto curve = service.scaling_curve(req);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_EQ(curve.back().ranks, 16384);
  EXPECT_GT(curve.back().images_per_sec, 0.0);
}

TEST(AdvisorScaling, PerRankSweepFillsEventPoolGauges) {
  core::AdvisorService service({.threads = 2});
  auto req = scaling_request(64);
  req.node_counts = {64};
  req.ppn = 16;  // 1024 explicitly simulated ranks
  req.per_rank_sim = true;
  const auto curve = service.scaling_curve(req);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_GT(curve[0].sim_events, 1024u);  // at least one event per rank
  EXPECT_GT(curve[0].sim_pool_slots, 0u);
  EXPECT_LT(curve[0].sim_pool_slots, curve[0].sim_events);  // pooling reuses slots
}

TEST(AdvisorScaling, HierarchicalCurveKeepsFlatShapeWithinFifteenPercent) {
  // Acceptance: 2-128-node staged-hierarchy efficiency stays monotone and
  // within 15% of the flat-collective curve at overlapping scales.
  core::AdvisorService service({.threads = 2});
  auto flat = scaling_request(128);
  flat.node_counts = {2, 4, 8, 16, 32, 64, 128};
  auto staged = flat;
  staged.hierarchy = train::CommHierarchy::TwoLevel;
  const auto flat_curve = service.scaling_curve(flat);
  const auto staged_curve = service.scaling_curve(staged);
  ASSERT_EQ(flat_curve.size(), staged_curve.size());
  for (std::size_t i = 0; i < flat_curve.size(); ++i) {
    EXPECT_GT(staged_curve[i].efficiency, 0.0);
    const double dev = std::abs(staged_curve[i].efficiency - flat_curve[i].efficiency) /
                       flat_curve[i].efficiency;
    EXPECT_LE(dev, 0.15) << "nodes=" << flat_curve[i].nodes;
    if (i > 0) {
      EXPECT_GE(staged_curve[i].images_per_sec, staged_curve[i - 1].images_per_sec);
      EXPECT_LE(staged_curve[i].efficiency, staged_curve[i - 1].efficiency + 1e-9);
    }
  }
}

TEST(AdvisorScaling, MalformedScalingRequestsThrowWithACodes) {
  core::AdvisorService service({.threads = 2});
  auto req = scaling_request(8);
  req.node_counts = {};
  EXPECT_THROW(service.scaling_curve(req), std::invalid_argument);
  req.node_counts = {0};
  EXPECT_THROW(service.scaling_curve(req), std::invalid_argument);
  req.node_counts = {16};  // beyond max_nodes = 8
  EXPECT_THROW(service.scaling_curve(req), std::invalid_argument);
  req.node_counts = {4};
  req.ppn = 0;
  EXPECT_THROW(service.scaling_curve(req), std::invalid_argument);
}

// ---- concurrency (runs under the tsan preset) ------------------------------

TEST(AdvisorServiceConcurrent, ParallelAskFromManyClients) {
  core::AdvisorService service({.threads = 2});
  auto req_a = small_request();
  auto req_b = small_request();
  req_b.framework = exec::Framework::PyTorch;

  const auto ref_a = service.ask(req_a);  // also warms req_a's grid
  constexpr int kClients = 4;
  constexpr int kIters = 3;
  std::vector<core::AdvisorReply> last(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kIters; ++i) {
        const auto& req = (c + i) % 2 == 0 ? req_a : req_b;
        last[static_cast<std::size_t>(c)] = service.ask(req);
      }
    });
  }
  for (auto& t : clients) t.join();

  const auto ref_b = service.ask(req_b);
  EXPECT_EQ(ref_b.evaluated, 0u);  // some client already swept PyTorch
  for (int c = 0; c < kClients; ++c) {
    const auto& expected = (c + kIters - 1) % 2 == 0 ? ref_a : ref_b;
    expect_same_best(last[static_cast<std::size_t>(c)].recommendation,
                     expected.recommendation);
  }
  EXPECT_EQ(service.queries_answered(), 2u + kClients * kIters);
}

TEST(AdvisorServiceConcurrent, ParallelAskManyBatches) {
  core::AdvisorService service({.threads = 2});
  const auto req = small_request();
  const auto reference = service.ask(req);

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::vector<core::AdvisorReply>> replies(kClients);
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      replies[static_cast<std::size_t>(c)] = service.ask_many({req, req});
    });
  }
  for (auto& t : clients) t.join();

  for (const auto& batch : replies) {
    ASSERT_EQ(batch.size(), 2u);
    for (const auto& r : batch) {
      EXPECT_EQ(r.evaluated, 0u);  // fully warm
      expect_same_best(r.recommendation, reference.recommendation);
      EXPECT_DOUBLE_EQ(r.objective_value, reference.objective_value);
    }
  }
}

}  // namespace
