#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace dnnperf::util {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Rng rng(11);
  RunStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(RunStats, EmptyIsZero) {
  RunStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunStats, KnownValues) {
  RunStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunStats, CoeffOfVariationNonNegativeForNegativeMean) {
  // CV is a dispersion measure: stddev / |mean| must stay non-negative when
  // the series mean is negative (e.g. a loss delta or drift measurement).
  RunStats neg;
  for (double x : {-2.0, -4.0, -4.0, -4.0, -5.0, -5.0, -7.0, -9.0}) neg.add(x);
  RunStats pos;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) pos.add(x);
  EXPECT_GT(neg.coeff_of_variation(), 0.0);
  EXPECT_DOUBLE_EQ(neg.coeff_of_variation(), pos.coeff_of_variation());
  RunStats zero;
  zero.add(0.0);
  EXPECT_EQ(zero.coeff_of_variation(), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_THROW(percentile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, InverseNormalCdfKnownPoints) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-5);
  EXPECT_THROW(inverse_normal_cdf(0.0), std::invalid_argument);
  EXPECT_THROW(inverse_normal_cdf(1.0), std::invalid_argument);
}

TEST(Stats, ExpectedMaxNormalMonotoneInN) {
  const double one = expected_max_normal(0.0, 1.0, 1);
  const double ten = expected_max_normal(0.0, 1.0, 10);
  const double thousand = expected_max_normal(0.0, 1.0, 1000);
  EXPECT_DOUBLE_EQ(one, 0.0);
  EXPECT_GT(ten, one);
  EXPECT_GT(thousand, ten);
  // E[max of 1000 standard normals] ~ 3.24
  EXPECT_NEAR(thousand, 3.24, 0.15);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), std::invalid_argument);
  EXPECT_EQ(geometric_mean({}), 0.0);
}

// ---------------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| a  | bbbb |"), std::string::npos);
  EXPECT_NE(text.find("| xx | y    |"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"name", "value"});
  t.add_row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(1000.0, 0), "1000");
}

// ---------------------------------------------------------------------------
// CliParser
// ---------------------------------------------------------------------------

TEST(CliParser, ParsesAllForms) {
  CliParser cli("prog", "test");
  cli.add_int("nodes", "node count", 1);
  cli.add_double("ratio", "a ratio", 0.5);
  cli.add_string("model", "model name", "resnet50");
  cli.add_flag("verbose", "verbosity", false);
  const char* argv[] = {"prog", "--nodes=8", "--ratio", "2.5", "--model=vgg16", "--verbose",
                        "positional"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(cli.get_int("nodes"), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 2.5);
  EXPECT_EQ(cli.get_string("model"), "vgg16");
  EXPECT_TRUE(cli.get_flag("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(CliParser, NoPrefixNegatesFlag) {
  CliParser cli("prog", "test");
  cli.add_flag("fusion", "enable fusion", true);
  const char* argv[] = {"prog", "--no-fusion"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(cli.get_flag("fusion"));
}

TEST(CliParser, UnknownFlagThrows) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(CliParser, BadValueThrows) {
  CliParser cli("prog", "test");
  cli.add_int("n", "count", 0);
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(CliParser, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

// ---------------------------------------------------------------------------
// Units
// ---------------------------------------------------------------------------

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(17.0), "17 B");
  EXPECT_EQ(format_bytes(2048.0), "2.0 KiB");
  EXPECT_EQ(format_bytes(3.5 * kMiB), "3.50 MiB");
  EXPECT_EQ(format_bytes(1.5 * kGiB), "1.50 GiB");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(1.234), "1.234 s");
  EXPECT_EQ(format_time(0.0456), "45.600 ms");
  EXPECT_EQ(format_time(7.8e-6), "7.800 us");
}

}  // namespace
}  // namespace dnnperf::util
