#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "dnn/models.hpp"

namespace dnnperf::dnn {
namespace {

// ---------------------------------------------------------------------------
// Model zoo validation against published parameter / MAC counts
// ---------------------------------------------------------------------------

class ModelZooParam : public ::testing::TestWithParam<ModelId> {};

TEST_P(ModelZooParam, ParameterCountWithinTwoPercent) {
  const Graph g = build_model(GetParam());
  const ModelRef ref = reference(GetParam());
  EXPECT_NEAR(g.total_params() / ref.params, 1.0, 0.02) << g.name();
}

TEST_P(ModelZooParam, MacCountWithinTenPercent) {
  const Graph g = build_model(GetParam());
  const ModelRef ref = reference(GetParam());
  const double gmacs = g.total_fwd_flops() / 2e9;
  EXPECT_NEAR(gmacs / ref.gmacs, 1.0, 0.10) << g.name();
}

TEST_P(ModelZooParam, GraphIsWellFormed) {
  const Graph g = build_model(GetParam());
  EXPECT_NO_THROW(g.validate());
  EXPECT_GT(g.size(), 10);
  // Backward is roughly 2x forward for conv-dominated nets.
  EXPECT_GT(g.total_bwd_flops(), g.total_fwd_flops());
  EXPECT_LT(g.total_bwd_flops(), 2.5 * g.total_fwd_flops());
}

TEST_P(ModelZooParam, GradientTensorsCoverAllParams) {
  const Graph g = build_model(GetParam());
  const auto tensors = g.gradient_tensor_bytes();
  const double sum = std::accumulate(tensors.begin(), tensors.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, g.gradient_bytes());
  for (double b : tensors) EXPECT_GT(b, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelZooParam, ::testing::ValuesIn(all_models()),
                         [](const ::testing::TestParamInfo<ModelId>& param_info) {
                           std::string name = to_string(param_info.param);
                           std::erase(name, '-');
                           return name;
                         });

// ---------------------------------------------------------------------------
// Structure properties the paper leans on
// ---------------------------------------------------------------------------

TEST(ModelStructure, InceptionHasMoreBranchParallelismThanResNet) {
  // Section III-D: ResNets are nearly linear; Inception modules expose
  // inter-op parallelism.
  EXPECT_EQ(build_model(ModelId::Vgg16).max_branch_width(), 1);
  EXPECT_EQ(build_model(ModelId::ResNet50).max_branch_width(), 2);
  EXPECT_GE(build_model(ModelId::InceptionV3).max_branch_width(), 4);
  EXPECT_GE(build_model(ModelId::InceptionV4).max_branch_width(), 4);
}

TEST(ModelStructure, ResNetDepthOrdering) {
  const double p50 = build_model(ModelId::ResNet50).total_params();
  const double p101 = build_model(ModelId::ResNet101).total_params();
  const double p152 = build_model(ModelId::ResNet152).total_params();
  EXPECT_LT(p50, p101);
  EXPECT_LT(p101, p152);
  const double f50 = build_model(ModelId::ResNet50).total_fwd_flops();
  const double f152 = build_model(ModelId::ResNet152).total_fwd_flops();
  EXPECT_GT(f152 / f50, 2.5);  // RN152 ~2.8x the compute of RN50
}

TEST(ModelStructure, GradientTensorsInBackwardOrder) {
  // The first gradient tensor produced by backward belongs to the classifier
  // (the last parameterized op), which for ResNet-50 is the 1000-way FC:
  // 2048*1000 + 1000 weights = ~8.2 MB.
  const Graph g = build_model(ModelId::ResNet50);
  const auto tensors = g.gradient_tensor_bytes();
  EXPECT_NEAR(tensors.front(), (2048.0 * 1000 + 1000) * 4.0, 1.0);
}

// ---------------------------------------------------------------------------
// Graph builder mechanics
// ---------------------------------------------------------------------------

TEST(GraphBuilder, GroupedConvScalesParamsAndFlops) {
  Graph g("test");
  const int in = g.input(32, 8, 8);
  const int dense_conv = g.conv2d("dense", in, 64, 3, 3, 1, 1, 1, 1);
  const int grouped = g.conv2d("grouped", in, 64, 3, 3, 1, 1, 1, 1, false, /*groups=*/8);
  EXPECT_DOUBLE_EQ(g.op(grouped).params, g.op(dense_conv).params / 8);
  EXPECT_DOUBLE_EQ(g.op(grouped).fwd_flops, g.op(dense_conv).fwd_flops / 8);
  EXPECT_THROW(g.conv2d("bad", in, 64, 3, 3, 1, 1, 1, 1, false, 5), std::invalid_argument);
  EXPECT_THROW(g.conv2d("bad2", in, 66, 3, 3, 1, 1, 1, 1, false, 4), std::invalid_argument);
}

TEST(ModelStructure, ResNextMatchesResNet50Budget) {
  // ResNeXt-50 32x4d was designed to match ResNet-50's parameter and FLOP
  // budget while widening the transform set.
  const Graph next = build_model(ModelId::ResNext50);
  const Graph r50 = build_model(ModelId::ResNet50);
  EXPECT_NEAR(next.total_params() / r50.total_params(), 1.0, 0.05);
  EXPECT_NEAR(next.total_fwd_flops() / r50.total_fwd_flops(), 1.0, 0.10);
}


TEST(GraphBuilder, ShapeInference) {
  Graph g("test");
  const int in = g.input(3, 224, 224);
  const int c = g.conv2d("c", in, 64, 7, 7, 2, 2, 3, 3);
  EXPECT_EQ(g.op(c).out.c, 64);
  EXPECT_EQ(g.op(c).out.h, 112);
  EXPECT_EQ(g.op(c).out.w, 112);
  const int p = g.max_pool("p", c, 3, 2, 1);
  EXPECT_EQ(g.op(p).out.h, 56);
}

TEST(GraphBuilder, ConvFlopsAndParams) {
  Graph g("test");
  const int in = g.input(16, 8, 8);
  const int c = g.conv2d("c", in, 32, 3, 3, 1, 1, 1, 1, /*bias=*/true);
  // params: 16*3*3*32 + 32 bias; flops: 2 * out_elems * 16*3*3 + out_elems.
  EXPECT_DOUBLE_EQ(g.op(c).params, 16.0 * 9 * 32 + 32);
  const double out_elems = 32.0 * 8 * 8;
  EXPECT_DOUBLE_EQ(g.op(c).fwd_flops, 2.0 * out_elems * 16 * 9 + out_elems);
  EXPECT_DOUBLE_EQ(g.op(c).bwd_flops, 2.0 * g.op(c).fwd_flops);
}

TEST(GraphBuilder, AddRequiresMatchingShapes) {
  Graph g("test");
  const int in = g.input(3, 8, 8);
  const int a = g.conv2d("a", in, 4, 1, 1, 1, 1, 0, 0);
  const int b = g.conv2d("b", in, 8, 1, 1, 1, 1, 0, 0);
  EXPECT_THROW(g.add("bad", a, b), std::invalid_argument);
}

TEST(GraphBuilder, ConcatRequiresMatchingSpatialDims) {
  Graph g("test");
  const int in = g.input(3, 8, 8);
  const int a = g.conv2d("a", in, 4, 1, 1, 1, 1, 0, 0);
  const int b = g.conv2d("b", in, 4, 3, 3, 2, 2, 1, 1);  // 4x4 spatial
  EXPECT_THROW(g.concat("bad", {a, b}), std::invalid_argument);
  EXPECT_THROW(g.concat("empty", {}), std::invalid_argument);
}

TEST(GraphBuilder, ConcatSumsChannels) {
  Graph g("test");
  const int in = g.input(3, 8, 8);
  const int a = g.conv2d("a", in, 4, 1, 1, 1, 1, 0, 0);
  const int b = g.conv2d("b", in, 6, 1, 1, 1, 1, 0, 0);
  const int c = g.concat("c", {a, b});
  EXPECT_EQ(g.op(c).out.c, 10);
}

TEST(GraphBuilder, RejectsInvalidConv) {
  Graph g("test");
  const int in = g.input(3, 4, 4);
  // 7x7 valid conv on a 4x4 input has no output pixels.
  EXPECT_THROW(g.conv2d("c", in, 8, 7, 7, 1, 1, 0, 0), std::invalid_argument);
}

TEST(GraphBuilder, ConsumersAreInverseEdges) {
  Graph g("test");
  const int in = g.input(3, 8, 8);
  const int a = g.relu("a", in);
  const int b = g.relu("b", in);
  g.add("sum", a, b);
  const auto consumers = g.consumers();
  EXPECT_EQ(consumers[static_cast<std::size_t>(in)].size(), 2u);
  EXPECT_EQ(consumers[static_cast<std::size_t>(a)].size(), 1u);
}

TEST(GraphBuilder, ModelNameLookup) {
  EXPECT_EQ(model_by_name("resnet50"), ModelId::ResNet50);
  EXPECT_EQ(model_by_name("inception-v4"), ModelId::InceptionV4);
  EXPECT_THROW(model_by_name("bert"), std::out_of_range);
  EXPECT_EQ(paper_models().size(), 5u);
}

}  // namespace
}  // namespace dnnperf::dnn
