#include <gtest/gtest.h>

#include <tuple>

#include "ref/conv_fast.hpp"
#include "ref/gemm.hpp"

namespace dnnperf::ref {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i)
    for (int kk = 0; kk < k; ++kk)
      for (int j = 0; j < n; ++j)
        c[static_cast<std::size_t>(i) * n + j] +=
            a[static_cast<std::size_t>(i) * k + kk] * b[static_cast<std::size_t>(kk) * n + j];
  return c;
}

class GemmShapeParam : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeParam, MatchesNaiveMatmul) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(31);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  ThreadPool pool(3);
  Tensor c({m, n});
  gemm(a, b, c, pool);
  EXPECT_LT(max_abs_diff(c, naive_matmul(a, b)), 1e-4f);
}

TEST_P(GemmShapeParam, TransposedVariantMatches) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(32);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  // Store A transposed and multiply through gemm_at.
  Tensor a_t({k, m});
  for (int i = 0; i < m; ++i)
    for (int kk = 0; kk < k; ++kk)
      a_t[static_cast<std::size_t>(kk) * m + i] = a[static_cast<std::size_t>(i) * k + kk];
  ThreadPool pool(2);
  Tensor c({m, n});
  gemm_at(a_t, b, c, pool);
  EXPECT_LT(max_abs_diff(c, naive_matmul(a, b)), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapeParam,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 7},
                                           std::tuple{16, 16, 16}, std::tuple{33, 65, 129},
                                           std::tuple{100, 70, 130}, std::tuple{2, 200, 3}));

TEST(Gemm, AccumulateAddsToExisting) {
  util::Rng rng(33);
  const Tensor a = Tensor::randn({4, 6}, rng);
  const Tensor b = Tensor::randn({6, 5}, rng);
  ThreadPool pool(1);
  Tensor c({4, 5});
  c.fill(1.0f);
  gemm(a, b, c, pool, /*accumulate=*/true);
  Tensor expected = naive_matmul(a, b);
  for (std::size_t i = 0; i < expected.size(); ++i) expected[i] += 1.0f;
  EXPECT_LT(max_abs_diff(c, expected), 1e-4f);
}

TEST(Gemm, RejectsBadShapes) {
  ThreadPool pool(1);
  Tensor a({2, 3}), b({4, 5}), c({2, 5});
  EXPECT_THROW(gemm(a, b, c, pool), std::invalid_argument);
  Tensor b2({3, 5}), c2({3, 5});
  EXPECT_THROW(gemm(a, b2, c2, pool), std::invalid_argument);
}

TEST(Im2col, RoundTripThroughCol2im) {
  // col2im(im2col(x)) multiplies each input element by the number of
  // windows covering it; with a 1x1 kernel and stride 1 that count is 1.
  util::Rng rng(34);
  const Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
  ThreadPool pool(2);
  const Tensor cols = im2col(x, 1, 1, 1, 0, pool);
  const Tensor back = col2im(cols, 2, 3, 5, 5, 1, 1, 1, 0, pool);
  EXPECT_LT(max_abs_diff(x, back), 1e-6f);
}

TEST(Im2col, ColumnLayout) {
  // A 2x2 input with a 2x2 kernel, no pad: exactly one output position whose
  // column is the flattened input.
  Tensor x({1, 1, 2, 2});
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  x[3] = 4;
  ThreadPool pool(1);
  const Tensor cols = im2col(x, 2, 2, 1, 0, pool);
  ASSERT_EQ(cols.dim(0), 1);
  ASSERT_EQ(cols.dim(1), 4);
  EXPECT_EQ(cols[0], 1);
  EXPECT_EQ(cols[1], 2);
  EXPECT_EQ(cols[2], 3);
  EXPECT_EQ(cols[3], 4);
}

// ---------------------------------------------------------------------------
// im2col+GEMM convolution vs the direct kernels
// ---------------------------------------------------------------------------

using ConvCase = std::tuple<int, int, int, int, int, int>;  // n, c, hw, oc, stride, pad

class ConvGemmParam : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGemmParam, ForwardMatchesDirectKernel) {
  const auto [n, c, hw, oc, stride, pad] = GetParam();
  util::Rng rng(35);
  const Tensor x = Tensor::randn({n, c, hw, hw}, rng);
  const Tensor w = Tensor::randn({oc, c, 3, 3}, rng, 0.3f);
  const Tensor b = Tensor::randn({oc}, rng, 0.1f);
  ThreadPool pool(2);
  const ConvSpec spec{stride, pad};
  const Tensor direct = conv2d_forward(x, w, b, spec, pool);
  const Tensor lowered = conv2d_forward_gemm(x, w, b, spec, pool);
  ASSERT_TRUE(direct.same_shape(lowered));
  EXPECT_LT(max_abs_diff(direct, lowered), 1e-4f);
}

TEST_P(ConvGemmParam, BackwardMatchesDirectKernel) {
  const auto [n, c, hw, oc, stride, pad] = GetParam();
  util::Rng rng(36);
  const Tensor x = Tensor::randn({n, c, hw, hw}, rng);
  const Tensor w = Tensor::randn({oc, c, 3, 3}, rng, 0.3f);
  const Tensor b = Tensor::zeros({oc});
  ThreadPool pool(2);
  const ConvSpec spec{stride, pad};
  const Tensor y = conv2d_forward(x, w, b, spec, pool);
  util::Rng rng2(37);
  const Tensor dy = Tensor::randn(y.shape(), rng2);

  Tensor dx1, dw1, db1, dx2, dw2, db2;
  conv2d_backward(x, w, dy, spec, dx1, dw1, db1, pool);
  conv2d_backward_gemm(x, w, dy, spec, dx2, dw2, db2, pool);
  EXPECT_LT(max_abs_diff(dx1, dx2), 1e-3f);
  EXPECT_LT(max_abs_diff(dw1, dw2), 1e-3f);
  EXPECT_LT(max_abs_diff(db1, db2), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(ConvShapes, ConvGemmParam,
                         ::testing::Values(ConvCase{1, 1, 5, 1, 1, 0},
                                           ConvCase{2, 3, 8, 4, 1, 1},
                                           ConvCase{1, 4, 9, 8, 2, 1},
                                           ConvCase{3, 2, 7, 5, 2, 0},
                                           ConvCase{2, 8, 6, 16, 1, 1}));

}  // namespace
}  // namespace dnnperf::ref
