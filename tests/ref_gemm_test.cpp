#include <gtest/gtest.h>

#include <tuple>

#include "ref/conv_fast.hpp"
#include "ref/gemm.hpp"

namespace dnnperf::ref {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i)
    for (int kk = 0; kk < k; ++kk)
      for (int j = 0; j < n; ++j)
        c[static_cast<std::size_t>(i) * n + j] +=
            a[static_cast<std::size_t>(i) * k + kk] * b[static_cast<std::size_t>(kk) * n + j];
  return c;
}

const char* path_name(GemmPath p) { return p == GemmPath::naive ? "naive" : "packed"; }

// Shapes include ragged cases: m/n/k that are not multiples of the register
// tile (8x8 or 6x16), the 96-row/240-col macro tiles, or the 256-deep k
// block — plus k > 256 so multi-k-block accumulation is exercised.
using GemmCase = std::tuple<std::tuple<int, int, int>, GemmPath>;

class GemmShapeParam : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmShapeParam, MatchesNaiveMatmul) {
  const auto [shape, path] = GetParam();
  const auto [m, k, n] = shape;
  SCOPED_TRACE(path_name(path));
  util::Rng rng(31);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  ThreadPool pool(3);
  Tensor c({m, n});
  gemm(a, b, c, pool, /*accumulate=*/false, path);
  EXPECT_LT(max_abs_diff(c, naive_matmul(a, b)), 1e-4f);
}

TEST_P(GemmShapeParam, TransposedVariantMatches) {
  const auto [shape, path] = GetParam();
  const auto [m, k, n] = shape;
  SCOPED_TRACE(path_name(path));
  util::Rng rng(32);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  // Store A transposed and multiply through gemm_at.
  Tensor a_t({k, m});
  for (int i = 0; i < m; ++i)
    for (int kk = 0; kk < k; ++kk)
      a_t[static_cast<std::size_t>(kk) * m + i] = a[static_cast<std::size_t>(i) * k + kk];
  ThreadPool pool(2);
  Tensor c({m, n});
  gemm_at(a_t, b, c, pool, /*accumulate=*/false, path);
  EXPECT_LT(max_abs_diff(c, naive_matmul(a, b)), 1e-4f);
}

TEST_P(GemmShapeParam, AccumulateAddsToExisting) {
  const auto [shape, path] = GetParam();
  const auto [m, k, n] = shape;
  SCOPED_TRACE(path_name(path));
  util::Rng rng(33);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  ThreadPool pool(2);
  Tensor c({m, n});
  c.fill(1.0f);
  gemm(a, b, c, pool, /*accumulate=*/true, path);
  Tensor expected = naive_matmul(a, b);
  for (std::size_t i = 0; i < expected.size(); ++i) expected[i] += 1.0f;
  EXPECT_LT(max_abs_diff(c, expected), 1e-4f);
}

TEST_P(GemmShapeParam, TransposedAccumulateAddsToExisting) {
  const auto [shape, path] = GetParam();
  const auto [m, k, n] = shape;
  SCOPED_TRACE(path_name(path));
  util::Rng rng(38);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  Tensor a_t({k, m});
  for (int i = 0; i < m; ++i)
    for (int kk = 0; kk < k; ++kk)
      a_t[static_cast<std::size_t>(kk) * m + i] = a[static_cast<std::size_t>(i) * k + kk];
  ThreadPool pool(2);
  Tensor c({m, n});
  c.fill(0.5f);
  gemm_at(a_t, b, c, pool, /*accumulate=*/true, path);
  Tensor expected = naive_matmul(a, b);
  for (std::size_t i = 0; i < expected.size(); ++i) expected[i] += 0.5f;
  EXPECT_LT(max_abs_diff(c, expected), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeParam,
    ::testing::Combine(::testing::ValuesIn(std::vector<std::tuple<int, int, int>>{
                           {1, 1, 1},
                           {3, 5, 7},
                           {16, 16, 16},
                           {33, 65, 129},
                           {100, 70, 130},
                           {2, 200, 3},
                           {97, 300, 17},    // ragged tiles + k crosses the 256 block
                           {130, 257, 100},  // m > MC, k = KC + 1
                           {95, 33, 241},    // n > NC by one
                       }),
                       ::testing::Values(GemmPath::naive, GemmPath::packed)),
    [](const auto& param_info) {
      const auto& shape = std::get<0>(param_info.param);
      return std::to_string(std::get<0>(shape)) + "x" + std::to_string(std::get<1>(shape)) +
             "x" + std::to_string(std::get<2>(shape)) + "_" + path_name(std::get<1>(param_info.param));
    });

TEST(Gemm, DefaultPathIsPacked) { EXPECT_EQ(gemm_path(), GemmPath::packed); }

TEST(Gemm, ScopedPathOverrideRestores) {
  const GemmPath before = gemm_path();
  {
    ScopedGemmPath scoped(GemmPath::naive);
    EXPECT_EQ(gemm_path(), GemmPath::naive);
  }
  EXPECT_EQ(gemm_path(), before);
}

TEST(Gemm, RejectsBadShapes) {
  ThreadPool pool(1);
  Tensor a({2, 3}), b({4, 5}), c({2, 5});
  EXPECT_THROW(gemm(a, b, c, pool), std::invalid_argument);
  Tensor b2({3, 5}), c2({3, 5});
  EXPECT_THROW(gemm(a, b2, c2, pool), std::invalid_argument);
}

TEST(Im2col, RoundTripThroughCol2im) {
  // col2im(im2col(x)) multiplies each input element by the number of
  // windows covering it; with a 1x1 kernel and stride 1 that count is 1.
  util::Rng rng(34);
  const Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
  ThreadPool pool(2);
  const Tensor cols = im2col(x, 1, 1, 1, 0, pool);
  const Tensor back = col2im(cols, 2, 3, 5, 5, 1, 1, 1, 0, pool);
  EXPECT_LT(max_abs_diff(x, back), 1e-6f);
}

// With stride/pad the round trip is not the identity: each input element is
// multiplied by its window cover count, which is exactly what the round trip
// of an all-ones tensor produces. Verify col2im(im2col(x)) == x * cover.
using ColsCase = std::tuple<int, int, int, int>;  // kh, kw, stride, pad

class Im2colRoundTrip : public ::testing::TestWithParam<ColsCase> {};

TEST_P(Im2colRoundTrip, CoverCountIdentity) {
  const auto [kh, kw, stride, pad] = GetParam();
  const int n = 2, c = 3, h = 9, w = 7;
  util::Rng rng(39);
  const Tensor x = Tensor::randn({n, c, h, w}, rng);
  Tensor ones({n, c, h, w});
  ones.fill(1.0f);
  ThreadPool pool(2);
  const Tensor back =
      col2im(im2col(x, kh, kw, stride, pad, pool), n, c, h, w, kh, kw, stride, pad, pool);
  const Tensor cover =
      col2im(im2col(ones, kh, kw, stride, pad, pool), n, c, h, w, kh, kw, stride, pad, pool);
  Tensor expected({n, c, h, w});
  for (std::size_t i = 0; i < expected.size(); ++i) expected[i] = x[i] * cover[i];
  EXPECT_LT(max_abs_diff(back, expected), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(StridesPads, Im2colRoundTrip,
                         ::testing::Values(ColsCase{3, 3, 1, 1}, ColsCase{3, 3, 2, 1},
                                           ColsCase{2, 2, 2, 0}, ColsCase{5, 3, 2, 2},
                                           ColsCase{1, 3, 2, 1}));

TEST(Im2col, ColumnLayout) {
  // A 2x2 input with a 2x2 kernel, no pad: exactly one output position whose
  // column is the flattened input.
  Tensor x({1, 1, 2, 2});
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  x[3] = 4;
  ThreadPool pool(1);
  const Tensor cols = im2col(x, 2, 2, 1, 0, pool);
  ASSERT_EQ(cols.dim(0), 1);
  ASSERT_EQ(cols.dim(1), 4);
  EXPECT_EQ(cols[0], 1);
  EXPECT_EQ(cols[1], 2);
  EXPECT_EQ(cols[2], 3);
  EXPECT_EQ(cols[3], 4);
}

// ---------------------------------------------------------------------------
// im2col+GEMM convolution vs the direct kernels (both GEMM paths)
// ---------------------------------------------------------------------------

// n, c, hw, oc, stride, pad, path
using ConvCase = std::tuple<int, int, int, int, int, int, GemmPath>;

class ConvGemmParam : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGemmParam, ForwardMatchesDirectKernel) {
  const auto [n, c, hw, oc, stride, pad, path] = GetParam();
  SCOPED_TRACE(path_name(path));
  util::Rng rng(35);
  const Tensor x = Tensor::randn({n, c, hw, hw}, rng);
  const Tensor w = Tensor::randn({oc, c, 3, 3}, rng, 0.3f);
  const Tensor b = Tensor::randn({oc}, rng, 0.1f);
  ThreadPool pool(2);
  const ConvSpec spec{stride, pad};
  const Tensor direct = conv2d_forward(x, w, b, spec, pool);
  const Tensor lowered = conv2d_forward_gemm(x, w, b, spec, pool, path);
  ASSERT_TRUE(direct.same_shape(lowered));
  EXPECT_LT(max_abs_diff(direct, lowered), 1e-4f);
}

TEST_P(ConvGemmParam, BackwardMatchesDirectKernel) {
  const auto [n, c, hw, oc, stride, pad, path] = GetParam();
  SCOPED_TRACE(path_name(path));
  util::Rng rng(36);
  const Tensor x = Tensor::randn({n, c, hw, hw}, rng);
  const Tensor w = Tensor::randn({oc, c, 3, 3}, rng, 0.3f);
  const Tensor b = Tensor::zeros({oc});
  ThreadPool pool(2);
  const ConvSpec spec{stride, pad};
  const Tensor y = conv2d_forward(x, w, b, spec, pool);
  util::Rng rng2(37);
  const Tensor dy = Tensor::randn(y.shape(), rng2);

  Tensor dx1, dw1, db1, dx2, dw2, db2;
  conv2d_backward(x, w, dy, spec, dx1, dw1, db1, pool);
  conv2d_backward_gemm(x, w, dy, spec, dx2, dw2, db2, pool, path);
  EXPECT_LT(max_abs_diff(dx1, dx2), 1e-3f);
  EXPECT_LT(max_abs_diff(dw1, dw2), 1e-3f);
  EXPECT_LT(max_abs_diff(db1, db2), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    ConvShapes, ConvGemmParam,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1, 4),
                       ::testing::Values(5, 8), ::testing::Values(1, 8),
                       ::testing::Values(1, 2), ::testing::Values(0, 1),
                       ::testing::Values(GemmPath::naive, GemmPath::packed)));

// Larger-than-one-macro-tile conv: N*OH*OW = 2*16*16 = 512 rows > MC and
// oc = 24 exercises a ragged N edge of the implicit path.
TEST(ConvGemm, MultiTileImplicitMatchesDirect) {
  util::Rng rng(40);
  const Tensor x = Tensor::randn({2, 8, 16, 16}, rng);
  const Tensor w = Tensor::randn({24, 8, 3, 3}, rng, 0.2f);
  const Tensor b = Tensor::randn({24}, rng, 0.1f);
  ThreadPool pool(3);
  const ConvSpec spec{1, 1};
  const Tensor direct = conv2d_forward(x, w, b, spec, pool);
  const Tensor implicit = conv2d_forward_gemm(x, w, b, spec, pool, GemmPath::packed);
  EXPECT_LT(max_abs_diff(direct, implicit), 1e-4f);
}

// Non-square kernels (1x3 / 3x1, the factorized-conv shapes of Inception).
TEST(ConvGemm, NonSquareKernelsMatchDirect) {
  util::Rng rng(41);
  const Tensor x = Tensor::randn({2, 3, 9, 9}, rng);
  ThreadPool pool(2);
  for (const auto& [kh, kw] : {std::pair{1, 3}, std::pair{3, 1}, std::pair{5, 3}}) {
    SCOPED_TRACE(std::to_string(kh) + "x" + std::to_string(kw));
    const Tensor w = Tensor::randn({6, 3, kh, kw}, rng, 0.3f);
    const Tensor b = Tensor::randn({6}, rng, 0.1f);
    const ConvSpec spec{1, 1};
    const Tensor direct = conv2d_forward(x, w, b, spec, pool);
    for (GemmPath path : {GemmPath::naive, GemmPath::packed}) {
      SCOPED_TRACE(path_name(path));
      const Tensor lowered = conv2d_forward_gemm(x, w, b, spec, pool, path);
      ASSERT_TRUE(direct.same_shape(lowered));
      EXPECT_LT(max_abs_diff(direct, lowered), 1e-4f);
    }
    // Backward for the non-square shapes too.
    util::Rng grng(42);
    const Tensor dy = Tensor::randn(direct.shape(), grng);
    Tensor dx1, dw1, db1;
    conv2d_backward(x, w, dy, spec, dx1, dw1, db1, pool);
    for (GemmPath path : {GemmPath::naive, GemmPath::packed}) {
      SCOPED_TRACE(path_name(path));
      Tensor dx2, dw2, db2;
      conv2d_backward_gemm(x, w, dy, spec, dx2, dw2, db2, pool, path);
      EXPECT_LT(max_abs_diff(dx1, dx2), 1e-3f);
      EXPECT_LT(max_abs_diff(dw1, dw2), 1e-3f);
      EXPECT_LT(max_abs_diff(db1, db2), 1e-3f);
    }
  }
}

}  // namespace
}  // namespace dnnperf::ref
