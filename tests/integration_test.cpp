// End-to-end checks across the whole stack: every figure generator runs,
// produces well-formed tables, and exports finite positive anchors; the
// qualitative orderings the paper reports hold across modules.
#include <gtest/gtest.h>

#include <cmath>

#include "core/figures.hpp"
#include "core/presets.hpp"
#include "hw/platforms.hpp"
#include "train/trainer.hpp"

namespace dnnperf {
namespace {

class AllFiguresParam : public ::testing::TestWithParam<std::string> {};

TEST_P(AllFiguresParam, RunsAndProducesWellFormedOutput) {
  const core::FigureResult fig = core::run_figure(GetParam());
  EXPECT_EQ(fig.id, GetParam());
  EXPECT_FALSE(fig.title.empty());
  ASSERT_FALSE(fig.tables.empty());
  for (const auto& table : fig.tables) {
    EXPECT_GT(table.rows(), 0u);
    EXPECT_GT(table.cols(), 1u);
    EXPECT_FALSE(table.to_csv().empty());
  }
  for (const auto& [key, value] : fig.anchors) {
    EXPECT_TRUE(std::isfinite(value)) << key;
    EXPECT_GE(value, 0.0) << key;
  }
  EXPECT_NE(core::render(fig).find(fig.id), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(EveryFigure, AllFiguresParam,
                         ::testing::ValuesIn(core::all_figure_ids()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

// ---------------------------------------------------------------------------
// Cross-cutting orderings from the paper's key insights (Section IX)
// ---------------------------------------------------------------------------

TEST(Insights, TensorFlowBeatsPytorchOnCpu) {
  const double tf =
      train::run_training(core::tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 1))
          .images_per_sec;
  const double pt =
      train::run_training(core::pytorch_best(hw::stampede2(), dnn::ModelId::ResNet50, 1))
          .images_per_sec;
  EXPECT_GT(tf, pt);
}

TEST(Insights, PytorchBeatsTensorFlowOnGpu) {
  const auto tf = core::gpu_config(hw::pitzer_v100(), dnn::ModelId::ResNet50,
                                   exec::Framework::TensorFlow, 1, 1, 64);
  const auto pt = core::gpu_config(hw::pitzer_v100(), dnn::ModelId::ResNet50,
                                   exec::Framework::PyTorch, 1, 1, 64);
  EXPECT_GT(train::run_training(pt).images_per_sec, train::run_training(tf).images_per_sec);
}

TEST(Insights, SkylakeBetweenK80AndV100) {
  const double skx =
      train::run_training(core::tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 1))
          .images_per_sec;
  const double k80 = train::run_training(core::gpu_config(hw::ri2_k80(), dnn::ModelId::ResNet50,
                                                          exec::Framework::TensorFlow, 1, 1, 32))
                         .images_per_sec;
  const double v100 =
      train::run_training(core::gpu_config(hw::pitzer_v100(), dnn::ModelId::ResNet50,
                                           exec::Framework::TensorFlow, 1, 1, 128))
          .images_per_sec;
  EXPECT_GT(skx, k80);
  EXPECT_GT(v100, skx);
}

TEST(Insights, ThroughputOrderingTracksModelCost) {
  // Heavier models train fewer images/second on the same platform.
  double prev = 1e18;
  for (auto m : {dnn::ModelId::ResNet50, dnn::ModelId::ResNet101, dnn::ModelId::ResNet152}) {
    const double v = train::run_training(core::tf_best(hw::stampede2(), m, 1)).images_per_sec;
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Insights, CpuTrainingHidesCommunicationButGpusExposeIt) {
  // On the CPU clusters, backward compute is long enough to hide the
  // gradient allreduce entirely — the fabric barely matters (this is why the
  // paper reaches 125x on 128 nodes). Fast GPUs flip that: iteration times
  // shrink and a slow fabric costs real throughput.
  auto cpu = core::tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 32);
  const double cpu_opa = train::run_training(cpu).images_per_sec;
  cpu.cluster.fabric = hw::FabricKind::Ethernet10G;
  const double cpu_eth = train::run_training(cpu).images_per_sec;
  EXPECT_NEAR(cpu_eth / cpu_opa, 1.0, 0.05);

  // ResNet-152 at BS 32: 240 MB of gradients against a ~0.2 s backward pass
  // — a 10GigE allreduce cannot hide under that.
  auto gpu = core::gpu_config(hw::pitzer_v100(), dnn::ModelId::ResNet152,
                              exec::Framework::TensorFlow, 4, 2, 32);
  const double gpu_ib = train::run_training(gpu).images_per_sec;
  gpu.cluster.fabric = hw::FabricKind::Ethernet10G;
  const double gpu_eth = train::run_training(gpu).images_per_sec;
  EXPECT_GT(gpu_ib, gpu_eth * 1.05);
}

TEST(Insights, IntraOpMinusOneRuleHolds) {
  // With a Horovod thread, cores/ppn - 1 intra-op threads beat cores/ppn.
  auto tuned = core::tf_best(hw::stampede2(), dnn::ModelId::ResNet152, 4);
  tuned.intra_threads = 11;
  auto greedy = tuned;
  greedy.intra_threads = 12;
  EXPECT_GT(train::run_training(tuned).images_per_sec,
            train::run_training(greedy).images_per_sec);
}

}  // namespace
}  // namespace dnnperf
