// Tests for the verified graph-rewrite framework (src/opt): dataflow
// analyses, the tensor-lifetime memory planner, every rewrite pass's golden
// RewriteLog, the equivalence checker (including the seeded unsound-fusion
// mutant it must catch), and the wiring into the trainer, the lint gate, the
// eval cache, and the advisor grid.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "analysis/analyze.hpp"
#include "analysis/policy_passes.hpp"
#include "core/eval_cache.hpp"
#include "core/advisor_service.hpp"
#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "dnn/models.hpp"
#include "hw/platforms.hpp"
#include "opt/dataflow.hpp"
#include "opt/fold.hpp"
#include "opt/memory_planner.hpp"
#include "opt/passes.hpp"
#include "train/trainer.hpp"
#include "util/diag.hpp"
#include "util/rng.hpp"

namespace dnnperf {
namespace {

/// input -> conv -> relu -> fc, plus a dead conv head off the input.
dnn::Graph chain_with_dead_head() {
  dnn::Graph g("chain-dead");
  const int in = g.input(3, 8, 8);
  const int conv = g.conv2d("conv", in, 8, 3, 3, 1, 1, 1, 1, /*bias=*/true);
  const int act = g.relu("relu", conv);
  g.conv2d("dead", in, 4, 1, 1, 1, 1, 0, 0);  // never consumed
  g.matmul("fc", act, 10);
  return g;
}

/// RAII reset for the process-wide seeded bug, so a failing test cannot
/// poison the suite.
struct SeededBugGuard {
  ~SeededBugGuard() { opt::set_seeded_bug_for_test(opt::SeededBug::None); }
};

// ---- dataflow --------------------------------------------------------------

TEST(OptDataflow, UseDefConsumersAndCones) {
  const dnn::Graph g = chain_with_dead_head();
  const opt::UseDef ud = opt::build_use_def(g);
  ASSERT_EQ(ud.terminal, g.size() - 1);
  // input feeds the live conv and the dead head.
  EXPECT_EQ(ud.consumers[0].size(), 2u);
  // the dead head reaches nothing.
  const int dead = 3;
  EXPECT_TRUE(ud.consumers[static_cast<std::size_t>(dead)].empty());
  EXPECT_TRUE(ud.from_input[static_cast<std::size_t>(dead)]);
  EXPECT_FALSE(ud.to_terminal[static_cast<std::size_t>(dead)]);
  EXPECT_FALSE(ud.contributes(dead));
  for (const int live : {0, 1, 2, 4}) EXPECT_TRUE(ud.contributes(live)) << live;
}

TEST(OptDataflow, LivenessIntervalsOnTheTrainingClock) {
  dnn::Graph g("tiny");
  const int in = g.input(3, 8, 8);
  const int conv = g.conv2d("conv", in, 8, 3, 3, 1, 1, 1, 1);
  const int act = g.relu("relu", conv);
  g.matmul("fc", act, 10);
  const opt::UseDef ud = opt::build_use_def(g);
  const opt::Liveness live = opt::compute_liveness(g, ud);

  const int n = g.size();
  EXPECT_EQ(live.ticks, 2 * n);
  EXPECT_EQ(static_cast<int>(live.live_at_tick.size()), 2 * n);
  EXPECT_GT(live.peak_bytes, 0.0);

  // The ReLU is elementwise with a single-consumer conv producer whose
  // backward does not re-read its own output: it runs in place.
  bool relu_aliased = false;
  for (const auto& t : live.tensors) {
    if (t.op == act && !t.is_gradient) relu_aliased = t.aliased;
  }
  EXPECT_TRUE(relu_aliased);

  // Every interval is well-formed and within the clock.
  for (const auto& t : live.tensors) {
    EXPECT_LE(t.def, t.last_use);
    EXPECT_GE(t.def, 0);
    EXPECT_LT(t.last_use, live.ticks);
  }
  // The conv activation must survive to the conv's backward tick (its
  // backward re-reads the forward input... the *input's* activation; the
  // conv output itself is re-read by the ReLU's backward, which runs at
  // tick 2n-1-act).
  for (const auto& t : live.tensors) {
    if (t.op == conv && !t.is_gradient) {
      EXPECT_GE(t.last_use, 2 * n - 1 - act);
    }
  }
}

TEST(OptDataflow, BackwardReadKindTables) {
  EXPECT_TRUE(opt::backward_reads_input(dnn::OpKind::Conv2d));
  EXPECT_TRUE(opt::backward_reads_input(dnn::OpKind::MatMul));
  EXPECT_TRUE(opt::backward_reads_input(dnn::OpKind::BatchNorm));
  EXPECT_FALSE(opt::backward_reads_input(dnn::OpKind::ReLU));
  EXPECT_TRUE(opt::backward_reads_output(dnn::OpKind::ReLU));
  EXPECT_TRUE(opt::backward_reads_output(dnn::OpKind::Softmax));
  EXPECT_FALSE(opt::backward_reads_output(dnn::OpKind::AvgPool));
}

// ---- memory planner --------------------------------------------------------

/// A long chain of stride-1 k=1 average pools: every activation dies as soon
/// as its consumer's forward runs, and no backward re-reads anything, so a
/// handful of slots serve the whole chain.
dnn::Graph avgpool_chain(int length) {
  dnn::Graph g("avgpool-chain");
  int prev = g.input(4, 16, 16);
  for (int i = 0; i < length; ++i)
    prev = g.avg_pool("pool" + std::to_string(i), prev, 1, 1);
  return g;
}

TEST(OptPlanner, DisjointIntervalsShareSlots) {
  const dnn::Graph g = avgpool_chain(32);
  const opt::MemoryPlan plan = opt::plan_memory(g, 1);
  double all_bytes = 0.0;
  for (const auto& op : g.ops()) all_bytes += op.output_bytes;
  EXPECT_LT(plan.slots(), 8);  // 33 tensors plus gradients, a few slots
  EXPECT_LT(plan.slab_bytes, all_bytes);
  EXPECT_GE(plan.slab_bytes, plan.peak_live_bytes);  // slab covers the lower bound
  EXPECT_GT(plan.slab_utilization(), 0.0);
  EXPECT_LE(plan.slab_utilization(), 1.0);
}

TEST(OptPlanner, SlabScalesLinearlyWithBatch) {
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet18);
  const opt::MemoryPlan p1 = opt::plan_memory(g, 1);
  const opt::MemoryPlan p4 = opt::plan_memory(g, 4);
  EXPECT_NEAR(p4.slab_bytes, 4.0 * p1.slab_bytes, 1e-6 * p4.slab_bytes);
  // Persistent terms do not scale with batch.
  EXPECT_DOUBLE_EQ(p1.persistent_bytes(), p4.persistent_bytes());
}

TEST(OptPlanner, MaxBatchIsTheExactInverse) {
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const double budget = 8.0 * 1024.0 * 1024.0 * 1024.0;
  const int max_bs = opt::max_batch_for_plan(g, budget);
  ASSERT_GT(max_bs, 0);
  EXPECT_LE(opt::plan_memory(g, max_bs).total_bytes(), budget);
  EXPECT_GT(opt::plan_memory(g, max_bs + 1).total_bytes(), budget);
}

// ---- rewrite passes --------------------------------------------------------

TEST(OptPasses, DeadCodeEliminationGoldenLog) {
  const dnn::Graph g = chain_with_dead_head();
  opt::OptOptions oo;
  oo.level = 1;
  const opt::OptResult r = opt::optimize(g, oo);
  ASSERT_TRUE(r.ok()) << util::render_text(r.diags);
  EXPECT_EQ(r.log.count("dead-code"), 1u);
  EXPECT_EQ(r.log.ops_before, 5);
  EXPECT_EQ(r.log.ops_after, 4);
  EXPECT_LT(r.log.d_params(), 0.0);       // the dead conv carried weights
  EXPECT_LT(r.log.d_fwd_flops(), 0.0);
  // The optimized graph no longer lints G003 (dead op).
  EXPECT_FALSE(analysis::lint_graph(r.graph).has_code("G003"));
}

TEST(OptPasses, IdentityEliminationGoldenLog) {
  dnn::Graph g("identity");
  const int in = g.input(3, 8, 8);
  const int conv = g.conv2d("conv", in, 8, 3, 3, 1, 1, 1, 1);
  const int cat = g.concat("cat1", {conv});      // single-input concat: no-op
  const int r1 = g.relu("relu1", cat);
  const int r2 = g.relu("relu2", r1);            // ReLU-of-ReLU: no-op
  g.matmul("fc", r2, 10);
  opt::OptOptions oo;
  oo.level = 1;
  const opt::OptResult r = opt::optimize(g, oo);
  ASSERT_TRUE(r.ok()) << util::render_text(r.diags);
  EXPECT_EQ(r.log.count("identity"), 2u);
  EXPECT_EQ(r.log.ops_after, g.size() - 2);
  EXPECT_EQ(r.log.d_params(), 0.0);  // identities carry no parameters
  for (const auto& op : r.graph.ops()) {
    EXPECT_NE(op.kind == dnn::OpKind::Concat && op.inputs.size() == 1, true) << op.name;
  }
}

TEST(OptPasses, ConvBnReluCollapsesToOneConvAtO2) {
  dnn::Graph g("fusion");
  const int in = g.input(3, 16, 16);
  const int unit = g.conv_bn_relu("unit1", in, 8, 3, 3, 1, 1, 1, 1);
  g.matmul("fc", unit, 10);
  const opt::OptResult r = opt::optimize(g, {});  // defaults: level 2, all passes
  ASSERT_TRUE(r.ok()) << util::render_text(r.diags);
  EXPECT_EQ(r.log.count("fuse-conv-bn"), 1u);
  EXPECT_EQ(r.log.count("fuse-conv-act"), 1u);
  // input, conv (with folded BN + absorbed ReLU), fc.
  EXPECT_EQ(r.graph.size(), 3);
  EXPECT_EQ(r.graph.op(1).kind, dnn::OpKind::Conv2d);
  EXPECT_TRUE(r.graph.op(1).has_bias);
  // BN's 2C params go away, the conv gains a C-channel bias: net -C.
  EXPECT_DOUBLE_EQ(r.log.d_params(), -8.0);
  // Per-channel fold evidence was recorded for the checker.
  bool saw_folds = false;
  for (const auto& rw : r.log.rewrites)
    if (rw.pass == "fuse-conv-bn") saw_folds = !rw.folds.empty();
  EXPECT_TRUE(saw_folds);
}

TEST(OptPasses, PassMaskRestrictsWhatRuns) {
  dnn::Graph g("masked");
  const int in = g.input(3, 16, 16);
  const int unit = g.conv_bn_relu("unit1", in, 8, 3, 3, 1, 1, 1, 1);
  g.matmul("fc", unit, 10);
  opt::OptOptions oo;
  oo.pass_mask = static_cast<std::uint32_t>(opt::PassId::FuseConvBn);
  const opt::OptResult r = opt::optimize(g, oo);
  ASSERT_TRUE(r.ok()) << util::render_text(r.diags);
  EXPECT_EQ(r.log.count("fuse-conv-bn"), 1u);
  EXPECT_EQ(r.log.count("fuse-conv-act"), 0u);
  EXPECT_EQ(r.log.count("dead-code"), 0u);
}

TEST(OptPasses, LevelZeroAndLevelGatesArePureFunctions) {
  EXPECT_EQ(opt::passes_for_level(0), 0u);
  const std::uint32_t l1 = opt::passes_for_level(1);
  EXPECT_TRUE(l1 & static_cast<std::uint32_t>(opt::PassId::DeadCode));
  EXPECT_FALSE(l1 & static_cast<std::uint32_t>(opt::PassId::FuseConvBn));
  EXPECT_EQ(opt::passes_for_level(2), opt::kAllPasses);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet18);
  opt::OptOptions oo;
  oo.level = 0;
  const opt::OptResult r = opt::optimize(g, oo);
  EXPECT_TRUE(r.log.rewrites.empty());
  EXPECT_EQ(r.graph.size(), g.size());
}

TEST(OptPasses, EveryShippedModelOptimizesCheckerCleanAndIdempotent) {
  for (const dnn::ModelId id : dnn::all_models()) {
    const dnn::Graph g = dnn::build_model(id);
    const opt::OptResult r = opt::optimize(g, {});
    ASSERT_TRUE(r.ok()) << g.name() << "\n" << util::render_text(r.diags);
    EXPECT_LE(r.graph.total_params(), g.total_params()) << g.name();
    EXPECT_LE(r.graph.total_fwd_flops(), g.total_fwd_flops()) << g.name();
    EXPECT_LT(r.graph.total_activation_bytes(), g.total_activation_bytes()) << g.name();
    // The optimized graph still lints clean.
    EXPECT_FALSE(analysis::lint_graph(r.graph).has_errors()) << g.name();
    // A second run finds nothing left to rewrite.
    const opt::OptResult again = opt::optimize(r.graph, {});
    ASSERT_TRUE(again.ok()) << g.name();
    EXPECT_TRUE(again.log.rewrites.empty()) << g.name();
  }
}

// ---- fold math -------------------------------------------------------------

TEST(OptFold, MatchesTheBnAffineComposition) {
  const double gamma = 1.25, beta = -0.5, mean = 0.75, var = 2.0, eps = 1e-5;
  const double conv_bias = 0.125;
  const opt::BnFold f = opt::fold_bn(gamma, beta, mean, var, eps, conv_bias);
  for (const double y : {-2.0, 0.0, 0.5, 3.0}) {
    const double ref = gamma * ((y + conv_bias) - mean) / std::sqrt(var + eps) + beta;
    EXPECT_NEAR(f.scale * y + f.bias, ref, 1e-12);
  }
}

// ---- equivalence checker ---------------------------------------------------

TEST(OptChecker, SeededWrongFoldedBiasIsRejectedWithATrace) {
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet18);
  opt::OptOptions oo;
  oo.seeded_bug = opt::SeededBug::WrongFoldedBias;
  const opt::OptResult r = opt::optimize(g, oo);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("O003")) << util::render_text(r.diags);
  // The unsound stage was discarded: no fuse-conv-bn rewrite was accepted
  // and the returned graph kept BN's parameters.
  EXPECT_EQ(r.log.count("fuse-conv-bn"), 0u);
  bool has_bn = false;
  for (const auto& op : r.graph.ops())
    if (op.kind == dnn::OpKind::BatchNorm) has_bn = true;
  EXPECT_TRUE(has_bn);
  // The O003 hint carries the minimal rewrite trace.
  bool traced = false;
  for (const auto& d : r.diags.items())
    if (d.code == "O003" && d.hint.find("rewrite trace:") != std::string::npos &&
        d.hint.find("channel") != std::string::npos)
      traced = true;
  EXPECT_TRUE(traced) << util::render_text(r.diags);
}

TEST(OptChecker, TrainerRefusesToRunAnUnsoundRewrite) {
  SeededBugGuard guard;
  train::TrainConfig cfg = core::sp_baseline(hw::ri2_skylake(), dnn::ModelId::ResNet18, 32);
  cfg.opt_level = 2;
  EXPECT_GT(train::run_training(cfg).images_per_sec, 0.0);  // sound passes run fine
  opt::set_seeded_bug_for_test(opt::SeededBug::WrongFoldedBias);
  EXPECT_THROW(train::run_training(cfg), std::runtime_error);
}

TEST(OptChecker, ExperimentLintGateRejectsAnUnsoundRewrite) {
  SeededBugGuard guard;
  train::TrainConfig cfg = core::sp_baseline(hw::ri2_skylake(), dnn::ModelId::ResNet34, 32);
  cfg.opt_level = 2;
  core::lint_memo().clear();  // the gate memoizes verdicts by config hash
  opt::set_seeded_bug_for_test(opt::SeededBug::WrongFoldedBias);
  core::Experiment experiment(1, 0.0);
  EXPECT_THROW(experiment.measure(cfg), std::invalid_argument);
  opt::set_seeded_bug_for_test(opt::SeededBug::None);
  core::lint_memo().clear();  // drop the poisoned verdict
  EXPECT_GT(experiment.measure(cfg).images_per_sec, 0.0);
}

TEST(OptChecker, ConfigLintSurfacesOCodesAndS001) {
  SeededBugGuard guard;
  train::TrainConfig cfg = core::sp_baseline(hw::ri2_skylake(), dnn::ModelId::ResNet18, 32);
  cfg.opt_level = 2;
  opt::set_seeded_bug_for_test(opt::SeededBug::WrongFoldedBias);
  EXPECT_TRUE(analysis::lint_config(cfg).has_code("O003"));
  opt::set_seeded_bug_for_test(opt::SeededBug::None);
  EXPECT_FALSE(analysis::lint_config(cfg).has_errors());
  cfg.opt_level = 7;
  EXPECT_TRUE(analysis::lint_config(cfg).has_code("S001"));
}

// ---- property test over random DAGs ----------------------------------------

/// Random builder-built DAG: chains with occasional residual adds, BN+ReLU
/// units, pools, and a dense head. The builders enforce topology, so every
/// generated graph is well-formed by construction.
dnn::Graph random_graph(util::Rng& rng, int index) {
  dnn::Graph g("random-" + std::to_string(index));
  int prev = g.input(3, 32, 32);
  int channels = 3;
  const int layers = static_cast<int>(rng.uniform_int(2, 8));
  for (int i = 0; i < layers; ++i) {
    const int kind = static_cast<int>(rng.uniform_int(0, 4));
    const std::string tag = "l" + std::to_string(i);
    if (kind == 0) {
      channels = static_cast<int>(rng.uniform_int(4, 16));
      prev = g.conv2d(tag + "/conv", prev, channels, 3, 3, 1, 1, 1, 1,
                      rng.next_double() < 0.5);
    } else if (kind == 1) {
      channels = static_cast<int>(rng.uniform_int(4, 16));
      prev = g.conv_bn_relu(tag + "/unit", prev, channels, 3, 3, 1, 1, 1, 1);
    } else if (kind == 2) {
      const int branch = g.conv2d(tag + "/branch", prev, channels, 1, 1, 1, 1, 0, 0);
      prev = g.add(tag + "/add", prev, branch);
    } else if (kind == 3) {
      prev = g.relu(tag + "/relu", prev);
    } else {
      prev = g.avg_pool(tag + "/pool", prev, 1, 1);
    }
    if (rng.next_double() < 0.2)
      g.conv2d(tag + "/deadhead", prev, 4, 1, 1, 1, 1, 0, 0);  // dead branch
  }
  g.global_avg_pool("gap", prev);
  g.matmul("fc", g.size() - 1, 10);
  return g;
}

TEST(OptProperty, RandomDagsOptimizeSoundAtEveryLevel) {
  util::Rng rng(0xD1CEu);
  for (int i = 0; i < 25; ++i) {
    const dnn::Graph g = random_graph(rng, i);
    for (const int level : {0, 1, 2}) {
      opt::OptOptions oo;
      oo.level = level;
      oo.pass_mask = static_cast<std::uint32_t>(rng.uniform_int(0, 15));
      const opt::OptResult r = opt::optimize(g, oo);
      ASSERT_TRUE(r.ok()) << g.name() << " level " << level << "\n"
                          << util::render_text(r.diags);
      // Invariants: interface preserved, totals never grow, result re-lints.
      const auto& tb = g.ops().back().out;
      const auto& ta = r.graph.ops().back().out;
      EXPECT_TRUE(tb.c == ta.c && tb.h == ta.h && tb.w == ta.w) << g.name();
      EXPECT_LE(r.graph.total_fwd_flops(), g.total_fwd_flops()) << g.name();
      EXPECT_LE(r.graph.total_params(), g.total_params()) << g.name();
      EXPECT_FALSE(analysis::lint_graph(r.graph).has_errors())
          << g.name() << "\n" << util::render_text(analysis::lint_graph(r.graph));
      // The planner accepts every optimized graph.
      EXPECT_GT(opt::plan_memory(r.graph, 8).total_bytes(), 0.0) << g.name();
    }
  }
}

// ---- Graph::from_ops validation (G008) -------------------------------------

TEST(OptGraph, FromOpsIdMismatchFiresG008) {
#ifndef NDEBUG
  GTEST_SKIP() << "debug builds assert inside Graph::from_ops before the lint can run";
#else
  dnn::Graph g("bad-ids");
  const int in = g.input(3, 8, 8);
  g.conv2d("conv", in, 4, 3, 3, 1, 1, 1, 1);
  std::vector<dnn::Op> ops = g.ops();
  ops[1].id = 7;  // violates the id == position contract
  const dnn::Graph bad = dnn::Graph::from_ops("bad-ids", std::move(ops));
  const util::Diagnostics diags = analysis::lint_graph(bad);
  EXPECT_TRUE(diags.has_code("G008")) << util::render_text(diags);
  EXPECT_TRUE(diags.has_errors());
#endif
}

// ---- memory passes (S008 exact plan + S013 cross-check) --------------------

TEST(OptMemoryPasses, DivergentEstimatesFireS013) {
  // A long reuse-friendly chain: the plan needs a few slots while the
  // reuse-optimistic estimate charges every activation once — >2x apart.
  const dnn::Graph g = avgpool_chain(40);
  train::TrainConfig cfg;
  cfg.cluster = hw::amd_cluster();
  cfg.ppn = 1;
  cfg.batch_per_rank = 64;
  util::Diagnostics diags;
  analysis::run_memory_passes(g, cfg, "s013-test", diags);
  EXPECT_TRUE(diags.has_code("S013")) << util::render_text(diags);
  EXPECT_FALSE(diags.has_code("S008"));  // 256 GiB budget, tiny graph
}

TEST(OptMemoryPasses, ExactPlanGatesS008WithPlanHint) {
  // ResNet-152 at batch 64 over-fills the 8 GiB per-rank budget even under
  // the exact plan; the hint reports the plan's own max batch.
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet152);
  train::TrainConfig cfg = core::pytorch_best(hw::amd_cluster(), dnn::ModelId::ResNet152, 2);
  cfg.batch_per_rank = 64;
  util::Diagnostics diags;
  analysis::run_memory_passes(g, cfg, "s008-test", diags);
  ASSERT_TRUE(diags.has_code("S008")) << util::render_text(diags);
  bool hint_ok = false;
  for (const auto& d : diags.items())
    if (d.code == "S008" && d.hint.find("plan fits") != std::string::npos) hint_ok = true;
  EXPECT_TRUE(hint_ok);
}

// ---- eval-cache sensitivity ------------------------------------------------

TEST(OptCache, ConfigKeyIsSensitiveToOptLevelAndMask) {
  const train::TrainConfig base =
      core::sp_baseline(hw::ri2_skylake(), dnn::ModelId::ResNet50, 32);
  train::TrainConfig level = base;
  level.opt_level = 2;
  train::TrainConfig mask = level;
  mask.opt_pass_mask = static_cast<std::uint32_t>(opt::PassId::DeadCode);
  EXPECT_EQ(core::config_key(base), core::config_key(base));
  EXPECT_NE(core::config_key(base), core::config_key(level));
  EXPECT_NE(core::config_key(level), core::config_key(mask));
}

TEST(OptCache, GraphFingerprintIsSensitiveToHasBias) {
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet18);
  std::vector<dnn::Op> ops = g.ops();
  for (auto& op : ops)
    if (op.kind == dnn::OpKind::Conv2d) {
      op.has_bias = !op.has_bias;
      break;
    }
  const dnn::Graph flipped = dnn::Graph::from_ops(g.name(), std::move(ops));
  EXPECT_NE(core::graph_fingerprint(g), core::graph_fingerprint(flipped));
}

// ---- execution-model and trainer integration -------------------------------

TEST(OptExec, FusionTightensTheModeledStepTime) {
  train::TrainConfig cfg = core::sp_baseline(hw::stampede2(), dnn::ModelId::ResNet50, 32);
  const double o0 = train::run_training(cfg).per_iteration_s;
  cfg.opt_level = 2;
  const double o2 = train::run_training(cfg).per_iteration_s;
  EXPECT_LT(o2, o0);
  EXPECT_GT(o2, 0.5 * o0);  // fusion trims epilogues, it does not halve convs
}

TEST(OptExec, TrainerValidatesOptLevelRange) {
  train::TrainConfig cfg = core::sp_baseline(hw::ri2_skylake(), dnn::ModelId::AlexNet, 32);
  cfg.opt_level = 3;
  EXPECT_THROW(train::run_training(cfg), std::invalid_argument);
  cfg.opt_level = -1;
  EXPECT_THROW(train::run_training(cfg), std::invalid_argument);
}

// ---- advisor integration ---------------------------------------------------

TEST(OptAdvisor, OptLevelsAreAGridDimension) {
  core::AdvisorRequest req;
  req.cluster = hw::ri2_skylake();
  req.model = dnn::ModelId::ResNet50;
  const std::size_t base_points = core::AdvisorService::plan_grid(req).size();
  req.opt_levels = {0, 2};
  const auto grid = core::AdvisorService::plan_grid(req);
  EXPECT_EQ(grid.size(), 2 * base_points);
  std::set<int> seen;
  for (const auto& cfg : grid) seen.insert(cfg.opt_level);
  EXPECT_EQ(seen, (std::set<int>{0, 2}));
}

TEST(OptAdvisor, InvalidOptLevelsAreRejected) {
  core::AdvisorRequest req;
  req.cluster = hw::ri2_skylake();
  req.opt_levels = {3};
  EXPECT_THROW(core::AdvisorService::plan_grid(req), std::invalid_argument);
  req.opt_levels = {};
  EXPECT_THROW(core::AdvisorService::plan_grid(req), std::invalid_argument);

  core::AdvisorService service({.threads = 2, .cache_capacity = 64});
  core::ScalingRequest scaling;
  scaling.cluster = hw::ri2_skylake();
  scaling.node_counts = {1};
  scaling.opt_level = -2;
  EXPECT_THROW(service.scaling_curve(scaling), std::invalid_argument);
}

TEST(OptAdvisor, OptimizedCurveIsFasterPerIteration) {
  core::AdvisorService service({.threads = 2, .cache_capacity = 256});
  core::ScalingRequest req;
  req.cluster = hw::ri2_skylake();
  req.model = dnn::ModelId::ResNet50;
  req.node_counts = {1};
  req.ppn = 2;
  const auto plain = service.scaling_curve(req);
  req.opt_level = 2;
  const auto optimized = service.scaling_curve(req);
  ASSERT_EQ(plain.size(), 1u);
  ASSERT_EQ(optimized.size(), 1u);
  EXPECT_LT(optimized[0].per_iteration_s, plain[0].per_iteration_s);
}

}  // namespace
}  // namespace dnnperf
